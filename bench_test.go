// Benchmarks regenerating every table and figure of the paper's evaluation
// (see EXPERIMENTS.md for the measured-vs-paper comparison at full scale).
// Each benchmark runs its experiment at a reduced instruction budget so the
// suite completes quickly; the cmd/malecbench tool runs them at full scale.
//
// The figure benchmarks hand every iteration a fresh engine: the experiment
// drivers otherwise share a process-wide result cache, and iterations after
// the first would measure cache lookups instead of simulation. All
// benchmarks report allocations; the per-interface Sim benchmarks and
// BenchmarkFig4a additionally report committed instructions per second
// (instr/s), the number tracked in BENCH_core.json.
package malec

import (
	"testing"
)

// benchOpt is the reduced-scale option set used by the benchmarks. The
// fresh per-call engine isolates iterations from the shared result cache.
func benchOpt(benchmarks ...string) Options {
	return Options{
		Instructions: benchInstructions,
		Seed:         1,
		Benchmarks:   benchmarks,
		Engine:       NewEngine(EngineOptions{}),
	}
}

const benchInstructions = 30000

// fig4Subset is a representative cross-suite subset.
var fig4Subset = []string{"gzip", "mcf", "gap", "swim", "djpeg", "h263enc"}

// reportInstrPerSec attaches the committed-instructions-per-second custom
// metric, given the number of instructions simulated per benchmark
// iteration.
func reportInstrPerSec(b *testing.B, perOp uint64) {
	if b.Elapsed() <= 0 {
		return
	}
	total := float64(perOp) * float64(b.N)
	b.ReportMetric(total/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkFig1 regenerates Fig. 1 (consecutive same-page loads).
func BenchmarkFig1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Fig1(benchOpt(fig4Subset...))
	}
}

// BenchmarkMotivation regenerates the Sec. III scalars.
func BenchmarkMotivation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Motivation(benchOpt(fig4Subset...))
	}
}

// BenchmarkFig4a regenerates Fig. 4a (normalized execution time; the same
// grid also yields Fig. 4b, measured separately below). Each iteration
// simulates the full five-configuration grid over fig4Subset.
func BenchmarkFig4a(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := Fig4(benchOpt(fig4Subset...))
		_ = r.TimeTable()
	}
	perOp := uint64(benchInstructions) * uint64(len(fig4Subset)) * uint64(len(Fig4Configs()))
	reportInstrPerSec(b, perOp)
}

// BenchmarkFig4b regenerates Fig. 4b (normalized dynamic+leakage energy).
func BenchmarkFig4b(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := Fig4(benchOpt(fig4Subset...))
		_ = r.EnergyTable()
	}
}

// BenchmarkWDU regenerates the Sec. VI-C WT vs WDU-8/16/32 comparison.
func BenchmarkWDU(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WDUComparison(benchOpt("gzip", "gap", "djpeg"))
	}
}

// BenchmarkCoverage regenerates the Sec. V feedback-update ablation.
func BenchmarkCoverage(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CoverageAblation(benchOpt("gzip", "gap", "djpeg"))
	}
}

// BenchmarkMerge regenerates the Sec. VI-B merge-contribution analysis.
func BenchmarkMerge(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MergeContribution(benchOpt("gap", "equake", "mgrid"))
	}
}

// BenchmarkWayConstraint regenerates the Sec. V 3-of-4 way allocation
// check.
func BenchmarkWayConstraint(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WayConstraint(benchOpt("gzip", "djpeg"))
	}
}

// Single-configuration microbenchmarks: simulation throughput of each L1
// interface model on one workload, with allocations reported. These are
// the purest view of the inner-loop hot path (no engine, no parallelism).

func benchmarkConfig(b *testing.B, cfg Config) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := Run(cfg, "gzip", benchInstructions, 1)
		if r.Cycles == 0 {
			b.Fatal("empty run")
		}
	}
	reportInstrPerSec(b, benchInstructions)
}

// BenchmarkSimBase1 measures Base1ldst simulation throughput.
func BenchmarkSimBase1(b *testing.B) { benchmarkConfig(b, Base1ldst()) }

// BenchmarkSimBase2 measures Base2ld1st simulation throughput.
func BenchmarkSimBase2(b *testing.B) { benchmarkConfig(b, Base2ld1st()) }

// BenchmarkSimMALEC measures MALEC simulation throughput.
func BenchmarkSimMALEC(b *testing.B) { benchmarkConfig(b, MALEC()) }

// BenchmarkSimMALECWDU measures MALEC-with-WDU simulation throughput (the
// WDU exercises a different way-determination bookkeeping path).
func BenchmarkSimMALECWDU(b *testing.B) { benchmarkConfig(b, MALECWithWDU(16)) }

// Stall-heavy stress benchmarks: stall-dominated workloads (pointer
// chasing, mispredict storms, TLB thrashing) spend most simulated cycles
// with nothing in flight making progress, which is exactly what the
// event-driven cycle skip fast-forwards. These keep the skip win — and any
// future regression of it — visible; the reported skip rate for each lives
// in BENCH_core.json.
func benchmarkStress(b *testing.B, benchmark string) {
	b.ReportAllocs()
	var last Result
	for i := 0; i < b.N; i++ {
		last = Run(MALEC(), benchmark, benchInstructions, 1)
		if last.Cycles == 0 {
			b.Fatal("empty run")
		}
	}
	reportInstrPerSec(b, benchInstructions)
	b.ReportMetric(last.SkipRate(), "skiprate")
}

// BenchmarkSimStressPtrchase measures throughput on serialized pointer
// chasing over a 64 MByte working set (MSHR-chained DRAM misses).
func BenchmarkSimStressPtrchase(b *testing.B) { benchmarkStress(b, "ptrchase") }

// BenchmarkSimStressBrstorm measures throughput under a mispredict storm
// (front end mostly resolving redirects and refilling).
func BenchmarkSimStressBrstorm(b *testing.B) { benchmarkStress(b, "brstorm") }

// BenchmarkSimStressTLBThrash measures throughput under TLB thrashing
// (page-table walks on most references).
func BenchmarkSimStressTLBThrash(b *testing.B) { benchmarkStress(b, "tlbthrash") }

// BenchmarkSimSampled measures the sampled fast path end to end (functional
// warming + shadow measurement bursts, no checkpoint reuse) on a schedule
// scaled to the benchmark budget. The instr/s metric is the cold sampled
// throughput tracked in BENCH_core.json's sampled_sim section; warm
// (checkpoint-restoring) throughput is measured by malecbench
// -sampled-compare.
func BenchmarkSimSampled(b *testing.B) {
	const n = 100000
	cfg := MALEC()
	cfg.Sampling = &Sampling{Warmup: 200, Detail: 800, Interval: 20000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := Run(cfg, "gzip", n, 1)
		if r.Sampling == nil {
			b.Fatal("sampled path did not engage")
		}
	}
	reportInstrPerSec(b, n)
}

// BenchmarkTraceGeneration measures synthetic workload generation.
func BenchmarkTraceGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Generate("gzip", benchInstructions, uint64(i+1))
	}
}
