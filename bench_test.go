// Benchmarks regenerating every table and figure of the paper's evaluation
// (see EXPERIMENTS.md for the measured-vs-paper comparison at full scale).
// Each benchmark runs its experiment at a reduced instruction budget so the
// suite completes quickly; the cmd/malecbench tool runs them at full scale.
package malec

import (
	"testing"
)

// benchOpt is the reduced-scale option set used by the benchmarks.
func benchOpt(benchmarks ...string) Options {
	return Options{Instructions: 30000, Seed: 1, Benchmarks: benchmarks}
}

// fig4Subset is a representative cross-suite subset.
var fig4Subset = []string{"gzip", "mcf", "gap", "swim", "djpeg", "h263enc"}

// BenchmarkFig1 regenerates Fig. 1 (consecutive same-page loads).
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Fig1(benchOpt(fig4Subset...))
	}
}

// BenchmarkMotivation regenerates the Sec. III scalars.
func BenchmarkMotivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Motivation(benchOpt(fig4Subset...))
	}
}

// BenchmarkFig4a regenerates Fig. 4a (normalized execution time; the same
// grid also yields Fig. 4b, measured separately below).
func BenchmarkFig4a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Fig4(benchOpt(fig4Subset...))
		_ = r.TimeTable()
	}
}

// BenchmarkFig4b regenerates Fig. 4b (normalized dynamic+leakage energy).
func BenchmarkFig4b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Fig4(benchOpt(fig4Subset...))
		_ = r.EnergyTable()
	}
}

// BenchmarkWDU regenerates the Sec. VI-C WT vs WDU-8/16/32 comparison.
func BenchmarkWDU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		WDUComparison(benchOpt("gzip", "gap", "djpeg"))
	}
}

// BenchmarkCoverage regenerates the Sec. V feedback-update ablation.
func BenchmarkCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		CoverageAblation(benchOpt("gzip", "gap", "djpeg"))
	}
}

// BenchmarkMerge regenerates the Sec. VI-B merge-contribution analysis.
func BenchmarkMerge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MergeContribution(benchOpt("gap", "equake", "mgrid"))
	}
}

// BenchmarkWayConstraint regenerates the Sec. V 3-of-4 way allocation
// check.
func BenchmarkWayConstraint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		WayConstraint(benchOpt("gzip", "djpeg"))
	}
}

// Single-configuration microbenchmarks: simulation throughput of each L1
// interface model on one workload.

func benchmarkConfig(b *testing.B, cfg Config) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := Run(cfg, "gzip", 30000, 1)
		if r.Cycles == 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkSimBase1 measures Base1ldst simulation throughput.
func BenchmarkSimBase1(b *testing.B) { benchmarkConfig(b, Base1ldst()) }

// BenchmarkSimBase2 measures Base2ld1st simulation throughput.
func BenchmarkSimBase2(b *testing.B) { benchmarkConfig(b, Base2ld1st()) }

// BenchmarkSimMALEC measures MALEC simulation throughput.
func BenchmarkSimMALEC(b *testing.B) { benchmarkConfig(b, MALEC()) }

// BenchmarkTraceGeneration measures synthetic workload generation.
func BenchmarkTraceGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Generate("gzip", 30000, uint64(i+1))
	}
}
