package malec

import (
	"bytes"
	"encoding/json"
	"testing"
)

// skipGrid is the config x benchmark x seed grid the cycle-skip
// differential test covers: all three interface kinds plus the WDU and
// bypass extensions, over both paper workloads and the stall-heavy stress
// profiles the fast-forward targets.
func skipGrid() []struct {
	Cfg   Config
	Bench string
	Seed  uint64
} {
	configs := []Config{
		Base1ldst(),
		Base2ld1st(),
		MALEC(),
		MALECWithWDU(16),
		MALECBypass(),
	}
	benchmarks := append([]string{"gzip", "mcf", "swim"}, StressBenchmarks()...)
	seeds := []uint64{1, 2}
	var grid []struct {
		Cfg   Config
		Bench string
		Seed  uint64
	}
	for _, c := range configs {
		for _, b := range benchmarks {
			for _, s := range seeds {
				grid = append(grid, struct {
					Cfg   Config
					Bench string
					Seed  uint64
				}{c, b, s})
			}
		}
	}
	return grid
}

// TestCycleSkipDifferential proves the event-driven fast-forward is
// semantically invisible: for every grid point the full Result JSON —
// cycles, energy (leakage included), every counter — is byte-identical
// between the skipping loop and the DisableCycleSkip escape hatch.
func TestCycleSkipDifferential(t *testing.T) {
	t.Setenv("MALEC_NO_CYCLE_SKIP", "") // pin: the suite must pass with the env hatch exported
	const instructions = 20000
	skipped := false
	for _, g := range skipGrid() {
		on := g.Cfg
		off := g.Cfg
		off.DisableCycleSkip = true
		rOn := Run(on, g.Bench, instructions, g.Seed)
		rOff := Run(off, g.Bench, instructions, g.Seed)
		jOn, err := json.Marshal(rOn)
		if err != nil {
			t.Fatal(err)
		}
		jOff, err := json.Marshal(rOff)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jOn, jOff) {
			t.Errorf("%s/%s/seed=%d: skip-on result differs from skip-off (cycles %d vs %d)",
				g.Cfg.Name, g.Bench, g.Seed, rOn.Cycles, rOff.Cycles)
		}
		if rOn.Telemetry.Get(CtrSkippedCycles) > 0 {
			skipped = true
		}
		if got := rOff.Telemetry.Get(CtrSkippedCycles); got != 0 {
			t.Errorf("%s/%s/seed=%d: escape hatch still skipped %d cycles",
				g.Cfg.Name, g.Bench, g.Seed, got)
		}
	}
	if !skipped {
		t.Error("no grid point skipped any cycles: fast-forward path never engaged")
	}
}

// TestCycleSkipEnvEscapeHatch checks the MALEC_NO_CYCLE_SKIP environment
// toggle: it must force the plain loop (zero skip telemetry) and leave the
// semantic result unchanged.
func TestCycleSkipEnvEscapeHatch(t *testing.T) {
	t.Setenv("MALEC_NO_CYCLE_SKIP", "")
	ref := Run(MALEC(), "ptrchase", 5000, 1)
	if ref.Telemetry.Get(CtrSkippedCycles) == 0 {
		t.Fatal("reference run on a stall-heavy profile skipped nothing")
	}
	t.Setenv("MALEC_NO_CYCLE_SKIP", "1")
	r := Run(MALEC(), "ptrchase", 5000, 1)
	if got := r.Telemetry.Get(CtrSkippedCycles); got != 0 {
		t.Fatalf("MALEC_NO_CYCLE_SKIP=1 but %d cycles skipped", got)
	}
	if r.Cycles != ref.Cycles {
		t.Fatalf("env toggle changed timing: %d vs %d cycles", r.Cycles, ref.Cycles)
	}
}

// TestSkipTelemetryOnStressProfiles pins the property the stress suite
// exists for: on stall-dominated workloads the majority of cycles are
// fast-forwarded, and the typed telemetry counters report it.
func TestSkipTelemetryOnStressProfiles(t *testing.T) {
	t.Setenv("MALEC_NO_CYCLE_SKIP", "")
	for _, bench := range StressBenchmarks() {
		r := Run(MALEC(), bench, 20000, 1)
		if r.Telemetry == nil {
			t.Fatalf("%s: no telemetry attached", bench)
		}
		if rate := r.SkipRate(); rate < 0.5 {
			t.Errorf("%s: skip rate %.2f, want >= 0.5 on a stall-heavy profile", bench, rate)
		}
		if jumps := r.Telemetry.Get(CtrSkipJumps); jumps == 0 {
			t.Errorf("%s: skipped cycles but recorded no jumps", bench)
		}
	}
}

// measureSteadyAllocs returns the average allocations of one n-instruction
// run (setup included; the steady-state guard subtracts two measurements to
// cancel it out).
func measureSteadyAllocs(cfg Config, bench string, n int) float64 {
	return testing.AllocsPerRun(3, func() {
		r := Run(cfg, bench, n, 1)
		if r.Cycles == 0 {
			panic("empty run")
		}
	})
}

// TestSteadyStateAllocations locks in the zero-allocation cycle loop: the
// allocation delta between a 2k- and a 12k-instruction run — i.e. the cost
// of 10k additional instructions of steady-state simulation — must stay
// near zero, with and without cycle skipping. Construction costs (caches,
// rings, way tables) cancel out in the subtraction; the small ceiling
// absorbs incidental growth of footprint-tracking maps (page table, stream
// detector) as the trace touches new pages.
func TestSteadyStateAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"skip-on", false}, {"skip-off", true}} {
		t.Run(mode.name, func(t *testing.T) {
			t.Setenv("MALEC_NO_CYCLE_SKIP", "")
			for _, bench := range []string{"gzip", "ptrchase"} {
				cfg := MALEC()
				cfg.DisableCycleSkip = mode.disable
				small := measureSteadyAllocs(cfg, bench, 2000)
				large := measureSteadyAllocs(cfg, bench, 12000)
				if delta := large - small; delta > 128 {
					t.Errorf("%s: %.0f allocs per extra 10k instructions (2k: %.0f, 12k: %.0f), want <= 128",
						bench, delta, small, large)
				}
			}
		})
	}
}
