package malec

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestWakeupSchedulerDifferential proves the wakeup scheduler (per-producer
// wakeup lists + age-ordered ready set) is semantically invisible: for
// every point of the skip-test grid — 5 configs x 6 benchmarks (3 paper,
// 3 stall-heavy stress) x 2 seeds — the full Result JSON is byte-identical
// between the wakeup path and the DisableWakeup scan path. Cycle skipping
// stays enabled on both sides, so the test also covers the interaction of
// the two event-driven mechanisms.
func TestWakeupSchedulerDifferential(t *testing.T) {
	t.Setenv("MALEC_NO_WAKEUP", "") // pin: the suite must pass with the env hatch exported
	const instructions = 20000
	for _, g := range skipGrid() {
		on := g.Cfg
		off := g.Cfg
		off.DisableWakeup = true
		rOn := Run(on, g.Bench, instructions, g.Seed)
		rOff := Run(off, g.Bench, instructions, g.Seed)
		jOn, err := json.Marshal(rOn)
		if err != nil {
			t.Fatal(err)
		}
		jOff, err := json.Marshal(rOff)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jOn, jOff) {
			t.Errorf("%s/%s/seed=%d: wakeup result differs from scan (cycles %d vs %d)",
				g.Cfg.Name, g.Bench, g.Seed, rOn.Cycles, rOff.Cycles)
		}
	}
}

// TestWakeupEnvEscapeHatch checks the MALEC_NO_WAKEUP environment toggle
// forces the scan path without changing the semantic result.
func TestWakeupEnvEscapeHatch(t *testing.T) {
	t.Setenv("MALEC_NO_WAKEUP", "")
	ref := Run(MALEC(), "gzip", 10000, 1)
	t.Setenv("MALEC_NO_WAKEUP", "1")
	r := Run(MALEC(), "gzip", 10000, 1)
	if r.Cycles != ref.Cycles {
		t.Fatalf("env toggle changed timing: %d vs %d cycles", r.Cycles, ref.Cycles)
	}
	if r.Energy.Total() != ref.Energy.Total() {
		t.Fatalf("env toggle changed energy: %f vs %f pJ", r.Energy.Total(), ref.Energy.Total())
	}
}

// TestSliceSourceMatchesGenSource is the correctness backbone of the
// materialized-trace cache: simulating a pre-generated record slice must
// produce a Result byte-identical to pulling the same records live from
// the generator, for every benchmark of every suite (plus the stress set).
// The engine's trace cache relies on this to substitute SliceSource over a
// shared arena for per-simulation generation.
func TestSliceSourceMatchesGenSource(t *testing.T) {
	const instructions = 4000
	benches := append(Benchmarks(), StressBenchmarks()...)
	for _, bench := range benches {
		live := Run(MALEC(), bench, instructions, 1)
		slice := RunTrace(MALEC(), bench, Generate(bench, instructions, 1))
		jLive, err := json.Marshal(live)
		if err != nil {
			t.Fatal(err)
		}
		jSlice, err := json.Marshal(slice)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jLive, jSlice) {
			t.Errorf("%s: SliceSource result differs from GenSource (cycles %d vs %d)",
				bench, live.Cycles, slice.Cycles)
		}
	}
	// Cross-check a second interface kind and seed on a subset.
	for _, bench := range []string{"gzip", "mcf", "djpeg"} {
		for _, cfg := range []Config{Base1ldst(), Base2ld1st()} {
			live := Run(cfg, bench, instructions, 2)
			slice := RunTrace(cfg, bench, Generate(bench, instructions, 2))
			if live.Cycles != slice.Cycles || live.Energy.Total() != slice.Energy.Total() {
				t.Errorf("%s/%s: slice-fed run diverged from live generation", cfg.Name, bench)
			}
		}
	}
}
