// Command malecsim runs one configuration against one benchmark (or a
// trace file) and prints detailed performance and energy statistics.
//
// Usage:
//
//	malecsim -config MALEC -bench gzip -n 1000000
//	malecsim -config Base2ld1st -trace trace.mltr
//	malecsim -list
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"malec/internal/config"
	"malec/internal/cpu"
	"malec/internal/engine"
	"malec/internal/trace"
)

func main() {
	var (
		cfgName   = flag.String("config", "MALEC", "configuration name (see -list)")
		bench     = flag.String("bench", "gzip", "benchmark profile name")
		traceFile = flag.String("trace", "", "run a recorded trace instead of a synthetic benchmark")
		n         = flag.Int("n", 500000, "instructions to simulate")
		seed      = flag.Uint64("seed", 1, "workload seed")
		cacheDir  = flag.String("cache-dir", "", "persist/reuse results in this directory (repeat runs become cache hits)")
		list      = flag.Bool("list", false, "list configurations and benchmarks")
		counters  = flag.Bool("counters", false, "dump raw event counters")
	)
	flag.Parse()

	if *list {
		printLists()
		return
	}
	// Note: -seed selects the workload instance only; cfg.Seed (the
	// microarchitectural RNG seed) stays at its preset value so that
	// malecsim, malecbench and malecd produce identical results and
	// cache keys for identically named simulation points.
	cfg, ok := config.Named(*cfgName)
	if !ok {
		fmt.Fprintf(os.Stderr, "malecsim: unknown config %q (try -list)\n", *cfgName)
		os.Exit(2)
	}

	var res cpu.Result
	if *traceFile != "" {
		recs, err := readTrace(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "malecsim: %v\n", err)
			os.Exit(1)
		}
		// Trace runs have no workload generator for -seed to select, so
		// here it varies the microarchitectural RNG instead. This path
		// never touches the engine cache, so cfg.Seed can't split keys.
		cfg.Seed = *seed
		if *cacheDir != "" {
			fmt.Fprintln(os.Stderr, "malecsim: -cache-dir has no effect on trace runs (results are not cached)")
		}
		res = cpu.Run(cfg, *traceFile, &cpu.SliceSource{Records: recs})
	} else {
		if _, ok := trace.Profiles[*bench]; !ok {
			fmt.Fprintf(os.Stderr, "malecsim: unknown benchmark %q (try -list)\n", *bench)
			os.Exit(2)
		}
		eng := engine.New(engine.Options{CacheDir: *cacheDir})
		var src engine.Source
		res, src = eng.RunTracked(cfg, *bench, *n, *seed)
		if src != engine.SourceSimulated {
			fmt.Fprintf(os.Stderr, "[result served from %s cache]\n", src)
		}
	}
	printResult(res, *counters)
}

// readTrace loads all records from a trace file.
func readTrace(path string) ([]trace.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return nil, err
	}
	recs, err := r.ReadAll()
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	return recs, nil
}

// printResult renders a Result.
func printResult(r cpu.Result, counters bool) {
	fmt.Printf("config      %s\n", r.Config)
	fmt.Printf("benchmark   %s\n", r.Benchmark)
	fmt.Printf("instrs      %d (loads %d, stores %d)\n", r.Instructions, r.Loads, r.Stores)
	fmt.Printf("cycles      %d\n", r.Cycles)
	fmt.Printf("IPC         %.3f\n", r.IPC())
	fmt.Printf("L1          %.2f%% miss (%d hits, %d misses), %d fills, %d writebacks\n",
		100*r.L1.MissRate(), r.L1.Hits, r.L1.Misses, r.L1.Fills, r.L1.Writebacks)
	fmt.Printf("L1 modes    %d conventional, %d reduced reads\n",
		r.L1.ConventionalReads, r.L1.ReducedReads)
	fmt.Printf("uTLB        %d lookups, %.2f%% miss\n", r.UTLB.Lookups, missPct(r.UTLB))
	fmt.Printf("TLB         %d lookups, %.2f%% miss\n", r.TLB.Lookups, missPct(r.TLB))
	if r.CoverageTotal > 0 {
		fmt.Printf("way-det     %.1f%% coverage (%d/%d)\n",
			100*r.Coverage(), r.CoverageKnown, r.CoverageTotal)
	}
	fmt.Printf("energy:\n%s", r.Energy.String())
	if counters {
		fmt.Println("counters:")
		names := r.Counters.Names()
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-36s %12d\n", n, r.Counters.GetName(n))
		}
	}
}

func missPct(s interface{ MissRate() float64 }) float64 { return 100 * s.MissRate() }

// printLists shows available configurations and benchmarks.
func printLists() {
	fmt.Println("configurations:")
	for _, n := range config.Names() {
		fmt.Println("  " + n)
	}
	fmt.Println("benchmarks:")
	for _, suite := range trace.Suites {
		fmt.Printf("  [%s]\n", suite)
		for _, b := range trace.Benchmarks[suite] {
			fmt.Println("    " + b)
		}
	}
}
