// Command malecsim runs one configuration against one benchmark (or a
// trace file) and prints detailed performance and energy statistics.
//
// Usage:
//
//	malecsim -config MALEC -bench gzip -n 1000000
//	malecsim -config Base2ld1st -trace trace.mltr
//	malecsim -list
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"malec/internal/config"
	"malec/internal/cpu"
	"malec/internal/trace"
)

// configs maps CLI names to configuration constructors.
var configs = map[string]func() config.Config{
	"Base1ldst":           config.Base1ldst,
	"Base2ld1st":          config.Base2ld1st,
	"Base2ld1st_1cycleL1": config.Base2ld1st1cycleL1,
	"MALEC":               config.MALEC,
	"MALEC_3cycleL1":      config.MALEC3cycleL1,
	"MALEC_noMerge":       config.MALECNoMerge,
	"MALEC_noFeedback":    config.MALECNoFeedback,
	"MALEC_noWT":          config.MALECNoWayDet,
	"MALEC_WDU8":          func() config.Config { return config.MALECWithWDU(8) },
	"MALEC_WDU16":         func() config.Config { return config.MALECWithWDU(16) },
	"MALEC_WDU32":         func() config.Config { return config.MALECWithWDU(32) },
	"MALEC_bypass":        config.MALECBypass,
	"MALEC_segWT":         func() config.Config { return config.MALECSegmentedWT(16, 0.5) },
}

func main() {
	var (
		cfgName   = flag.String("config", "MALEC", "configuration name (see -list)")
		bench     = flag.String("bench", "gzip", "benchmark profile name")
		traceFile = flag.String("trace", "", "run a recorded trace instead of a synthetic benchmark")
		n         = flag.Int("n", 500000, "instructions to simulate")
		seed      = flag.Uint64("seed", 1, "workload seed")
		list      = flag.Bool("list", false, "list configurations and benchmarks")
		counters  = flag.Bool("counters", false, "dump raw event counters")
	)
	flag.Parse()

	if *list {
		printLists()
		return
	}
	mk, ok := configs[*cfgName]
	if !ok {
		fmt.Fprintf(os.Stderr, "malecsim: unknown config %q (try -list)\n", *cfgName)
		os.Exit(2)
	}
	cfg := mk()
	cfg.Seed = *seed

	var res cpu.Result
	if *traceFile != "" {
		recs, err := readTrace(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "malecsim: %v\n", err)
			os.Exit(1)
		}
		res = cpu.Run(cfg, *traceFile, &cpu.SliceSource{Records: recs})
	} else {
		if _, ok := trace.Profiles[*bench]; !ok {
			fmt.Fprintf(os.Stderr, "malecsim: unknown benchmark %q (try -list)\n", *bench)
			os.Exit(2)
		}
		res = cpu.RunBenchmark(cfg, *bench, *n, *seed)
	}
	printResult(res, *counters)
}

// readTrace loads all records from a trace file.
func readTrace(path string) ([]trace.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return nil, err
	}
	recs, err := r.ReadAll()
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	return recs, nil
}

// printResult renders a Result.
func printResult(r cpu.Result, counters bool) {
	fmt.Printf("config      %s\n", r.Config)
	fmt.Printf("benchmark   %s\n", r.Benchmark)
	fmt.Printf("instrs      %d (loads %d, stores %d)\n", r.Instructions, r.Loads, r.Stores)
	fmt.Printf("cycles      %d\n", r.Cycles)
	fmt.Printf("IPC         %.3f\n", r.IPC())
	fmt.Printf("L1          %.2f%% miss (%d hits, %d misses), %d fills, %d writebacks\n",
		100*r.L1.MissRate(), r.L1.Hits, r.L1.Misses, r.L1.Fills, r.L1.Writebacks)
	fmt.Printf("L1 modes    %d conventional, %d reduced reads\n",
		r.L1.ConventionalReads, r.L1.ReducedReads)
	fmt.Printf("uTLB        %d lookups, %.2f%% miss\n", r.UTLB.Lookups, missPct(r.UTLB))
	fmt.Printf("TLB         %d lookups, %.2f%% miss\n", r.TLB.Lookups, missPct(r.TLB))
	if r.CoverageTotal > 0 {
		fmt.Printf("way-det     %.1f%% coverage (%d/%d)\n",
			100*r.Coverage(), r.CoverageKnown, r.CoverageTotal)
	}
	fmt.Printf("energy:\n%s", r.Energy.String())
	if counters {
		fmt.Println("counters:")
		names := r.Counters.Names()
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-36s %12d\n", n, r.Counters.Get(n))
		}
	}
}

func missPct(s interface{ MissRate() float64 }) float64 { return 100 * s.MissRate() }

// printLists shows available configurations and benchmarks.
func printLists() {
	fmt.Println("configurations:")
	names := make([]string, 0, len(configs))
	for n := range configs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Println("  " + n)
	}
	fmt.Println("benchmarks:")
	for _, suite := range trace.Suites {
		fmt.Printf("  [%s]\n", suite)
		for _, b := range trace.Benchmarks[suite] {
			fmt.Println("    " + b)
		}
	}
}
