// Command malecbench regenerates every table and figure of the paper's
// evaluation and prints them as markdown.
//
// Usage:
//
//	malecbench                    # everything, default scale
//	malecbench -exp fig4 -n 500000
//	malecbench -exp fig1,motivation
//	malecbench -bench gzip,mcf    # restrict the benchmark set
//	malecbench -throughput        # simulator throughput mode (JSON)
//
// Throughput mode measures the simulator itself instead of the paper's
// figures: it runs each L1 interface variant on one workload and reports
// committed instructions per second, wall time and allocations per run as
// JSON. The committed BENCH_core.json at the repository root records these
// numbers before and after hot-path changes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"malec/internal/config"
	"malec/internal/cpu"
	"malec/internal/engine"
	"malec/internal/experiments"
)

// throughputRow is one interface variant's measurement in -throughput mode.
type throughputRow struct {
	Config       string  `json:"config"`
	NsPerRun     int64   `json:"ns_per_run"`
	InstrPerSec  float64 `json:"instr_per_sec"`
	AllocsPerRun uint64  `json:"allocs_per_run"`
	BytesPerRun  uint64  `json:"bytes_per_run"`
	Cycles       uint64  `json:"cycles"`
	IPC          float64 `json:"ipc"`
}

// throughputReport is the JSON document -throughput mode prints.
type throughputReport struct {
	Mode         string          `json:"mode"`
	Benchmark    string          `json:"benchmark"`
	Instructions int             `json:"instructions_per_run"`
	Seed         uint64          `json:"seed"`
	Runs         int             `json:"runs"`
	Configs      []throughputRow `json:"configs"`
}

// runThroughput measures simulation throughput (committed instructions per
// second and allocations per run) for each L1 interface variant. Wall time
// is the best of runs (the least-disturbed sample); allocations are exact
// per-run averages from the runtime's allocation counters.
func runThroughput(benchmark string, instructions int, seed uint64, runs int) throughputReport {
	rep := throughputReport{
		Mode:         "throughput",
		Benchmark:    benchmark,
		Instructions: instructions,
		Seed:         seed,
		Runs:         runs,
	}
	cfgs := []config.Config{config.Base1ldst(), config.Base2ld1st(), config.MALEC(),
		config.MALECWithWDU(16)}
	for _, cfg := range cfgs {
		cpu.RunBenchmark(cfg, benchmark, instructions, seed) // warm-up
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		best := time.Duration(1<<63 - 1)
		var last cpu.Result
		for r := 0; r < runs; r++ {
			t0 := time.Now()
			last = cpu.RunBenchmark(cfg, benchmark, instructions, seed)
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		runtime.ReadMemStats(&after)
		rep.Configs = append(rep.Configs, throughputRow{
			Config:       cfg.Name,
			NsPerRun:     best.Nanoseconds(),
			InstrPerSec:  float64(last.Instructions) / best.Seconds(),
			AllocsPerRun: (after.Mallocs - before.Mallocs) / uint64(runs),
			BytesPerRun:  (after.TotalAlloc - before.TotalAlloc) / uint64(runs),
			Cycles:       last.Cycles,
			IPC:          last.IPC(),
		})
	}
	return rep
}

func main() {
	var (
		exps       = flag.String("exp", "all", "comma-separated experiments: tab1,tab2,motivation,fig1,fig4,wdu,coverage,merge,wayconstraint,latency,buses,comparelimit,mergewindow,segmented,bypass")
		n          = flag.Int("n", 300000, "instructions per benchmark")
		seed       = flag.Uint64("seed", 1, "workload seed")
		bench      = flag.String("bench", "", "comma-separated benchmark subset (default all)")
		cacheDir   = flag.String("cache-dir", "", "persist/reuse simulation results in this directory")
		workers    = flag.Int("workers", 0, "max concurrent simulations (default GOMAXPROCS)")
		quiet      = flag.Bool("quiet", false, "suppress progress notes on stderr")
		throughput = flag.Bool("throughput", false, "measure simulator throughput instead of regenerating figures; prints JSON")
		tputRuns   = flag.Int("throughput-runs", 3, "timed runs per configuration in -throughput mode")
	)
	flag.Parse()

	if *throughput {
		benchmark := "gzip"
		if *bench != "" {
			benchmark = strings.Split(*bench, ",")[0]
		}
		rep := runThroughput(benchmark, *n, *seed, *tputRuns)
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "malecbench:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}

	// All experiments share one engine, so simulation points common to
	// several figures (every driver includes MALEC and the baselines) run
	// once, and with -cache-dir repeat invocations are disk hits.
	eng := engine.New(engine.Options{Workers: *workers, CacheDir: *cacheDir})
	opt := experiments.Options{Instructions: *n, Seed: *seed, Workers: *workers, Engine: eng}
	if *bench != "" {
		opt.Benchmarks = strings.Split(*bench, ",")
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	run := func(name string, f func() string) {
		if !all && !want[name] {
			return
		}
		t0 := time.Now()
		out := f()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(t0).Round(time.Millisecond))
		}
		fmt.Println(out)
	}

	run("tab1", experiments.Table1)
	run("tab2", experiments.Table2)
	run("motivation", func() string { return experiments.Motivation(opt).Table() })
	run("fig1", func() string { return experiments.Fig1(opt).Table() })
	run("fig4", func() string {
		r := experiments.Fig4(opt)
		return r.TimeTable() + "\n" + r.EnergyTable()
	})
	run("wdu", func() string { return experiments.WDUComparison(opt).Table() })
	run("coverage", func() string { return experiments.CoverageAblation(opt).Table() })
	run("merge", func() string { return experiments.MergeContribution(opt).Table() })
	run("wayconstraint", func() string { return experiments.WayConstraint(opt).Table() })
	run("latency", func() string { return experiments.LatencySensitivity(opt).Table() })
	run("buses", func() string { return experiments.ResultBusSweep(opt).Table() })
	run("comparelimit", func() string { return experiments.CompareLimitAblation(opt).Table() })
	run("mergewindow", func() string { return experiments.MergeWindowAblation(opt).Table() })
	run("segmented", func() string { return experiments.SegmentedWT(opt).Table() })
	run("bypass", func() string { return experiments.Bypass(opt).Table() })

	if !*quiet {
		s := eng.Stats()
		fmt.Fprintf(os.Stderr, "[engine: %d simulations, %d memory hits, %d disk hits, %d deduplicated]\n",
			s.Simulations, s.Hits, s.DiskHits, s.Dedup)
	}
}
