// Command malecbench regenerates every table and figure of the paper's
// evaluation and prints them as markdown.
//
// Usage:
//
//	malecbench                    # everything, default scale
//	malecbench -exp fig4 -n 500000
//	malecbench -exp fig1,motivation
//	malecbench -bench gzip,mcf    # restrict the benchmark set
//	malecbench -throughput        # simulator throughput mode (JSON)
//	malecbench -throughput -bench ptrchase   # stall-heavy stress profile
//	malecbench -throughput -sample -n 100000000   # sampled fast path
//	malecbench -sampled-compare -n 10000000 -sample-max-err 1
//	malecbench -exp fig4 -cpuprofile cpu.pb.gz -memprofile heap.pb.gz
//
// Throughput mode measures the simulator itself instead of the paper's
// figures: it runs each L1 interface variant on one workload and reports
// committed instructions per second, wall time, allocations per run,
// cycle-skip telemetry (skipped cycles, jumps, skip rate) and the
// simulated run's per-component dynamic/leakage energy breakdown (pJ) as
// JSON, so perf/energy trade-offs are visible straight from the CLI. The
// committed BENCH_core.json at the repository root records these numbers
// before and after hot-path changes. Besides the paper's 38 workloads,
// -bench accepts the stall-heavy stress profiles (ptrchase, brstorm,
// tlbthrash) the cycle-skipping fast-forward targets.
//
// -cpuprofile and -memprofile write standard pprof profiles of the whole
// invocation (any mode), so perf work can attach evidence without ad-hoc
// patching: `go tool pprof malecbench cpu.pb.gz`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"malec/internal/config"
	"malec/internal/cpu"
	"malec/internal/energy"
	"malec/internal/engine"
	"malec/internal/experiments"
	"malec/internal/stats"
	"malec/internal/trace"
)

// samplingInfo summarizes a sampled run's estimate quality in JSON output.
type samplingInfo struct {
	Windows          int     `json:"windows"`
	Warmup           int     `json:"warmup"`
	Detail           int     `json:"detail"`
	Interval         int     `json:"interval"`
	CPIRelCI         float64 `json:"cpi_rel_ci95"`
	EnergyRelCI      float64 `json:"energy_rel_ci95"`
	CheckpointHits   int     `json:"checkpoint_hits"`
	CheckpointMisses int     `json:"checkpoint_misses"`
}

func samplingInfoOf(s *cpu.SamplingEstimate) *samplingInfo {
	if s == nil {
		return nil
	}
	return &samplingInfo{
		Windows: s.Windows, Warmup: s.Warmup, Detail: s.Detail, Interval: s.Interval,
		CPIRelCI: s.CPIRelHalfWidth, EnergyRelCI: s.EnergyRelHalfWidth,
		CheckpointHits: s.CheckpointHits, CheckpointMisses: s.CheckpointMisses,
	}
}

// throughputRow is one interface variant's measurement in -throughput mode.
type throughputRow struct {
	Config       string  `json:"config"`
	NsPerRun     int64   `json:"ns_per_run"`
	InstrPerSec  float64 `json:"instr_per_sec"`
	AllocsPerRun uint64  `json:"allocs_per_run"`
	BytesPerRun  uint64  `json:"bytes_per_run"`
	Cycles       uint64  `json:"cycles"`
	IPC          float64 `json:"ipc"`
	// Cycle-skip telemetry: how many simulated cycles the event-driven
	// fast-forward jumped over (and in how many jumps), and the resulting
	// fraction of all cycles. Zero when skipping is disabled.
	SkippedCycles uint64  `json:"skipped_cycles"`
	SkipJumps     uint64  `json:"skip_jumps"`
	SkipRate      float64 `json:"skip_rate"`
	// Energy is the simulated run's per-component dynamic/leakage energy
	// breakdown from the meter (picojoules), so perf/energy trade-offs
	// across configurations are visible without a full campaign.
	Energy energyReport `json:"energy"`
	// Sampling is present when the run used the sampled fast path
	// (-sample): window count, schedule and confidence intervals.
	Sampling *samplingInfo `json:"sampling,omitempty"`
}

// componentEnergy is one component's share of the energy breakdown.
type componentEnergy struct {
	Component string  `json:"component"`
	DynamicPJ float64 `json:"dynamic_pj"`
	LeakagePJ float64 `json:"leakage_pj"`
}

// energyReport renders a Breakdown for the throughput JSON: per-component
// rows (components with no energy omitted) plus totals.
type energyReport struct {
	Components []componentEnergy `json:"components"`
	DynamicPJ  float64           `json:"dynamic_pj"`
	LeakagePJ  float64           `json:"leakage_pj"`
	TotalPJ    float64           `json:"total_pj"`
}

// energyReportOf converts a Breakdown into the JSON form.
func energyReportOf(b energy.Breakdown) energyReport {
	rep := energyReport{
		DynamicPJ: b.TotalDynamic(),
		LeakagePJ: b.TotalLeakage(),
		TotalPJ:   b.Total(),
	}
	for _, c := range energy.Components() {
		if b.Dynamic[c] == 0 && b.Leakage[c] == 0 {
			continue
		}
		rep.Components = append(rep.Components, componentEnergy{
			Component: c.String(),
			DynamicPJ: b.Dynamic[c],
			LeakagePJ: b.Leakage[c],
		})
	}
	return rep
}

// throughputReport is the JSON document -throughput mode prints.
type throughputReport struct {
	Mode         string          `json:"mode"`
	Benchmark    string          `json:"benchmark"`
	Instructions int             `json:"instructions_per_run"`
	Seed         uint64          `json:"seed"`
	Runs         int             `json:"runs"`
	Configs      []throughputRow `json:"configs"`
	// WallSeconds is the whole mode's wall time (warm-ups included), the
	// same field malecload reports, so core and serving benchmark JSON
	// share one telemetry vocabulary.
	WallSeconds float64 `json:"wall_seconds"`
	// Engine snapshots the warm-up engine's cache/trace counters in the
	// exact shape /v1/stats and /metrics serve (warm-ups run through a
	// shared engine: one trace generation serves every config, so
	// traceHits/traceMisses here mirror what a campaign would see). The
	// timed runs below stay direct simulator calls and never hit it.
	Engine engine.Stats `json:"engine"`
}

// runThroughput measures simulation throughput (committed instructions per
// second and allocations per run) for each L1 interface variant. Wall time
// is the best of runs (the least-disturbed sample); allocations are exact
// per-run averages from the runtime's allocation counters.
func runThroughput(benchmark string, instructions int, seed uint64, runs int, sch *config.Sampling) throughputReport {
	rep := throughputReport{
		Mode:         "throughput",
		Benchmark:    benchmark,
		Instructions: instructions,
		Seed:         seed,
		Runs:         runs,
	}
	t0 := time.Now()
	// Warm-ups go through an engine so the report carries engine cache
	// vocabulary (simulations, trace hits/misses) alongside the raw
	// timings; the timed loop stays direct so cache hits can't be
	// mistaken for simulator throughput. Sampled mode (-sample) warms up
	// directly instead: the engine would materialize the full trace arena,
	// which at sampled-scale instruction counts defeats the point.
	eng := engine.New(engine.Options{})
	cfgs := []config.Config{config.Base1ldst(), config.Base2ld1st(), config.MALEC(),
		config.MALECWithWDU(16)}
	for _, cfg := range cfgs {
		if sch != nil {
			cfg.Sampling = sch
			cpu.RunBenchmark(cfg, benchmark, instructions, seed) // warm-up
		} else {
			eng.Run(cfg, benchmark, instructions, seed) // warm-up
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		best := time.Duration(1<<63 - 1)
		var last cpu.Result
		for r := 0; r < runs; r++ {
			t0 := time.Now()
			last = cpu.RunBenchmark(cfg, benchmark, instructions, seed)
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		runtime.ReadMemStats(&after)
		row := throughputRow{
			Config:       cfg.Name,
			NsPerRun:     best.Nanoseconds(),
			InstrPerSec:  float64(last.Instructions) / best.Seconds(),
			AllocsPerRun: (after.Mallocs - before.Mallocs) / uint64(runs),
			BytesPerRun:  (after.TotalAlloc - before.TotalAlloc) / uint64(runs),
			Cycles:       last.Cycles,
			IPC:          last.IPC(),
			SkipRate:     last.SkipRate(),
			Energy:       energyReportOf(last.Energy),
		}
		if last.Telemetry != nil {
			row.SkippedCycles = last.Telemetry.Get(stats.CtrSkippedCycles)
			row.SkipJumps = last.Telemetry.Get(stats.CtrSkipJumps)
		}
		row.Sampling = samplingInfoOf(last.Sampling)
		rep.Configs = append(rep.Configs, row)
	}
	rep.WallSeconds = time.Since(t0).Seconds()
	rep.Engine = eng.Stats()
	return rep
}

// mapCheckpoints is a process-local checkpoint store for the compare mode:
// the cold sampled run saves into it, the warm run restores from it — the
// campaign steady state (every core-side config variant after the first)
// measured in isolation.
type mapCheckpoints map[uint64]*cpu.Checkpoint

func (m mapCheckpoints) Load(n uint64) (*cpu.Checkpoint, bool) { ck, ok := m[n]; return ck, ok }
func (m mapCheckpoints) Save(n uint64, ck *cpu.Checkpoint)     { m[n] = ck }

// sampledCompareRow is one configuration's exact-vs-sampled differential.
type sampledCompareRow struct {
	Config             string  `json:"config"`
	ExactCycles        uint64  `json:"exact_cycles"`
	SampledCycles      uint64  `json:"sampled_cycles"`
	CycleErrPct        float64 `json:"cycle_err_pct"`
	EnergyErrPct       float64 `json:"energy_err_pct"`
	ExactSeconds       float64 `json:"exact_seconds"`
	SampledSeconds     float64 `json:"sampled_seconds"`
	Speedup            float64 `json:"speedup"`
	ExactInstrPerSec   float64 `json:"exact_instr_per_sec"`
	SampledInstrPerSec float64 `json:"sampled_instr_per_sec"`
	// Warm* measure a second sampled run that restores the warmed
	// checkpoints the first one saved — the per-run cost of every
	// subsequent core-side config variant in a campaign.
	WarmSeconds     float64       `json:"warm_seconds"`
	WarmSpeedup     float64       `json:"warm_speedup"`
	WarmInstrPerSec float64       `json:"warm_instr_per_sec"`
	WarmHits        int           `json:"warm_checkpoint_hits"`
	Sampling        *samplingInfo `json:"sampling"`
}

// sampledCompareReport is the JSON document -sampled-compare prints.
type sampledCompareReport struct {
	Mode         string              `json:"mode"`
	Benchmark    string              `json:"benchmark"`
	Instructions int                 `json:"instructions_per_run"`
	Seed         uint64              `json:"seed"`
	MaxErrPct    float64             `json:"max_err_pct"`
	Configs      []sampledCompareRow `json:"configs"`
	WallSeconds  float64             `json:"wall_seconds"`
}

// runSampledCompare runs each interface variant exactly and sampled on the
// same workload and reports the estimation error and speedup. ok is false
// when any cycle or energy error exceeds maxErrPct — the CI smoke's pass
// criterion, and the evidence behind BENCH_core.json's sampled_sim section.
func runSampledCompare(benchmark string, instructions int, seed uint64, sch config.Sampling, maxErrPct float64) (sampledCompareReport, bool) {
	rep := sampledCompareReport{
		Mode:         "sampled_compare",
		Benchmark:    benchmark,
		Instructions: instructions,
		Seed:         seed,
		MaxErrPct:    maxErrPct,
	}
	t0 := time.Now()
	ok := true
	cfgs := []config.Config{config.Base1ldst(), config.Base2ld1st(), config.MALEC(),
		config.MALECWithWDU(16)}
	for _, cfg := range cfgs {
		te := time.Now()
		exact := cpu.RunBenchmark(cfg, benchmark, instructions, seed)
		exactDur := time.Since(te)

		scfg := cfg
		scfg.Sampling = &sch
		ckpts := mapCheckpoints{}
		prof := trace.Profiles[benchmark]
		ts := time.Now()
		sampled := cpu.RunWithCheckpoints(scfg, benchmark,
			&cpu.GenSource{Gen: trace.NewGenerator(prof, seed), N: instructions}, ckpts)
		sampledDur := time.Since(ts)

		tw := time.Now()
		warm := cpu.RunWithCheckpoints(scfg, benchmark,
			&cpu.GenSource{Gen: trace.NewGenerator(prof, seed), N: instructions}, ckpts)
		warmDur := time.Since(tw)

		cycleErr := 100 * (float64(sampled.Cycles) - float64(exact.Cycles)) / float64(exact.Cycles)
		energyErr := 100 * (sampled.Energy.Total() - exact.Energy.Total()) / exact.Energy.Total()
		row := sampledCompareRow{
			Config:             cfg.Name,
			ExactCycles:        exact.Cycles,
			SampledCycles:      sampled.Cycles,
			CycleErrPct:        cycleErr,
			EnergyErrPct:       energyErr,
			ExactSeconds:       exactDur.Seconds(),
			SampledSeconds:     sampledDur.Seconds(),
			Speedup:            exactDur.Seconds() / sampledDur.Seconds(),
			ExactInstrPerSec:   float64(exact.Instructions) / exactDur.Seconds(),
			SampledInstrPerSec: float64(sampled.Instructions) / sampledDur.Seconds(),
			WarmSeconds:        warmDur.Seconds(),
			WarmSpeedup:        exactDur.Seconds() / warmDur.Seconds(),
			WarmInstrPerSec:    float64(warm.Instructions) / warmDur.Seconds(),
			Sampling:           samplingInfoOf(sampled.Sampling),
		}
		if warm.Sampling != nil {
			row.WarmHits = warm.Sampling.CheckpointHits
		}
		if warm.Cycles != sampled.Cycles || warm.Instructions != sampled.Instructions {
			fmt.Fprintf(os.Stderr, "malecbench: %s checkpoint-warm run diverged: cycles %d vs %d, instructions %d vs %d\n",
				cfg.Name, warm.Cycles, sampled.Cycles, warm.Instructions, sampled.Instructions)
			ok = false
		}
		if row.WarmHits == 0 {
			fmt.Fprintf(os.Stderr, "malecbench: %s warm run restored no checkpoints\n", cfg.Name)
			ok = false
		}
		if row.Sampling == nil {
			fmt.Fprintf(os.Stderr, "malecbench: %s did not take the sampled path (n=%d < interval=%d?)\n",
				cfg.Name, instructions, sch.Interval)
			ok = false
		}
		if abs(cycleErr) > maxErrPct || abs(energyErr) > maxErrPct {
			fmt.Fprintf(os.Stderr, "malecbench: %s sampling error out of bounds: cycles %+.3f%%, energy %+.3f%% (limit %.3f%%)\n",
				cfg.Name, cycleErr, energyErr, maxErrPct)
			ok = false
		}
		rep.Configs = append(rep.Configs, row)
	}
	rep.WallSeconds = time.Since(t0).Seconds()
	return rep, ok
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func main() { os.Exit(run()) }

// run is main's body with an exit code return instead of os.Exit calls, so
// the deferred profile writers (pprof.StopCPUProfile, the heap snapshot)
// always flush before the process exits, whatever path ends the run.
func run() (code int) {
	var (
		exps       = flag.String("exp", "all", "comma-separated experiments: tab1,tab2,motivation,fig1,fig4,wdu,coverage,merge,wayconstraint,latency,buses,comparelimit,mergewindow,segmented,bypass")
		n          = flag.Int("n", 300000, "instructions per benchmark")
		seed       = flag.Uint64("seed", 1, "workload seed")
		bench      = flag.String("bench", "", "comma-separated benchmark subset (default all)")
		cacheDir   = flag.String("cache-dir", "", "persist/reuse simulation results in this directory")
		workers    = flag.Int("workers", 0, "max concurrent simulations (default GOMAXPROCS)")
		traceCache = flag.Int("trace-cache", 0, "materialized-trace cache bound in records shared across configs (0 = default, negative = regenerate traces per simulation)")
		quiet      = flag.Bool("quiet", false, "suppress progress notes on stderr")
		throughput = flag.Bool("throughput", false, "measure simulator throughput instead of regenerating figures; prints JSON")
		tputRuns   = flag.Int("throughput-runs", 3, "timed runs per configuration in -throughput mode")
		sample     = flag.Bool("sample", false, "run -throughput through the sampled fast path (interval sampling + functional warming)")
		sampledCmp = flag.Bool("sampled-compare", false, "run each variant exactly and sampled, print the differential as JSON; exit nonzero past -sample-max-err")
		sampleWarm = flag.Int("sample-warmup", config.DefaultSampling().Warmup, "detailed-warmup instructions per measurement window")
		sampleDet  = flag.Int("sample-detail", config.DefaultSampling().Detail, "measured instructions per window")
		sampleInt  = flag.Int("sample-interval", config.DefaultSampling().Interval, "instructions per sampling interval (one window each)")
		sampleErr  = flag.Float64("sample-max-err", 5, "max |cycle or energy error| percent for -sampled-compare to pass")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile taken at exit to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "malecbench: -cpuprofile:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "malecbench: -cpuprofile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "malecbench: -memprofile:", err)
				code = 1
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "malecbench: -memprofile:", err)
				code = 1
			}
		}()
	}

	sch := config.Sampling{Warmup: *sampleWarm, Detail: *sampleDet, Interval: *sampleInt}
	if (*sample || *sampledCmp) && !sch.Valid() {
		fmt.Fprintf(os.Stderr, "malecbench: invalid sampling schedule %+v\n", sch)
		return 2
	}

	if *sampledCmp {
		benchmark := "gzip"
		if *bench != "" {
			benchmark = strings.Split(*bench, ",")[0]
		}
		rep, ok := runSampledCompare(benchmark, *n, *seed, sch, *sampleErr)
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "malecbench:", err)
			return 1
		}
		fmt.Println(string(out))
		if !ok {
			return 1
		}
		return 0
	}

	if *throughput {
		benchmark := "gzip"
		if *bench != "" {
			benchmark = strings.Split(*bench, ",")[0]
		}
		var schp *config.Sampling
		if *sample {
			schp = &sch
		}
		rep := runThroughput(benchmark, *n, *seed, *tputRuns, schp)
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "malecbench:", err)
			return 1
		}
		fmt.Println(string(out))
		return 0
	}

	// All experiments share one engine, so simulation points common to
	// several figures (every driver includes MALEC and the baselines) run
	// once, and with -cache-dir repeat invocations are disk hits.
	eng := engine.New(engine.Options{Workers: *workers, CacheDir: *cacheDir,
		TraceCacheRecords: *traceCache})
	opt := experiments.Options{Instructions: *n, Seed: *seed, Workers: *workers, Engine: eng}
	if *bench != "" {
		opt.Benchmarks = strings.Split(*bench, ",")
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	runExp := func(name string, f func() string) {
		if !all && !want[name] {
			return
		}
		t0 := time.Now()
		out := f()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(t0).Round(time.Millisecond))
		}
		fmt.Println(out)
	}

	runExp("tab1", experiments.Table1)
	runExp("tab2", experiments.Table2)
	runExp("motivation", func() string { return experiments.Motivation(opt).Table() })
	runExp("fig1", func() string { return experiments.Fig1(opt).Table() })
	runExp("fig4", func() string {
		r := experiments.Fig4(opt)
		return r.TimeTable() + "\n" + r.EnergyTable()
	})
	runExp("wdu", func() string { return experiments.WDUComparison(opt).Table() })
	runExp("coverage", func() string { return experiments.CoverageAblation(opt).Table() })
	runExp("merge", func() string { return experiments.MergeContribution(opt).Table() })
	runExp("wayconstraint", func() string { return experiments.WayConstraint(opt).Table() })
	runExp("latency", func() string { return experiments.LatencySensitivity(opt).Table() })
	runExp("buses", func() string { return experiments.ResultBusSweep(opt).Table() })
	runExp("comparelimit", func() string { return experiments.CompareLimitAblation(opt).Table() })
	runExp("mergewindow", func() string { return experiments.MergeWindowAblation(opt).Table() })
	runExp("segmented", func() string { return experiments.SegmentedWT(opt).Table() })
	runExp("bypass", func() string { return experiments.Bypass(opt).Table() })

	if !*quiet {
		s := eng.Stats()
		fmt.Fprintf(os.Stderr, "[engine: %d simulations, %d memory hits, %d disk hits, %d deduplicated]\n",
			s.Simulations, s.Hits, s.DiskHits, s.Dedup)
		fmt.Fprintf(os.Stderr, "[trace cache: %d hits, %d misses, %d records resident]\n",
			s.TraceHits, s.TraceMisses, s.TraceRecords)
	}
	return 0
}
