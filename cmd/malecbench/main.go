// Command malecbench regenerates every table and figure of the paper's
// evaluation and prints them as markdown.
//
// Usage:
//
//	malecbench                    # everything, default scale
//	malecbench -exp fig4 -n 500000
//	malecbench -exp fig1,motivation
//	malecbench -bench gzip,mcf    # restrict the benchmark set
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"malec/internal/engine"
	"malec/internal/experiments"
)

func main() {
	var (
		exps     = flag.String("exp", "all", "comma-separated experiments: tab1,tab2,motivation,fig1,fig4,wdu,coverage,merge,wayconstraint,latency,buses,comparelimit,mergewindow,segmented,bypass")
		n        = flag.Int("n", 300000, "instructions per benchmark")
		seed     = flag.Uint64("seed", 1, "workload seed")
		bench    = flag.String("bench", "", "comma-separated benchmark subset (default all)")
		cacheDir = flag.String("cache-dir", "", "persist/reuse simulation results in this directory")
		workers  = flag.Int("workers", 0, "max concurrent simulations (default GOMAXPROCS)")
		quiet    = flag.Bool("quiet", false, "suppress progress notes on stderr")
	)
	flag.Parse()

	// All experiments share one engine, so simulation points common to
	// several figures (every driver includes MALEC and the baselines) run
	// once, and with -cache-dir repeat invocations are disk hits.
	eng := engine.New(engine.Options{Workers: *workers, CacheDir: *cacheDir})
	opt := experiments.Options{Instructions: *n, Seed: *seed, Workers: *workers, Engine: eng}
	if *bench != "" {
		opt.Benchmarks = strings.Split(*bench, ",")
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	run := func(name string, f func() string) {
		if !all && !want[name] {
			return
		}
		t0 := time.Now()
		out := f()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(t0).Round(time.Millisecond))
		}
		fmt.Println(out)
	}

	run("tab1", experiments.Table1)
	run("tab2", experiments.Table2)
	run("motivation", func() string { return experiments.Motivation(opt).Table() })
	run("fig1", func() string { return experiments.Fig1(opt).Table() })
	run("fig4", func() string {
		r := experiments.Fig4(opt)
		return r.TimeTable() + "\n" + r.EnergyTable()
	})
	run("wdu", func() string { return experiments.WDUComparison(opt).Table() })
	run("coverage", func() string { return experiments.CoverageAblation(opt).Table() })
	run("merge", func() string { return experiments.MergeContribution(opt).Table() })
	run("wayconstraint", func() string { return experiments.WayConstraint(opt).Table() })
	run("latency", func() string { return experiments.LatencySensitivity(opt).Table() })
	run("buses", func() string { return experiments.ResultBusSweep(opt).Table() })
	run("comparelimit", func() string { return experiments.CompareLimitAblation(opt).Table() })
	run("mergewindow", func() string { return experiments.MergeWindowAblation(opt).Table() })
	run("segmented", func() string { return experiments.SegmentedWT(opt).Table() })
	run("bypass", func() string { return experiments.Bypass(opt).Table() })

	if !*quiet {
		s := eng.Stats()
		fmt.Fprintf(os.Stderr, "[engine: %d simulations, %d memory hits, %d disk hits, %d deduplicated]\n",
			s.Simulations, s.Hits, s.DiskHits, s.Dedup)
	}
}
