// Command malecbench regenerates every table and figure of the paper's
// evaluation and prints them as markdown.
//
// Usage:
//
//	malecbench                    # everything, default scale
//	malecbench -exp fig4 -n 500000
//	malecbench -exp fig1,motivation
//	malecbench -bench gzip,mcf    # restrict the benchmark set
//	malecbench -throughput        # simulator throughput mode (JSON)
//	malecbench -throughput -bench ptrchase   # stall-heavy stress profile
//	malecbench -exp fig4 -cpuprofile cpu.pb.gz -memprofile heap.pb.gz
//
// Throughput mode measures the simulator itself instead of the paper's
// figures: it runs each L1 interface variant on one workload and reports
// committed instructions per second, wall time, allocations per run,
// cycle-skip telemetry (skipped cycles, jumps, skip rate) and the
// simulated run's per-component dynamic/leakage energy breakdown (pJ) as
// JSON, so perf/energy trade-offs are visible straight from the CLI. The
// committed BENCH_core.json at the repository root records these numbers
// before and after hot-path changes. Besides the paper's 38 workloads,
// -bench accepts the stall-heavy stress profiles (ptrchase, brstorm,
// tlbthrash) the cycle-skipping fast-forward targets.
//
// -cpuprofile and -memprofile write standard pprof profiles of the whole
// invocation (any mode), so perf work can attach evidence without ad-hoc
// patching: `go tool pprof malecbench cpu.pb.gz`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"malec/internal/config"
	"malec/internal/cpu"
	"malec/internal/energy"
	"malec/internal/engine"
	"malec/internal/experiments"
	"malec/internal/stats"
)

// throughputRow is one interface variant's measurement in -throughput mode.
type throughputRow struct {
	Config       string  `json:"config"`
	NsPerRun     int64   `json:"ns_per_run"`
	InstrPerSec  float64 `json:"instr_per_sec"`
	AllocsPerRun uint64  `json:"allocs_per_run"`
	BytesPerRun  uint64  `json:"bytes_per_run"`
	Cycles       uint64  `json:"cycles"`
	IPC          float64 `json:"ipc"`
	// Cycle-skip telemetry: how many simulated cycles the event-driven
	// fast-forward jumped over (and in how many jumps), and the resulting
	// fraction of all cycles. Zero when skipping is disabled.
	SkippedCycles uint64  `json:"skipped_cycles"`
	SkipJumps     uint64  `json:"skip_jumps"`
	SkipRate      float64 `json:"skip_rate"`
	// Energy is the simulated run's per-component dynamic/leakage energy
	// breakdown from the meter (picojoules), so perf/energy trade-offs
	// across configurations are visible without a full campaign.
	Energy energyReport `json:"energy"`
}

// componentEnergy is one component's share of the energy breakdown.
type componentEnergy struct {
	Component string  `json:"component"`
	DynamicPJ float64 `json:"dynamic_pj"`
	LeakagePJ float64 `json:"leakage_pj"`
}

// energyReport renders a Breakdown for the throughput JSON: per-component
// rows (components with no energy omitted) plus totals.
type energyReport struct {
	Components []componentEnergy `json:"components"`
	DynamicPJ  float64           `json:"dynamic_pj"`
	LeakagePJ  float64           `json:"leakage_pj"`
	TotalPJ    float64           `json:"total_pj"`
}

// energyReportOf converts a Breakdown into the JSON form.
func energyReportOf(b energy.Breakdown) energyReport {
	rep := energyReport{
		DynamicPJ: b.TotalDynamic(),
		LeakagePJ: b.TotalLeakage(),
		TotalPJ:   b.Total(),
	}
	for _, c := range energy.Components() {
		if b.Dynamic[c] == 0 && b.Leakage[c] == 0 {
			continue
		}
		rep.Components = append(rep.Components, componentEnergy{
			Component: c.String(),
			DynamicPJ: b.Dynamic[c],
			LeakagePJ: b.Leakage[c],
		})
	}
	return rep
}

// throughputReport is the JSON document -throughput mode prints.
type throughputReport struct {
	Mode         string          `json:"mode"`
	Benchmark    string          `json:"benchmark"`
	Instructions int             `json:"instructions_per_run"`
	Seed         uint64          `json:"seed"`
	Runs         int             `json:"runs"`
	Configs      []throughputRow `json:"configs"`
	// WallSeconds is the whole mode's wall time (warm-ups included), the
	// same field malecload reports, so core and serving benchmark JSON
	// share one telemetry vocabulary.
	WallSeconds float64 `json:"wall_seconds"`
	// Engine snapshots the warm-up engine's cache/trace counters in the
	// exact shape /v1/stats and /metrics serve (warm-ups run through a
	// shared engine: one trace generation serves every config, so
	// traceHits/traceMisses here mirror what a campaign would see). The
	// timed runs below stay direct simulator calls and never hit it.
	Engine engine.Stats `json:"engine"`
}

// runThroughput measures simulation throughput (committed instructions per
// second and allocations per run) for each L1 interface variant. Wall time
// is the best of runs (the least-disturbed sample); allocations are exact
// per-run averages from the runtime's allocation counters.
func runThroughput(benchmark string, instructions int, seed uint64, runs int) throughputReport {
	rep := throughputReport{
		Mode:         "throughput",
		Benchmark:    benchmark,
		Instructions: instructions,
		Seed:         seed,
		Runs:         runs,
	}
	t0 := time.Now()
	// Warm-ups go through an engine so the report carries engine cache
	// vocabulary (simulations, trace hits/misses) alongside the raw
	// timings; the timed loop stays direct so cache hits can't be
	// mistaken for simulator throughput.
	eng := engine.New(engine.Options{})
	cfgs := []config.Config{config.Base1ldst(), config.Base2ld1st(), config.MALEC(),
		config.MALECWithWDU(16)}
	for _, cfg := range cfgs {
		eng.Run(cfg, benchmark, instructions, seed) // warm-up
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		best := time.Duration(1<<63 - 1)
		var last cpu.Result
		for r := 0; r < runs; r++ {
			t0 := time.Now()
			last = cpu.RunBenchmark(cfg, benchmark, instructions, seed)
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		runtime.ReadMemStats(&after)
		row := throughputRow{
			Config:       cfg.Name,
			NsPerRun:     best.Nanoseconds(),
			InstrPerSec:  float64(last.Instructions) / best.Seconds(),
			AllocsPerRun: (after.Mallocs - before.Mallocs) / uint64(runs),
			BytesPerRun:  (after.TotalAlloc - before.TotalAlloc) / uint64(runs),
			Cycles:       last.Cycles,
			IPC:          last.IPC(),
			SkipRate:     last.SkipRate(),
			Energy:       energyReportOf(last.Energy),
		}
		if last.Telemetry != nil {
			row.SkippedCycles = last.Telemetry.Get(stats.CtrSkippedCycles)
			row.SkipJumps = last.Telemetry.Get(stats.CtrSkipJumps)
		}
		rep.Configs = append(rep.Configs, row)
	}
	rep.WallSeconds = time.Since(t0).Seconds()
	rep.Engine = eng.Stats()
	return rep
}

func main() { os.Exit(run()) }

// run is main's body with an exit code return instead of os.Exit calls, so
// the deferred profile writers (pprof.StopCPUProfile, the heap snapshot)
// always flush before the process exits, whatever path ends the run.
func run() (code int) {
	var (
		exps       = flag.String("exp", "all", "comma-separated experiments: tab1,tab2,motivation,fig1,fig4,wdu,coverage,merge,wayconstraint,latency,buses,comparelimit,mergewindow,segmented,bypass")
		n          = flag.Int("n", 300000, "instructions per benchmark")
		seed       = flag.Uint64("seed", 1, "workload seed")
		bench      = flag.String("bench", "", "comma-separated benchmark subset (default all)")
		cacheDir   = flag.String("cache-dir", "", "persist/reuse simulation results in this directory")
		workers    = flag.Int("workers", 0, "max concurrent simulations (default GOMAXPROCS)")
		traceCache = flag.Int("trace-cache", 0, "materialized-trace cache bound in records shared across configs (0 = default, negative = regenerate traces per simulation)")
		quiet      = flag.Bool("quiet", false, "suppress progress notes on stderr")
		throughput = flag.Bool("throughput", false, "measure simulator throughput instead of regenerating figures; prints JSON")
		tputRuns   = flag.Int("throughput-runs", 3, "timed runs per configuration in -throughput mode")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile taken at exit to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "malecbench: -cpuprofile:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "malecbench: -cpuprofile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "malecbench: -memprofile:", err)
				code = 1
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "malecbench: -memprofile:", err)
				code = 1
			}
		}()
	}

	if *throughput {
		benchmark := "gzip"
		if *bench != "" {
			benchmark = strings.Split(*bench, ",")[0]
		}
		rep := runThroughput(benchmark, *n, *seed, *tputRuns)
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "malecbench:", err)
			return 1
		}
		fmt.Println(string(out))
		return 0
	}

	// All experiments share one engine, so simulation points common to
	// several figures (every driver includes MALEC and the baselines) run
	// once, and with -cache-dir repeat invocations are disk hits.
	eng := engine.New(engine.Options{Workers: *workers, CacheDir: *cacheDir,
		TraceCacheRecords: *traceCache})
	opt := experiments.Options{Instructions: *n, Seed: *seed, Workers: *workers, Engine: eng}
	if *bench != "" {
		opt.Benchmarks = strings.Split(*bench, ",")
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	runExp := func(name string, f func() string) {
		if !all && !want[name] {
			return
		}
		t0 := time.Now()
		out := f()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(t0).Round(time.Millisecond))
		}
		fmt.Println(out)
	}

	runExp("tab1", experiments.Table1)
	runExp("tab2", experiments.Table2)
	runExp("motivation", func() string { return experiments.Motivation(opt).Table() })
	runExp("fig1", func() string { return experiments.Fig1(opt).Table() })
	runExp("fig4", func() string {
		r := experiments.Fig4(opt)
		return r.TimeTable() + "\n" + r.EnergyTable()
	})
	runExp("wdu", func() string { return experiments.WDUComparison(opt).Table() })
	runExp("coverage", func() string { return experiments.CoverageAblation(opt).Table() })
	runExp("merge", func() string { return experiments.MergeContribution(opt).Table() })
	runExp("wayconstraint", func() string { return experiments.WayConstraint(opt).Table() })
	runExp("latency", func() string { return experiments.LatencySensitivity(opt).Table() })
	runExp("buses", func() string { return experiments.ResultBusSweep(opt).Table() })
	runExp("comparelimit", func() string { return experiments.CompareLimitAblation(opt).Table() })
	runExp("mergewindow", func() string { return experiments.MergeWindowAblation(opt).Table() })
	runExp("segmented", func() string { return experiments.SegmentedWT(opt).Table() })
	runExp("bypass", func() string { return experiments.Bypass(opt).Table() })

	if !*quiet {
		s := eng.Stats()
		fmt.Fprintf(os.Stderr, "[engine: %d simulations, %d memory hits, %d disk hits, %d deduplicated]\n",
			s.Simulations, s.Hits, s.DiskHits, s.Dedup)
		fmt.Fprintf(os.Stderr, "[trace cache: %d hits, %d misses, %d records resident]\n",
			s.TraceHits, s.TraceMisses, s.TraceRecords)
	}
	return 0
}
