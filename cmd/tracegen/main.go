// Command tracegen generates synthetic benchmark traces in the MALEC
// binary trace format, or inspects existing trace files.
//
// Usage:
//
//	tracegen -bench gzip -n 1000000 -o gzip.mltr
//	tracegen -inspect gzip.mltr
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"malec/internal/stats"
	"malec/internal/trace"
)

func main() {
	var (
		bench   = flag.String("bench", "gzip", "benchmark profile")
		n       = flag.Int("n", 1000000, "instructions to generate")
		seed    = flag.Uint64("seed", 1, "workload seed")
		out     = flag.String("o", "", "output trace file (default <bench>.mltr)")
		inspect = flag.String("inspect", "", "inspect an existing trace instead of generating")
	)
	flag.Parse()

	if *inspect != "" {
		if err := inspectTrace(*inspect); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	prof, ok := trace.Profiles[*bench]
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	path := *out
	if path == "" {
		path = *bench + ".mltr"
	}
	if err := generate(prof, *n, *seed, path); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records to %s\n", *n, path)
}

// generate writes a fresh synthetic trace to path.
func generate(prof trace.Profile, n int, seed uint64, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	gen := trace.NewGenerator(prof, seed)
	for i := 0; i < n; i++ {
		if err := w.Write(gen.Next()); err != nil {
			return err
		}
	}
	return w.Flush()
}

// inspectTrace prints summary statistics of a trace file.
func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var st trace.Stats
	pl := stats.NewPageLocality(stats.Fig1Gaps)
	branches, misp := 0, 0
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		st.Observe(rec)
		if rec.Kind == trace.Load {
			pl.ObserveLoad(rec.Addr)
		}
		if rec.Kind == trace.Branch {
			branches++
			if rec.Mispredict {
				misp++
			}
		}
	}
	pl.Flush()
	fmt.Printf("instructions  %d\n", st.Instructions)
	fmt.Printf("loads         %d\n", st.Loads)
	fmt.Printf("stores        %d\n", st.Stores)
	fmt.Printf("mem ratio     %.1f%%\n", 100*st.MemRatio())
	fmt.Printf("ld/st ratio   %.2f\n", st.LoadStoreRatio())
	fmt.Printf("branches      %d (%.1f%% mispredicted)\n", branches,
		100*float64(misp)/float64(max(branches, 1)))
	fmt.Printf("page locality %.1f%% (next load same page)\n", 100*pl.FollowedSamePage())
	fmt.Printf("line locality %.1f%% (next load same line)\n", 100*pl.FollowedSameLine())
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
