package main

import (
	"net/http"
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	now := time.Now()
	cases := []struct {
		in       string
		min, max time.Duration
	}{
		{"", 0, 0},
		{"2", 2 * time.Second, 2 * time.Second},
		{"0.5", 500 * time.Millisecond, 500 * time.Millisecond},
		{"-3", 0, 0},
		{"0", 0, 0},
		{"soon", 0, 0},
		// HTTP-date: a future date yields roughly the remaining interval, a
		// past date yields 0 rather than a negative sleep.
		{now.Add(3 * time.Second).UTC().Format(http.TimeFormat), 1 * time.Second, 3 * time.Second},
		{now.Add(-time.Hour).UTC().Format(http.TimeFormat), 0, 0},
	}
	for _, tc := range cases {
		got := parseRetryAfter(tc.in)
		if got < tc.min || got > tc.max {
			t.Errorf("parseRetryAfter(%q) = %v, want in [%v, %v]", tc.in, got, tc.min, tc.max)
		}
	}
}

func TestParseMixStream(t *testing.T) {
	weights, schedule, err := parseMix("hit=2,stream=1")
	if err != nil {
		t.Fatal(err)
	}
	if weights["stream"] != 1 || len(schedule) != 3 {
		t.Fatalf("weights=%v schedule len=%d", weights, len(schedule))
	}
	streams := 0
	for _, k := range schedule {
		if k == kindStream {
			streams++
		}
	}
	if streams != 1 {
		t.Fatalf("schedule has %d stream slots, want 1", streams)
	}
	if _, _, err := parseMix("stream=0"); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, _, err := parseMix("teapot=1"); err == nil {
		t.Fatal("unknown population accepted")
	}
}
