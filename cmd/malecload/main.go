// Command malecload drives a running malecd with open-loop load and
// reports latency percentiles, error rate and achieved-vs-offered RPS
// per slot as JSON — the serving-side counterpart of `malecbench
// -throughput`, and the harness behind BENCH_serve.json and the CI
// serving smoke.
//
// The load shape follows the invitro trace-synthesizer vocabulary:
// a starting RPS, a step size, a target RPS and a per-slot duration.
//
//	malecload -mode fixed -start-rps 200 -slots 3 -slot 5s        # constant rate
//	malecload -mode sweep -start-rps 100 -step 100 -target-rps 800 # staircase
//	malecload -mode burst -start-rps 50 -target-rps 1000 -slots 6  # alternate base/burst
//	malecload -find-saturation -start-rps 100 -target-rps 20000    # max sustainable RPS
//	malecload -targets http://n1:8080,http://n2:8080,http://n3:8080 # round-robin a cluster
//
// Requests are drawn from a weighted mix of populations (-mix):
//
//	hit    repeated /v1/run for one fixed point — after the first
//	       response every request is an in-memory cache hit, measuring
//	       the pure serving path;
//	sweep  a small fixed /v1/sweep campaign — cache-hit dominated after
//	       the first response, measuring the campaign/export path;
//	run    /v1/run with a fresh seed per request — every request is a
//	       real simulation, measuring the engine under simulate load;
//	stream resume a shared durable campaign's NDJSON results stream from
//	       the last cursor seen, read a few records, and deliberately
//	       disconnect — the churn of a streaming client on flaky
//	       connectivity, measuring the campaign resume path.
//
// e.g. -mix hit=8,run=2 offers 80% cache hits and 20% fresh
// simulations. The generator is open-loop: arrivals are scheduled by
// the offered rate, not by completions, so saturation shows up honestly
// as queueing (rising percentiles), timeouts and a widening gap between
// offered and achieved RPS rather than as a silently slowed generator.
//
// -find-saturation binary-searches the highest offered RPS the daemon
// sustains (error rate and achieved/offered within bounds), growing
// exponentially until the first failing probe brackets the answer.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// reqKind is one request population in the mix.
type reqKind int

const (
	kindHit reqKind = iota
	kindRun
	kindSweep
	kindStream
)

var kindNames = map[string]reqKind{"hit": kindHit, "run": kindRun, "sweep": kindSweep, "stream": kindStream}

func (k reqKind) String() string {
	switch k {
	case kindHit:
		return "hit"
	case kindRun:
		return "run"
	case kindStream:
		return "stream"
	}
	return "sweep"
}

// targetStats accumulates one replica's request/error/latency split, so a
// multi-target run shows whether load and tail latency spread evenly
// across the cluster or one replica is dragging.
type targetStats struct {
	mu       sync.Mutex
	requests int
	errors   int
	latNs    []int64
}

// generator owns the targets, the client and the request mix.
type generator struct {
	// bases are the malecd replicas, walked round-robin per request on a
	// counter independent of the mix rotation (a shared counter would
	// correlate population with replica and skew the per-target split).
	bases        []string
	nextBase     atomic.Uint64
	targets      []*targetStats // parallel to bases
	client       *http.Client
	schedule     []reqKind // weight-expanded, walked round-robin
	next         atomic.Uint64
	seed         atomic.Uint64 // fresh-seed counter for the run population
	seedBase     uint64        // per-invocation offset for run seeds
	instructions int
	inflight     chan struct{} // bounds concurrent requests
	// retries is how many times one request may be re-sent after a shed
	// (429/503) response, with exponential backoff honoring Retry-After.
	// 0 (the default) keeps the generator strictly open-loop: a shed is a
	// shed, counted and done.
	retries int
	// The stream population shares one lazily created campaign and a
	// resume cursor: each request resumes the results stream at the
	// cursor, reads a few records, deliberately disconnects, and leaves
	// the cursor where the next request should pick up — the churn of a
	// realistic streaming client under flaky connectivity.
	streamOnce   sync.Once
	campaignID   atomic.Value // string
	streamCursor atomic.Uint64
}

// backoffCap bounds one retry sleep, whatever Retry-After claims, so a
// drain hint cannot stall a load slot for its full duration.
const backoffCap = 5 * time.Second

// parseRetryAfter interprets a Retry-After value, which arrives as either
// a second count (fractional from some proxies, though the RFC says
// integer) or an HTTP-date. Absent or unparsable values return 0.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.ParseFloat(v, 64); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs * float64(time.Second))
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// backoff computes the sleep before retry number attempt (0-based): the
// server's Retry-After when it sent one, else 100ms doubling per attempt,
// both with up to 50% added jitter so synchronized clients decorrelate.
func backoff(attempt int, retryAfter string) time.Duration {
	d := 100 * time.Millisecond << attempt
	if ra := parseRetryAfter(retryAfter); ra > 0 {
		d = ra
	}
	if d > backoffCap {
		d = backoffCap
	}
	return d + rand.N(d/2+1)
}

// outcome is one offered request's fate, retries included.
type outcome struct {
	lat     time.Duration
	ok      bool
	shed    int // 429/503 responses seen (including ones retried away)
	retries int // retry attempts consumed
}

// pick returns the next request kind in the weighted rotation. The
// rotation is deterministic, so two invocations with the same flags
// offer byte-identical request sequences.
func (g *generator) pick() reqKind {
	return g.schedule[g.next.Add(1)%uint64(len(g.schedule))]
}

// body builds the request body and path for one request.
func (g *generator) body(kind reqKind) (path, payload string) {
	switch kind {
	case kindHit:
		return "/v1/run", fmt.Sprintf(
			`{"config":"MALEC","benchmark":"gzip","instructions":%d,"seed":1}`, g.instructions)
	case kindRun:
		// A fresh seed per request: a distinct simulation point every
		// time, so this population exercises the simulate path (and the
		// trace cache) instead of the result cache. The base is unique
		// per invocation (see -run-seed-base) or a second malecload run
		// against a warm daemon would measure cache hits by accident.
		return "/v1/run", fmt.Sprintf(
			`{"config":"MALEC","benchmark":"gzip","instructions":%d,"seed":%d}`,
			g.instructions, g.seedBase+g.seed.Add(1))
	default:
		return "/v1/sweep", fmt.Sprintf(
			`{"configs":["Base1ldst","MALEC"],"benchmarks":["gzip"],"instructions":%d,"seeds":[1,2]}`,
			g.instructions)
	}
}

// streamCampaign lazily submits the small shared campaign the stream
// population follows, returning its handle. The campaign is created on —
// and streamed from — the first target only: a campaign handle lives on
// the node that registered it, so the stream population pins there while
// the other populations round-robin.
func (g *generator) streamCampaign() (string, bool) {
	g.streamOnce.Do(func() {
		payload := fmt.Sprintf(
			`{"configs":["Base1ldst","MALEC"],"benchmarks":["gzip"],"instructions":%d,"seeds":[1,2]}`,
			g.instructions)
		resp, err := g.client.Post(g.bases[0]+"/v1/campaigns", "application/json", strings.NewReader(payload))
		if err != nil {
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
			return
		}
		var st struct {
			ID string `json:"id"`
		}
		if json.NewDecoder(resp.Body).Decode(&st) == nil && st.ID != "" {
			g.campaignID.Store(st.ID)
		}
	})
	id, _ := g.campaignID.Load().(string)
	return id, id != ""
}

// doStream performs one stream-population request: resume the shared
// campaign's NDJSON results stream from the population's cursor, read a
// few records, then deliberately hang up. The next request resumes with
// ?after= where this one left off — exercising exactly the
// disconnect/resume path the campaign API guarantees.
func (g *generator) doStream() outcome {
	t0 := time.Now()
	var out outcome
	id, ok := g.streamCampaign()
	if !ok {
		out.lat = time.Since(t0)
		return out
	}
	resp, err := g.client.Get(fmt.Sprintf("%s/v1/campaigns/%s/results?after=%d",
		g.bases[0], id, g.streamCursor.Load()))
	if err != nil {
		out.lat = time.Since(t0)
		return out
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
		out.lat = time.Since(t0)
		return out
	}
	sc := bufio.NewScanner(resp.Body)
	for lines := 0; lines < 4 && sc.Scan(); lines++ {
		var line struct {
			Seq  uint64 `json:"seq"`
			Done bool   `json:"done"`
		}
		if json.Unmarshal(sc.Bytes(), &line) != nil {
			out.lat = time.Since(t0)
			return out
		}
		// Publish the furthest cursor seen so the next stream request
		// resumes past it (concurrent streams race; max wins).
		for line.Seq > 0 {
			cur := g.streamCursor.Load()
			if line.Seq <= cur || g.streamCursor.CompareAndSwap(cur, line.Seq) {
				break
			}
		}
		if line.Done {
			g.streamCursor.Store(0) // re-stream from the top next time
			break
		}
	}
	// Returning closes the body mid-stream: the deliberate disconnect.
	out.ok = true
	out.lat = time.Since(t0)
	return out
}

// do performs one request against the next round-robin target, recording
// it into that target's split.
func (g *generator) do(kind reqKind) outcome {
	ti := 0
	if kind != kindStream && len(g.bases) > 1 {
		ti = int(g.nextBase.Add(1) % uint64(len(g.bases)))
	}
	out := g.doTarget(g.bases[ti], kind)
	ts := g.targets[ti]
	ts.mu.Lock()
	ts.requests++
	if out.ok {
		ts.latNs = append(ts.latNs, out.lat.Nanoseconds())
	} else {
		ts.errors++
	}
	ts.mu.Unlock()
	return out
}

// doTarget performs one request (plus up to g.retries backed-off retries
// after shed responses) against one target, returning its outcome.
// Latency covers the whole attempt chain — what the caller actually
// waited.
func (g *generator) doTarget(base string, kind reqKind) outcome {
	if kind == kindStream {
		return g.doStream()
	}
	path, payload := g.body(kind)
	t0 := time.Now()
	var out outcome
	for attempt := 0; ; attempt++ {
		resp, err := g.client.Post(base+path, "application/json", strings.NewReader(payload))
		if err != nil {
			out.lat = time.Since(t0)
			return out
		}
		_, copyErr := io.Copy(io.Discard, resp.Body)
		retryAfter := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if copyErr == nil && resp.StatusCode == http.StatusOK {
			out.lat = time.Since(t0)
			out.ok = true
			return out
		}
		shed := resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable
		if shed {
			out.shed++
		}
		if !shed || attempt >= g.retries {
			out.lat = time.Since(t0)
			return out
		}
		out.retries++
		time.Sleep(backoff(attempt, retryAfter))
	}
}

// slotReport is one measurement slot's result.
type slotReport struct {
	Slot        int     `json:"slot"`
	OfferedRPS  float64 `json:"offered_rps"`
	DurationSec float64 `json:"duration_sec"`
	Launched    int     `json:"launched"`
	Succeeded   int     `json:"succeeded"`
	Errors      int     `json:"errors"`
	// Dropped counts arrivals shed because the in-flight cap was
	// reached — the generator's own admission control, counted into
	// error_rate because the offered request was not served.
	Dropped int `json:"dropped"`
	// Shed counts 429/503 responses from the daemon's admission control,
	// including ones later retried into a success; Retries counts retry
	// attempts consumed (both 0 unless -retries > 0 for the latter).
	Shed    int `json:"shed"`
	Retries int `json:"retries"`
	// MaxRetryDepth is the deepest retry chain any single request needed
	// this slot — chaos runs assert on it to prove backoff engaged.
	MaxRetryDepth int `json:"max_retry_depth"`
	// DrainSec is how long after the slot ended the last in-flight
	// request took to complete. A healthy slot drains in ~one request
	// latency; a large drain means the slot left a backlog behind.
	DrainSec float64 `json:"drain_sec"`
	// AchievedRPS is successes over the full elapsed time including the
	// drain, so a backlog the server only worked off after arrivals
	// stopped cannot masquerade as sustained throughput.
	AchievedRPS float64 `json:"achieved_rps"`
	ErrorRate   float64 `json:"error_rate"`
	P50Ms       float64 `json:"p50_ms"`
	P90Ms       float64 `json:"p90_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
	MeanMs      float64 `json:"mean_ms"`
}

// runSlot offers rps for the slot duration and gathers the report.
// Arrivals are paced on an absolute schedule (start + i*interval): a
// stalled request never delays later arrivals, it only raises the
// in-flight count.
func (g *generator) runSlot(slot int, rps float64, d time.Duration) slotReport {
	interval := time.Duration(float64(time.Second) / rps)
	var (
		mu       sync.Mutex
		latNs    []int64
		errors   int
		dropped  int
		shed     int
		retries  int
		maxDepth int
		wg       sync.WaitGroup
	)
	launched := 0
	start := time.Now()
	end := start.Add(d)
	for next := start; next.Before(end); next = next.Add(interval) {
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		kind := g.pick()
		select {
		case g.inflight <- struct{}{}:
		default:
			dropped++
			launched++
			continue
		}
		launched++
		wg.Add(1)
		go func(kind reqKind) {
			defer wg.Done()
			defer func() { <-g.inflight }()
			out := g.do(kind)
			mu.Lock()
			if out.ok {
				latNs = append(latNs, out.lat.Nanoseconds())
			} else {
				errors++
			}
			shed += out.shed
			retries += out.retries
			if out.retries > maxDepth {
				maxDepth = out.retries
			}
			mu.Unlock()
		}(kind)
	}
	wg.Wait() // drain the tail; bounded by the client timeout
	elapsed := time.Since(start)

	rep := slotReport{
		Slot:          slot,
		OfferedRPS:    rps,
		DurationSec:   d.Seconds(),
		Launched:      launched,
		Succeeded:     len(latNs),
		Errors:        errors,
		Dropped:       dropped,
		Shed:          shed,
		Retries:       retries,
		MaxRetryDepth: maxDepth,
		DrainSec:      (elapsed - d).Seconds(),
		AchievedRPS:   float64(len(latNs)) / elapsed.Seconds(),
	}
	if launched > 0 {
		rep.ErrorRate = float64(errors+dropped) / float64(launched)
	}
	if len(latNs) > 0 {
		sort.Slice(latNs, func(i, j int) bool { return latNs[i] < latNs[j] })
		var sum int64
		for _, n := range latNs {
			sum += n
		}
		ms := func(n int64) float64 { return float64(n) / 1e6 }
		quant := func(q float64) float64 {
			idx := int(math.Ceil(q*float64(len(latNs)))) - 1
			if idx < 0 {
				idx = 0
			}
			return ms(latNs[idx])
		}
		rep.P50Ms = quant(0.50)
		rep.P90Ms = quant(0.90)
		rep.P99Ms = quant(0.99)
		rep.MaxMs = ms(latNs[len(latNs)-1])
		rep.MeanMs = ms(sum / int64(len(latNs)))
	}
	return rep
}

// targetReport is one replica's slice of the run: request count, error
// rate and latency summary for the requests this target served.
type targetReport struct {
	URL       string  `json:"url"`
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	ErrorRate float64 `json:"error_rate"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MeanMs    float64 `json:"mean_ms"`
}

// report is the top-level JSON document.
type report struct {
	Mode           string            `json:"mode"`
	Target         string            `json:"target"`
	Targets        []targetReport    `json:"targets"`
	Mix            map[string]int    `json:"mix"`
	Instructions   int               `json:"instructions"`
	Slots          []slotReport      `json:"slots"`
	Saturation     *saturationReport `json:"saturation,omitempty"`
	TotalLaunched  int               `json:"total_launched"`
	TotalSucceeded int               `json:"total_succeeded"`
	TotalErrors    int               `json:"total_errors"`
	TotalShed      int               `json:"total_shed"`
	TotalRetries   int               `json:"total_retries"`
	WallSeconds    float64           `json:"wall_seconds"`
}

// saturationReport summarizes a -find-saturation search.
type saturationReport struct {
	// SustainableRPS is the highest offered rate that passed the
	// sustainability check (error rate and achieved/offered ratio).
	SustainableRPS float64 `json:"sustainable_rps"`
	// FirstUnsustainableRPS is the lowest probed rate that failed; the
	// truth lies between the two.
	FirstUnsustainableRPS float64 `json:"first_unsustainable_rps"`
	Probes                int     `json:"probes"`
	// BestSlot is the passing probe at SustainableRPS.
	BestSlot slotReport `json:"best_slot"`
}

// sustainable is the pass criterion for one saturation probe.
func sustainable(s slotReport, maxErrRate, minAchievedRatio float64) bool {
	return s.ErrorRate <= maxErrRate && s.AchievedRPS >= minAchievedRatio*s.OfferedRPS
}

// parseMix parses "hit=8,run=2" into weights and the expanded schedule.
func parseMix(spec string) (map[string]int, []reqKind, error) {
	weights := map[string]int{}
	var schedule []reqKind
	for _, part := range strings.Split(spec, ",") {
		name, wstr, found := strings.Cut(strings.TrimSpace(part), "=")
		w := 1
		if found {
			var err error
			if w, err = strconv.Atoi(wstr); err != nil || w <= 0 {
				return nil, nil, fmt.Errorf("bad weight in %q", part)
			}
		}
		kind, ok := kindNames[name]
		if !ok {
			return nil, nil, fmt.Errorf("unknown population %q (hit, run, sweep, stream)", name)
		}
		if _, dup := weights[name]; dup {
			return nil, nil, fmt.Errorf("population %q listed twice", name)
		}
		weights[name] = w
		for i := 0; i < w; i++ {
			schedule = append(schedule, kind)
		}
	}
	if len(schedule) == 0 {
		return nil, nil, fmt.Errorf("empty mix")
	}
	return weights, schedule, nil
}

func main() { os.Exit(run()) }

func run() int {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8080", "malecd base URL")
		targets   = flag.String("targets", "", "comma-separated malecd base URLs to round-robin load across (empty: just -addr; the first target hosts the stream population's campaign)")
		mode      = flag.String("mode", "sweep", "load shape: fixed | sweep | burst")
		startRPS  = flag.Float64("start-rps", 100, "starting (or base) offered RPS")
		step      = flag.Float64("step", 100, "RPS increment per slot in sweep mode; saturation-search resolution")
		targetRPS = flag.Float64("target-rps", 500, "final RPS in sweep mode; burst height; saturation-search upper bound")
		slotDur   = flag.Duration("slot", 5*time.Second, "duration of each RPS slot")
		slots     = flag.Int("slots", 4, "slot count in fixed and burst modes")
		mixSpec   = flag.String("mix", "hit", "weighted request mix, e.g. hit=8,run=2,sweep=1,stream=1")
		instr     = flag.Int("instructions", 50000, "instructions per requested simulation point")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-request timeout (a timed-out request is an error)")
		maxInfl   = flag.Int("max-inflight", 1024, "in-flight request cap; arrivals beyond it are dropped (counted as errors)")
		warmup    = flag.Bool("warmup", true, "synchronously prime each population once before measuring")
		seedBase  = flag.Uint64("run-seed-base", 0, "first seed for the run population (0: derive from wall clock, unique per invocation)")
		seedBase2 = flag.Uint64("seed-base", 0, "alias for -run-seed-base")
		findSat   = flag.Bool("find-saturation", false, "binary-search the max sustainable RPS instead of running a fixed shape")
		satErr    = flag.Float64("sat-max-error-rate", 0.01, "max error rate for a saturation probe to pass")
		satRatio  = flag.Float64("sat-min-achieved", 0.95, "min achieved/offered ratio for a saturation probe to pass")
		retries   = flag.Int("retries", 0, "retries per request after a shed (429/503) response, exponential backoff honoring Retry-After (0: shed is final)")
	)
	flag.Parse()

	weights, schedule, err := parseMix(*mixSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "malecload: -mix:", err)
		return 2
	}
	var bases []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimRight(strings.TrimSpace(t), "/"); t != "" {
			bases = append(bases, t)
		}
	}
	if len(bases) == 0 {
		bases = []string{strings.TrimRight(*addr, "/")}
	}
	g := &generator{
		bases: bases,
		client: &http.Client{
			Timeout: *timeout,
			Transport: &http.Transport{
				MaxIdleConns:        *maxInfl,
				MaxIdleConnsPerHost: *maxInfl,
				IdleConnTimeout:     90 * time.Second,
			},
		},
		schedule:     schedule,
		seedBase:     *seedBase,
		instructions: *instr,
		inflight:     make(chan struct{}, *maxInfl),
		retries:      *retries,
	}
	for range bases {
		g.targets = append(g.targets, &targetStats{})
	}
	if g.seedBase == 0 {
		g.seedBase = *seedBase2
	}
	if g.seedBase == 0 {
		g.seedBase = uint64(time.Now().UnixNano())
	}

	if *warmup {
		// Prime each population once per target so the hit/sweep mixes
		// measure the cache-hit steady state on every replica, not one
		// cold simulation; also proves each daemon is up before load
		// starts. The stream population pins to the first target, so it
		// warms only there.
		for name, kind := range kindNames {
			if weights[name] == 0 {
				continue
			}
			for _, base := range bases {
				if out := g.doTarget(base, kind); !out.ok {
					fmt.Fprintf(os.Stderr, "malecload: warmup %s request failed after %v (is malecd up at %s?)\n",
						name, out.lat.Round(time.Millisecond), base)
					return 1
				}
				if kind == kindStream {
					break
				}
			}
		}
	}

	rep := report{
		Mode:         *mode,
		Target:       bases[0],
		Mix:          weights,
		Instructions: *instr,
	}
	t0 := time.Now()
	probe := 0
	nextSlot := func(rps float64) slotReport {
		probe++
		fmt.Fprintf(os.Stderr, "[slot %d: offering %.0f rps for %v]\n", probe, rps, *slotDur)
		s := g.runSlot(probe, rps, *slotDur)
		rep.Slots = append(rep.Slots, s)
		return s
	}

	switch {
	case *findSat:
		rep.Mode = "find-saturation"
		sat := &saturationReport{}
		var best slotReport
		lo, hi := 0.0, 0.0 // highest passing / lowest failing offered RPS
		rps := *startRPS
		for probe < 20 {
			s := nextSlot(rps)
			if sustainable(s, *satErr, *satRatio) {
				lo, best = rps, s
				if hi == 0 {
					if rps >= *targetRPS {
						break // sustained the configured ceiling
					}
					rps = math.Min(rps*2, *targetRPS)
					continue
				}
			} else {
				hi = rps
				if lo == 0 {
					rps = rps / 2
					if rps < 1 {
						break
					}
					continue
				}
			}
			if hi-lo <= math.Max(*step, 0.02*lo) {
				break
			}
			rps = (lo + hi) / 2
		}
		sat.SustainableRPS = lo
		sat.FirstUnsustainableRPS = hi
		sat.Probes = probe
		sat.BestSlot = best
		rep.Saturation = sat
	case *mode == "fixed":
		for i := 0; i < *slots; i++ {
			nextSlot(*startRPS)
		}
	case *mode == "sweep":
		if *step <= 0 {
			fmt.Fprintln(os.Stderr, "malecload: sweep mode needs -step > 0")
			return 2
		}
		for rps := *startRPS; rps <= *targetRPS+1e-9; rps += *step {
			nextSlot(rps)
		}
	case *mode == "burst":
		// Alternate base and burst slots (base first), the invitro
		// burst pattern: steady traffic punctuated by spikes at the
		// target rate.
		for i := 0; i < *slots; i++ {
			if i%2 == 0 {
				nextSlot(*startRPS)
			} else {
				nextSlot(*targetRPS)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "malecload: unknown -mode %q (fixed, sweep, burst)\n", *mode)
		return 2
	}
	rep.WallSeconds = time.Since(t0).Seconds()
	for i, ts := range g.targets {
		ts.mu.Lock()
		tr := targetReport{URL: bases[i], Requests: ts.requests, Errors: ts.errors}
		if ts.requests > 0 {
			tr.ErrorRate = float64(ts.errors) / float64(ts.requests)
		}
		if n := len(ts.latNs); n > 0 {
			sort.Slice(ts.latNs, func(a, b int) bool { return ts.latNs[a] < ts.latNs[b] })
			var sum int64
			for _, v := range ts.latNs {
				sum += v
			}
			quant := func(q float64) float64 {
				idx := int(math.Ceil(q*float64(n))) - 1
				if idx < 0 {
					idx = 0
				}
				return float64(ts.latNs[idx]) / 1e6
			}
			tr.P50Ms = quant(0.50)
			tr.P99Ms = quant(0.99)
			tr.MeanMs = float64(sum/int64(n)) / 1e6
		}
		ts.mu.Unlock()
		rep.Targets = append(rep.Targets, tr)
	}
	for _, s := range rep.Slots {
		rep.TotalLaunched += s.Launched
		rep.TotalSucceeded += s.Succeeded
		rep.TotalErrors += s.Errors + s.Dropped
		rep.TotalShed += s.Shed
		rep.TotalRetries += s.Retries
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "malecload:", err)
		return 1
	}
	fmt.Println(string(out))
	return 0
}
