// Command malecd serves MALEC simulations over HTTP. It fronts a shared
// campaign engine, so concurrent requests for the same simulation point
// run it once (singleflight), repeated requests are cache hits, and with
// -cache-dir results survive restarts.
//
// Usage:
//
//	malecd -addr :8080 -workers 8 -cache-dir /var/cache/malec
//
//	curl localhost:8080/v1/configs
//	curl -d '{"config":"MALEC","benchmark":"gzip","instructions":500000}' \
//	    localhost:8080/v1/run
//	curl -d '{"configs":["Base1ldst","MALEC"],"benchmarks":["gzip","mcf"],"format":"csv"}' \
//	    localhost:8080/v1/sweep
//	curl -d '{"configs":["MALEC"],"benchmarks":["gzip"]}' localhost:8080/v1/campaigns
//	curl localhost:8080/v1/campaigns/<id>/results        # NDJSON stream, resumable
//	curl localhost:8080/metrics
//
// With -cache-dir set, campaigns submitted via /v1/campaigns are durable:
// each journals its progress under <cache-dir>/v1/campaigns/<id>, and on
// restart malecd replays the journals — completed campaigns keep serving
// their exports, interrupted ones resume without recomputing any
// completed point. -journal-retention and -corrupt-retention bound how
// long finished journals and .corrupt quarantine files are kept.
//
// GET /metrics serves the Prometheus text exposition: per-endpoint
// request counters, in-flight gauges and latency histograms plus the
// engine's cache/dedup/trace counters and scheduler queue depth. With
// -pprof the standard net/http/pprof handlers are mounted under
// /debug/pprof/ on the same listener.
//
// On SIGINT/SIGTERM the daemon stops accepting connections and drains
// in-flight requests for up to -drain-timeout before exiting, so a
// rolling restart never cuts a simulation (or a load-test tail) off
// mid-response.
//
// With -peers (plus -advertise), the daemon joins a cluster of replicas:
// a consistent-hash ring assigns each simulation point an owner, any node
// accepts any request and forwards non-owned points to their owners over
// /internal/v1/point, and an unreachable owner degrades to local
// execution — degraded, never down. See the README "Cluster" section.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"malec/internal/cluster"
	"malec/internal/engine"
	"malec/internal/faultinject"
	"malec/internal/server"
)

// splitURLs parses a comma-separated base-URL list, trimming whitespace
// and trailing slashes and dropping empty entries.
func splitURLs(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimRight(strings.TrimSpace(part), "/")
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "max concurrent simulations (default GOMAXPROCS)")
		cacheDir   = flag.String("cache-dir", "", "persist results in this directory across restarts")
		maxInstr   = flag.Int("max-instructions", 5_000_000, "per-request instruction limit")
		maxJobs    = flag.Int("max-sweep-jobs", 4096, "per-sweep expanded job limit")
		maxCache   = flag.Int("max-cache-entries", 1<<14, "in-memory result cache bound (oldest evicted; 0 = unbounded)")
		traceRec   = flag.Int("trace-cache", 0, "materialized-trace cache bound in records shared across configs (0 = default, negative = regenerate traces per simulation)")
		ckptEnt    = flag.Int("checkpoint-entries", 0, "in-memory warmed-checkpoint cache bound for sampled simulations (0 = default, negative = disable checkpointing)")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the same listener")
		drain      = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain window for in-flight requests on SIGINT/SIGTERM")
		drainGrace = flag.Duration("drain-grace", 0, "pause between failing /readyz and closing the listener, so load balancers stop routing first")
		reqTimeout = flag.Duration("request-timeout", 5*time.Minute, "per-request processing deadline for /v1/run and /v1/sweep (0 = unbounded; deadline_ms can only tighten it)")
		maxConc    = flag.Int("max-concurrent", 0, "simulation-bearing requests admitted at once (0 = 2x workers, negative = unbounded)")
		maxQueue   = flag.Int("max-queue", 256, "admission queue depth beyond -max-concurrent; excess shed with 429 + Retry-After")
		queueWait  = flag.Duration("queue-wait", 5*time.Second, "max time a request may wait in the admission queue before being shed")
		perClient  = flag.Int("per-client", 32, "concurrent simulation-bearing requests per client (X-API-Key or remote address; 0 = unbounded)")
		maxCamps   = flag.Int("max-campaigns", 8, "concurrently running durable campaigns; excess submissions shed with 429")
		campRetry  = flag.Int("campaign-retries", 2, "default per-job retry bound for durable campaigns")
		journalRet = flag.Duration("journal-retention", 7*24*time.Hour, "age past which completed campaign journals are pruned at startup (0 = keep forever)")
		corruptRet = flag.Duration("corrupt-retention", 7*24*time.Hour, "age past which .corrupt quarantine files are pruned at startup (0 = keep forever)")
		journalFlg = flag.String("journal-dir", "", "durable-campaign journal root (default <cache-dir>/v1/campaigns; lets clustered replicas share a result store without sharing journals)")
		peers      = flag.String("peers", "", "comma-separated base URLs of the other cluster members (e.g. http://10.0.0.2:8080); empty = single node")
		advertise  = flag.String("advertise", "", "this node's base URL as peers reach it (default http://127.0.0.1<addr> when -addr is :port)")
		peerTO     = flag.Duration("peer-timeout", time.Minute, "end-to-end timeout for one forwarded point call")
		hedgeAfter = flag.Duration("hedge-after", 0, "race a second identical forwarded call if the first has not answered within this window (0 = no hedging)")
		probeEvery = flag.Duration("peer-probe-interval", time.Second, "peer /readyz health-probe period")
	)
	flag.Parse()

	eng := engine.New(engine.Options{
		Workers:           *workers,
		CacheDir:          *cacheDir,
		MaxCacheEntries:   *maxCache,
		TraceCacheRecords: *traceRec,
		CheckpointEntries: *ckptEnt,
	})
	// Admission defaults scale with simulation capacity: admit up to twice
	// the worker count (the extra headroom keeps workers fed through cache
	// hits), queue a bounded burst beyond that, shed the rest.
	concurrent := *maxConc
	switch {
	case concurrent == 0:
		concurrent = 2 * eng.Workers()
	case concurrent < 0:
		concurrent = 0
	}
	// Startup hygiene before serving: sweep aged .corrupt quarantine
	// files, prune expired campaign journals, then replay the survivors —
	// completed campaigns re-register for status/export serving, unfinished
	// ones (a previous process crashed or was killed mid-campaign) resume
	// where their journal left off, pulling completed points from the
	// result store instead of recomputing them.
	if pruned := eng.PruneCorrupt(*corruptRet); pruned > 0 {
		log.Printf("malecd pruned %d .corrupt quarantine files older than %v", pruned, *corruptRet)
	}
	var journalDir string
	if *journalFlg != "" {
		journalDir = *journalFlg
	} else if *cacheDir != "" {
		journalDir = filepath.Join(*cacheDir, "v1", "campaigns")
	}

	// Cluster mode: a static peer list plus this node's advertised URL
	// turn the daemon into one member of a simulation fabric. The ring
	// routes each point to its owner; campaign concurrency scales to the
	// fabric (forwarded points consume no local worker slots).
	var clu *cluster.Cluster
	if *peers != "" {
		peerList := splitURLs(*peers)
		self := *advertise
		if self == "" {
			if len(*addr) > 0 && (*addr)[0] == ':' {
				self = "http://127.0.0.1" + *addr
			} else {
				log.Fatal("malecd: -peers requires -advertise (could not derive a base URL from -addr)")
			}
		}
		clu = cluster.New(cluster.Options{
			Self:          self,
			Peers:         peerList,
			ProbeInterval: *probeEvery,
			CallTimeout:   *peerTO,
			HedgeAfter:    *hedgeAfter,
		})
		clu.Start()
		defer clu.Stop()
		log.Printf("malecd cluster: self=%s peers=%v (peer-timeout=%v hedge-after=%v)",
			self, peerList, *peerTO, *hedgeAfter)
	}

	campWorkers := 0
	if clu != nil {
		campWorkers = eng.Workers() * clu.Size()
	}
	mgr := engine.NewCampaignManager(eng, engine.CampaignManagerOptions{
		Dir:            journalDir,
		MaxActive:      *maxCamps,
		DefaultRetries: *campRetry,
		DefaultWorkers: campWorkers,
	})
	if journalDir != "" {
		if pruned := mgr.PruneJournals(*journalRet); pruned > 0 {
			log.Printf("malecd pruned %d campaign journals older than %v", pruned, *journalRet)
		}
		completed, resumed, err := mgr.Replay()
		if err != nil {
			log.Printf("malecd journal replay: %v", err)
		}
		if completed > 0 || resumed > 0 {
			log.Printf("malecd replayed campaign journals: %d completed, %d resumed", completed, resumed)
		}
	}
	api := server.New(eng, server.Options{
		MaxInstructions:      *maxInstr,
		MaxSweepJobs:         *maxJobs,
		RequestTimeout:       *reqTimeout,
		MaxConcurrent:        concurrent,
		MaxQueueDepth:        *maxQueue,
		MaxQueueWait:         *queueWait,
		PerClientConcurrency: *perClient,
		Campaigns:            mgr,
		Cluster:              clu,
	})
	if fp := faultinject.Active(); len(fp) > 0 {
		log.Printf("malecd FAULT INJECTION ARMED: %v", fp)
	}

	var handler http.Handler = api
	if *pprofOn {
		// The API keeps its own mux; pprof mounts beside it so profiling
		// is a flag away but never exposed by default.
		mux := http.NewServeMux()
		mux.Handle("/", api)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Simulations (and whole sweeps) legitimately take a while, so
		// no write timeout; only bound header reads against slow-loris
		// clients.
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain: Shutdown stops the
	// listener immediately and waits for in-flight handlers up to the
	// drain window. Killing mid-request would poison every load-test
	// tail (and any client retry logic) with spurious connection resets.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("malecd listening on %s (cache-dir=%q, pprof=%v)", *addr, *cacheDir, *pprofOn)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatal(err) // bind failure or listener error before any signal
	case <-ctx.Done():
	}
	stop()
	// Drain sequence: fail /readyz (and start shedding new simulation
	// requests with 503) first, give load balancers -drain-grace to notice,
	// then close the listener and wait out in-flight handlers.
	api.StartDraining()
	if *drainGrace > 0 {
		log.Printf("malecd drain grace %v (readyz failing)", *drainGrace)
		time.Sleep(*drainGrace)
	}
	log.Printf("malecd draining (timeout %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("malecd shutdown: %v", err)
		srv.Close() //nolint:errcheck // best-effort hard stop after drain timeout
		os.Exit(1)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("malecd listener: %v", err)
	}
	log.Printf("malecd stopped cleanly")
}
