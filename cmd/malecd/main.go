// Command malecd serves MALEC simulations over HTTP. It fronts a shared
// campaign engine, so concurrent requests for the same simulation point
// run it once (singleflight), repeated requests are cache hits, and with
// -cache-dir results survive restarts.
//
// Usage:
//
//	malecd -addr :8080 -workers 8 -cache-dir /var/cache/malec
//
//	curl localhost:8080/v1/configs
//	curl -d '{"config":"MALEC","benchmark":"gzip","instructions":500000}' \
//	    localhost:8080/v1/run
//	curl -d '{"configs":["Base1ldst","MALEC"],"benchmarks":["gzip","mcf"],"format":"csv"}' \
//	    localhost:8080/v1/sweep
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"malec/internal/engine"
	"malec/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "max concurrent simulations (default GOMAXPROCS)")
		cacheDir = flag.String("cache-dir", "", "persist results in this directory across restarts")
		maxInstr = flag.Int("max-instructions", 5_000_000, "per-request instruction limit")
		maxJobs  = flag.Int("max-sweep-jobs", 4096, "per-sweep expanded job limit")
		maxCache = flag.Int("max-cache-entries", 1<<14, "in-memory result cache bound (oldest evicted; 0 = unbounded)")
		traceRec = flag.Int("trace-cache", 0, "materialized-trace cache bound in records shared across configs (0 = default, negative = regenerate traces per simulation)")
	)
	flag.Parse()

	eng := engine.New(engine.Options{
		Workers:           *workers,
		CacheDir:          *cacheDir,
		MaxCacheEntries:   *maxCache,
		TraceCacheRecords: *traceRec,
	})
	handler := server.New(eng, server.Options{
		MaxInstructions: *maxInstr,
		MaxSweepJobs:    *maxJobs,
	})

	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Simulations (and whole sweeps) legitimately take a while, so
		// no write timeout; only bound header reads against slow-loris
		// clients.
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("malecd listening on %s (cache-dir=%q)", *addr, *cacheDir)
	log.Fatal(srv.ListenAndServe())
}
