// energycompare sweeps the five Fig. 4 configurations over a benchmark
// subset and prints normalized execution time and energy (the paper's
// headline evaluation), including the per-component energy split of one
// benchmark to show where MALEC's savings come from.
package main

import (
	"flag"
	"fmt"
	"strings"

	"malec"
)

func main() {
	benchList := flag.String("bench", "gzip,gap,equake,djpeg", "comma-separated benchmarks")
	n := flag.Int("n", 200000, "instructions per benchmark")
	detail := flag.String("detail", "gzip", "benchmark to break down per component")
	flag.Parse()

	opt := malec.Options{Instructions: *n, Benchmarks: strings.Split(*benchList, ",")}
	r := malec.Fig4(opt)

	fmt.Println("Normalized execution time [% of Base1ldst]")
	header(r.Grid.Configs)
	for _, b := range r.Grid.Benchmarks {
		fmt.Printf("%-12s", b)
		for _, c := range r.Grid.Configs {
			fmt.Printf(" %9.1f", 100*r.Time[c][b])
		}
		fmt.Println()
	}

	fmt.Println("\nNormalized total energy [% of Base1ldst]")
	header(r.Grid.Configs)
	for _, b := range r.Grid.Benchmarks {
		fmt.Printf("%-12s", b)
		for _, c := range r.Grid.Configs {
			fmt.Printf(" %9.1f", 100*r.Total[c][b])
		}
		fmt.Println()
	}

	if res, ok := r.Grid.Results["MALEC"][*detail]; ok {
		fmt.Printf("\nMALEC component breakdown for %s:\n%s", *detail, res.Energy.String())
		fmt.Printf("L1 access modes: %d conventional, %d reduced (%.1f%% coverage)\n",
			res.L1.ConventionalReads, res.L1.ReducedReads, 100*res.Coverage())
	}
}

func header(configs []string) {
	fmt.Printf("%-12s", "benchmark")
	for _, c := range configs {
		fmt.Printf(" %9s", shorten(c))
	}
	fmt.Println()
}

func shorten(c string) string {
	c = strings.ReplaceAll(c, "Base", "B")
	c = strings.ReplaceAll(c, "_1cycleL1", "-1c")
	c = strings.ReplaceAll(c, "_3cycleL1", "-3c")
	if len(c) > 9 {
		c = c[:9]
	}
	return c
}
