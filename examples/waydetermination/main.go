// waydetermination compares Page-Based Way Determination (way tables
// coupled to the TLBs) against Nicolaescu et al.'s Way Determination Unit
// at 8/16/32 entries (paper Sec. VI-C), and shows the effect of the
// last-entry register feedback update (Sec. V: 75% -> 94% coverage).
package main

import (
	"flag"
	"fmt"
	"strings"

	"malec"
)

func main() {
	benchList := flag.String("bench", "gzip,gap,equake,djpeg,h263enc", "comma-separated benchmarks")
	n := flag.Int("n", 200000, "instructions per benchmark")
	flag.Parse()

	opt := malec.Options{Instructions: *n, Benchmarks: strings.Split(*benchList, ",")}

	fmt.Println("WT vs WDU (paper Sec. VI-C: WT 94% coverage; WDU-8/16/32:")
	fmt.Println("68/76/78% coverage and +4/+5/+8% energy)")
	fmt.Println()
	wdu := malec.WDUComparison(opt)
	fmt.Printf("%-14s %10s %12s %12s\n", "scheme", "coverage", "energy", "dynamic")
	for _, row := range wdu.Rows {
		fmt.Printf("%-14s %9.1f%% %+11.1f%% %+11.1f%%\n",
			row.Name, 100*row.Coverage, 100*(row.Energy-1), 100*(row.Dynamic-1))
	}

	fmt.Println("\nLast-entry register feedback ablation (paper Sec. V):")
	cov := malec.CoverageAblation(opt)
	for _, row := range cov.Rows {
		fmt.Printf("%-18s %6.1f%% coverage\n", row.Name, 100*row.Coverage)
	}
}
