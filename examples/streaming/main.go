// streaming examines MALEC on streaming workloads (mcf, art), where the
// paper notes Page-Based Way Determination exhibits "negative energy
// benefits" and suggests run-time cache bypassing (Sec. VI-D). It shows
// the way-table maintenance burden of high-miss workloads and what the
// bypassing extension changes.
package main

import (
	"flag"
	"fmt"
	"strings"

	"malec"
)

func main() {
	benchList := flag.String("bench", "mcf,art,gzip", "comma-separated benchmarks")
	n := flag.Int("n", 200000, "instructions per benchmark")
	flag.Parse()
	benches := strings.Split(*benchList, ",")

	fmt.Println("Way-table maintenance under streaming (per benchmark, MALEC):")
	fmt.Printf("%-10s %9s %9s %10s %10s %10s\n",
		"benchmark", "L1 miss", "coverage", "fills", "rev.lookups", "energy/instr")
	for _, b := range benches {
		r := malec.Run(malec.MALEC(), b, *n, 1)
		fmt.Printf("%-10s %8.1f%% %8.1f%% %10d %10d %10.1f pJ\n",
			b, 100*r.L1.MissRate(), 100*r.Coverage(), r.L1.Fills,
			r.UTLB.ReverseLookups+r.TLB.ReverseLookups,
			r.Energy.Total()/float64(r.Instructions))
	}

	fmt.Println("\nRun-time cache bypassing (Sec. VI-D suggestion):")
	res := malec.Bypass(malec.Options{Instructions: *n, Benchmarks: benches})
	fmt.Printf("%-10s %12s %12s %14s\n", "benchmark", "time", "energy", "bypassed fills")
	for _, row := range res.Rows {
		fmt.Printf("%-10s %+11.1f%% %+11.1f%% %14d\n",
			row.Benchmark, 100*(row.Time-1), 100*(row.Energy-1), row.BypassedFills)
	}
	fmt.Println("\n(positive time/energy = worse than plain MALEC; bypassing trades")
	fmt.Println("repeated L2 latency for avoided fills and way-table maintenance)")
}
