// customworkload shows how to define a synthetic workload profile from
// scratch, generate a trace from it, and compare the L1 interfaces on it —
// the path a user takes to model their own application's memory behaviour.
package main

import (
	"flag"
	"fmt"

	"malec"
)

func main() {
	n := flag.Int("n", 200000, "instructions")
	pageLocality := flag.Float64("pagelocality", 0.9, "probability of staying on the current page")
	lineLocality := flag.Float64("linelocality", 0.4, "probability of staying in the current line")
	workingSet := flag.Int("ws", 64, "working set in pages")
	flag.Parse()

	// A custom profile: a pointer-light, locality-heavy workload.
	prof := malec.Profile{
		Name:              "custom",
		Suite:             "custom",
		MemRatio:          0.42,
		LoadFrac:          2.0 / 3.0,
		NumStreams:        2,
		StreamSwitchProb:  0.2,
		StreamStride:      16,
		StreamRegionPages: 2,
		SamePageProb:      *pageLocality,
		SameLineProb:      *lineLocality,
		SeqPageProb:       0.7,
		RandomFrac:        0.01,
		WorkingSetPages:   *workingSet,
		LoadDepProb:       0.4,
		MemDepProb:        0.1,
		DepWindow:         32,
		AluChainProb:      0.7,
		BranchRatio:       0.15,
		MispredictProb:    0.08,
		BranchLoadDepProb: 0.5,
		WideAccessFrac:    0.1,
	}
	records := malec.GenerateProfile(prof, *n, 1)
	fmt.Printf("generated %d records (page locality %.2f, line locality %.2f, %d-page WS)\n\n",
		len(records), *pageLocality, *lineLocality, *workingSet)

	fmt.Printf("%-22s %10s %8s %14s %9s\n", "config", "cycles", "IPC", "energy [nJ]", "coverage")
	for _, cfg := range []malec.Config{
		malec.Base1ldst(), malec.Base2ld1st(), malec.MALEC(),
	} {
		r := malec.RunTrace(cfg, "custom", records)
		cov := "-"
		if r.CoverageTotal > 0 {
			cov = fmt.Sprintf("%.1f%%", 100*r.Coverage())
		}
		fmt.Printf("%-22s %10d %8.3f %14.1f %9s\n",
			r.Config, r.Cycles, r.IPC(), r.Energy.Total()/1000, cov)
	}
	fmt.Println("\nTry -pagelocality 0.5 to see MALEC's grouping advantage shrink:")
	fmt.Println("one page per cycle only helps when consecutive accesses share pages.")
}
