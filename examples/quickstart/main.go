// Quickstart: simulate one benchmark on the energy-oriented baseline and on
// MALEC, and report the headline trade-off the paper makes — similar
// performance to a high-performance interface at roughly half the L1
// interface energy.
package main

import (
	"flag"
	"fmt"

	"malec"
)

func main() {
	bench := flag.String("bench", "gzip", "benchmark workload")
	n := flag.Int("n", 300000, "instructions")
	flag.Parse()

	base := malec.Run(malec.Base1ldst(), *bench, *n, 1)
	perf := malec.Run(malec.Base2ld1st(), *bench, *n, 1)
	prop := malec.Run(malec.MALEC(), *bench, *n, 1)

	fmt.Printf("benchmark %s, %d instructions\n\n", *bench, *n)
	fmt.Printf("%-12s %10s %8s %14s %9s\n", "config", "cycles", "IPC", "energy [nJ]", "coverage")
	for _, r := range []malec.Result{base, perf, prop} {
		cov := "-"
		if r.CoverageTotal > 0 {
			cov = fmt.Sprintf("%.1f%%", 100*r.Coverage())
		}
		fmt.Printf("%-12s %10d %8.3f %14.1f %9s\n",
			r.Config, r.Cycles, r.IPC(), r.Energy.Total()/1000, cov)
	}

	speedup := func(r malec.Result) float64 {
		return float64(base.Cycles)/float64(r.Cycles) - 1
	}
	energy := func(r malec.Result) float64 {
		return r.Energy.Total()/base.Energy.Total() - 1
	}
	fmt.Printf("\nvs %s:\n", base.Config)
	fmt.Printf("  %-12s %+6.1f%% performance, %+6.1f%% energy\n",
		perf.Config, 100*speedup(perf), 100*energy(perf))
	fmt.Printf("  %-12s %+6.1f%% performance, %+6.1f%% energy\n",
		prop.Config, 100*speedup(prop), 100*energy(prop))
	fmt.Printf("\nMALEC vs Base2ld1st energy: %+.1f%%\n",
		100*(prop.Energy.Total()/perf.Energy.Total()-1))
}
