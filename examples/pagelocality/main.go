// pagelocality reproduces the paper's Fig. 1 analysis for chosen
// benchmarks: how many consecutive loads hit the same page when up to n
// intermediate accesses to other pages are tolerated — the trace property
// MALEC's page-based grouping is built on (Sec. III).
package main

import (
	"flag"
	"fmt"
	"strings"

	"malec"
)

func main() {
	benchList := flag.String("bench", "gzip,mcf,djpeg", "comma-separated benchmarks")
	n := flag.Int("n", 200000, "instructions per benchmark")
	flag.Parse()

	opt := malec.Options{
		Instructions: *n,
		Benchmarks:   strings.Split(*benchList, ","),
	}
	r := malec.Fig1(opt)

	fmt.Println("Fraction of loads amenable to page-based grouping")
	fmt.Printf("(runs of >=2 same-page loads, tolerating x intermediate accesses)\n\n")
	fmt.Printf("%-12s", "benchmark")
	for _, g := range r.Gaps {
		fmt.Printf("  x<=%-3d", g)
	}
	fmt.Printf("  %8s %8s\n", "pg-next", "ln-next")
	for _, row := range r.Rows {
		fmt.Printf("%-12s", row.Name)
		for g := range r.Gaps {
			fmt.Printf("  %5.1f%%", 100*row.Grouped[g])
		}
		fmt.Printf("  %7.1f%% %7.1f%%\n",
			100*row.FollowedSamePage, 100*row.FollowedSameLine)
	}
	ov := r.Overall
	fmt.Printf("%-12s", "overall")
	for g := range r.Gaps {
		fmt.Printf("  %5.1f%%", 100*ov.Grouped[g])
	}
	fmt.Printf("  %7.1f%% %7.1f%%\n", 100*ov.FollowedSamePage, 100*ov.FollowedSameLine)

	fmt.Println("\nRun-length distribution at gap 0 (paper's bar groups):")
	fmt.Printf("%-12s %6s %6s %6s %6s %6s\n", "benchmark", "1", "2", "3-4", "5-8", ">8")
	for _, row := range r.Rows {
		fmt.Printf("%-12s", row.Name)
		for b := 0; b < 5; b++ {
			fmt.Printf(" %5.1f%%", 100*row.Runs[0][b])
		}
		fmt.Println()
	}
	fmt.Println("\nPaper reference: 70% of loads are directly followed by a same-page")
	fmt.Println("load; 85%/90%/92% with 1/2/3 tolerated gaps; 46% by a same-line load.")
}
