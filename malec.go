// Package malec is a simulation library reproducing "MALEC: A Multiple
// Access Low Energy Cache" (Boettcher, Gabrielli, Al-Hashimi, Kershaw —
// DATE 2013).
//
// MALEC is an L1 data cache interface for out-of-order superscalar
// processors. It exploits the observation that consecutive memory
// references tend to access the same page: by restricting the interface to
// one page per cycle it keeps every structure single-ported (uTLB, TLB,
// cache banks), shares each address translation among all grouped
// references, merges loads to the same cache line, and uses Page-Based Way
// Determination — way tables coupled to the TLBs — to bypass tag arrays on
// the majority of accesses.
//
// The package exposes:
//
//   - machine configurations matching the paper's Tab. I/II (Base1ldst,
//     Base2ld1st, MALEC, and their latency/WDU/ablation variants);
//   - 38 synthetic benchmark workloads standing in for the paper's SPEC
//     CPU2000 and MediaBench2 SimPoint phases;
//   - a cycle-level out-of-order core + memory hierarchy simulator;
//   - an analytical CACTI-substitute energy model;
//   - experiment drivers regenerating every table and figure of the
//     paper's evaluation;
//   - a campaign engine (NewEngine) with a content-addressed result
//     cache, singleflight deduplication of concurrent identical runs,
//     bounded-worker scheduling, optional disk persistence, a shared
//     materialized-trace cache (each workload is generated once per
//     campaign and its record arena shared across every configuration),
//     and config x benchmark x seed sweep campaigns with JSON/CSV
//     export — the layer the experiment drivers and the malecd HTTP
//     service (cmd/malecd) run on.
//
// Quick start:
//
//	base := malec.Run(malec.Base1ldst(), "gzip", 500000, 1)
//	prop := malec.Run(malec.MALEC(), "gzip", 500000, 1)
//	speedup := float64(base.Cycles) / float64(prop.Cycles)
//	saving := 1 - prop.Energy.Total()/base.Energy.Total()
//
// Cached, deduplicated, parallel simulation through the engine:
//
//	eng := malec.NewEngine(malec.EngineOptions{Workers: 8})
//	camp, err := eng.RunCampaign(malec.CampaignSpec{
//		Configs:    malec.Fig4Configs(),
//		Benchmarks: []string{"gzip", "mcf"},
//		Seeds:      []uint64{1, 2, 3},
//	})
//	csv, _ := camp.CSV() // deterministic across worker counts
package malec

import (
	"malec/internal/config"
	"malec/internal/cpu"
	"malec/internal/energy"
	"malec/internal/engine"
	"malec/internal/experiments"
	"malec/internal/stats"
	"malec/internal/trace"
)

// Config describes a simulated machine: the L1 interface microarchitecture
// (Tab. I) plus the core and memory hierarchy parameters (Tab. II).
type Config = config.Config

// Result carries the performance, activity and energy statistics of one
// simulation run.
type Result = cpu.Result

// Counters is the typed event-counter set attached to every Result.
type Counters = stats.Counters

// Counter is a typed event-counter ID. Hot paths count through these IDs;
// each maps to a canonical dotted name (Counter.Name, CounterByName) used
// by the JSON encoding and the name-keyed accessors.
type Counter = stats.Counter

// Typed counter IDs (canonical names in parentheses).
const (
	CtrIssueLoads  = stats.CtrIssueLoads  // issue.loads
	CtrIssueStores = stats.CtrIssueStores // issue.stores
	CtrIBStalls    = stats.CtrIBStalls    // ib.stalls
	CtrIBCarried   = stats.CtrIBCarried   // ib.carried

	CtrUTLBLookups = stats.CtrUTLBLookups // tlb.utlb_lookups
	CtrTLBLookups  = stats.CtrTLBLookups  // tlb.tlb_lookups
	CtrTLBWalks    = stats.CtrTLBWalks    // tlb.walks

	CtrL1ReducedReads       = stats.CtrL1ReducedReads       // l1.reduced_reads
	CtrL1ConventionalReads  = stats.CtrL1ConventionalReads  // l1.conventional_reads
	CtrL1LoadMisses         = stats.CtrL1LoadMisses         // l1.load_misses
	CtrL1StoreMisses        = stats.CtrL1StoreMisses        // l1.store_misses
	CtrL1Fills              = stats.CtrL1Fills              // l1.fills
	CtrL1BypassedFills      = stats.CtrL1BypassedFills      // l1.bypassed_fills
	CtrL1Writebacks         = stats.CtrL1Writebacks         // l1.writebacks
	CtrL1ReducedWrites      = stats.CtrL1ReducedWrites      // l1.reduced_writes
	CtrL1ConventionalWrites = stats.CtrL1ConventionalWrites // l1.conventional_writes
	CtrL1MSHRStalls         = stats.CtrL1MSHRStalls         // l1.mshr_stalls

	CtrSBForwards  = stats.CtrSBForwards  // sb.forwards
	CtrMBForwards  = stats.CtrMBForwards  // mb.forwards
	CtrMBMBEWrites = stats.CtrMBMBEWrites // mb.mbe_writes

	CtrMalecGroups        = stats.CtrMalecGroups        // malec.groups
	CtrMalecGroupLoads    = stats.CtrMalecGroupLoads    // malec.group_loads
	CtrMalecMergedLoads   = stats.CtrMalecMergedLoads   // malec.merged_loads
	CtrMalecBankConflicts = stats.CtrMalecBankConflicts // malec.bank_conflicts

	// Host-simulator telemetry counters, reported via Result.Telemetry:
	// cycle-skipping fast-forward activity (see README "Cycle skipping").
	CtrSkippedCycles = stats.CtrSkippedCycles // sim.skipped_cycles
	CtrSkipJumps     = stats.CtrSkipJumps     // sim.skip_jumps

	// Sampled-simulation telemetry (see README "Sampled simulation").
	CtrSampledWindows       = stats.CtrSampledWindows       // sim.sampled_windows
	CtrSampledWarmedRecords = stats.CtrSampledWarmedRecords // sim.sampled_warmed_records
	CtrCheckpointRestores   = stats.CtrCheckpointRestores   // sim.checkpoint_restores
	CtrCheckpointSaves      = stats.CtrCheckpointSaves      // sim.checkpoint_saves
)

// CounterByName resolves a canonical counter name (e.g. "l1.fills") to its
// typed ID.
func CounterByName(name string) (Counter, bool) { return stats.CounterByName(name) }

// CounterNames returns the canonical names of all defined counters in ID
// order.
func CounterNames() []string { return stats.CounterNames() }

// EnergyBreakdown is the per-component dynamic/leakage energy report of a
// Result (picojoules), indexable by EnergyComponent.
type EnergyBreakdown = energy.Breakdown

// EnergyComponent identifies one accounting bucket of the energy breakdown
// (L1, uTLB, TLB, uWT, WT, WDU).
type EnergyComponent = energy.Component

// EnergyComponents returns every energy accounting bucket in reporting
// order, for iterating a Breakdown's Dynamic/Leakage arrays.
func EnergyComponents() []EnergyComponent { return energy.Components() }

// Record is one dynamic trace instruction.
type Record = trace.Record

// Profile parameterizes the synthetic workload generator.
type Profile = trace.Profile

// Options scales the experiment drivers (instructions per benchmark, seed,
// benchmark subset, parallelism).
type Options = experiments.Options

// Sampling is the (warmup, detail, interval) schedule of the SMARTS-style
// sampled fast path; assign one to Config.Sampling to switch a run from
// exact cycle-accurate simulation to interval sampling with extrapolated
// cycles/energy and confidence intervals (Result.Sampling). Setting
// MALEC_NO_SAMPLING=1 forces the exact path regardless.
type Sampling = config.Sampling

// SamplingEstimate reports a sampled run's schedule, per-metric 95%
// confidence intervals and checkpoint reuse, via Result.Sampling.
type SamplingEstimate = cpu.SamplingEstimate

// DefaultSampling returns the default sampled-run schedule (2k warmup + 8k
// detail per 1M-instruction interval, i.e. 1% detail).
func DefaultSampling() *Sampling { return config.DefaultSampling() }

// Configuration presets (paper Tab. I and Sec. VI variants).
var (
	// Base1ldst is the energy-oriented baseline: one load or store per
	// cycle, single-ported structures.
	Base1ldst = config.Base1ldst
	// Base2ld1st is the performance-oriented baseline: two loads plus one
	// store per cycle via physical multi-porting on top of banking.
	Base2ld1st = config.Base2ld1st
	// Base2ld1st1cycleL1 is Base2ld1st with a 1-cycle L1.
	Base2ld1st1cycleL1 = config.Base2ld1st1cycleL1
	// MALEC is the proposed interface as evaluated in the paper.
	MALEC = config.MALEC
	// MALEC3cycleL1 is MALEC with a 3-cycle L1.
	MALEC3cycleL1 = config.MALEC3cycleL1
	// MALECWithWDU substitutes an n-entry Way Determination Unit for the
	// way tables (Sec. VI-C comparison).
	MALECWithWDU = config.MALECWithWDU
	// MALECNoMerge disables load merging (Sec. VI-B ablation).
	MALECNoMerge = config.MALECNoMerge
	// MALECNoFeedback disables the last-entry register update (Sec. V
	// coverage ablation).
	MALECNoFeedback = config.MALECNoFeedback
	// MALECNoWayDet disables way determination entirely.
	MALECNoWayDet = config.MALECNoWayDet
	// Fig4Configs returns the five configurations of Fig. 4 in order.
	Fig4Configs = config.Fig4Configs
)

// Engine is the simulation campaign engine: a content-addressed result
// cache plus a bounded-worker, deduplicating scheduler. See NewEngine.
type Engine = engine.Engine

// EngineOptions configures NewEngine (workers, disk cache directory,
// materialized-trace cache bound).
type EngineOptions = engine.Options

// EngineStats snapshots an engine's cache and scheduler counters.
type EngineStats = engine.Stats

// Key canonically identifies one simulation point (config digest,
// benchmark, instructions, seed).
type Key = engine.Key

// CampaignSpec describes a config x benchmark x seed simulation grid.
type CampaignSpec = engine.CampaignSpec

// Campaign holds campaign results in deterministic expansion order, with
// JSON and CSV exporters.
type Campaign = engine.Campaign

// Job is one expanded simulation point of a campaign, as passed to
// CampaignSpec.Progress callbacks.
type Job = engine.Job

// JobResult pairs a campaign job with its result and the source it was
// served from.
type JobResult = engine.JobResult

// Source reports where the engine served a result from: "memory", "disk",
// "inflight" or "simulated".
type Source = engine.Source

// NewEngine returns a campaign engine. Every simulation requested through
// it — directly, via RunCampaign, or by experiment drivers handed the
// engine in Options — is computed at most once per Key and served from
// cache afterwards.
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// KeyFor derives the canonical cache key of a simulation point.
func KeyFor(cfg Config, benchmark string, instructions int, seed uint64) Key {
	return engine.KeyFor(cfg, benchmark, instructions, seed)
}

// NamedConfig resolves a preset configuration by its canonical name (the
// names malecsim and malecd accept, e.g. "MALEC", "Base2ld1st_1cycleL1").
func NamedConfig(name string) (Config, bool) { return config.Named(name) }

// ConfigNames returns the sorted canonical names of all preset
// configurations.
func ConfigNames() []string { return config.Names() }

// Run simulates the named benchmark workload on cfg for the given number of
// instructions. The same seed produces the identical workload across
// configurations, which cross-configuration comparisons rely on.
func Run(cfg Config, benchmark string, instructions int, seed uint64) Result {
	return cpu.RunBenchmark(cfg, benchmark, instructions, seed)
}

// RunTrace simulates an explicit record stream on cfg.
func RunTrace(cfg Config, name string, records []Record) Result {
	return cpu.Run(cfg, name, &cpu.SliceSource{Records: records})
}

// Benchmarks returns the names of all 38 synthetic benchmark workloads in
// suite order (SPEC-INT, SPEC-FP, MediaBench2).
func Benchmarks() []string { return trace.AllBenchmarks() }

// BenchmarksOf returns the benchmark names of one suite: "spec-int",
// "spec-fp" or "mb2".
func BenchmarksOf(suite string) []string { return trace.Benchmarks[suite] }

// StressBenchmarks returns the names of the stall-heavy stress workloads
// (pointer chasing, mispredict storm, TLB thrashing). They are runnable
// like any benchmark but excluded from Benchmarks, which lists only the
// paper's 38-workload reporting set.
func StressBenchmarks() []string {
	return append([]string(nil), trace.StressBenchmarks...)
}

// ProfileOf returns the generator profile of a named benchmark and whether
// it exists.
func ProfileOf(benchmark string) (Profile, bool) {
	p, ok := trace.Profiles[benchmark]
	return p, ok
}

// Generate produces n trace records for the named benchmark. It panics on
// unknown names (see Benchmarks).
func Generate(benchmark string, n int, seed uint64) []Record {
	p, ok := trace.Profiles[benchmark]
	if !ok {
		panic("malec: unknown benchmark " + benchmark)
	}
	return trace.NewGenerator(p, seed).Generate(n)
}

// GenerateProfile produces n trace records for a custom profile.
func GenerateProfile(p Profile, n int, seed uint64) []Record {
	return trace.NewGenerator(p, seed).Generate(n)
}

// Experiment drivers, one per paper table/figure. Each returns a result
// struct with a Table() string renderer.
var (
	// Fig1 reproduces Fig. 1 (page locality of consecutive loads).
	Fig1 = experiments.Fig1
	// Motivation reproduces the Sec. III scalars (40% memory references,
	// 2:1 load/store ratio, 70% page locality, 46% line locality).
	Motivation = experiments.Motivation
	// Fig4 reproduces Fig. 4a/4b (normalized execution time and energy of
	// the five configurations).
	Fig4 = experiments.Fig4
	// WDUComparison reproduces the Sec. VI-C WT vs WDU comparison.
	WDUComparison = experiments.WDUComparison
	// CoverageAblation reproduces the Sec. V feedback-update ablation
	// (94% vs 75% coverage).
	CoverageAblation = experiments.CoverageAblation
	// MergeContribution reproduces the Sec. VI-B merge analysis (~21% of
	// MALEC's speedup stems from load merging).
	MergeContribution = experiments.MergeContribution
	// WayConstraint checks the Sec. V 3-of-4 way allocation constraint.
	WayConstraint = experiments.WayConstraint
	// Table1 renders the paper's Tab. I.
	Table1 = experiments.Table1
	// Table2 renders the paper's Tab. II.
	Table2 = experiments.Table2
	// LatencySensitivity sweeps the L1 latency 1..4 cycles (Sec. VI-D).
	LatencySensitivity = experiments.LatencySensitivity
	// ResultBusSweep varies MALEC's result buses 1..4 (Sec. VI-D).
	ResultBusSweep = experiments.ResultBusSweep
	// CompareLimitAblation varies the arbitration comparator budget
	// (paper: 3 comparators cost <0.5% performance).
	CompareLimitAblation = experiments.CompareLimitAblation
	// MergeWindowAblation compares 16/32/64-byte merge granularities
	// (paper: the two-sub-block read doubles merge probability).
	MergeWindowAblation = experiments.MergeWindowAblation
	// SegmentedWT evaluates the Sec. VI-D segmented way-table extension.
	SegmentedWT = experiments.SegmentedWT
	// Bypass evaluates run-time cache bypassing for streaming pages
	// (Sec. VI-D extension).
	Bypass = experiments.Bypass
)

// MALECSegmentedWT configures the Sec. VI-D segmented way tables.
var MALECSegmentedWT = config.MALECSegmentedWT

// MALECBypass enables run-time cache bypassing on top of MALEC.
var MALECBypass = config.MALECBypass
