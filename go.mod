module malec

go 1.24
