package malec

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// memsideGrid is the config x benchmark x seed grid the memory-side
// differential tests cover: the skip-test grid plus the segmented way-table
// extension, whose SegmentedTable SlotFor/chunk paths the indexes also
// replace.
func memsideGrid() []struct {
	Cfg   Config
	Bench string
	Seed  uint64
} {
	grid := skipGrid()
	for _, b := range append([]string{"gzip", "mcf", "swim"}, StressBenchmarks()...) {
		for _, s := range []uint64{1, 2} {
			grid = append(grid, struct {
				Cfg   Config
				Bench string
				Seed  uint64
			}{MALECSegmentedWT(16, 0.5), b, s})
		}
	}
	return grid
}

// TestMemIndexDifferential proves the memory-side hash indexes (TLB
// VPage/PPage indexes, way-table SlotFor indexes, packed segmented chunks)
// are semantically invisible: for every grid point the full Result JSON —
// cycles, energy, every counter, TLB/way-table statistics — is
// byte-identical between the indexed path and the DisableMemIndex scan
// path. This is stronger than the 1e-9 acceptance bound: the indexes change
// host-side lookup mechanics only, never simulated decisions.
func TestMemIndexDifferential(t *testing.T) {
	t.Setenv("MALEC_NO_MEM_INDEX", "") // pin: the suite must pass with the env hatch exported
	const instructions = 20000
	for _, g := range memsideGrid() {
		on := g.Cfg
		off := g.Cfg
		off.DisableMemIndex = true
		rOn := Run(on, g.Bench, instructions, g.Seed)
		rOff := Run(off, g.Bench, instructions, g.Seed)
		jOn, err := json.Marshal(rOn)
		if err != nil {
			t.Fatal(err)
		}
		jOff, err := json.Marshal(rOff)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jOn, jOff) {
			t.Errorf("%s/%s/seed=%d: indexed result differs from scan (cycles %d vs %d)",
				g.Cfg.Name, g.Bench, g.Seed, rOn.Cycles, rOff.Cycles)
		}
	}
}

// TestMemIndexEnvEscapeHatch checks the MALEC_NO_MEM_INDEX environment
// toggle forces the scan paths without changing the semantic result.
func TestMemIndexEnvEscapeHatch(t *testing.T) {
	t.Setenv("MALEC_NO_MEM_INDEX", "")
	ref := Run(MALEC(), "tlbthrash", 10000, 1)
	t.Setenv("MALEC_NO_MEM_INDEX", "1")
	r := Run(MALEC(), "tlbthrash", 10000, 1)
	if r.Cycles != ref.Cycles {
		t.Fatalf("env toggle changed timing: %d vs %d cycles", r.Cycles, ref.Cycles)
	}
	if r.Energy.Total() != ref.Energy.Total() {
		t.Fatalf("env toggle changed energy: %f vs %f pJ", r.Energy.Total(), ref.Energy.Total())
	}
}

// relErr returns |a-b| / max(|a|, |b|), 0 when both are zero.
func relErr(a, b float64) float64 {
	if a == b {
		return 0
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) / m
}

// TestDeferredEnergyDifferential bounds the drift between the meter's
// deferred event-count pricing (the default) and the historical per-event
// float accumulation (MALEC_EAGER_ENERGY=1) at 1e-9 relative error for
// every component's dynamic and leakage energy, over the full differential
// grid. The two orders sum the identical per-event energies; only
// floating-point association differs.
func TestDeferredEnergyDifferential(t *testing.T) {
	const instructions = 20000
	const bound = 1e-9
	for _, g := range memsideGrid() {
		t.Setenv("MALEC_EAGER_ENERGY", "")
		deferred := Run(g.Cfg, g.Bench, instructions, g.Seed)
		t.Setenv("MALEC_EAGER_ENERGY", "1")
		eager := Run(g.Cfg, g.Bench, instructions, g.Seed)
		t.Setenv("MALEC_EAGER_ENERGY", "")
		for _, c := range EnergyComponents() {
			if e := relErr(deferred.Energy.Dynamic[c], eager.Energy.Dynamic[c]); e > bound {
				t.Errorf("%s/%s/seed=%d %v dynamic: deferred %v vs eager %v (rel err %g)",
					g.Cfg.Name, g.Bench, g.Seed, c,
					deferred.Energy.Dynamic[c], eager.Energy.Dynamic[c], e)
			}
			if e := relErr(deferred.Energy.Leakage[c], eager.Energy.Leakage[c]); e > bound {
				t.Errorf("%s/%s/seed=%d %v leakage: deferred %v vs eager %v (rel err %g)",
					g.Cfg.Name, g.Bench, g.Seed, c,
					deferred.Energy.Leakage[c], eager.Energy.Leakage[c], e)
			}
		}
		if e := relErr(deferred.Energy.Total(), eager.Energy.Total()); e > bound {
			t.Errorf("%s/%s/seed=%d total: deferred %v vs eager %v (rel err %g)",
				g.Cfg.Name, g.Bench, g.Seed,
				deferred.Energy.Total(), eager.Energy.Total(), e)
		}
	}
}
