package malec

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
)

// updateGolden regenerates testdata/golden_results.json from the current
// simulator. Run `go test -run TestGoldenResults -update` only when an
// intentional model change is made; the file otherwise pins the exact
// Result JSON (counters included) across refactors.
var updateGolden = flag.Bool("update", false, "rewrite golden result files")

const goldenPath = "testdata/golden_results.json"

// goldenGrid is the fixed config x benchmark x seed grid the golden file
// covers. It exercises all three interface variants plus the WDU, segmented
// way-table and bypass extensions so every counter family appears.
func goldenGrid() []struct {
	Cfg   Config
	Bench string
	Seed  uint64
} {
	configs := []Config{
		Base1ldst(),
		Base2ld1st(),
		MALEC(),
		MALECWithWDU(16),
		MALECSegmentedWT(16, 0.5),
		MALECBypass(),
	}
	benchmarks := []string{"gzip", "swim", "djpeg"}
	seeds := []uint64{1, 2}
	var grid []struct {
		Cfg   Config
		Bench string
		Seed  uint64
	}
	for _, c := range configs {
		for _, b := range benchmarks {
			for _, s := range seeds {
				grid = append(grid, struct {
					Cfg   Config
					Bench string
					Seed  uint64
				}{c, b, s})
			}
		}
	}
	return grid
}

const goldenInstructions = 20000

// goldenBytes runs the golden grid and renders every Result as indented
// JSON, one labelled block per point, concatenated in grid order.
func goldenBytes(t testing.TB) []byte {
	var buf bytes.Buffer
	for _, g := range goldenGrid() {
		r := Run(g.Cfg, g.Bench, goldenInstructions, g.Seed)
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			t.Fatalf("marshal %s/%s/%d: %v", g.Cfg.Name, g.Bench, g.Seed, err)
		}
		fmt.Fprintf(&buf, "=== %s %s seed=%d n=%d\n", g.Cfg.Name, g.Bench, g.Seed, goldenInstructions)
		buf.Write(data)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestGoldenResults proves the Result JSON — counters included — is
// byte-identical to the committed pre-refactor output for a fixed
// config/benchmark/seed grid.
func TestGoldenResults(t *testing.T) {
	got := goldenBytes(t)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		line := 1
		n := len(got)
		if len(want) < n {
			n = len(want)
		}
		for i := 0; i < n; i++ {
			if got[i] != want[i] {
				t.Fatalf("golden mismatch at byte %d (line %d): got %q, want %q",
					i, line, excerpt(got, i), excerpt(want, i))
			}
			if got[i] == '\n' {
				line++
			}
		}
		t.Fatalf("golden length mismatch: got %d bytes, want %d", len(got), len(want))
	}
}

// excerpt returns a short window of b around offset i for mismatch reports.
func excerpt(b []byte, i int) string {
	lo, hi := i-40, i+40
	if lo < 0 {
		lo = 0
	}
	if hi > len(b) {
		hi = len(b)
	}
	return string(b[lo:hi])
}
