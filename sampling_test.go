package malec

import (
	"bytes"
	"encoding/json"
	"testing"
)

// samplingTestSchedule is a scaled-down schedule (same 1%-detail ratio as
// DefaultSampling) so the grid differential stays fast: 10 measurement
// windows over a 200k-instruction run.
func samplingTestSchedule() *Sampling {
	return &Sampling{Warmup: 200, Detail: 800, Interval: 20000}
}

// TestSampledDifferentialGrid runs the full cycle-skip grid (five interface
// variants, paper + stress workloads, two seeds) through both the exact and
// the sampled path and checks the contract of the estimate:
//
//   - the instruction-stream statistics (instructions, loads, stores) are
//     exact, not estimated, and match the reference run;
//   - the extrapolated cycle and energy totals are within a small relative
//     error of the exact run, bounded by the reported 95% confidence
//     interval plus a slack term for the non-statistical bias the CI cannot
//     see (cold-start transients inside each burst);
//   - the estimate metadata (window count, schedule echo) is consistent.
func TestSampledDifferentialGrid(t *testing.T) {
	t.Setenv("MALEC_NO_SAMPLING", "")
	const instructions = 200000
	sch := samplingTestSchedule()
	nWin := instructions / sch.Interval
	for _, g := range skipGrid() {
		exact := Run(g.Cfg, g.Bench, instructions, g.Seed)
		scfg := g.Cfg
		scfg.Sampling = sch
		sampled := Run(scfg, g.Bench, instructions, g.Seed)

		if sampled.Sampling == nil {
			t.Fatalf("%s/%s/seed=%d: sampled path did not engage", g.Cfg.Name, g.Bench, g.Seed)
		}
		est := sampled.Sampling
		if est.Windows != nWin || est.Warmup != sch.Warmup || est.Detail != sch.Detail || est.Interval != sch.Interval {
			t.Errorf("%s/%s/seed=%d: estimate metadata %+v does not echo schedule %+v/%d windows",
				g.Cfg.Name, g.Bench, g.Seed, est, sch, nWin)
		}
		if sampled.Instructions != exact.Instructions ||
			sampled.Loads != exact.Loads || sampled.Stores != exact.Stores {
			t.Errorf("%s/%s/seed=%d: stream counts drifted: instr %d/%d loads %d/%d stores %d/%d",
				g.Cfg.Name, g.Bench, g.Seed,
				sampled.Instructions, exact.Instructions,
				sampled.Loads, exact.Loads, sampled.Stores, exact.Stores)
		}

		cycleErr := relErr(float64(sampled.Cycles), float64(exact.Cycles))
		energyErr := relErr(sampled.Energy.Total(), exact.Energy.Total())
		cycleBound := 3*est.CPIRelHalfWidth + 0.03
		energyBound := 3*est.EnergyRelHalfWidth + 0.03
		if cycleErr > cycleBound {
			t.Errorf("%s/%s/seed=%d: cycle error %.4f exceeds bound %.4f (sampled %d, exact %d)",
				g.Cfg.Name, g.Bench, g.Seed, cycleErr, cycleBound, sampled.Cycles, exact.Cycles)
		}
		if energyErr > energyBound {
			t.Errorf("%s/%s/seed=%d: energy error %.4f exceeds bound %.4f",
				g.Cfg.Name, g.Bench, g.Seed, energyErr, energyBound)
		}
	}
}

// TestSamplingEnvEscapeHatch pins the differential reference: with
// MALEC_NO_SAMPLING=1 a config carrying a sampling schedule produces a
// Result byte-identical (full JSON, every counter) to the plain exact run.
func TestSamplingEnvEscapeHatch(t *testing.T) {
	t.Setenv("MALEC_NO_SAMPLING", "")
	scfg := MALEC()
	scfg.Sampling = samplingTestSchedule()
	const instructions = 100000

	ref := Run(MALEC(), "gzip", instructions, 1)
	sampled := Run(scfg, "gzip", instructions, 1)
	if sampled.Sampling == nil {
		t.Fatal("sampled path did not engage with the env hatch unset")
	}

	t.Setenv("MALEC_NO_SAMPLING", "1")
	forced := Run(scfg, "gzip", instructions, 1)
	if forced.Sampling != nil {
		t.Fatal("MALEC_NO_SAMPLING=1 still produced a sampling estimate")
	}
	jRef, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	jForced, err := json.Marshal(forced)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jRef, jForced) {
		t.Fatalf("MALEC_NO_SAMPLING=1 result differs from exact reference (cycles %d vs %d)",
			forced.Cycles, ref.Cycles)
	}
}

// TestSamplingShortRunFallsBack checks that runs shorter than one interval
// silently use the exact path: same Result as without a schedule.
func TestSamplingShortRunFallsBack(t *testing.T) {
	t.Setenv("MALEC_NO_SAMPLING", "")
	scfg := MALEC()
	scfg.Sampling = samplingTestSchedule()
	short := Run(scfg, "gzip", scfg.Sampling.Interval-1, 1)
	if short.Sampling != nil {
		t.Fatal("sub-interval run produced a sampling estimate")
	}
	ref := Run(MALEC(), "gzip", scfg.Sampling.Interval-1, 1)
	if short.Cycles != ref.Cycles || short.Energy != ref.Energy {
		t.Fatalf("sub-interval fallback diverged from exact run: %d vs %d cycles",
			short.Cycles, ref.Cycles)
	}
}
