package engine

// Warmed-checkpoint store: microarchitectural snapshots captured by the
// sampled simulator at measurement-window boundaries, content-addressed by
// (memory-side config digest, benchmark, seed, record index). Because the
// functional-warming trajectory depends only on the memory side of the
// configuration and the workload, every core-side variant in a campaign
// sweep maps to the same entries — the first config warms, the rest
// restore. RunCampaign's benchmark-major job ordering clusters exactly
// those reuses back to back.
//
// The store is two-level: a bounded in-memory FIFO of live snapshots (so
// reuse works with no CacheDir configured, e.g. in tests and CI smokes),
// plus optional JSON persistence under the engine's cache directory using
// the same temp-file-and-rename discipline as the result store.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"malec/internal/cpu"
	"malec/internal/faultinject"
)

// DefaultCheckpointEntries bounds the in-memory checkpoint cache when
// Options leaves it unset. A snapshot is a few hundred KB of slabs
// (dominated by L1/L2 line arrays), so the default holds a campaign's
// working set in tens of MB.
const DefaultCheckpointEntries = 128

// ckKey identifies one warmed snapshot.
type ckKey struct {
	MemDigest string `json:"memDigest"`
	Benchmark string `json:"benchmark"`
	Seed      uint64 `json:"seed"`
	Index     uint64 `json:"index"` // absolute trace-record index
}

func (k ckKey) filename() string {
	return fmt.Sprintf("%s_%s_%d_%d.json", k.MemDigest, k.Benchmark, k.Seed, k.Index)
}

// checkpointStore is the engine-level store; scoped views implementing
// cpu.Checkpoints are curried per simulation. Safe for concurrent use.
type checkpointStore struct {
	dir        string // disk root ("" disables persistence)
	maxEntries int

	hits         atomic.Uint64
	misses       atomic.Uint64
	bytesRead    atomic.Uint64
	bytesWritten atomic.Uint64
	quarantined  atomic.Uint64 // corrupt disk entries renamed aside

	mu      sync.Mutex
	entries map[ckKey]*cpu.Checkpoint
	order   []ckKey // insertion order, for FIFO eviction
}

func newCheckpointStore(dir string, maxEntries int) *checkpointStore {
	if maxEntries <= 0 {
		maxEntries = DefaultCheckpointEntries
	}
	return &checkpointStore{
		dir:        dir,
		maxEntries: maxEntries,
		entries:    make(map[ckKey]*cpu.Checkpoint),
	}
}

// diskEntry mirrors the result store's versioned envelope so stale
// generations read as misses.
type ckDiskEntry struct {
	Version int             `json:"version"`
	Key     ckKey           `json:"key"`
	State   *cpu.Checkpoint `json:"state"`
}

func (s *checkpointStore) diskPath(key ckKey) string {
	shard := "00"
	if len(key.MemDigest) >= 2 {
		shard = key.MemDigest[:2]
	}
	return filepath.Join(s.dir, fmt.Sprintf("v%d", DiskFormatVersion), "ckpt", shard, key.filename())
}

// load fetches a snapshot, promoting disk entries into memory. The
// returned snapshot is shared and must not be mutated (cpu restores copy
// out of it).
func (s *checkpointStore) load(key ckKey) (*cpu.Checkpoint, bool) {
	s.mu.Lock()
	st, ok := s.entries[key]
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
		return st, true
	}
	if s.dir != "" {
		if st, ok := s.loadDisk(key); ok {
			s.mu.Lock()
			s.put(key, st)
			s.mu.Unlock()
			s.hits.Add(1)
			return st, true
		}
	}
	s.misses.Add(1)
	return nil, false
}

// loadDisk fetches a persisted snapshot. Read failures are plain misses;
// an entry that reads but fails to decode or validate is corrupt and is
// quarantined aside (.corrupt rename) so it is never re-read hot — a
// damaged checkpoint silently degrades to re-warming, never to wrong
// state.
func (s *checkpointStore) loadDisk(key ckKey) (*cpu.Checkpoint, bool) {
	path := s.diskPath(key)
	if faultinject.DiskRead.Fire() {
		return nil, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	faultinject.CkptCorrupt.CorruptBytes(data)
	var ent ckDiskEntry
	if err := json.Unmarshal(data, &ent); err != nil ||
		ent.Version != DiskFormatVersion || ent.Key != key || ent.State == nil || ent.State.Sys == nil {
		if quarantineCorrupt(path) {
			s.quarantined.Add(1)
		}
		return nil, false
	}
	s.bytesRead.Add(uint64(len(data)))
	return ent.State, true
}

// save stores a snapshot in memory and, when configured, on disk.
func (s *checkpointStore) save(key ckKey, st *cpu.Checkpoint) {
	s.mu.Lock()
	s.put(key, st)
	s.mu.Unlock()
	if s.dir == "" {
		return
	}
	if faultinject.DiskWrite.Fire() {
		return
	}
	path := s.diskPath(key)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	data, err := json.Marshal(ckDiskEntry{Version: DiskFormatVersion, Key: key, State: st})
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, key.filename()+".tmp*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return
	}
	s.bytesWritten.Add(uint64(len(data)))
}

// put inserts under the FIFO bound. Caller holds s.mu.
func (s *checkpointStore) put(key ckKey, st *cpu.Checkpoint) {
	if _, ok := s.entries[key]; !ok {
		s.order = append(s.order, key)
	}
	s.entries[key] = st
	for len(s.entries) > s.maxEntries {
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.entries, oldest)
	}
}

// scoped returns the cpu.Checkpoints view for one simulation: the engine
// curries everything but the record index.
func (s *checkpointStore) scoped(memDigest, benchmark string, seed uint64) cpu.Checkpoints {
	return &scopedCheckpoints{store: s, memDigest: memDigest, benchmark: benchmark, seed: seed}
}

type scopedCheckpoints struct {
	store     *checkpointStore
	memDigest string
	benchmark string
	seed      uint64
}

func (c *scopedCheckpoints) key(n uint64) ckKey {
	return ckKey{MemDigest: c.memDigest, Benchmark: c.benchmark, Seed: c.seed, Index: n}
}

// Load implements cpu.Checkpoints.
func (c *scopedCheckpoints) Load(n uint64) (*cpu.Checkpoint, bool) {
	return c.store.load(c.key(n))
}

// Save implements cpu.Checkpoints.
func (c *scopedCheckpoints) Save(n uint64, st *cpu.Checkpoint) {
	c.store.save(c.key(n), st)
}
