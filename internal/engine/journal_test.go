package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"malec/internal/config"
)

// testManifest returns a minimal valid manifest for journal tests.
func testManifest(id string) journalManifest {
	cfg, _ := config.Named("MALEC")
	return journalManifest{
		Version: JournalFormatVersion,
		ID:      id,
		Created: time.Unix(1700000000, 0).UTC(),
		Spec: journalSpec{
			Configs:      []config.Config{cfg},
			Benchmarks:   []string{"gzip"},
			Instructions: 1000,
			Seeds:        []uint64{1},
		},
	}
}

func TestJournalRoundTrip(t *testing.T) {
	root := t.TempDir()
	j, err := createJournal(root, testManifest("cafe0001"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		rec := StreamRecord{Seq: uint64(i), Index: i - 1}
		if i == 2 {
			rec.Error = "boom"
		}
		if err := j.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.finish(doneMarker{State: CampaignDone, Completed: 2, Failed: 1}); err != nil {
		t.Fatal(err)
	}

	rj, err := readJournal(filepath.Join(root, "cafe0001"))
	if err != nil {
		t.Fatal(err)
	}
	if rj.manifest.ID != "cafe0001" || rj.manifest.Spec.Benchmarks[0] != "gzip" {
		t.Fatalf("manifest round trip: %+v", rj.manifest)
	}
	if len(rj.records) != 3 || rj.torn != 0 {
		t.Fatalf("got %d records, torn=%d, want 3 records intact", len(rj.records), rj.torn)
	}
	if rj.records[1].Error != "boom" {
		t.Fatalf("record error lost: %+v", rj.records[1])
	}
	if rj.done == nil || rj.done.State != CampaignDone || rj.done.Completed != 2 || rj.done.Failed != 1 {
		t.Fatalf("done marker round trip: %+v", rj.done)
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	root := t.TempDir()
	j, err := createJournal(root, testManifest("cafe0002"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := j.append(StreamRecord{Seq: uint64(i), Index: i - 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash mid-append: a partial line with no terminator.
	if _, err := j.f.WriteString(`{"seq":3,"ind`); err != nil {
		t.Fatal(err)
	}
	j.close()

	dir := filepath.Join(root, "cafe0002")
	rj, err := readJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rj.records) != 2 {
		t.Fatalf("got %d records, want the 2 intact ones", len(rj.records))
	}
	if rj.torn == 0 {
		t.Fatal("torn tail not reported")
	}
	if rj.done != nil {
		t.Fatal("unfinished journal reported a done marker")
	}
	// The tail was truncated in place, so reopening and appending yields a
	// clean log.
	j2, err := reopenJournal(root, "cafe0002")
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.append(StreamRecord{Seq: 3, Index: 2}); err != nil {
		t.Fatal(err)
	}
	j2.close()
	rj2, err := readJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rj2.records) != 3 || rj2.torn != 0 {
		t.Fatalf("after truncate+append: %d records, torn=%d, want 3 intact", len(rj2.records), rj2.torn)
	}
}

func TestJournalCursorCompaction(t *testing.T) {
	// A dropped append (injected journal-write fault) leaves a seq gap;
	// replay renumbers positionally so cursors stay dense and monotonic.
	root := t.TempDir()
	j, err := createJournal(root, testManifest("cafe0003"))
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range []uint64{1, 2, 4, 7} {
		if err := j.append(StreamRecord{Seq: seq, Index: int(seq)}); err != nil {
			t.Fatal(err)
		}
	}
	j.close()
	rj, err := readJournal(filepath.Join(root, "cafe0003"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rj.records) != 4 {
		t.Fatalf("got %d records, want 4", len(rj.records))
	}
	for i, rec := range rj.records {
		if rec.Seq != uint64(i)+1 {
			t.Fatalf("record %d replayed with seq %d, want dense renumbering", i, rec.Seq)
		}
	}
}

func TestPruneJournals(t *testing.T) {
	root := t.TempDir()
	mkCampaign := func(id string, done bool, age time.Duration) {
		j, err := createJournal(root, testManifest(id))
		if err != nil {
			t.Fatal(err)
		}
		if done {
			if err := j.finish(doneMarker{State: CampaignDone}); err != nil {
				t.Fatal(err)
			}
			if age > 0 {
				old := time.Now().Add(-age)
				mark := filepath.Join(root, id, doneName)
				if err := os.Chtimes(mark, old, old); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			j.close()
		}
	}
	mkCampaign("aaaa0000", true, 48*time.Hour) // expired: pruned
	mkCampaign("bbbb0000", true, 0)            // fresh: kept
	mkCampaign("cccc0000", false, 0)           // unfinished: never pruned

	if n := pruneJournals(root, 24*time.Hour); n != 1 {
		t.Fatalf("pruned %d journals, want 1", n)
	}
	for id, want := range map[string]bool{"aaaa0000": false, "bbbb0000": true, "cccc0000": true} {
		_, err := os.Stat(filepath.Join(root, id))
		if exists := err == nil; exists != want {
			t.Errorf("campaign %s exists=%v, want %v", id, exists, want)
		}
	}
	if n := pruneJournals(root, 0); n != 0 {
		t.Fatalf("retention 0 pruned %d journals, want none", n)
	}
}

func BenchmarkJournalReplay(b *testing.B) {
	for _, size := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("records=%d", size), func(b *testing.B) {
			root := b.TempDir()
			j, err := createJournal(root, testManifest("bench000"))
			if err != nil {
				b.Fatal(err)
			}
			for i := 1; i <= size; i++ {
				if err := j.append(StreamRecord{Seq: uint64(i), Index: i - 1}); err != nil {
					b.Fatal(err)
				}
			}
			j.close()
			dir := filepath.Join(root, "bench000")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rj, err := readJournal(dir)
				if err != nil {
					b.Fatal(err)
				}
				if len(rj.records) != size {
					b.Fatalf("replayed %d records, want %d", len(rj.records), size)
				}
			}
		})
	}
}
