package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"malec/internal/config"
)

// Key canonically identifies one simulation point. Two runs with equal keys
// are guaranteed to produce identical Results (the simulator is
// deterministic in its inputs), which is what makes results content
// addressable: the cache, the singleflight table and the disk store all
// index by Key.
type Key struct {
	// ConfigDigest is a hex digest of the full configuration struct, so
	// two presets that happen to share a Name but differ in any parameter
	// never collide.
	ConfigDigest string `json:"configDigest"`
	Benchmark    string `json:"benchmark"`
	Instructions int    `json:"instructions"`
	Seed         uint64 `json:"seed"`
}

// KeyFor derives the canonical Key of a simulation point.
func KeyFor(cfg config.Config, benchmark string, instructions int, seed uint64) Key {
	return Key{
		ConfigDigest: ConfigDigest(cfg),
		Benchmark:    benchmark,
		Instructions: instructions,
		Seed:         seed,
	}
}

// ConfigDigest returns the content digest of a configuration as 16 hex
// characters: the memory-side half (MemSideDigest) followed by a digest of
// the complete configuration. Every field of config.Config is exported, so
// the JSON encoding covers the complete machine description in fixed
// struct order. Host-simulator toggles that never change simulated results
// are normalized out first, so e.g. skip-on and skip-off runs of the same
// machine share one cache entry.
//
// The split layout makes the memory-side identity visible in the key: two
// configurations that differ only core-side (widths, latencies, buffer
// depths, sampling schedule) share their first 8 characters — and with
// them the warmed-checkpoint store, which is keyed by MemSideDigest alone.
func ConfigDigest(cfg config.Config) string {
	// Cycle skipping, the wakeup scheduler and the memory-side indexes are
	// semantically invisible (differentially tested); they must not split
	// the content address. Sampling is NOT normalized out: sampled results
	// are estimates, never interchangeable with exact ones.
	cfg.DisableCycleSkip = false
	cfg.DisableWakeup = false
	cfg.DisableMemIndex = false
	enc, err := json.Marshal(cfg)
	if err != nil {
		// config.Config contains only plain scalar fields; Marshal
		// cannot fail on it.
		panic("engine: config not serializable: " + err.Error())
	}
	sum := sha256.Sum256(enc)
	return MemSideDigest(cfg) + hex.EncodeToString(sum[:4])
}

// memSideIdentity is the subset of config.Config that determines the
// functional-warming trajectory and therefore the contents of a warmed
// checkpoint: the structures a snapshot covers (caches, TLBs, page table,
// way tables, stream detector) and the RNG seed driving their replacement
// policies. Core-side parameters — pipeline widths, latencies, buffer
// depths, energy ports, the sampling schedule itself — are excluded, which
// is what lets a core-side parameter sweep warm up once.
type memSideIdentity struct {
	Seed           uint64
	TLBEntries     int
	UTLBEntries    int
	WayDet         config.WayDetKind
	WDUEntries     int
	WDUPorts       int
	ConstrainWays  bool
	FeedbackUpdate bool
	WTChunkLines   int
	WTPoolFraction float64
	Bypass         bool
}

// MemSideDigest returns the 8-hex-character digest of a configuration's
// memory-side identity.
func MemSideDigest(cfg config.Config) string {
	id := memSideIdentity{
		Seed:           cfg.Seed,
		TLBEntries:     cfg.TLBEntries,
		UTLBEntries:    cfg.UTLBEntries,
		WayDet:         cfg.WayDet,
		WDUEntries:     cfg.WDUEntries,
		WDUPorts:       cfg.WDUPorts,
		ConstrainWays:  cfg.ConstrainWays,
		FeedbackUpdate: cfg.FeedbackUpdate,
		WTChunkLines:   cfg.WTChunkLines,
		WTPoolFraction: cfg.WTPoolFraction,
		Bypass:         cfg.Bypass,
	}
	enc, err := json.Marshal(id)
	if err != nil {
		panic("engine: mem-side identity not serializable: " + err.Error())
	}
	sum := sha256.Sum256(enc)
	return hex.EncodeToString(sum[:4])
}

// String renders the key in digest:benchmark:instructions:seed form.
func (k Key) String() string {
	return fmt.Sprintf("%s:%s:%d:%d", k.ConfigDigest, k.Benchmark, k.Instructions, k.Seed)
}

// shard returns the disk-store shard directory for the key, the first two
// digest characters, spreading entries over up to 256 directories.
func (k Key) shard() string {
	if len(k.ConfigDigest) < 2 {
		return "00"
	}
	return k.ConfigDigest[:2]
}

// filename returns the disk-store file name for the key.
func (k Key) filename() string {
	return fmt.Sprintf("%s_%s_%d_%d.json", k.ConfigDigest, k.Benchmark, k.Instructions, k.Seed)
}
