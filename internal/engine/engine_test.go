package engine

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"malec/internal/config"
	"malec/internal/cpu"
	"malec/internal/stats"
)

// stubResult fabricates a distinguishable result for scheduler tests.
func stubResult(cfg config.Config, benchmark string, instructions int, seed uint64) cpu.Result {
	return cpu.Result{
		Config:       cfg.Name,
		Benchmark:    benchmark,
		Instructions: uint64(instructions),
		Cycles:       uint64(instructions)*2 + seed,
	}
}

func TestKeyDistinguishesConfigs(t *testing.T) {
	a := KeyFor(config.MALEC(), "gzip", 1000, 1)
	b := KeyFor(config.MALECNoMerge(), "gzip", 1000, 1)
	if a == b {
		t.Fatalf("different configs share key %v", a)
	}
	if a != KeyFor(config.MALEC(), "gzip", 1000, 1) {
		t.Fatalf("identical points produced different keys")
	}
	// The digest must see every parameter, not just the name.
	c1 := config.MALEC()
	c2 := config.MALEC()
	c2.MSHRs++
	if KeyFor(c1, "gzip", 1000, 1) == KeyFor(c2, "gzip", 1000, 1) {
		t.Fatalf("config parameter change did not change the key")
	}
}

func TestKeyIgnoresHostSimulatorToggles(t *testing.T) {
	// DisableCycleSkip changes how the simulator executes, never what it
	// computes (differentially tested at the root), so skip-on and
	// skip-off runs must content-address to the same cache entry.
	on := config.MALEC()
	off := config.MALEC()
	off.DisableCycleSkip = true
	if KeyFor(on, "gzip", 1000, 1) != KeyFor(off, "gzip", 1000, 1) {
		t.Fatalf("host-simulator toggle changed the content digest")
	}
}

func TestMemoryCacheHit(t *testing.T) {
	var calls atomic.Int64
	e := New(Options{Simulate: func(cfg config.Config, b string, n int, s uint64) cpu.Result {
		calls.Add(1)
		return stubResult(cfg, b, n, s)
	}})
	cfg := config.MALEC()

	r1, src1 := e.RunTracked(cfg, "gzip", 1000, 1)
	r2, src2 := e.RunTracked(cfg, "gzip", 1000, 1)
	if src1 != SourceSimulated || src2 != SourceMemory {
		t.Fatalf("sources = %v, %v; want simulated, memory", src1, src2)
	}
	if r1 != r2 {
		t.Fatalf("cached result differs from computed result")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("simulate ran %d times, want 1", n)
	}
	s := e.Stats()
	if s.Hits != 1 || s.Simulations != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 simulation, 1 entry", s)
	}
}

func TestSingleflightDeduplication(t *testing.T) {
	const waiters = 16
	var calls atomic.Int64
	release := make(chan struct{})
	e := New(Options{Workers: waiters, Simulate: func(cfg config.Config, b string, n int, s uint64) cpu.Result {
		calls.Add(1)
		<-release
		return stubResult(cfg, b, n, s)
	}})
	cfg := config.MALEC()

	var wg sync.WaitGroup
	results := make([]cpu.Result, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = e.Run(cfg, "mcf", 5000, 7)
		}(i)
	}
	// Wait until the leader is inside simulate, then let everyone pile up
	// on the in-flight call before releasing it.
	for calls.Load() == 0 {
		runtime.Gosched()
	}
	for e.Stats().Dedup < waiters-1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("simulate ran %d times for one key, want 1", n)
	}
	for i := 1; i < waiters; i++ {
		if results[i] != results[0] {
			t.Fatalf("waiter %d got a different result", i)
		}
	}
	s := e.Stats()
	if s.Simulations != 1 || s.Dedup != waiters-1 {
		t.Fatalf("stats = %+v; want 1 simulation, %d dedup", s, waiters-1)
	}
}

func TestCacheEvictionBound(t *testing.T) {
	var calls atomic.Int64
	e := New(Options{MaxCacheEntries: 2, Simulate: func(cfg config.Config, b string, n int, s uint64) cpu.Result {
		calls.Add(1)
		return stubResult(cfg, b, n, s)
	}})
	cfg := config.MALEC()

	e.Run(cfg, "gzip", 1000, 1) // oldest
	e.Run(cfg, "mcf", 1000, 1)
	e.Run(cfg, "art", 1000, 1) // evicts gzip
	if s := e.Stats(); s.Entries != 2 {
		t.Fatalf("cache holds %d entries, want 2", s.Entries)
	}
	if _, ok := e.Cached(KeyFor(cfg, "gzip", 1000, 1)); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := e.Cached(KeyFor(cfg, "art", 1000, 1)); !ok {
		t.Fatal("newest entry evicted")
	}
	// The evicted point re-simulates; the retained one stays a hit.
	if _, src := e.RunTracked(cfg, "gzip", 1000, 1); src != SourceSimulated {
		t.Fatalf("evicted point served as %v", src)
	}
	if _, src := e.RunTracked(cfg, "art", 1000, 1); src != SourceMemory {
		t.Fatalf("retained point served as %v", src)
	}
	if n := calls.Load(); n != 4 {
		t.Fatalf("simulate ran %d times, want 4", n)
	}
}

func TestPanicReleasesWaitersAndWorkerSlot(t *testing.T) {
	var calls atomic.Int64
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	e := New(Options{Workers: 1, Simulate: func(cfg config.Config, b string, n int, s uint64) cpu.Result {
		if b == "mcf" {
			calls.Add(1)
			started <- struct{}{}
			<-release
			panic("simulator exploded")
		}
		return stubResult(cfg, b, n, s)
	}})
	cfg := config.MALEC()

	mustPanic := func(name string) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s returned instead of panicking", name)
			}
		}()
		e.Run(cfg, "mcf", 1000, 1)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); mustPanic("leader") }()
	<-started
	go func() { defer wg.Done(); mustPanic("waiter") }()
	for e.Stats().Dedup == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	// The Workers=1 slot must have been released despite the panic and no
	// bogus result may be cached (the key itself is quarantined: repeat
	// calls fail fast without re-running, see TestPanicQuarantinesKey).
	if _, ok := e.Cached(KeyFor(cfg, "mcf", 1000, 1)); ok {
		t.Fatal("panicked simulation left a cached result")
	}
	if res := e.Run(cfg, "gzip", 1000, 1); res.Cycles == 0 {
		t.Fatalf("engine unusable after panic: %+v", res)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("panicking simulate ran %d times, want 1", n)
	}
}

func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	sim := func(cfg config.Config, b string, n int, s uint64) cpu.Result {
		calls.Add(1)
		return stubResult(cfg, b, n, s)
	}
	cfg := config.Base1ldst()

	e1 := New(Options{CacheDir: dir, Simulate: sim})
	want := e1.Run(cfg, "gzip", 1000, 1)

	// The entry lands under the format-version directory, sharded by
	// digest prefix.
	key := KeyFor(cfg, "gzip", 1000, 1)
	entryPath := filepath.Join(dir, fmt.Sprintf("v%d", DiskFormatVersion), key.shard(), key.filename())
	if _, err := os.Stat(entryPath); err != nil {
		t.Fatalf("disk entry not written: %v", err)
	}

	// A fresh engine over the same directory serves from disk.
	e2 := New(Options{CacheDir: dir, Simulate: sim})
	got, src := e2.RunTracked(cfg, "gzip", 1000, 1)
	if src != SourceDisk {
		t.Fatalf("second engine source = %v, want disk", src)
	}
	if got.Cycles != want.Cycles || got.Benchmark != want.Benchmark {
		t.Fatalf("disk round-trip changed the result: got %+v want %+v", got, want)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("simulate ran %d times across engines, want 1", n)
	}

	// A corrupt entry is a miss, not an error.
	if err := os.WriteFile(entryPath, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	e3 := New(Options{CacheDir: dir, Simulate: sim})
	if _, src := e3.RunTracked(cfg, "gzip", 1000, 1); src != SourceSimulated {
		t.Fatalf("corrupt entry served as %v, want re-simulation", src)
	}

	// An entry from another format version is a miss: stale caches must
	// never stand in for fresh results after a simulator change.
	stale, err := json.Marshal(diskEntry{Version: DiskFormatVersion + 1, Key: key, Result: want})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entryPath, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	e4 := New(Options{CacheDir: dir, Simulate: sim})
	if _, src := e4.RunTracked(cfg, "gzip", 1000, 1); src != SourceSimulated {
		t.Fatalf("stale-version entry served as %v, want re-simulation", src)
	}
}

func TestCampaignContainsSimulatorPanic(t *testing.T) {
	e := New(Options{Workers: 2, Simulate: func(cfg config.Config, b string, n int, s uint64) cpu.Result {
		if b == "mcf" {
			panic("bad point")
		}
		return stubResult(cfg, b, n, s)
	}})
	spec := campaignSpec(2)
	_, err := e.RunCampaign(spec)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("campaign error = %v, want *PanicError", err)
	}
	if pe.Job.Benchmark != "mcf" {
		t.Fatalf("panic attributed to %q, want mcf", pe.Job.Benchmark)
	}
	// The engine and its workers survive: a spec without the bad point
	// completes normally.
	good := spec
	good.Benchmarks = []string{"gzip", "cjpeg"}
	camp, err := e.RunCampaign(good)
	if err != nil || len(camp.Results) != 8 {
		t.Fatalf("engine unusable after contained panic: %v", err)
	}
}

// campaignSpec is a small real-simulator campaign: 2 configs x 3
// benchmarks, small instruction budget.
func campaignSpec(workers int) CampaignSpec {
	return CampaignSpec{
		Configs:      []config.Config{config.Base1ldst(), config.MALEC()},
		Benchmarks:   []string{"gzip", "mcf", "cjpeg"},
		Instructions: 20000,
		Seeds:        []uint64{1, 2},
		Workers:      workers,
	}
}

func TestCampaignDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations")
	}
	e1 := New(Options{Workers: 1})
	e8 := New(Options{Workers: 8})

	c1, err := e1.RunCampaign(campaignSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	c8, err := e8.RunCampaign(campaignSpec(8))
	if err != nil {
		t.Fatal(err)
	}

	j1, err := c1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j8, err := c8.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j8) {
		t.Fatalf("JSON export differs between Workers=1 and Workers=8")
	}

	v1, err := c1.CSV()
	if err != nil {
		t.Fatal(err)
	}
	v8, err := c8.CSV()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v1, v8) {
		t.Fatalf("CSV export differs between Workers=1 and Workers=8")
	}

	// A repeated run is served entirely from cache: zero new simulations.
	before := e8.Stats()
	again, err := e8.RunCampaign(campaignSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	after := e8.Stats()
	if after.Simulations != before.Simulations {
		t.Fatalf("repeat campaign ran %d new simulations, want 0",
			after.Simulations-before.Simulations)
	}
	if after.Hits-before.Hits != uint64(len(again.Results)) {
		t.Fatalf("repeat campaign: %d cache hits for %d jobs",
			after.Hits-before.Hits, len(again.Results))
	}
	for i := range again.Results {
		if again.Results[i].Source != SourceMemory {
			t.Fatalf("repeat job %d served from %v, want memory", i, again.Results[i].Source)
		}
	}
	ja, err := again.JSON()
	if err != nil {
		t.Fatal(err)
	}
	// Sources differ (memory vs simulated) but results must not.
	var full, cached Campaign
	if err := json.Unmarshal(j8, &full); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(ja, &cached); err != nil {
		t.Fatal(err)
	}
	for i := range full.Results {
		if full.Results[i].Result.Cycles != cached.Results[i].Result.Cycles {
			t.Fatalf("job %d: cached cycles differ from computed", i)
		}
	}
}

func TestCampaignProgressAndOrder(t *testing.T) {
	var calls atomic.Int64
	e := New(Options{Workers: 4, Simulate: func(cfg config.Config, b string, n int, s uint64) cpu.Result {
		calls.Add(1)
		return stubResult(cfg, b, n, s)
	}})
	spec := campaignSpec(4)
	var mu sync.Mutex
	var seen []int
	spec.Progress = func(done, total int, j Job) {
		mu.Lock()
		seen = append(seen, done)
		mu.Unlock()
		if total != 12 {
			t.Errorf("total = %d, want 12", total)
		}
	}
	c, err := e.RunCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 12 {
		t.Fatalf("progress called %d times, want 12", len(seen))
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress done sequence %v not monotonically counted", seen)
		}
	}
	// Results come back in expansion order regardless of completion order.
	for i, r := range c.Results {
		if r.Index != i {
			t.Fatalf("result %d has index %d", i, r.Index)
		}
	}
	if c.Results[0].ConfigName != "Base1ldst" || c.Results[0].Benchmark != "gzip" || c.Results[0].Seed != 1 {
		t.Fatalf("unexpected first job %+v", c.Results[0].Job)
	}
}

func TestCampaignRejectsBadSpec(t *testing.T) {
	e := New(Options{Simulate: stubResult})
	if _, err := e.RunCampaign(CampaignSpec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := e.RunCampaign(CampaignSpec{
		Configs:    []config.Config{config.MALEC()},
		Benchmarks: []string{"no-such-benchmark"},
	}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	res := cpu.RunBenchmark(config.MALEC(), "gzip", 20000, 1)
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back cpu.Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Cycles != res.Cycles || back.Energy.Total() != res.Energy.Total() {
		t.Fatalf("round trip changed scalars")
	}
	if back.Counters.Get(stats.CtrIssueLoads) != res.Counters.Get(stats.CtrIssueLoads) {
		t.Fatalf("round trip dropped counters")
	}
	data2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("re-marshal not byte-identical")
	}
}

// TestTraceCacheCampaignEquivalence runs one real campaign twice — trace
// cache enabled (default) and disabled — and requires byte-identical JSON
// and CSV exports: the shared materialized trace must be indistinguishable
// from per-simulation generation. It also checks the cache actually
// engaged (every config after the first is a trace hit) and that stats
// flow through Engine.Stats.
func TestTraceCacheCampaignEquivalence(t *testing.T) {
	spec := CampaignSpec{
		Configs:      []config.Config{config.Base1ldst(), config.Base2ld1st(), config.MALEC()},
		Benchmarks:   []string{"gzip", "mcf"},
		Instructions: 3000,
		Seeds:        []uint64{1, 2},
		Workers:      3,
	}
	cached := New(Options{Workers: 3})
	fresh := New(Options{Workers: 3, TraceCacheRecords: -1})
	cc, err := cached.RunCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := fresh.RunCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	jc, err := cc.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jf, err := cf.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jc, jf) {
		t.Fatal("trace-cached campaign JSON differs from per-simulation generation")
	}
	vc, err := cc.CSV()
	if err != nil {
		t.Fatal(err)
	}
	vf, err := cf.CSV()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(vc, vf) {
		t.Fatal("trace-cached campaign CSV differs from per-simulation generation")
	}

	cs := cached.Stats()
	// 2 benchmarks x 2 seeds: one miss each; the other 2 configs per
	// workload share the arena.
	if cs.TraceMisses != 4 || cs.TraceHits != 8 {
		t.Fatalf("trace cache stats hits=%d misses=%d, want 8/4", cs.TraceHits, cs.TraceMisses)
	}
	if cs.TraceRecords != 4*3000 {
		t.Fatalf("trace cache holds %d records, want %d", cs.TraceRecords, 4*3000)
	}
	fs := fresh.Stats()
	if fs.TraceHits != 0 || fs.TraceMisses != 0 || fs.TraceRecords != 0 {
		t.Fatalf("disabled trace cache reported activity: %+v", fs)
	}
}

// TestSchedulerQueueGauges checks the Running/QueueDepth scheduler
// gauges: with one worker and several distinct points in flight, exactly
// one simulation runs while the rest queue, and both gauges drain to
// zero when the work completes.
func TestSchedulerQueueGauges(t *testing.T) {
	const points = 4
	release := make(chan struct{})
	started := make(chan struct{}, points)
	e := New(Options{Workers: 1, Simulate: func(cfg config.Config, b string, n int, s uint64) cpu.Result {
		started <- struct{}{}
		<-release
		return stubResult(cfg, b, n, s)
	}})
	cfg := config.MALEC()

	var wg sync.WaitGroup
	for i := 0; i < points; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e.Run(cfg, "gzip", 1000, uint64(i+1))
		}(i)
	}
	<-started // one simulation holds the single worker slot
	for e.Stats().QueueDepth < points-1 {
		runtime.Gosched()
	}
	if s := e.Stats(); s.Running != 1 || s.QueueDepth != points-1 {
		t.Fatalf("stats = %+v; want running 1, queueDepth %d", s, points-1)
	}
	close(release)
	wg.Wait()
	if s := e.Stats(); s.Running != 0 || s.QueueDepth != 0 {
		t.Fatalf("after drain stats = %+v; want zero gauges", s)
	}
	if s := e.Stats(); s.Simulations != points {
		t.Fatalf("simulations = %d, want %d", s.Simulations, points)
	}
}
