package engine

// Durable campaigns: first-class campaign objects that survive client
// disconnects, job failures and `kill -9` of the hosting process. A
// CampaignManager owns a set of CampaignRuns, each executing its job grid
// asynchronously through the shared engine while journaling every terminal
// point (journal.go). Completed points stream to any number of concurrent
// readers as monotonic-cursor records; the final JSON/CSV export is
// materialized from the content-addressed result store in deterministic
// expansion order, so it is byte-identical no matter how many times the
// campaign was interrupted, streamed, killed and resumed.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// CampaignState is a campaign's lifecycle phase.
type CampaignState string

// Campaign lifecycle states. A cancelled campaign writes no completion
// marker: like a crash, it is re-admitted and resumed on the next restart
// (cancel stops the burn now; delete-on-disk semantics belong to journal
// retention).
const (
	CampaignRunning   CampaignState = "running"
	CampaignDone      CampaignState = "done"
	CampaignCancelled CampaignState = "cancelled"
)

// ErrTooManyCampaigns reports that the manager's active-campaign bound is
// reached; the caller should shed with backpressure.
var ErrTooManyCampaigns = errors.New("engine: too many active campaigns")

// ErrCampaignNotDone reports an export requested before every point is
// terminal; partial exports would break the byte-identity guarantee.
var ErrCampaignNotDone = errors.New("engine: campaign is not complete")

// CampaignManagerOptions configures a CampaignManager.
type CampaignManagerOptions struct {
	// Dir is the journal root (conventionally <cacheDir>/v1/campaigns).
	// Empty runs campaigns in memory only: still asynchronous and
	// streamable, but not crash-durable.
	Dir string
	// MaxActive bounds concurrently running campaigns (default 8);
	// Start returns ErrTooManyCampaigns past it.
	MaxActive int
	// DefaultRetries is the per-job retry bound applied when a spec
	// leaves Retries unset (default 2).
	DefaultRetries int
	// DefaultWorkers is the campaign concurrency applied when a spec
	// leaves Workers unset (default: the engine's worker bound). A
	// clustered node raises it to workers × cluster size — forwarded
	// points consume no local simulation slots, so campaign concurrency
	// should cover the fabric's capacity, not one node's.
	DefaultWorkers int
}

// CampaignManagerStats is a snapshot of the manager's counters.
type CampaignManagerStats struct {
	// Active is the number of campaigns currently running.
	Active int `json:"active"`
	// Campaigns is the number of campaigns known (running + finished).
	Campaigns int `json:"campaigns"`
	// Retries counts per-job retry attempts across all campaigns.
	Retries uint64 `json:"retries"`
	// FailedPoints counts jobs that exhausted their retries.
	FailedPoints uint64 `json:"failedPoints"`
	// ReplayedPoints counts journaled terminal points re-admitted at
	// startup without recomputation.
	ReplayedPoints uint64 `json:"replayedPoints"`
	// JournalTorn counts torn/corrupt journal tail bytes truncated away
	// during replay.
	JournalTorn uint64 `json:"journalTorn"`
	// JournalsPruned counts completed campaign journals removed by
	// retention sweeps.
	JournalsPruned uint64 `json:"journalsPruned"`
}

// CampaignManager registers, executes, journals and resumes campaigns over
// one engine. Safe for concurrent use.
type CampaignManager struct {
	eng        *Engine
	dir        string
	maxActive  int
	defRetries int
	defWorkers int

	retriesTotal  atomic.Uint64
	failedTotal   atomic.Uint64
	replayedTotal atomic.Uint64
	tornTotal     atomic.Uint64
	prunedTotal   atomic.Uint64

	mu   sync.Mutex
	runs map[string]*CampaignRun
}

// NewCampaignManager returns a manager executing campaigns on eng.
func NewCampaignManager(eng *Engine, opts CampaignManagerOptions) *CampaignManager {
	if opts.MaxActive <= 0 {
		opts.MaxActive = 8
	}
	if opts.DefaultRetries <= 0 {
		opts.DefaultRetries = 2
	}
	return &CampaignManager{
		eng:        eng,
		dir:        opts.Dir,
		maxActive:  opts.MaxActive,
		defRetries: opts.DefaultRetries,
		defWorkers: opts.DefaultWorkers,
		runs:       make(map[string]*CampaignRun),
	}
}

// workerDefault is the campaign concurrency used when a spec leaves
// Workers unset.
func (m *CampaignManager) workerDefault() int {
	if m.defWorkers > 0 {
		return m.defWorkers
	}
	return m.eng.Workers()
}

// Stats returns a snapshot of the manager counters.
func (m *CampaignManager) Stats() CampaignManagerStats {
	s := CampaignManagerStats{
		Retries:        m.retriesTotal.Load(),
		FailedPoints:   m.failedTotal.Load(),
		ReplayedPoints: m.replayedTotal.Load(),
		JournalTorn:    m.tornTotal.Load(),
		JournalsPruned: m.prunedTotal.Load(),
	}
	m.mu.Lock()
	s.Campaigns = len(m.runs)
	for _, r := range m.runs {
		if r.Status().State == CampaignRunning {
			s.Active++
		}
	}
	m.mu.Unlock()
	return s
}

// newCampaignID returns a fresh 16-hex-character campaign handle.
func newCampaignID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("engine: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// active counts running campaigns. Caller holds m.mu.
func (m *CampaignManager) active() int {
	n := 0
	for _, r := range m.runs {
		r.mu.Lock()
		if r.state == CampaignRunning {
			n++
		}
		r.mu.Unlock()
	}
	return n
}

// Start registers a campaign, journals its manifest, and begins executing
// it asynchronously. The returned run is immediately streamable.
func (m *CampaignManager) Start(spec CampaignSpec) (*CampaignRun, error) {
	if spec.Retries == 0 {
		spec.Retries = m.defRetries
	}
	spec, err := spec.normalize(m.workerDefault())
	if err != nil {
		return nil, err
	}
	spec.Progress = nil // durable campaigns report through their records
	id := newCampaignID()
	run := m.newRun(id, time.Now().UTC(), spec)

	m.mu.Lock()
	if m.active() >= m.maxActive {
		m.mu.Unlock()
		return nil, ErrTooManyCampaigns
	}
	m.runs[id] = run
	m.mu.Unlock()

	if m.dir != "" {
		jr, err := createJournal(m.dir, journalManifest{
			Version: JournalFormatVersion,
			ID:      id,
			Created: run.created,
			Spec: journalSpec{
				Configs:      spec.Configs,
				Benchmarks:   spec.Benchmarks,
				Instructions: spec.Instructions,
				Seeds:        spec.Seeds,
				Retries:      spec.Retries,
			},
		})
		if err != nil {
			m.mu.Lock()
			delete(m.runs, id)
			m.mu.Unlock()
			return nil, fmt.Errorf("engine: campaign journal: %w", err)
		}
		run.jr = jr
	}
	run.start()
	return run, nil
}

// Get returns a registered campaign by handle.
func (m *CampaignManager) Get(id string) (*CampaignRun, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	return r, ok
}

// List returns every registered campaign, oldest first (creation time,
// then id, so the order is stable).
func (m *CampaignManager) List() []*CampaignRun {
	m.mu.Lock()
	out := make([]*CampaignRun, 0, len(m.runs))
	for _, r := range m.runs {
		out = append(out, r)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].created.Equal(out[j].created) {
			return out[i].created.Before(out[j].created)
		}
		return out[i].id < out[j].id
	})
	return out
}

// Cancel stops a running campaign's remaining work. The journal is left
// without a completion marker, so a later restart resumes the campaign —
// cancellation stops the burn, retention (PruneJournals) removes history.
func (m *CampaignManager) Cancel(id string) bool {
	r, ok := m.Get(id)
	if !ok {
		return false
	}
	return r.cancelRun()
}

// PruneJournals removes completed campaign journals older than maxAge
// (0 keeps everything). Meant for startup, before Replay.
func (m *CampaignManager) PruneJournals(maxAge time.Duration) int {
	n := pruneJournals(m.dir, maxAge)
	m.prunedTotal.Add(uint64(n))
	return n
}

// Replay scans the journal root and re-admits every campaign found there:
// completed ones register for status/stream/export serving, unfinished
// ones (a previous process crashed or was killed mid-campaign) resume
// executing — journaled points are marked terminal without recomputation
// (their results are one content-addressed store hit away), only the
// remainder runs. Returns how many campaigns were loaded completed and
// how many were re-admitted unfinished.
func (m *CampaignManager) Replay() (completed, resumed int, err error) {
	if m.dir == "" {
		return 0, 0, nil
	}
	entries, rerr := os.ReadDir(m.dir)
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return 0, 0, nil
		}
		return 0, 0, rerr
	}
	var firstErr error
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		rj, err := readJournal(filepath.Join(m.dir, ent.Name()))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		spec := CampaignSpec{
			Configs:      rj.manifest.Spec.Configs,
			Benchmarks:   rj.manifest.Spec.Benchmarks,
			Instructions: rj.manifest.Spec.Instructions,
			Seeds:        rj.manifest.Spec.Seeds,
			Retries:      rj.manifest.Spec.Retries,
		}
		spec, err = spec.normalize(m.workerDefault())
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		run := m.newRun(rj.manifest.ID, rj.manifest.Created, spec)
		run.replay(rj.records)
		m.tornTotal.Add(uint64(rj.torn))
		m.replayedTotal.Add(uint64(len(rj.records)))

		m.mu.Lock()
		m.runs[run.id] = run
		m.mu.Unlock()

		if rj.done != nil {
			run.mu.Lock()
			run.state = rj.done.State
			if run.state == CampaignRunning { // defensive: a marker never says running
				run.state = CampaignDone
			}
			run.mu.Unlock()
			completed++
			continue
		}
		jr, err := reopenJournal(m.dir, run.id)
		if err == nil {
			run.jr = jr
		} else if firstErr == nil {
			firstErr = err
		}
		run.start()
		resumed++
	}
	return completed, resumed, firstErr
}

// CampaignStatus is one campaign's progress snapshot.
type CampaignStatus struct {
	ID      string        `json:"id"`
	State   CampaignState `json:"state"`
	Created time.Time     `json:"created"`
	// Total is the campaign's job count; Completed counts successes,
	// Failed counts points that exhausted their retries.
	Total     int `json:"total"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	// Retries counts retry attempts consumed by this campaign's jobs.
	Retries int `json:"retries"`
	// Replayed counts terminal points re-admitted from the journal at
	// startup instead of recomputed.
	Replayed int `json:"replayed"`
	// Cursor is the latest stream cursor: `GET …/results?after=<cursor>`
	// resumes exactly past everything already streamed.
	Cursor uint64 `json:"cursor"`
}

// CampaignRun is one executing (or finished) campaign.
type CampaignRun struct {
	id      string
	created time.Time
	spec    CampaignSpec
	jobs    []Job
	m       *CampaignManager
	jr      *journal
	cancel  context.CancelFunc

	mu                                   sync.Mutex
	changed                              chan struct{} // closed and replaced on every mutation
	records                              []StreamRecord
	terminal                             []bool // per job index: success or final failure recorded
	state                                CampaignState
	completed, failed, retries, replayed int
}

// newRun constructs an unstarted run for a normalized spec.
func (m *CampaignManager) newRun(id string, created time.Time, spec CampaignSpec) *CampaignRun {
	jobs := spec.expand()
	return &CampaignRun{
		id:       id,
		created:  created,
		spec:     spec,
		jobs:     jobs,
		m:        m,
		changed:  make(chan struct{}),
		terminal: make([]bool, len(jobs)),
		state:    CampaignRunning,
	}
}

// replay marks journaled records terminal before the run starts.
func (r *CampaignRun) replay(records []StreamRecord) {
	r.records = append(r.records, records...)
	for _, rec := range records {
		if rec.Index < 0 || rec.Index >= len(r.terminal) || r.terminal[rec.Index] {
			continue
		}
		r.terminal[rec.Index] = true
		if rec.Error == "" {
			r.completed++
		} else {
			r.failed++
		}
	}
	r.replayed = len(records)
}

// ID returns the campaign handle.
func (r *CampaignRun) ID() string { return r.id }

// Spec returns the campaign's normalized spec.
func (r *CampaignRun) Spec() CampaignSpec { return r.spec }

// Status returns a progress snapshot.
func (r *CampaignRun) Status() CampaignStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return CampaignStatus{
		ID:        r.id,
		State:     r.state,
		Created:   r.created,
		Total:     len(r.jobs),
		Completed: r.completed,
		Failed:    r.failed,
		Retries:   r.retries,
		Replayed:  r.replayed,
		Cursor:    uint64(len(r.records)),
	}
}

// JobAt returns the job at a campaign index.
func (r *CampaignRun) JobAt(index int) (Job, bool) {
	if index < 0 || index >= len(r.jobs) {
		return Job{}, false
	}
	return r.jobs[index], true
}

// RecordsAfter returns a snapshot of the records past cursor `after`, the
// current state, and a channel closed on the next mutation — everything a
// streaming reader needs to drain, then block without polling.
func (r *CampaignRun) RecordsAfter(after uint64) ([]StreamRecord, CampaignState, <-chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var recs []StreamRecord
	if after < uint64(len(r.records)) {
		recs = append(recs, r.records[after:]...)
	}
	return recs, r.state, r.changed
}

// ValidCursor reports whether `after` is a cursor this campaign has
// issued (0 = from the beginning).
func (r *CampaignRun) ValidCursor(after uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return after <= uint64(len(r.records))
}

// notify wakes every waiting streamer. Caller holds r.mu.
func (r *CampaignRun) notify() {
	close(r.changed)
	r.changed = make(chan struct{})
}

// start launches the runner goroutine.
func (r *CampaignRun) start() {
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	go r.run(ctx)
}

// cancelRun stops a running campaign; reports whether it was running.
func (r *CampaignRun) cancelRun() bool {
	r.mu.Lock()
	running := r.state == CampaignRunning
	r.mu.Unlock()
	if running && r.cancel != nil {
		r.cancel()
	}
	return running
}

// run executes every non-terminal job, records each terminal outcome
// (journal + stream), and finalizes the campaign. One job exhausting its
// retries degrades the campaign to partial-with-errors; only cancellation
// stops it early.
func (r *CampaignRun) run(ctx context.Context) {
	defer r.cancel()
	var remaining []Job
	r.mu.Lock()
	for i, j := range r.jobs {
		if !r.terminal[i] {
			remaining = append(remaining, j)
		}
	}
	r.mu.Unlock()

	r.m.eng.runJobs(ctx, remaining, r.spec.Workers, r.spec.Retries,
		func(jr JobResult, attempts int, err error) {
			if err != nil && isCancellation(err) {
				return // not terminal: the point re-runs on resume
			}
			r.record(jr, attempts, err)
		})

	r.mu.Lock()
	if ctx.Err() != nil {
		r.state = CampaignCancelled
		r.notify()
		r.mu.Unlock()
		// No completion marker: a cancelled campaign resumes on restart,
		// exactly like a crashed one.
		r.jr.close() //nolint:errcheck // best-effort
		return
	}
	r.state = CampaignDone
	mark := doneMarker{
		State:     CampaignDone,
		Completed: r.completed,
		Failed:    r.failed,
		Finished:  time.Now().UTC(),
	}
	r.notify()
	r.mu.Unlock()
	r.jr.finish(mark) //nolint:errcheck // best-effort: an unmarked done campaign replays as resumed and finds every point cached
}

// record captures one terminal outcome: assign the next cursor, journal
// the record, update counters, wake streamers. Calls arrive serialized
// (runJobs serializes onDone).
func (r *CampaignRun) record(jr JobResult, attempts int, err error) {
	r.mu.Lock()
	rec := StreamRecord{
		Seq:   uint64(len(r.records)) + 1,
		Index: jr.Index,
		Key:   jr.Key,
	}
	if err != nil {
		rec.Error = err.Error()
		r.failed++
	} else {
		r.completed++
	}
	r.retries += attempts
	r.records = append(r.records, rec)
	if jr.Index >= 0 && jr.Index < len(r.terminal) {
		r.terminal[jr.Index] = true
	}
	r.notify()
	r.mu.Unlock()

	if attempts > 0 {
		r.m.retriesTotal.Add(uint64(attempts))
	}
	if err != nil {
		r.m.failedTotal.Add(1)
	}
	r.jr.append(rec) //nolint:errcheck // best-effort: a dropped record re-runs as a store hit after restart
}

// Fetch materializes the result behind one stream record by running its
// key back through the engine — a memory or disk hit for anything already
// computed, including every journal-replayed point.
func (r *CampaignRun) Fetch(ctx context.Context, rec StreamRecord) (JobResult, error) {
	job, ok := r.JobAt(rec.Index)
	if !ok {
		return JobResult{}, fmt.Errorf("engine: campaign %s has no job index %d", r.id, rec.Index)
	}
	if rec.Error != "" {
		return JobResult{Job: job, Error: rec.Error}, nil
	}
	res, src, err := r.m.eng.RunContext(ctx, job.Config, job.Benchmark, job.Instructions, job.Seed)
	if err != nil {
		return JobResult{}, err
	}
	return JobResult{Job: job, Source: src, Result: res}, nil
}

// Export materializes the campaign's final results in deterministic
// expansion order. Every completed point is fetched back through the
// engine (memory or disk hits; a lost store entry deterministically
// recomputes), and the served Source is cleared — the export is the
// durable artifact, byte-identical no matter how often the campaign was
// interrupted, killed and resumed. Exporting before the campaign is done
// returns ErrCampaignNotDone.
func (r *CampaignRun) Export(ctx context.Context) (*Campaign, error) {
	r.mu.Lock()
	if r.state != CampaignDone {
		r.mu.Unlock()
		return nil, ErrCampaignNotDone
	}
	failedBy := make(map[int]string, r.failed)
	for _, rec := range r.records {
		if rec.Error != "" {
			failedBy[rec.Index] = rec.Error
		}
	}
	r.mu.Unlock()

	results := make([]JobResult, 0, len(r.jobs))
	for _, j := range r.jobs {
		if msg, ok := failedBy[j.Index]; ok {
			results = append(results, JobResult{Job: j, Error: msg})
			continue
		}
		res, _, err := r.m.eng.RunContext(ctx, j.Config, j.Benchmark, j.Instructions, j.Seed)
		if err != nil {
			return nil, err
		}
		results = append(results, JobResult{Job: j, Result: res})
	}
	return &Campaign{Spec: r.spec, Results: results}, nil
}
