package engine

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"malec/internal/cluster"
	"malec/internal/config"
	"malec/internal/cpu"
	"malec/internal/trace"
)

// CampaignSpec describes a grid of simulation points: every configuration
// crossed with every benchmark and every seed at one instruction count.
type CampaignSpec struct {
	// Configs to simulate. Required.
	Configs []config.Config
	// Benchmarks to simulate (default: all 38).
	Benchmarks []string
	// Instructions per simulation (default 300000).
	Instructions int
	// Seeds selects the workload instances (default: [1]).
	Seeds []uint64
	// Workers bounds this campaign's concurrent job submissions (default:
	// the engine's worker bound). The engine's own bound still applies to
	// actual simulations.
	Workers int
	// Retries bounds how many times one job is re-attempted (with
	// exponential backoff) after a transient failure — a contained
	// simulation panic, e.g. an injected fault — before the job is
	// declared failed. 0 disables retries; negative is treated as 0.
	Retries int
	// Progress, if set, is called after each job completes with the
	// number of finished jobs, the total, and the finished job.
	// Invocations are serialized.
	Progress func(done, total int, job Job)
}

// normalize applies spec defaults. It returns an error rather than panic
// for unknown benchmarks so that service callers can reject bad requests.
func (s CampaignSpec) normalize(engineWorkers int) (CampaignSpec, error) {
	if len(s.Configs) == 0 {
		return s, fmt.Errorf("engine: campaign needs at least one config")
	}
	if len(s.Benchmarks) == 0 {
		s.Benchmarks = trace.AllBenchmarks()
	}
	for _, b := range s.Benchmarks {
		if _, ok := trace.Profiles[b]; !ok {
			return s, fmt.Errorf("engine: unknown benchmark %q", b)
		}
	}
	if s.Instructions <= 0 {
		s.Instructions = DefaultInstructions
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []uint64{1}
	}
	if s.Workers <= 0 {
		s.Workers = engineWorkers
	}
	return s, nil
}

// Job is one expanded simulation point of a campaign.
type Job struct {
	// Index is the job's position in the campaign's deterministic
	// config-major, benchmark-middle, seed-minor expansion order.
	Index        int           `json:"index"`
	Config       config.Config `json:"-"`
	ConfigName   string        `json:"config"`
	Benchmark    string        `json:"benchmark"`
	Instructions int           `json:"instructions"`
	Seed         uint64        `json:"seed"`
	Key          Key           `json:"key"`
}

// JobResult pairs a job with its simulation result and the source it was
// served from. In a durable campaign's export a job that exhausted its
// retries instead carries Error (and a zero Result); synchronous
// RunCampaign never produces error rows — it aborts on the first final
// failure.
type JobResult struct {
	Job
	Source Source     `json:"source,omitempty"`
	Result cpu.Result `json:"result"`
	Error  string     `json:"error,omitempty"`
}

// Campaign holds the results of one campaign run, in expansion order.
type Campaign struct {
	Spec    CampaignSpec `json:"-"`
	Results []JobResult  `json:"results"`
}

// expand lists a spec's jobs in deterministic order.
func (s CampaignSpec) expand() []Job {
	jobs := make([]Job, 0, len(s.Configs)*len(s.Benchmarks)*len(s.Seeds))
	for _, c := range s.Configs {
		for _, b := range s.Benchmarks {
			for _, seed := range s.Seeds {
				jobs = append(jobs, Job{
					Index:        len(jobs),
					Config:       c,
					ConfigName:   c.Name,
					Benchmark:    b,
					Instructions: s.Instructions,
					Seed:         seed,
					Key:          KeyFor(c, b, s.Instructions, seed),
				})
			}
		}
	}
	return jobs
}

// PanicError reports a simulation that panicked during a campaign. Direct
// RunTracked callers see simulator panics re-raised; campaign workers
// instead contain them here so one bad point fails the sweep, not the
// process hosting it.
type PanicError struct {
	Job   Job
	Value any
}

// Error implements error.
func (p *PanicError) Error() string {
	return fmt.Sprintf("engine: simulation %s panicked: %v", p.Job.Key, p.Value)
}

// RunCampaign expands the spec into jobs and runs them through the engine
// with bounded parallelism. Each worker writes results into its own
// pre-assigned slice positions, so no lock is held on the result path; the
// output order is the deterministic expansion order regardless of worker
// count or completion order. If any simulation panics, the remaining jobs
// still run and RunCampaign returns a *PanicError for the first failed
// one with no campaign.
func (e *Engine) RunCampaign(spec CampaignSpec) (*Campaign, error) {
	return e.RunCampaignContext(context.Background(), spec)
}

// RunCampaignContext is RunCampaign with cancellation: once ctx is
// cancelled, no further jobs are fed, in-flight points stop at their next
// cancellation check, and the context's error is returned. Simulation
// panics are retried up to spec.Retries times per job with exponential
// backoff; a job that exhausts its retries surfaces as *PanicError (the
// remaining jobs still run to completion).
func (e *Engine) RunCampaignContext(ctx context.Context, spec CampaignSpec) (*Campaign, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	spec, err := spec.normalize(cap(e.sem))
	if err != nil {
		return nil, err
	}
	jobs := spec.expand()
	results := make([]JobResult, len(jobs))
	var (
		done     int
		firstErr error
	)
	e.runJobs(ctx, jobs, spec.Workers, spec.Retries,
		func(jr JobResult, attempts int, err error) {
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			results[jr.Index] = jr
			if spec.Progress != nil {
				done++
				spec.Progress(done, len(jobs), jr.Job)
			}
		})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return &Campaign{Spec: spec, Results: results}, nil
}

// jobBackoff is the sleep before retry number attempt (0-based): the
// shared cluster backoff policy — 50ms doubling per attempt, capped at 2s,
// with full jitter in the upper half of the window.
func jobBackoff(attempt int) time.Duration {
	return cluster.Backoff(attempt, 50*time.Millisecond, 2*time.Second)
}

// runJobs executes an arbitrary job list through the engine with bounded
// worker parallelism and bounded per-job retries. onDone is invoked
// exactly once per job — serialized, in completion order — with the
// result (err == nil), the job's final error, or the cancellation error
// for jobs cut off mid-flight; attempts counts the retries the job
// consumed. The feed groups jobs by (benchmark, seed) so every
// configuration sharing one workload runs back to back and the
// materialized-trace cache holds only the traces currently in flight;
// completion order is still nondeterministic, which is why results carry
// their own campaign Index.
func (e *Engine) runJobs(ctx context.Context, jobs []Job, workers, retries int, onDone func(jr JobResult, attempts int, err error)) {
	if retries < 0 {
		retries = 0
	}
	runOne := func(j Job) (jr JobResult, attempts int, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Job: j, Value: r}
			}
		}()
		for attempt := 0; ; attempt++ {
			res, src, err := e.RunContext(ctx, j.Config, j.Benchmark, j.Instructions, j.Seed)
			if err == nil {
				return JobResult{Job: j, Source: src, Result: res}, attempt, nil
			}
			if isCancellation(err) {
				return JobResult{Job: j}, attempt, err
			}
			var pe *SimPanicError
			if errors.As(err, &pe) {
				err = &PanicError{Job: j, Value: pe.Value}
			}
			if attempt >= retries {
				return JobResult{Job: j}, attempt, err
			}
			// The engine quarantined the panicked key; forget it so the
			// retry actually re-runs the point instead of failing fast on
			// the cached poison — transient faults (chaos injection, an
			// OOM-killed helper) deserve their second chance, while a
			// deterministic model bug just fails again and exhausts the
			// bound.
			e.ForgetPoisoned(j.Key)
			select {
			case <-time.After(jobBackoff(attempt)):
			case <-ctx.Done():
				return JobResult{Job: j}, attempt, ctx.Err()
			}
		}
	}

	var (
		wg     sync.WaitGroup
		doneMu sync.Mutex
	)
	idx := make(chan int)
	if workers <= 0 {
		workers = cap(e.sem)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				jr, attempts, err := runOne(jobs[i])
				doneMu.Lock()
				onDone(jr, attempts, err)
				doneMu.Unlock()
			}
		}()
	}
	// Feed jobs grouped by (benchmark, seed): every configuration sharing
	// one workload runs back to back, so the trace cache's reuse distance
	// is the config count, not the whole grid. Buckets keep first-seen
	// order (the deterministic expansion order), so full grids feed
	// exactly as before.
	type workload struct {
		bench string
		seed  uint64
	}
	var order []workload
	buckets := make(map[workload][]int)
	for i, j := range jobs {
		w := workload{j.Benchmark, j.Seed}
		if _, ok := buckets[w]; !ok {
			order = append(order, w)
		}
		buckets[w] = append(buckets[w], i)
	}
feed:
	for _, w := range order {
		for _, i := range buckets[w] {
			select {
			case idx <- i:
			case <-ctx.Done():
				break feed
			}
		}
	}
	close(idx)
	wg.Wait()
}

// Result returns the result for (configName, benchmark, seed), if present.
func (c *Campaign) Result(configName, benchmark string, seed uint64) (cpu.Result, bool) {
	for i := range c.Results {
		r := &c.Results[i]
		if r.ConfigName == configName && r.Benchmark == benchmark && r.Seed == seed {
			return r.Result, true
		}
	}
	return cpu.Result{}, false
}

// JSON exports the campaign results as deterministic, indented JSON.
func (c *Campaign) JSON() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// csvHeader names the CSV export columns.
var csvHeader = []string{
	"config", "benchmark", "instructions", "seed", "key",
	"cycles", "ipc", "loads", "stores",
	"l1_hits", "l1_misses", "l1_miss_rate",
	"utlb_miss_rate", "tlb_miss_rate", "wt_coverage",
	"energy_dynamic_pj", "energy_leakage_pj", "energy_total_pj",
}

// WriteCSV exports the campaign results as CSV in expansion order. Float
// columns use shortest-round-trip formatting, so equal results export to
// byte-identical files.
func (c *Campaign) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for i := range c.Results {
		r := &c.Results[i]
		res := &r.Result
		row := []string{
			r.ConfigName,
			r.Benchmark,
			strconv.Itoa(r.Instructions),
			strconv.FormatUint(r.Seed, 10),
			r.Key.String(),
			strconv.FormatUint(res.Cycles, 10),
			formatFloat(res.IPC()),
			strconv.FormatUint(res.Loads, 10),
			strconv.FormatUint(res.Stores, 10),
			strconv.FormatUint(res.L1.Hits, 10),
			strconv.FormatUint(res.L1.Misses, 10),
			formatFloat(res.L1.MissRate()),
			formatFloat(res.UTLB.MissRate()),
			formatFloat(res.TLB.MissRate()),
			formatFloat(res.Coverage()),
			formatFloat(res.Energy.TotalDynamic()),
			formatFloat(res.Energy.TotalLeakage()),
			formatFloat(res.Energy.Total()),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSV exports the campaign results as a CSV byte slice.
func (c *Campaign) CSV() ([]byte, error) {
	var b bytes.Buffer
	if err := c.WriteCSV(&b); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// formatFloat renders a float with the shortest representation that
// round-trips, 'g' format.
func formatFloat(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
