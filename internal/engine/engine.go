// Package engine is the simulation campaign engine: a reusable layer that
// owns scheduling, caching and persistence of simulation results, so that
// experiment drivers, CLIs and the malecd service all share one notion of
// "run this simulation point".
//
// The engine provides:
//
//   - a canonical Key per simulation point (config digest + benchmark +
//     instructions + seed) with a content-addressed in-memory result cache
//     and optional JSON disk persistence sharded by key prefix;
//   - a bounded-worker scheduler with in-flight deduplication (singleflight
//     semantics: concurrent requests for the same key share one simulation);
//   - a campaign API that expands config x benchmark x seed grids into
//     jobs, streams progress callbacks, and exports results as JSON or CSV.
//
// Because the simulator is fully deterministic in (config, benchmark,
// instructions, seed), cached results are indistinguishable from fresh
// ones; repeating any experiment through a shared engine costs only map
// lookups.
package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"malec/internal/config"
	"malec/internal/cpu"
	"malec/internal/trace"
)

// SimulateFunc computes the result of one simulation point. The default is
// cpu.RunBenchmark; tests substitute stubs to observe scheduling behavior.
type SimulateFunc func(cfg config.Config, benchmark string, instructions int, seed uint64) cpu.Result

// Options configures an Engine. The zero value is usable.
type Options struct {
	// Workers bounds the number of simulations executing concurrently
	// (default: GOMAXPROCS). Requests beyond the bound queue.
	Workers int
	// CacheDir enables disk persistence of results under this directory,
	// as JSON files sharded by config-digest prefix. Results found on
	// disk are promoted into the in-memory cache. Empty disables disk
	// persistence.
	CacheDir string
	// MaxCacheEntries bounds the in-memory cache; when full, the oldest
	// entry is evicted (it remains on disk if CacheDir is set). Zero
	// means unbounded — appropriate for one-shot campaigns; long-lived
	// processes should set a bound.
	MaxCacheEntries int
	// CheckpointEntries bounds the in-memory warmed-checkpoint cache (zero
	// selects DefaultCheckpointEntries, negative disables checkpointing).
	// Checkpoints persist to disk alongside results when CacheDir is set;
	// they only apply to sampled simulations (Config.Sampling != nil).
	CheckpointEntries int
	// TraceCacheRecords bounds the engine's materialized-trace cache in
	// total trace records (not bytes): the engine generates each
	// (benchmark, seed) workload once per campaign and shares the flat
	// record arena between every configuration simulating it, instead of
	// regenerating the byte-identical trace per config. Zero selects
	// DefaultTraceCacheRecords; a negative value disables trace caching
	// (every simulation generates its own trace, the pre-cache behavior).
	// Ignored when Simulate is set.
	TraceCacheRecords int
	// Simulate overrides the simulation function (tests only).
	Simulate SimulateFunc
}

// DefaultTraceCacheRecords is the default materialized-trace cache bound:
// 8M records (~200 MB of trace arena) holds the in-flight working set of
// any realistic campaign, since RunCampaign orders execution so that all
// configurations sharing one workload run back to back.
const DefaultTraceCacheRecords = 1 << 23

// Source reports where a result came from.
type Source string

// Result sources.
const (
	// SourceMemory: served from the in-memory cache.
	SourceMemory Source = "memory"
	// SourceDisk: loaded from the disk store.
	SourceDisk Source = "disk"
	// SourceInflight: attached to a simulation already in flight for the
	// same key (singleflight).
	SourceInflight Source = "inflight"
	// SourceSimulated: computed by running the simulator.
	SourceSimulated Source = "simulated"
)

// Stats is a snapshot of the engine's cache and scheduler counters.
type Stats struct {
	// Hits counts requests served from the in-memory cache.
	Hits uint64 `json:"hits"`
	// DiskHits counts requests served from the disk store.
	DiskHits uint64 `json:"diskHits"`
	// Dedup counts requests that attached to an in-flight simulation.
	Dedup uint64 `json:"dedup"`
	// Simulations counts simulations actually executed.
	Simulations uint64 `json:"simulations"`
	// Entries is the current in-memory cache size.
	Entries int `json:"entries"`
	// TraceHits and TraceMisses count materialized-trace cache activity:
	// hits are simulations served from an already-generated shared trace
	// arena, misses had to generate (or extend) one. Both stay zero when
	// trace caching is disabled or a custom Simulate is installed.
	TraceHits   uint64 `json:"traceHits"`
	TraceMisses uint64 `json:"traceMisses"`
	// TraceRecords is the number of trace records currently held by the
	// materialized-trace cache.
	TraceRecords int `json:"traceRecords"`
	// QueueDepth is the number of simulations currently waiting for a
	// worker slot — the scheduler's backlog, the first number to watch
	// under load (a persistently non-zero depth means offered work
	// exceeds simulation capacity).
	QueueDepth int `json:"queueDepth"`
	// Running is the number of simulations executing right now (bounded
	// by Options.Workers).
	Running int `json:"running"`
	// CheckpointHits and CheckpointMisses count warmed-checkpoint lookups
	// at sampled-simulation window boundaries: a hit restores warm
	// memory-side state instead of re-warming the interval. Both stay zero
	// when checkpointing is disabled or no sampled simulation has run.
	CheckpointHits   uint64 `json:"checkpointHits"`
	CheckpointMisses uint64 `json:"checkpointMisses"`
	// CheckpointBytesRead and CheckpointBytesWritten count checkpoint disk
	// traffic (zero when CacheDir is unset: the in-memory store has no
	// serialization cost).
	CheckpointBytesRead    uint64 `json:"checkpointBytesRead"`
	CheckpointBytesWritten uint64 `json:"checkpointBytesWritten"`
}

// Lookups returns the total number of requests the engine has served.
func (s Stats) Lookups() uint64 { return s.Hits + s.DiskHits + s.Dedup + s.Simulations }

// call is one in-flight simulation; waiters block on done. If the leader
// panicked, panicVal holds the panic value for waiters to re-raise.
type call struct {
	done     chan struct{}
	res      cpu.Result
	panicVal any
}

// Engine schedules, deduplicates, caches and persists simulations. It is
// safe for concurrent use.
type Engine struct {
	simulate   SimulateFunc
	cacheDir   string
	maxEntries int
	sem        chan struct{}    // bounds concurrent simulations
	traces     *trace.Cache     // shared materialized traces (nil: disabled)
	ckpts      *checkpointStore // warmed checkpoints (nil: disabled)

	// Scheduler gauges, updated outside e.mu: queued counts goroutines
	// waiting for a worker slot, running counts simulations in flight.
	queued  atomic.Int64
	running atomic.Int64

	mu       sync.Mutex
	cache    map[Key]cpu.Result
	order    []Key // cache insertion order, for FIFO eviction
	inflight map[Key]*call
	stats    Stats
}

// New returns an Engine with the given options.
func New(opts Options) *Engine {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		cacheDir:   opts.CacheDir,
		maxEntries: opts.MaxCacheEntries,
		sem:        make(chan struct{}, opts.Workers),
		cache:      make(map[Key]cpu.Result),
		inflight:   make(map[Key]*call),
	}
	e.simulate = opts.Simulate
	if e.simulate == nil {
		if opts.CheckpointEntries >= 0 {
			e.ckpts = newCheckpointStore(opts.CacheDir, opts.CheckpointEntries)
		}
		bound := opts.TraceCacheRecords
		if bound == 0 {
			bound = DefaultTraceCacheRecords
		}
		if bound > 0 {
			e.traces = trace.NewCache(bound)
			e.simulate = func(cfg config.Config, benchmark string, instructions int, seed uint64) cpu.Result {
				recs := e.traces.Records(benchmark, seed, instructions)
				return cpu.RunWithCheckpoints(cfg, benchmark,
					&cpu.SliceSource{Records: recs}, e.checkpoints(cfg, benchmark, seed))
			}
		} else {
			e.simulate = func(cfg config.Config, benchmark string, instructions int, seed uint64) cpu.Result {
				prof, ok := trace.Profiles[benchmark]
				if !ok {
					panic(fmt.Sprintf("engine: unknown benchmark %q", benchmark))
				}
				gen := trace.NewGenerator(prof, seed)
				return cpu.RunWithCheckpoints(cfg, benchmark,
					&cpu.GenSource{Gen: gen, N: instructions}, e.checkpoints(cfg, benchmark, seed))
			}
		}
	}
	return e
}

// checkpoints returns the warmed-checkpoint view for one simulation point,
// scoped by memory-side digest so core-side config variants share entries.
// Nil when checkpointing is disabled.
func (e *Engine) checkpoints(cfg config.Config, benchmark string, seed uint64) cpu.Checkpoints {
	if e.ckpts == nil {
		return nil
	}
	return e.ckpts.scoped(MemSideDigest(cfg), benchmark, seed)
}

// store inserts a result into the in-memory cache, evicting the oldest
// entries past the bound. Caller holds e.mu.
func (e *Engine) store(key Key, res cpu.Result) {
	if _, ok := e.cache[key]; !ok {
		e.order = append(e.order, key)
	}
	e.cache[key] = res
	if e.maxEntries <= 0 {
		return
	}
	for len(e.cache) > e.maxEntries {
		oldest := e.order[0]
		e.order = e.order[1:]
		delete(e.cache, oldest)
	}
}

// Run returns the result of one simulation point, computing it at most
// once per key across all concurrent callers.
func (e *Engine) Run(cfg config.Config, benchmark string, instructions int, seed uint64) cpu.Result {
	res, _ := e.RunTracked(cfg, benchmark, instructions, seed)
	return res
}

// RunTracked is Run plus the source the result was served from.
func (e *Engine) RunTracked(cfg config.Config, benchmark string, instructions int, seed uint64) (cpu.Result, Source) {
	key := KeyFor(cfg, benchmark, instructions, seed)

	e.mu.Lock()
	if res, ok := e.cache[key]; ok {
		e.stats.Hits++
		e.mu.Unlock()
		return res, SourceMemory
	}
	if c, ok := e.inflight[key]; ok {
		e.stats.Dedup++
		e.mu.Unlock()
		<-c.done
		if c.panicVal != nil {
			// The leader's simulation panicked; a zero Result would
			// be silently wrong data, so every waiter fails the same
			// way the leader did.
			panic(c.panicVal)
		}
		return c.res, SourceInflight
	}
	c := &call{done: make(chan struct{})}
	e.inflight[key] = c
	e.mu.Unlock()

	// Leader path: this goroutine owns the key until c.done closes. If
	// the simulator panics (e.g. an unknown benchmark reached the engine
	// unvalidated), drop the key, hand the panic value to waiters, and
	// re-raise, so the engine stays usable.
	defer func() {
		if r := recover(); r != nil {
			e.mu.Lock()
			delete(e.inflight, key)
			e.mu.Unlock()
			c.panicVal = r
			close(c.done)
			panic(r)
		}
	}()

	src := SourceDisk
	res, ok := e.loadDisk(key)
	if !ok {
		res = e.runSimulation(cfg, benchmark, instructions, seed)
		src = SourceSimulated
		e.saveDisk(key, res)
	}

	e.mu.Lock()
	e.store(key, res)
	delete(e.inflight, key)
	if src == SourceDisk {
		e.stats.DiskHits++
	} else {
		e.stats.Simulations++
	}
	e.mu.Unlock()
	c.res = res
	close(c.done)
	return res, src
}

// runSimulation executes the simulator under the worker bound, releasing
// the slot even if the simulator panics.
func (e *Engine) runSimulation(cfg config.Config, benchmark string, instructions int, seed uint64) cpu.Result {
	e.queued.Add(1)
	e.sem <- struct{}{}
	e.queued.Add(-1)
	e.running.Add(1)
	defer func() {
		e.running.Add(-1)
		<-e.sem
	}()
	return e.simulate(cfg, benchmark, instructions, seed)
}

// Cached returns the cached result for a key, if present in memory.
func (e *Engine) Cached(key Key) (cpu.Result, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	res, ok := e.cache[key]
	return res, ok
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	s := e.stats
	s.Entries = len(e.cache)
	e.mu.Unlock()
	s.QueueDepth = int(e.queued.Load())
	s.Running = int(e.running.Load())
	if e.traces != nil {
		ts := e.traces.Stats()
		s.TraceHits = ts.Hits
		s.TraceMisses = ts.Misses
		s.TraceRecords = ts.Records
	}
	if e.ckpts != nil {
		s.CheckpointHits = e.ckpts.hits.Load()
		s.CheckpointMisses = e.ckpts.misses.Load()
		s.CheckpointBytesRead = e.ckpts.bytesRead.Load()
		s.CheckpointBytesWritten = e.ckpts.bytesWritten.Load()
	}
	return s
}

// DefaultInstructions is the instruction count used when a campaign spec
// or service request leaves it unset. Shared so the server's limit checks
// and the campaign's normalization can never disagree on the effective
// value.
const DefaultInstructions = 300000

// DiskFormatVersion stamps persisted results with both the cpu.Result
// schema and the simulator's observable semantics. Bump it whenever either
// changes (a timing-model fix, an energy-parameter change, a Result field
// rename): entries written under another version are treated as misses, so
// a stale cache can never silently stand in for fresh results.
const DiskFormatVersion = 1

// diskEntry is the on-disk representation of one cached result.
type diskEntry struct {
	Version int        `json:"version"`
	Key     Key        `json:"key"`
	Result  cpu.Result `json:"result"`
}

// diskPath returns the sharded path of a key's disk entry. The version
// directory keeps incompatible generations side by side, so a rollback
// finds its old entries intact.
func (e *Engine) diskPath(key Key) string {
	return filepath.Join(e.cacheDir, fmt.Sprintf("v%d", DiskFormatVersion), key.shard(), key.filename())
}

// loadDisk fetches a persisted result. Any read or decode failure, key
// mismatch or version mismatch is a plain miss: the store is a cache,
// never a source of truth.
func (e *Engine) loadDisk(key Key) (cpu.Result, bool) {
	if e.cacheDir == "" {
		return cpu.Result{}, false
	}
	data, err := os.ReadFile(e.diskPath(key))
	if err != nil {
		return cpu.Result{}, false
	}
	var ent diskEntry
	if err := json.Unmarshal(data, &ent); err != nil || ent.Version != DiskFormatVersion || ent.Key != key {
		return cpu.Result{}, false
	}
	return ent.Result, true
}

// saveDisk persists a result, writing to a temp file and renaming so a
// concurrent reader never observes a partial entry. Persistence is best
// effort: on any error the entry is simply not stored.
func (e *Engine) saveDisk(key Key, res cpu.Result) {
	if e.cacheDir == "" {
		return
	}
	dir := filepath.Dir(e.diskPath(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	data, err := json.Marshal(diskEntry{Version: DiskFormatVersion, Key: key, Result: res})
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, key.filename()+".tmp*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), e.diskPath(key)); err != nil {
		os.Remove(tmp.Name())
	}
}
