// Package engine is the simulation campaign engine: a reusable layer that
// owns scheduling, caching and persistence of simulation results, so that
// experiment drivers, CLIs and the malecd service all share one notion of
// "run this simulation point".
//
// The engine provides:
//
//   - a canonical Key per simulation point (config digest + benchmark +
//     instructions + seed) with a content-addressed in-memory result cache
//     and optional JSON disk persistence sharded by key prefix;
//   - a bounded-worker scheduler with in-flight deduplication (singleflight
//     semantics: concurrent requests for the same key share one simulation);
//   - a campaign API that expands config x benchmark x seed grids into
//     jobs, streams progress callbacks, and exports results as JSON or CSV.
//
// Because the simulator is fully deterministic in (config, benchmark,
// instructions, seed), cached results are indistinguishable from fresh
// ones; repeating any experiment through a shared engine costs only map
// lookups.
package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"malec/internal/config"
	"malec/internal/cpu"
	"malec/internal/faultinject"
	"malec/internal/trace"
)

// SimulateFunc computes the result of one simulation point. The default is
// cpu.RunBenchmark; tests substitute stubs to observe scheduling behavior.
type SimulateFunc func(cfg config.Config, benchmark string, instructions int, seed uint64) cpu.Result

// SimulateContextFunc is SimulateFunc with cancellation: the engine passes
// the in-flight job's context, which is cancelled once every caller has
// abandoned the key. Tests needing to observe or block on cancellation
// substitute stubs via Options.SimulateContext.
type SimulateContextFunc func(ctx context.Context, cfg config.Config, benchmark string, instructions int, seed uint64) (cpu.Result, error)

// Options configures an Engine. The zero value is usable.
type Options struct {
	// Workers bounds the number of simulations executing concurrently
	// (default: GOMAXPROCS). Requests beyond the bound queue.
	Workers int
	// CacheDir enables disk persistence of results under this directory,
	// as JSON files sharded by config-digest prefix. Results found on
	// disk are promoted into the in-memory cache. Empty disables disk
	// persistence.
	CacheDir string
	// MaxCacheEntries bounds the in-memory cache; when full, the oldest
	// entry is evicted (it remains on disk if CacheDir is set). Zero
	// means unbounded — appropriate for one-shot campaigns; long-lived
	// processes should set a bound.
	MaxCacheEntries int
	// CheckpointEntries bounds the in-memory warmed-checkpoint cache (zero
	// selects DefaultCheckpointEntries, negative disables checkpointing).
	// Checkpoints persist to disk alongside results when CacheDir is set;
	// they only apply to sampled simulations (Config.Sampling != nil).
	CheckpointEntries int
	// MaxPoisonedKeys bounds the poisoned-key quarantine map; when full,
	// the oldest poisoned key is forgotten (FIFO), so panic churn cannot
	// grow the map without limit. Zero selects DefaultMaxPoisonedKeys;
	// negative disables the bound.
	MaxPoisonedKeys int
	// TraceCacheRecords bounds the engine's materialized-trace cache in
	// total trace records (not bytes): the engine generates each
	// (benchmark, seed) workload once per campaign and shares the flat
	// record arena between every configuration simulating it, instead of
	// regenerating the byte-identical trace per config. Zero selects
	// DefaultTraceCacheRecords; a negative value disables trace caching
	// (every simulation generates its own trace, the pre-cache behavior).
	// Ignored when Simulate is set.
	TraceCacheRecords int
	// Simulate overrides the simulation function (tests only).
	Simulate SimulateFunc
	// SimulateContext overrides the simulation function with a
	// cancellation-aware stub (tests only); takes precedence over
	// Simulate.
	SimulateContext SimulateContextFunc
}

// DefaultMaxPoisonedKeys is the default poisoned-key quarantine bound.
// A thousand distinct panicking points means something systemic, not a
// per-key record worth keeping; FIFO eviction past the bound keeps the
// map a fixed-size incident log.
const DefaultMaxPoisonedKeys = 1024

// DefaultTraceCacheRecords is the default materialized-trace cache bound:
// 8M records (~200 MB of trace arena) holds the in-flight working set of
// any realistic campaign, since RunCampaign orders execution so that all
// configurations sharing one workload run back to back.
const DefaultTraceCacheRecords = 1 << 23

// Source reports where a result came from.
type Source string

// Result sources.
const (
	// SourceMemory: served from the in-memory cache.
	SourceMemory Source = "memory"
	// SourceDisk: loaded from the disk store.
	SourceDisk Source = "disk"
	// SourceInflight: attached to a simulation already in flight for the
	// same key (singleflight).
	SourceInflight Source = "inflight"
	// SourceSimulated: computed by running the simulator.
	SourceSimulated Source = "simulated"
	// SourceRemote: executed on a cluster peer via the remote hook.
	SourceRemote Source = "remote"
)

// Stats is a snapshot of the engine's cache and scheduler counters.
type Stats struct {
	// Hits counts requests served from the in-memory cache.
	Hits uint64 `json:"hits"`
	// DiskHits counts requests served from the disk store.
	DiskHits uint64 `json:"diskHits"`
	// Dedup counts requests that attached to an in-flight simulation.
	Dedup uint64 `json:"dedup"`
	// Simulations counts simulations actually executed.
	Simulations uint64 `json:"simulations"`
	// Remote counts points executed on a cluster peer via the remote hook.
	Remote uint64 `json:"remote"`
	// Entries is the current in-memory cache size.
	Entries int `json:"entries"`
	// TraceHits and TraceMisses count materialized-trace cache activity:
	// hits are simulations served from an already-generated shared trace
	// arena, misses had to generate (or extend) one. Both stay zero when
	// trace caching is disabled or a custom Simulate is installed.
	TraceHits   uint64 `json:"traceHits"`
	TraceMisses uint64 `json:"traceMisses"`
	// TraceRecords is the number of trace records currently held by the
	// materialized-trace cache.
	TraceRecords int `json:"traceRecords"`
	// QueueDepth is the number of simulations currently waiting for a
	// worker slot — the scheduler's backlog, the first number to watch
	// under load (a persistently non-zero depth means offered work
	// exceeds simulation capacity).
	QueueDepth int `json:"queueDepth"`
	// Running is the number of simulations executing right now (bounded
	// by Options.Workers).
	Running int `json:"running"`
	// CheckpointHits and CheckpointMisses count warmed-checkpoint lookups
	// at sampled-simulation window boundaries: a hit restores warm
	// memory-side state instead of re-warming the interval. Both stay zero
	// when checkpointing is disabled or no sampled simulation has run.
	CheckpointHits   uint64 `json:"checkpointHits"`
	CheckpointMisses uint64 `json:"checkpointMisses"`
	// CheckpointBytesRead and CheckpointBytesWritten count checkpoint disk
	// traffic (zero when CacheDir is unset: the in-memory store has no
	// serialization cost).
	CheckpointBytesRead    uint64 `json:"checkpointBytesRead"`
	CheckpointBytesWritten uint64 `json:"checkpointBytesWritten"`
	// Cancelled counts in-flight simulations abandoned because every
	// caller went away (client disconnects, deadlines): the job's context
	// was cancelled and the simulation stopped mid-run.
	Cancelled uint64 `json:"cancelled"`
	// Panics counts simulation panics contained as structured per-job
	// errors instead of unwinding the process.
	Panics uint64 `json:"panics"`
	// Quarantined counts poisoned keys (a panicking simulation point is
	// never re-run hot) plus corrupt disk-store and checkpoint entries
	// renamed aside with a .corrupt suffix.
	Quarantined uint64 `json:"quarantined"`
	// PoisonedKeys is the current poisoned-map size (a gauge, bounded by
	// Options.MaxPoisonedKeys).
	PoisonedKeys int `json:"poisonedKeys"`
	// CorruptPruned counts .corrupt quarantine files removed by retention
	// sweeps (PruneCorrupt).
	CorruptPruned uint64 `json:"corruptPruned"`
}

// Lookups returns the total number of requests the engine has served.
func (s Stats) Lookups() uint64 {
	return s.Hits + s.DiskHits + s.Dedup + s.Simulations + s.Remote
}

// SimPanicError is the structured form of a contained simulation panic.
// The engine recovers worker panics instead of letting them unwind the
// process, returns this error to every caller of the key, and quarantines
// the key so a poisoned point is never re-run hot (no re-panic storm).
type SimPanicError struct {
	Key   Key
	Value any
}

// Error implements error.
func (e *SimPanicError) Error() string {
	return fmt.Sprintf("engine: simulation %s panicked: %v", e.Key, e.Value)
}

// call is one in-flight simulation. The work runs on a detached goroutine
// under its own context; callers (the initiating one and any deduplicated
// joiners) wait on done with their own contexts, so one caller's
// cancellation never poisons the result for the others. waiters counts the
// callers still interested (guarded by Engine.mu); the last one to abandon
// cancels the job.
type call struct {
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int
	res     cpu.Result
	src     Source
	err     error
}

// Engine schedules, deduplicates, caches and persists simulations. It is
// safe for concurrent use.
type Engine struct {
	simulate   SimulateContextFunc
	cacheDir   string
	maxEntries int
	sem        chan struct{}    // bounds concurrent simulations
	traces     *trace.Cache     // shared materialized traces (nil: disabled)
	ckpts      *checkpointStore // warmed checkpoints (nil: disabled)

	// Scheduler gauges, updated outside e.mu: queued counts goroutines
	// waiting for a worker slot, running counts simulations in flight.
	queued  atomic.Int64
	running atomic.Int64

	// remote, when set, is consulted after a disk miss and before a worker
	// slot: it may execute the point elsewhere (a cluster peer). Forwarded
	// points never consume local simulation capacity.
	remote atomic.Pointer[RemoteFunc]

	// filesQuarantined counts corrupt result-store entries renamed aside
	// (outside e.mu: loadDisk runs on the job path).
	filesQuarantined atomic.Uint64
	// corruptPruned counts .corrupt files removed by PruneCorrupt sweeps.
	corruptPruned atomic.Uint64

	maxPoisoned int // poisoned-map bound (<= 0: unbounded)

	mu          sync.Mutex
	cache       map[Key]cpu.Result
	order       []Key // cache insertion order, for FIFO eviction
	inflight    map[Key]*call
	poisoned    map[Key]error // keys whose simulation panicked, never re-run
	poisonOrder []Key         // poisoning order, for FIFO eviction
	stats       Stats
}

// New returns an Engine with the given options.
func New(opts Options) *Engine {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxPoisonedKeys == 0 {
		opts.MaxPoisonedKeys = DefaultMaxPoisonedKeys
	}
	e := &Engine{
		cacheDir:    opts.CacheDir,
		maxEntries:  opts.MaxCacheEntries,
		sem:         make(chan struct{}, opts.Workers),
		cache:       make(map[Key]cpu.Result),
		inflight:    make(map[Key]*call),
		poisoned:    make(map[Key]error),
		maxPoisoned: opts.MaxPoisonedKeys,
	}
	e.simulate = opts.SimulateContext
	if e.simulate == nil && opts.Simulate != nil {
		sim := opts.Simulate
		e.simulate = func(_ context.Context, cfg config.Config, benchmark string, instructions int, seed uint64) (cpu.Result, error) {
			return sim(cfg, benchmark, instructions, seed), nil
		}
	}
	if e.simulate == nil {
		if opts.CheckpointEntries >= 0 {
			e.ckpts = newCheckpointStore(opts.CacheDir, opts.CheckpointEntries)
		}
		bound := opts.TraceCacheRecords
		if bound == 0 {
			bound = DefaultTraceCacheRecords
		}
		if bound > 0 {
			e.traces = trace.NewCache(bound)
			e.simulate = func(ctx context.Context, cfg config.Config, benchmark string, instructions int, seed uint64) (cpu.Result, error) {
				recs := e.traces.Records(benchmark, seed, instructions)
				return cpu.RunWithCheckpointsContext(ctx, cfg, benchmark,
					&cpu.SliceSource{Records: recs}, e.checkpoints(cfg, benchmark, seed))
			}
		} else {
			e.simulate = func(ctx context.Context, cfg config.Config, benchmark string, instructions int, seed uint64) (cpu.Result, error) {
				prof, ok := trace.Profiles[benchmark]
				if !ok {
					panic(fmt.Sprintf("engine: unknown benchmark %q", benchmark))
				}
				gen := trace.NewGenerator(prof, seed)
				return cpu.RunWithCheckpointsContext(ctx, cfg, benchmark,
					&cpu.GenSource{Gen: gen, N: instructions}, e.checkpoints(cfg, benchmark, seed))
			}
		}
	}
	return e
}

// Workers returns the engine's concurrent-simulation bound.
func (e *Engine) Workers() int { return cap(e.sem) }

// RemoteFunc is the remote-execution hook: given one simulation point, it
// may run the point elsewhere (handled=true and the result), decline so the
// engine runs it locally (handled=false, nil error), or fail the request
// (non-nil error — reserved for the caller's own context cancellation; a
// peer failure must decline, not error, so the cluster degrades to local
// execution instead of failing requests).
type RemoteFunc func(ctx context.Context, key Key, cfg config.Config, benchmark string, instructions int, seed uint64) (cpu.Result, bool, error)

// SetRemote installs (or, with nil, removes) the remote-execution hook.
// The hook is consulted on the job path after a disk miss and before a
// worker slot is acquired; results it returns are persisted to the disk
// store like locally simulated ones.
func (e *Engine) SetRemote(fn RemoteFunc) {
	if fn == nil {
		e.remote.Store(nil)
		return
	}
	e.remote.Store(&fn)
}

// localOnlyKey marks contexts that must not consult the remote hook.
type localOnlyKey struct{}

// WithLocalOnly returns a context under which the engine executes points
// locally even when a remote hook is installed. The cluster's internal
// point API runs handlers under it — the receiving node is the point's
// owner, and forwarding again could loop.
func WithLocalOnly(ctx context.Context) context.Context {
	return context.WithValue(ctx, localOnlyKey{}, true)
}

// isLocalOnly reports whether ctx carries the WithLocalOnly marker.
func isLocalOnly(ctx context.Context) bool {
	v, _ := ctx.Value(localOnlyKey{}).(bool)
	return v
}

// checkpoints returns the warmed-checkpoint view for one simulation point,
// scoped by memory-side digest so core-side config variants share entries.
// Nil when checkpointing is disabled.
func (e *Engine) checkpoints(cfg config.Config, benchmark string, seed uint64) cpu.Checkpoints {
	if e.ckpts == nil {
		return nil
	}
	return e.ckpts.scoped(MemSideDigest(cfg), benchmark, seed)
}

// store inserts a result into the in-memory cache, evicting the oldest
// entries past the bound. Caller holds e.mu.
func (e *Engine) store(key Key, res cpu.Result) {
	if _, ok := e.cache[key]; !ok {
		e.order = append(e.order, key)
	}
	e.cache[key] = res
	if e.maxEntries <= 0 {
		return
	}
	for len(e.cache) > e.maxEntries {
		oldest := e.order[0]
		e.order = e.order[1:]
		delete(e.cache, oldest)
	}
}

// Run returns the result of one simulation point, computing it at most
// once per key across all concurrent callers.
func (e *Engine) Run(cfg config.Config, benchmark string, instructions int, seed uint64) cpu.Result {
	res, _ := e.RunTracked(cfg, benchmark, instructions, seed)
	return res
}

// RunTracked is Run plus the source the result was served from. It is the
// legacy non-cancellable entry point: simulator panics (contained as
// structured errors on the context path) re-raise with their original
// panic value, preserving pre-context behavior for CLI callers.
func (e *Engine) RunTracked(cfg config.Config, benchmark string, instructions int, seed uint64) (cpu.Result, Source) {
	res, src, err := e.RunContext(context.Background(), cfg, benchmark, instructions, seed)
	if err != nil {
		var pe *SimPanicError
		if errors.As(err, &pe) {
			panic(pe.Value)
		}
		// Unreachable: a Background context is never cancelled.
		panic(err)
	}
	return res, src
}

// RunContext returns the result of one simulation point, computing it at
// most once per key across all concurrent callers. The work runs on a
// detached goroutine: ctx cancellation detaches this caller immediately,
// and the underlying simulation is only cancelled once every caller
// interested in the key has gone away — a cancelled waiter on a deduped
// job never cancels or poisons the result for the others. A simulation
// panic is returned as *SimPanicError to every caller and the key is
// quarantined: subsequent calls fail fast without re-running it.
func (e *Engine) RunContext(ctx context.Context, cfg config.Config, benchmark string, instructions int, seed uint64) (cpu.Result, Source, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	key := KeyFor(cfg, benchmark, instructions, seed)
	for {
		if err := ctx.Err(); err != nil {
			return cpu.Result{}, "", err
		}
		e.mu.Lock()
		if res, ok := e.cache[key]; ok {
			e.stats.Hits++
			e.mu.Unlock()
			return res, SourceMemory, nil
		}
		if err, ok := e.poisoned[key]; ok {
			e.mu.Unlock()
			return cpu.Result{}, "", err
		}
		if c, ok := e.inflight[key]; ok {
			e.stats.Dedup++
			c.waiters++
			e.mu.Unlock()
			res, src, err := e.wait(ctx, c, SourceInflight)
			if err != nil && ctx.Err() == nil && isCancellation(err) {
				// The flight died of its own cancellation: its other
				// waiters all left in the window before we joined. Our
				// context is still live, so run the point again.
				continue
			}
			return res, src, err
		}
		c := &call{done: make(chan struct{}), waiters: 1}
		// The job's context is detached from the initiating caller's: it
		// is cancelled by the last waiter leaving, not by any one
		// caller's disconnect.
		jobCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
		c.cancel = cancel
		e.inflight[key] = c
		e.mu.Unlock()
		go e.runJob(jobCtx, c, key, cfg, benchmark, instructions, seed)
		return e.wait(ctx, c, "")
	}
}

// wait blocks until the call completes or ctx is cancelled. Abandoning
// decrements the call's waiter count; the last waiter out cancels the job.
// joinedSrc, when non-empty, overrides the served source (deduplicated
// joiners report SourceInflight regardless of where the job's result came
// from).
func (e *Engine) wait(ctx context.Context, c *call, joinedSrc Source) (cpu.Result, Source, error) {
	select {
	case <-c.done:
	case <-ctx.Done():
		e.mu.Lock()
		c.waiters--
		abandoned := c.waiters == 0
		e.mu.Unlock()
		if abandoned {
			c.cancel()
		}
		return cpu.Result{}, "", ctx.Err()
	}
	if c.err != nil {
		return cpu.Result{}, "", c.err
	}
	if joinedSrc != "" {
		return c.res, joinedSrc, nil
	}
	return c.res, c.src, nil
}

// runJob owns the key until c.done closes: it executes the point under the
// job context, publishes the outcome, and updates the caches and counters.
// Runs on its own goroutine.
func (e *Engine) runJob(ctx context.Context, c *call, key Key, cfg config.Config, benchmark string, instructions int, seed uint64) {
	defer c.cancel()
	res, src, err := e.execute(ctx, key, cfg, benchmark, instructions, seed)
	e.mu.Lock()
	delete(e.inflight, key)
	switch {
	case err == nil:
		e.store(key, res)
		switch src {
		case SourceDisk:
			e.stats.DiskHits++
		case SourceRemote:
			e.stats.Remote++
		default:
			e.stats.Simulations++
		}
	case isCancellation(err):
		e.stats.Cancelled++
	default:
		e.stats.Panics++
		e.stats.Quarantined++
		e.poison(key, err)
	}
	c.res, c.src, c.err = res, src, err
	e.mu.Unlock()
	close(c.done)
}

// execute resolves one point: disk store first, then a worker slot and the
// simulator. The slot acquisition honors cancellation, so abandoned jobs
// never consume simulation capacity.
func (e *Engine) execute(ctx context.Context, key Key, cfg config.Config, benchmark string, instructions int, seed uint64) (cpu.Result, Source, error) {
	if res, ok := e.loadDisk(key); ok {
		return res, SourceDisk, nil
	}
	if fn := e.remote.Load(); fn != nil && !isLocalOnly(ctx) {
		res, handled, err := (*fn)(ctx, key, cfg, benchmark, instructions, seed)
		if err != nil {
			return cpu.Result{}, "", err
		}
		if handled {
			e.saveDisk(key, res)
			return res, SourceRemote, nil
		}
	}
	e.queued.Add(1)
	select {
	case e.sem <- struct{}{}:
		e.queued.Add(-1)
	case <-ctx.Done():
		e.queued.Add(-1)
		return cpu.Result{}, "", ctx.Err()
	}
	e.running.Add(1)
	defer func() {
		e.running.Add(-1)
		<-e.sem
	}()
	if faultinject.SimLatency.Fire() {
		t := time.NewTimer(faultinject.Latency())
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return cpu.Result{}, "", ctx.Err()
		}
	}
	res, err := e.invoke(ctx, key, cfg, benchmark, instructions, seed)
	if err != nil {
		return cpu.Result{}, "", err
	}
	e.saveDisk(key, res)
	return res, SourceSimulated, nil
}

// invoke runs the simulator with panic containment: a panicking point
// (model bug, injected fault) becomes a *SimPanicError instead of
// unwinding the worker goroutine and killing the process.
func (e *Engine) invoke(ctx context.Context, key Key, cfg config.Config, benchmark string, instructions int, seed uint64) (res cpu.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &SimPanicError{Key: key, Value: r}
		}
	}()
	if faultinject.SimPanic.Fire() {
		panic("faultinject: injected simulation panic")
	}
	return e.simulate(ctx, cfg, benchmark, instructions, seed)
}

// isCancellation reports whether err is a context cancellation or deadline
// rather than a simulation failure.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// poison quarantines a key whose simulation panicked, evicting the oldest
// poisoned key past the bound. Caller holds e.mu.
func (e *Engine) poison(key Key, err error) {
	if _, ok := e.poisoned[key]; !ok {
		e.poisonOrder = append(e.poisonOrder, key)
	}
	e.poisoned[key] = err
	if e.maxPoisoned <= 0 {
		return
	}
	for len(e.poisoned) > e.maxPoisoned {
		oldest := e.poisonOrder[0]
		e.poisonOrder = e.poisonOrder[1:]
		delete(e.poisoned, oldest)
	}
}

// ForgetPoisoned lifts a key's quarantine so the next request re-runs it —
// the escape hatch retry logic needs when a panic was transient (an
// injected fault, a since-fixed environmental problem). Reports whether
// the key was quarantined.
func (e *Engine) ForgetPoisoned(key Key) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.poisoned[key]; !ok {
		return false
	}
	delete(e.poisoned, key)
	for i, k := range e.poisonOrder {
		if k == key {
			e.poisonOrder = append(e.poisonOrder[:i], e.poisonOrder[i+1:]...)
			break
		}
	}
	return true
}

// PruneCorrupt removes .corrupt quarantine files under the cache dir older
// than maxAge (0 keeps everything), returning how many were removed. The
// files exist for post-mortems; a retention sweep at startup keeps them
// from accumulating forever.
func (e *Engine) PruneCorrupt(maxAge time.Duration) int {
	if e.cacheDir == "" || maxAge <= 0 {
		return 0
	}
	cutoff := time.Now().Add(-maxAge)
	pruned := 0
	filepath.WalkDir(e.cacheDir, func(path string, d os.DirEntry, err error) error { //nolint:errcheck // best-effort sweep
		if err != nil || d.IsDir() || filepath.Ext(path) != ".corrupt" {
			return nil
		}
		info, err := d.Info()
		if err != nil || info.ModTime().After(cutoff) {
			return nil
		}
		if os.Remove(path) == nil {
			pruned++
		}
		return nil
	})
	e.corruptPruned.Add(uint64(pruned))
	return pruned
}

// Cached returns the cached result for a key, if present in memory.
func (e *Engine) Cached(key Key) (cpu.Result, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	res, ok := e.cache[key]
	return res, ok
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	s := e.stats
	s.Entries = len(e.cache)
	s.PoisonedKeys = len(e.poisoned)
	e.mu.Unlock()
	s.CorruptPruned = e.corruptPruned.Load()
	s.QueueDepth = int(e.queued.Load())
	s.Running = int(e.running.Load())
	if e.traces != nil {
		ts := e.traces.Stats()
		s.TraceHits = ts.Hits
		s.TraceMisses = ts.Misses
		s.TraceRecords = ts.Records
	}
	if e.ckpts != nil {
		s.CheckpointHits = e.ckpts.hits.Load()
		s.CheckpointMisses = e.ckpts.misses.Load()
		s.CheckpointBytesRead = e.ckpts.bytesRead.Load()
		s.CheckpointBytesWritten = e.ckpts.bytesWritten.Load()
		s.Quarantined += e.ckpts.quarantined.Load()
	}
	s.Quarantined += e.filesQuarantined.Load()
	return s
}

// DefaultInstructions is the instruction count used when a campaign spec
// or service request leaves it unset. Shared so the server's limit checks
// and the campaign's normalization can never disagree on the effective
// value.
const DefaultInstructions = 300000

// DiskFormatVersion stamps persisted results with both the cpu.Result
// schema and the simulator's observable semantics. Bump it whenever either
// changes (a timing-model fix, an energy-parameter change, a Result field
// rename): entries written under another version are treated as misses, so
// a stale cache can never silently stand in for fresh results.
const DiskFormatVersion = 1

// diskEntry is the on-disk representation of one cached result.
type diskEntry struct {
	Version int        `json:"version"`
	Key     Key        `json:"key"`
	Result  cpu.Result `json:"result"`
}

// diskPath returns the sharded path of a key's disk entry. The version
// directory keeps incompatible generations side by side, so a rollback
// finds its old entries intact.
func (e *Engine) diskPath(key Key) string {
	return filepath.Join(e.cacheDir, fmt.Sprintf("v%d", DiskFormatVersion), key.shard(), key.filename())
}

// loadDisk fetches a persisted result. A read failure (including an
// injected one) is a plain miss: the store is a cache, never a source of
// truth. A file that reads fine but fails to decode or validate is
// corrupt: it is quarantined aside with a .corrupt rename and counted, so
// a damaged entry is never re-parsed hot on every subsequent lookup.
func (e *Engine) loadDisk(key Key) (cpu.Result, bool) {
	if e.cacheDir == "" {
		return cpu.Result{}, false
	}
	path := e.diskPath(key)
	if faultinject.DiskRead.Fire() {
		return cpu.Result{}, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return cpu.Result{}, false
	}
	faultinject.DiskCorrupt.CorruptBytes(data)
	var ent diskEntry
	if err := json.Unmarshal(data, &ent); err != nil || ent.Version != DiskFormatVersion || ent.Key != key {
		if quarantineCorrupt(path) {
			e.filesQuarantined.Add(1)
		}
		return cpu.Result{}, false
	}
	return ent.Result, true
}

// quarantineCorrupt moves a damaged store entry aside so it is read (and
// fails) exactly once; the .corrupt sibling is kept for post-mortems.
// Reports whether the rename succeeded.
func quarantineCorrupt(path string) bool {
	return os.Rename(path, path+".corrupt") == nil
}

// saveDisk persists a result, writing to a temp file and renaming so a
// concurrent reader never observes a partial entry. Persistence is best
// effort: on any error the entry is simply not stored.
func (e *Engine) saveDisk(key Key, res cpu.Result) {
	if e.cacheDir == "" {
		return
	}
	if faultinject.DiskWrite.Fire() {
		return
	}
	dir := filepath.Dir(e.diskPath(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	data, err := json.Marshal(diskEntry{Version: DiskFormatVersion, Key: key, Result: res})
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, key.filename()+".tmp*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), e.diskPath(key)); err != nil {
		os.Remove(tmp.Name())
	}
}
