package engine

import (
	"bytes"
	"encoding/json"
	"testing"

	"malec/internal/config"
	"malec/internal/cpu"
)

// ckTestSchedule is a scaled-down sampling schedule for engine tests:
// three 20k-instruction windows over a 60k-instruction run.
func ckTestSchedule() *config.Sampling {
	return &config.Sampling{Warmup: 200, Detail: 800, Interval: 20000}
}

// TestCheckpointReuseAcrossCoreConfigs pins the point of the warmed
// checkpoint store: two configurations that differ only core-side share a
// memory-side digest, so the second sampled run restores every snapshot the
// first one saved — and the restore must not change its estimate.
func TestCheckpointReuseAcrossCoreConfigs(t *testing.T) {
	t.Setenv("MALEC_NO_SAMPLING", "")
	const instructions = 60000
	sch := ckTestSchedule()

	cold := config.MALEC()
	cold.Sampling = sch
	warm := config.MALEC()
	warm.Name = "MALEC_rob128"
	warm.ROB = 128 // core-side: same memory-side digest
	warm.Sampling = sch

	if MemSideDigest(cold) != MemSideDigest(warm) {
		t.Fatal("core-side ROB change altered the memory-side digest")
	}
	if KeyFor(cold, "gzip", instructions, 1) == KeyFor(warm, "gzip", instructions, 1) {
		t.Fatal("distinct core-side configs share a result key")
	}

	e := New(Options{Workers: 1})
	first := e.Run(cold, "gzip", instructions, 1)
	if first.Sampling == nil {
		t.Fatal("sampled path did not engage through the engine")
	}
	if first.Sampling.CheckpointHits != 0 || e.Stats().CheckpointMisses == 0 {
		t.Fatalf("first run should miss every checkpoint, got %d hits", first.Sampling.CheckpointHits)
	}
	second := e.Run(warm, "gzip", instructions, 1)
	if second.Sampling == nil {
		t.Fatal("second sampled run did not engage")
	}
	if second.Sampling.CheckpointHits < 1 {
		t.Fatalf("second run restored no checkpoints (want >= 1, windows=%d)", second.Sampling.Windows)
	}
	if st := e.Stats(); st.CheckpointHits < 1 {
		t.Fatalf("engine stats report no checkpoint hits: %+v", st)
	}

	// Restoring must be semantically invisible: the checkpointed run of the
	// warm config equals its checkpoint-free reference run in everything
	// but the reuse telemetry.
	ref := cpu.RunBenchmark(warm, "gzip", instructions, 1)
	if second.Cycles != ref.Cycles || second.Energy != ref.Energy ||
		second.Instructions != ref.Instructions || second.Loads != ref.Loads ||
		second.Stores != ref.Stores || second.L1 != ref.L1 || second.TLB != ref.TLB {
		t.Fatalf("checkpoint restore changed the estimate: cycles %d vs %d",
			second.Cycles, ref.Cycles)
	}
	gotCtr, err := json.Marshal(second.Counters)
	if err != nil {
		t.Fatal(err)
	}
	wantCtr, err := json.Marshal(ref.Counters)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCtr, wantCtr) {
		t.Fatalf("checkpoint restore changed the counters:\n%s\nvs\n%s", gotCtr, wantCtr)
	}
}

// TestCheckpointDiskPersistence checks the two-level store: snapshots
// written by one engine are read back by a fresh engine over the same cache
// directory, with byte traffic visible in the stats.
func TestCheckpointDiskPersistence(t *testing.T) {
	t.Setenv("MALEC_NO_SAMPLING", "")
	const instructions = 60000
	dir := t.TempDir()
	sch := ckTestSchedule()

	first := config.MALEC()
	first.Sampling = sch
	e1 := New(Options{CacheDir: dir, Workers: 1})
	e1.Run(first, "gzip", instructions, 1)
	if st := e1.Stats(); st.CheckpointBytesWritten == 0 {
		t.Fatalf("no checkpoint bytes written to disk: %+v", st)
	}

	// A different core-side config on a fresh engine: the result cache
	// misses (different key), the checkpoint store hits from disk.
	second := config.MALEC()
	second.Name = "MALEC_rob128"
	second.ROB = 128
	second.Sampling = sch
	e2 := New(Options{CacheDir: dir, Workers: 1})
	res, src := e2.RunTracked(second, "gzip", instructions, 1)
	if src != SourceSimulated {
		t.Fatalf("second config served from %s, want simulated", src)
	}
	if res.Sampling == nil || res.Sampling.CheckpointHits < 1 {
		t.Fatalf("fresh engine restored no checkpoints from disk: %+v", res.Sampling)
	}
	if st := e2.Stats(); st.CheckpointBytesRead == 0 {
		t.Fatalf("disk restore reported no bytes read: %+v", st)
	}
}

// TestCheckpointEntriesDisables checks the negative-bound escape hatch: no
// store is constructed, so sampled runs neither save nor restore.
func TestCheckpointEntriesDisables(t *testing.T) {
	t.Setenv("MALEC_NO_SAMPLING", "")
	cfg := config.MALEC()
	cfg.Sampling = ckTestSchedule()
	e := New(Options{Workers: 1, CheckpointEntries: -1})
	res := e.Run(cfg, "gzip", 60000, 1)
	if res.Sampling == nil {
		t.Fatal("sampled path did not engage")
	}
	if res.Sampling.CheckpointHits != 0 || res.Sampling.CheckpointMisses != res.Sampling.Windows {
		t.Fatalf("disabled store still hit checkpoints: %+v", res.Sampling)
	}
	st := e.Stats()
	if st.CheckpointHits != 0 || st.CheckpointMisses != 0 ||
		st.CheckpointBytesRead != 0 || st.CheckpointBytesWritten != 0 {
		t.Fatalf("disabled store reported traffic: %+v", st)
	}
}
