package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"malec/internal/config"
	"malec/internal/cpu"
	"malec/internal/faultinject"
)

// durableSpec is the small grid shared by the durable-campaign tests:
// 2 configs x 3 benchmarks x 2 seeds = 12 points.
func durableSpec() CampaignSpec {
	return CampaignSpec{
		Configs:      []config.Config{config.MALEC(), config.MALECNoMerge()},
		Benchmarks:   []string{"gzip", "mcf", "art"},
		Instructions: 1000,
		Seeds:        []uint64{1, 2},
		Workers:      2,
	}
}

// waitCampaign polls a run until it reaches a terminal state.
func waitCampaign(t *testing.T, run *CampaignRun) CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := run.Status(); st.State != CampaignRunning {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("campaign %s did not finish: %+v", run.ID(), run.Status())
	return CampaignStatus{}
}

// exportBytes materializes a campaign's JSON and CSV artifacts.
func exportBytes(t *testing.T, run *CampaignRun) (jsonOut, csvOut []byte) {
	t.Helper()
	camp, err := run.Export(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	jsonOut, err = camp.JSON()
	if err != nil {
		t.Fatal(err)
	}
	csvOut, err = camp.CSV()
	if err != nil {
		t.Fatal(err)
	}
	return jsonOut, csvOut
}

// TestCrashResumeDeterminism is the durability acceptance test: a campaign
// killed at random progress and resumed by a fresh process must export the
// exact bytes an uninterrupted run exports, without re-simulating any
// point its journal recorded.
func TestCrashResumeDeterminism(t *testing.T) {
	spec := durableSpec()
	total := len(spec.Configs) * len(spec.Benchmarks) * len(spec.Seeds)

	// Reference: an uninterrupted run on its own store.
	refDir := t.TempDir()
	refEng := New(Options{Workers: 2, CacheDir: refDir, Simulate: stubResult})
	refMgr := NewCampaignManager(refEng, CampaignManagerOptions{Dir: filepath.Join(refDir, "campaigns")})
	refRun, err := refMgr.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitCampaign(t, refRun); st.State != CampaignDone || st.Completed != total {
		t.Fatalf("reference run: %+v", st)
	}
	wantJSON, wantCSV := exportBytes(t, refRun)

	// Victim process: same spec on a second store, killed mid-campaign.
	// Cancellation without a completion marker is exactly what kill -9
	// leaves behind (modulo the torn tail, covered separately): a
	// journal of completed points and no done marker. A gate throttles
	// the simulator so the campaign is reliably mid-flight when cancelled.
	// Capacity far above every token ever pushed, so releasing the
	// stragglers below can never block on a full buffer.
	crashDir := t.TempDir()
	gate := make(chan struct{}, 4*total)
	for i := 0; i < 5; i++ {
		gate <- struct{}{} // let roughly the first 5 points through
	}
	victimEng := New(Options{Workers: 2, CacheDir: crashDir,
		Simulate: func(cfg config.Config, b string, n int, s uint64) cpu.Result {
			<-gate
			return stubResult(cfg, b, n, s)
		}})
	victimMgr := NewCampaignManager(victimEng, CampaignManagerOptions{Dir: filepath.Join(crashDir, "campaigns")})
	victimRun, err := victimMgr.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	for victimRun.Status().Completed < 3 {
		time.Sleep(time.Millisecond)
	}
	victimMgr.Cancel(victimRun.ID())
	for i := 0; i < total; i++ {
		gate <- struct{}{} // release the in-flight stragglers
	}
	st := waitCampaign(t, victimRun)
	if st.State != CampaignCancelled {
		t.Fatalf("victim run state %s, want cancelled", st.State)
	}
	killedAt := victimRun.Status().Completed
	if killedAt == 0 || killedAt == total {
		t.Fatalf("campaign killed at %d/%d points; the test needs a mid-flight kill", killedAt, total)
	}
	if _, err := os.Stat(filepath.Join(crashDir, "campaigns", victimRun.ID(), doneName)); !os.IsNotExist(err) {
		t.Fatalf("interrupted campaign has a done marker (stat err %v)", err)
	}

	// Restart: a fresh engine and manager over the same store — a new
	// process. Replay must re-admit the campaign, resume the remainder,
	// and never recompute a journaled point.
	resumeEng := New(Options{Workers: 2, CacheDir: crashDir, Simulate: stubResult})
	resumeMgr := NewCampaignManager(resumeEng, CampaignManagerOptions{Dir: filepath.Join(crashDir, "campaigns")})
	completed, resumed, err := resumeMgr.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if completed != 0 || resumed != 1 {
		t.Fatalf("replay: completed=%d resumed=%d, want 0/1", completed, resumed)
	}
	resumeRun, ok := resumeMgr.Get(victimRun.ID())
	if !ok {
		t.Fatalf("campaign %s not re-admitted", victimRun.ID())
	}
	final := waitCampaign(t, resumeRun)
	if final.State != CampaignDone || final.Completed != total || final.Failed != 0 {
		t.Fatalf("resumed run: %+v", final)
	}
	if final.Replayed != killedAt {
		t.Fatalf("replayed %d points, journal recorded %d", final.Replayed, killedAt)
	}

	gotJSON, gotCSV := exportBytes(t, resumeRun)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("resumed JSON export differs from uninterrupted run:\n got: %s\nwant: %s", gotJSON, wantJSON)
	}
	if !bytes.Equal(gotCSV, wantCSV) {
		t.Errorf("resumed CSV export differs from uninterrupted run:\n got: %s\nwant: %s", gotCSV, wantCSV)
	}

	// Zero recomputation: the resumed engine never re-simulates a
	// journaled point. (It may simulate even fewer than total-killedAt: a
	// point can persist its result and then be cancelled before its
	// journal append, in which case resume serves it as a disk hit.)
	stats := resumeEng.Stats()
	if got, max := stats.Simulations, uint64(total-killedAt); got > max {
		t.Errorf("resumed engine ran %d simulations, want <= %d (journaled points must not re-simulate)", got, max)
	}
	if stats.DiskHits < uint64(killedAt) {
		t.Errorf("resumed engine disk hits %d < %d journaled points", stats.DiskHits, killedAt)
	}
}

// TestReplayCompletedCampaignServesExport covers the done-marker path: a
// finished campaign replayed by a fresh process keeps serving its export
// without running anything.
func TestReplayCompletedCampaignServesExport(t *testing.T) {
	dir := t.TempDir()
	spec := durableSpec()
	eng := New(Options{Workers: 2, CacheDir: dir, Simulate: stubResult})
	mgr := NewCampaignManager(eng, CampaignManagerOptions{Dir: filepath.Join(dir, "campaigns")})
	run, err := mgr.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitCampaign(t, run)
	wantJSON, _ := exportBytes(t, run)

	eng2 := New(Options{Workers: 2, CacheDir: dir, Simulate: stubResult})
	mgr2 := NewCampaignManager(eng2, CampaignManagerOptions{Dir: filepath.Join(dir, "campaigns")})
	completed, resumed, err := mgr2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if completed != 1 || resumed != 0 {
		t.Fatalf("replay: completed=%d resumed=%d, want 1/0", completed, resumed)
	}
	run2, _ := mgr2.Get(run.ID())
	gotJSON, _ := exportBytes(t, run2)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("replayed export differs from original")
	}
	if sims := eng2.Stats().Simulations; sims != 0 {
		t.Errorf("replayed-complete campaign ran %d simulations, want 0", sims)
	}
}

// TestCampaignRetryDegradesToPartial covers bounded retry: a point whose
// panics outlast its retries fails alone; a transient panic retries away.
func TestCampaignRetryDegradesToPartial(t *testing.T) {
	spec := durableSpec()
	total := len(spec.Configs) * len(spec.Benchmarks) * len(spec.Seeds)
	var mu sync.Mutex
	panicsLeft := map[string]int{
		"gzip/1": 2,  // transient: retries absorb it
		"mcf/2":  99, // permanent: exhausts any retry bound
	}
	sim := func(cfg config.Config, b string, n int, s uint64) cpu.Result {
		k := fmt.Sprintf("%s/%d", b, s)
		mu.Lock()
		left := panicsLeft[k]
		if left > 0 {
			panicsLeft[k] = left - 1
		}
		mu.Unlock()
		if left > 0 {
			panic("injected transient fault")
		}
		return stubResult(cfg, b, n, s)
	}
	eng := New(Options{Workers: 2, Simulate: sim})
	mgr := NewCampaignManager(eng, CampaignManagerOptions{DefaultRetries: 3})
	run, err := mgr.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitCampaign(t, run)
	if st.State != CampaignDone {
		t.Fatalf("state %s, want done (partial-with-errors still completes)", st.State)
	}
	// The permanent panicker hits 2 points (both configs of mcf seed 2).
	if st.Failed != 2 || st.Completed != total-2 {
		t.Fatalf("completed=%d failed=%d, want %d/2", st.Completed, st.Failed, total-2)
	}
	if st.Retries == 0 {
		t.Fatal("no retries recorded despite injected transient panics")
	}
	camp, err := run.Export(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var errRows int
	for _, jr := range camp.Results {
		if jr.Error != "" {
			errRows++
		}
	}
	if errRows != 2 {
		t.Fatalf("export carries %d error rows, want 2", errRows)
	}
	if ms := mgr.Stats(); ms.FailedPoints != 2 || ms.Retries == 0 {
		t.Fatalf("manager stats: %+v", ms)
	}
}

// TestRunCampaignContextRetries covers the synchronous path: Retries turns
// a transient panic into a success, and an exhausted bound surfaces as
// PanicError.
func TestRunCampaignContextRetries(t *testing.T) {
	var mu sync.Mutex
	left := 2
	sim := func(cfg config.Config, b string, n int, s uint64) cpu.Result {
		mu.Lock()
		defer mu.Unlock()
		if left > 0 {
			left--
			panic("transient")
		}
		return stubResult(cfg, b, n, s)
	}
	eng := New(Options{Workers: 1, Simulate: sim})
	spec := CampaignSpec{
		Configs:      []config.Config{config.MALEC()},
		Benchmarks:   []string{"gzip"},
		Instructions: 1000,
		Retries:      3,
	}
	camp, err := eng.RunCampaign(spec)
	if err != nil {
		t.Fatalf("retries did not absorb the transient panic: %v", err)
	}
	if len(camp.Results) != 1 || camp.Results[0].Result.Cycles == 0 {
		t.Fatalf("campaign results: %+v", camp.Results)
	}

	mu.Lock()
	left = 99
	mu.Unlock()
	eng2 := New(Options{Workers: 1, Simulate: sim})
	spec.Retries = 1
	_, err = eng2.RunCampaign(spec)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("exhausted retries returned %v, want PanicError", err)
	}
}

// TestCampaignSurvivesJournalFaults arms the journal failpoints hard —
// most appends dropped or torn — and checks the durability contract still
// holds: the journal is advisory for streaming, the content-addressed
// store is the source of truth, so a fresh process replays the campaign
// and exports identical bytes without re-simulating anything.
func TestCampaignSurvivesJournalFaults(t *testing.T) {
	faultinject.JournalWrite.Arm(0.5)
	faultinject.JournalTorn.Arm(0.5)
	t.Cleanup(func() {
		faultinject.JournalWrite.Disarm()
		faultinject.JournalTorn.Disarm()
	})

	dir := t.TempDir()
	spec := durableSpec()
	eng := New(Options{Workers: 2, CacheDir: dir, Simulate: stubResult})
	mgr := NewCampaignManager(eng, CampaignManagerOptions{Dir: filepath.Join(dir, "campaigns")})
	run, err := mgr.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitCampaign(t, run); st.State != CampaignDone {
		t.Fatalf("faulted campaign state %s, want done (journal faults must not fail points)", st.State)
	}
	if faultinject.JournalWrite.Fires()+faultinject.JournalTorn.Fires() == 0 {
		t.Fatal("failpoints armed but never fired; test exercised nothing")
	}
	wantJSON, wantCSV := exportBytes(t, run)

	faultinject.JournalWrite.Disarm()
	faultinject.JournalTorn.Disarm()
	eng2 := New(Options{Workers: 2, CacheDir: dir, Simulate: stubResult})
	mgr2 := NewCampaignManager(eng2, CampaignManagerOptions{Dir: filepath.Join(dir, "campaigns")})
	completed, resumed, err := mgr2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if completed != 1 || resumed != 0 {
		t.Fatalf("replay: completed=%d resumed=%d, want 1/0 (done marker survived)", completed, resumed)
	}
	run2, _ := mgr2.Get(run.ID())
	// The replayed record log may be shorter than the campaign (dropped and
	// torn appends), but the cursors it does expose stay dense.
	recs, _, _ := run2.RecordsAfter(0)
	for i, rec := range recs {
		if rec.Seq != uint64(i)+1 {
			t.Fatalf("replayed record %d has seq %d; faulted journals must renumber densely", i, rec.Seq)
		}
	}
	gotJSON, gotCSV := exportBytes(t, run2)
	if !bytes.Equal(gotJSON, wantJSON) || !bytes.Equal(gotCSV, wantCSV) {
		t.Error("export after journal faults + replay differs from the original")
	}
	if sims := eng2.Stats().Simulations; sims != 0 {
		t.Errorf("replay after journal faults ran %d simulations, want 0 (results come from the store)", sims)
	}
}

func TestPoisonedMapBounded(t *testing.T) {
	eng := New(Options{Workers: 1, MaxPoisonedKeys: 2,
		Simulate: func(cfg config.Config, b string, n int, s uint64) cpu.Result {
			panic("always")
		}})
	cfg := config.MALEC()
	for seed := uint64(1); seed <= 4; seed++ {
		_, _, err := eng.RunContext(context.Background(), cfg, "gzip", 1000, seed)
		var pe *SimPanicError
		if !errors.As(err, &pe) {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	st := eng.Stats()
	if st.PoisonedKeys != 2 {
		t.Fatalf("poisoned map holds %d keys, want FIFO bound 2", st.PoisonedKeys)
	}
	if st.Panics != 4 {
		t.Fatalf("panics %d, want 4", st.Panics)
	}
	// The two oldest keys were evicted, so they are re-runnable (and
	// re-panic); the newest is still quarantined and fails fast.
	newest := KeyFor(cfg, "gzip", 1000, 4)
	if !eng.ForgetPoisoned(newest) {
		t.Fatal("newest key not quarantined")
	}
	if eng.ForgetPoisoned(newest) {
		t.Fatal("ForgetPoisoned reported a forgotten key as quarantined")
	}
	if eng.Stats().PoisonedKeys != 1 {
		t.Fatalf("poisoned map holds %d keys after forget, want 1", eng.Stats().PoisonedKeys)
	}
}

func TestPruneCorrupt(t *testing.T) {
	dir := t.TempDir()
	eng := New(Options{CacheDir: dir, Simulate: stubResult})
	shard := filepath.Join(dir, "v1", "ab")
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	old := filepath.Join(shard, "stale.json.corrupt")
	fresh := filepath.Join(shard, "fresh.json.corrupt")
	live := filepath.Join(shard, "live.json")
	for _, p := range []string{old, fresh, live} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	stale := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(old, stale, stale); err != nil {
		t.Fatal(err)
	}

	if n := eng.PruneCorrupt(24 * time.Hour); n != 1 {
		t.Fatalf("pruned %d files, want 1", n)
	}
	if _, err := os.Stat(old); !os.IsNotExist(err) {
		t.Error("stale .corrupt file survived the sweep")
	}
	for _, p := range []string{fresh, live} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("%s removed by the sweep: %v", p, err)
		}
	}
	if got := eng.Stats().CorruptPruned; got != 1 {
		t.Fatalf("CorruptPruned = %d, want 1", got)
	}
	if n := eng.PruneCorrupt(0); n != 0 {
		t.Fatalf("retention 0 pruned %d files, want none", n)
	}
}
