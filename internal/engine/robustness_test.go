package engine

// Robustness-substrate tests: cancellation propagation through the
// scheduler, singleflight isolation of cancelled waiters, panic
// quarantine, and corrupt-store quarantine.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"malec/internal/config"
	"malec/internal/cpu"
	"malec/internal/faultinject"
)

// blockingSim returns a SimulateContext stub that signals when entered and
// then blocks until its context is cancelled or release is closed.
func blockingSim(entered chan<- struct{}, release <-chan struct{}, calls *atomic.Int64) SimulateContextFunc {
	return func(ctx context.Context, cfg config.Config, b string, n int, s uint64) (cpu.Result, error) {
		calls.Add(1)
		entered <- struct{}{}
		select {
		case <-ctx.Done():
			return cpu.Result{}, ctx.Err()
		case <-release:
			return stubResult(cfg, b, n, s), nil
		}
	}
}

func TestCancelledWaiterDoesNotPoisonResult(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var calls atomic.Int64
	e := New(Options{Workers: 1, SimulateContext: blockingSim(entered, release, &calls)})
	cfg := config.MALEC()

	type out struct {
		res cpu.Result
		src Source
		err error
	}
	leaderDone := make(chan out, 1)
	go func() {
		res, src, err := e.RunContext(context.Background(), cfg, "gzip", 1000, 1)
		leaderDone <- out{res, src, err}
	}()
	<-entered

	// A second caller joins the in-flight job, then disconnects.
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterDone := make(chan out, 1)
	go func() {
		res, src, err := e.RunContext(waiterCtx, cfg, "gzip", 1000, 1)
		waiterDone <- out{res, src, err}
	}()
	for e.Stats().Dedup == 0 {
		runtime.Gosched()
	}
	cancelWaiter()
	w := <-waiterDone
	if !errors.Is(w.err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v, want context.Canceled", w.err)
	}

	// The surviving caller still gets the real result: the waiter's
	// cancellation neither cancelled nor poisoned the shared job.
	close(release)
	l := <-leaderDone
	if l.err != nil {
		t.Fatalf("surviving caller err = %v after waiter cancel", l.err)
	}
	if l.res.Cycles == 0 || l.src != SourceSimulated {
		t.Fatalf("surviving caller got %+v from %q, want simulated stub result", l.res, l.src)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("simulate ran %d times, want 1", n)
	}
}

func TestLastWaiterCancelStopsSimulation(t *testing.T) {
	entered := make(chan struct{}, 1)
	var calls atomic.Int64
	e := New(Options{Workers: 1, SimulateContext: blockingSim(entered, nil, &calls)})
	cfg := config.MALEC()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := e.RunContext(ctx, cfg, "gzip", 1000, 1)
		done <- err
	}()
	<-entered
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// The detached job observes the cancellation: Cancelled moves and the
	// key leaves the in-flight table, so a later caller re-runs it.
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Cancelled == 0 {
		if time.Now().After(deadline) {
			t.Fatal("Stats().Cancelled never moved after last-waiter cancel")
		}
		runtime.Gosched()
	}
	if _, ok := e.Cached(KeyFor(cfg, "gzip", 1000, 1)); ok {
		t.Fatal("cancelled simulation left a cached result")
	}
}

func TestAlreadyCancelledContextShortCircuits(t *testing.T) {
	var calls atomic.Int64
	e := New(Options{Simulate: func(cfg config.Config, b string, n int, s uint64) cpu.Result {
		calls.Add(1)
		return stubResult(cfg, b, n, s)
	}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := e.RunContext(ctx, config.MALEC(), "gzip", 1000, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Fatal("simulate ran under an already-cancelled context")
	}
}

func TestPanicQuarantinesKey(t *testing.T) {
	var calls atomic.Int64
	e := New(Options{Simulate: func(cfg config.Config, b string, n int, s uint64) cpu.Result {
		calls.Add(1)
		panic("simulator exploded")
	}})
	cfg := config.MALEC()

	_, _, err := e.RunContext(context.Background(), cfg, "mcf", 1000, 1)
	var pe *SimPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *SimPanicError", err)
	}
	if pe.Value != "simulator exploded" {
		t.Fatalf("panic value = %v", pe.Value)
	}

	// Repeat calls fail fast with the same structured error and never
	// re-run the poisoned point: no re-panic storm.
	_, _, err2 := e.RunContext(context.Background(), cfg, "mcf", 1000, 1)
	if !errors.As(err2, &pe) {
		t.Fatalf("repeat err = %v, want *SimPanicError", err2)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("poisoned point ran %d times, want 1", n)
	}
	st := e.Stats()
	if st.Panics != 1 || st.Quarantined != 1 {
		t.Fatalf("stats = {Panics:%d Quarantined:%d}, want {1 1}", st.Panics, st.Quarantined)
	}
}

func TestCorruptDiskEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	sim := func(cfg config.Config, b string, n int, s uint64) cpu.Result {
		calls.Add(1)
		return stubResult(cfg, b, n, s)
	}
	cfg := config.Base1ldst()
	key := KeyFor(cfg, "gzip", 1000, 1)

	e := New(Options{CacheDir: dir, Simulate: sim})
	path := e.diskPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(`{"version":1,"key"`), 0o644); err != nil {
		t.Fatal(err)
	}

	// First lookup detects the corruption, quarantines the file aside and
	// re-simulates.
	if _, src := e.RunTracked(cfg, "gzip", 1000, 1); src != SourceSimulated {
		t.Fatalf("corrupt entry served as %v, want re-simulation", src)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt entry not quarantined aside: %v", err)
	}
	if st := e.Stats(); st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}

	// The slot now holds the freshly simulated entry; a cold engine over
	// the same directory reads it from disk — the damaged bytes are gone
	// for good, not re-parsed as a silent miss on every lookup.
	e2 := New(Options{CacheDir: dir, Simulate: sim})
	if _, src := e2.RunTracked(cfg, "gzip", 1000, 1); src != SourceDisk {
		t.Fatalf("post-quarantine entry served as %v, want disk", src)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("simulate ran %d times, want 1", n)
	}
}

func TestCampaignContextCancellation(t *testing.T) {
	entered := make(chan struct{}, 64)
	var calls atomic.Int64
	e := New(Options{Workers: 2, SimulateContext: blockingSim(entered, nil, &calls)})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.RunCampaignContext(ctx, campaignSpec(2))
		done <- err
	}()
	<-entered
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled campaign did not return within 10s")
	}
}

func TestInjectedDiskWriteFaultSkipsPersist(t *testing.T) {
	faultinject.DiskWrite.Arm(1)
	defer faultinject.DiskWrite.Disarm()
	dir := t.TempDir()
	var calls atomic.Int64
	sim := func(cfg config.Config, b string, n int, s uint64) cpu.Result {
		calls.Add(1)
		return stubResult(cfg, b, n, s)
	}
	cfg := config.Base1ldst()

	e1 := New(Options{CacheDir: dir, Simulate: sim})
	e1.Run(cfg, "gzip", 1000, 1)
	// Nothing was persisted, so a fresh engine re-simulates.
	e2 := New(Options{CacheDir: dir, Simulate: sim})
	if _, src := e2.RunTracked(cfg, "gzip", 1000, 1); src != SourceSimulated {
		t.Fatalf("source = %v, want re-simulation under injected write faults", src)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("simulate ran %d times, want 2", n)
	}
}
