package engine

// Crash-safe campaign journal: the persistence layer that makes campaigns
// first-class durable objects. Each campaign owns one directory under the
// engine cache dir:
//
//	<cacheDir>/v1/campaigns/<id>/
//	    manifest.json   the campaign spec, written once via temp+rename
//	    records.log     append-only, one JSON line per terminal point,
//	                    fsync'd per append
//	    done            fsync'd completion marker (temp+rename), written
//	                    only when every point is terminal
//
// The journal never stores simulation results — those live in the
// content-addressed result store, which is shared across campaigns and
// already crash-safe (temp+rename per entry). A journal line records only
// that a point reached a terminal state (its key, its stream cursor, and
// the error text if it failed), so replay after `kill -9` re-admits the
// campaign with completed points marked done and their results one disk
// hit away: nothing completed is ever recomputed.
//
// Crash tolerance on the log itself: appends are fsync'd, so a record is
// durable before the next point can complete; a crash mid-append leaves at
// most one torn tail line, which replay detects (parse failure or
// non-monotonic sequence) and truncates away. The affected point simply
// re-runs on resume — and is served from the result store if its result
// write got further than its journal write.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"malec/internal/config"
	"malec/internal/faultinject"
)

// JournalFormatVersion stamps campaign manifests; entries written under
// another version are skipped on replay (never resumed into wrong
// semantics).
const JournalFormatVersion = 1

// journalManifest is the manifest.json payload: everything needed to
// reconstruct the campaign's deterministic job expansion after a restart.
type journalManifest struct {
	Version int         `json:"version"`
	ID      string      `json:"id"`
	Created time.Time   `json:"created"`
	Spec    journalSpec `json:"spec"`
}

// journalSpec is the serializable subset of CampaignSpec (Progress and
// Workers are runtime concerns, not campaign identity).
type journalSpec struct {
	Configs      []config.Config `json:"configs"`
	Benchmarks   []string        `json:"benchmarks"`
	Instructions int             `json:"instructions"`
	Seeds        []uint64        `json:"seeds"`
	Retries      int             `json:"retries"`
}

// StreamRecord is one terminal point of a campaign: a journal log line and
// a stream cursor. Seq is the record's monotonic cursor (1-based position
// in completion order); a results stream resumes from any cursor with
// `?after=<seq>`. Error is set when the point exhausted its retries.
type StreamRecord struct {
	Seq   uint64 `json:"seq"`
	Index int    `json:"index"`
	Key   Key    `json:"key"`
	Error string `json:"error,omitempty"`
}

// doneMarker is the fsync'd completion marker payload.
type doneMarker struct {
	State     CampaignState `json:"state"`
	Completed int           `json:"completed"`
	Failed    int           `json:"failed"`
	Finished  time.Time     `json:"finished"`
}

// journal is one campaign's open record log. Appends are serialized and
// fsync'd; all methods are best-effort from the campaign's point of view
// (a journal write failure degrades durability, never the campaign).
type journal struct {
	dir string
	f   *os.File
}

const (
	manifestName = "manifest.json"
	recordsName  = "records.log"
	doneName     = "done"
)

// fsyncDir flushes a directory entry (the rename that published a file).
func fsyncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck // best-effort metadata flush
		d.Close()
	}
}

// writeFileDurable publishes data at path via temp-file, fsync, rename,
// directory fsync — the same discipline as the result store, plus the
// syncs a completion marker needs.
func writeFileDurable(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	fsyncDir(dir)
	return nil
}

// createJournal initializes a campaign's journal directory: manifest
// published durably, record log opened for appending.
func createJournal(root string, man journalManifest) (*journal, error) {
	dir := filepath.Join(root, man.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := writeFileDurable(filepath.Join(dir, manifestName), data); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, recordsName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{dir: dir, f: f}, nil
}

// append journals one terminal point: marshal, write, fsync. The
// journal-write failpoint drops the append entirely (the point is
// re-admitted from the result store after a restart); the journal-torn
// failpoint writes a partial line, simulating a crash mid-append, which
// replay truncates away.
func (j *journal) append(rec StreamRecord) error {
	if j == nil || j.f == nil {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if faultinject.JournalWrite.Fire() {
		return fmt.Errorf("engine: injected journal write fault")
	}
	if faultinject.JournalTorn.Fire() {
		data = data[:len(data)/2]
	}
	if _, err := j.f.Write(data); err != nil {
		return err
	}
	return j.f.Sync()
}

// finish publishes the fsync'd completion marker and closes the log. A
// campaign directory with a done marker is never re-admitted on restart.
func (j *journal) finish(mark doneMarker) error {
	if j == nil {
		return nil
	}
	data, err := json.Marshal(mark)
	if err != nil {
		return err
	}
	if err := writeFileDurable(filepath.Join(j.dir, doneName), data); err != nil {
		return err
	}
	return j.close()
}

// close releases the record log handle without marking completion.
func (j *journal) close() error {
	if j == nil || j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// replayedJournal is one campaign directory as read back at startup.
type replayedJournal struct {
	manifest journalManifest
	records  []StreamRecord
	done     *doneMarker // nil: unfinished, re-admit
	torn     int         // torn/corrupt tail bytes truncated away
}

// readJournal loads one campaign directory: manifest, the longest valid
// prefix of the record log (truncating a torn or corrupt tail in place so
// the journal can keep appending), and the completion marker if present.
func readJournal(dir string) (replayedJournal, error) {
	var rj replayedJournal
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return rj, err
	}
	if err := json.Unmarshal(data, &rj.manifest); err != nil {
		return rj, fmt.Errorf("engine: campaign manifest %s: %w", dir, err)
	}
	if rj.manifest.Version != JournalFormatVersion {
		return rj, fmt.Errorf("engine: campaign manifest %s: version %d, want %d",
			dir, rj.manifest.Version, JournalFormatVersion)
	}

	logPath := filepath.Join(dir, recordsName)
	raw, err := os.ReadFile(logPath)
	if err != nil && !os.IsNotExist(err) {
		return rj, err
	}
	good := 0 // byte offset of the end of the last valid record
	var lastSeq uint64
	for off := 0; off < len(raw); {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			break // torn tail: no terminator
		}
		var rec StreamRecord
		if err := json.Unmarshal(raw[off:off+nl], &rec); err != nil || rec.Seq <= lastSeq {
			break // corrupt or out-of-order line: truncate from here
		}
		lastSeq = rec.Seq
		// Cursors are renumbered positionally: if an injected journal-write
		// fault dropped a line, the surviving records compact so cursors
		// stay dense and the affected point simply re-runs on resume.
		rec.Seq = uint64(len(rj.records)) + 1
		rj.records = append(rj.records, rec)
		off += nl + 1
		good = off
	}
	if good < len(raw) {
		rj.torn = len(raw) - good
		if err := os.Truncate(logPath, int64(good)); err != nil {
			return rj, err
		}
	}

	if data, err := os.ReadFile(filepath.Join(dir, doneName)); err == nil {
		var mark doneMarker
		if json.Unmarshal(data, &mark) == nil {
			rj.done = &mark
		}
	}
	return rj, nil
}

// reopenJournal opens an unfinished campaign's record log for further
// appends (resume after restart).
func reopenJournal(root, id string) (*journal, error) {
	dir := filepath.Join(root, id)
	f, err := os.OpenFile(filepath.Join(dir, recordsName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{dir: dir, f: f}, nil
}

// pruneJournals removes completed campaign directories whose done marker
// is older than maxAge (0 keeps everything), bounding journal growth
// across restarts. Unfinished campaigns are never pruned — they are
// exactly the ones a restart must re-admit.
func pruneJournals(root string, maxAge time.Duration) int {
	if root == "" || maxAge <= 0 {
		return 0
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return 0
	}
	cutoff := time.Now().Add(-maxAge)
	pruned := 0
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		markPath := filepath.Join(root, ent.Name(), doneName)
		info, err := os.Stat(markPath)
		if err != nil || info.ModTime().After(cutoff) {
			continue
		}
		if os.RemoveAll(filepath.Join(root, ent.Name())) == nil {
			pruned++
		}
	}
	return pruned
}
