package mem

import (
	"testing"
	"testing/quick"
)

func TestGeometryConstants(t *testing.T) {
	if LinesPerPage != 64 {
		t.Errorf("LinesPerPage = %d, want 64", LinesPerPage)
	}
	if SubBlocksPerLine != 4 {
		t.Errorf("SubBlocksPerLine = %d, want 4", SubBlocksPerLine)
	}
	if L1Sets != 128 {
		t.Errorf("L1Sets = %d, want 128", L1Sets)
	}
	if SetsPerBank != 32 {
		t.Errorf("SetsPerBank = %d, want 32", SetsPerBank)
	}
	if MergeWindowSize != 32 {
		t.Errorf("MergeWindowSize = %d, want 32", MergeWindowSize)
	}
}

func TestMakeAddrRoundTrip(t *testing.T) {
	f := func(page uint32, off uint32) bool {
		p := PageID(page & (1<<PageBits - 1))
		o := off & (PageSize - 1)
		a := MakeAddr(p, o)
		return a.Page() == p && a.PageOffset() == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrCanonMasks(t *testing.T) {
	a := Addr(1<<40 | 0x1234)
	if a.Canon() != 0x1234 {
		t.Errorf("Canon() = %v, want 0x1234", a.Canon())
	}
}

func TestLineArithmetic(t *testing.T) {
	a := Addr(0x12345678)
	if a.LineAddr()%LineSize != 0 {
		t.Errorf("LineAddr not line aligned: %v", a.LineAddr())
	}
	if a.LineAddr() > a.Canon() || a.Canon()-a.LineAddr() >= LineSize {
		t.Errorf("LineAddr %v not containing %v", a.LineAddr(), a)
	}
	if got := a.LineOffset(); got != uint32(a.Canon())%LineSize {
		t.Errorf("LineOffset = %d", got)
	}
}

func TestLineInPageProperty(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw).Canon()
		l := a.LineInPage()
		return l < LinesPerPage &&
			l == uint32(a.PageOffset())>>LineShift
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBankAssignment(t *testing.T) {
	// The paper allocates lines 0..3 of a page to separate banks and
	// lines 0,4,8,... to the same bank.
	base := MakeAddr(7, 0)
	seen := map[int]bool{}
	for l := 0; l < 4; l++ {
		b := (base + Addr(l*LineSize)).Bank()
		if seen[b] {
			t.Fatalf("lines 0..3 share bank %d", b)
		}
		seen[b] = true
	}
	b0 := base.Bank()
	for l := 0; l < LinesPerPage; l += 4 {
		if got := (base + Addr(l*LineSize)).Bank(); got != b0 {
			t.Fatalf("line %d bank %d, want %d", l, got, b0)
		}
	}
}

func TestExcludedWayPattern(t *testing.T) {
	// Lines 0..3 exclude way 0, lines 4..7 way 1, etc. (Sec. V).
	for l := uint32(0); l < LinesPerPage; l++ {
		want := int(l/4) % L1Ways
		if got := ExcludedWayForLine(l); got != want {
			t.Fatalf("line %d excluded way %d, want %d", l, got, want)
		}
		a := MakeAddr(3, l*LineSize)
		if got := a.ExcludedWay(); got != want {
			t.Fatalf("addr line %d excluded way %d, want %d", l, got, want)
		}
	}
}

func TestMergeWindow(t *testing.T) {
	a := MakeAddr(1, 0x40) // line 1 start
	b := a + 16            // same 32 byte window
	c := a + 32            // next window, same line
	if a.MergeWindow() != b.MergeWindow() {
		t.Errorf("a,b should share a merge window")
	}
	if a.MergeWindow() == c.MergeWindow() {
		t.Errorf("a,c should not share a merge window")
	}
	if !SameLine(a, c) {
		t.Errorf("a,c should share a line")
	}
}

func TestSetInBankRange(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw).Canon()
		s := a.SetInBank()
		return s >= 0 && s < SetsPerBank
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSamePageSameLine(t *testing.T) {
	a := MakeAddr(5, 100)
	b := MakeAddr(5, 3000)
	if !SamePage(a, b) {
		t.Error("same page expected")
	}
	if SameLine(a, b) {
		t.Error("different lines expected")
	}
	if SamePage(a, MakeAddr(6, 100)) {
		t.Error("different pages expected")
	}
}

func TestAccessKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Error("access kind names wrong")
	}
}

func TestAddrString(t *testing.T) {
	if got := Addr(0x1234).String(); got != "0x00001234" {
		t.Errorf("String() = %q", got)
	}
}
