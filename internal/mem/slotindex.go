package mem

// SlotIndex is the compact hash index backing the O(1) lookup paths of the
// TLBs, way tables and the L2 residency check: a bucket-head array plus one
// intrusive chain link per slot. The indexed structures already store each
// slot's key (VPage/PPage/page/line address), so the index holds no keys at
// all — callers walk a key's bucket chain and compare against their own
// storage. All arrays are sized at construction and every operation is
// allocation-free; removal is a plain chain unlink (no tombstones, no
// backward shifting), which matters on eviction-heavy workloads where
// insert/remove pairs outnumber lookups.
//
// Chains may contain several slots whose keys collide into one bucket —
// including genuine duplicates of the same key — so lookup semantics
// (e.g. "lowest slot wins", matching what a linear scan returns) are the
// caller's choice during the walk.
type SlotIndex struct {
	heads []int32
	next  []int32
	shift uint32
}

// NewSlotIndex returns an index for slot numbers 0..slots-1 with at least
// 4*slots buckets (chains stay near length one even fully populated).
func NewSlotIndex(slots int) *SlotIndex {
	n := 8
	for n < 4*slots {
		n <<= 1
	}
	shift := uint32(32)
	for 1<<(32-shift) < n {
		shift--
	}
	ix := &SlotIndex{
		heads: make([]int32, n),
		next:  make([]int32, slots),
		shift: shift,
	}
	for i := range ix.heads {
		ix.heads[i] = -1
	}
	for i := range ix.next {
		ix.next[i] = -1
	}
	return ix
}

// Reset empties every bucket chain, returning the index to its
// just-constructed state. Checkpoint restores use it to rebuild an index
// from restored slot contents instead of replaying the eviction history.
func (ix *SlotIndex) Reset() {
	for i := range ix.heads {
		ix.heads[i] = -1
	}
	for i := range ix.next {
		ix.next[i] = -1
	}
}

// bucket spreads keys over the bucket array (Fibonacci multiplicative
// hashing on the high bits; page IDs and line IDs are often sequential,
// which this breaks up).
func (ix *SlotIndex) bucket(key uint32) uint32 {
	return (key * 2654435761) >> ix.shift
}

// First returns the first slot in key's bucket chain, or -1. The chain may
// contain colliding slots; the caller compares keys against its own
// storage and continues with Next.
func (ix *SlotIndex) First(key uint32) int32 { return ix.heads[ix.bucket(key)] }

// Next returns the slot chained after slot, or -1 at the chain's end.
func (ix *SlotIndex) Next(slot int32) int32 { return ix.next[slot] }

// Add links slot into key's bucket chain. The slot must not currently be
// in any chain.
func (ix *SlotIndex) Add(key uint32, slot int32) {
	b := ix.bucket(key)
	ix.next[slot] = ix.heads[b]
	ix.heads[b] = slot
}

// Remove unlinks slot from key's bucket chain (a no-op if absent).
func (ix *SlotIndex) Remove(key uint32, slot int32) {
	b := ix.bucket(key)
	i := ix.heads[b]
	if i == slot {
		ix.heads[b] = ix.next[slot]
		ix.next[slot] = -1
		return
	}
	for i >= 0 {
		n := ix.next[i]
		if n == slot {
			ix.next[i] = ix.next[slot]
			ix.next[slot] = -1
			return
		}
		i = n
	}
}
