// Package mem defines the address arithmetic and memory access records used
// throughout the MALEC simulator.
//
// The geometry follows the paper's Tab. II: a 32 bit address space, 4 KByte
// pages, a 32 KByte 4-way set-associative L1 with 64 byte lines split over
// four independent single-ported banks, and 128 bit data-array sub-blocks.
package mem

import "fmt"

// Address space geometry (paper Tab. II).
const (
	// AddrBits is the width of the simulated address space.
	AddrBits = 32
	// AddrMask masks an address to the simulated address space.
	AddrMask = 1<<AddrBits - 1

	// PageShift is log2 of the page size (4 KByte pages).
	PageShift = 12
	// PageSize is the size of a page in bytes.
	PageSize = 1 << PageShift
	// PageBits is the width of a page ID (virtual or physical).
	PageBits = AddrBits - PageShift

	// LineShift is log2 of the cache line size (64 byte lines).
	LineShift = 6
	// LineSize is the cache line size in bytes.
	LineSize = 1 << LineShift
	// LinesPerPage is the number of cache lines covered by one page.
	LinesPerPage = PageSize / LineSize // 64

	// SubBlockShift is log2 of the data-array sub-block size (128 bit).
	SubBlockShift = 4
	// SubBlockSize is the sub-block size in bytes.
	SubBlockSize = 1 << SubBlockShift
	// SubBlocksPerLine is the number of sub-blocks per cache line.
	SubBlocksPerLine = LineSize / SubBlockSize // 4

	// MergeWindowShift is log2 of the load-merge window. MALEC reads two
	// adjacent sub-blocks per access (Sec. IV "SB, MB and L1"), so loads
	// within an aligned 32 byte window can share one data-array read.
	MergeWindowShift = SubBlockShift + 1
	// MergeWindowSize is the merge window size in bytes.
	MergeWindowSize = 1 << MergeWindowShift
)

// Addr is a 32 bit virtual or physical byte address. It is stored in a
// uint64 so intermediate arithmetic cannot overflow; all constructors mask
// to AddrBits.
type Addr uint64

// PageID identifies a 4 KByte page (virtual or physical).
type PageID uint32

// MakeAddr builds an address from a page ID and a page offset.
func MakeAddr(page PageID, offset uint32) Addr {
	return Addr((uint64(page)<<PageShift | uint64(offset&(PageSize-1))) & AddrMask)
}

// Canon returns the address masked to the simulated address space.
func (a Addr) Canon() Addr { return a & AddrMask }

// Page returns the page ID containing the address.
func (a Addr) Page() PageID { return PageID(a.Canon() >> PageShift) }

// PageOffset returns the byte offset of the address within its page.
func (a Addr) PageOffset() uint32 { return uint32(a) & (PageSize - 1) }

// LineAddr returns the address truncated to its cache line boundary.
func (a Addr) LineAddr() Addr { return a.Canon() &^ (LineSize - 1) }

// LineInPage returns the index (0..63) of the address's line within its page.
func (a Addr) LineInPage() uint32 { return (uint32(a) & (PageSize - 1)) >> LineShift }

// LineOffset returns the byte offset of the address within its cache line.
func (a Addr) LineOffset() uint32 { return uint32(a) & (LineSize - 1) }

// SubBlock returns the index (0..3) of the 128 bit sub-block within the line.
func (a Addr) SubBlock() uint32 { return (uint32(a) & (LineSize - 1)) >> SubBlockShift }

// MergeWindow returns the address truncated to its 32 byte merge window. Two
// loads with equal merge windows can share a single MALEC data-array read.
func (a Addr) MergeWindow() Addr { return a.Canon() &^ (MergeWindowSize - 1) }

// Bank returns the cache bank (0..NumBanks-1) servicing the address. The
// paper allocates lines 0..3 of a page to separate banks and lines
// 0,4,8,..,60 to the same bank, i.e. the bank is the line index modulo the
// number of banks.
func (a Addr) Bank() int { return int(a.LineInPage() % NumBanks) }

// String renders the address in hex.
func (a Addr) String() string { return fmt.Sprintf("0x%08x", uint64(a.Canon())) }

// Cache geometry (paper Tab. II).
const (
	// NumBanks is the number of independent single-ported L1 banks.
	NumBanks = 4
	// L1Ways is the L1 associativity.
	L1Ways = 4
	// L1Size is the L1 capacity in bytes (32 KByte).
	L1Size = 32 << 10
	// L1Sets is the total number of L1 sets across all banks.
	L1Sets = L1Size / (LineSize * L1Ways) // 128
	// SetsPerBank is the number of sets within one bank.
	SetsPerBank = L1Sets / NumBanks // 32
)

// SetInBank returns the set index within the address's bank. With four
// banks selected by line-index bits [7:6], the in-bank set index uses the
// next log2(SetsPerBank) address bits.
func (a Addr) SetInBank() int {
	return int((uint32(a.Canon()) >> (LineShift + 2)) % SetsPerBank)
}

// ExcludedWay returns the L1 way that the 2 bit way-table encoding cannot
// represent for the line containing the address (Sec. V): way 0 is deemed
// "unknown" for lines 0..3, way 1 for lines 4..7, and so on, i.e.
// (line/4) mod ways.
func (a Addr) ExcludedWay() int { return int((a.LineInPage() / NumBanks) % L1Ways) }

// ExcludedWayForLine is ExcludedWay for an explicit in-page line index.
func ExcludedWayForLine(lineInPage uint32) int { return int((lineInPage / NumBanks) % L1Ways) }

// AccessKind distinguishes loads from stores.
type AccessKind uint8

// Access kinds.
const (
	Load AccessKind = iota
	Store
)

// String names the access kind.
func (k AccessKind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("AccessKind(%d)", uint8(k))
	}
}

// Access is one dynamic memory reference.
type Access struct {
	Seq  uint64     // dynamic instruction sequence number
	Kind AccessKind // load or store
	VA   Addr       // virtual byte address
	Size uint8      // access size in bytes (1..16)
}

// SameLine reports whether two addresses fall in the same cache line.
func SameLine(a, b Addr) bool { return a.LineAddr() == b.LineAddr() }

// SamePage reports whether two addresses fall in the same page.
func SamePage(a, b Addr) bool { return a.Page() == b.Page() }
