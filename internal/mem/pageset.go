package mem

import "sort"

// PageSet is a growable open-addressed PageID set used where a Go map is
// measurable on a hot path (page-table frame bookkeeping, the trace
// generator's footprint tracking): key and presence are fused in one slot
// so a probe touches a single cache line, and the table grows 4x at half
// occupancy to keep rehash passes rare for large footprints.
type PageSet struct {
	slots []pageSetEntry
	n     int
}

type pageSetEntry struct {
	key  PageID
	used bool
}

// NewPageSet returns a set with the given initial slot count (rounded to a
// power of two by the caller passing one; growth preserves the property).
func NewPageSet(slots int) *PageSet {
	s := &PageSet{}
	s.init(slots)
	return s
}

func (s *PageSet) init(slots int) {
	s.slots = make([]pageSetEntry, slots)
	s.n = 0
}

// Len returns the number of distinct pages added.
func (s *PageSet) Len() int { return s.n }

// Has reports whether k is in the set.
func (s *PageSet) Has(k PageID) bool {
	mask := uint32(len(s.slots) - 1)
	for i := (uint32(k) * 2654435761) & mask; ; i = (i + 1) & mask {
		e := &s.slots[i]
		if !e.used {
			return false
		}
		if e.key == k {
			return true
		}
	}
}

// Pages returns the set's contents in ascending order (deterministic, for
// snapshot encodings).
func (s *PageSet) Pages() []PageID {
	out := make([]PageID, 0, s.n)
	for i := range s.slots {
		if s.slots[i].used {
			out = append(out, s.slots[i].key)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Add inserts k (a no-op if present).
func (s *PageSet) Add(k PageID) {
	if 2*(s.n+1) > len(s.slots) {
		old := s.slots
		s.init(4 * len(old))
		for i := range old {
			if old[i].used {
				s.Add(old[i].key)
			}
		}
	}
	mask := uint32(len(s.slots) - 1)
	for i := (uint32(k) * 2654435761) & mask; ; i = (i + 1) & mask {
		e := &s.slots[i]
		if !e.used {
			*e = pageSetEntry{key: k, used: true}
			s.n++
			return
		}
		if e.key == k {
			return
		}
	}
}
