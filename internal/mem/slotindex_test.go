package mem

import "testing"

// TestSlotIndexAddRemove cross-checks chain membership against a reference
// map through add/remove churn, including colliding keys and duplicates.
func TestSlotIndexAddRemove(t *testing.T) {
	const slots = 16
	ix := NewSlotIndex(slots)
	keys := make([]uint32, slots) // key of each linked slot
	linked := make([]bool, slots)

	members := func(key uint32) map[int32]bool {
		got := map[int32]bool{}
		for i := ix.First(key); i >= 0; i = ix.Next(i) {
			got[i] = true
		}
		return got
	}
	check := func() {
		t.Helper()
		for s := 0; s < slots; s++ {
			if !linked[s] {
				continue
			}
			if !members(keys[s])[int32(s)] {
				t.Fatalf("slot %d missing from chain of key %d", s, keys[s])
			}
		}
	}

	rnd := uint32(12345)
	next := func(n uint32) uint32 {
		rnd = rnd*1664525 + 1013904223
		return rnd % n
	}
	for op := 0; op < 10000; op++ {
		s := int32(next(slots))
		if linked[s] {
			ix.Remove(keys[s], s)
			linked[s] = false
			// Removing again must be a harmless no-op.
			ix.Remove(keys[s], s)
		} else {
			keys[s] = next(8) // few distinct keys: chains collide and duplicate
			ix.Add(keys[s], s)
			linked[s] = true
		}
		check()
	}
	// Chains must never contain unlinked slots.
	for key := uint32(0); key < 8; key++ {
		for i := range members(key) {
			if !linked[i] {
				t.Fatalf("chain of key %d contains unlinked slot %d", key, i)
			}
		}
	}
}
