// Package config defines the simulated machine configurations: the
// processor/core parameters of Tab. II and the L1 interface variants of
// Tab. I, including the 1- and 3-cycle L1 latency variations of Fig. 4 and
// the WDU substitutions of Sec. VI-C.
package config

// InterfaceKind selects the L1 interface microarchitecture.
type InterfaceKind int

// Interface kinds (Tab. I rows).
const (
	// KindBase1 is Base1ldst: one load or store per cycle, single-ported
	// uTLB/TLB and cache.
	KindBase1 InterfaceKind = iota
	// KindBase2 is Base2ld1st: two loads plus one store per cycle via
	// physical multi-porting (uTLB/TLB 1 rd/wt + 2 rd; cache 1 rd/wt +
	// 1 rd) in addition to banking.
	KindBase2
	// KindMALEC is the proposed interface: one load plus two load/store
	// address computations per cycle, all structures single-ported, one
	// page serviced per cycle.
	KindMALEC
)

// String names the interface kind.
func (k InterfaceKind) String() string {
	switch k {
	case KindBase1:
		return "base1ldst"
	case KindBase2:
		return "base2ld1st"
	case KindMALEC:
		return "malec"
	default:
		return "unknown"
	}
}

// WayDetKind selects the way determination scheme.
type WayDetKind int

// Way determination kinds.
const (
	// WayDetNone performs conventional accesses only.
	WayDetNone WayDetKind = iota
	// WayDetPageWT uses the paper's WT/uWT page-based scheme.
	WayDetPageWT
	// WayDetWDU uses the adapted Way Determination Unit (Sec. VI-C).
	WayDetWDU
)

// Config fully describes one simulated machine.
type Config struct {
	Name string
	Kind InterfaceKind
	Seed uint64

	// Address computation units available per cycle (Tab. I).
	AGULoads  int // slots usable by loads
	AGUStores int // slots usable by stores
	AGUTotal  int // total slots

	// L1 access latency in cycles (Tab. II: 2; variants use 1 and 3).
	L1Latency int

	// L1 service constraints.
	MaxLoadsPerCycle  int // result buses (MALEC: 4; Base2: 2; Base1: 1)
	MaxWritesPerCycle int // MBE writes per cycle
	CarriedLoads      int // MALEC input buffer carried-load storage
	// MergeWindowBytes is the load-merge granularity: 16 (a single
	// 128-bit sub-block), 32 (two adjacent sub-blocks returned per read,
	// the paper's scheme that "doubles the probability for loads to be
	// merged"), or 64 (idealized whole-line sharing).
	MergeWindowBytes  int
	MergeCompareLimit int // loads compared after the initial entry (3)

	// Way determination.
	WayDet         WayDetKind
	WDUEntries     int
	WDUPorts       int
	ConstrainWays  bool // 3-of-4 way allocation for WT encodability
	FeedbackUpdate bool // last-entry register uWT update path
	// WTChunkLines > 0 enables the segmented way tables suggested in
	// Sec. VI-D: chunks of this many lines, allocated FIFO from a shared
	// pool sized by WTPoolFraction of the full-table chunk count.
	WTChunkLines   int
	WTPoolFraction float64

	// Core parameters (Tab. II).
	ROB         int
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	LQ, SB, MB  int

	// MSHRs bounds outstanding L1 misses (miss status holding
	// registers); further misses stall until one retires.
	MSHRs int
	// DisableCycleSkip forces the plain cycle-by-cycle simulation loop,
	// turning off the event-driven fast-forward over stalled cycles. The
	// fast-forward is a host-simulator optimization that never alters
	// simulated timing, energy or statistics (differentially tested); this
	// escape hatch exists for debugging and A/B measurement. The
	// MALEC_NO_CYCLE_SKIP environment variable (any non-empty value) has
	// the same effect.
	DisableCycleSkip bool
	// DisableWakeup forces the scan-based issue path: instead of
	// producers waking their registered dependents on completion and
	// issue draining an age-ordered ready set, every cycle rescans the
	// in-flight window with per-entry readiness checks. Like
	// DisableCycleSkip this is a host-simulator toggle that never alters
	// simulated results (differentially tested) and exists for debugging
	// and A/B measurement; the MALEC_NO_WAKEUP environment variable (any
	// non-empty value) has the same effect.
	DisableWakeup bool
	// DisableMemIndex forces the scan-based memory-side lookup paths:
	// uTLB/TLB forward and reverse lookups revert to linear scans over the
	// fully-associative entry arrays, and way-table SlotFor reverts to a
	// slot scan, instead of the compact hash indexes maintained alongside
	// them. Like DisableCycleSkip and DisableWakeup this is a
	// host-simulator toggle that never alters simulated results
	// (differentially tested) and exists for debugging and A/B
	// measurement; the MALEC_NO_MEM_INDEX environment variable (any
	// non-empty value) has the same effect.
	DisableMemIndex bool
	// Bypass enables run-time cache bypassing (Sec. VI-D): loads to
	// pages classified as streaming skip L1 allocation and way-table
	// maintenance.
	Bypass bool

	// Translation hierarchy.
	TLBEntries       int
	UTLBEntries      int
	TLBRefillLatency int
	WalkLatency      int

	// Physical port counts beyond single-ported, for the energy model.
	L1ExtraPorts  int
	TLBExtraPorts int

	// Sampling, when non-nil, switches the run to SMARTS-style interval
	// sampling: the trace functionally warms the memory side (caches,
	// TLBs, way tables, page table) between detailed measurement windows,
	// and cycles/energy are extrapolated from the windows with confidence
	// intervals. Unlike the Disable* toggles above this changes simulated
	// results (they become estimates), so it participates in the config
	// digest; the exact path remains the differential reference behind
	// Sampling == nil or MALEC_NO_SAMPLING=1 (any non-empty value). The
	// field is a pointer with omitempty so every existing config marshals
	// byte-identically and keeps its cache key.
	Sampling *Sampling `json:",omitempty"`
}

// Sampling is the (warmup, detail, interval) schedule of one sampled run.
// Each interval of Interval instructions ends with a measurement burst:
// Warmup instructions run on the detailed core to absorb cold-start
// transients, then Detail instructions are measured. Everything outside
// the burst is functionally warmed only. Warmup+Detail must not exceed
// Interval; runs shorter than one interval fall back to the exact path.
type Sampling struct {
	Warmup   int
	Detail   int
	Interval int
}

// DefaultSampling returns the default schedule used by the -sample flags:
// 1% detail (2k warmup + 8k detail per 1M instructions), which measures
// well under 1% cycle error on the paper benchmarks (see EXPERIMENTS.md).
func DefaultSampling() *Sampling {
	return &Sampling{Warmup: 2000, Detail: 8000, Interval: 1_000_000}
}

// Valid reports whether the schedule is internally consistent.
func (s *Sampling) Valid() bool {
	return s.Warmup >= 0 && s.Detail > 0 && s.Interval > 0 &&
		s.Warmup+s.Detail <= s.Interval
}

// tabII fills the processor and memory parameters shared by every
// configuration (Tab. II).
func tabII(c Config) Config {
	c.ROB = 168
	c.FetchWidth = 6
	c.IssueWidth = 8
	c.CommitWidth = 6
	c.LQ = 40
	c.SB = 24
	c.MB = 4
	c.MSHRs = 8
	c.TLBEntries = 64
	c.UTLBEntries = 16
	c.TLBRefillLatency = 2
	c.WalkLatency = 20
	if c.L1Latency == 0 {
		c.L1Latency = 2
	}
	return c
}

// Base1ldst returns the energy-oriented baseline: one load or store per
// cycle, single-ported everywhere.
func Base1ldst() Config {
	return tabII(Config{
		Name:              "Base1ldst",
		Kind:              KindBase1,
		AGULoads:          1,
		AGUStores:         1,
		AGUTotal:          1,
		MaxLoadsPerCycle:  1,
		MaxWritesPerCycle: 1,
		WayDet:            WayDetNone,
	})
}

// Base2ld1st returns the performance-oriented baseline: 2 loads + 1 store
// per cycle using physical multi-porting plus banking.
func Base2ld1st() Config {
	return tabII(Config{
		Name:              "Base2ld1st",
		Kind:              KindBase2,
		AGULoads:          2,
		AGUStores:         1,
		AGUTotal:          3,
		MaxLoadsPerCycle:  2,
		MaxWritesPerCycle: 1,
		WayDet:            WayDetNone,
		L1ExtraPorts:      1,
		TLBExtraPorts:     2,
	})
}

// Base2ld1st1cycleL1 is the 1-cycle L1 variant of Base2ld1st (a best-case
// energy scenario per the paper: same slow low-energy transistors, no extra
// circuitry for the parallel TLB+L1 lookup accounted).
func Base2ld1st1cycleL1() Config {
	c := Base2ld1st()
	c.Name = "Base2ld1st_1cycleL1"
	c.L1Latency = 1
	return c
}

// MALEC returns the proposed interface as evaluated (Tab. I): 1 ld + 2
// ld/st address computations, single-ported structures, up to 4 loads
// serviced per cycle via banking and merging, WT/uWT way determination.
func MALEC() Config {
	return tabII(Config{
		Name:              "MALEC",
		Kind:              KindMALEC,
		AGULoads:          3,
		AGUStores:         2,
		AGUTotal:          3,
		MaxLoadsPerCycle:  4,
		MaxWritesPerCycle: 1,
		CarriedLoads:      2,
		MergeWindowBytes:  32,
		MergeCompareLimit: 3,
		WayDet:            WayDetPageWT,
		ConstrainWays:     true,
		FeedbackUpdate:    true,
	})
}

// MALEC3cycleL1 is the 3-cycle L1 latency variant of MALEC.
func MALEC3cycleL1() Config {
	c := MALEC()
	c.Name = "MALEC_3cycleL1"
	c.L1Latency = 3
	return c
}

// MALECWithWDU replaces the way tables with an n-entry WDU (Sec. VI-C).
// Supporting four parallel loads requires four associative lookup ports.
func MALECWithWDU(entries int) Config {
	c := MALEC()
	c.Name = "MALEC_WDU" + itoa(entries)
	c.WayDet = WayDetWDU
	c.WDUEntries = entries
	c.WDUPorts = 4
	c.ConstrainWays = false
	return c
}

// MALECNoWayDet disables way determination entirely (ablation).
func MALECNoWayDet() Config {
	c := MALEC()
	c.Name = "MALEC_noWT"
	c.WayDet = WayDetNone
	c.ConstrainWays = false
	return c
}

// MALECNoFeedback disables the last-entry register update (Sec. V reports
// coverage dropping from 94% to 75%).
func MALECNoFeedback() Config {
	c := MALEC()
	c.Name = "MALEC_noFeedback"
	c.FeedbackUpdate = false
	return c
}

// MALECNoMerge disables load merging (Sec. VI-B attributes ~21% of the
// speedup and the mcf energy win to merging).
func MALECNoMerge() Config {
	c := MALEC()
	c.Name = "MALEC_noMerge"
	c.MergeCompareLimit = 0
	c.MergeWindowBytes = 0
	return c
}

// MALECBypass enables run-time cache bypassing on top of MALEC, the
// Sec. VI-D suggestion for streaming workloads (mcf, art) where way
// determination yields negative energy benefits and way-table maintenance
// causes TLB pressure.
func MALECBypass() Config {
	c := MALEC()
	c.Name = "MALEC_bypass"
	c.Bypass = true
	return c
}

// MALECSegmentedWT enables the Sec. VI-D segmented way tables: chunkLines
// lines per chunk, with a shared pool holding poolFraction of the chunks a
// full table would need.
func MALECSegmentedWT(chunkLines int, poolFraction float64) Config {
	c := MALEC()
	c.Name = "MALEC_segWT"
	c.WTChunkLines = chunkLines
	c.WTPoolFraction = poolFraction
	return c
}

// Fig4Configs returns the five configurations of Fig. 4 in plotting order.
func Fig4Configs() []Config {
	return []Config{
		Base1ldst(),
		Base2ld1st1cycleL1(),
		Base2ld1st(),
		MALEC(),
		MALEC3cycleL1(),
	}
}

// itoa is a dependency-free int -> string (avoids strconv for one use).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
