package config

import "sort"

// registry maps the canonical CLI/API name of every preset configuration to
// its constructor. It is the single source of truth shared by malecsim,
// malecd and the engine, so a configuration named over HTTP resolves to the
// same machine as one named on the command line.
var registry = map[string]func() Config{
	"Base1ldst":           Base1ldst,
	"Base2ld1st":          Base2ld1st,
	"Base2ld1st_1cycleL1": Base2ld1st1cycleL1,
	"MALEC":               MALEC,
	"MALEC_3cycleL1":      MALEC3cycleL1,
	"MALEC_noMerge":       MALECNoMerge,
	"MALEC_noFeedback":    MALECNoFeedback,
	"MALEC_noWT":          MALECNoWayDet,
	"MALEC_WDU8":          func() Config { return MALECWithWDU(8) },
	"MALEC_WDU16":         func() Config { return MALECWithWDU(16) },
	"MALEC_WDU32":         func() Config { return MALECWithWDU(32) },
	"MALEC_bypass":        MALECBypass,
	"MALEC_segWT":         func() Config { return MALECSegmentedWT(16, 0.5) },
}

// Named returns the preset configuration registered under name.
func Named(name string) (Config, bool) {
	mk, ok := registry[name]
	if !ok {
		return Config{}, false
	}
	return mk(), true
}

// Names returns the sorted names of all preset configurations.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
