package config

import "testing"

func TestTab2Defaults(t *testing.T) {
	for _, c := range Fig4Configs() {
		if c.ROB != 168 || c.FetchWidth != 6 || c.IssueWidth != 8 {
			t.Fatalf("%s: core parameters differ from Tab. II: %+v", c.Name, c)
		}
		if c.LQ != 40 || c.SB != 24 || c.MB != 4 {
			t.Fatalf("%s: queue sizes differ from Tab. II", c.Name)
		}
		if c.TLBEntries != 64 || c.UTLBEntries != 16 {
			t.Fatalf("%s: TLB sizes differ from Tab. II", c.Name)
		}
	}
}

func TestTab1Ports(t *testing.T) {
	b1 := Base1ldst()
	if b1.AGUTotal != 1 || b1.L1ExtraPorts != 0 || b1.TLBExtraPorts != 0 {
		t.Fatalf("Base1ldst wrong: %+v", b1)
	}
	b2 := Base2ld1st()
	if b2.AGULoads != 2 || b2.AGUStores != 1 || b2.L1ExtraPorts != 1 || b2.TLBExtraPorts != 2 {
		t.Fatalf("Base2ld1st wrong: %+v", b2)
	}
	m := MALEC()
	if m.AGUTotal != 3 || m.AGUStores != 2 || m.L1ExtraPorts != 0 || m.TLBExtraPorts != 0 {
		t.Fatalf("MALEC wrong: %+v", m)
	}
	if m.MaxLoadsPerCycle != 4 || m.MergeWindowBytes != 32 || m.MergeCompareLimit != 3 {
		t.Fatalf("MALEC arbitration parameters wrong: %+v", m)
	}
	if m.WayDet != WayDetPageWT || !m.ConstrainWays || !m.FeedbackUpdate {
		t.Fatalf("MALEC way determination wrong: %+v", m)
	}
}

func TestLatencyVariants(t *testing.T) {
	if Base2ld1st().L1Latency != 2 || MALEC().L1Latency != 2 {
		t.Fatal("default L1 latency must be 2 cycles (Tab. II)")
	}
	if Base2ld1st1cycleL1().L1Latency != 1 {
		t.Fatal("1-cycle variant wrong")
	}
	if MALEC3cycleL1().L1Latency != 3 {
		t.Fatal("3-cycle variant wrong")
	}
}

func TestVariantConstructors(t *testing.T) {
	w := MALECWithWDU(16)
	if w.WayDet != WayDetWDU || w.WDUEntries != 16 || w.WDUPorts != 4 {
		t.Fatalf("WDU variant wrong: %+v", w)
	}
	if w.Name != "MALEC_WDU16" {
		t.Fatalf("WDU name %q", w.Name)
	}
	if w.ConstrainWays {
		t.Fatal("WDU variant must not constrain ways")
	}
	if MALECNoFeedback().FeedbackUpdate {
		t.Fatal("no-feedback variant wrong")
	}
	nm := MALECNoMerge()
	if nm.MergeCompareLimit != 0 || nm.MergeWindowBytes != 0 {
		t.Fatal("no-merge variant wrong")
	}
	if MALECNoWayDet().WayDet != WayDetNone {
		t.Fatal("no-WT variant wrong")
	}
}

func TestFig4Order(t *testing.T) {
	names := []string{}
	for _, c := range Fig4Configs() {
		names = append(names, c.Name)
	}
	want := []string{"Base1ldst", "Base2ld1st_1cycleL1", "Base2ld1st", "MALEC", "MALEC_3cycleL1"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Fig4Configs order %v, want %v", names, want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if KindBase1.String() != "base1ldst" || KindMALEC.String() != "malec" {
		t.Fatal("kind names wrong")
	}
}
