// Package trace models dynamic instruction traces for the MALEC simulator:
// the record format, a compact binary codec, and a deterministic synthetic
// workload generator with one parameter profile per benchmark the paper
// evaluates (SPEC CPU2000 INT/FP and MediaBench2).
//
// The paper drives gem5 with SimPoint-selected 1-billion-instruction phases
// of SPEC CPU2000 and MediaBench2. Those traces are proprietary; following
// the substitution rule, this package generates synthetic traces whose
// first-order statistics (memory-instruction ratio, load/store ratio, page
// and line locality, working-set size, dependency density) are tuned per
// benchmark to the values the paper reports or implies.
package trace

import (
	"fmt"

	"malec/internal/mem"
)

// Kind classifies a trace record.
type Kind uint8

// Record kinds. Op covers every non-memory instruction (ALU, branch, ...):
// the memory interface under study never inspects them, they only occupy
// pipeline slots and carry dependencies.
const (
	Op Kind = iota
	Load
	Store
	// Branch is a conditional control transfer. Mispredicted branches
	// stall dispatch until they resolve, the dominant ILP limiter in
	// real out-of-order cores.
	Branch
)

// String names the record kind.
func (k Kind) String() string {
	switch k {
	case Op:
		return "op"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one dynamic instruction.
type Record struct {
	Kind Kind
	// Addr is the virtual byte address for Load/Store records.
	Addr mem.Addr
	// Size is the access size in bytes for Load/Store records (1..16).
	Size uint8
	// Dep1 and Dep2 are backwards distances (in dynamic instructions) to
	// producer instructions this record depends on; 0 means no dependency.
	// The out-of-order core model delays issue until producers complete.
	Dep1 uint32
	Dep2 uint32
	// Mispredict marks a branch whose direction was mispredicted: the
	// front end stalls until the branch resolves (its producers
	// complete), then pays the refill penalty.
	Mispredict bool
}

// IsMem reports whether the record is a memory reference.
func (r Record) IsMem() bool { return r.Kind == Load || r.Kind == Store }

// Access converts a memory record to a mem.Access with the given sequence
// number. It panics on non-memory records.
func (r Record) Access(seq uint64) mem.Access {
	var k mem.AccessKind
	switch r.Kind {
	case Load:
		k = mem.Load
	case Store:
		k = mem.Store
	default:
		panic("trace: Access on non-memory record")
	}
	return mem.Access{Seq: seq, Kind: k, VA: r.Addr, Size: r.Size}
}

// Stats summarizes a trace.
type Stats struct {
	Instructions uint64
	Loads        uint64
	Stores       uint64
}

// MemRatio returns the fraction of instructions that are memory references.
func (s Stats) MemRatio() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Loads+s.Stores) / float64(s.Instructions)
}

// LoadStoreRatio returns loads per store (0 if no stores).
func (s Stats) LoadStoreRatio() float64 {
	if s.Stores == 0 {
		return 0
	}
	return float64(s.Loads) / float64(s.Stores)
}

// Observe updates the stats with one record.
func (s *Stats) Observe(r Record) {
	s.Instructions++
	switch r.Kind {
	case Load:
		s.Loads++
	case Store:
		s.Stores++
	}
}
