package trace

import (
	"sync"
	"testing"
)

// TestCachePrefixEquivalence pins the property the trace cache is built
// on: cached arenas serve any requested length as a prefix, byte-identical
// to a fresh generator run of that length.
func TestCachePrefixEquivalence(t *testing.T) {
	c := NewCache(1 << 20)
	long := c.Records("gzip", 7, 5000)
	short := c.Records("gzip", 7, 1200)
	if len(long) != 5000 || len(short) != 1200 {
		t.Fatalf("lengths %d/%d, want 5000/1200", len(long), len(short))
	}
	fresh := NewGenerator(Profiles["gzip"], 7).Generate(5000)
	for i := range fresh {
		if long[i] != fresh[i] {
			t.Fatalf("cached record %d differs from fresh generation", i)
		}
	}
	for i := range short {
		if short[i] != long[i] {
			t.Fatalf("prefix record %d differs from the long arena", i)
		}
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v, want 1 hit (prefix) and 1 miss (generation)", s)
	}
}

// TestCacheExtension verifies a longer request extends the existing arena
// in place — continuing the same generator — rather than regenerating.
func TestCacheExtension(t *testing.T) {
	c := NewCache(1 << 20)
	short := c.Records("mcf", 3, 1000)
	long := c.Records("mcf", 3, 4000)
	fresh := NewGenerator(Profiles["mcf"], 3).Generate(4000)
	for i := range fresh {
		if long[i] != fresh[i] {
			t.Fatalf("extended record %d differs from fresh generation", i)
		}
	}
	// The slice handed out before the extension must remain intact.
	for i := range short {
		if short[i] != fresh[i] {
			t.Fatalf("pre-extension slice corrupted at record %d", i)
		}
	}
	s := c.Stats()
	if s.GeneratedRecords != 4000 {
		t.Fatalf("generated %d records, want 4000 (extension, not regeneration)", s.GeneratedRecords)
	}
	if s.Entries != 1 || s.Records != 4000 {
		t.Fatalf("stats %+v, want one 4000-record entry", s)
	}
}

// TestCacheLRUEviction fills the record budget and checks the least
// recently used arena is dropped, then transparently regenerated on the
// next request.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2500)
	c.Records("gzip", 1, 1000)
	c.Records("mcf", 1, 1000)
	c.Records("gzip", 1, 500) // touch gzip: mcf becomes LRU
	c.Records("swim", 1, 1000)
	s := c.Stats()
	if s.Entries != 2 || s.Records != 2000 {
		t.Fatalf("stats %+v, want 2 entries / 2000 records after eviction", s)
	}
	if s.EvictedRecords != 1000 {
		t.Fatalf("evicted %d records, want 1000 (the mcf arena)", s.EvictedRecords)
	}
	// The evicted workload regenerates identically.
	again := c.Records("mcf", 1, 1000)
	fresh := NewGenerator(Profiles["mcf"], 1).Generate(1000)
	for i := range fresh {
		if again[i] != fresh[i] {
			t.Fatalf("regenerated record %d differs", i)
		}
	}
}

// TestCacheOversizeBypass checks that a request larger than the whole
// budget is generated privately instead of wiping the cache.
func TestCacheOversizeBypass(t *testing.T) {
	c := NewCache(1000)
	c.Records("gzip", 1, 800)
	recs := c.Records("mcf", 1, 5000)
	if len(recs) != 5000 {
		t.Fatalf("oversize request returned %d records", len(recs))
	}
	s := c.Stats()
	if s.Entries != 1 || s.Records != 800 {
		t.Fatalf("stats %+v: oversize request disturbed the cache", s)
	}
}

// TestCacheSeedsAndBenchmarksAreDistinct guards the content addressing:
// different seeds or benchmarks must never share an arena.
func TestCacheSeedsAndBenchmarksAreDistinct(t *testing.T) {
	c := NewCache(1 << 20)
	a := c.Records("gzip", 1, 2000)
	b := c.Records("gzip", 2, 2000)
	d := c.Records("mcf", 1, 2000)
	same := func(x, y []Record) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if same(a, b) {
		t.Fatal("seeds 1 and 2 produced identical traces")
	}
	if same(a, d) {
		t.Fatal("gzip and mcf produced identical traces")
	}
	if s := c.Stats(); s.Entries != 3 {
		t.Fatalf("stats %+v, want 3 distinct entries", s)
	}
}

// TestCacheConcurrentReaders hammers one key and several others from many
// goroutines; the race detector validates the locking, and every reader
// must observe the canonical prefix.
func TestCacheConcurrentReaders(t *testing.T) {
	c := NewCache(1 << 20)
	want := NewGenerator(Profiles["gzip"], 9).Generate(3000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				n := 500 + (g*97+i*131)%2500
				recs := c.Records("gzip", 9, n)
				if recs[n-1] != want[n-1] {
					t.Errorf("goroutine %d: record %d differs", g, n-1)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCacheUnknownBenchmarkPanics mirrors the generator path's contract.
func TestCacheUnknownBenchmarkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown benchmark did not panic")
		}
	}()
	NewCache(1000).Records("nosuch", 1, 10)
}
