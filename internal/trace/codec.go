package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"malec/internal/mem"
)

// Binary trace format:
//
//	magic   [4]byte "MLTR"
//	version uvarint (currently 1)
//	records:
//	  kind   byte
//	  for Load/Store: addr uvarint, size byte
//	  for Branch: flags byte (bit0 = mispredicted)
//	  dep1   uvarint
//	  dep2   uvarint
//
// The format is self-delimiting; readers stop at io.EOF.

var magic = [4]byte{'M', 'L', 'T', 'R'}

// formatVersion is the current trace format version.
const formatVersion = 1

// ErrBadMagic is returned when a trace stream does not start with the
// expected magic bytes.
var ErrBadMagic = errors.New("trace: bad magic (not a MALEC trace)")

// Writer encodes records to an underlying stream.
type Writer struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	n   uint64
}

// NewWriter returns a Writer that writes the trace header immediately.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing magic: %w", err)
	}
	tw := &Writer{w: bw}
	if err := tw.uvarint(formatVersion); err != nil {
		return nil, err
	}
	return tw, nil
}

func (w *Writer) uvarint(v uint64) error {
	n := binary.PutUvarint(w.buf[:], v)
	_, err := w.w.Write(w.buf[:n])
	return err
}

// Write encodes one record.
func (w *Writer) Write(r Record) error {
	if err := w.w.WriteByte(byte(r.Kind)); err != nil {
		return err
	}
	if r.IsMem() {
		if err := w.uvarint(uint64(r.Addr.Canon())); err != nil {
			return err
		}
		if err := w.w.WriteByte(r.Size); err != nil {
			return err
		}
	}
	if r.Kind == Branch {
		var flags byte
		if r.Mispredict {
			flags |= 1
		}
		if err := w.w.WriteByte(flags); err != nil {
			return err
		}
	}
	if err := w.uvarint(uint64(r.Dep1)); err != nil {
		return err
	}
	if err := w.uvarint(uint64(r.Dep2)); err != nil {
		return err
	}
	w.n++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() uint64 { return w.n }

// Flush flushes buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes records from an underlying stream.
type Reader struct {
	r *bufio.Reader
}

// NewReader validates the trace header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if v != formatVersion {
		return nil, fmt.Errorf("trace: unsupported format version %d", v)
	}
	return &Reader{r: br}, nil
}

// Read decodes the next record. It returns io.EOF at end of trace.
func (r *Reader) Read() (Record, error) {
	kb, err := r.r.ReadByte()
	if err != nil {
		return Record{}, err
	}
	rec := Record{Kind: Kind(kb)}
	if rec.Kind > Branch {
		return Record{}, fmt.Errorf("trace: invalid record kind %d", kb)
	}
	if rec.IsMem() {
		a, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Record{}, unexpectedEOF(err)
		}
		rec.Addr = mem.Addr(a).Canon()
		sz, err := r.r.ReadByte()
		if err != nil {
			return Record{}, unexpectedEOF(err)
		}
		rec.Size = sz
	}
	if rec.Kind == Branch {
		flags, err := r.r.ReadByte()
		if err != nil {
			return Record{}, unexpectedEOF(err)
		}
		rec.Mispredict = flags&1 != 0
	}
	d1, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, unexpectedEOF(err)
	}
	d2, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, unexpectedEOF(err)
	}
	rec.Dep1, rec.Dep2 = uint32(d1), uint32(d2)
	return rec, nil
}

// unexpectedEOF converts a mid-record EOF into io.ErrUnexpectedEOF so
// callers can distinguish truncation from a clean end of trace.
func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ReadAll decodes every remaining record.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
