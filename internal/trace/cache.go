package trace

import (
	"fmt"
	"sync"
)

// traceKey content-addresses one materialized trace. The instruction count
// is deliberately not part of the key: the generator is prefix-stable (the
// first n records of a longer run equal an n-record run), so one arena per
// (benchmark, seed) serves every requested length as a slice prefix.
type traceKey struct {
	benchmark string
	seed      uint64
}

// traceEntry is one materialized trace: a flat record arena plus the
// generator positioned at its end, so a longer request extends the arena
// in place instead of regenerating from scratch.
type traceEntry struct {
	key traceKey

	// mu serializes generation for this entry (singleflight: concurrent
	// requests for one workload generate it once while other workloads
	// proceed in parallel). records only grows; slices handed out remain
	// valid after later extensions or eviction.
	mu      sync.Mutex
	gen     *Generator
	records []Record

	// size mirrors len(records) under the cache lock, for the record
	// budget; evicted marks entries already dropped from the index so a
	// concurrent extension does not re-account them.
	size    int
	evicted bool

	prev, next *traceEntry // LRU list, most recent first
}

// CacheStats snapshots a trace cache's counters.
type CacheStats struct {
	// Entries and Records describe the current cache content.
	Entries int `json:"entries"`
	Records int `json:"records"`
	// Hits counts requests fully served from a cached arena; Misses
	// counts requests that had to create an entry or generate records
	// (an extension of an existing arena counts as a miss).
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// GeneratedRecords and EvictedRecords count total generator pulls and
	// records dropped by the LRU bound over the cache's lifetime.
	GeneratedRecords uint64 `json:"generatedRecords"`
	EvictedRecords   uint64 `json:"evictedRecords"`
}

// Cache is a bounded, content-addressed store of materialized benchmark
// traces, keyed by (benchmark, seed) and served as flat []Record prefixes.
// It exists so that a sweep running one workload across many machine
// configurations generates the workload's trace once and shares the same
// backing array between all simulations (the returned slices are read-only
// by convention and safe for concurrent readers). Memory is bounded by a
// total record budget with least-recently-used eviction. Safe for
// concurrent use.
type Cache struct {
	mu         sync.Mutex
	maxRecords int
	total      int
	entries    map[traceKey]*traceEntry
	head, tail *traceEntry
	hits       uint64
	misses     uint64
	generated  uint64
	evictedRec uint64
}

// NewCache returns a trace cache bounded to maxRecords total records
// across all entries. It panics on a non-positive bound (callers disable
// trace caching by not constructing one).
func NewCache(maxRecords int) *Cache {
	if maxRecords <= 0 {
		panic("trace: cache record bound must be positive")
	}
	return &Cache{maxRecords: maxRecords, entries: make(map[traceKey]*traceEntry)}
}

// Records returns the first n records of the named benchmark's trace for
// seed, generating or extending the cached arena as needed. The returned
// slice aliases the shared arena: callers must treat it as read-only. It
// panics on unknown benchmarks, mirroring the generator path.
func (c *Cache) Records(benchmark string, seed uint64, n int) []Record {
	prof, ok := Profiles[benchmark]
	if !ok {
		panic(fmt.Sprintf("trace: unknown benchmark %q", benchmark))
	}
	if n <= 0 {
		return nil
	}
	if n > c.maxRecords {
		// An arena that could never fit would evict the whole cache for
		// nothing; generate it privately instead.
		c.mu.Lock()
		c.misses++
		c.generated += uint64(n)
		c.mu.Unlock()
		return NewGenerator(prof, seed).Generate(n)
	}

	key := traceKey{benchmark: benchmark, seed: seed}
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &traceEntry{key: key, gen: NewGenerator(prof, seed)}
		c.entries[key] = e
		c.pushFront(e)
	} else {
		c.moveToFront(e)
	}
	c.mu.Unlock()

	e.mu.Lock()
	grew := 0
	if len(e.records) < n {
		grew = n - len(e.records)
		if cap(e.records) < n {
			grown := make([]Record, len(e.records), n)
			copy(grown, e.records)
			e.records = grown
		}
		for len(e.records) < n {
			e.records = append(e.records, e.gen.Next())
		}
	}
	recs := e.records[:n:n]
	e.mu.Unlock()

	c.mu.Lock()
	if grew > 0 {
		c.misses++
		c.generated += uint64(grew)
		if !e.evicted {
			e.size += grew
			c.total += grew
			c.evict(e)
		}
	} else {
		c.hits++
	}
	c.mu.Unlock()
	return recs
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:          len(c.entries),
		Records:          c.total,
		Hits:             c.hits,
		Misses:           c.misses,
		GeneratedRecords: c.generated,
		EvictedRecords:   c.evictedRec,
	}
}

// evict drops least-recently-used entries until the record budget holds,
// never evicting keep (the entry just served, which is also the MRU).
// Caller holds c.mu.
func (c *Cache) evict(keep *traceEntry) {
	for c.total > c.maxRecords && c.tail != nil && c.tail != keep {
		e := c.tail
		c.remove(e)
		delete(c.entries, e.key)
		e.evicted = true
		c.total -= e.size
		c.evictedRec += uint64(e.size)
	}
}

// pushFront inserts a new entry at the MRU end. Caller holds c.mu.
func (c *Cache) pushFront(e *traceEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// remove unlinks an entry from the LRU list. Caller holds c.mu.
func (c *Cache) remove(e *traceEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront marks an entry most recently used. Caller holds c.mu.
func (c *Cache) moveToFront(e *traceEntry) {
	if c.head == e {
		return
	}
	c.remove(e)
	c.pushFront(e)
}
