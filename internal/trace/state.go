package trace

// Generator state capture: the trace-generator side of the checkpoint
// layer. A generator snapshot is a few hundred bytes (RNG state, stream
// cursors and the page-footprint set), and restoring one resumes the
// identical record sequence from the captured index — which is what lets a
// warmed-checkpoint hit skip generating the fast-forwarded stretch of the
// trace instead of replaying it record by record.

import "malec/internal/mem"

// StreamState is the exported form of one access stream.
type StreamState struct {
	Cur      mem.Addr
	BasePage uint32
	Region   uint32
}

// GeneratorState is a complete snapshot of a Generator's dynamic state.
// The profile is not included: a snapshot may only be restored into a
// generator built from the same (profile, seed) pair, which the
// checkpoint content addressing guarantees.
type GeneratorState struct {
	Rnd          uint64
	Streams      []StreamState
	Active       int
	Idx          uint64
	LastLoadIdx  uint64
	HaveLoad     bool
	StoreStream  StreamState
	LineBaseIdx  uint64
	LastLoadAddr mem.Addr
	PagesTouched []mem.PageID
}

// CaptureState snapshots the generator. The receiver is unmodified.
func (g *Generator) CaptureState() *GeneratorState {
	st := &GeneratorState{
		Rnd:          g.rnd.State(),
		Streams:      make([]StreamState, len(g.streams)),
		Active:       g.active,
		Idx:          g.idx,
		LastLoadIdx:  g.lastLoadIdx,
		HaveLoad:     g.haveLoad,
		StoreStream:  StreamState{Cur: g.storeStream.cur, BasePage: g.storeStream.basePage, Region: g.storeStream.region},
		LineBaseIdx:  g.lineBaseIdx,
		LastLoadAddr: g.lastLoadAddr,
		PagesTouched: g.pagesTouched.Pages(),
	}
	for i, s := range g.streams {
		st.Streams[i] = StreamState{Cur: s.cur, BasePage: s.basePage, Region: s.region}
	}
	return st
}

// RestoreState resumes the generator from a snapshot captured on a
// generator with the same profile and seed. Reports false (leaving the
// receiver untouched) when the snapshot's shape does not match.
func (g *Generator) RestoreState(st *GeneratorState) bool {
	if st == nil || len(st.Streams) != len(g.streams) {
		return false
	}
	g.rnd.SetState(st.Rnd)
	for i, s := range st.Streams {
		g.streams[i] = stream{cur: s.Cur, basePage: s.BasePage, region: s.Region}
	}
	g.active = st.Active
	g.idx = st.Idx
	g.lastLoadIdx = st.LastLoadIdx
	g.haveLoad = st.HaveLoad
	g.storeStream = stream{cur: st.StoreStream.Cur, basePage: st.StoreStream.BasePage, region: st.StoreStream.Region}
	g.lineBaseIdx = st.LineBaseIdx
	g.lastLoadAddr = st.LastLoadAddr
	g.pagesTouched = mem.NewPageSet(4096)
	for _, p := range st.PagesTouched {
		g.pagesTouched.Add(p)
	}
	return true
}
