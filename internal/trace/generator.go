package trace

import (
	"malec/internal/mem"
	"malec/internal/rng"
)

// Profile parameterizes the synthetic workload generator for one benchmark.
// The fields map directly onto the trace statistics the paper's mechanisms
// are sensitive to (Sec. III): memory-instruction ratio, load/store mix,
// page/line locality, working-set size and dependency density.
type Profile struct {
	Name  string // benchmark name, e.g. "gzip"
	Suite string // "spec-int", "spec-fp" or "mb2"

	// MemRatio is the fraction of instructions that are memory references
	// (paper average: 0.40; SPEC-INT 0.45, MB2 0.37).
	MemRatio float64
	// LoadFrac is the fraction of memory references that are loads
	// (paper average: 2/3, i.e. a 2:1 load/store ratio).
	LoadFrac float64

	// NumStreams is the number of concurrently walked access streams.
	// Interleaving streams produces the "n intermediate accesses to a
	// different page" structure of Fig. 1.
	NumStreams int
	// StreamSwitchProb is the per-reference probability of switching the
	// active stream.
	StreamSwitchProb float64
	// StreamStride is the byte distance of a sequential step within a
	// stream. Line-sized or larger strides reduce intra-line locality
	// (e.g. mgrid).
	StreamStride int
	// StreamRegionPages is the number of pages each stream cycles
	// through (its hot region). Small regions mean pages are revisited
	// while still TLB-resident, which page-based way determination
	// exploits; regions far beyond the 64-entry TLB reach (mcf, art)
	// defeat it.
	StreamRegionPages int
	// SamePageProb is the probability that a stream reference stays within
	// its current page rather than advancing to another page.
	SamePageProb float64
	// SameLineProb is the probability that an intra-page reference stays
	// within the previously accessed line (drives load merging, 46% of
	// loads are followed by a same-line load on average in the paper).
	SameLineProb float64
	// SeqPageProb is the probability that a page change moves to the next
	// sequential page of the stream (vs a random working-set page).
	SeqPageProb float64
	// RandomFrac is the fraction of references that jump to a uniformly
	// random address in the working set, modelling pointer chasing (mcf).
	RandomFrac float64
	// WorkingSetPages is the number of distinct 4 KByte pages the
	// benchmark touches. The 32 KByte L1 holds 8 pages worth of data.
	WorkingSetPages int

	// LoadDepProb is the probability that a non-memory instruction depends
	// on the most recent load (couples ALU progress to load latency).
	LoadDepProb float64
	// MemDepProb is the probability that a load's address depends on a
	// recent load (serializing, pointer chasing).
	MemDepProb float64
	// DepWindow bounds how far back dependencies reach, in instructions.
	DepWindow int
	// AluChainProb is the probability that a non-memory instruction
	// extends a short ALU dependency chain (distance 1-2). It is the
	// main instruction-level-parallelism throttle: higher values lower
	// the dependency-bound IPC.
	AluChainProb float64
	// BranchRatio is the fraction of non-memory instructions that are
	// conditional branches.
	BranchRatio float64
	// MispredictProb is the per-branch misprediction probability. A
	// mispredicted branch stalls the front end until it resolves, which
	// makes load latency visible when the branch depends on a load.
	MispredictProb float64
	// BranchLoadDepProb is the probability a branch tests a recently
	// loaded value (its resolution then waits for the load).
	BranchLoadDepProb float64

	// WideAccessFrac is the fraction of memory references that are 16 byte
	// (128 bit SIMD-style) accesses; the rest are 4 or 8 bytes.
	WideAccessFrac float64
}

// MaxDepWindow is the largest dependency window a profile may use. The
// simulator keeps completion times in a fixed ring indexed by sequence
// number (cpu.doneWindow); bounding how far back a dependency can reach is
// one half of the aliasing-freedom invariant (the other is the ROB bound
// cpu.Run validates), so sanitized clamps DepWindow here.
const MaxDepWindow = 512

// sanitized returns a copy of p with zero fields replaced by safe defaults.
func (p Profile) sanitized() Profile {
	if p.NumStreams <= 0 {
		p.NumStreams = 1
	}
	if p.StreamStride <= 0 {
		p.StreamStride = 8
	}
	if p.StreamRegionPages <= 0 {
		p.StreamRegionPages = 6
	}
	if p.WorkingSetPages <= 0 {
		p.WorkingSetPages = 64
	}
	if p.DepWindow <= 0 {
		p.DepWindow = 32
	}
	if p.DepWindow > MaxDepWindow {
		p.DepWindow = MaxDepWindow
	}
	if p.LoadFrac <= 0 {
		p.LoadFrac = 2.0 / 3.0
	}
	if p.AluChainProb <= 0 {
		p.AluChainProb = 0.75
	}
	if p.BranchRatio <= 0 {
		p.BranchRatio = 0.17
	}
	return p
}

// stream is one generator access stream.
type stream struct {
	cur      mem.Addr // last address issued by this stream
	basePage uint32   // stream's region origin within the working set
	region   uint32   // pages the stream cycles through
}

// Generator produces a deterministic synthetic instruction trace for a
// profile. It implements a pull model: call Next for each record.
type Generator struct {
	prof    Profile
	rnd     *rng.Source
	streams []stream
	active  int
	idx     uint64 // dynamic instruction index of the next record

	lastLoadIdx uint64 // dynamic index of the most recent load
	haveLoad    bool
	storeStream stream
	// pagesTouched is an open-addressed footprint set: it is written once
	// per memory record, where a Go map insert is measurable on the
	// generation hot path.
	pagesTouched *mem.PageSet

	// lineBaseIdx is the dynamic index of the load that opened the
	// current same-line run (the "pointer" load whose result the
	// follower field accesses depend on). Follower loads depend on it —
	// not on each other — so they become ready together and are
	// mergeable by MALEC's arbitration unit.
	lineBaseIdx  uint64
	lastLoadAddr mem.Addr
}

// NewGenerator returns a generator for prof seeded with seed. The same
// (prof, seed) pair always yields the identical trace.
func NewGenerator(prof Profile, seed uint64) *Generator {
	prof = prof.sanitized()
	g := &Generator{
		prof:         prof,
		rnd:          rng.New(seed ^ hashName(prof.Name)),
		pagesTouched: mem.NewPageSet(4096),
	}
	// Spread stream origins over the working set so streams touch
	// disjoint regions, as independent data structures would.
	region := uint32(prof.StreamRegionPages)
	if int(region) > prof.WorkingSetPages {
		region = uint32(prof.WorkingSetPages)
	}
	for i := 0; i < prof.NumStreams; i++ {
		base := g.regionBase(region)
		a := mem.MakeAddr(mem.PageID(base), uint32(g.rnd.Intn(mem.PageSize))&^7)
		g.streams = append(g.streams, stream{cur: a, basePage: base, region: region})
	}
	// Stores get their own, tighter hot region ("stores show an even
	// higher spatial locality").
	sregion := region/2 + 1
	base := g.regionBase(sregion)
	g.storeStream = stream{cur: mem.MakeAddr(mem.PageID(base), 0),
		basePage: base, region: sregion}
	return g
}

// regionBase picks a region origin that fits inside the working set.
func (g *Generator) regionBase(region uint32) uint32 {
	span := g.prof.WorkingSetPages - int(region)
	if span <= 0 {
		return 0
	}
	return uint32(g.rnd.Intn(span))
}

// hashName gives each benchmark its own seed offset (FNV-1a).
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

// Next produces the next trace record.
func (g *Generator) Next() Record {
	var r Record
	// The index increment is explicit rather than deferred: Next runs once
	// per simulated instruction, and a deferred closure costs more than
	// the record generation itself on short-record kinds.
	if !g.rnd.Bool(g.prof.MemRatio) {
		r = g.nextOp()
	} else if g.rnd.Bool(g.prof.LoadFrac) {
		r = g.nextLoad()
	} else {
		r = g.nextStore()
	}
	g.idx++
	return r
}

// Generate produces n records.
func (g *Generator) Generate(n int) []Record {
	out := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.Next())
	}
	return out
}

// PagesTouched returns the number of distinct pages generated so far.
func (g *Generator) PagesTouched() int { return g.pagesTouched.Len() }

// nextOp generates a non-memory instruction (ALU op or branch), possibly
// dependent on the most recent load (address/branch computation fed by
// loads).
func (g *Generator) nextOp() Record {
	if g.rnd.Bool(g.prof.BranchRatio) {
		return g.nextBranch()
	}
	r := Record{Kind: Op}
	if g.haveLoad && g.rnd.Bool(g.prof.LoadDepProb) {
		if d := g.depDistance(g.lastLoadIdx); d > 0 {
			r.Dep1 = d
		}
	}
	// Short ALU chains: many ops depend on an immediately preceding op.
	if g.idx > 0 && g.rnd.Bool(g.prof.AluChainProb) {
		r.Dep2 = 1 // hard chain: serializes at one op per cycle
	}
	return r
}

// nextBranch generates a conditional branch. Branches frequently test
// loaded values, tying front-end stalls to load latency.
func (g *Generator) nextBranch() Record {
	r := Record{Kind: Branch, Mispredict: g.rnd.Bool(g.prof.MispredictProb)}
	if g.haveLoad && g.rnd.Bool(g.prof.BranchLoadDepProb) {
		if d := g.depDistance(g.lastLoadIdx); d > 0 {
			r.Dep1 = d
		}
	}
	if r.Dep1 == 0 && g.idx > 0 {
		r.Dep2 = 1 // compare result computed just before the branch
	}
	return r
}

// nextLoad generates a load record. Loads that stay within the line opened
// by an earlier load model structure-field accesses: they depend on that
// base load (the pointer), not on one another, so they can issue in the
// same cycle and be merged. Loads opening a new line may depend on the most
// recent load (pointer chasing) with MemDepProb.
func (g *Generator) nextLoad() Record {
	addr := g.nextAddr()
	r := Record{Kind: Load, Addr: addr, Size: g.accessSize()}
	sameLine := g.haveLoad && mem.SameLine(addr, g.lastLoadAddr)
	switch {
	case sameLine:
		if d := g.depDistance(g.lineBaseIdx); d > 0 {
			r.Dep1 = d
		}
	default:
		g.lineBaseIdx = g.idx
		if g.haveLoad && g.rnd.Bool(g.prof.MemDepProb) {
			if d := g.depDistance(g.lastLoadIdx); d > 0 {
				r.Dep1 = d
			}
		}
	}
	g.lastLoadIdx = g.idx
	g.lastLoadAddr = addr
	g.haveLoad = true
	return r
}

// nextStore generates a store record. Stores follow a single dedicated
// stream with elevated locality ("stores show an even higher spatial
// locality", Sec. III).
func (g *Generator) nextStore() Record {
	s := &g.storeStream
	sameP := minf(g.prof.SamePageProb+0.15, 0.98)
	g.advance(s, sameP, minf(g.prof.SameLineProb+0.2, 0.9))
	g.touch(s.cur)
	r := Record{Kind: Store, Addr: s.cur, Size: g.accessSize()}
	if g.haveLoad && g.rnd.Bool(0.5) {
		if d := g.depDistance(g.lastLoadIdx); d > 0 {
			r.Dep1 = d // store data frequently comes from a load
		}
	}
	return r
}

// nextAddr draws the next load address from the stream model.
func (g *Generator) nextAddr() mem.Addr {
	if g.rnd.Bool(g.prof.RandomFrac) {
		page := mem.PageID(g.rnd.Intn(g.prof.WorkingSetPages))
		off := uint32(g.rnd.Intn(mem.PageSize)) &^ 7
		a := mem.MakeAddr(page, off)
		g.touch(a)
		return a
	}
	if g.rnd.Bool(g.prof.StreamSwitchProb) && len(g.streams) > 1 {
		g.active = g.rnd.Intn(len(g.streams))
	}
	s := &g.streams[g.active]
	g.advance(s, g.prof.SamePageProb, g.prof.SameLineProb)
	g.touch(s.cur)
	return s.cur
}

// advance moves a stream to its next address.
func (g *Generator) advance(s *stream, samePage, sameLine float64) {
	cur := s.cur
	switch {
	case g.rnd.Bool(sameLine):
		// Stay within the current line: wiggle the low offset.
		delta := uint32(g.rnd.Intn(mem.LineSize)) &^ 3
		s.cur = cur.LineAddr() + mem.Addr(delta)
	case g.rnd.Bool(samePage):
		// Advance within the page by the stream stride.
		next := cur + mem.Addr(g.prof.StreamStride)
		if next.Page() != cur.Page() {
			// Wrap within the page to preserve intra-page locality.
			next = mem.MakeAddr(cur.Page(), next.PageOffset())
		}
		s.cur = next
	case g.rnd.Bool(g.prof.SeqPageProb):
		// Advance to the next page of the stream's hot region
		// (cyclic), so region pages are revisited while TLB-resident.
		rel := (uint32(cur.Page()) - s.basePage + 1) % s.region
		s.cur = mem.MakeAddr(mem.PageID(s.basePage+rel), cur.PageOffset())
	default:
		// Jump to a random page of the hot region, keeping an aligned
		// offset so subsequent strides behave.
		page := s.basePage + uint32(g.rnd.Intn(int(s.region)))
		off := uint32(g.rnd.Intn(mem.PageSize)) &^ 7
		s.cur = mem.MakeAddr(mem.PageID(page), off)
	}
}

// touch records a page as part of the observed footprint.
func (g *Generator) touch(a mem.Addr) {
	g.pagesTouched.Add(a.Page())
}

// accessSize draws an access size: 16 bytes with WideAccessFrac, otherwise
// 4 or 8 bytes.
func (g *Generator) accessSize() uint8 {
	if g.rnd.Bool(g.prof.WideAccessFrac) {
		return 16
	}
	if g.rnd.Bool(0.5) {
		return 8
	}
	return 4
}

// depDistance converts a producer's dynamic index into a backwards distance
// bounded by the profile's dependency window; 0 means "unusable".
func (g *Generator) depDistance(producer uint64) uint32 {
	d := g.idx - producer
	if d == 0 || d > uint64(g.prof.DepWindow) {
		return 0
	}
	return uint32(d)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
