package trace

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
	"testing/quick"

	"malec/internal/mem"
)

func TestCodecRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: Op},
		{Kind: Op, Dep1: 3, Dep2: 1},
		{Kind: Load, Addr: 0x12345678, Size: 8, Dep1: 2},
		{Kind: Store, Addr: 0xfffffff8, Size: 16},
		{Kind: Branch, Mispredict: true, Dep1: 1},
		{Kind: Branch, Mispredict: false, Dep2: 1},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(recs)) {
		t.Fatalf("Count = %d", w.Count())
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(kind uint8, addr uint64, size uint8, d1, d2 uint32, misp bool) bool {
		rec := Record{Kind: Kind(kind % 4), Dep1: d1, Dep2: d2}
		if rec.IsMem() {
			rec.Addr = mem.Addr(addr).Canon()
			rec.Size = size
		}
		if rec.Kind == Branch {
			rec.Mispredict = misp
		}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		if err := w.Write(rec); err != nil {
			return false
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.Read()
		return err == nil && got == rec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodecBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("NOPE1234")))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestCodecTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Record{Kind: Load, Addr: 0x1000, Size: 8})
	w.Flush()
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestCodecCleanEOF(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p := Profiles["gzip"]
	a := NewGenerator(p, 5).Generate(5000)
	b := NewGenerator(p, 5).Generate(5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("records diverge at %d", i)
		}
	}
	c := NewGenerator(p, 6).Generate(100)
	same := 0
	for i := range c {
		if c[i] == a[i] {
			same++
		}
	}
	if same == len(c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGeneratorStatsMatchProfile(t *testing.T) {
	for _, name := range []string{"gzip", "swim", "djpeg"} {
		p := Profiles[name]
		g := NewGenerator(p, 1)
		var st Stats
		for i := 0; i < 200000; i++ {
			st.Observe(g.Next())
		}
		if got := st.MemRatio(); math.Abs(got-p.MemRatio) > 0.01 {
			t.Errorf("%s mem ratio %v, profile %v", name, got, p.MemRatio)
		}
		wantLS := p.LoadFrac / (1 - p.LoadFrac)
		if got := st.LoadStoreRatio(); math.Abs(got-wantLS)/wantLS > 0.1 {
			t.Errorf("%s ld/st ratio %v, want ~%v", name, got, wantLS)
		}
	}
}

func TestGeneratorAddressesWithinWorkingSet(t *testing.T) {
	p := Profiles["gzip"]
	g := NewGenerator(p, 2)
	for i := 0; i < 50000; i++ {
		r := g.Next()
		if r.IsMem() {
			if int(r.Addr.Page()) >= p.WorkingSetPages {
				t.Fatalf("address %v outside working set (%d pages)", r.Addr, p.WorkingSetPages)
			}
			if r.Size == 0 || r.Size > 16 {
				t.Fatalf("bad access size %d", r.Size)
			}
		}
	}
	if g.PagesTouched() == 0 {
		t.Fatal("no pages touched")
	}
}

func TestGeneratorDepsBounded(t *testing.T) {
	p := Profiles["mcf"]
	g := NewGenerator(p, 3)
	for i := uint64(0); i < 50000; i++ {
		r := g.Next()
		for _, d := range []uint32{r.Dep1, r.Dep2} {
			if d != 0 && uint64(d) > i {
				t.Fatalf("record %d dep distance %d reaches before trace start", i, d)
			}
			if d > uint32(p.DepWindow) {
				t.Fatalf("dep distance %d exceeds window %d", d, p.DepWindow)
			}
		}
	}
}

func TestGeneratorPageLocalityOrdering(t *testing.T) {
	// A high-SamePageProb profile must show more direct same-page
	// neighbours than a low one.
	hi := Profiles["djpeg"]
	lo := Profiles["mcf"]
	frac := func(p Profile) float64 {
		g := NewGenerator(p, 4)
		var prev mem.Addr
		havePrev := false
		same, total := 0, 0
		for i := 0; i < 100000; i++ {
			r := g.Next()
			if r.Kind != Load {
				continue
			}
			if havePrev {
				total++
				if mem.SamePage(prev, r.Addr) {
					same++
				}
			}
			prev, havePrev = r.Addr, true
		}
		return float64(same) / float64(total)
	}
	if fh, fl := frac(hi), frac(lo); fh <= fl {
		t.Fatalf("page locality ordering violated: djpeg %v <= mcf %v", fh, fl)
	}
}

func TestProfilesComplete(t *testing.T) {
	names := AllBenchmarks()
	if len(names) != 38 {
		t.Fatalf("%d benchmarks, want 38 (12 INT + 14 FP + 12 MB2)", len(names))
	}
	for _, n := range names {
		p, ok := Profiles[n]
		if !ok {
			t.Fatalf("missing profile %q", n)
		}
		if p.Name != n {
			t.Fatalf("profile %q has Name %q", n, p.Name)
		}
		if p.MemRatio <= 0 || p.MemRatio >= 1 {
			t.Fatalf("%s: bad MemRatio %v", n, p.MemRatio)
		}
		if p.Suite != SuiteSpecInt && p.Suite != SuiteSpecFP && p.Suite != SuiteMB2 {
			t.Fatalf("%s: bad suite %q", n, p.Suite)
		}
	}
}

func TestMispredictRates(t *testing.T) {
	// Branches and mispredictions must occur at roughly the profiled rate.
	p := Profiles["gzip"]
	g := NewGenerator(p, 9)
	branches, misp := 0, 0
	n := 200000
	for i := 0; i < n; i++ {
		r := g.Next()
		if r.Kind == Branch {
			branches++
			if r.Mispredict {
				misp++
			}
		}
	}
	if branches == 0 {
		t.Fatal("no branches generated")
	}
	gotRate := float64(misp) / float64(branches)
	if math.Abs(gotRate-p.MispredictProb) > 0.02 {
		t.Fatalf("mispredict rate %v, profile %v", gotRate, p.MispredictProb)
	}
}

func TestRecordAccessConversion(t *testing.T) {
	r := Record{Kind: Load, Addr: 0x1000, Size: 8}
	a := r.Access(42)
	if a.Seq != 42 || a.Kind != mem.Load || a.VA != 0x1000 || a.Size != 8 {
		t.Fatalf("Access conversion wrong: %+v", a)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Access on Op should panic")
		}
	}()
	Record{Kind: Op}.Access(1)
}
