package trace

// Benchmark profiles. One per benchmark of the paper's Fig. 4; parameter
// choices encode the per-benchmark behaviour the paper describes:
//
//   - mcf/art: large working sets, low locality, miss rates far above
//     average (mcf ~7x), pointer chasing (mcf) or streaming (art).
//   - gap: 37% loads of all instructions, dependency chains that prevent
//     re-ordering, very merge-friendly accesses (56% of speedup).
//   - equake: highest merge contribution (66%); mgrid: lowest (<2%,
//     line-sized strides kill intra-line locality).
//   - djpeg/h263dec: excellent locality, many parallel accesses (~30%
//     MALEC speedup).
//   - Suites: SPEC-INT memRatio ~0.45, SPEC-FP ~0.40, MediaBench2 ~0.37
//     with highly structured multi-stream access.

// Suite names.
const (
	SuiteSpecInt = "spec-int"
	SuiteSpecFP  = "spec-fp"
	SuiteMB2     = "mb2"
	// SuiteStress holds synthetic stall-heavy torture workloads that are
	// not part of the paper's reporting set (Suites/Benchmarks): they
	// exist to expose simulator performance on stall-dominated profiles
	// (cycle-skip benchmarks, differential tests), not to reproduce a
	// figure.
	SuiteStress = "stress"
)

// Suites lists the suite names in the paper's reporting order.
var Suites = []string{SuiteSpecInt, SuiteSpecFP, SuiteMB2}

// StressBenchmarks lists the stall-heavy stress profiles in reporting
// order. They are registered in Profiles (runnable everywhere a benchmark
// name is accepted) but deliberately excluded from AllBenchmarks so the
// paper-facing experiment drivers and services keep their 38-benchmark
// default grid.
var StressBenchmarks = []string{"ptrchase", "brstorm", "tlbthrash"}

// intDefaults returns the SPEC-INT baseline profile.
func intDefaults(name string) Profile {
	return Profile{
		Name: name, Suite: SuiteSpecInt,
		MemRatio: 0.45, LoadFrac: 2.0 / 3.0,
		NumStreams: 2, StreamSwitchProb: 0.15, StreamStride: 24,
		StreamRegionPages: 2,
		SamePageProb:      0.85, SameLineProb: 0.16, SeqPageProb: 0.6,
		RandomFrac: 0.008, WorkingSetPages: 256,
		LoadDepProb: 0.62, MemDepProb: 0.22, DepWindow: 32, AluChainProb: 0.8,
		BranchRatio: 0.18, MispredictProb: 0.30, BranchLoadDepProb: 0.75,
		WideAccessFrac: 0.05,
	}
}

// fpDefaults returns the SPEC-FP baseline profile.
func fpDefaults(name string) Profile {
	return Profile{
		Name: name, Suite: SuiteSpecFP,
		MemRatio: 0.40, LoadFrac: 2.0 / 3.0,
		NumStreams: 2, StreamSwitchProb: 0.18, StreamStride: 24,
		StreamRegionPages: 2,
		SamePageProb:      0.86, SameLineProb: 0.18, SeqPageProb: 0.75,
		RandomFrac: 0.005, WorkingSetPages: 512,
		LoadDepProb: 0.52, MemDepProb: 0.12, DepWindow: 32, AluChainProb: 0.72,
		BranchRatio: 0.12, MispredictProb: 0.34, BranchLoadDepProb: 0.6,
		WideAccessFrac: 0.15,
	}
}

// mb2Defaults returns the MediaBench2 baseline profile.
func mb2Defaults(name string) Profile {
	return Profile{
		Name: name, Suite: SuiteMB2,
		MemRatio: 0.37, LoadFrac: 2.0 / 3.0,
		NumStreams: 2, StreamSwitchProb: 0.25, StreamStride: 16,
		StreamRegionPages: 2,
		SamePageProb:      0.90, SameLineProb: 0.28, SeqPageProb: 0.8,
		RandomFrac: 0.003, WorkingSetPages: 96,
		LoadDepProb: 0.3, MemDepProb: 0.06, DepWindow: 32, AluChainProb: 0.62,
		BranchRatio: 0.15, MispredictProb: 0.19, BranchLoadDepProb: 0.55,
		WideAccessFrac: 0.30,
	}
}

// with applies a mutation to a profile (builder helper).
func with(p Profile, f func(*Profile)) Profile {
	f(&p)
	return p
}

// Profiles is the registry of all benchmark profiles, keyed by name.
var Profiles = buildProfiles()

// Benchmarks lists benchmark names grouped by suite in the paper's order.
var Benchmarks = map[string][]string{
	SuiteSpecInt: {"gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon",
		"perlbmk", "gap", "vortex", "bzip2", "twolf"},
	SuiteSpecFP: {"wupwise", "swim", "mgrid", "applu", "mesa", "galgel",
		"art", "equake", "facerec", "ammp", "lucas", "fma3d", "sixtrack",
		"apsi"},
	SuiteMB2: {"cjpeg", "djpeg", "h263dec", "h263enc", "h264dec", "h264enc",
		"jpg2000dec", "jpg2000enc", "mpeg2dec", "mpeg2enc", "mpeg4dec",
		"mpeg4enc"},
}

// AllBenchmarks returns every benchmark name in suite order.
func AllBenchmarks() []string {
	var out []string
	for _, suite := range Suites {
		out = append(out, Benchmarks[suite]...)
	}
	return out
}

func buildProfiles() map[string]Profile {
	m := make(map[string]Profile)
	add := func(p Profile) { m[p.Name] = p }

	// ---- SPEC-INT ----
	add(intDefaults("gzip"))
	add(with(intDefaults("vpr"), func(p *Profile) {
		p.StreamRegionPages = 2
		p.WorkingSetPages = 512
		p.SamePageProb = 0.82
	}))
	add(with(intDefaults("gcc"), func(p *Profile) {
		p.RandomFrac = 0.04
		p.StreamRegionPages = 2
		p.WorkingSetPages = 1024
		p.SamePageProb = 0.78
		p.StreamSwitchProb = 0.22
	}))
	add(with(intDefaults("mcf"), func(p *Profile) {
		p.StreamRegionPages = 2048
		// Pointer chasing over a huge working set: exceptionally high
		// miss rate (~7x average) and low locality.
		p.WorkingSetPages = 8192
		p.RandomFrac = 0.2
		p.SamePageProb = 0.55
		p.SameLineProb = 0.45
		p.MemDepProb = 0.65
		p.MispredictProb = 0.26
		p.BranchLoadDepProb = 0.75
		p.LoadDepProb = 0.55
		p.SeqPageProb = 0.2
	}))
	add(with(intDefaults("crafty"), func(p *Profile) {
		p.WorkingSetPages = 128
		p.SameLineProb = 0.2
	}))
	add(with(intDefaults("parser"), func(p *Profile) {
		p.StreamRegionPages = 2
		p.WorkingSetPages = 512
		p.SamePageProb = 0.78
		p.MemDepProb = 0.3
	}))
	add(with(intDefaults("eon"), func(p *Profile) {
		p.WorkingSetPages = 96
		p.SamePageProb = 0.86
	}))
	add(with(intDefaults("perlbmk"), func(p *Profile) {
		p.WorkingSetPages = 512
		p.SamePageProb = 0.8
	}))
	add(with(intDefaults("gap"), func(p *Profile) {
		// 37% of instructions are loads; heavy dependency chains that
		// prevent re-ordering; very merge-friendly.
		p.MemRatio = 0.48
		p.LoadFrac = 0.77
		p.LoadDepProb = 0.7
		p.MemDepProb = 0.35
		p.SameLineProb = 0.42
		p.SamePageProb = 0.88
		p.NumStreams = 2
		p.StreamSwitchProb = 0.1
	}))
	add(with(intDefaults("vortex"), func(p *Profile) {
		p.WorkingSetPages = 512
	}))
	add(with(intDefaults("bzip2"), func(p *Profile) {
		p.SamePageProb = 0.88
		p.SeqPageProb = 0.85
		p.WorkingSetPages = 384
	}))
	add(with(intDefaults("twolf"), func(p *Profile) {
		p.StreamRegionPages = 2
		p.SamePageProb = 0.75
		p.WorkingSetPages = 256
	}))

	// ---- SPEC-FP ----
	add(with(fpDefaults("wupwise"), func(p *Profile) {
		p.SameLineProb = 0.24
	}))
	add(with(fpDefaults("swim"), func(p *Profile) {
		p.StreamRegionPages = 8
		// Streaming over large arrays.
		p.WorkingSetPages = 2048
		p.NumStreams = 2
		p.SeqPageProb = 0.9
		p.SamePageProb = 0.82
	}))
	add(with(fpDefaults("mgrid"), func(p *Profile) {
		p.RandomFrac = 0.02
		p.StreamRegionPages = 2
		// Line-sized strides: almost no intra-line reuse, so load
		// merging contributes <2% of the speedup.
		p.StreamStride = 64
		p.SameLineProb = 0.04
		p.WorkingSetPages = 1024
		p.WideAccessFrac = 0.25
	}))
	add(with(fpDefaults("applu"), func(p *Profile) {
		p.RandomFrac = 0.025
		p.StreamRegionPages = 2
		p.WorkingSetPages = 1024
		p.NumStreams = 2
	}))
	add(with(fpDefaults("mesa"), func(p *Profile) {
		p.WorkingSetPages = 128
		p.SamePageProb = 0.88
		p.SameLineProb = 0.26
	}))
	add(with(fpDefaults("galgel"), func(p *Profile) {
		p.NumStreams = 2
		p.SamePageProb = 0.84
	}))
	add(with(fpDefaults("art"), func(p *Profile) {
		p.StreamRegionPages = 512
		// Streaming with a working set far beyond L1/L2: high miss
		// rate, little benefit from faster L1.
		p.WorkingSetPages = 4096
		p.RandomFrac = 0.04
		p.SamePageProb = 0.75
		p.SameLineProb = 0.1
		p.SeqPageProb = 0.5
	}))
	add(with(fpDefaults("equake"), func(p *Profile) {
		// Highest merge contribution (66%): dense same-line accesses.
		p.SameLineProb = 0.48
		p.NumStreams = 2
		p.StreamSwitchProb = 0.1
		p.SamePageProb = 0.88
	}))
	add(with(fpDefaults("facerec"), func(p *Profile) {
		p.SamePageProb = 0.85
	}))
	add(with(fpDefaults("ammp"), func(p *Profile) {
		p.RandomFrac = 0.03
		p.StreamRegionPages = 2
		p.WorkingSetPages = 1024
		p.SamePageProb = 0.78
	}))
	add(with(fpDefaults("lucas"), func(p *Profile) {
		p.StreamStride = 16
		p.NumStreams = 2
		p.SamePageProb = 0.88
	}))
	add(with(fpDefaults("fma3d"), func(p *Profile) {
		p.WorkingSetPages = 512
	}))
	add(with(fpDefaults("sixtrack"), func(p *Profile) {
		p.SamePageProb = 0.88
		p.SameLineProb = 0.26
	}))
	add(with(fpDefaults("apsi"), func(p *Profile) {
		p.NumStreams = 3
	}))

	// ---- MediaBench2 ----
	add(with(mb2Defaults("cjpeg"), func(p *Profile) {
		p.SameLineProb = 0.32
	}))
	add(with(mb2Defaults("djpeg"), func(p *Profile) {
		// Excellent locality, numerous parallel accesses: ~30% MALEC
		// speedup.
		p.NumStreams = 2
		p.SamePageProb = 0.93
		p.SameLineProb = 0.24
		p.LoadDepProb = 0.08
		p.StreamSwitchProb = 0.2
	}))
	add(with(mb2Defaults("h263dec"), func(p *Profile) {
		p.SamePageProb = 0.93
		p.SameLineProb = 0.24
		p.LoadDepProb = 0.08
		p.NumStreams = 2
	}))
	add(with(mb2Defaults("h263enc"), func(p *Profile) {
		p.SamePageProb = 0.87
	}))
	add(with(mb2Defaults("h264dec"), func(p *Profile) {
		p.SamePageProb = 0.9
	}))
	add(with(mb2Defaults("h264enc"), func(p *Profile) {
		p.SamePageProb = 0.85
		p.WorkingSetPages = 256
		p.LoadDepProb = 0.25
	}))
	add(with(mb2Defaults("jpg2000dec"), func(p *Profile) {
		p.SamePageProb = 0.88
	}))
	add(with(mb2Defaults("jpg2000enc"), func(p *Profile) {
		p.SamePageProb = 0.87
		p.LoadDepProb = 0.22
	}))
	add(with(mb2Defaults("mpeg2dec"), func(p *Profile) {
		p.SamePageProb = 0.91
		p.SameLineProb = 0.33
	}))
	add(with(mb2Defaults("mpeg2enc"), func(p *Profile) {
		p.SamePageProb = 0.88
	}))
	add(with(mb2Defaults("mpeg4dec"), func(p *Profile) {
		p.SamePageProb = 0.9
	}))
	add(with(mb2Defaults("mpeg4enc"), func(p *Profile) {
		p.SamePageProb = 0.86
		p.LoadDepProb = 0.25
	}))

	// ---- Stress (stall-heavy torture workloads, SuiteStress) ----
	// ptrchase exaggerates mcf: serialized pointer chasing over a 64 MByte
	// working set. Nearly every load misses L1 and L2, address generation
	// depends on the previous load, and the MSHR chain backs misses up
	// behind one another — the cycle budget is dominated by waiting on
	// DRAM-latency completions.
	add(Profile{
		Name: "ptrchase", Suite: SuiteStress,
		MemRatio: 0.50, LoadFrac: 0.85,
		NumStreams: 2, StreamSwitchProb: 0.3, StreamStride: 64,
		StreamRegionPages: 8192,
		SamePageProb:      0.30, SameLineProb: 0.05, SeqPageProb: 0.10,
		RandomFrac: 0.45, WorkingSetPages: 16384,
		LoadDepProb: 0.85, MemDepProb: 0.90, DepWindow: 8, AluChainProb: 0.9,
		BranchRatio: 0.10, MispredictProb: 0.20, BranchLoadDepProb: 0.9,
	})
	// brstorm is mispredict-dominated: every third non-memory instruction
	// is a branch, most mispredict, and most test a just-loaded value, so
	// the front end spends its life resolving redirects and refilling for
	// 20 cycles into a drained ROB. The data side is cache-friendly on
	// purpose — the stalls come from control flow, not misses.
	add(Profile{
		Name: "brstorm", Suite: SuiteStress,
		MemRatio: 0.20, LoadFrac: 2.0 / 3.0,
		NumStreams: 2, StreamSwitchProb: 0.15, StreamStride: 24,
		StreamRegionPages: 2,
		SamePageProb:      0.85, SameLineProb: 0.20, SeqPageProb: 0.6,
		RandomFrac: 0.005, WorkingSetPages: 256,
		LoadDepProb: 0.50, MemDepProb: 0.10, DepWindow: 16, AluChainProb: 0.7,
		BranchRatio: 0.35, MispredictProb: 0.60, BranchLoadDepProb: 0.85,
	})
	// tlbthrash hops pages on almost every reference across a region far
	// beyond the 64-entry TLB's reach, so accesses pay the 20-cycle page
	// table walk (plus backside misses) with little intra-page locality
	// for MALEC to group.
	add(Profile{
		Name: "tlbthrash", Suite: SuiteStress,
		MemRatio: 0.45, LoadFrac: 2.0 / 3.0,
		NumStreams: 4, StreamSwitchProb: 0.5, StreamStride: 512,
		StreamRegionPages: 4096,
		SamePageProb:      0.10, SameLineProb: 0.05, SeqPageProb: 0.3,
		RandomFrac: 0.25, WorkingSetPages: 8192,
		LoadDepProb: 0.60, MemDepProb: 0.50, DepWindow: 16, AluChainProb: 0.8,
		BranchRatio: 0.12, MispredictProb: 0.25, BranchLoadDepProb: 0.6,
	})
	return m
}
