package faultinject

import (
	"encoding/json"
	"testing"
	"time"
)

func TestDisarmedNeverFires(t *testing.T) {
	p := &Point{name: "t", env: "MALEC_FAULT_TEST_NONE"}
	for i := 0; i < 10000; i++ {
		if p.Fire() {
			t.Fatal("disarmed point fired")
		}
	}
	if p.Fires() != 0 {
		t.Fatalf("fires = %d, want 0", p.Fires())
	}
}

func TestFullProbabilityAlwaysFires(t *testing.T) {
	p := &Point{name: "t", env: "MALEC_FAULT_TEST_FULL"}
	p.Arm(1)
	for i := 0; i < 1000; i++ {
		if !p.Fire() {
			t.Fatal("point armed at 1.0 did not fire")
		}
	}
	if p.Fires() != 1000 {
		t.Fatalf("fires = %d, want 1000", p.Fires())
	}
}

func TestProbabilityIsRoughlyHonored(t *testing.T) {
	p := &Point{name: "t", env: "MALEC_FAULT_TEST_HALF"}
	p.Arm(0.5)
	const n = 20000
	for i := 0; i < n; i++ {
		p.Fire()
	}
	got := float64(p.Fires()) / n
	if got < 0.45 || got > 0.55 {
		t.Fatalf("fire rate = %.3f, want ~0.5", got)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	a := &Point{name: "a", env: "MALEC_FAULT_TEST_A"}
	b := &Point{name: "b", env: "MALEC_FAULT_TEST_B"}
	a.Arm(0.3)
	b.Arm(0.3)
	for i := 0; i < 5000; i++ {
		if a.Fire() != b.Fire() {
			t.Fatalf("schedules diverged at draw %d", i)
		}
	}
}

func TestEnvArming(t *testing.T) {
	t.Setenv("MALEC_FAULT_DISK_READ", "0.25")
	t.Setenv("MALEC_FAULT_SIM_LATENCY_MS", "7")
	Reload()
	defer func() {
		// t.Setenv restores the environment; re-sync the armed state.
		t.Cleanup(Reload)
	}()
	if !DiskRead.Enabled() {
		t.Fatal("DiskRead not armed from env")
	}
	if DiskWrite.Enabled() {
		t.Fatal("DiskWrite armed without env")
	}
	if got := Latency(); got != 7*time.Millisecond {
		t.Fatalf("Latency() = %v, want 7ms", got)
	}
	active := Active()
	if len(active) != 1 || active[0] != "disk_read=0.25" {
		t.Fatalf("Active() = %v, want [disk_read=0.25]", active)
	}
}

func TestInvalidEnvValuesDisarm(t *testing.T) {
	for _, v := range []string{"nope", "-1", "0", "NaN"} {
		t.Setenv("MALEC_FAULT_SIM_PANIC", v)
		Reload()
		if SimPanic.Enabled() {
			t.Fatalf("SimPanic armed by env value %q", v)
		}
	}
	t.Cleanup(Reload)
}

func TestCorruptBytesBreaksJSON(t *testing.T) {
	p := &Point{name: "t", env: "MALEC_FAULT_TEST_CORRUPT"}
	p.Arm(1)
	data, err := json.Marshal(map[string]int{"version": 1, "cycles": 42})
	if err != nil {
		t.Fatal(err)
	}
	if !p.CorruptBytes(data) {
		t.Fatal("armed CorruptBytes returned false")
	}
	var out map[string]any
	if json.Unmarshal(data, &out) == nil {
		t.Fatal("corrupted bytes still parse as JSON")
	}
	// Disarmed: data untouched.
	p.Disarm()
	orig := []byte(`{"k":1}`)
	cp := append([]byte(nil), orig...)
	if p.CorruptBytes(cp) {
		t.Fatal("disarmed CorruptBytes returned true")
	}
	if string(cp) != string(orig) {
		t.Fatal("disarmed CorruptBytes modified data")
	}
}
