// Package faultinject provides process-wide failpoints for chaos testing:
// named probability gates, armed from the environment, that production code
// consults at its failure-prone seams (disk reads and writes, checkpoint
// decoding, simulation execution). Disarmed points cost one atomic load, so
// the hooks stay compiled into release binaries and a chaos run is just a
// matter of exporting MALEC_FAULT_* before starting the daemon.
//
// Each point is armed with a firing probability:
//
//	MALEC_FAULT_DISK_READ=0.3    30% of result/checkpoint disk reads fail
//	MALEC_FAULT_DISK_WRITE=1     every disk persist is dropped
//	MALEC_FAULT_DISK_CORRUPT=0.5 50% of disk-store reads return garbled bytes
//	MALEC_FAULT_CKPT_CORRUPT=1   every checkpoint read returns garbled bytes
//	MALEC_FAULT_SIM_PANIC=0.05   5% of simulations panic in the worker
//	MALEC_FAULT_SIM_LATENCY=0.2  20% of simulations sleep an injected delay
//	MALEC_FAULT_SIM_LATENCY_MS=50  the injected delay (default 25ms)
//	MALEC_FAULT_JOURNAL_WRITE=0.1  10% of campaign-journal appends are dropped
//	MALEC_FAULT_JOURNAL_TORN=0.1   10% of campaign-journal appends are torn mid-line
//	MALEC_FAULT_PEER_DIAL=0.25     25% of forwarded point calls fail to dial the peer
//	MALEC_FAULT_PEER_TIMEOUT=0.25  25% of forwarded point calls time out
//	MALEC_FAULT_PEER_ERR=0.25      25% of forwarded point calls lose the peer's reply
//
// Decisions are drawn from a per-point deterministic counter-mode generator,
// so a fault schedule replays identically run to run; tests arm points
// programmatically with Arm/Disarm instead of the environment.
package faultinject

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"sync/atomic"
	"time"
)

// Point is one failpoint: a named probability gate consulted by production
// code via Fire. The zero probability (disarmed) fast path is a single
// atomic load.
type Point struct {
	name string // short name, for Active listings
	env  string // environment variable that arms the point
	// probBits holds math.Float64bits of the firing probability; zero
	// means disarmed.
	probBits atomic.Uint64
	// draws counts Fire calls while armed; each draw indexes the
	// deterministic generator, so the fault schedule is reproducible.
	draws atomic.Uint64
	// fires counts decisions that came up true (observability + tests).
	fires atomic.Uint64
}

// The process-wide failpoints. Production code references these directly;
// they are disarmed unless the corresponding environment variable (or a
// test's Arm call) sets a probability.
var (
	// DiskRead fails a result/checkpoint disk-store read (read error →
	// treated as a cache miss).
	DiskRead = newPoint("disk_read", "MALEC_FAULT_DISK_READ")
	// DiskWrite drops a result/checkpoint disk-store write (persistence
	// is best-effort; the entry is simply not stored).
	DiskWrite = newPoint("disk_write", "MALEC_FAULT_DISK_WRITE")
	// DiskCorrupt garbles the bytes of a successful result disk read,
	// exercising the corruption-quarantine path.
	DiskCorrupt = newPoint("disk_corrupt", "MALEC_FAULT_DISK_CORRUPT")
	// CkptCorrupt garbles the bytes of a successful checkpoint disk read.
	CkptCorrupt = newPoint("ckpt_corrupt", "MALEC_FAULT_CKPT_CORRUPT")
	// SimPanic panics inside an engine worker before the simulation runs,
	// exercising the panic-containment and key-quarantine path.
	SimPanic = newPoint("sim_panic", "MALEC_FAULT_SIM_PANIC")
	// SimLatency sleeps Latency() inside an engine worker before the
	// simulation runs, exercising deadlines and queue backpressure.
	SimLatency = newPoint("sim_latency", "MALEC_FAULT_SIM_LATENCY")
	// JournalWrite drops a campaign-journal append entirely (the point is
	// re-admitted from the result store after a restart).
	JournalWrite = newPoint("journal_write", "MALEC_FAULT_JOURNAL_WRITE")
	// JournalTorn truncates a campaign-journal append mid-line, simulating
	// a crash between write and fsync; replay truncates the torn tail.
	JournalTorn = newPoint("journal_torn", "MALEC_FAULT_JOURNAL_TORN")
	// PeerDial fails a forwarded point call before the request is sent,
	// simulating a connection-refused peer (process down, port closed).
	PeerDial = newPoint("peer_dial", "MALEC_FAULT_PEER_DIAL")
	// PeerTimeout fails a forwarded point call as if the peer sat on the
	// request past the forwarded-call timeout.
	PeerTimeout = newPoint("peer_timeout", "MALEC_FAULT_PEER_TIMEOUT")
	// PeerErr discards a peer's successful reply and reports an error,
	// simulating a peer that died mid-execution (5xx, truncated response).
	PeerErr = newPoint("peer_err", "MALEC_FAULT_PEER_ERR")
)

// points lists every registered failpoint, for Active and Reload.
var points = []*Point{DiskRead, DiskWrite, DiskCorrupt, CkptCorrupt, SimPanic, SimLatency, JournalWrite, JournalTorn, PeerDial, PeerTimeout, PeerErr}

// latencyMs holds the injected delay in milliseconds (SimLatency point).
var latencyMs atomic.Int64

// defaultLatency applies when MALEC_FAULT_SIM_LATENCY is armed but
// MALEC_FAULT_SIM_LATENCY_MS is unset.
const defaultLatency = 25 * time.Millisecond

func newPoint(name, env string) *Point {
	p := &Point{name: name, env: env}
	p.loadEnv()
	return p
}

// loadEnv arms the point from its environment variable; absent or
// unparsable values disarm it.
func (p *Point) loadEnv() {
	v := os.Getenv(p.env)
	if v == "" {
		p.probBits.Store(0)
		return
	}
	prob, err := strconv.ParseFloat(v, 64)
	if err != nil || prob <= 0 || math.IsNaN(prob) {
		p.probBits.Store(0)
		return
	}
	if prob > 1 {
		prob = 1
	}
	p.probBits.Store(math.Float64bits(prob))
}

// Reload re-reads every point's environment variable (tests that t.Setenv
// after package init) and the injected-latency setting.
func Reload() {
	for _, p := range points {
		p.loadEnv()
	}
	latencyMs.Store(0)
	if v := os.Getenv("MALEC_FAULT_SIM_LATENCY_MS"); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			latencyMs.Store(ms)
		}
	}
}

func init() { Reload() }

// Arm sets the firing probability programmatically (tests, chaos
// harnesses). Probabilities are clamped to [0, 1]; zero disarms.
func (p *Point) Arm(prob float64) {
	if prob <= 0 || math.IsNaN(prob) {
		p.probBits.Store(0)
		return
	}
	if prob > 1 {
		prob = 1
	}
	p.probBits.Store(math.Float64bits(prob))
}

// Disarm turns the point off.
func (p *Point) Disarm() { p.probBits.Store(0) }

// Enabled reports whether the point is armed at all.
func (p *Point) Enabled() bool { return p.probBits.Load() != 0 }

// Fires returns how many Fire calls decided true.
func (p *Point) Fires() uint64 { return p.fires.Load() }

// Fire draws one decision: true with the armed probability, always false
// when disarmed. Decisions come from a counter-mode splitmix64 stream, so
// a given arm probability yields the same schedule every run.
func (p *Point) Fire() bool {
	bits := p.probBits.Load()
	if bits == 0 {
		return false
	}
	prob := math.Float64frombits(bits)
	n := p.draws.Add(1)
	if u01(splitmix64(n)) >= prob {
		return false
	}
	p.fires.Add(1)
	return true
}

// CorruptBytes garbles data in place when the point fires, returning
// whether it did. The garbling flips bytes at a stride, which reliably
// breaks JSON framing without changing the length — exactly the shape of
// a torn or bit-rotted store entry.
func (p *Point) CorruptBytes(data []byte) bool {
	if len(data) == 0 || !p.Fire() {
		return false
	}
	for i := 0; i < len(data); i += 7 {
		data[i] ^= 0xA5
	}
	return true
}

// Latency returns the injected delay for the SimLatency point.
func Latency() time.Duration {
	if ms := latencyMs.Load(); ms > 0 {
		return time.Duration(ms) * time.Millisecond
	}
	return defaultLatency
}

// Active describes the armed points (startup logging), e.g.
// ["sim_panic=0.05", "disk_read=0.30"]. Empty when nothing is armed.
func Active() []string {
	var out []string
	for _, p := range points {
		if bits := p.probBits.Load(); bits != 0 {
			out = append(out, fmt.Sprintf("%s=%.2g", p.name, math.Float64frombits(bits)))
		}
	}
	return out
}

// splitmix64 is the SplitMix64 mixing function: a bijective scramble of
// the draw counter, giving an i.i.d.-looking deterministic stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// u01 maps a uint64 to [0, 1) with 53-bit resolution.
func u01(x uint64) float64 { return float64(x>>11) / (1 << 53) }
