package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"malec/internal/config"
	"malec/internal/cpu"
	"malec/internal/faultinject"
)

// PointRequest is the POST /internal/v1/point body: one simulation point
// forwarded to its owner, carrying the fully resolved configuration (not a
// preset name — the forwarding node already resolved and possibly modified
// it, e.g. a sampling schedule) plus the canonical key the sender computed.
// The receiver recomputes the key and refuses on mismatch, so version skew
// between replicas degrades to local execution instead of silently caching
// a result under the wrong address.
type PointRequest struct {
	Config       config.Config `json:"config"`
	Benchmark    string        `json:"benchmark"`
	Instructions int           `json:"instructions"`
	Seed         uint64        `json:"seed"`
	Key          string        `json:"key,omitempty"`
}

// PointResponse is the /internal/v1/point reply. Sampling rides separately
// because cpu.Result excludes it from JSON (it is estimate metadata, not
// semantic result content); the client re-attaches it so a forwarded
// sampled run answers /v1/run exactly like a local one.
type PointResponse struct {
	Key      string                `json:"key"`
	Source   string                `json:"source"`
	Result   cpu.Result            `json:"result"`
	Sampling *cpu.SamplingEstimate `json:"sampling,omitempty"`
}

// Client is the peer HTTP client: one bounded-timeout call per method, no
// policy — retries, backoff, hedging and breakers live in Cluster, which
// owns the counters those decisions feed.
type Client struct {
	http    *http.Client
	timeout time.Duration
}

// newClient builds the peer client. timeout bounds one forwarded call
// (dial + execute + reply); the caller's context can only tighten it.
func newClient(timeout time.Duration, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	return &Client{http: hc, timeout: timeout}
}

// Ready probes a peer's /readyz. Probes bypass the peer failpoints: the
// chaos points model a flaky forwarding path, and keeping the membership
// signal clean is what lets a chaos run distinguish "link faults retried
// away" from "peer actually down".
func (cl *Client) Ready(base string, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := cl.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s/readyz: %s", base, resp.Status)
	}
	return nil
}

// maxPeerResponse bounds a point reply; a legitimate result is a few KB.
const maxPeerResponse = 1 << 20

// RunPoint executes one point on a peer. The three peer failpoints thread
// through here — before the dial, as an injected timeout, and after a
// successful reply — so a chaos run exercises every failure position the
// retry/failover machinery distinguishes.
func (cl *Client) RunPoint(ctx context.Context, base string, preq PointRequest) (cpu.Result, error) {
	if faultinject.PeerDial.Fire() {
		return cpu.Result{}, errors.New("cluster: injected peer dial failure")
	}
	if faultinject.PeerTimeout.Fire() {
		return cpu.Result{}, errors.New("cluster: injected peer timeout")
	}
	body, err := json.Marshal(preq)
	if err != nil {
		return cpu.Result{}, err
	}
	ctx, cancel := context.WithTimeout(ctx, cl.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/internal/v1/point", bytes.NewReader(body))
	if err != nil {
		return cpu.Result{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cl.http.Do(req)
	if err != nil {
		return cpu.Result{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerResponse))
	if err != nil {
		return cpu.Result{}, err
	}
	if faultinject.PeerErr.Fire() {
		return cpu.Result{}, errors.New("cluster: injected peer error")
	}
	if resp.StatusCode != http.StatusOK {
		return cpu.Result{}, fmt.Errorf("cluster: %s point call: %s: %s", base, resp.Status, firstLine(data))
	}
	var pr PointResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		return cpu.Result{}, fmt.Errorf("cluster: %s point reply: %w", base, err)
	}
	if preq.Key != "" && pr.Key != preq.Key {
		return cpu.Result{}, fmt.Errorf("cluster: %s computed key %s for %s (version skew?)", base, pr.Key, preq.Key)
	}
	res := pr.Result
	res.Sampling = pr.Sampling
	return res, nil
}

// firstLine trims an error body to something log-friendly.
func firstLine(data []byte) string {
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		data = data[:i]
	}
	if len(data) > 200 {
		data = data[:200]
	}
	return string(data)
}
