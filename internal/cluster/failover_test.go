// Multi-node integration tests: three in-process malecd nodes wired into
// one cluster, driving real campaigns through the engine's remote hook.
// External test package (cluster_test) because these tests need engine and
// server, both of which import cluster.
package cluster_test

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"malec/internal/cluster"
	"malec/internal/config"
	"malec/internal/engine"
	"malec/internal/faultinject"
	"malec/internal/server"
)

// testSpec is the campaign grid shared by every test and the single-node
// reference: 2 configs x 2 benchmarks x 3 seeds = 12 points.
func testSpec(t *testing.T) engine.CampaignSpec {
	t.Helper()
	var cfgs []config.Config
	for _, name := range []string{"Base1ldst", "MALEC"} {
		c, ok := config.Named(name)
		if !ok {
			t.Fatalf("config %q not registered", name)
		}
		cfgs = append(cfgs, c)
	}
	return engine.CampaignSpec{
		Configs:      cfgs,
		Benchmarks:   []string{"gzip", "mcf"},
		Instructions: 200000,
		Seeds:        []uint64{1, 2, 3},
		Workers:      6,
		Retries:      3,
	}
}

// referenceExports runs the spec on a fresh single node and returns its
// JSON and CSV exports — the byte-identity baseline.
func referenceExports(t *testing.T) ([]byte, []byte) {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 4, CacheDir: filepath.Join(t.TempDir(), "ref")})
	mgr := engine.NewCampaignManager(eng, engine.CampaignManagerOptions{})
	run, err := mgr.Start(testSpec(t))
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	waitCampaignDone(t, run)
	return exportBoth(t, run)
}

// waitCampaignDone polls a campaign run to completion.
func waitCampaignDone(t *testing.T, run *engine.CampaignRun) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st := run.Status()
		if st.State == engine.CampaignDone {
			if st.Failed != 0 {
				t.Fatalf("campaign done with %d failed points", st.Failed)
			}
			return
		}
		if st.State == engine.CampaignCancelled {
			t.Fatal("campaign cancelled")
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("campaign did not complete: %+v", run.Status())
}

// exportBoth materializes a completed campaign's JSON and CSV exports.
func exportBoth(t *testing.T, run *engine.CampaignRun) ([]byte, []byte) {
	t.Helper()
	camp, err := run.Export(context.Background())
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	js, err := camp.JSON()
	if err != nil {
		t.Fatalf("export JSON: %v", err)
	}
	cs, err := camp.CSV()
	if err != nil {
		t.Fatalf("export CSV: %v", err)
	}
	return js, cs
}

// node is one in-process cluster member: engine, cluster view, campaign
// manager and HTTP server on a real listener.
type node struct {
	url string
	eng *engine.Engine
	clu *cluster.Cluster
	mgr *engine.CampaignManager
	hs  *http.Server
}

// startNodes boots n cluster members on loopback listeners and waits for
// every node to see every peer healthy.
func startNodes(t *testing.T, n int) []*node {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*node, n)
	for i := range nodes {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		eng := engine.New(engine.Options{
			Workers:  2,
			CacheDir: filepath.Join(t.TempDir(), fmt.Sprintf("node%d", i)),
		})
		clu := cluster.New(cluster.Options{
			Self:            urls[i],
			Peers:           peers,
			ProbeInterval:   25 * time.Millisecond,
			ProbeTimeout:    time.Second,
			Rise:            1,
			Fall:            2,
			CallTimeout:     30 * time.Second,
			Retries:         2,
			RetryBase:       5 * time.Millisecond,
			RetryCap:        50 * time.Millisecond,
			BreakerCooldown: 100 * time.Millisecond,
		})
		mgr := engine.NewCampaignManager(eng, engine.CampaignManagerOptions{})
		api := server.New(eng, server.Options{Campaigns: mgr, Cluster: clu})
		hs := &http.Server{Handler: api}
		go hs.Serve(lns[i]) //nolint:errcheck // closed by cleanup
		clu.Start()
		nodes[i] = &node{url: urls[i], eng: eng, clu: clu, mgr: mgr, hs: hs}
		t.Cleanup(func() { clu.Stop(); hs.Close() })
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, nd := range nodes {
		for nd.clu.Stats().PeersHealthy != n-1 {
			if time.Now().After(deadline) {
				t.Fatalf("cluster never converged: node %s sees %d healthy peers, want %d",
					nd.url, nd.clu.Stats().PeersHealthy, n-1)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return nodes
}

// assertDenseRecords checks the streamed record log: cursors are exactly
// 1..N with every job index appearing exactly once — no lost and no
// duplicated points, whatever the routing did.
func assertDenseRecords(t *testing.T, run *engine.CampaignRun, wantPoints int) {
	t.Helper()
	recs, state, _ := run.RecordsAfter(0)
	if state != engine.CampaignDone {
		t.Fatalf("records state = %s, want done", state)
	}
	if len(recs) != wantPoints {
		t.Fatalf("streamed %d records, want %d", len(recs), wantPoints)
	}
	seenIdx := make(map[int]bool, wantPoints)
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has cursor %d, want dense %d", i, r.Seq, i+1)
		}
		if r.Error != "" {
			t.Fatalf("record %d carries error %q", i, r.Error)
		}
		if seenIdx[r.Index] {
			t.Fatalf("job index %d recorded twice", r.Index)
		}
		seenIdx[r.Index] = true
	}
}

// TestClusterCampaignDeterminism is the core guarantee: a campaign run
// through a 3-node cluster (points forwarded to their ring owners) exports
// byte-identical JSON and CSV to the same campaign on a single node.
func TestClusterCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node campaign in -short mode")
	}
	refJSON, refCSV := referenceExports(t)
	nodes := startNodes(t, 3)

	run, err := nodes[0].mgr.Start(testSpec(t))
	if err != nil {
		t.Fatalf("cluster campaign: %v", err)
	}
	waitCampaignDone(t, run)
	gotJSON, gotCSV := exportBoth(t, run)

	if !bytes.Equal(refJSON, gotJSON) {
		t.Errorf("3-node JSON export differs from single-node reference (%d vs %d bytes)", len(gotJSON), len(refJSON))
	}
	if !bytes.Equal(refCSV, gotCSV) {
		t.Errorf("3-node CSV export differs from single-node reference (%d vs %d bytes)", len(gotCSV), len(refCSV))
	}
	if st := nodes[0].clu.Stats(); st.Forwarded == 0 {
		t.Errorf("coordinator forwarded no points: %+v (remote hook not engaged?)", st)
	}
	if st := nodes[0].eng.Stats(); st.Remote == 0 {
		t.Errorf("engine served no remote points: %+v", st)
	}
	assertDenseRecords(t, run, 12)
}

// TestClusterFailoverKilledPeer kills one worker node as the campaign
// starts: its shard re-homes onto the survivors (counted as failovers) and
// the exports are still byte-identical to the single-node reference —
// degraded, never down.
func TestClusterFailoverKilledPeer(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node campaign in -short mode")
	}
	refJSON, refCSV := referenceExports(t)
	nodes := startNodes(t, 3)

	run, err := nodes[0].mgr.Start(testSpec(t))
	if err != nil {
		t.Fatalf("cluster campaign: %v", err)
	}
	// Kill the worker immediately after launch: in-flight forwards to it
	// die with the connection, later ones fail to dial, and once the fall
	// threshold trips the probes stop routing there at all.
	nodes[2].hs.Close()
	waitCampaignDone(t, run)
	gotJSON, gotCSV := exportBoth(t, run)

	if !bytes.Equal(refJSON, gotJSON) {
		t.Errorf("failover JSON export differs from reference (%d vs %d bytes)", len(gotJSON), len(refJSON))
	}
	if !bytes.Equal(refCSV, gotCSV) {
		t.Errorf("failover CSV export differs from reference (%d vs %d bytes)", len(gotCSV), len(refCSV))
	}
	if st := nodes[0].clu.Stats(); st.Failovers == 0 {
		t.Errorf("no failovers recorded with a dead owner: %+v", st)
	}
	assertDenseRecords(t, run, 12)
}

// TestClusterChaosCampaign arms all three peer failpoints at 25% and runs
// the campaign through the cluster: every forwarded call can fail to dial,
// time out, or lose its reply, yet the campaign completes with zero lost
// or duplicated points and byte-identical exports.
func TestClusterChaosCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node chaos campaign in -short mode")
	}
	refJSON, refCSV := referenceExports(t)
	nodes := startNodes(t, 3)

	faultinject.PeerDial.Arm(0.25)
	faultinject.PeerTimeout.Arm(0.25)
	faultinject.PeerErr.Arm(0.25)
	defer func() {
		faultinject.PeerDial.Disarm()
		faultinject.PeerTimeout.Disarm()
		faultinject.PeerErr.Disarm()
	}()

	run, err := nodes[0].mgr.Start(testSpec(t))
	if err != nil {
		t.Fatalf("chaos campaign: %v", err)
	}
	waitCampaignDone(t, run)
	gotJSON, gotCSV := exportBoth(t, run)

	if !bytes.Equal(refJSON, gotJSON) {
		t.Errorf("chaos JSON export differs from reference (%d vs %d bytes)", len(gotJSON), len(refJSON))
	}
	if !bytes.Equal(refCSV, gotCSV) {
		t.Errorf("chaos CSV export differs from reference (%d vs %d bytes)", len(gotCSV), len(refCSV))
	}
	assertDenseRecords(t, run, 12)
	t.Logf("chaos stats: cluster=%+v engine=%+v", nodes[0].clu.Stats(), nodes[0].eng.Stats())
}
