package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Ring assigns every simulation point an owner replica by rendezvous
// (highest-random-weight) hashing: each member scores each key as
// hash(member, key), and the member with the highest score owns the key.
// Rendezvous hashing beats a vnode ring here on every axis that matters
// for a small replica fleet:
//
//   - load spread is statistically exact (each member wins each key with
//     probability 1/N, no vnode-count tuning, no arc-length variance);
//   - removing a member re-homes exactly the keys it owned (~1/N of the
//     space) and never moves a key between survivors — survivors' relative
//     scores are untouched;
//   - the full score order of a key is a deterministic failover preference
//     list every node computes identically (Owners).
//
// Lookup is O(N) per key, which for a handful of replicas is cheaper than
// a vnode ring's binary search — and point routing happens once per
// simulation, so the hash cost is noise next to the work it places.
//
// The Ring is immutable after construction; membership is static (-peers),
// and liveness is a routing-time filter (Owners preference order plus
// health checks), not a ring mutation — so point ownership is a pure
// function of the member list, identical on every node.
type Ring struct {
	nodes []string // sorted
	seeds []uint64 // per-node score seed, parallel to nodes
}

// NewRing builds a ring over the given member names (order-insensitive:
// names are sorted first so every node builds the identical ring).
func NewRing(nodes []string) *Ring {
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	r := &Ring{nodes: sorted, seeds: make([]uint64, len(sorted))}
	for i, n := range sorted {
		r.seeds[i] = hash64(n)
	}
	return r
}

// Nodes returns the member names, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// score is one member's rendezvous weight for one key: the member's name
// hash mixed with the key hash through a 64-bit finalizer, so each
// (member, key) pair gets an independent uniform draw without hashing the
// concatenated strings per member.
func score(seed, keyHash uint64) uint64 {
	x := seed ^ keyHash
	// splitmix64 finalizer: full-avalanche mixing of the combined bits.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner returns the member owning a key.
func (r *Ring) Owner(key string) string {
	if len(r.nodes) == 0 {
		return ""
	}
	kh := hash64(key)
	best, bestScore := 0, score(r.seeds[0], kh)
	for i := 1; i < len(r.seeds); i++ {
		if s := score(r.seeds[i], kh); s > bestScore {
			best, bestScore = i, s
		}
	}
	return r.nodes[best]
}

// Owners returns up to n members in the key's preference order: the owner
// first, then each runner-up by descending score. A caller failing over
// tries them in this order, so every node agrees on which survivor
// inherits a dead owner's points.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.nodes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	kh := hash64(key)
	type ranked struct {
		score uint64
		node  int
	}
	order := make([]ranked, len(r.nodes))
	for i := range r.nodes {
		order[i] = ranked{score(r.seeds[i], kh), i}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].score != order[j].score {
			return order[i].score > order[j].score
		}
		return order[i].node < order[j].node
	})
	out := make([]string, n)
	for i := range out {
		out[i] = r.nodes[order[i].node]
	}
	return out
}

// hash64 maps a string to a uniform 64-bit draw: the first 8 bytes of its
// SHA-256.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
