package cluster

import (
	"testing"
	"time"
)

// TestBackoffBounds checks the jitter window: attempt n sleeps uniformly
// in [d/2, d] where d is the capped exponential.
func TestBackoffBounds(t *testing.T) {
	base, max := 50*time.Millisecond, 2*time.Second
	for attempt := 0; attempt < 12; attempt++ {
		d := base << attempt
		if d > max || d <= 0 {
			d = max
		}
		for i := 0; i < 200; i++ {
			got := Backoff(attempt, base, max)
			if got < d/2 || got > d {
				t.Fatalf("Backoff(%d) = %v, want in [%v, %v]", attempt, got, d/2, d)
			}
		}
	}
}

// TestBackoffCap checks that huge attempt numbers saturate at the cap
// instead of overflowing the shift.
func TestBackoffCap(t *testing.T) {
	for _, attempt := range []int{29, 30, 31, 63, 1000} {
		got := Backoff(attempt, 50*time.Millisecond, 2*time.Second)
		if got < time.Second || got > 2*time.Second {
			t.Fatalf("Backoff(%d) = %v, want in [1s, 2s]", attempt, got)
		}
	}
}

// TestBackoffDefaults checks the degenerate-parameter guards.
func TestBackoffDefaults(t *testing.T) {
	if got := Backoff(0, 0, 0); got <= 0 {
		t.Fatalf("Backoff with zero base/max = %v, want > 0", got)
	}
	// max below base is raised to base.
	got := Backoff(0, 100*time.Millisecond, 10*time.Millisecond)
	if got < 50*time.Millisecond || got > 100*time.Millisecond {
		t.Fatalf("Backoff(max<base) = %v, want in [50ms, 100ms]", got)
	}
}
