package cluster

import (
	"fmt"
	"testing"
)

// testKeys returns n synthetic point keys shaped like real engine keys.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("digest%08x:gzip:1000000:%d", i*2654435761, i)
	}
	return keys
}

// TestRingSpread checks rendezvous uniformity:
// over a large key population, no node's share exceeds another's by more
// than 25%.
func TestRingSpread(t *testing.T) {
	nodes := []string{
		"http://10.0.0.1:8080",
		"http://10.0.0.2:8080",
		"http://10.0.0.3:8080",
		"http://10.0.0.4:8080",
	}
	r := NewRing(nodes)
	counts := make(map[string]int, len(nodes))
	keys := testKeys(20000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	min, max := len(keys), 0
	for _, n := range nodes {
		c := counts[n]
		if c == 0 {
			t.Fatalf("node %s owns no keys", n)
		}
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if ratio := float64(max) / float64(min); ratio >= 1.25 {
		t.Fatalf("owner share spread max/min = %.3f, want < 1.25 (counts %v)", ratio, counts)
	}
}

// TestRingRebalance checks the consistent-hashing contract: removing one
// of N members re-homes only the keys it owned (~1/N of the space) and
// never moves a key between survivors.
func TestRingRebalance(t *testing.T) {
	nodes := []string{
		"http://10.0.0.1:8080",
		"http://10.0.0.2:8080",
		"http://10.0.0.3:8080",
		"http://10.0.0.4:8080",
		"http://10.0.0.5:8080",
	}
	removed := nodes[2]
	survivors := append(append([]string(nil), nodes[:2]...), nodes[3:]...)
	before := NewRing(nodes)
	after := NewRing(survivors)

	keys := testKeys(20000)
	rehomed := 0
	for _, k := range keys {
		was, is := before.Owner(k), after.Owner(k)
		if was == removed {
			rehomed++
			continue
		}
		if was != is {
			t.Fatalf("key %s moved between survivors: %s -> %s", k, was, is)
		}
	}
	// The removed node owned ~1/5 of the space; allow generous slack for
	// hash variance at 64 vnodes.
	frac := float64(rehomed) / float64(len(keys))
	if frac < 0.10 || frac > 0.35 {
		t.Fatalf("re-homed fraction %.3f, want ~1/%d (0.10..0.35)", frac, len(nodes))
	}
}

// TestRingOwnersOrder checks that Owners returns distinct members, starts
// with the owner, and is identical however the member list was ordered —
// every node must agree on the failover preference order.
func TestRingOwnersOrder(t *testing.T) {
	nodes := []string{"http://c:1", "http://a:1", "http://b:1"}
	r1 := NewRing(nodes)
	r2 := NewRing([]string{nodes[2], nodes[0], nodes[1]})
	for _, k := range testKeys(200) {
		o1 := r1.Owners(k, 3)
		o2 := r2.Owners(k, 3)
		if len(o1) != 3 {
			t.Fatalf("Owners(%q, 3) = %v, want 3 distinct nodes", k, o1)
		}
		if o1[0] != r1.Owner(k) {
			t.Fatalf("Owners(%q)[0] = %s, Owner = %s", k, o1[0], r1.Owner(k))
		}
		seen := map[string]bool{}
		for _, n := range o1 {
			if seen[n] {
				t.Fatalf("Owners(%q) repeats %s: %v", k, n, o1)
			}
			seen[n] = true
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("preference order differs by construction order: %v vs %v", o1, o2)
			}
		}
	}
}

// TestRingOwnersBounds covers the degenerate shapes.
func TestRingOwnersBounds(t *testing.T) {
	r := NewRing([]string{"http://a:1"})
	if got := r.Owner("k"); got != "http://a:1" {
		t.Fatalf("single-node Owner = %q", got)
	}
	if got := r.Owners("k", 5); len(got) != 1 {
		t.Fatalf("Owners beyond member count = %v, want 1 entry", got)
	}
	if got := r.Owners("k", 0); got != nil {
		t.Fatalf("Owners(k, 0) = %v, want nil", got)
	}
	empty := NewRing(nil)
	if got := empty.Owner("k"); got != "" {
		t.Fatalf("empty-ring Owner = %q, want empty", got)
	}
	if got := empty.Owners("k", 2); got != nil {
		t.Fatalf("empty-ring Owners = %v, want nil", got)
	}
}
