package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"malec/internal/config"
	"malec/internal/cpu"
	"malec/internal/faultinject"
)

// fakePeer is a scriptable peer: a /readyz whose verdict can flip and an
// /internal/v1/point that can succeed (echoing the request key), fail
// with a status, or stall.
type fakePeer struct {
	srv        *httptest.Server
	ready      atomic.Bool
	pointCalls atomic.Int64
	failStatus atomic.Int64  // non-zero: point calls return this status
	delay      atomic.Int64  // nanoseconds to stall each point call
	cycles     atomic.Uint64 // Cycles value stamped into results
}

func newFakePeer(t *testing.T) *fakePeer {
	t.Helper()
	f := &fakePeer{}
	f.ready.Store(true)
	f.cycles.Store(12345)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !f.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /internal/v1/point", func(w http.ResponseWriter, r *http.Request) {
		f.pointCalls.Add(1)
		if d := f.delay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		if st := f.failStatus.Load(); st != 0 {
			http.Error(w, "injected failure", int(st))
			return
		}
		var req PointRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := PointResponse{
			Key:    req.Key,
			Source: "simulated",
			Result: cpu.Result{Benchmark: req.Benchmark, Cycles: f.cycles.Load()},
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp) //nolint:errcheck
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

// newTestCluster builds a started 2-node cluster (self is fictional, the
// peer is the fake) with fast probes and no retry sleep worth noticing.
func newTestCluster(t *testing.T, f *fakePeer, opts Options) *Cluster {
	t.Helper()
	opts.Self = "http://self.invalid:1"
	opts.Peers = []string{f.srv.URL}
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = 10 * time.Millisecond
	}
	if opts.Rise == 0 {
		opts.Rise = 1
	}
	if opts.RetryBase == 0 {
		opts.RetryBase = time.Millisecond
	}
	if opts.RetryCap == 0 {
		opts.RetryCap = 2 * time.Millisecond
	}
	c := New(opts)
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

// waitPeerHealthy polls until the cluster marks the peer with the given
// health, failing the test on timeout.
func waitPeerHealthy(t *testing.T, c *Cluster, url string, want bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.PeerHealthy(url) == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("peer %s never became healthy=%v", url, want)
}

// peerOwnedKey returns a key whose ring owner is the given node.
func peerOwnedKey(t *testing.T, c *Cluster, node string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("abc%06d:gzip:1000000:%d", i, i)
		if c.Ring().Owner(k) == node {
			return k
		}
	}
	t.Fatal("no key owned by node found")
	return ""
}

func testPointArgs() (config.Config, string, int, uint64) {
	cfg, _ := config.Named("MALEC")
	return cfg, "gzip", 100000, 1
}

// TestMembershipRiseFall drives the probe thresholds both directions.
func TestMembershipRiseFall(t *testing.T) {
	f := newFakePeer(t)
	c := newTestCluster(t, f, Options{Rise: 2, Fall: 2})
	waitPeerHealthy(t, c, f.srv.URL, true)
	if got := c.Stats().PeersHealthy; got != 1 {
		t.Fatalf("PeersHealthy = %d, want 1", got)
	}
	f.ready.Store(false)
	waitPeerHealthy(t, c, f.srv.URL, false)
	f.ready.Store(true)
	waitPeerHealthy(t, c, f.srv.URL, true)
}

// TestRouteForwardsToOwner checks the happy path: a peer-owned point is
// executed remotely, a self-owned point is declined to local execution.
func TestRouteForwardsToOwner(t *testing.T) {
	f := newFakePeer(t)
	c := newTestCluster(t, f, Options{})
	waitPeerHealthy(t, c, f.srv.URL, true)
	cfg, bench, instr, seed := testPointArgs()

	key := peerOwnedKey(t, c, f.srv.URL)
	res, handled, err := c.Route(context.Background(), key, cfg, bench, instr, seed)
	if err != nil || !handled {
		t.Fatalf("Route(peer-owned) = handled=%v err=%v, want handled", handled, err)
	}
	if res.Cycles != 12345 {
		t.Fatalf("forwarded result Cycles = %d, want the peer's 12345", res.Cycles)
	}
	if st := c.Stats(); st.Forwarded != 1 || st.Failovers != 0 {
		t.Fatalf("stats = %+v, want Forwarded=1 Failovers=0", st)
	}

	selfKey := peerOwnedKey(t, c, c.Self())
	_, handled, err = c.Route(context.Background(), selfKey, cfg, bench, instr, seed)
	if err != nil || handled {
		t.Fatalf("Route(self-owned) = handled=%v err=%v, want local", handled, err)
	}
	if st := c.Stats(); st.Forwarded != 1 || st.Failovers != 0 {
		t.Fatalf("self-owned point touched counters: %+v", st)
	}
}

// TestRouteFallsBackLocalWhenPeerDown checks "degraded, never down": a
// peer-owned point with the owner unreachable is declined to local
// execution and counted as a failover.
func TestRouteFallsBackLocalWhenPeerDown(t *testing.T) {
	f := newFakePeer(t)
	f.ready.Store(false) // never passes a probe; peer starts unhealthy
	c := newTestCluster(t, f, Options{})
	cfg, bench, instr, seed := testPointArgs()
	key := peerOwnedKey(t, c, f.srv.URL)
	_, handled, err := c.Route(context.Background(), key, cfg, bench, instr, seed)
	if err != nil || handled {
		t.Fatalf("Route(owner down) = handled=%v err=%v, want local fallback", handled, err)
	}
	if st := c.Stats(); st.Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1", st.Failovers)
	}
	if f.pointCalls.Load() != 0 {
		t.Fatalf("unhealthy peer received %d point calls", f.pointCalls.Load())
	}
}

// TestBreakerOpensAndRecovers checks the circuit breaker: consecutive
// point failures open it (no more calls reach the peer), and after the
// cooldown a half-open trial success closes it again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	f := newFakePeer(t)
	c := newTestCluster(t, f, Options{
		Retries:          1,
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
	})
	waitPeerHealthy(t, c, f.srv.URL, true)
	cfg, bench, instr, seed := testPointArgs()
	key := peerOwnedKey(t, c, f.srv.URL)

	f.failStatus.Store(http.StatusInternalServerError)
	// 2 attempts (1 retry) ≥ threshold 2: the breaker opens during this
	// Route, which falls back to local.
	_, handled, err := c.Route(context.Background(), key, cfg, bench, instr, seed)
	if err != nil || handled {
		t.Fatalf("Route(failing peer) = handled=%v err=%v, want local fallback", handled, err)
	}
	st := c.Stats()
	if st.BreakersOpen != 1 || st.ForwardErrors < 2 {
		t.Fatalf("stats after failures = %+v, want BreakersOpen=1, ForwardErrors>=2", st)
	}

	// While open, routing skips the peer without an HTTP call.
	calls := f.pointCalls.Load()
	if _, handled, _ := c.Route(context.Background(), key, cfg, bench, instr, seed); handled {
		t.Fatal("Route succeeded through an open breaker")
	}
	if f.pointCalls.Load() != calls {
		t.Fatalf("open breaker let %d calls through", f.pointCalls.Load()-calls)
	}

	// After the cooldown the half-open trial succeeds and closes it.
	f.failStatus.Store(0)
	time.Sleep(60 * time.Millisecond)
	_, handled, err = c.Route(context.Background(), key, cfg, bench, instr, seed)
	if err != nil || !handled {
		t.Fatalf("Route(half-open trial) = handled=%v err=%v, want forwarded", handled, err)
	}
	if st := c.Stats(); st.BreakersOpen != 0 {
		t.Fatalf("breaker still open after successful trial: %+v", st)
	}
}

// TestHedgedRequest checks tail hedging: a stalled first call is raced by
// a second identical one, the success wins, and the hedge is counted.
func TestHedgedRequest(t *testing.T) {
	f := newFakePeer(t)
	f.delay.Store(int64(100 * time.Millisecond))
	c := newTestCluster(t, f, Options{HedgeAfter: 10 * time.Millisecond})
	waitPeerHealthy(t, c, f.srv.URL, true)
	cfg, bench, instr, seed := testPointArgs()
	key := peerOwnedKey(t, c, f.srv.URL)
	res, handled, err := c.Route(context.Background(), key, cfg, bench, instr, seed)
	if err != nil || !handled {
		t.Fatalf("Route(hedged) = handled=%v err=%v, want forwarded", handled, err)
	}
	if res.Cycles != 12345 {
		t.Fatalf("hedged result Cycles = %d, want 12345", res.Cycles)
	}
	st := c.Stats()
	if st.Hedges < 1 {
		t.Fatalf("Hedges = %d, want >= 1", st.Hedges)
	}
	if f.pointCalls.Load() < 2 {
		t.Fatalf("peer saw %d point calls, want the hedge to have launched", f.pointCalls.Load())
	}
}

// TestRoutePeerFailpoints checks the chaos path: with the peer-dial
// failpoint always firing, every forward fails and routing degrades to
// local execution — and with it disarmed again, forwarding resumes.
func TestRoutePeerFailpoints(t *testing.T) {
	f := newFakePeer(t)
	c := newTestCluster(t, f, Options{Retries: 1, BreakerThreshold: 100})
	waitPeerHealthy(t, c, f.srv.URL, true)
	cfg, bench, instr, seed := testPointArgs()
	key := peerOwnedKey(t, c, f.srv.URL)

	faultinject.PeerDial.Arm(1.0)
	defer faultinject.PeerDial.Disarm()
	_, handled, err := c.Route(context.Background(), key, cfg, bench, instr, seed)
	if err != nil || handled {
		t.Fatalf("Route(dial faults) = handled=%v err=%v, want local fallback", handled, err)
	}
	st := c.Stats()
	if st.ForwardErrors < 2 || st.Failovers != 1 {
		t.Fatalf("stats under faults = %+v, want ForwardErrors>=2 Failovers=1", st)
	}
	if f.pointCalls.Load() != 0 {
		t.Fatalf("dial failpoint let %d calls reach the peer", f.pointCalls.Load())
	}

	faultinject.PeerDial.Disarm()
	_, handled, err = c.Route(context.Background(), key, cfg, bench, instr, seed)
	if err != nil || !handled {
		t.Fatalf("Route(disarmed) = handled=%v err=%v, want forwarded", handled, err)
	}
}

// TestRouteCancelledContext checks that the caller's own cancellation is
// surfaced as an error, not silently converted to a local fallback (the
// engine must see the cancellation).
func TestRouteCancelledContext(t *testing.T) {
	f := newFakePeer(t)
	f.delay.Store(int64(200 * time.Millisecond))
	c := newTestCluster(t, f, Options{})
	waitPeerHealthy(t, c, f.srv.URL, true)
	cfg, bench, instr, seed := testPointArgs()
	key := peerOwnedKey(t, c, f.srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err := c.Route(ctx, key, cfg, bench, instr, seed)
	if err == nil {
		t.Fatal("Route(cancelled ctx) returned nil error")
	}
}
