package cluster

import (
	"sync/atomic"
	"time"
)

// peer is one remote member's live state: health as seen by the periodic
// /readyz probes, plus a circuit breaker fed by actual forwarded calls.
// The two are deliberately separate signals — a peer can answer /readyz
// while its point API fails (version skew, a wedged handler); the breaker
// catches what the probe can't.
type peer struct {
	url string

	// healthy is the probe verdict: flipped up after `rise` consecutive
	// successful probes, down after `fall` consecutive failures. Peers
	// start unhealthy — a node that never answered a probe never receives
	// a forward (degraded-but-local beats forwarding into the void).
	healthy atomic.Bool
	// okStreak/failStreak are the probe loop's consecutive counters,
	// touched only by that peer's probe goroutine.
	okStreak, failStreak int

	// consecFails counts consecutive forwarded-call failures; at the
	// breaker threshold the peer is opened (openUntil) for a cooldown.
	// After the cooldown one trial call is let through (half-open): a
	// success resets everything, a failure re-opens immediately.
	consecFails atomic.Int64
	openUntil   atomic.Int64 // unix nanos; 0 = closed
}

// available reports whether the peer should receive a forwarded call right
// now: probe-healthy and breaker not open.
func (p *peer) available(now time.Time) bool {
	if !p.healthy.Load() {
		return false
	}
	return p.openUntil.Load() <= now.UnixNano()
}

// breakerOpen reports whether the breaker is holding calls off.
func (p *peer) breakerOpen(now time.Time) bool {
	return p.openUntil.Load() > now.UnixNano()
}

// success records a successful forwarded call: the breaker closes.
func (p *peer) success() {
	p.consecFails.Store(0)
	p.openUntil.Store(0)
}

// failure records a failed forwarded call; at the threshold the breaker
// opens for the cooldown.
func (p *peer) failure(threshold int, cooldown time.Duration) {
	if p.consecFails.Add(1) >= int64(threshold) {
		p.openUntil.Store(time.Now().Add(cooldown).UnixNano())
	}
}

// probeLoop drives one peer's health: an immediate probe at startup (so a
// live cluster converges in one round trip, not one interval), then one
// probe per interval until the cluster stops.
func (c *Cluster) probeLoop(p *peer) {
	defer c.wg.Done()
	c.probeOnce(p)
	t := time.NewTicker(c.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.probeOnce(p)
		}
	}
}

// probeOnce performs one /readyz round trip and applies the rise/fall
// thresholds. A draining or dead peer fails its probe, so load balancers
// and this membership view converge on the same signal.
func (c *Cluster) probeOnce(p *peer) {
	err := c.client.Ready(p.url, c.opts.ProbeTimeout)
	if err == nil {
		p.failStreak = 0
		p.okStreak++
		if !p.healthy.Load() && p.okStreak >= c.opts.Rise {
			p.healthy.Store(true)
		}
		return
	}
	p.okStreak = 0
	p.failStreak++
	if p.healthy.Load() && p.failStreak >= c.opts.Fall {
		p.healthy.Store(false)
	}
}
