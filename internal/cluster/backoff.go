package cluster

import (
	"math/rand/v2"
	"time"
)

// Backoff returns the sleep before retry number attempt (0-based): base
// doubling per attempt, capped at max, with full jitter in the upper half
// of the window — the returned duration is uniform in [d/2, d], where d is
// the capped exponential. The jitter decorrelates retry storms (a cluster
// of callers that failed together never hammers the recovering peer in
// lockstep) while the d/2 floor still guarantees real spacing.
//
// This is the one backoff policy shared by the campaign per-job retry loop
// and the peer client's forwarded-call retries, so the two can never drift.
func Backoff(attempt int, base, max time.Duration) time.Duration {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max < base {
		max = base
	}
	d := max
	// Guard the shift: past 30 doublings the exponential has long since
	// saturated any sane cap.
	if attempt < 30 {
		if e := base << attempt; e < max {
			d = e
		}
	}
	return d/2 + rand.N(d/2+1)
}
