// Package cluster turns a set of malecd replicas into one fault-tolerant
// simulation fabric. A rendezvous-hash ring over the canonical engine key
// assigns every simulation point an owner replica; any node accepts any
// request and forwards non-owned points to their owners over an internal
// HTTP API, falling back to local execution when the owner is unreachable
// — degraded, never down.
//
// The robustness toolkit around the forwarding path:
//
//   - health-checked membership: periodic /readyz probes with rise/fall
//     thresholds over a static peer list;
//   - per-peer circuit breakers fed by actual forwarded calls, with a
//     half-open trial after a cooldown;
//   - per-call timeouts, bounded retries with jittered exponential backoff
//     (Backoff — the same helper the campaign retry loop uses);
//   - optional hedged requests: a second identical call raced against a
//     slow first one, for tail latency;
//   - deterministic chaos: the MALEC_FAULT_PEER_{DIAL,TIMEOUT,ERR}
//     failpoints fire inside the peer client, so the whole
//     retry/failover/fallback ladder is testable without killing processes.
//
// Correctness never depends on routing: results are content-addressed by
// canonical key and the simulator is deterministic, so a point computes
// identical bytes wherever it runs. The cluster only changes *where* work
// happens — which is why campaign exports stay byte-identical across 1
// node, N nodes, and N nodes with one of them killed mid-campaign.
package cluster

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"malec/internal/config"
	"malec/internal/cpu"
)

// Options configures a Cluster.
type Options struct {
	// Self is this node's advertised base URL (how peers reach it); it
	// must appear nowhere in Peers.
	Self string
	// Peers lists the other members' base URLs (static membership).
	Peers []string

	// ProbeInterval is the /readyz health-check period (default 1s);
	// ProbeTimeout bounds one probe (default 2s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// Rise and Fall are the consecutive-probe thresholds for marking a
	// peer healthy and unhealthy (defaults 2 and 2).
	Rise int
	Fall int

	// CallTimeout bounds one forwarded point call end to end (default
	// 60s — a forwarded point is a real simulation, not a metadata RPC).
	CallTimeout time.Duration
	// Retries is how many times a forwarded call to one peer is re-sent
	// after a failure, with jittered exponential backoff (default 1).
	Retries int
	// RetryBase and RetryCap shape the retry backoff (defaults 50ms, 2s).
	RetryBase time.Duration
	RetryCap  time.Duration
	// HedgeAfter, when positive, races a second identical call against a
	// first one that has not answered within the window; first success
	// wins, the loser is cancelled. Zero disables hedging.
	HedgeAfter time.Duration

	// BreakerThreshold is the consecutive-failure count that opens a
	// peer's circuit breaker (default 3); BreakerCooldown is how long it
	// stays open before a half-open trial (default 3s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// HTTPClient overrides the peer HTTP client (tests).
	HTTPClient *http.Client
}

// normalize applies option defaults.
func (o Options) normalize() Options {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.Rise <= 0 {
		o.Rise = 2
	}
	if o.Fall <= 0 {
		o.Fall = 2
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 60 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 1
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 50 * time.Millisecond
	}
	if o.RetryCap <= 0 {
		o.RetryCap = 2 * time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 3 * time.Second
	}
	return o
}

// Stats is a snapshot of the cluster's routing counters.
type Stats struct {
	// Nodes is the total member count (self included); PeersHealthy is
	// how many remote peers currently pass their health probes.
	Nodes        int `json:"nodes"`
	PeersHealthy int `json:"peersHealthy"`
	// BreakersOpen is how many peers' circuit breakers are holding calls
	// off right now.
	BreakersOpen int `json:"breakersOpen"`
	// Forwarded counts points successfully executed on a peer.
	Forwarded uint64 `json:"forwarded"`
	// ForwardErrors counts failed forwarded-call attempts (each retry
	// that failed counts once).
	ForwardErrors uint64 `json:"forwardErrors"`
	// Failovers counts points whose primary owner could not serve them —
	// they re-homed to a ring successor or fell back to local execution.
	Failovers uint64 `json:"failovers"`
	// Hedges counts hedged (second, raced) forwarded calls launched.
	Hedges uint64 `json:"hedges"`
}

// Cluster is one node's view of the fabric: the ring, the peers' health,
// and the forwarding policy. Safe for concurrent use.
type Cluster struct {
	opts   Options
	ring   *Ring
	client *Client
	peers  map[string]*peer // by base URL; excludes self
	order  []*peer          // stable iteration for Stats

	forwarded     atomic.Uint64
	forwardErrors atomic.Uint64
	failovers     atomic.Uint64
	hedges        atomic.Uint64

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// New builds a Cluster over self + peers. Call Start to begin health
// probing; until a peer passes its rise threshold it receives no forwards.
func New(opts Options) *Cluster {
	opts = opts.normalize()
	nodes := append([]string{opts.Self}, opts.Peers...)
	c := &Cluster{
		opts:   opts,
		ring:   NewRing(nodes),
		client: newClient(opts.CallTimeout, opts.HTTPClient),
		peers:  make(map[string]*peer, len(opts.Peers)),
		stop:   make(chan struct{}),
	}
	for _, url := range opts.Peers {
		p := &peer{url: url}
		c.peers[url] = p
		c.order = append(c.order, p)
	}
	return c
}

// Size returns the total member count, self included.
func (c *Cluster) Size() int { return len(c.peers) + 1 }

// Self returns this node's advertised URL.
func (c *Cluster) Self() string { return c.opts.Self }

// Ring exposes the ownership ring (tests, diagnostics).
func (c *Cluster) Ring() *Ring { return c.ring }

// Start launches the health-probe loops.
func (c *Cluster) Start() {
	for _, p := range c.order {
		c.wg.Add(1)
		go c.probeLoop(p)
	}
}

// Stop halts probing and waits for the loops to exit. In-flight forwarded
// calls are unaffected (their contexts bound them).
func (c *Cluster) Stop() {
	c.once.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// Stats returns a snapshot of the routing counters.
func (c *Cluster) Stats() Stats {
	s := Stats{
		Nodes:         c.Size(),
		Forwarded:     c.forwarded.Load(),
		ForwardErrors: c.forwardErrors.Load(),
		Failovers:     c.failovers.Load(),
		Hedges:        c.hedges.Load(),
	}
	now := time.Now()
	for _, p := range c.order {
		if p.healthy.Load() {
			s.PeersHealthy++
		}
		if p.breakerOpen(now) {
			s.BreakersOpen++
		}
	}
	return s
}

// PeerHealthy reports a specific peer's probe verdict (tests, /v1/stats).
func (c *Cluster) PeerHealthy(url string) bool {
	p, ok := c.peers[url]
	return ok && p.healthy.Load()
}

// Route decides where one simulation point runs. It is the engine's
// remote-execution hook: handled=false means "run it locally" — the
// self-owned case and every failure case alike, because local execution is
// the one dependency-free path that always works. The walk tries each node
// in the key's ring preference order; reaching self (or exhausting remote
// candidates) falls back to local. An error returns only for the caller's
// own context cancellation.
func (c *Cluster) Route(ctx context.Context, key string, cfg config.Config, benchmark string, instructions int, seed uint64) (cpu.Result, bool, error) {
	if len(c.peers) == 0 {
		return cpu.Result{}, false, nil
	}
	owners := c.ring.Owners(key, len(c.peers)+1)
	if len(owners) == 0 || owners[0] == c.opts.Self {
		return cpu.Result{}, false, nil
	}
	preq := PointRequest{
		Config:       cfg,
		Benchmark:    benchmark,
		Instructions: instructions,
		Seed:         seed,
		Key:          key,
	}
	now := time.Now()
	for rank, node := range owners {
		if node == c.opts.Self {
			break // our turn in the preference order: run locally
		}
		p := c.peers[node]
		if p == nil || !p.available(now) {
			continue
		}
		res, err := c.callPeer(ctx, p, preq)
		if err == nil {
			c.forwarded.Add(1)
			if rank > 0 {
				c.failovers.Add(1)
			}
			return res, true, nil
		}
		if ctx.Err() != nil {
			return cpu.Result{}, false, ctx.Err()
		}
	}
	// The primary owner is remote and nothing remote served the point:
	// degraded, never down — the caller executes locally.
	c.failovers.Add(1)
	return cpu.Result{}, false, nil
}

// callPeer runs one point on one peer with bounded retries (jittered
// exponential backoff between attempts) and breaker accounting. It stops
// early when the breaker opens mid-sequence or the caller's context dies.
func (c *Cluster) callPeer(ctx context.Context, p *peer, preq PointRequest) (cpu.Result, error) {
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(Backoff(attempt-1, c.opts.RetryBase, c.opts.RetryCap))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return cpu.Result{}, ctx.Err()
			}
		}
		res, err := c.callOnce(ctx, p, preq)
		if err == nil {
			p.success()
			return res, nil
		}
		lastErr = err
		c.forwardErrors.Add(1)
		p.failure(c.opts.BreakerThreshold, c.opts.BreakerCooldown)
		if ctx.Err() != nil {
			return cpu.Result{}, ctx.Err()
		}
		if !p.available(time.Now()) {
			break // breaker opened (or probes flipped): stop hammering
		}
	}
	return cpu.Result{}, lastErr
}

// callOnce performs one forwarded call, hedged when configured: if the
// first request has not answered within HedgeAfter, an identical second
// one races it and the first success wins (the loser's context is
// cancelled). Hedging trades a little duplicate work for the tail — a
// deduplicating, content-addressed receiver makes the duplicate harmless.
func (c *Cluster) callOnce(ctx context.Context, p *peer, preq PointRequest) (cpu.Result, error) {
	if c.opts.HedgeAfter <= 0 {
		return c.client.RunPoint(ctx, p.url, preq)
	}
	type outcome struct {
		res cpu.Result
		err error
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, 2)
	launch := func() {
		go func() {
			res, err := c.client.RunPoint(hctx, p.url, preq)
			ch <- outcome{res, err}
		}()
	}
	launch()
	pending := 1
	hedged := false
	timer := time.NewTimer(c.opts.HedgeAfter)
	defer timer.Stop()
	var lastErr error
	for {
		select {
		case out := <-ch:
			pending--
			if out.err == nil {
				return out.res, nil
			}
			lastErr = out.err
			if pending == 0 {
				if !hedged {
					return cpu.Result{}, lastErr
				}
				return cpu.Result{}, lastErr
			}
		case <-timer.C:
			if !hedged {
				hedged = true
				c.hedges.Add(1)
				launch()
				pending++
			}
		case <-hctx.Done():
			return cpu.Result{}, hctx.Err()
		}
	}
}
