package server

// Durable-campaign routes: asynchronous sweeps as first-class handles.
//
//	POST   /v1/campaigns               submit a grid, get a handle (202)
//	GET    /v1/campaigns               list campaign statuses
//	GET    /v1/campaigns/{id}          one campaign's status/progress
//	GET    /v1/campaigns/{id}/results  stream completed points as NDJSON,
//	                                   resumable via ?after=<cursor>;
//	                                   ?format=json|csv exports the final
//	                                   deterministic artifact once done
//	DELETE /v1/campaigns/{id}          cancel (resumes on daemon restart)
//
// Campaign submissions bypass the admission gate: the gate bounds
// synchronous request-scoped simulation work, while campaigns are bounded
// by the manager's MaxActive (429 past it) and execute on the engine's own
// worker pool. Result streams hold no simulation capacity either — every
// record they serve is a cache or disk-store hit.

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"malec/internal/engine"
)

// campaignRequest is the POST /v1/campaigns body.
type campaignRequest struct {
	gridRequest
	// Retries bounds per-job retry attempts before a point is declared
	// failed (default: the manager's default, 2).
	Retries int `json:"retries"`
}

// handleCampaignCreate implements POST /v1/campaigns: validate the grid,
// register a durable campaign, return its handle immediately.
func (s *Server) handleCampaignCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req campaignRequest
	if !readBody(w, r, &req) {
		return
	}
	cfgs, err := s.resolveGrid(&req.gridRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	run, err := s.camps.Start(engine.CampaignSpec{
		Configs:      cfgs,
		Benchmarks:   req.Benchmarks,
		Instructions: req.Instructions,
		Seeds:        req.Seeds,
		Retries:      req.Retries,
	})
	if err != nil {
		if errors.Is(err, engine.ErrTooManyCampaigns) {
			w.Header().Set("Retry-After", "5")
			writeError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, run.Status())
}

// handleCampaignList implements GET /v1/campaigns.
func (s *Server) handleCampaignList(w http.ResponseWriter, r *http.Request) {
	runs := s.camps.List()
	statuses := make([]engine.CampaignStatus, 0, len(runs))
	for _, run := range runs {
		statuses = append(statuses, run.Status())
	}
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": statuses})
}

// campaign resolves the {id} path value, writing 404 on a miss.
func (s *Server) campaign(w http.ResponseWriter, r *http.Request) (*engine.CampaignRun, bool) {
	id := r.PathValue("id")
	run, ok := s.camps.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign %q", id)
	}
	return run, ok
}

// handleCampaignStatus implements GET /v1/campaigns/{id}.
func (s *Server) handleCampaignStatus(w http.ResponseWriter, r *http.Request) {
	run, ok := s.campaign(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, run.Status())
}

// handleCampaignCancel implements DELETE /v1/campaigns/{id}: stop the
// campaign's remaining work. The journal stays (without a completion
// marker), so a daemon restart resumes the campaign; retention prunes it.
func (s *Server) handleCampaignCancel(w http.ResponseWriter, r *http.Request) {
	run, ok := s.campaign(w, r)
	if !ok {
		return
	}
	s.camps.Cancel(run.ID())
	writeJSON(w, http.StatusOK, run.Status())
}

// resultLine is one streamed NDJSON record: the resume cursor followed by
// the point's result, flat (the same fields as an export row).
type resultLine struct {
	Seq uint64 `json:"seq"`
	engine.JobResult
}

// heartbeatLine keeps an idle stream's connection warm and tells the
// client the cursor it would resume from.
type heartbeatLine struct {
	Heartbeat bool   `json:"heartbeat"`
	Cursor    uint64 `json:"cursor"`
}

// doneLine terminates a stream whose campaign reached a terminal state.
type doneLine struct {
	Done      bool                 `json:"done"`
	State     engine.CampaignState `json:"state"`
	Cursor    uint64               `json:"cursor"`
	Completed int                  `json:"completed"`
	Failed    int                  `json:"failed"`
}

// handleCampaignResults implements GET /v1/campaigns/{id}/results: by
// default an NDJSON stream of completed points from cursor ?after (live —
// it follows the campaign until done); with ?format=json|csv the final
// byte-identical export, available only once the campaign is done (409
// before that).
func (s *Server) handleCampaignResults(w http.ResponseWriter, r *http.Request) {
	run, ok := s.campaign(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	var after uint64
	if v := q.Get("after"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid cursor %q", v)
			return
		}
		after = n
	}
	if !run.ValidCursor(after) {
		writeError(w, http.StatusBadRequest,
			"cursor %d was never issued by campaign %s (status cursor tells you the latest)", after, run.ID())
		return
	}
	switch q.Get("format") {
	case "", "ndjson":
		s.streamResults(w, r, run, after)
	case "json", "csv":
		s.exportResults(w, r, run, q.Get("format"))
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (ndjson, json or csv)", q.Get("format"))
	}
}

// streamResults follows a campaign from a cursor: drain everything already
// recorded, then block for new completions, emitting heartbeats while
// idle. Each record line carries its cursor, so a disconnected client
// resumes with ?after=<last seq seen> and misses nothing — records are
// fetched from the engine (memory/disk hits), never recomputed.
func (s *Server) streamResults(w http.ResponseWriter, r *http.Request, run *engine.CampaignRun, after uint64) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	flush := func() {
		if fl != nil {
			fl.Flush()
		}
	}
	enc := json.NewEncoder(w)
	hb := time.NewTimer(s.opts.StreamHeartbeat)
	defer hb.Stop()
	cursor := after
	for {
		recs, state, changed := run.RecordsAfter(cursor)
		for _, rec := range recs {
			jr, err := run.Fetch(r.Context(), rec)
			if err != nil {
				return // disconnect or engine failure: the client re-resumes
			}
			if enc.Encode(resultLine{Seq: rec.Seq, JobResult: jr}) != nil {
				return
			}
			cursor = rec.Seq
		}
		if len(recs) > 0 {
			flush()
		}
		if state != engine.CampaignRunning {
			st := run.Status()
			enc.Encode(doneLine{ //nolint:errcheck // terminal line; nothing left to report
				Done:      true,
				State:     state,
				Cursor:    cursor,
				Completed: st.Completed,
				Failed:    st.Failed,
			})
			flush()
			return
		}
		if !hb.Stop() {
			select {
			case <-hb.C:
			default:
			}
		}
		hb.Reset(s.opts.StreamHeartbeat)
		select {
		case <-changed:
		case <-hb.C:
			if enc.Encode(heartbeatLine{Heartbeat: true, Cursor: cursor}) != nil {
				return
			}
			flush()
		case <-r.Context().Done():
			return
		}
	}
}

// exportResults serves the campaign's final deterministic artifact. Only a
// done campaign exports (409 otherwise): a partial export could never be
// byte-identical to the finished one.
func (s *Server) exportResults(w http.ResponseWriter, r *http.Request, run *engine.CampaignRun, format string) {
	ctx, cancel := s.requestContext(r, 0)
	defer cancel()
	camp, err := run.Export(ctx)
	if err != nil {
		if errors.Is(err, engine.ErrCampaignNotDone) {
			writeError(w, http.StatusConflict,
				"campaign %s is %s; exports require state done (stream with the default format instead)",
				run.ID(), run.Status().State)
			return
		}
		s.writeSimError(w, err)
		return
	}
	if format == "csv" {
		w.Header().Set("Content-Type", "text/csv")
		w.WriteHeader(http.StatusOK)
		camp.WriteCSV(w) //nolint:errcheck // headers sent; nothing left to report
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"jobs":    len(camp.Results),
		"results": camp.Results,
	})
}
