package server

// Robustness tests for the serving layer: admission control (shedding,
// per-client caps, drain), deadlines, client disconnects, readiness, and
// the HTTP error paths (oversized body, malformed JSON, bad method) with
// their metric side effects.

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"malec/internal/config"
	"malec/internal/cpu"
	"malec/internal/engine"
)

// newBlockingServer wires a server over a context-aware simulate stub that
// signals entry on entered and blocks until release closes or its context
// is cancelled.
func newBlockingServer(t *testing.T, opts Options, entered chan struct{}, release chan struct{}) (*httptest.Server, *Server, *engine.Engine) {
	t.Helper()
	sim := func(ctx context.Context, cfg config.Config, b string, n int, s uint64) (cpu.Result, error) {
		select {
		case entered <- struct{}{}:
		default:
		}
		select {
		case <-ctx.Done():
			return cpu.Result{}, ctx.Err()
		case <-release:
			return cpu.Result{Config: cfg.Name, Benchmark: b, Cycles: 777}, nil
		}
	}
	eng := engine.New(engine.Options{Workers: 8, SimulateContext: sim})
	srv := New(eng, opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv, eng
}

// metricsText scrapes GET /metrics and returns the exposition body.
func metricsText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

const runBody = `{"config":"MALEC","benchmark":"gzip","instructions":1000,"seed":1}`

func TestOversizedBodyRejected(t *testing.T) {
	ts, _ := newTestServer(t, nil, Options{})

	big := `{"config":"` + strings.Repeat("x", maxBodyBytes+1) + `"}`
	resp, raw := post(t, ts.URL+"/v1/run", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d (%s), want 413", resp.StatusCode, raw)
	}

	// The rejection shows up in the per-endpoint 4xx counter.
	m := metricsText(t, ts.URL)
	want := `malecd_http_requests_total{endpoint="/v1/run",code="4xx"} 1`
	if !strings.Contains(m, want) {
		t.Fatalf("/metrics missing %q after oversized body", want)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t, nil, Options{})
	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/run status = %d, want 405", resp.StatusCode)
	}
}

func TestClientDisconnectCancelsSimulation(t *testing.T) {
	entered := make(chan struct{}, 1)
	ts, _, eng := newBlockingServer(t, Options{}, entered, nil)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/run",
		strings.NewReader(runBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	// Wait for the simulation to start, then hang up.
	<-entered
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("request succeeded despite client disconnect")
	}

	// The disconnect propagates into the engine: the detached job observes
	// the cancellation and the counter moves.
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().Cancelled == 0 {
		if time.Now().After(deadline) {
			t.Fatal("engine Cancelled counter never moved after client disconnect")
		}
		runtime.Gosched()
	}
}

func TestDeadlineMsTimesOut(t *testing.T) {
	entered := make(chan struct{}, 1)
	ts, _, _ := newBlockingServer(t, Options{}, entered, nil)

	body := `{"config":"MALEC","benchmark":"gzip","instructions":1000,"seed":1,"deadline_ms":50}`
	resp, raw := post(t, ts.URL+"/v1/run", body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", resp.StatusCode, raw)
	}
	m := metricsText(t, ts.URL)
	if !strings.Contains(m, "malecd_timeouts_total 1") {
		t.Fatal("/metrics missing malecd_timeouts_total 1 after deadline")
	}
}

func TestServerRequestTimeout(t *testing.T) {
	entered := make(chan struct{}, 1)
	ts, _, _ := newBlockingServer(t, Options{RequestTimeout: 50 * time.Millisecond}, entered, nil)
	resp, raw := post(t, ts.URL+"/v1/run", runBody)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", resp.StatusCode, raw)
	}
}

func TestQueueFullShedsWithRetryAfter(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	// One slot, no queue: the second concurrent request sheds immediately.
	ts, _, _ := newBlockingServer(t, Options{MaxConcurrent: 1, MaxQueueDepth: -1},
		entered, release)

	first := make(chan int, 1)
	go func() {
		resp, _ := post(t, ts.URL+"/v1/run", runBody)
		first <- resp.StatusCode
	}()
	<-entered

	resp, raw := post(t, ts.URL+"/v1/run",
		`{"config":"MALEC","benchmark":"gzip","instructions":1000,"seed":2}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d (%s), want 429", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	close(release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("admitted request status = %d, want 200", code)
	}
	m := metricsText(t, ts.URL)
	if !strings.Contains(m, `malecd_shed_total{reason="queue_full"} 1`) {
		t.Fatal("/metrics missing queue_full shed counter")
	}
}

func TestQueueWaitShedsWhenSlotNeverFrees(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	ts, _, _ := newBlockingServer(t,
		Options{MaxConcurrent: 1, MaxQueueDepth: 4, MaxQueueWait: 50 * time.Millisecond},
		entered, release)
	defer close(release)

	first := make(chan struct{})
	go func() {
		post(t, ts.URL+"/v1/run", runBody)
		close(first)
	}()
	<-entered

	resp, raw := post(t, ts.URL+"/v1/run",
		`{"config":"MALEC","benchmark":"gzip","instructions":1000,"seed":2}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queued-too-long status = %d (%s), want 429", resp.StatusCode, raw)
	}
	m := metricsText(t, ts.URL)
	if !strings.Contains(m, `malecd_shed_total{reason="queue_wait"} 1`) {
		t.Fatal("/metrics missing queue_wait shed counter")
	}
}

func TestPerClientConcurrencyCap(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	ts, _, _ := newBlockingServer(t, Options{PerClientConcurrency: 1}, entered, release)
	defer close(release)

	do := func(apiKey, body string) (*http.Response, error) {
		req, err := http.NewRequest("POST", ts.URL+"/v1/run", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-API-Key", apiKey)
		return http.DefaultClient.Do(req)
	}

	started := make(chan struct{})
	go func() {
		close(started)
		resp, err := do("alice", runBody)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	<-entered

	// Same key: over the cap, shed. Different key: admitted (and since the
	// point is distinct it blocks, so use a short client-side deadline and
	// only check it was not rejected with 429).
	resp, err := do("alice", `{"config":"MALEC","benchmark":"gzip","instructions":1000,"seed":9}`)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("same-key status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("per-client shed missing Retry-After")
	}

	otherDone := make(chan int, 1)
	go func() {
		resp, err := do("bob", `{"config":"MALEC","benchmark":"gzip","instructions":1000,"seed":8}`)
		if err != nil {
			otherDone <- -1
			return
		}
		resp.Body.Close()
		otherDone <- resp.StatusCode
	}()
	select {
	case code := <-otherDone:
		// Only possible once release closes below — but never a shed.
		if code == http.StatusTooManyRequests {
			t.Fatal("distinct client shed by another client's cap")
		}
	case <-time.After(100 * time.Millisecond):
		// Still blocked in the simulator: admitted past the per-client gate.
	}
}

func TestDrainingShedsAndReadyzFails(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	ts2, srv2, _ := newBlockingServer(t, Options{}, entered, release)
	defer close(release)
	_ = entered

	// Before drain: ready.
	resp := get(t, ts2.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz before drain = %d, want 200", resp.StatusCode)
	}

	srv2.StartDraining()

	resp = get(t, ts2.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d, want 503", resp.StatusCode)
	}
	resp = get(t, ts2.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200 (liveness stays green)", resp.StatusCode)
	}

	r2, raw := post(t, ts2.URL+"/v1/run", runBody)
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/v1/run during drain = %d (%s), want 503", r2.StatusCode, raw)
	}
	if r2.Header.Get("Retry-After") == "" {
		t.Fatal("drain shed missing Retry-After")
	}
	m := metricsText(t, ts2.URL)
	if !strings.Contains(m, `malecd_shed_total{reason="draining"} 1`) {
		t.Fatal("/metrics missing draining shed counter")
	}
}

func TestNotReadyBeforeInit(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 1, Simulate: func(cfg config.Config, b string, n int, s uint64) cpu.Result {
		return cpu.Result{}
	}})
	srv := New(eng, Options{})
	srv.SetReady(false)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before ready = %d, want 503", rec.Code)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte("starting")) {
		t.Fatalf("/readyz body = %s, want starting", rec.Body.String())
	}
}

func TestSimPanicReturns500NotCrash(t *testing.T) {
	var calls atomic.Int64
	sim := func(cfg config.Config, b string, n int, s uint64) cpu.Result {
		calls.Add(1)
		panic("boom")
	}
	ts, eng := newTestServer(t, sim, Options{})

	resp, raw := post(t, ts.URL+"/v1/run", runBody)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d (%s), want 500", resp.StatusCode, raw)
	}
	if !bytes.Contains(raw, []byte("panic")) {
		t.Fatalf("body = %s, want structured panic error", raw)
	}
	// The key is quarantined: the repeat fails fast without re-running.
	resp, _ = post(t, ts.URL+"/v1/run", runBody)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("repeat status = %d, want 500", resp.StatusCode)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("panicking simulate ran %d times, want 1", n)
	}
	if st := eng.Stats(); st.Panics != 1 || st.Quarantined != 1 {
		t.Fatalf("stats = {Panics:%d Quarantined:%d}, want {1 1}", st.Panics, st.Quarantined)
	}
	m := metricsText(t, ts.URL)
	if !strings.Contains(m, "malec_engine_panics_total 1") {
		t.Fatal("/metrics missing malec_engine_panics_total 1")
	}
}
