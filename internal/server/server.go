// Package server implements the malecd HTTP API: a thin JSON layer over
// the campaign engine. Every request runs against one shared engine, so
// concurrent clients asking for the same simulation point share a single
// simulation (singleflight) and repeated requests are cache hits.
//
// Endpoints:
//
//	GET  /healthz        liveness probe
//	GET  /metrics        Prometheus text exposition (latency histograms,
//	                     per-endpoint counters, engine cache/dedup/trace
//	                     counters, scheduler queue depth)
//	GET  /v1/configs     preset configuration names
//	GET  /v1/benchmarks  benchmark workloads with their suites
//	GET  /v1/stats       engine cache/scheduler counters + serving summary
//	POST /v1/run         one simulation point
//	POST /v1/sweep       a config x benchmark x seed campaign (JSON or CSV)
//
// Every route is instrumented by middleware (metrics.go): request
// counters by status class, an in-flight gauge and a latency histogram
// per endpoint, all allocation-free on the request path.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"malec/internal/cluster"
	"malec/internal/config"
	"malec/internal/cpu"
	"malec/internal/engine"
	"malec/internal/metrics"
	"malec/internal/trace"
)

// Version identifies this build in malec_build_info and logs.
const Version = "0.10.0"

// Options bounds what the service accepts. The zero value is usable.
type Options struct {
	// MaxInstructions caps the instruction count of a single simulation
	// point (default 5e6). Simulation time is linear in instructions;
	// the cap keeps one request from monopolizing workers.
	MaxInstructions int
	// MaxSweepJobs caps the number of jobs one sweep may expand to
	// (default 4096).
	MaxSweepJobs int
	// RequestTimeout bounds the server-side processing time of
	// simulation-bearing requests (/v1/run, /v1/sweep); past it the
	// simulation is cancelled and the client gets 504. A request's own
	// deadline_ms tightens it further, never loosens it. Zero disables.
	RequestTimeout time.Duration
	// MaxConcurrent bounds how many simulation-bearing requests are
	// admitted at once; excess requests queue (see MaxQueueDepth) and are
	// shed with 429 + Retry-After past the bounds. Zero disables the gate
	// and its queue.
	MaxConcurrent int
	// MaxQueueDepth bounds admitted-queue waiters beyond MaxConcurrent
	// (default 64 when the gate is on; negative means shed immediately
	// when the gate is full).
	MaxQueueDepth int
	// MaxQueueWait bounds how long a queued request waits for the gate
	// before being shed (default 5s when the gate is on).
	MaxQueueWait time.Duration
	// PerClientConcurrency caps concurrent simulation-bearing requests
	// per client (X-API-Key header, else remote address), so one client's
	// sweep burst cannot starve everyone else's interactive traffic. Zero
	// disables.
	PerClientConcurrency int
	// Campaigns serves the durable-campaign routes (/v1/campaigns). Nil
	// creates an in-memory manager over the engine: asynchronous and
	// streamable, but not crash-durable (malecd wires a journaled one).
	Campaigns *engine.CampaignManager
	// StreamHeartbeat is the idle interval after which a campaign results
	// stream emits a heartbeat line, keeping intermediaries from timing
	// out a quiet long-poll (default 10s).
	StreamHeartbeat time.Duration
	// Cluster, when set, enrolls this server in a malecd cluster: the
	// internal point API (/internal/v1/point) is served, the engine's
	// remote hook routes non-owned points to their owner replicas, and
	// the cluster's routing counters join /metrics and /v1/stats.
	Cluster *cluster.Cluster
}

// normalize applies option defaults.
func (o Options) normalize() Options {
	if o.MaxInstructions <= 0 {
		o.MaxInstructions = 5_000_000
	}
	if o.MaxSweepJobs <= 0 {
		o.MaxSweepJobs = 4096
	}
	if o.MaxConcurrent > 0 {
		if o.MaxQueueDepth == 0 {
			o.MaxQueueDepth = 64
		}
		if o.MaxQueueWait <= 0 {
			o.MaxQueueWait = 5 * time.Second
		}
	}
	if o.StreamHeartbeat <= 0 {
		o.StreamHeartbeat = 10 * time.Second
	}
	return o
}

// Server is the malecd HTTP handler.
type Server struct {
	eng   *engine.Engine
	opts  Options
	camps *engine.CampaignManager
	clu   *cluster.Cluster
	mux   *http.ServeMux
	reg   *metrics.Registry
	start time.Time
	adm   *admission
	// ready and draining drive /readyz: not-ready before initialization
	// completes, draining once shutdown has begun. Liveness (/healthz)
	// stays green through both.
	ready    atomic.Bool
	draining atomic.Bool
	// timeouts counts simulation-bearing requests that hit their deadline
	// (malecd_timeouts_total).
	timeouts *metrics.Counter
	// endpoints lists every instrumented route in registration order,
	// for the /v1/stats serving summary.
	endpoints []routeMetrics
}

// New returns a handler serving the malecd API on eng.
func New(eng *engine.Engine, opts Options) *Server {
	s := &Server{
		eng:   eng,
		opts:  opts.normalize(),
		mux:   http.NewServeMux(),
		reg:   metrics.NewRegistry(),
		start: time.Now(),
	}
	s.camps = s.opts.Campaigns
	if s.camps == nil {
		s.camps = engine.NewCampaignManager(eng, engine.CampaignManagerOptions{})
	}
	s.adm = newAdmission(s.opts, s.reg)
	s.timeouts = s.reg.Counter("malecd_timeouts_total",
		"Simulation-bearing requests cancelled at their deadline.")
	s.handle("GET", "/healthz", s.handleHealthz)
	s.handle("GET", "/readyz", s.handleReadyz)
	s.handle("GET", "/metrics", s.handleMetrics)
	s.handle("GET", "/v1/configs", s.handleConfigs)
	s.handle("GET", "/v1/benchmarks", s.handleBenchmarks)
	s.handle("GET", "/v1/stats", s.handleStats)
	s.handle("POST", "/v1/run", s.handleRun)
	s.handle("POST", "/v1/sweep", s.handleSweep)
	s.handle("POST", "/v1/campaigns", s.handleCampaignCreate)
	s.handle("GET", "/v1/campaigns", s.handleCampaignList)
	s.handle("GET", "/v1/campaigns/{id}", s.handleCampaignStatus)
	s.handle("GET", "/v1/campaigns/{id}/results", s.handleCampaignResults)
	s.handle("DELETE", "/v1/campaigns/{id}", s.handleCampaignCancel)
	s.registerEngineMetrics()
	s.registerCampaignMetrics()
	metrics.RegisterBuildInfo(s.reg, Version)
	metrics.RegisterRuntime(s.reg)
	if s.opts.Cluster != nil {
		s.clu = s.opts.Cluster
		s.handle("POST", "/internal/v1/point", s.handleInternalPoint)
		clu := s.clu
		eng.SetRemote(func(ctx context.Context, key engine.Key, cfg config.Config, benchmark string, instructions int, seed uint64) (cpu.Result, bool, error) {
			return clu.Route(ctx, key.String(), cfg, benchmark, instructions, seed)
		})
		s.registerClusterMetrics()
	}
	// The handler is fully wired over a constructed engine; readiness
	// from here on is a question of drain state.
	s.ready.Store(true)
	return s
}

// Metrics exposes the server's metrics registry (tests, embedding).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// SetReady overrides the readiness state (embedding servers that finish
// initialization after New).
func (s *Server) SetReady(v bool) { s.ready.Store(v) }

// StartDraining flips the server into drain mode: /readyz starts failing
// so load balancers stop routing here, and new simulation-bearing
// requests are rejected with 503 while in-flight ones finish.
func (s *Server) StartDraining() { s.draining.Store(true) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers sent; nothing left to report
}

// writeError writes a JSON error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// maxBodyBytes bounds request bodies: far above any legitimate run or
// sweep spec, far below anything that could pressure memory.
const maxBodyBytes = 1 << 20

// readBody decodes a JSON request body into v, rejecting unknown fields so
// client typos fail loudly instead of silently running defaults. Oversized
// bodies are cut off by http.MaxBytesReader (which also closes the
// connection) and reported as 413.
func readBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", mbe.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

// handleHealthz implements GET /healthz: pure liveness, green as long as
// the process serves HTTP — including during drain.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz implements GET /readyz: readiness for traffic. It fails
// before initialization completes and during drain, so orchestrators and
// the CI drain check can distinguish "alive" from "routable".
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case !s.ready.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "starting"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// requestContext derives the simulation context for one request: the
// client's request context (cancelled on disconnect) bounded by the
// server's RequestTimeout and the request's own deadline_ms, whichever is
// sooner.
func (s *Server) requestContext(r *http.Request, deadlineMs int) (context.Context, context.CancelFunc) {
	d := s.opts.RequestTimeout
	if deadlineMs > 0 {
		rd := time.Duration(deadlineMs) * time.Millisecond
		if d == 0 || rd < d {
			d = rd
		}
	}
	if d <= 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), d)
}

// writeSimError maps a simulation-path error to its response: deadline →
// 504 (counted in malecd_timeouts_total), client disconnect → 499,
// contained panic or anything else → 500.
func (s *Server) writeSimError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Inc()
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded")
	case errors.Is(err, context.Canceled):
		writeError(w, statusClientClosedRequest, "client closed request")
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// handleConfigs implements GET /v1/configs.
func (s *Server) handleConfigs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"configs": config.Names()})
}

// benchmarkInfo is one /v1/benchmarks entry.
type benchmarkInfo struct {
	Name  string `json:"name"`
	Suite string `json:"suite"`
}

// handleBenchmarks implements GET /v1/benchmarks.
func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	var list []benchmarkInfo
	for _, name := range trace.AllBenchmarks() {
		list = append(list, benchmarkInfo{Name: name, Suite: trace.Profiles[name].Suite})
	}
	writeJSON(w, http.StatusOK, map[string]any{"benchmarks": list})
}

// statsResponse is the GET /v1/stats reply: the engine's counters at the
// top level exactly as before (the embedded struct marshals flat, so no
// existing field name moves), plus the serving-layer summary under
// "serving".
type statsResponse struct {
	engine.Stats
	Serving servingStats   `json:"serving"`
	Cluster *cluster.Stats `json:"cluster,omitempty"`
}

// handleStats implements GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		Stats:   s.eng.Stats(),
		Serving: s.servingSnapshot(),
	}
	if s.clu != nil {
		cs := s.clu.Stats()
		resp.Cluster = &cs
	}
	writeJSON(w, http.StatusOK, resp)
}

// runRequest is the POST /v1/run body. Seed is a pointer so an explicit 0
// is distinguishable from an omitted field: seed 0 is a valid workload
// instance, and /v1/sweep runs it as given.
type runRequest struct {
	Config       string  `json:"config"`
	Benchmark    string  `json:"benchmark"`
	Instructions int     `json:"instructions"`
	Seed         *uint64 `json:"seed"`
	// DeadlineMs, when positive, bounds this request's processing time in
	// milliseconds; it can only tighten the server's -request-timeout.
	// Past the deadline the simulation is cancelled and the reply is 504.
	DeadlineMs int `json:"deadline_ms"`
	// Sampling, when present, switches the run to the sampled fast path
	// (SMARTS-style interval sampling; see README "Sampled simulation").
	// The result becomes an estimate — sampled and exact runs cache under
	// different keys — and the estimate metadata (window count, 95%
	// confidence intervals, checkpoint reuse) comes back in the
	// response's "sampling" field.
	Sampling *config.Sampling `json:"sampling"`
}

// runResponse is the POST /v1/run reply.
type runResponse struct {
	Key      engine.Key            `json:"key"`
	Source   engine.Source         `json:"source"`
	Cached   bool                  `json:"cached"`
	Result   any                   `json:"result"`
	Sampling *cpu.SamplingEstimate `json:"sampling,omitempty"`
}

// validSampling checks a request's sampling schedule.
func validSampling(s *config.Sampling) error {
	if s != nil && !s.Valid() {
		return fmt.Errorf("invalid sampling schedule (warmup=%d detail=%d interval=%d): need warmup >= 0, detail > 0, warmup+detail <= interval",
			s.Warmup, s.Detail, s.Interval)
	}
	return nil
}

// resolveRun validates a runRequest against the registry and limits and
// returns the resolved config and seed.
func (s *Server) resolveRun(req *runRequest) (config.Config, uint64, error) {
	cfg, ok := config.Named(req.Config)
	if !ok {
		return config.Config{}, 0, fmt.Errorf("unknown config %q (see /v1/configs)", req.Config)
	}
	if _, ok := trace.Profiles[req.Benchmark]; !ok {
		return config.Config{}, 0, fmt.Errorf("unknown benchmark %q (see /v1/benchmarks)", req.Benchmark)
	}
	if req.Instructions <= 0 {
		req.Instructions = engine.DefaultInstructions
	}
	if req.Instructions > s.opts.MaxInstructions {
		return config.Config{}, 0, fmt.Errorf("instructions %d exceeds limit %d", req.Instructions, s.opts.MaxInstructions)
	}
	if err := validSampling(req.Sampling); err != nil {
		return config.Config{}, 0, err
	}
	cfg.Sampling = req.Sampling
	seed := uint64(1)
	if req.Seed != nil {
		seed = *req.Seed
	}
	return cfg, seed, nil
}

// handleRun implements POST /v1/run.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	release, ok := s.adm.admit(w, r, s.draining.Load())
	if !ok {
		return
	}
	defer release()
	var req runRequest
	if !readBody(w, r, &req) {
		return
	}
	cfg, seed, err := s.resolveRun(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	bench := req.Benchmark
	ctx, cancel := s.requestContext(r, req.DeadlineMs)
	defer cancel()
	res, src, err := s.eng.RunContext(ctx, cfg, bench, req.Instructions, seed)
	if err != nil {
		s.writeSimError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, runResponse{
		Key:      engine.KeyFor(cfg, bench, req.Instructions, seed),
		Source:   src,
		Cached:   src != engine.SourceSimulated && src != engine.SourceRemote,
		Result:   res,
		Sampling: res.Sampling,
	})
}

// gridRequest is the config x benchmark x seed grid shared by the sweep
// and campaign request bodies.
type gridRequest struct {
	Configs      []string `json:"configs"`
	Benchmarks   []string `json:"benchmarks"`
	Instructions int      `json:"instructions"`
	Seeds        []uint64 `json:"seeds"`
	// Sampling, when present, runs every point of the grid on the
	// sampled fast path — the quality tier for large grids: core-side
	// config variants share warmed checkpoints, so only the first config
	// per (benchmark, seed) pays the functional-warming pass.
	Sampling *config.Sampling `json:"sampling"`
}

// resolveGrid validates a grid against the registry and limits, returning
// the resolved configs. req.Instructions is normalized in place to its
// effective value (mirroring CampaignSpec.normalize), so the limit check
// and the campaign spec can never disagree.
func (s *Server) resolveGrid(req *gridRequest) ([]config.Config, error) {
	if len(req.Configs) == 0 {
		return nil, fmt.Errorf("configs is required (see /v1/configs)")
	}
	if err := validSampling(req.Sampling); err != nil {
		return nil, err
	}
	cfgs := make([]config.Config, 0, len(req.Configs))
	for _, name := range req.Configs {
		cfg, ok := config.Named(name)
		if !ok {
			return nil, fmt.Errorf("unknown config %q (see /v1/configs)", name)
		}
		cfg.Sampling = req.Sampling
		cfgs = append(cfgs, cfg)
	}
	// Unknown benchmarks are rejected by CampaignSpec.normalize — no
	// duplicate validation here, so the two can't drift.
	if req.Instructions <= 0 {
		req.Instructions = engine.DefaultInstructions
	}
	if req.Instructions > s.opts.MaxInstructions {
		return nil, fmt.Errorf("instructions %d exceeds limit %d", req.Instructions, s.opts.MaxInstructions)
	}
	benchmarks := len(req.Benchmarks)
	if benchmarks == 0 {
		benchmarks = len(trace.AllBenchmarks())
	}
	seeds := len(req.Seeds)
	if seeds == 0 {
		seeds = 1
	}
	if jobs := len(cfgs) * benchmarks * seeds; jobs > s.opts.MaxSweepJobs {
		return nil, fmt.Errorf("sweep expands to %d jobs, limit %d", jobs, s.opts.MaxSweepJobs)
	}
	return cfgs, nil
}

// sweepRequest is the POST /v1/sweep body.
type sweepRequest struct {
	gridRequest
	// Format selects the response encoding: "json" (default) or "csv".
	Format string `json:"format"`
	// DeadlineMs bounds the whole sweep's processing time in
	// milliseconds; see runRequest.DeadlineMs.
	DeadlineMs int `json:"deadline_ms"`
}

// handleSweep implements POST /v1/sweep.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	release, ok := s.adm.admit(w, r, s.draining.Load())
	if !ok {
		return
	}
	defer release()
	var req sweepRequest
	if !readBody(w, r, &req) {
		return
	}
	cfgs, err := s.resolveGrid(&req.gridRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Format != "" && req.Format != "json" && req.Format != "csv" {
		writeError(w, http.StatusBadRequest, "unknown format %q (json or csv)", req.Format)
		return
	}

	ctx, cancel := s.requestContext(r, req.DeadlineMs)
	defer cancel()
	camp, err := s.eng.RunCampaignContext(ctx, engine.CampaignSpec{
		Configs:      cfgs,
		Benchmarks:   req.Benchmarks,
		Instructions: req.Instructions,
		Seeds:        req.Seeds,
	})
	if err != nil {
		var pe *engine.PanicError
		switch {
		case errors.As(err, &pe):
			writeError(w, http.StatusInternalServerError, "%v", err)
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			s.writeSimError(w, err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	if req.Format == "csv" {
		w.Header().Set("Content-Type", "text/csv")
		w.WriteHeader(http.StatusOK)
		camp.WriteCSV(w) //nolint:errcheck // headers sent; nothing left to report
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"jobs":    len(camp.Results),
		"results": camp.Results,
	})
}
