package server

// This file is the serving observability layer: per-endpoint request
// counters, in-flight gauges and latency histograms collected around
// every handler, the engine's cache/dedup/trace/scheduler counters
// re-exported at scrape time, and the GET /metrics endpoint rendering
// it all in the Prometheus text exposition format. One scrape tells the
// whole story: HTTP-level load and latency plus what the engine did
// with it.

import (
	"net/http"
	"time"

	"malec/internal/cluster"
	"malec/internal/engine"
	"malec/internal/metrics"
)

// endpointMetrics is the fixed instrument set of one route, resolved at
// registration so request handling performs no label work.
type endpointMetrics struct {
	inFlight *metrics.Gauge
	latency  *metrics.Histogram
	// codes counts finished requests by status class: 2xx, 4xx, 5xx and
	// other (1xx/3xx, never produced today).
	codes [4]*metrics.Counter
}

// codeClasses orders the endpointMetrics.codes counters.
var codeClasses = [4]string{"2xx", "4xx", "5xx", "other"}

// classIndex maps a status code to its codes counter.
func classIndex(code int) int {
	switch {
	case code >= 200 && code < 300:
		return 0
	case code >= 400 && code < 500:
		return 1
	case code >= 500:
		return 2
	}
	return 3
}

// requests returns the endpoint's finished-request total.
func (m *endpointMetrics) requests() uint64 {
	var n uint64
	for _, c := range m.codes {
		n += c.Value()
	}
	return n
}

// errors returns the endpoint's 4xx+5xx total.
func (m *endpointMetrics) errors() uint64 {
	return m.codes[1].Value() + m.codes[2].Value()
}

// newEndpointMetrics registers one route's instruments.
func newEndpointMetrics(reg *metrics.Registry, route string) *endpointMetrics {
	ep := &endpointMetrics{
		inFlight: reg.Gauge("malecd_http_in_flight",
			"Requests currently being handled.",
			metrics.Label{Name: "endpoint", Value: route}),
		latency: reg.Histogram("malecd_http_request_seconds",
			"Request latency by endpoint.", nil,
			metrics.Label{Name: "endpoint", Value: route}),
	}
	for i, class := range codeClasses {
		ep.codes[i] = reg.Counter("malecd_http_requests_total",
			"Requests served by endpoint and status class.",
			metrics.Label{Name: "endpoint", Value: route},
			metrics.Label{Name: "code", Value: class})
	}
	return ep
}

// statusWriter captures the response status for the code-class counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streaming handlers (campaign
// NDJSON results) still reach the wire through the instrumentation wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handle registers an instrumented route on the mux: in-flight gauge
// around the handler, latency observed on completion, status class
// counted from the recorded code. Methods sharing one route pattern
// (GET/DELETE /v1/campaigns/{id}) share one instrument set — the
// endpoint label stays the route, bounding metric cardinality.
func (s *Server) handle(method, route string, h http.HandlerFunc) {
	var ep *endpointMetrics
	for _, e := range s.endpoints {
		if e.route == route {
			ep = e.m
			break
		}
	}
	if ep == nil {
		ep = newEndpointMetrics(s.reg, route)
		s.endpoints = append(s.endpoints, routeMetrics{route: route, m: ep})
	}
	s.mux.HandleFunc(method+" "+route, func(w http.ResponseWriter, r *http.Request) {
		ep.inFlight.Inc()
		defer ep.inFlight.Dec()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r)
		ep.latency.Observe(time.Since(start))
		ep.codes[classIndex(sw.code)].Inc()
	})
}

// routeMetrics pairs a route with its instruments, in registration order
// so /v1/stats renders deterministically.
type routeMetrics struct {
	route string
	m     *endpointMetrics
}

// registerEngineMetrics re-exports the engine's counters as scrape-time
// metrics. One OnScrape hook refreshes a single coherent Stats snapshot
// (instead of one engine lock round-trip per metric), which the
// CounterFunc/GaugeFunc closures read under the registry lock.
func (s *Server) registerEngineMetrics() {
	var st engine.Stats
	s.reg.OnScrape(func() { st = s.eng.Stats() })
	counter := func(name, help string, v func() uint64) {
		s.reg.CounterFunc(name, help, func() float64 { return float64(v()) })
	}
	gauge := func(name, help string, v func() int) {
		s.reg.GaugeFunc(name, help, func() float64 { return float64(v()) })
	}
	counter("malec_engine_cache_hits_total",
		"Requests served from the in-memory result cache.",
		func() uint64 { return st.Hits })
	counter("malec_engine_disk_hits_total",
		"Requests served from the disk result store.",
		func() uint64 { return st.DiskHits })
	counter("malec_engine_dedup_total",
		"Requests attached to an in-flight simulation (singleflight).",
		func() uint64 { return st.Dedup })
	counter("malec_engine_simulations_total",
		"Simulations actually executed.",
		func() uint64 { return st.Simulations })
	counter("malec_engine_trace_hits_total",
		"Simulations served from an already-materialized trace arena.",
		func() uint64 { return st.TraceHits })
	counter("malec_engine_trace_misses_total",
		"Simulations that had to generate (or extend) a trace arena.",
		func() uint64 { return st.TraceMisses })
	counter("malec_engine_checkpoint_hits_total",
		"Sampled-simulation window boundaries served from a warmed checkpoint.",
		func() uint64 { return st.CheckpointHits })
	counter("malec_engine_checkpoint_misses_total",
		"Sampled-simulation window boundaries that had to warm functionally.",
		func() uint64 { return st.CheckpointMisses })
	counter("malec_engine_checkpoint_bytes_read_total",
		"Bytes of warmed checkpoints loaded from the disk store.",
		func() uint64 { return st.CheckpointBytesRead })
	counter("malec_engine_checkpoint_bytes_written_total",
		"Bytes of warmed checkpoints persisted to the disk store.",
		func() uint64 { return st.CheckpointBytesWritten })
	counter("malec_engine_cancelled_total",
		"In-flight simulations abandoned because every caller went away.",
		func() uint64 { return st.Cancelled })
	counter("malec_engine_panics_total",
		"Simulation panics contained as structured per-job errors.",
		func() uint64 { return st.Panics })
	counter("malec_engine_quarantined_total",
		"Poisoned keys plus corrupt store entries quarantined aside.",
		func() uint64 { return st.Quarantined })
	counter("malec_engine_corrupt_pruned_total",
		".corrupt quarantine files removed by retention sweeps.",
		func() uint64 { return st.CorruptPruned })
	gauge("malec_engine_poisoned_keys",
		"Keys currently quarantined after a simulation panic.",
		func() int { return st.PoisonedKeys })
	gauge("malec_engine_cache_entries",
		"Current in-memory result cache size.",
		func() int { return st.Entries })
	gauge("malec_engine_trace_records",
		"Trace records resident in the materialized-trace cache.",
		func() int { return st.TraceRecords })
	gauge("malec_engine_queue_depth",
		"Simulations waiting for a worker slot.",
		func() int { return st.QueueDepth })
	gauge("malec_engine_running",
		"Simulations executing right now.",
		func() int { return st.Running })
	s.reg.GaugeFunc("malecd_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
}

// registerCampaignMetrics re-exports the campaign manager's counters,
// refreshed as one coherent snapshot per scrape like the engine's.
func (s *Server) registerCampaignMetrics() {
	var st engine.CampaignManagerStats
	s.reg.OnScrape(func() { st = s.camps.Stats() })
	s.reg.GaugeFunc("malec_campaigns_active",
		"Campaigns currently running.",
		func() float64 { return float64(st.Active) })
	s.reg.GaugeFunc("malec_campaigns_known",
		"Campaigns registered (running + finished).",
		func() float64 { return float64(st.Campaigns) })
	s.reg.CounterFunc("malec_campaign_retries_total",
		"Per-job retry attempts across all campaigns.",
		func() float64 { return float64(st.Retries) })
	s.reg.CounterFunc("malec_campaign_failed_points_total",
		"Campaign jobs that exhausted their retries.",
		func() float64 { return float64(st.FailedPoints) })
	s.reg.CounterFunc("malec_campaign_replayed_points_total",
		"Journaled points re-admitted at startup without recomputation.",
		func() float64 { return float64(st.ReplayedPoints) })
	s.reg.CounterFunc("malec_campaign_journal_torn_total",
		"Torn/corrupt journal tail bytes truncated during replay.",
		func() float64 { return float64(st.JournalTorn) })
	s.reg.CounterFunc("malec_campaign_journals_pruned_total",
		"Completed campaign journals removed by retention sweeps.",
		func() float64 { return float64(st.JournalsPruned) })
}

// registerClusterMetrics re-exports the cluster's routing counters,
// refreshed as one coherent snapshot per scrape like the engine's.
func (s *Server) registerClusterMetrics() {
	var st cluster.Stats
	s.reg.OnScrape(func() { st = s.clu.Stats() })
	s.reg.GaugeFunc("malec_cluster_nodes",
		"Cluster members (self included).",
		func() float64 { return float64(st.Nodes) })
	s.reg.GaugeFunc("malec_cluster_peers_healthy",
		"Remote peers currently passing health probes.",
		func() float64 { return float64(st.PeersHealthy) })
	s.reg.GaugeFunc("malec_cluster_breakers_open",
		"Peers whose circuit breakers are currently open.",
		func() float64 { return float64(st.BreakersOpen) })
	s.reg.CounterFunc("malec_cluster_forwarded_total",
		"Points successfully executed on a peer.",
		func() float64 { return float64(st.Forwarded) })
	s.reg.CounterFunc("malec_cluster_forward_errors_total",
		"Failed forwarded-call attempts (each failed retry counts once).",
		func() float64 { return float64(st.ForwardErrors) })
	s.reg.CounterFunc("malec_cluster_failovers_total",
		"Points not served by their primary owner (re-homed or run locally).",
		func() float64 { return float64(st.Failovers) })
	s.reg.CounterFunc("malec_cluster_hedges_total",
		"Hedged (second, raced) forwarded calls launched.",
		func() float64 { return float64(st.Hedges) })
}

// handleMetrics implements GET /metrics (Prometheus text exposition).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w) //nolint:errcheck // headers sent; nothing left to report
}

// servingStats is the serving-layer section folded into /v1/stats.
type servingStats struct {
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// Requests and Errors aggregate all endpoints (errors: 4xx+5xx).
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	// Endpoints maps each route to its totals and latency summary.
	Endpoints map[string]endpointStats `json:"endpoints"`
}

// endpointStats is one route's summary in /v1/stats.
type endpointStats struct {
	Requests uint64                    `json:"requests"`
	Errors   uint64                    `json:"errors"`
	InFlight int64                     `json:"inFlight"`
	Latency  metrics.HistogramSnapshot `json:"latency"`
}

// servingSnapshot builds the /v1/stats serving section.
func (s *Server) servingSnapshot() servingStats {
	out := servingStats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Endpoints:     make(map[string]endpointStats, len(s.endpoints)),
	}
	for _, e := range s.endpoints {
		es := endpointStats{
			Requests: e.m.requests(),
			Errors:   e.m.errors(),
			InFlight: e.m.inFlight.Value(),
			Latency:  e.m.latency.Snap(),
		}
		out.Requests += es.Requests
		out.Errors += es.Errors
		out.Endpoints[e.route] = es
	}
	return out
}
