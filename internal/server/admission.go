package server

// Admission control for the simulation-bearing endpoints (/v1/run,
// /v1/sweep): a bounded concurrency gate with a bounded, time-limited
// queue, per-client concurrency caps, and drain-aware rejection. Requests
// past the bounds are shed immediately with 429 + Retry-After (503 while
// draining) instead of silently piling onto the engine's worker
// semaphore, so overload degrades into fast, explicit backpressure the
// client can act on. Cheap endpoints (health, metrics, stats, listings)
// bypass admission entirely — they must keep answering precisely when the
// simulation path is saturated.

import (
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"malec/internal/metrics"
)

// statusClientClosedRequest reports a client that disconnected before the
// response was written (nginx's 499 convention): nobody reads the body,
// but the status-class counters should record a client-side outcome, not
// a server error.
const statusClientClosedRequest = 499

// Shed reasons, in malecd_shed_total label order.
const (
	shedDraining = iota
	shedQueueFull
	shedQueueWait
	shedPerClient
	shedReasons
)

// shedReasonNames labels the malecd_shed_total counters.
var shedReasonNames = [shedReasons]string{"draining", "queue_full", "queue_wait", "per_client"}

// drainRetryAfter is the Retry-After hint while draining: long enough for
// an orchestrator to move on to another instance.
const drainRetryAfter = 10

// admission is the gate. All fields are set at construction; the zero
// bounds disable their respective checks.
type admission struct {
	maxConcurrent int           // sem capacity; 0 disables the gate+queue
	maxQueue      int           // waiters beyond the gate; 0 = no queue
	maxWait       time.Duration // per-waiter queue time bound
	perClient     int           // concurrent requests per client; 0 = off

	sem    chan struct{}
	queued atomic.Int64

	mu      sync.Mutex
	clients map[string]int // in-flight request count per client key

	shed [shedReasons]*metrics.Counter
}

func newAdmission(opts Options, reg *metrics.Registry) *admission {
	a := &admission{
		maxConcurrent: opts.MaxConcurrent,
		maxQueue:      opts.MaxQueueDepth,
		maxWait:       opts.MaxQueueWait,
		perClient:     opts.PerClientConcurrency,
		clients:       make(map[string]int),
	}
	if a.maxQueue < 0 {
		a.maxQueue = 0
	}
	if a.maxConcurrent > 0 {
		a.sem = make(chan struct{}, a.maxConcurrent)
	}
	for i, name := range shedReasonNames {
		a.shed[i] = reg.Counter("malecd_shed_total",
			"Requests shed by admission control, by reason.",
			metrics.Label{Name: "reason", Value: name})
	}
	return a
}

// clientKey identifies the client for per-client fairness: the API key
// when one is presented, else the remote address without the port (one
// client, many connections).
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return "key:" + k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return "addr:" + r.RemoteAddr
	}
	return "addr:" + host
}

// shedResponse writes a shed rejection with its Retry-After hint.
func shedResponse(w http.ResponseWriter, status, retryAfter int, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeError(w, status, format, args...)
}

// retryAfter estimates how long a shed client should back off: one second
// plus the current backlog in units of serving capacity, capped so the
// hint stays actionable.
func (a *admission) retryAfter() int {
	capacity := a.maxConcurrent
	if capacity < 1 {
		capacity = 1
	}
	ra := 1 + int(a.queued.Load())/capacity
	if ra > 30 {
		ra = 30
	}
	return ra
}

// releaseClient returns a client's concurrency slot, pruning idle keys so
// the map tracks only in-flight clients.
func (a *admission) releaseClient(key string) {
	a.mu.Lock()
	if n := a.clients[key] - 1; n <= 0 {
		delete(a.clients, key)
	} else {
		a.clients[key] = n
	}
	a.mu.Unlock()
}

// admit decides whether a simulation-bearing request may proceed. On
// success it returns a release closure the handler must defer; on
// rejection it has already written the response. The checks, in order:
// drain state (503), the per-client cap (429), then the concurrency gate
// with its bounded, time-limited queue (429 on either bound).
func (a *admission) admit(w http.ResponseWriter, r *http.Request, draining bool) (func(), bool) {
	if draining {
		a.shed[shedDraining].Inc()
		shedResponse(w, http.StatusServiceUnavailable, drainRetryAfter, "server is draining")
		return nil, false
	}
	release := func() {}
	if a.perClient > 0 {
		key := clientKey(r)
		a.mu.Lock()
		if a.clients[key] >= a.perClient {
			a.mu.Unlock()
			a.shed[shedPerClient].Inc()
			shedResponse(w, http.StatusTooManyRequests, 1,
				"per-client concurrency limit (%d) reached", a.perClient)
			return nil, false
		}
		a.clients[key]++
		a.mu.Unlock()
		release = func() { a.releaseClient(key) }
	}
	if a.sem == nil {
		return release, true
	}
	select {
	case a.sem <- struct{}{}:
	default:
		// The gate is full: join the queue if there is room and the wait
		// stays bounded; shed otherwise. Shedding here — before any body
		// parsing or engine work — is what keeps overload cheap.
		if q := a.queued.Add(1); q > int64(a.maxQueue) {
			a.queued.Add(-1)
			release()
			a.shed[shedQueueFull].Inc()
			shedResponse(w, http.StatusTooManyRequests, a.retryAfter(),
				"admission queue full (%d waiting)", a.maxQueue)
			return nil, false
		}
		t := time.NewTimer(a.maxWait)
		select {
		case a.sem <- struct{}{}:
			t.Stop()
			a.queued.Add(-1)
		case <-t.C:
			a.queued.Add(-1)
			release()
			a.shed[shedQueueWait].Inc()
			shedResponse(w, http.StatusTooManyRequests, a.retryAfter(),
				"queue wait exceeded %s", a.maxWait)
			return nil, false
		case <-r.Context().Done():
			t.Stop()
			a.queued.Add(-1)
			release()
			writeError(w, statusClientClosedRequest, "client closed request")
			return nil, false
		}
	}
	clientRelease := release
	return func() {
		<-a.sem
		clientRelease()
	}, true
}
