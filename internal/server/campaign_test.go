package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"malec/internal/config"
	"malec/internal/cpu"
	"malec/internal/engine"
)

// stubSim is a deterministic simulate stub for campaign tests.
func stubSim(cfg config.Config, b string, n int, s uint64) cpu.Result {
	return cpu.Result{
		Config:       cfg.Name,
		Benchmark:    b,
		Instructions: uint64(n),
		Cycles:       uint64(n)*2 + s,
	}
}

// newCampaignServer wires a server over a fresh engine and campaign
// manager with full control of both option sets.
func newCampaignServer(t *testing.T, sim engine.SimulateFunc, mgrOpts engine.CampaignManagerOptions, opts Options) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 4, Simulate: sim})
	opts.Campaigns = engine.NewCampaignManager(eng, mgrOpts)
	ts := httptest.NewServer(New(eng, opts))
	t.Cleanup(ts.Close)
	return ts, eng
}

// streamLine is the decoded superset of every NDJSON line shape.
type streamLine struct {
	Seq       uint64 `json:"seq"`
	Index     *int   `json:"index"`
	Config    string `json:"config"`
	Benchmark string `json:"benchmark"`
	Seed      uint64 `json:"seed"`
	Error     string `json:"error"`
	Heartbeat bool   `json:"heartbeat"`
	Done      bool   `json:"done"`
	State     string `json:"state"`
	Cursor    uint64 `json:"cursor"`
}

// readStream consumes one results stream to its done line.
func readStream(t *testing.T, url string) (records []streamLine, heartbeats int, done streamLine) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line streamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Done:
			return records, heartbeats, line
		case line.Heartbeat:
			heartbeats++
		default:
			records = append(records, line)
		}
	}
	t.Fatalf("stream %s ended without a done line (read %d records): %v", url, len(records), sc.Err())
	return nil, 0, streamLine{}
}

const campaignBody = `{"configs":["MALEC"],"benchmarks":["gzip","mcf"],"instructions":2000,"seeds":[1,2]}`

func TestCampaignLifecycleAndStreamResume(t *testing.T) {
	ts, _ := newCampaignServer(t, stubSim, engine.CampaignManagerOptions{}, Options{})

	resp, body := post(t, ts.URL+"/v1/campaigns", campaignBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create: status %d body %s", resp.StatusCode, body)
	}
	var st engine.CampaignStatus
	if err := json.Unmarshal(body, &st); err != nil || st.ID == "" {
		t.Fatalf("create reply %s: %v", body, err)
	}
	if st.Total != 4 {
		t.Fatalf("campaign total %d, want 4", st.Total)
	}

	// The full stream delivers every record exactly once, then done.
	records, _, done := readStream(t, ts.URL+"/v1/campaigns/"+st.ID+"/results")
	if len(records) != 4 {
		t.Fatalf("streamed %d records, want 4", len(records))
	}
	for i, rec := range records {
		if rec.Seq != uint64(i)+1 {
			t.Fatalf("record %d has seq %d, want dense monotonic cursors", i, rec.Seq)
		}
		if rec.Config != "MALEC" || rec.Benchmark == "" {
			t.Fatalf("record %d missing job identity: %+v", i, rec)
		}
	}
	if done.State != string(engine.CampaignDone) || done.Cursor != 4 {
		t.Fatalf("done line %+v", done)
	}

	// Resume from a mid-stream cursor: exactly the remainder, no replays.
	records, _, _ = readStream(t, ts.URL+"/v1/campaigns/"+st.ID+"/results?after=2")
	if len(records) != 2 || records[0].Seq != 3 || records[1].Seq != 4 {
		t.Fatalf("resume after=2 streamed %+v, want seqs 3,4", records)
	}
	// Resume from the end: just the done line.
	records, _, done = readStream(t, ts.URL+"/v1/campaigns/"+st.ID+"/results?after=4")
	if len(records) != 0 || !done.Done {
		t.Fatalf("resume after=4 streamed %d records", len(records))
	}

	// Status reflects completion; the list includes the campaign.
	var got engine.CampaignStatus
	get(t, ts.URL+"/v1/campaigns/"+st.ID, &got)
	if got.State != engine.CampaignDone || got.Completed != 4 || got.Cursor != 4 {
		t.Fatalf("status %+v", got)
	}
	var list struct {
		Campaigns []engine.CampaignStatus `json:"campaigns"`
	}
	get(t, ts.URL+"/v1/campaigns", &list)
	if len(list.Campaigns) != 1 || list.Campaigns[0].ID != st.ID {
		t.Fatalf("list %+v", list)
	}

	// Final exports: JSON in deterministic expansion order, CSV parses
	// with a row per point.
	var exp struct {
		Jobs    int `json:"jobs"`
		Results []struct {
			Index  int            `json:"index"`
			Source string         `json:"source"`
			Result map[string]any `json:"result"`
		} `json:"results"`
	}
	if resp := get(t, ts.URL+"/v1/campaigns/"+st.ID+"/results?format=json", &exp); resp.StatusCode != http.StatusOK {
		t.Fatalf("export status %d", resp.StatusCode)
	}
	if exp.Jobs != 4 || len(exp.Results) != 4 {
		t.Fatalf("export jobs=%d results=%d", exp.Jobs, len(exp.Results))
	}
	for i, r := range exp.Results {
		if r.Index != i {
			t.Fatalf("export row %d has index %d; exports must be in expansion order", i, r.Index)
		}
		if r.Source != "" {
			t.Fatalf("export row %d leaks source %q; exports must be source-normalized for byte identity", i, r.Source)
		}
	}
	csvResp, csvBody := func() (*http.Response, []byte) {
		r, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID + "/results?format=csv")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		buf := make([]byte, 1<<16)
		n, _ := r.Body.Read(buf)
		return r, buf[:n]
	}()
	if csvResp.StatusCode != http.StatusOK || csvResp.Header.Get("Content-Type") != "text/csv" {
		t.Fatalf("csv export status %d type %q", csvResp.StatusCode, csvResp.Header.Get("Content-Type"))
	}
	if len(csvBody) == 0 {
		t.Fatal("empty csv export")
	}
}

func TestCampaignValidationAndBackpressure(t *testing.T) {
	gate := make(chan struct{})
	released := false
	release := func() {
		if !released {
			released = true
			close(gate)
		}
	}
	t.Cleanup(release)
	sim := func(cfg config.Config, b string, n int, s uint64) cpu.Result {
		<-gate
		return stubSim(cfg, b, n, s)
	}
	ts, _ := newCampaignServer(t, sim, engine.CampaignManagerOptions{MaxActive: 1}, Options{})

	if resp, body := post(t, ts.URL+"/v1/campaigns", `{"configs":["nope"]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown config: status %d body %s", resp.StatusCode, body)
	}
	if resp := get(t, ts.URL+"/v1/campaigns/deadbeef", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d", resp.StatusCode)
	}

	resp, body := post(t, ts.URL+"/v1/campaigns", campaignBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create: status %d %s", resp.StatusCode, body)
	}
	var st engine.CampaignStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	// Active-campaign bound: the second submission sheds with 429.
	resp2, _ := post(t, ts.URL+"/v1/campaigns", campaignBody)
	if resp2.StatusCode != http.StatusTooManyRequests || resp2.Header.Get("Retry-After") == "" {
		t.Fatalf("over MaxActive: status %d Retry-After %q", resp2.StatusCode, resp2.Header.Get("Retry-After"))
	}

	// Cursor validation: non-numeric and never-issued cursors are 400.
	for _, after := range []string{"abc", "999"} {
		if resp := get(t, ts.URL+"/v1/campaigns/"+st.ID+"/results?after="+after, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("after=%s: status %d, want 400", after, resp.StatusCode)
		}
	}
	if resp := get(t, ts.URL+"/v1/campaigns/"+st.ID+"/results?format=xml", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad format: status %d, want 400", resp.StatusCode)
	}

	// Exports gate on completion: 409 while running.
	if resp := get(t, ts.URL+"/v1/campaigns/"+st.ID+"/results?format=json", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("export while running: status %d, want 409", resp.StatusCode)
	}

	// Cancel stops the campaign; its status turns cancelled.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", dresp.StatusCode)
	}
	release()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var got engine.CampaignStatus
		get(t, ts.URL+"/v1/campaigns/"+st.ID, &got)
		if got.State == engine.CampaignCancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never cancelled: %+v", got)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestCampaignStreamHeartbeat(t *testing.T) {
	gate := make(chan struct{})
	released := false
	release := func() {
		if !released {
			released = true
			close(gate)
		}
	}
	t.Cleanup(release)
	sim := func(cfg config.Config, b string, n int, s uint64) cpu.Result {
		<-gate
		return stubSim(cfg, b, n, s)
	}
	ts, _ := newCampaignServer(t, sim, engine.CampaignManagerOptions{},
		Options{StreamHeartbeat: 20 * time.Millisecond})

	_, body := post(t, ts.URL+"/v1/campaigns", campaignBody)
	var st engine.CampaignStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	// With every simulation blocked, the stream must keep the connection
	// alive with heartbeats; after release it must finish normally.
	go func() {
		time.Sleep(120 * time.Millisecond)
		release()
	}()
	records, heartbeats, done := readStream(t, ts.URL+"/v1/campaigns/"+st.ID+"/results")
	if heartbeats == 0 {
		t.Fatal("idle stream emitted no heartbeats")
	}
	if len(records) != 4 || !done.Done {
		t.Fatalf("stream after release: %d records, done=%v", len(records), done.Done)
	}
}
