package server

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"malec/internal/config"
	"malec/internal/cpu"
	"malec/internal/engine"
	"malec/internal/trace"
)

// newTestServer wires a server over an engine with the given simulate stub
// (nil: the real simulator).
func newTestServer(t *testing.T, sim engine.SimulateFunc, opts Options) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 8, Simulate: sim})
	ts := httptest.NewServer(New(eng, opts))
	t.Cleanup(ts.Close)
	return ts, eng
}

// get fetches a URL and decodes the JSON response into v.
func get(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

// post sends a JSON body and returns the response with its raw payload.
func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHealthzAndListings(t *testing.T) {
	ts, _ := newTestServer(t, nil, Options{})

	var health map[string]string
	if resp := get(t, ts.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if health["status"] != "ok" {
		t.Fatalf("healthz = %v", health)
	}

	var cfgs struct {
		Configs []string `json:"configs"`
	}
	get(t, ts.URL+"/v1/configs", &cfgs)
	if len(cfgs.Configs) != len(config.Names()) {
		t.Fatalf("/v1/configs returned %d names, want %d", len(cfgs.Configs), len(config.Names()))
	}

	var benches struct {
		Benchmarks []struct {
			Name  string `json:"name"`
			Suite string `json:"suite"`
		} `json:"benchmarks"`
	}
	get(t, ts.URL+"/v1/benchmarks", &benches)
	if len(benches.Benchmarks) != len(trace.AllBenchmarks()) {
		t.Fatalf("/v1/benchmarks returned %d entries, want %d",
			len(benches.Benchmarks), len(trace.AllBenchmarks()))
	}
	if benches.Benchmarks[0].Suite == "" {
		t.Fatalf("benchmark entries missing suite: %+v", benches.Benchmarks[0])
	}
}

func TestRunValidation(t *testing.T) {
	ts, _ := newTestServer(t, nil, Options{MaxInstructions: 1000})
	cases := []struct {
		name, body string
	}{
		{"unknown config", `{"config":"NoSuch","benchmark":"gzip"}`},
		{"unknown benchmark", `{"config":"MALEC","benchmark":"nope"}`},
		{"over instruction limit", `{"config":"MALEC","benchmark":"gzip","instructions":2000}`},
		{"unknown field", `{"config":"MALEC","benchmark":"gzip","instrs":10}`},
		{"malformed", `{"config":`},
	}
	for _, c := range cases {
		resp, body := post(t, ts.URL+"/v1/run", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, resp.StatusCode, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: no error envelope in %s", c.name, body)
		}
	}
	if resp, _ := post(t, ts.URL+"/healthz", ""); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz status %d, want 405", resp.StatusCode)
	}
}

func TestConcurrentDuplicateRunsSimulateOnce(t *testing.T) {
	const clients = 8
	var calls atomic.Int64
	release := make(chan struct{})
	sim := func(cfg config.Config, b string, n int, s uint64) cpu.Result {
		calls.Add(1)
		<-release
		return cpu.Result{Config: cfg.Name, Benchmark: b, Cycles: 12345}
	}
	ts, eng := newTestServer(t, sim, Options{})

	body := `{"config":"MALEC","benchmark":"gzip","instructions":1000,"seed":3}`
	var wg sync.WaitGroup
	responses := make([]runResponse, clients)
	codes := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, raw := post(t, ts.URL+"/v1/run", body)
			codes[i] = resp.StatusCode
			json.Unmarshal(raw, &responses[i]) //nolint:errcheck // checked via Cycles below
		}(i)
	}
	// Let every request attach to the single in-flight simulation before
	// releasing it: 1 leader simulating, clients-1 deduplicated.
	for calls.Load() == 0 {
		runtime.Gosched()
	}
	for eng.Stats().Dedup < clients-1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("simulate ran %d times for %d identical requests, want 1", n, clients)
	}
	var cached int
	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		var res cpu.Result
		data, _ := json.Marshal(responses[i].Result)
		json.Unmarshal(data, &res) //nolint:errcheck // zero Cycles fails below
		if res.Cycles != 12345 {
			t.Fatalf("request %d: wrong result %v", i, responses[i].Result)
		}
		if responses[i].Cached {
			cached++
		}
	}
	if cached != clients-1 {
		t.Fatalf("%d responses marked cached, want %d", cached, clients-1)
	}

	// A later identical request is a memory hit.
	_, raw := post(t, ts.URL+"/v1/run", body)
	var again runResponse
	if err := json.Unmarshal(raw, &again); err != nil {
		t.Fatal(err)
	}
	if again.Source != engine.SourceMemory || !again.Cached {
		t.Fatalf("repeat request source = %q cached=%v, want memory/true", again.Source, again.Cached)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("repeat request re-simulated (%d calls)", n)
	}
}

func TestDistinctPointsRunConcurrently(t *testing.T) {
	var calls atomic.Int64
	sim := func(cfg config.Config, b string, n int, s uint64) cpu.Result {
		calls.Add(1)
		return cpu.Result{Config: cfg.Name, Benchmark: b, Cycles: s}
	}
	ts, _ := newTestServer(t, sim, Options{})

	const clients = 6
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"config":"MALEC","benchmark":"gzip","instructions":1000,"seed":%d}`, i+1)
			resp, raw := post(t, ts.URL+"/v1/run", body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("seed %d: status %d", i+1, resp.StatusCode)
				return
			}
			var rr runResponse
			if err := json.Unmarshal(raw, &rr); err != nil {
				t.Errorf("seed %d: %v", i+1, err)
				return
			}
			if rr.Key.Seed != uint64(i+1) {
				t.Errorf("seed %d: response key %v", i+1, rr.Key)
			}
		}(i)
	}
	wg.Wait()
	if n := calls.Load(); n != clients {
		t.Fatalf("simulate ran %d times for %d distinct points", n, clients)
	}
}

func TestSweepJSONAndCSV(t *testing.T) {
	sim := func(cfg config.Config, b string, n int, s uint64) cpu.Result {
		return cpu.Result{Config: cfg.Name, Benchmark: b, Cycles: 100 + s, Instructions: uint64(n)}
	}
	ts, _ := newTestServer(t, sim, Options{})
	body := `{"configs":["Base1ldst","MALEC"],"benchmarks":["gzip","mcf"],"instructions":1000,"seeds":[1,2]}`

	resp, raw := post(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Jobs    int                `json:"jobs"`
		Results []engine.JobResult `json:"results"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Jobs != 8 || len(out.Results) != 8 {
		t.Fatalf("sweep returned %d jobs / %d results, want 8", out.Jobs, len(out.Results))
	}
	if out.Results[0].ConfigName != "Base1ldst" || out.Results[0].Benchmark != "gzip" || out.Results[0].Seed != 1 {
		t.Fatalf("unexpected first result %+v", out.Results[0].Job)
	}

	csvBody := `{"configs":["Base1ldst","MALEC"],"benchmarks":["gzip","mcf"],"instructions":1000,"seeds":[1,2],"format":"csv"}`
	resp, raw = post(t, ts.URL+"/v1/sweep", csvBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("csv sweep status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv" {
		t.Fatalf("csv content type %q", ct)
	}
	rows, err := csv.NewReader(bytes.NewReader(raw)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // header + 8 jobs
		t.Fatalf("csv has %d rows, want 9", len(rows))
	}
	if rows[0][0] != "config" || rows[1][0] != "Base1ldst" {
		t.Fatalf("unexpected csv rows %v / %v", rows[0], rows[1])
	}
}

func TestSweepValidation(t *testing.T) {
	ts, _ := newTestServer(t, nil, Options{MaxSweepJobs: 4})
	cases := []struct {
		name, body string
	}{
		{"no configs", `{"benchmarks":["gzip"]}`},
		{"unknown config", `{"configs":["NoSuch"]}`},
		{"unknown benchmark", `{"configs":["MALEC"],"benchmarks":["nope"]}`},
		{"too many jobs", `{"configs":["MALEC"],"benchmarks":["gzip","mcf","art","ammp","gcc"]}`},
		{"bad format", `{"configs":["MALEC"],"benchmarks":["gzip"],"format":"xml"}`},
	}
	for _, c := range cases {
		resp, body := post(t, ts.URL+"/v1/sweep", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, resp.StatusCode, body)
		}
	}
}

// TestSweepDefaultInstructionsRespectsLimit guards against the default
// instruction count (300000) sneaking past a lower operator limit when the
// request omits the field.
func TestSweepDefaultInstructionsRespectsLimit(t *testing.T) {
	ts, _ := newTestServer(t, nil, Options{MaxInstructions: 100000})
	resp, body := post(t, ts.URL+"/v1/sweep", `{"configs":["MALEC"],"benchmarks":["gzip"]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("sweep with omitted instructions under a 100k limit: status %d (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "300000 exceeds limit 100000") {
		t.Fatalf("error does not name the effective default: %s", body)
	}
}

// TestRealSimulationThroughService exercises the full stack once: HTTP ->
// engine -> cycle simulator, then asserts the repeat is served from cache.
func TestRealSimulationThroughService(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	ts, eng := newTestServer(t, nil, Options{})
	body := `{"config":"MALEC","benchmark":"gzip","instructions":20000}`

	_, raw := post(t, ts.URL+"/v1/run", body)
	var first runResponse
	if err := json.Unmarshal(raw, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Source != engine.SourceSimulated {
		t.Fatalf("first run source = %q cached=%v", first.Source, first.Cached)
	}
	data, _ := json.Marshal(first.Result)
	var res cpu.Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Instructions == 0 {
		t.Fatalf("implausible simulation result: %+v", res)
	}

	_, raw = post(t, ts.URL+"/v1/run", body)
	var second runResponse
	if err := json.Unmarshal(raw, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatalf("repeat run not cached: %+v", second.Source)
	}
	s := eng.Stats()
	if s.Simulations != 1 || s.Hits != 1 {
		t.Fatalf("engine stats %+v, want 1 simulation + 1 hit", s)
	}
}

// TestMetricsEndpoint drives a few requests through the service and
// asserts the /metrics exposition carries per-endpoint latency
// histograms, status-class counters and the engine's cache/dedup/trace
// counters — the acceptance shape every scraper depends on.
func TestMetricsEndpoint(t *testing.T) {
	sim := func(cfg config.Config, b string, n int, s uint64) cpu.Result {
		return cpu.Result{Config: cfg.Name, Benchmark: b, Cycles: 1}
	}
	ts, _ := newTestServer(t, sim, Options{})

	body := `{"config":"MALEC","benchmark":"gzip","instructions":1000,"seed":1}`
	post(t, ts.URL+"/v1/run", body)                                     // simulated
	post(t, ts.URL+"/v1/run", body)                                     // memory hit
	post(t, ts.URL+"/v1/run", `{"config":"NoSuch","benchmark":"gzip"}`) // 400

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q, want text/plain exposition", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	for _, want := range []string{
		`malecd_http_requests_total{endpoint="/v1/run",code="2xx"} 2`,
		`malecd_http_requests_total{endpoint="/v1/run",code="4xx"} 1`,
		`malecd_http_request_seconds_bucket{endpoint="/v1/run",le="+Inf"} 3`,
		`malecd_http_request_seconds_count{endpoint="/v1/run"} 3`,
		`malecd_http_in_flight{endpoint="/v1/run"} 0`,
		"# TYPE malecd_http_request_seconds histogram",
		"malec_engine_cache_hits_total 1",
		"malec_engine_simulations_total 1",
		"malec_engine_dedup_total 0",
		"malec_engine_queue_depth 0",
		"malec_engine_running 0",
		"malecd_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", text)
	}
}

// TestStatsShapeRegression pins the /v1/stats JSON contract: every
// pre-existing engine field name stays at the top level, and the new
// serving section reports uptime and per-endpoint totals.
func TestStatsShapeRegression(t *testing.T) {
	sim := func(cfg config.Config, b string, n int, s uint64) cpu.Result {
		return cpu.Result{Config: cfg.Name, Benchmark: b, Cycles: 1}
	}
	ts, _ := newTestServer(t, sim, Options{})
	body := `{"config":"MALEC","benchmark":"gzip","instructions":1000,"seed":1}`
	post(t, ts.URL+"/v1/run", body)
	post(t, ts.URL+"/v1/run", body)

	var raw map[string]json.RawMessage
	get(t, ts.URL+"/v1/stats", &raw)
	// The engine fields served before this layer existed must not move.
	for _, legacy := range []string{
		"hits", "diskHits", "dedup", "simulations", "entries",
		"traceHits", "traceMisses", "traceRecords",
	} {
		if _, ok := raw[legacy]; !ok {
			t.Errorf("/v1/stats lost top-level field %q", legacy)
		}
	}
	var hits uint64
	if err := json.Unmarshal(raw["hits"], &hits); err != nil || hits != 1 {
		t.Errorf("hits = %s, want 1", raw["hits"])
	}

	var serving struct {
		UptimeSeconds float64 `json:"uptimeSeconds"`
		Requests      uint64  `json:"requests"`
		Errors        uint64  `json:"errors"`
		Endpoints     map[string]struct {
			Requests uint64 `json:"requests"`
			Errors   uint64 `json:"errors"`
			InFlight int64  `json:"inFlight"`
			Latency  struct {
				Count uint64  `json:"count"`
				P50Ms float64 `json:"p50Ms"`
				P99Ms float64 `json:"p99Ms"`
				MaxMs float64 `json:"maxMs"`
			} `json:"latency"`
		} `json:"endpoints"`
	}
	if raw["serving"] == nil {
		t.Fatalf("/v1/stats has no serving section")
	}
	if err := json.Unmarshal(raw["serving"], &serving); err != nil {
		t.Fatal(err)
	}
	if serving.UptimeSeconds < 0 {
		t.Errorf("uptimeSeconds = %v", serving.UptimeSeconds)
	}
	run, ok := serving.Endpoints["/v1/run"]
	if !ok {
		t.Fatalf("serving.endpoints missing /v1/run: %+v", serving.Endpoints)
	}
	if run.Requests != 2 || run.Errors != 0 || run.Latency.Count != 2 {
		t.Errorf("/v1/run endpoint stats = %+v, want 2 requests / 0 errors", run)
	}
	if serving.Requests < 2 {
		t.Errorf("aggregate requests = %d, want >= 2", serving.Requests)
	}
	// The stats request itself is instrumented too.
	if _, ok := serving.Endpoints["/v1/stats"]; !ok {
		t.Errorf("serving.endpoints missing /v1/stats")
	}
}

// TestCheckpointStatsShapeRegression pins the checkpoint-observability
// contract introduced with sampled simulation: the warmed-checkpoint
// counters appear at the top level of /v1/stats and as counter families
// in the /metrics exposition.
func TestCheckpointStatsShapeRegression(t *testing.T) {
	sim := func(cfg config.Config, b string, n int, s uint64) cpu.Result {
		return cpu.Result{Config: cfg.Name, Benchmark: b, Cycles: 1}
	}
	ts, _ := newTestServer(t, sim, Options{})

	var raw map[string]json.RawMessage
	get(t, ts.URL+"/v1/stats", &raw)
	for _, field := range []string{
		"checkpointHits", "checkpointMisses",
		"checkpointBytesRead", "checkpointBytesWritten",
	} {
		if _, ok := raw[field]; !ok {
			t.Errorf("/v1/stats missing top-level field %q", field)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE malec_engine_checkpoint_hits_total counter",
		"malec_engine_checkpoint_hits_total 0",
		"malec_engine_checkpoint_misses_total 0",
		"malec_engine_checkpoint_bytes_read_total 0",
		"malec_engine_checkpoint_bytes_written_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", text)
	}
}

// TestRunSamplingTier drives the sampled quality tier end to end through
// the HTTP API: a /v1/run with a sampling schedule must run the real
// sampled simulator, return the estimate metadata, cache under a key
// distinct from the exact run, and reject malformed schedules.
func TestRunSamplingTier(t *testing.T) {
	t.Setenv("MALEC_NO_SAMPLING", "")
	ts, _ := newTestServer(t, nil, Options{})

	exactBody := `{"config": "MALEC", "benchmark": "gzip", "instructions": 40000, "seed": 2}`
	sampledBody := `{"config": "MALEC", "benchmark": "gzip", "instructions": 40000, "seed": 2,
		"sampling": {"Warmup": 200, "Detail": 800, "Interval": 20000}}`

	var exact, sampled struct {
		Key      engine.Key            `json:"key"`
		Sampling *cpu.SamplingEstimate `json:"sampling"`
	}
	resp, body := post(t, ts.URL+"/v1/run", exactBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exact run: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &exact); err != nil {
		t.Fatal(err)
	}
	if exact.Sampling != nil {
		t.Fatalf("exact run returned a sampling estimate: %+v", exact.Sampling)
	}

	resp, body = post(t, ts.URL+"/v1/run", sampledBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sampled run: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sampled); err != nil {
		t.Fatal(err)
	}
	if sampled.Sampling == nil {
		t.Fatalf("sampled run returned no estimate: %s", body)
	}
	if sampled.Sampling.Windows != 2 {
		t.Errorf("estimate windows = %d, want 2", sampled.Sampling.Windows)
	}
	if sampled.Key == exact.Key {
		t.Error("sampled and exact runs share a cache key")
	}

	resp, body = post(t, ts.URL+"/v1/run",
		`{"config": "MALEC", "benchmark": "gzip", "instructions": 40000,
		  "sampling": {"Warmup": 900, "Detail": 200, "Interval": 1000}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid schedule: status %d, want 400: %s", resp.StatusCode, body)
	}

	// The sweep tier applies the schedule to every config; two core-side
	// variants would share warmed checkpoints here, which the engine
	// tests cover — this checks the plumbing end to end.
	resp, body = post(t, ts.URL+"/v1/sweep",
		`{"configs": ["MALEC"], "benchmarks": ["gzip"], "instructions": 40000, "seeds": [2],
		  "sampling": {"Warmup": 200, "Detail": 800, "Interval": 20000}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sampled sweep: status %d: %s", resp.StatusCode, body)
	}
	var sweep struct {
		Jobs int `json:"jobs"`
	}
	if err := json.Unmarshal(body, &sweep); err != nil {
		t.Fatal(err)
	}
	if sweep.Jobs != 1 {
		t.Fatalf("sampled sweep ran %d jobs, want 1", sweep.Jobs)
	}
}
