package server

import (
	"net/http"

	"malec/internal/cluster"
	"malec/internal/engine"
	"malec/internal/trace"
)

// handleInternalPoint implements POST /internal/v1/point: one simulation
// point forwarded by a cluster peer. The handler runs under WithLocalOnly
// so the receiving node executes the point itself (forwarding again could
// loop), and it deliberately skips the admission gate: peer traffic is the
// cluster's own load balancing, already bounded by the sender's campaign
// concurrency, and shedding it would only push the point back to a slower
// fallback. It also keeps serving during drain — in-flight campaigns on
// peers should finish their forwarded points even as this node winds down.
func (s *Server) handleInternalPoint(w http.ResponseWriter, r *http.Request) {
	var req cluster.PointRequest
	if !readBody(w, r, &req) {
		return
	}
	if _, ok := trace.Profiles[req.Benchmark]; !ok {
		writeError(w, http.StatusBadRequest, "unknown benchmark %q", req.Benchmark)
		return
	}
	if req.Instructions <= 0 {
		req.Instructions = engine.DefaultInstructions
	}
	if req.Instructions > s.opts.MaxInstructions {
		writeError(w, http.StatusBadRequest,
			"instructions %d exceeds limit %d", req.Instructions, s.opts.MaxInstructions)
		return
	}
	if err := validSampling(req.Config.Sampling); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	k := engine.KeyFor(req.Config, req.Benchmark, req.Instructions, req.Seed)
	if req.Key != "" && req.Key != k.String() {
		// The sender and this node disagree on the canonical key — version
		// skew. Refusing (instead of answering under our key) makes the
		// sender fall back rather than cache a result at the wrong address.
		writeError(w, http.StatusConflict,
			"key mismatch: computed %s, request carries %s (version skew?)", k, req.Key)
		return
	}
	ctx, cancel := s.requestContext(r, 0)
	defer cancel()
	ctx = engine.WithLocalOnly(ctx)
	res, src, err := s.eng.RunContext(ctx, req.Config, req.Benchmark, req.Instructions, req.Seed)
	if err != nil {
		s.writeSimError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, cluster.PointResponse{
		Key:      k.String(),
		Source:   string(src),
		Result:   res,
		Sampling: res.Sampling,
	})
}
