package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(9)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Errorf("value %d never drawn", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestBoolProbability(t *testing.T) {
	s := New(11)
	n := 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", got)
	}
	if s.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Error("Bool(1) returned false")
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(13)
	n := 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Geometric(0.5)
	}
	mean := float64(sum) / float64(n)
	// Mean of geometric with continuation 0.5 is 1.0.
	if math.Abs(mean-1.0) > 0.05 {
		t.Fatalf("Geometric(0.5) mean = %v, want ~1", mean)
	}
}

func TestPickWeights(t *testing.T) {
	s := New(17)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[s.Pick([]float64{1, 2, 1})]++
	}
	if counts[1] < counts[0] || counts[1] < counts[2] {
		t.Fatalf("weighted pick ignored weights: %v", counts)
	}
	if got := s.Pick([]float64{0, 0}); got != 0 {
		t.Errorf("all-zero weights pick = %d, want 0", got)
	}
}

func TestSplitIndependence(t *testing.T) {
	s := New(19)
	c1 := s.Split()
	c2 := s.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children correlated")
	}
}
