// Package rng provides a small, fast, deterministic pseudo random number
// generator (SplitMix64). All stochastic behaviour in the simulator flows
// from this package so results are bit-reproducible across platforms and Go
// releases, unlike math/rand whose stream may change between versions.
package rng

// Source is a SplitMix64 generator. The zero value is a valid generator
// seeded with 0; prefer New to mix the seed.
type Source struct {
	state uint64
}

// New returns a Source seeded from seed. Two sources with different seeds
// produce uncorrelated streams for simulation purposes.
func New(seed uint64) *Source {
	s := &Source{state: seed}
	// Warm the state so nearby seeds diverge immediately.
	s.Uint64()
	return s
}

// Uint64 returns the next 64 pseudo random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo random int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a pseudo random float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Geometric returns a pseudo random non-negative integer following a
// geometric distribution with continuation probability p (mean p/(1-p)).
// It is used to draw run lengths for locality bursts.
func (s *Source) Geometric(p float64) int {
	n := 0
	for s.Bool(p) && n < 1<<20 {
		n++
	}
	return n
}

// Pick returns a pseudo random index weighted by weights. Zero or negative
// weights are treated as zero. If all weights are zero it returns 0.
func (s *Source) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := s.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// Split returns a new Source whose stream is independent of s. It is useful
// for giving sub-components their own deterministic streams.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0xd1b54a32d192ed03)
}

// State returns the generator's internal state so a checkpoint can resume
// the stream exactly where it left off.
func (s *Source) State() uint64 { return s.state }

// SetState restores state previously obtained from State. The next Uint64
// continues the original stream bit-identically.
func (s *Source) SetState(state uint64) { s.state = state }
