package cache

import "malec/internal/mem"

// StreamDetector implements run-time cache bypassing (Johnson et al.,
// referenced by the paper's Sec. VI-D as the fix for streaming workloads
// like mcf, where way prediction yields "negative energy benefits" and
// frequent uWT/WT updates cause uTLB/TLB conflicts).
//
// Classification is two-level:
//
//   - a global windowed L1 load miss rate identifies streaming *phases*
//     (pointer chasing and array streaming keep it persistently high;
//     cache-friendly phases keep it low);
//   - a small direct-mapped table of 16-page regions protects hot regions
//     during streaming phases: a region with a demonstrated hit history is
//     never bypassed.
//
// Bypassed accesses are not fed back into the statistics (they miss by
// construction, which would lock the classification in); every 32nd bypass
// candidate instead proceeds as a normal probe fill, so the detector can
// reclassify when a phase ends.
type StreamDetector struct {
	// MissThresholdPct is the global windowed miss percentage above
	// which the workload is considered to be in a streaming phase.
	MissThresholdPct uint64
	// MinWindow is the number of observed accesses needed before
	// classification starts.
	MinWindow uint64

	accesses uint64
	misses   uint64

	regions []regionEntry

	bypassed uint64
	decided  uint64
}

type regionEntry struct {
	region uint32
	valid  bool
	hits   uint32
}

// regionShift groups pages into 16-page (64 KByte) protection regions.
const regionShift = 4

// NewStreamDetector returns a detector with size region-protection entries
// (a power of two).
func NewStreamDetector(size int) *StreamDetector {
	if size <= 0 || size&(size-1) != 0 {
		panic("cache: stream detector size must be a positive power of two")
	}
	return &StreamDetector{
		MissThresholdPct: 40,
		MinWindow:        512,
		regions:          make([]regionEntry, size),
	}
}

// slot returns the region-protection entry for a page.
func (d *StreamDetector) slot(page mem.PageID) *regionEntry {
	region := uint32(page) >> regionShift
	e := &d.regions[region&uint32(len(d.regions)-1)]
	if !e.valid || e.region != region {
		*e = regionEntry{region: region, valid: true}
	}
	return e
}

// Observe records the outcome of a non-bypassed load access.
func (d *StreamDetector) Observe(page mem.PageID, miss bool) {
	// Global window with periodic halving (exponential decay).
	if d.accesses >= 8192 {
		d.accesses /= 2
		d.misses /= 2
	}
	d.accesses++
	if miss {
		d.misses++
	}
	e := d.slot(page)
	if !miss {
		if e.hits < 1<<30 {
			e.hits++
		}
	} else if e.hits > 0 {
		e.hits--
	}
}

// ShouldBypass reports whether a missing load to the page should skip L1
// allocation.
func (d *StreamDetector) ShouldBypass(page mem.PageID) bool {
	if d.accesses < d.MinWindow {
		return false
	}
	if d.misses*100 < d.accesses*d.MissThresholdPct {
		return false // not a streaming phase
	}
	if d.slot(page).hits >= 8 {
		return false // hot region: keep caching it
	}
	d.decided++
	if d.decided%32 == 0 {
		return false // probe: fill normally and observe the outcome
	}
	d.bypassed++
	return true
}

// Bypassed returns how many classification queries chose to bypass.
func (d *StreamDetector) Bypassed() uint64 { return d.bypassed }

// GlobalMissRate returns the current windowed miss rate.
func (d *StreamDetector) GlobalMissRate() float64 {
	if d.accesses == 0 {
		return 0
	}
	return float64(d.misses) / float64(d.accesses)
}
