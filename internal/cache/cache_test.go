package cache

import (
	"testing"
	"testing/quick"

	"malec/internal/mem"
)

func TestConventionalReadMissAndFill(t *testing.T) {
	c := NewL1()
	pa := mem.Addr(0x10040)
	if _, hit := c.ReadConventional(pa); hit {
		t.Fatal("cold cache hit")
	}
	way, _, wb := c.Fill(pa)
	if wb {
		t.Fatal("writeback from cold cache")
	}
	gotWay, hit := c.ReadConventional(pa)
	if !hit || gotWay != way {
		t.Fatalf("hit=%v way=%d, want way %d", hit, gotWay, way)
	}
	st := c.Stats()
	if st.Loads != 2 || st.Hits != 1 || st.Misses != 1 || st.Fills != 1 {
		t.Fatalf("stats %+v", st)
	}
	// Conventional access reads all tag and data ways.
	if st.TagWayReads != 2*uint64(c.Ways()) || st.DataWayReads != 2*uint64(c.Ways()) {
		t.Fatalf("array read counts %+v", st)
	}
}

func TestReducedRead(t *testing.T) {
	c := NewL1()
	pa := mem.Addr(0x20080)
	way, _, _ := c.Fill(pa)
	before := c.Stats()
	c.ReadReduced(pa, way)
	st := c.Stats()
	if st.DataWayReads != before.DataWayReads+1 {
		t.Fatal("reduced read must touch exactly one data way")
	}
	if st.TagWayReads != before.TagWayReads {
		t.Fatal("reduced read must bypass tags")
	}
	if st.ReducedReads != 1 {
		t.Fatalf("ReducedReads = %d", st.ReducedReads)
	}
}

func TestReducedReadPanicsOnWrongWay(t *testing.T) {
	c := NewL1()
	pa := mem.Addr(0x20080)
	way, _, _ := c.Fill(pa)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: way-table guarantee violated")
		}
	}()
	c.ReadReduced(pa, (way+1)%c.Ways())
}

func TestWriteDirtyAndWriteback(t *testing.T) {
	c := NewL1Custom(mem.NumBanks, 1) // 4 sets, direct-mapped: easy eviction
	pa := mem.Addr(0x0)
	c.Fill(pa)
	if _, hit := c.Write(pa); !hit {
		t.Fatal("write to resident line missed")
	}
	// Fill a conflicting line (same set): 4 sets * 64B = 256B stride.
	way, victim, wb := c.Fill(pa + 256)
	if way != 0 || !wb || victim != pa.LineAddr() {
		t.Fatalf("eviction: way=%d victim=%v wb=%v", way, victim, wb)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatal("writeback not counted")
	}
}

func TestLRUVictimSelection(t *testing.T) {
	c := NewL1Custom(mem.NumBanks, 2) // 4 sets, 2 ways
	a := mem.Addr(0)
	b := a + 256 // same set
	d := a + 512 // same set
	c.Fill(a)
	c.Fill(b)
	c.ReadConventional(a) // b becomes LRU
	_, victim, _ := c.Fill(d)
	if victim != b.LineAddr() {
		t.Fatalf("victim %v, want %v (LRU)", victim, b.LineAddr())
	}
}

func TestConstrainWaysExcludesWay(t *testing.T) {
	c := NewL1()
	c.ConstrainWays = true
	// Fill the same set repeatedly; the excluded way must never be
	// allocated.
	pa := mem.MakeAddr(0, 0)
	excluded := pa.ExcludedWay()
	for i := 0; i < 32; i++ {
		// Same set: stride = sets*lineSize; keep line-in-page constant
		// by striding whole pages (page = 64 lines, sets = 128).
		addr := pa + mem.Addr(i*mem.L1Sets*mem.LineSize)
		way, _, _ := c.Fill(addr)
		if way == excluded {
			t.Fatalf("fill %d allocated excluded way %d", i, way)
		}
	}
}

func TestConstrainWaysOffUsesAllWays(t *testing.T) {
	c := NewL1()
	seen := map[int]bool{}
	pa := mem.MakeAddr(0, 0)
	for i := 0; i < 16; i++ {
		way, _, _ := c.Fill(pa + mem.Addr(i*mem.L1Sets*mem.LineSize))
		seen[way] = true
	}
	if len(seen) != c.Ways() {
		t.Fatalf("unconstrained fill used %d ways, want %d", len(seen), c.Ways())
	}
}

func TestFillEvictHooks(t *testing.T) {
	c := NewL1Custom(mem.NumBanks, 1)
	var fills, evicts []mem.Addr
	c.OnFill = func(p mem.Addr, _, _ int) { fills = append(fills, p) }
	c.OnEvict = func(p mem.Addr, _, _ int) { evicts = append(evicts, p) }
	a := mem.Addr(0x40)
	c.Fill(a)
	c.Fill(a + 256)
	if len(fills) != 2 || len(evicts) != 1 || evicts[0] != a.LineAddr() {
		t.Fatalf("hooks: fills=%v evicts=%v", fills, evicts)
	}
}

func TestProbeNoSideEffects(t *testing.T) {
	c := NewL1()
	pa := mem.Addr(0x3000)
	c.Fill(pa)
	before := c.Stats()
	if _, hit := c.Probe(pa); !hit {
		t.Fatal("probe missed resident line")
	}
	if c.Stats() != before {
		t.Fatal("probe changed statistics")
	}
}

func TestBankMatchesMemBank(t *testing.T) {
	c := NewL1()
	f := func(raw uint64) bool {
		pa := mem.Addr(raw).Canon()
		return c.Bank(pa) == pa.Bank()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvalidateAll(t *testing.T) {
	c := NewL1()
	c.Fill(0x40)
	c.Fill(0x1040)
	evicted := 0
	c.OnEvict = func(mem.Addr, int, int) { evicted++ }
	c.InvalidateAll()
	if evicted != 2 {
		t.Fatalf("evicted %d, want 2", evicted)
	}
	if _, hit := c.Probe(0x40); hit {
		t.Fatal("line survived InvalidateAll")
	}
}

func TestResidencyProperty(t *testing.T) {
	// After any interleaving of fills, a probe hits iff the line was
	// filled and not displaced; verified against a reference map.
	c := NewL1Custom(mem.NumBanks*2, 2)
	type key struct{ set int }
	ref := map[mem.Addr]bool{}
	addrs := []mem.Addr{0x4000, 0x4200, 0x4400, 0x4600, 0x4040, 0x4240}
	_ = key{}
	for i := 0; i < 200; i++ {
		a := addrs[i%len(addrs)]
		if _, hit := c.Probe(a); !hit {
			_, victim, _ := c.Fill(a)
			if victim != 0 {
				delete(ref, victim)
			}
			ref[a.LineAddr()] = true
		}
		for line := range ref {
			if _, hit := c.Probe(line); !hit {
				t.Fatalf("line %v in reference set but not cached", line)
			}
		}
	}
}

func TestMarkDirty(t *testing.T) {
	c := NewL1Custom(mem.NumBanks, 1)
	pa := mem.Addr(0x80)
	c.Fill(pa)
	c.MarkDirty(pa)
	_, _, wb := c.Fill(pa + 256)
	if !wb {
		t.Fatal("dirty line not written back")
	}
}

func TestL2AccessAndWriteback(t *testing.T) {
	l2 := NewL2Custom(1<<14, 2, 12)
	pa := mem.Addr(0x1000)
	if l2.Access(pa) {
		t.Fatal("cold L2 hit")
	}
	if !l2.Access(pa) {
		t.Fatal("L2 miss after fill")
	}
	l2.Writeback(pa)
	st := l2.Stats()
	if st.Accesses != 3 || st.Hits != 2 || st.Misses != 1 || st.Writebacks != 1 {
		t.Fatalf("L2 stats %+v", st)
	}
}

func TestBacksideLatencies(t *testing.T) {
	b := NewBackside()
	pa := mem.Addr(0x2000)
	lat1 := b.Miss(pa) // L2 miss -> DRAM
	if lat1 != b.L2.Latency+b.DRAM.Latency {
		t.Fatalf("cold miss latency %d", lat1)
	}
	lat2 := b.Miss(pa) // now L2 hit
	if lat2 != b.L2.Latency {
		t.Fatalf("L2 hit latency %d", lat2)
	}
	if b.DRAM.Accesses() != 1 {
		t.Fatalf("DRAM accesses %d", b.DRAM.Accesses())
	}
}

func TestMissRateHelper(t *testing.T) {
	s := Stats{Hits: 3, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Fatalf("MissRate = %v", s.MissRate())
	}
	if (Stats{}).MissRate() != 0 {
		t.Fatal("empty MissRate should be 0")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewL1Custom(0, 4) },
		func() { NewL1Custom(130, 4) }, // not divisible by banks
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
