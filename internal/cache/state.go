package cache

// This file is the cache side of the microarchitectural checkpoint layer:
// exported, JSON-able snapshots of the L1, L2/DRAM and stream detector.
// Snapshots capture placement, replacement and statistics state exactly;
// restores rebuild derived structures (the L2 residency index) directly
// from the restored contents and never fire the OnFill/OnEvict hooks —
// a restore is a state transplant, not a replay of the fill history.

// L1State is a complete snapshot of an L1's mutable state.
type L1State struct {
	Lines []Line
	LRU   []uint64
	Clock uint64
	Stats Stats
}

// CaptureState snapshots the cache. The receiver is unmodified.
func (c *L1) CaptureState() L1State {
	st := L1State{
		Lines: make([]Line, len(c.lines)),
		LRU:   make([]uint64, len(c.lru)),
		Clock: c.clock,
		Stats: c.stats,
	}
	copy(st.Lines, c.lines)
	copy(st.LRU, c.lru)
	return st
}

// RestoreState replaces the cache's state with a snapshot taken from a
// same-geometry L1. No OnFill/OnEvict hooks fire.
func (c *L1) RestoreState(st L1State) {
	copy(c.lines, st.Lines)
	copy(c.lru, st.LRU)
	c.clock = st.Clock
	c.stats = st.Stats
}

// L2State is a complete snapshot of an L2's mutable state.
type L2State struct {
	Lines      []Line
	LRU        []uint64
	Clock      uint64
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// CaptureState snapshots the L2.
func (l *L2) CaptureState() L2State {
	st := L2State{
		Lines:      make([]Line, len(l.lines)),
		LRU:        make([]uint64, len(l.lru)),
		Clock:      l.clock,
		Accesses:   l.accesses,
		Hits:       l.hits,
		Misses:     l.misses,
		Writebacks: l.writebacks,
	}
	copy(st.Lines, l.lines)
	copy(st.LRU, l.lru)
	return st
}

// RestoreState replaces the L2's state with a snapshot from a
// same-geometry L2, rebuilding the residency index from the restored
// lines (identical lookup results; chain order is irrelevant because a
// line is resident in at most one way).
func (l *L2) RestoreState(st L2State) {
	copy(l.lines, st.Lines)
	copy(l.lru, st.LRU)
	l.clock = st.Clock
	l.accesses = st.Accesses
	l.hits = st.Hits
	l.misses = st.Misses
	l.writebacks = st.Writebacks
	l.idx.Reset()
	for i := range l.lines {
		if l.lines[i].Valid {
			l.idx.Add(lineID(l.lines[i].PLine), int32(i))
		}
	}
}

// BacksideState bundles the L2 snapshot with the DRAM access count.
type BacksideState struct {
	L2           L2State
	DRAMAccesses uint64
}

// CaptureState snapshots the backside.
func (b *Backside) CaptureState() BacksideState {
	return BacksideState{L2: b.L2.CaptureState(), DRAMAccesses: b.DRAM.accesses}
}

// RestoreState restores the backside from a snapshot.
func (b *Backside) RestoreState(st BacksideState) {
	b.L2.RestoreState(st.L2)
	b.DRAM.accesses = st.DRAMAccesses
}

// DetectorRegion is the exported form of one region-protection entry.
type DetectorRegion struct {
	Region uint32
	Valid  bool
	Hits   uint32
}

// DetectorState is a complete snapshot of a StreamDetector.
type DetectorState struct {
	Accesses uint64
	Misses   uint64
	Regions  []DetectorRegion
	Bypassed uint64
	Decided  uint64
}

// CaptureState snapshots the detector.
func (d *StreamDetector) CaptureState() DetectorState {
	st := DetectorState{
		Accesses: d.accesses,
		Misses:   d.misses,
		Regions:  make([]DetectorRegion, len(d.regions)),
		Bypassed: d.bypassed,
		Decided:  d.decided,
	}
	for i, r := range d.regions {
		st.Regions[i] = DetectorRegion{Region: r.region, Valid: r.valid, Hits: r.hits}
	}
	return st
}

// RestoreState restores the detector from a same-size snapshot.
func (d *StreamDetector) RestoreState(st DetectorState) {
	d.accesses = st.Accesses
	d.misses = st.Misses
	d.bypassed = st.Bypassed
	d.decided = st.Decided
	for i, r := range st.Regions {
		d.regions[i] = regionEntry{region: r.Region, valid: r.Valid, hits: r.Hits}
	}
}
