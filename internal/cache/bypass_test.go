package cache

import (
	"testing"

	"malec/internal/mem"
)

func TestDetectorColdStart(t *testing.T) {
	d := NewStreamDetector(64)
	if d.ShouldBypass(1) {
		t.Fatal("cold detector must not bypass")
	}
}

func TestDetectorStreamingPhase(t *testing.T) {
	d := NewStreamDetector(64)
	// Persistent misses over many pages: a streaming phase.
	for i := 0; i < 2000; i++ {
		d.Observe(mem.PageID(i%500), true)
	}
	if d.GlobalMissRate() < 0.9 {
		t.Fatalf("miss rate %v after all-miss stream", d.GlobalMissRate())
	}
	bypass := 0
	for i := 0; i < 320; i++ {
		if d.ShouldBypass(mem.PageID(1000 + i)) {
			bypass++
		}
	}
	// ~31/32 of candidates bypass; the rest are probes.
	if bypass < 280 || bypass == 320 {
		t.Fatalf("bypassed %d/320, want most-but-not-all (probing)", bypass)
	}
	if d.Bypassed() == 0 {
		t.Fatal("bypass counter not incremented")
	}
}

func TestDetectorHitPhaseNeverBypasses(t *testing.T) {
	d := NewStreamDetector(64)
	for i := 0; i < 2000; i++ {
		d.Observe(mem.PageID(i%4), i%20 == 0) // 5% misses
	}
	for i := 0; i < 100; i++ {
		if d.ShouldBypass(mem.PageID(i)) {
			t.Fatal("bypassed during a cache-friendly phase")
		}
	}
}

func TestDetectorProtectsHotRegions(t *testing.T) {
	d := NewStreamDetector(64)
	hot := mem.PageID(3)
	// Streaming phase overall, but one region hits consistently.
	for i := 0; i < 4000; i++ {
		if i%3 == 0 {
			d.Observe(hot, false)
		} else {
			d.Observe(mem.PageID(1000+i), true)
		}
	}
	if !d.ShouldBypass(mem.PageID(5000)) && !d.ShouldBypass(mem.PageID(5001)) {
		t.Fatal("cold pages should bypass during a streaming phase")
	}
	if d.ShouldBypass(hot) {
		t.Fatal("hot region bypassed despite hit history")
	}
}

func TestDetectorBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStreamDetector(48)
}
