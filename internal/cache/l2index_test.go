package cache

import (
	"testing"

	"malec/internal/mem"
	"malec/internal/rng"
)

// TestL2IndexedMatchesScanRandomized drives an indexed L2 and a
// scan-configured one through the identical randomized access/writeback
// stream over a footprint several times the capacity (evictions and
// re-fills throughout) and demands identical hit/miss outcomes and Stats.
func TestL2IndexedMatchesScanRandomized(t *testing.T) {
	indexed := NewL2Custom(1<<14, 4, 12) // small: 16 KB, 64 sets
	scan := NewL2Custom(1<<14, 4, 12)
	scan.SetIndexed(false)
	drv := rng.New(23)
	for op := 0; op < 100000; op++ {
		pa := mem.Addr(drv.Intn(1 << 18)) // 4x capacity footprint
		if drv.Intn(8) == 0 {
			indexed.Writeback(pa)
			scan.Writeback(pa)
			continue
		}
		h1 := indexed.Access(pa)
		h2 := scan.Access(pa)
		if h1 != h2 {
			t.Fatalf("op %d: Access(%v) diverged: indexed=%v scan=%v", op, pa, h1, h2)
		}
	}
	if indexed.Stats() != scan.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", indexed.Stats(), scan.Stats())
	}
}

// TestL2IndexToggleMidstream flips the toggle mid-workload: the index is
// maintained unconditionally, so lookups must stay coherent.
func TestL2IndexToggleMidstream(t *testing.T) {
	l := NewL2Custom(1<<14, 4, 12)
	ref := NewL2Custom(1<<14, 4, 12)
	ref.SetIndexed(false)
	drv := rng.New(29)
	for op := 0; op < 20000; op++ {
		if op%173 == 0 {
			l.SetIndexed(op%346 == 0)
		}
		pa := mem.Addr(drv.Intn(1 << 17))
		if l.Access(pa) != ref.Access(pa) {
			t.Fatalf("op %d: toggled L2 diverged", op)
		}
	}
}
