// Package cache implements the memory-side substrate: the banked,
// physically indexed/physically tagged (PIPT) L1 data cache with
// conventional and reduced (way-determined) access modes, and the L2/DRAM
// latency models behind it (paper Tab. II: 32 KByte 4-way L1 with four
// independent single-ported banks and 64 byte lines; 1 MByte 16-way L2 at
// 12 cycles; DRAM at 54 cycles).
package cache

import (
	"fmt"

	"malec/internal/mem"
)

// Line is one L1 cache line's state. Data values are not simulated — only
// placement, so tags suffice.
type Line struct {
	Valid bool
	Dirty bool
	// PLine is the physical line-aligned address held by this way.
	PLine mem.Addr
}

// Stats counts L1 activity, split by array so the energy model can price
// tag and data accesses separately, and by access mode (Sec. V):
//
//   - conventional access: all tag arrays + all data arrays read in
//     parallel, the matching way's data selected;
//   - reduced access: tag arrays bypassed, exactly one data array read.
type Stats struct {
	Loads  uint64
	Stores uint64
	Hits   uint64
	Misses uint64

	ConventionalReads uint64 // loads performed in conventional mode
	ReducedReads      uint64 // loads performed in reduced mode

	TagWayReads   uint64 // individual tag-array reads
	DataWayReads  uint64 // individual data-array reads
	DataWayWrites uint64 // individual data-array writes
	TagWayWrites  uint64 // tag writes (fills)

	Fills      uint64
	Evictions  uint64
	Writebacks uint64
}

// MissRate returns misses / (hits+misses).
func (s Stats) MissRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

// L1 is the banked PIPT L1 data cache. The cache itself is unmodified
// relative to a conventional design ("to allow the re-use of existing,
// highly optimized designs"); MALEC-specific behaviour lives in the access
// mode chosen by the caller.
type L1 struct {
	ways int
	sets int

	lines []Line   // flattened [set][way]: index set*ways+way
	lru   []uint64 // LRU stamps, same layout
	clock uint64

	// ConstrainWays enforces the way-table encodability constraint
	// (Sec. V): a line whose in-page index is l is never allocated into
	// way (l/4) mod ways, so 2 bits suffice for validity+way. Working
	// sets may still use all ways (the excluded way differs per line).
	ConstrainWays bool

	// OnFill is invoked after a line fill with the physical line address
	// and placement (way-table validity maintenance).
	OnFill func(pline mem.Addr, set, way int)
	// OnEvict is invoked when a valid line is displaced or invalidated.
	OnEvict func(pline mem.Addr, set, way int)

	stats Stats
}

// NewL1 returns an L1 with the paper's geometry (mem.L1Sets x mem.L1Ways).
func NewL1() *L1 { return NewL1Custom(mem.L1Sets, mem.L1Ways) }

// NewL1Custom returns an L1 with explicit geometry (sets must be divisible
// by mem.NumBanks).
func NewL1Custom(sets, ways int) *L1 {
	if sets <= 0 || ways <= 0 {
		panic("cache: non-positive L1 geometry")
	}
	if sets%mem.NumBanks != 0 {
		panic(fmt.Sprintf("cache: %d sets not divisible by %d banks", sets, mem.NumBanks))
	}
	// Flat slabs (two allocations total, not two per set): construction
	// cost matters because every simulation run builds a fresh L1.
	c := &L1{ways: ways, sets: sets}
	c.lines = make([]Line, sets*ways)
	c.lru = make([]uint64, sets*ways)
	return c
}

// Ways returns the associativity.
func (c *L1) Ways() int { return c.ways }

// Sets returns the total number of sets.
func (c *L1) Sets() int { return c.sets }

// Stats returns a copy of the activity counters.
func (c *L1) Stats() Stats { return c.stats }

// set returns the set index of a physical address.
func (c *L1) set(pa mem.Addr) int {
	return int((uint64(pa.Canon()) >> mem.LineShift) % uint64(c.sets))
}

// Bank returns the bank servicing physical address pa.
func (c *L1) Bank(pa mem.Addr) int { return c.set(pa) % mem.NumBanks }

// line returns the Line at (set, way) in the flat slab.
func (c *L1) line(s, w int) *Line { return &c.lines[s*c.ways+w] }

// Probe reports whether pa is resident and in which way, without touching
// statistics or LRU state.
func (c *L1) Probe(pa mem.Addr) (way int, hit bool) {
	base := c.set(pa) * c.ways
	target := pa.LineAddr()
	for w := 0; w < c.ways; w++ {
		if ln := &c.lines[base+w]; ln.Valid && ln.PLine == target {
			return w, true
		}
	}
	return -1, false
}

// touch updates LRU state for (set, way).
func (c *L1) touch(s, w int) {
	c.clock++
	c.lru[s*c.ways+w] = c.clock
}

// ReadConventional performs a conventional-mode load lookup: all tag arrays
// and all data arrays are accessed in parallel (the high-performance access
// of Sec. V). It returns the hit way, or -1 on miss.
func (c *L1) ReadConventional(pa mem.Addr) (way int, hit bool) {
	c.stats.Loads++
	c.stats.ConventionalReads++
	c.stats.TagWayReads += uint64(c.ways)
	c.stats.DataWayReads += uint64(c.ways)
	way, hit = c.Probe(pa)
	if hit {
		c.stats.Hits++
		c.touch(c.set(pa), way)
		return way, true
	}
	c.stats.Misses++
	return -1, false
}

// ReadReduced performs a reduced-mode load: the tag arrays are bypassed and
// only the predicted data array is read. The way-table guarantees validity,
// so a reduced read always hits; ReadReduced panics if the guarantee is
// violated (that would be a way-table coherence bug).
func (c *L1) ReadReduced(pa mem.Addr, way int) {
	c.stats.Loads++
	c.stats.ReducedReads++
	c.stats.DataWayReads++
	s := c.set(pa)
	if way < 0 || way >= c.ways || !c.line(s, way).Valid ||
		c.line(s, way).PLine != pa.LineAddr() {
		panic(fmt.Sprintf("cache: reduced access to %v way %d violated way-table guarantee", pa, way))
	}
	c.stats.Hits++
	c.touch(s, way)
}

// Write performs a store access: one tag lookup across ways plus a single
// data-array write on a hit. It returns the hit way, or -1 on miss (the
// caller then fills with write-allocate and retries).
func (c *L1) Write(pa mem.Addr) (way int, hit bool) {
	c.stats.Stores++
	c.stats.TagWayReads += uint64(c.ways)
	way, hit = c.Probe(pa)
	if !hit {
		c.stats.Misses++
		return -1, false
	}
	c.stats.Hits++
	c.stats.DataWayWrites++
	s := c.set(pa)
	c.line(s, way).Dirty = true
	c.touch(s, way)
	return way, true
}

// WriteReduced performs a store with a known, valid way: tag arrays are
// bypassed entirely.
func (c *L1) WriteReduced(pa mem.Addr, way int) {
	c.stats.Stores++
	c.stats.DataWayWrites++
	s := c.set(pa)
	if way < 0 || way >= c.ways || !c.line(s, way).Valid ||
		c.line(s, way).PLine != pa.LineAddr() {
		panic(fmt.Sprintf("cache: reduced store to %v way %d violated way-table guarantee", pa, way))
	}
	c.stats.Hits++
	c.line(s, way).Dirty = true
	c.touch(s, way)
}

// Fill allocates a line for pa, selecting an LRU victim among the allowed
// ways, and returns the placement plus any displaced dirty line (for
// writeback). OnEvict/OnFill hooks fire for way-table maintenance.
func (c *L1) Fill(pa mem.Addr) (way int, victim mem.Addr, writeback bool) {
	s := c.set(pa)
	excluded := -1
	if c.ConstrainWays {
		excluded = pa.ExcludedWay() % c.ways
	}
	// Prefer an invalid allowed way.
	way = -1
	base := s * c.ways
	for w := 0; w < c.ways; w++ {
		if w == excluded {
			continue
		}
		if !c.lines[base+w].Valid {
			way = w
			break
		}
	}
	if way < 0 {
		// LRU among allowed ways.
		var bestStamp uint64
		for w := 0; w < c.ways; w++ {
			if w == excluded {
				continue
			}
			if way < 0 || c.lru[base+w] < bestStamp {
				way, bestStamp = w, c.lru[base+w]
			}
		}
	}
	old := c.lines[base+way]
	if old.Valid {
		c.stats.Evictions++
		if old.Dirty {
			c.stats.Writebacks++
			victim, writeback = old.PLine, true
		} else {
			victim = old.PLine
		}
		if c.OnEvict != nil {
			c.OnEvict(old.PLine, s, way)
		}
	}
	c.lines[base+way] = Line{Valid: true, PLine: pa.LineAddr()}
	c.stats.Fills++
	c.stats.TagWayWrites++
	c.stats.DataWayWrites++
	c.touch(s, way)
	if c.OnFill != nil {
		c.OnFill(pa.LineAddr(), s, way)
	}
	return way, victim, writeback
}

// MarkDirty marks the line holding pa dirty (used when a fill is directly
// followed by the store that caused it).
func (c *L1) MarkDirty(pa mem.Addr) {
	if w, hit := c.Probe(pa); hit {
		c.line(c.set(pa), w).Dirty = true
	}
}

// InvalidateAll clears the cache, firing OnEvict for each valid line.
func (c *L1) InvalidateAll() {
	for s := 0; s < c.sets; s++ {
		for w := 0; w < c.ways; w++ {
			if ln := c.line(s, w); ln.Valid {
				if c.OnEvict != nil {
					c.OnEvict(ln.PLine, s, w)
				}
				*ln = Line{}
			}
		}
	}
}
