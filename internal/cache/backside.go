package cache

import "malec/internal/mem"

// L2 is a set-associative latency/hit model of the unified L2 cache. The
// paper keeps L2 and below out of the energy accounting ("MALEC alters the
// timing of L2 accesses, but does not significantly impact their number or
// miss rate"), so the L2 tracks residency and counts only.
//
// Residency checks are O(1) by default: a line-ID -> flat-slot hash index
// replaces the per-access tag scan over all ways (at 16 ways this was the
// largest remaining per-access scan on the memory side; miss-dominated
// workloads pay it on every L1 miss). A line maps to exactly one set and is
// resident in at most one way, so index hit/miss exactly matches the scan.
// The scan stays behind SetIndexed(false) as the differential reference
// (config.DisableMemIndex / MALEC_NO_MEM_INDEX=1); victim selection on a
// miss is the same LRU sweep either way.
type L2 struct {
	ways int
	sets int
	// lines and lru are flat set-major arrays (set s, way w at s*ways+w):
	// two allocations per L2 instead of two per set, which matters when
	// the engine spins up thousands of short simulations.
	lines []Line
	lru   []uint64
	clock uint64

	useIndex bool
	// idx chains resident flat slots by line ID (physical address >>
	// LineShift). Maintained on every fill/eviction regardless of mode,
	// so the toggle may flip anytime.
	idx *mem.SlotIndex

	Latency     int // cycles added on an L1 miss that hits L2
	accesses    uint64
	hits        uint64
	misses      uint64
	writebacks  uint64
	fillsFromLo uint64
}

// L2Stats summarizes L2 activity.
type L2Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// NewL2 returns the paper's 1 MByte 16-way, 12-cycle L2.
func NewL2() *L2 { return NewL2Custom(1<<20, 16, 12) }

// NewL2Custom returns an L2 with explicit capacity/associativity/latency.
func NewL2Custom(capacity, ways, latency int) *L2 {
	sets := capacity / (mem.LineSize * ways)
	if sets <= 0 {
		panic("cache: L2 too small")
	}
	l := &L2{ways: ways, sets: sets, Latency: latency, useIndex: true}
	l.lines = make([]Line, sets*ways)
	l.lru = make([]uint64, sets*ways)
	l.idx = mem.NewSlotIndex(sets * ways)
	return l
}

// SetIndexed selects between the indexed (default) and scan residency
// paths. Host-simulator work only, never simulated results.
func (l *L2) SetIndexed(on bool) { l.useIndex = on }

// lineID is the index key of a line-aligned physical address.
func lineID(target mem.Addr) uint32 {
	return uint32(uint64(target) >> mem.LineShift)
}

// Stats returns the L2 activity counters.
func (l *L2) Stats() L2Stats {
	return L2Stats{Accesses: l.accesses, Hits: l.hits, Misses: l.misses,
		Writebacks: l.writebacks}
}

func (l *L2) set(pa mem.Addr) int {
	return int((uint64(pa.Canon()) >> mem.LineShift) % uint64(l.sets))
}

// Access looks up pa, filling on miss, and reports whether it hit.
func (l *L2) Access(pa mem.Addr) (hit bool) {
	l.accesses++
	base := l.set(pa) * l.ways
	target := pa.LineAddr()
	if l.useIndex {
		for slot := l.idx.First(lineID(target)); slot >= 0; slot = l.idx.Next(slot) {
			if l.lines[slot].PLine == target {
				l.hits++
				l.clock++
				l.lru[slot] = l.clock
				return true
			}
		}
	} else {
		for w := 0; w < l.ways; w++ {
			if ln := &l.lines[base+w]; ln.Valid && ln.PLine == target {
				l.hits++
				l.clock++
				l.lru[base+w] = l.clock
				return true
			}
		}
	}
	l.misses++
	// Fill (LRU victim).
	lines := l.lines[base : base+l.ways]
	lru := l.lru[base : base+l.ways]
	way := 0
	for w := 1; w < l.ways; w++ {
		if lru[w] < lru[way] {
			way = w
		}
	}
	if old := lines[way]; old.Valid {
		l.idx.Remove(lineID(old.PLine), int32(base+way))
	}
	lines[way] = Line{Valid: true, PLine: target}
	l.idx.Add(lineID(target), int32(base+way))
	l.clock++
	lru[way] = l.clock
	return false
}

// Writeback absorbs a dirty L1 line (allocate on write).
func (l *L2) Writeback(pa mem.Addr) {
	l.writebacks++
	l.Access(pa) // ensure residency; counts as an access
}

// DRAM models main memory as a fixed additional latency.
type DRAM struct {
	Latency  int
	accesses uint64
}

// NewDRAM returns the paper's 54-cycle DRAM model.
func NewDRAM() *DRAM { return &DRAM{Latency: 54} }

// Access counts one DRAM access and returns its latency.
func (d *DRAM) Access() int {
	d.accesses++
	return d.Latency
}

// Accesses returns the access count.
func (d *DRAM) Accesses() uint64 { return d.accesses }

// Backside bundles everything behind the L1: it converts an L1 miss into an
// additional latency and keeps residency of lower levels coherent.
type Backside struct {
	L2   *L2
	DRAM *DRAM
}

// NewBackside returns a Backside with the paper's L2 and DRAM parameters.
func NewBackside() *Backside { return &Backside{L2: NewL2(), DRAM: NewDRAM()} }

// Miss services an L1 miss for pa and returns the extra cycles beyond the
// L1 access itself.
func (b *Backside) Miss(pa mem.Addr) int {
	lat := b.L2.Latency
	if !b.L2.Access(pa) {
		lat += b.DRAM.Access()
	}
	return lat
}

// Writeback forwards a dirty L1 victim to the L2.
func (b *Backside) Writeback(pa mem.Addr) { b.L2.Writeback(pa) }

// HasDeferredWork reports whether the backside holds work that completes in
// a later cycle on its own. The L2 and DRAM models are synchronous — Miss
// returns its full latency immediately and schedules nothing, with
// MSHR-induced waits folded into the requesting load's completion time —
// so there is never deferred work here. The predicate is part of the
// cycle-skipping contract (core.System nextWork) and keeps that logic
// correct if a future change makes the backside event-driven.
func (b *Backside) HasDeferredWork() bool { return false }
