package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the le (inclusive upper bound)
// bucket semantics: an observation equal to a bound lands in that
// bound's bucket, one nanosecond above lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond})
	cases := []struct {
		d    time.Duration
		want int // bucket index
	}{
		{0, 0},
		{time.Millisecond - 1, 0},
		{time.Millisecond, 0}, // le: exactly on the bound is inside
		{time.Millisecond + 1, 1},
		{10 * time.Millisecond, 1},
		{10*time.Millisecond + 1, 2},
		{100 * time.Millisecond, 2},
		{100*time.Millisecond + 1, 3}, // +Inf overflow bucket
		{time.Hour, 3},
	}
	for _, c := range cases {
		before := make([]uint64, len(h.buckets))
		for i := range h.buckets {
			before[i] = h.buckets[i].Load()
		}
		h.Observe(c.d)
		for i := range h.buckets {
			delta := h.buckets[i].Load() - before[i]
			if (i == c.want) != (delta == 1) {
				t.Fatalf("Observe(%v): bucket %d delta %d, want observation in bucket %d",
					c.d, i, delta, c.want)
			}
		}
	}
	if got := h.Count(); got != uint64(len(cases)) {
		t.Fatalf("Count() = %d, want %d", got, len(cases))
	}
	if got := h.Max(); got != time.Hour {
		t.Fatalf("Max() = %v, want %v", got, time.Hour)
	}
}

// TestHistogramQuantile checks the interpolated quantile estimate against
// a known distribution, and that the +Inf bucket resolves to the exact
// maximum instead of an unbounded guess.
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond})
	// 100 observations uniform in (0, 10ms]: p50 should interpolate to
	// ~5ms inside the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * 100 * time.Microsecond)
	}
	p50 := h.Quantile(0.50)
	if p50 < 4*time.Millisecond || p50 > 6*time.Millisecond {
		t.Fatalf("p50 = %v, want ~5ms", p50)
	}
	// All mass below 10ms: p99 stays in the first bucket.
	if p99 := h.Quantile(0.99); p99 > 10*time.Millisecond {
		t.Fatalf("p99 = %v, want <= 10ms", p99)
	}
	// One overflow observation: p100 must be the exact max.
	h.Observe(3 * time.Second)
	if q := h.Quantile(1.0); q != 3*time.Second {
		t.Fatalf("overflow quantile = %v, want exact max 3s", q)
	}

	var empty Histogram
	if q := (&empty).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
}

// TestConcurrentObserve hammers one histogram and one counter from many
// goroutines while a reader scrapes; run under -race this is the data
// race guard for the whole hot path.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_seconds", "test", nil)
	c := r.Counter("t_total", "test")
	g := r.Gauge("t_inflight", "test")

	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				r.WritePrometheus(&sb) //nolint:errcheck // strings.Builder cannot fail
				r.Snapshot()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(w*perWorker+i) * time.Microsecond)
				c.Inc()
				g.Inc()
				g.Dec()
			}
		}(w)
	}
	// Stop the scraper only after every writer finished, so it always
	// races against live updates.
	for c.Value() < workers*perWorker {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
}

// TestWritePrometheusGolden pins the full text exposition output for a
// deterministic registry: family grouping, HELP/TYPE lines, label
// rendering and escaping, cumulative histogram buckets, le formatting.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("malecd_http_requests_total", "Requests served.",
		Label{"endpoint", "/v1/run"}, Label{"code", "2xx"})
	c2 := r.Counter("malecd_http_requests_total", "Requests served.",
		Label{"endpoint", "/v1/run"}, Label{"code", "4xx"})
	g := r.Gauge("malecd_http_in_flight", "In-flight requests.",
		Label{"endpoint", "/v1/run"})
	h := r.Histogram("malecd_http_request_seconds", "Request latency.",
		[]time.Duration{time.Millisecond, 100 * time.Millisecond},
		Label{"endpoint", "/v1/run"})
	r.GaugeFunc("malec_engine_cache_entries", "Cache entries.", func() float64 { return 7 })
	esc := r.Counter("t_escaped_total", "Escaping.", Label{"path", `a"b\c`})

	c1.Add(3)
	c2.Inc()
	g.Set(2)
	h.Observe(500 * time.Microsecond)  // first bucket
	h.Observe(time.Millisecond)        // still first (le)
	h.Observe(50 * time.Millisecond)   // second
	h.Observe(2500 * time.Millisecond) // +Inf
	esc.Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP malecd_http_requests_total Requests served.
# TYPE malecd_http_requests_total counter
malecd_http_requests_total{endpoint="/v1/run",code="2xx"} 3
malecd_http_requests_total{endpoint="/v1/run",code="4xx"} 1
# HELP malecd_http_in_flight In-flight requests.
# TYPE malecd_http_in_flight gauge
malecd_http_in_flight{endpoint="/v1/run"} 2
# HELP malecd_http_request_seconds Request latency.
# TYPE malecd_http_request_seconds histogram
malecd_http_request_seconds_bucket{endpoint="/v1/run",le="0.001"} 2
malecd_http_request_seconds_bucket{endpoint="/v1/run",le="0.1"} 3
malecd_http_request_seconds_bucket{endpoint="/v1/run",le="+Inf"} 4
malecd_http_request_seconds_sum{endpoint="/v1/run"} 2.5515
malecd_http_request_seconds_count{endpoint="/v1/run"} 4
# HELP malec_engine_cache_entries Cache entries.
# TYPE malec_engine_cache_entries gauge
malec_engine_cache_entries 7
# HELP t_escaped_total Escaping.
# TYPE t_escaped_total counter
t_escaped_total{path="a\"b\\c"} 1
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestSnapshot checks the JSON-side dump: key rendering and per-type
// routing, histogram summaries included.
func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c", Label{"k", "v"})
	g := r.Gauge("g", "g")
	h := r.Histogram("h_seconds", "h", []time.Duration{time.Millisecond})
	scrapes := 0
	r.OnScrape(func() { scrapes++ })
	r.GaugeFunc("fn", "fn", func() float64 { return 1.5 })

	c.Add(2)
	g.Set(-4)
	h.Observe(2 * time.Millisecond)

	s := r.Snapshot()
	if scrapes != 1 {
		t.Fatalf("OnScrape ran %d times, want 1", scrapes)
	}
	if s.Counters[`c_total{k="v"}`] != 2 {
		t.Fatalf("counter snapshot = %v", s.Counters)
	}
	if s.Gauges["g"] != -4 || s.Gauges["fn"] != 1.5 {
		t.Fatalf("gauge snapshot = %v", s.Gauges)
	}
	hs, ok := s.Histograms["h_seconds"]
	if !ok || hs.Count != 1 || hs.MaxMs != 2 {
		t.Fatalf("histogram snapshot = %+v", s.Histograms)
	}
}

// TestRegistrationPanics pins the programmer-error guards: one name
// cannot carry two types, and an identical (name, labels) pair cannot be
// registered twice.
func TestRegistrationPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("x_total", "x")
	expectPanic("type conflict", func() { r.Gauge("x_total", "x") })
	expectPanic("duplicate", func() { r.Counter("x_total", "x") })
}

// TestObserveAllocationFree locks in the zero-allocation guarantee of
// every hot-path operation; a map lookup or label render sneaking into
// Observe would show up here long before it showed up in a profile.
func TestObserveAllocationFree(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "h", nil, Label{"endpoint", "/v1/run"})
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(3 * time.Millisecond)
	}); n != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Inc()
		g.Dec()
	}); n != 0 {
		t.Fatalf("Counter/Gauge ops allocate %.1f/op, want 0", n)
	}
}
