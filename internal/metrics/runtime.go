package metrics

import "runtime"

// RegisterBuildInfo registers the conventional malec_build_info gauge: a
// constant 1 whose labels carry the build's identity, so dashboards can
// join any other series against version and Go toolchain (the standard
// Prometheus info-metric idiom).
func RegisterBuildInfo(r *Registry, version string) {
	r.GaugeFunc("malec_build_info",
		"Build identity; constant 1, labels carry the version.",
		func() float64 { return 1 },
		Label{Name: "version", Value: version},
		Label{Name: "goversion", Value: runtime.Version()},
	)
}

// RegisterRuntime registers Go runtime health gauges: goroutine count (the
// first number to look at when a server leaks work) and live heap bytes.
// Sampled at scrape time; ReadMemStats costs a brief stop-the-world, which
// is noise at human scrape intervals.
func RegisterRuntime(r *Registry) {
	r.GaugeFunc("go_goroutines",
		"Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) },
	)
	r.GaugeFunc("go_heap_bytes",
		"Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		},
	)
}
