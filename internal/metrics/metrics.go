// Package metrics is a small, allocation-conscious metrics library for
// the serving layer: counters, gauges and fixed-bucket latency histograms
// collected into a Registry that renders the Prometheus text exposition
// format (no external dependencies) and a JSON-friendly Snapshot.
//
// The hot paths — Counter.Inc/Add, Gauge ops, Histogram.Observe — are
// single atomic operations (plus a short fixed-bound scan for the
// histogram bucket) and allocate nothing, so instrumenting a request
// path costs nanoseconds and never perturbs the allocation ceilings the
// core is gated on. All rendering work (label strings, family grouping)
// happens once at registration time.
//
// Metrics are identified by a family name plus an optional fixed label
// set, resolved at construction: per-endpoint instruments are distinct
// Counter/Histogram values sharing one family, which is exactly the
// Prometheus data model and keeps request handling free of any map
// lookups or label formatting.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one fixed name="value" pair attached to a metric at
// construction time.
type Label struct {
	Name  string
	Value string
}

// Counter is a monotonically increasing value. The zero value is usable
// but unregistered; obtain registered counters from Registry.Counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefLatencyBuckets are the default latency histogram bounds: 0.5ms to
// 10s in a roughly 1-2.5-5 progression, wide enough to cover both a
// cache-hit response (tens of microseconds server-side) and a full sweep
// under saturation.
var DefLatencyBuckets = []time.Duration{
	500 * time.Microsecond,
	time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
}

// Histogram counts observations into fixed buckets chosen at
// construction. Observe is lock-free: one atomic add into the bucket
// whose upper bound first contains the value (le semantics, matching
// Prometheus), one into the count, one into the nanosecond sum, plus a
// CAS max so snapshots can report an exact maximum alongside the
// bucket-interpolated quantiles.
type Histogram struct {
	boundsNs  []int64 // sorted upper bounds, nanoseconds; +Inf implicit
	boundsSec []float64
	buckets   []atomic.Uint64 // len(boundsNs)+1, non-cumulative
	count     atomic.Uint64
	sumNs     atomic.Int64
	maxNs     atomic.Int64
}

// newHistogram builds an unregistered histogram over the given bounds.
func newHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	h := &Histogram{
		boundsNs:  make([]int64, len(bounds)),
		boundsSec: make([]float64, len(bounds)),
		buckets:   make([]atomic.Uint64, len(bounds)+1),
	}
	for i, b := range bounds {
		h.boundsNs[i] = b.Nanoseconds()
		h.boundsSec[i] = b.Seconds()
	}
	if !sort.SliceIsSorted(h.boundsNs, func(i, j int) bool { return h.boundsNs[i] < h.boundsNs[j] }) {
		panic("metrics: histogram bounds must be sorted ascending")
	}
	return h
}

// Observe records one duration. It is safe for concurrent use and
// performs no allocation.
func (h *Histogram) Observe(d time.Duration) {
	n := d.Nanoseconds()
	i := 0
	for i < len(h.boundsNs) && n > h.boundsNs[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(n)
	for {
		old := h.maxNs.Load()
		if n <= old || h.maxNs.CompareAndSwap(old, n) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Max returns the largest observation seen (exact, not bucketed).
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the bucket containing the target rank, the same estimate
// Prometheus' histogram_quantile computes. Observations in the overflow
// (+Inf) bucket resolve to the exact observed maximum rather than an
// unbounded guess. Returns 0 when nothing has been observed.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.buckets {
		c := float64(h.buckets[i].Load())
		if c == 0 {
			continue
		}
		if cum+c < rank {
			cum += c
			continue
		}
		if i == len(h.boundsNs) {
			return h.Max()
		}
		var lower int64
		if i > 0 {
			lower = h.boundsNs[i-1]
		}
		upper := h.boundsNs[i]
		frac := (rank - cum) / c
		est := time.Duration(float64(lower) + float64(upper-lower)*frac)
		if m := h.Max(); est > m {
			// The interpolation assumes observations spread across the
			// whole bucket; the exact max is a tighter upper bound.
			est = m
		}
		return est
	}
	return h.Max()
}

// HistogramSnapshot is the JSON-friendly summary of a histogram.
type HistogramSnapshot struct {
	Count      uint64  `json:"count"`
	SumSeconds float64 `json:"sumSeconds"`
	P50Ms      float64 `json:"p50Ms"`
	P90Ms      float64 `json:"p90Ms"`
	P99Ms      float64 `json:"p99Ms"`
	MaxMs      float64 `json:"maxMs"`
}

// Snap summarizes the histogram for JSON.
func (h *Histogram) Snap() HistogramSnapshot {
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	return HistogramSnapshot{
		Count:      h.Count(),
		SumSeconds: h.Sum().Seconds(),
		P50Ms:      ms(h.Quantile(0.50)),
		P90Ms:      ms(h.Quantile(0.90)),
		P99Ms:      ms(h.Quantile(0.99)),
		MaxMs:      ms(h.Max()),
	}
}

// metric renders one registered instrument's sample lines.
type metric interface {
	writeText(b *strings.Builder, name, labels string)
	snapInto(s *Snapshot, key string)
}

// family groups all instruments sharing one metric name.
type family struct {
	name string
	help string
	typ  string
	rows []row
}

// row is one labeled instrument within a family.
type row struct {
	labels string // pre-rendered: "" or `{k="v",...}`
	m      metric
}

// Registry holds registered metrics and renders them. Registration is
// expected at construction time of the instrumented component; reads
// (WritePrometheus, Snapshot) may run concurrently with hot-path updates.
type Registry struct {
	mu       sync.Mutex
	fams     []*family
	byName   map[string]*family
	onScrape []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// OnScrape registers a hook invoked (under the registry lock) at the
// start of every WritePrometheus or Snapshot call. Components whose
// counters live elsewhere (e.g. the engine's Stats) refresh one coherent
// snapshot here for their CounterFunc/GaugeFunc closures to read.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onScrape = append(r.onScrape, fn)
}

// register attaches one instrument to its (possibly new) family.
func (r *Registry) register(name, help, typ string, labels []Label, m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.fams = append(r.fams, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, f.typ, typ))
	}
	ls := renderLabels(labels)
	for _, row := range f.rows {
		if row.labels == ls {
			panic(fmt.Sprintf("metrics: duplicate registration of %s%s", name, ls))
		}
	}
	f.rows = append(f.rows, row{labels: ls, m: m})
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", labels, (*counterMetric)(c))
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", labels, (*gaugeMetric)(g))
	return g
}

// Histogram registers and returns a histogram over the given bucket
// bounds (nil selects DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []time.Duration, labels ...Label) *Histogram {
	h := newHistogram(bounds)
	r.register(name, help, "histogram", labels, (*histogramMetric)(h))
	return h
}

// CounterFunc registers a counter whose value is computed at scrape time.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "counter", labels, funcMetric(fn))
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "gauge", labels, funcMetric(fn))
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format, families in registration order, rows in
// registration order within a family — deterministic, so output is
// golden-testable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	for _, fn := range r.onScrape {
		fn()
	}
	var b strings.Builder
	for _, f := range r.fams {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, row := range f.rows {
			row.m.writeText(&b, f.name, row.labels)
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot is a JSON-friendly dump of every registered metric, keyed by
// name plus rendered labels.
type Snapshot struct {
	Counters   map[string]float64           `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]float64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fn := range r.onScrape {
		fn()
	}
	for _, f := range r.fams {
		for _, row := range f.rows {
			key := f.name + row.labels
			switch f.typ {
			case "histogram":
				row.m.snapInto(&s, key)
			case "counter":
				s.Counters[key] = valueOf(row.m)
			default:
				s.Gauges[key] = valueOf(row.m)
			}
		}
	}
	return s
}

// valueOf extracts a scalar metric's current value.
func valueOf(m metric) float64 {
	switch v := m.(type) {
	case *counterMetric:
		return float64((*Counter)(v).Value())
	case *gaugeMetric:
		return float64((*Gauge)(v).Value())
	case funcMetric:
		return v()
	}
	return math.NaN()
}

// counterMetric adapts Counter to the metric interface.
type counterMetric Counter

func (c *counterMetric) writeText(b *strings.Builder, name, labels string) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint((*Counter)(c).Value(), 10))
	b.WriteByte('\n')
}

func (c *counterMetric) snapInto(s *Snapshot, key string) {
	s.Counters[key] = float64((*Counter)(c).Value())
}

// gaugeMetric adapts Gauge to the metric interface.
type gaugeMetric Gauge

func (g *gaugeMetric) writeText(b *strings.Builder, name, labels string) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt((*Gauge)(g).Value(), 10))
	b.WriteByte('\n')
}

func (g *gaugeMetric) snapInto(s *Snapshot, key string) {
	s.Gauges[key] = float64((*Gauge)(g).Value())
}

// funcMetric adapts a scrape-time callback to the metric interface.
type funcMetric func() float64

func (f funcMetric) writeText(b *strings.Builder, name, labels string) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(f()))
	b.WriteByte('\n')
}

func (f funcMetric) snapInto(s *Snapshot, key string) {
	s.Gauges[key] = f()
}

// histogramMetric adapts Histogram to the metric interface.
type histogramMetric Histogram

func (hm *histogramMetric) writeText(b *strings.Builder, name, labels string) {
	h := (*Histogram)(hm)
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(h.boundsSec) {
			le = formatFloat(h.boundsSec[i])
		}
		b.WriteString(name)
		b.WriteString("_bucket")
		b.WriteString(mergeLabel(labels, "le", le))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(cum, 10))
		b.WriteByte('\n')
	}
	b.WriteString(name)
	b.WriteString("_sum")
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(h.Sum().Seconds()))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(h.Count(), 10))
	b.WriteByte('\n')
}

func (hm *histogramMetric) snapInto(s *Snapshot, key string) {
	s.Histograms[key] = (*Histogram)(hm).Snap()
}

// renderLabels renders a fixed label set once, at registration.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabel appends one extra label pair to a pre-rendered label string
// (used for histogram le labels).
func mergeLabel(labels, name, value string) string {
	extra := name + `="` + escapeLabel(value) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
