package energy

import "fmt"

// Area model: a lightweight bit-count based estimator used to quantify the
// paper's area claims, most importantly Sec. V: packing validity+way into 2
// bits per line "reduc[es] area and leakage power by 1/3 compared to the
// naive format that uses separate bit fields; i.e. 128bit instead of 192bit
// for 64 lines per page".

// AreaParams holds the per-bit and per-port area constants (relative
// units; only ratios are meaningful, matching the energy model's
// philosophy).
type AreaParams struct {
	// BitArea is the area of one single-ported SRAM bit cell.
	BitArea float64
	// PortFactor is the per-extra-port area multiplier addend (multi-
	// ported cells need extra word/bit lines; ~0.8 matches the paper's
	// leakage observation, leakage being roughly proportional to area).
	PortFactor float64
	// CamFactor is the area premium of a content-addressable (fully
	// associative search) bit over a plain SRAM bit.
	CamFactor float64
}

// DefaultAreaParams returns the calibrated constants.
func DefaultAreaParams() AreaParams {
	return AreaParams{BitArea: 1.0, PortFactor: 0.8, CamFactor: 1.6}
}

// Structure describes one SRAM/CAM structure for area estimation.
type Structure struct {
	Name       string
	Bits       int
	ExtraPorts int
	CAM        bool // fully-associative tag array
}

// Area returns the structure's estimated area in relative units.
func (p AreaParams) Area(s Structure) float64 {
	a := p.BitArea * float64(s.Bits)
	if s.CAM {
		a *= p.CamFactor
	}
	return a * (1 + p.PortFactor*float64(s.ExtraPorts))
}

// TotalArea sums the areas of several structures.
func (p AreaParams) TotalArea(structs []Structure) float64 {
	var sum float64
	for _, s := range structs {
		sum += p.Area(s)
	}
	return sum
}

// WayTableEntryBitsPacked is the paper's 2-bit-per-line encoding (Sec. V).
const WayTableEntryBitsPacked = 2 * 64 // 128

// WayTableEntryBitsNaive is the naive separate valid + 2-bit way format.
const WayTableEntryBitsNaive = 3 * 64 // 192

// WayTableAreaSaving returns the fractional area saving of the packed
// encoding over the naive one (paper: 1/3).
func WayTableAreaSaving() float64 {
	return 1 - float64(WayTableEntryBitsPacked)/float64(WayTableEntryBitsNaive)
}

// InterfaceStructures returns the area-relevant structures of an L1
// interface configuration for reporting: the L1 arrays, translation
// structures and (when present) way tables or WDU.
func InterfaceStructures(l1ExtraPorts, tlbExtraPorts int, wayTables bool, wduEntries, wduPorts int) []Structure {
	structs := []Structure{
		{Name: "L1 data", Bits: 32 * 1024 * 8, ExtraPorts: l1ExtraPorts},
		{Name: "L1 tags", Bits: 128 * 4 * 22, ExtraPorts: l1ExtraPorts},
		{Name: "uTLB", Bits: 16 * 40, ExtraPorts: tlbExtraPorts, CAM: true},
		{Name: "TLB", Bits: 64 * 40, ExtraPorts: tlbExtraPorts, CAM: true},
	}
	if wayTables {
		structs = append(structs,
			Structure{Name: "uWT", Bits: 16 * WayTableEntryBitsPacked},
			Structure{Name: "WT", Bits: 64 * WayTableEntryBitsPacked})
	}
	if wduEntries > 0 {
		structs = append(structs, Structure{
			Name: "WDU", Bits: wduEntries * 29,
			ExtraPorts: wduPorts - 1, CAM: true})
	}
	return structs
}

// AreaReport renders the structures and their areas.
func AreaReport(p AreaParams, structs []Structure) string {
	out := ""
	total := 0.0
	for _, s := range structs {
		a := p.Area(s)
		total += a
		out += fmt.Sprintf("%-10s %10d bits  %12.0f units\n", s.Name, s.Bits, a)
	}
	out += fmt.Sprintf("%-10s %10s       %12.0f units\n", "TOTAL", "", total)
	return out
}
