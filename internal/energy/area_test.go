package energy

import (
	"math"
	"strings"
	"testing"
)

func TestWayTableAreaSavingMatchesPaper(t *testing.T) {
	// Sec. V: the packed 2-bit encoding saves 1/3 over the naive format
	// (128 vs 192 bits per 64-line entry).
	if WayTableEntryBitsPacked != 128 || WayTableEntryBitsNaive != 192 {
		t.Fatalf("entry bits %d/%d, want 128/192",
			WayTableEntryBitsPacked, WayTableEntryBitsNaive)
	}
	if got := WayTableAreaSaving(); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("area saving %v, paper says 1/3", got)
	}
}

func TestAreaPortScaling(t *testing.T) {
	p := DefaultAreaParams()
	single := p.Area(Structure{Bits: 1000})
	dual := p.Area(Structure{Bits: 1000, ExtraPorts: 1})
	if math.Abs(dual/single-1.8) > 1e-9 {
		t.Fatalf("dual/single area ratio %v, want 1.8", dual/single)
	}
	cam := p.Area(Structure{Bits: 1000, CAM: true})
	if cam <= single {
		t.Fatal("CAM bits must cost more area")
	}
}

func TestInterfaceAreas(t *testing.T) {
	p := DefaultAreaParams()
	base1 := p.TotalArea(InterfaceStructures(0, 0, false, 0, 0))
	base2 := p.TotalArea(InterfaceStructures(1, 2, false, 0, 0))
	malec := p.TotalArea(InterfaceStructures(0, 0, true, 0, 0))
	if base2 <= base1 {
		t.Fatal("multi-ported interface must be larger")
	}
	// MALEC adds only the small way tables: far cheaper than the
	// multi-ported baseline.
	if malec >= base2 {
		t.Fatalf("MALEC area %v not below Base2ld1st %v", malec, base2)
	}
	overhead := malec/base1 - 1
	if overhead <= 0 || overhead > 0.10 {
		t.Fatalf("way-table area overhead %v, expected a few percent", overhead)
	}
	report := AreaReport(p, InterfaceStructures(0, 0, true, 0, 0))
	if !strings.Contains(report, "WT") || !strings.Contains(report, "TOTAL") {
		t.Fatal("report incomplete")
	}
}

func TestWDUAreaSmallButPorted(t *testing.T) {
	p := DefaultAreaParams()
	withWDU := p.TotalArea(InterfaceStructures(0, 0, false, 16, 4))
	withWT := p.TotalArea(InterfaceStructures(0, 0, true, 0, 0))
	// A 16-entry WDU is small even with 4 ports; the point of the paper's
	// comparison is energy, not area.
	if withWDU >= withWT {
		t.Fatalf("16-entry WDU area %v >= WT area %v", withWDU, withWT)
	}
}
