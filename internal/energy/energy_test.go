package energy

import (
	"math"
	"strings"
	"testing"
)

func singlePorted() Ports { return Ports{HasWayTables: true} }

func TestReducedCheaperThanConventional(t *testing.T) {
	m := NewMeter(DefaultParams(), singlePorted())
	m.L1ConventionalRead(4)
	conv := m.dynamic()[L1]
	m2 := NewMeter(DefaultParams(), singlePorted())
	m2.L1ReducedRead()
	red := m2.dynamic()[L1]
	if red >= conv {
		t.Fatalf("reduced %v >= conventional %v", red, conv)
	}
	// The paper's scheme wins ~factor 2 per access.
	ratio := red / conv
	if ratio < 0.3 || ratio > 0.8 {
		t.Fatalf("reduced/conventional = %v, want 0.3..0.8", ratio)
	}
}

func TestPortPremiums(t *testing.T) {
	p := DefaultParams()
	base := NewMeter(p, Ports{})
	multi := NewMeter(p, Ports{L1ExtraPorts: 1, TLBExtraPorts: 2})
	base.L1ConventionalRead(4)
	multi.L1ConventionalRead(4)
	if multi.dynamic()[L1] <= base.dynamic()[L1] {
		t.Fatal("extra ports must raise dynamic energy per access")
	}
	bb := base.Finish(1000)
	mb := multi.Finish(1000)
	// Paper: an additional read port increases L1 leakage by 80%.
	ratio := mb.Leakage[L1] / bb.Leakage[L1]
	if math.Abs(ratio-1.8) > 1e-9 {
		t.Fatalf("L1 leakage port ratio = %v, want 1.8", ratio)
	}
	if mb.Leakage[TLB] <= bb.Leakage[TLB] {
		t.Fatal("TLB leakage must grow with ports")
	}
}

func TestWayTableLeakageSmall(t *testing.T) {
	// Paper: the uWT contributes ~0.3% of overall leakage.
	m := NewMeter(DefaultParams(), singlePorted())
	b := m.Finish(1_000_000)
	share := b.Leakage[UWT] / b.TotalLeakage()
	if share < 0.001 || share > 0.01 {
		t.Fatalf("uWT leakage share = %v, want ~0.003", share)
	}
}

func TestLeakageScalesWithTime(t *testing.T) {
	m := NewMeter(DefaultParams(), singlePorted())
	b1 := m.Finish(1000)
	b2 := m.Finish(2000)
	if math.Abs(b2.TotalLeakage()-2*b1.TotalLeakage()) > 1e-9 {
		t.Fatal("leakage must be linear in cycles")
	}
}

func TestWDUCosts(t *testing.T) {
	p := DefaultParams()
	small := NewMeter(p, Ports{WDUEntries: 8, WDUPorts: 4})
	big := NewMeter(p, Ports{WDUEntries: 32, WDUPorts: 4})
	small.WDULookup()
	big.WDULookup()
	if big.dynamic()[WDU] <= small.dynamic()[WDU] {
		t.Fatal("bigger WDU lookups must cost more")
	}
	bs := small.Finish(1000)
	bb := big.Finish(1000)
	if bb.Leakage[WDU] <= bs.Leakage[WDU] {
		t.Fatal("bigger WDU must leak more")
	}
	none := NewMeter(p, Ports{}).Finish(1000)
	if none.Leakage[WDU] != 0 {
		t.Fatal("no WDU configured but leaking")
	}
}

func TestNoWayTablesNoLeak(t *testing.T) {
	b := NewMeter(DefaultParams(), Ports{}).Finish(1000)
	if b.Leakage[UWT] != 0 || b.Leakage[WT] != 0 {
		t.Fatal("baselines must not pay way-table leakage")
	}
}

func TestEventAccumulation(t *testing.T) {
	m := NewMeter(DefaultParams(), singlePorted())
	m.UTLBLookup()
	m.TLBLookup()
	m.UWTRead()
	m.WTRead()
	m.UWTLineUpdate()
	m.WTLineUpdate()
	m.EntryTransfer()
	m.ReverseLookups(true, true)
	m.L1Write(4)
	m.L1ReducedWrite()
	m.L1Fill()
	m.L1Eviction()
	m.L1MissCheck(4)
	b := m.Finish(10)
	for _, c := range []Component{L1, UTLB, TLB, UWT, WT} {
		if b.Dynamic[c] <= 0 {
			t.Fatalf("component %v accumulated no dynamic energy", c)
		}
	}
	if b.Total() != b.TotalDynamic()+b.TotalLeakage() {
		t.Fatal("total mismatch")
	}
	if !strings.Contains(b.String(), "uWT") {
		t.Fatal("String() missing component")
	}
}

func TestComponentString(t *testing.T) {
	names := map[Component]string{L1: "L1", UTLB: "uTLB", TLB: "TLB",
		UWT: "uWT", WT: "WT", WDU: "WDU"}
	for c, want := range names {
		if c.String() != want {
			t.Fatalf("%d String = %q, want %q", c, c.String(), want)
		}
	}
}

func TestFillCostsMoreThanWrite(t *testing.T) {
	m1 := NewMeter(DefaultParams(), Ports{})
	m1.L1Fill()
	m2 := NewMeter(DefaultParams(), Ports{})
	m2.L1ReducedWrite()
	if m1.dynamic()[L1] <= m2.dynamic()[L1] {
		t.Fatal("a full-line fill must cost more than a word write")
	}
}
