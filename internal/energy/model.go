// Package energy provides the CACTI-substitute energy model. The paper
// combines gem5 access statistics with CACTI v6.5 energy estimates (32nm,
// low dynamic power objective, low-standby-power cells) for three component
// groups: the L1 data cache (tag/data arrays + control), uTLB+uWT and
// TLB+WT. LQ, SB and MB energy is excluded ("very similar for all analyzed
// configurations"), as are L2 and below.
//
// CACTI itself is unavailable here; this model replaces it with per-event
// unit energies whose decomposition (fixed decode/control cost + per-way
// array cost) and port-scaling laws reproduce every ratio the paper states:
//
//   - an additional L1 read port increases L1 leakage by 80%;
//   - multi-ported arrays pay a per-access dynamic premium;
//   - the uWT contributes ~0.3% of leakage and ~2.1% of dynamic energy;
//   - reduced (tag-bypassing, single-data-way) accesses cost roughly half
//     of a conventional parallel 4-way access.
//
// Units: dynamic energies are picojoules per event; leakage powers are
// milliwatts. At the paper's 1 GHz clock one cycle is 1 ns, so 1 mW of
// leakage is 1 pJ per cycle.
package energy

import (
	"fmt"
	"sort"
	"strings"
)

// Component identifies an energy accounting bucket.
type Component int

// Components, matching the paper's reporting granularity.
const (
	L1 Component = iota
	UTLB
	TLB
	UWT
	WT
	WDU
	numComponents
)

// Components returns every accounting bucket in reporting order (for
// callers iterating a Breakdown's Dynamic/Leakage arrays by component).
func Components() []Component {
	cs := make([]Component, numComponents)
	for i := range cs {
		cs[i] = Component(i)
	}
	return cs
}

// String names the component.
func (c Component) String() string {
	switch c {
	case L1:
		return "L1"
	case UTLB:
		return "uTLB"
	case TLB:
		return "TLB"
	case UWT:
		return "uWT"
	case WT:
		return "WT"
	case WDU:
		return "WDU"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// Params holds the unit energies and leakage powers. Defaults are produced
// by DefaultParams and calibrated against the paper's stated ratios (see
// package comment and the calibration tests).
type Params struct {
	// L1 per-access decomposition. A conventional load reads all tag
	// arrays and all data arrays in parallel; a reduced load bypasses
	// tags and reads exactly one data array (Sec. V).
	L1Control    float64 // control logic per L1 access
	L1TagFixed   float64 // tag decode/precharge, paid once per tag access
	L1TagPerWay  float64 // per tag-way comparison
	L1DataFixed  float64 // data decode/precharge, paid once per data access
	L1DataPerWay float64 // per data-way 32 byte readout or write

	// Translation structures (fully-associative search + data read).
	UTLBLookup  float64
	TLBLookup   float64
	UTLBReverse float64 // physical-tag-array-only search (WT maintenance)
	TLBReverse  float64

	// Way tables (plain RAM reads/writes piggybacked on TLB hits).
	UWTRead       float64
	WTRead        float64
	UWTLineUpdate float64
	WTLineUpdate  float64
	EntryTransfer float64 // full 128 bit uWT<->WT move

	// WDU (per associative port lookup; scales with entry count).
	WDULookupBase     float64
	WDULookupPerEntry float64
	WDUUpdate         float64

	// Leakage powers (mW).
	L1Leak         float64
	UTLBLeak       float64
	TLBLeak        float64
	UWTLeak        float64
	WTLeak         float64
	WDULeakPerBit  float64
	WDUBitsPerSlot float64

	// Port scaling.
	// DynPortPremium is the per-extra-port multiplier addend on dynamic
	// energy of an array (longer bitlines/wordlines in multi-ported
	// cells).
	DynPortPremium float64
	// LeakPortPremium is the per-extra-port multiplier addend on leakage
	// (paper: +80% L1 leakage per additional read port).
	LeakPortPremium float64
}

// DefaultParams returns the calibrated parameter set.
func DefaultParams() Params {
	return Params{
		L1Control:    2.0,
		L1TagFixed:   0.8,
		L1TagPerWay:  0.7,
		L1DataFixed:  9.0,
		L1DataPerWay: 2.2,

		UTLBLookup:  1.5,
		TLBLookup:   4.0,
		UTLBReverse: 0.8,
		TLBReverse:  2.2,

		UWTRead:       0.5,
		WTRead:        1.1,
		UWTLineUpdate: 0.6,
		WTLineUpdate:  1.2,
		EntryTransfer: 2.4,

		WDULookupBase:     0.30,
		WDULookupPerEntry: 0.08,
		WDUUpdate:         0.55,

		L1Leak:         10.0,
		UTLBLeak:       0.25,
		TLBLeak:        1.60,
		UWTLeak:        0.04,
		WTLeak:         0.16,
		WDULeakPerBit:  0.00045,
		WDUBitsPerSlot: 26 + 2 + 1, // line tag + way + valid

		DynPortPremium:  0.35,
		LeakPortPremium: 0.80,
	}
}

// Ports describes the physical port counts of a configuration (Tab. I) as
// extra ports beyond the single-ported baseline.
type Ports struct {
	L1ExtraPorts  int // Base2ld1st: 1 (1 rd/wt + 1 rd)
	TLBExtraPorts int // Base2ld1st: 2 (1 rd/wt + 2 rd), applies to uTLB+TLB
	HasWayTables  bool
	WDUEntries    int // >0 substitutes a WDU for the way tables
	WDUPorts      int
	ParallelTLBL1 bool // VIPT-style parallel TLB+L1 lookup (1-cycle variants)
}

// event enumerates the meter's dynamic-energy event kinds. The hot path
// only bumps uint64 counters per event; prices are applied once at Finish
// (deferred pricing), so no floating-point work happens per access.
type event int

const (
	evL1ConvRead event = iota
	evL1ReducedRead
	evL1Write
	evL1ReducedWrite
	evL1MissCheck
	evL1Fill
	evL1Eviction
	evUTLBLookup
	evTLBLookup
	evUTLBReverse
	evTLBReverse
	evUWTRead
	evWTRead
	evUWTLineUpdate
	evWTLineUpdate
	evEntryTransfer
	evWDULookup
	evWDUUpdate
	numEvents
)

// Meter accumulates per-component dynamic energy during a simulation and
// converts leakage power into energy at Finish.
//
// By default it counts events in dense uint64 counters and prices them once
// per Finish; SetEager(true) switches to the historical per-event float64
// accumulation (one multiply-add per event), kept as the differential
// reference — the two disagree only in floating-point association, bounded
// at 1e-9 relative error by the energy and root differential tests. The
// per-way events additionally accumulate their ways argument, so deferred
// pricing stays exact for any mix of associativities.
type Meter struct {
	P     Params
	ports Ports

	dynMulL1  float64
	dynMulTLB float64

	counts   [numEvents]uint64
	waysSum  [3]uint64 // ways accumulators: conv read, write, miss check
	eager    bool
	eagerDyn [numComponents]float64
}

// NewMeter returns a meter for the given parameters and port configuration.
func NewMeter(p Params, ports Ports) *Meter {
	return &Meter{
		P:         p,
		ports:     ports,
		dynMulL1:  1 + p.DynPortPremium*float64(ports.L1ExtraPorts),
		dynMulTLB: 1 + p.DynPortPremium*float64(ports.TLBExtraPorts),
	}
}

// SetEager selects per-event float accumulation (true) instead of deferred
// event-count pricing (false, the default). Call before the first event;
// the MALEC_EAGER_ENERGY=1 environment variable routes here from the
// simulator for differential testing.
func (m *Meter) SetEager(on bool) { m.eager = on }

// waysSum indices.
const (
	waysConvRead = iota
	waysWrite
	waysMissCheck
)

// --- L1 events ---

// L1ConventionalRead charges a parallel all-ways load lookup.
func (m *Meter) L1ConventionalRead(ways int) {
	if m.eager {
		m.eagerDyn[L1] += m.dynMulL1 * (m.P.L1Control + m.P.L1TagFixed +
			float64(ways)*m.P.L1TagPerWay + m.P.L1DataFixed +
			float64(ways)*m.P.L1DataPerWay)
		return
	}
	m.counts[evL1ConvRead]++
	m.waysSum[waysConvRead] += uint64(ways)
}

// L1ReducedRead charges a tag-bypassing single-data-way load.
func (m *Meter) L1ReducedRead() {
	if m.eager {
		m.eagerDyn[L1] += m.dynMulL1 * (m.P.L1Control + m.P.L1DataFixed + m.P.L1DataPerWay)
		return
	}
	m.counts[evL1ReducedRead]++
}

// L1Write charges a store: a tag check across ways plus one data-way write.
func (m *Meter) L1Write(ways int) {
	if m.eager {
		m.eagerDyn[L1] += m.dynMulL1 * (m.P.L1Control + m.P.L1TagFixed +
			float64(ways)*m.P.L1TagPerWay + m.P.L1DataFixed + m.P.L1DataPerWay)
		return
	}
	m.counts[evL1Write]++
	m.waysSum[waysWrite] += uint64(ways)
}

// L1ReducedWrite charges a store with a known way (tags bypassed).
func (m *Meter) L1ReducedWrite() {
	if m.eager {
		m.eagerDyn[L1] += m.dynMulL1 * (m.P.L1Control + m.P.L1DataFixed + m.P.L1DataPerWay)
		return
	}
	m.counts[evL1ReducedWrite]++
}

// L1MissCheck charges the tag-only portion of an access that missed
// (the parallel data readout of a conventional access is already charged by
// the read event; misses detected by tag compare).
func (m *Meter) L1MissCheck(ways int) {
	if m.eager {
		m.eagerDyn[L1] += m.dynMulL1 * (m.P.L1Control + m.P.L1TagFixed +
			float64(ways)*m.P.L1TagPerWay)
		return
	}
	m.counts[evL1MissCheck]++
	m.waysSum[waysMissCheck] += uint64(ways)
}

// L1Fill charges a line fill (tag write + full-line data write).
func (m *Meter) L1Fill() {
	if m.eager {
		m.eagerDyn[L1] += m.dynMulL1 * (m.P.L1Control + m.P.L1TagFixed + m.P.L1TagPerWay +
			m.P.L1DataFixed + 4*m.P.L1DataPerWay)
		return
	}
	m.counts[evL1Fill]++
}

// L1Eviction charges reading a victim line out for writeback.
func (m *Meter) L1Eviction() {
	if m.eager {
		m.eagerDyn[L1] += m.dynMulL1 * (m.P.L1Control + m.P.L1DataFixed + 2*m.P.L1DataPerWay)
		return
	}
	m.counts[evL1Eviction]++
}

// --- Translation events ---

// UTLBLookup charges one micro-TLB search.
func (m *Meter) UTLBLookup() {
	if m.eager {
		m.eagerDyn[UTLB] += m.dynMulTLB * m.P.UTLBLookup
		return
	}
	m.counts[evUTLBLookup]++
}

// TLBLookup charges one main-TLB search.
func (m *Meter) TLBLookup() {
	if m.eager {
		m.eagerDyn[TLB] += m.dynMulTLB * m.P.TLBLookup
		return
	}
	m.counts[evTLBLookup]++
}

// ReverseLookups charges the physical-tag searches of a line fill/eviction.
func (m *Meter) ReverseLookups(utlb, tlb bool) {
	if m.eager {
		if utlb {
			m.eagerDyn[UTLB] += m.dynMulTLB * m.P.UTLBReverse
		}
		if tlb {
			m.eagerDyn[TLB] += m.dynMulTLB * m.P.TLBReverse
		}
		return
	}
	if utlb {
		m.counts[evUTLBReverse]++
	}
	if tlb {
		m.counts[evTLBReverse]++
	}
}

// --- Way-table events ---

// UWTRead charges one uWT entry read (once per arbitration group; the
// scheme's energy is independent of the number of parallel references).
func (m *Meter) UWTRead() {
	if m.eager {
		m.eagerDyn[UWT] += m.P.UWTRead
		return
	}
	m.counts[evUWTRead]++
}

// WTRead charges one WT entry read.
func (m *Meter) WTRead() {
	if m.eager {
		m.eagerDyn[WT] += m.P.WTRead
		return
	}
	m.counts[evWTRead]++
}

// UWTLineUpdate charges a single-line uWT code write.
func (m *Meter) UWTLineUpdate() {
	if m.eager {
		m.eagerDyn[UWT] += m.P.UWTLineUpdate
		return
	}
	m.counts[evUWTLineUpdate]++
}

// WTLineUpdate charges a single-line WT code write.
func (m *Meter) WTLineUpdate() {
	if m.eager {
		m.eagerDyn[WT] += m.P.WTLineUpdate
		return
	}
	m.counts[evWTLineUpdate]++
}

// EntryTransfer charges a full uWT<->WT entry move.
func (m *Meter) EntryTransfer() {
	if m.eager {
		m.eagerDyn[UWT] += m.P.EntryTransfer / 2
		m.eagerDyn[WT] += m.P.EntryTransfer / 2
		return
	}
	m.counts[evEntryTransfer]++
}

// --- WDU events ---

// WDULookup charges one associative WDU port search.
func (m *Meter) WDULookup() {
	if m.eager {
		m.eagerDyn[WDU] += m.P.WDULookupBase + m.P.WDULookupPerEntry*float64(m.ports.WDUEntries)
		return
	}
	m.counts[evWDULookup]++
}

// WDUUpdate charges one WDU insert/refresh.
func (m *Meter) WDUUpdate() {
	if m.eager {
		m.eagerDyn[WDU] += m.P.WDUUpdate
		return
	}
	m.counts[evWDUUpdate]++
}

// dynamic prices the accumulated event counts into per-component dynamic
// energies. Per-way terms price the summed ways (exact: the per-event
// energy is affine in ways, so the sum over events equals fixed*count +
// perWay*waysSum up to float association).
func (m *Meter) dynamic() [numComponents]float64 {
	if m.eager {
		return m.eagerDyn
	}
	n := func(e event) float64 { return float64(m.counts[e]) }
	var d [numComponents]float64
	d[L1] = m.dynMulL1 * (n(evL1ConvRead)*(m.P.L1Control+m.P.L1TagFixed+m.P.L1DataFixed) +
		float64(m.waysSum[waysConvRead])*(m.P.L1TagPerWay+m.P.L1DataPerWay) +
		n(evL1ReducedRead)*(m.P.L1Control+m.P.L1DataFixed+m.P.L1DataPerWay) +
		n(evL1Write)*(m.P.L1Control+m.P.L1TagFixed+m.P.L1DataFixed+m.P.L1DataPerWay) +
		float64(m.waysSum[waysWrite])*m.P.L1TagPerWay +
		n(evL1ReducedWrite)*(m.P.L1Control+m.P.L1DataFixed+m.P.L1DataPerWay) +
		n(evL1MissCheck)*(m.P.L1Control+m.P.L1TagFixed) +
		float64(m.waysSum[waysMissCheck])*m.P.L1TagPerWay +
		n(evL1Fill)*(m.P.L1Control+m.P.L1TagFixed+m.P.L1TagPerWay+m.P.L1DataFixed+4*m.P.L1DataPerWay) +
		n(evL1Eviction)*(m.P.L1Control+m.P.L1DataFixed+2*m.P.L1DataPerWay))
	d[UTLB] = m.dynMulTLB * (n(evUTLBLookup)*m.P.UTLBLookup + n(evUTLBReverse)*m.P.UTLBReverse)
	d[TLB] = m.dynMulTLB * (n(evTLBLookup)*m.P.TLBLookup + n(evTLBReverse)*m.P.TLBReverse)
	d[UWT] = n(evUWTRead)*m.P.UWTRead + n(evUWTLineUpdate)*m.P.UWTLineUpdate +
		n(evEntryTransfer)*(m.P.EntryTransfer/2)
	d[WT] = n(evWTRead)*m.P.WTRead + n(evWTLineUpdate)*m.P.WTLineUpdate +
		n(evEntryTransfer)*(m.P.EntryTransfer/2)
	d[WDU] = n(evWDULookup)*(m.P.WDULookupBase+m.P.WDULookupPerEntry*float64(m.ports.WDUEntries)) +
		n(evWDUUpdate)*m.P.WDUUpdate
	return d
}

// DynamicEnergy prices the events accumulated so far into per-component
// dynamic energies (picojoules) without finalizing the meter. The sampled
// simulation path reads it at measurement-window boundaries and differences
// two snapshots to get the window's dynamic energy; pricing is pure, so
// the call does not perturb subsequent metering.
func (m *Meter) DynamicEnergy() [numComponents]float64 { return m.dynamic() }

// --- Results ---

// Breakdown is the final energy report, in picojoules.
type Breakdown struct {
	Dynamic [numComponents]float64
	Leakage [numComponents]float64
}

// Finish converts accumulated events plus leakage-over-time into a
// Breakdown. cycles is the simulated execution time in CPU cycles (1 ns
// each at 1 GHz).
func (m *Meter) Finish(cycles uint64) Breakdown {
	var b Breakdown
	b.Dynamic = m.dynamic()
	t := float64(cycles) // ns -> mW*ns = pJ
	leakMulL1 := 1 + m.P.LeakPortPremium*float64(m.ports.L1ExtraPorts)
	leakMulTLB := 1 + m.P.LeakPortPremium*float64(m.ports.TLBExtraPorts)*0.5
	b.Leakage[L1] = m.P.L1Leak * leakMulL1 * t
	b.Leakage[UTLB] = m.P.UTLBLeak * leakMulTLB * t
	b.Leakage[TLB] = m.P.TLBLeak * leakMulTLB * t
	if m.ports.HasWayTables {
		b.Leakage[UWT] = m.P.UWTLeak * t
		b.Leakage[WT] = m.P.WTLeak * t
	}
	if m.ports.WDUEntries > 0 {
		bits := m.P.WDUBitsPerSlot * float64(m.ports.WDUEntries) *
			float64(max(1, m.ports.WDUPorts))
		b.Leakage[WDU] = m.P.WDULeakPerBit * bits * t
	}
	return b
}

// TotalDynamic sums dynamic energy across components.
func (b Breakdown) TotalDynamic() float64 {
	var s float64
	for _, v := range b.Dynamic {
		s += v
	}
	return s
}

// TotalLeakage sums leakage energy across components.
func (b Breakdown) TotalLeakage() float64 {
	var s float64
	for _, v := range b.Leakage {
		s += v
	}
	return s
}

// Total returns dynamic + leakage energy.
func (b Breakdown) Total() float64 { return b.TotalDynamic() + b.TotalLeakage() }

// String renders the breakdown sorted by component.
func (b Breakdown) String() string {
	var sb strings.Builder
	type row struct {
		c Component
		d float64
		l float64
	}
	var rows []row
	for c := Component(0); c < numComponents; c++ {
		if b.Dynamic[c] == 0 && b.Leakage[c] == 0 {
			continue
		}
		rows = append(rows, row{c, b.Dynamic[c], b.Leakage[c]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].c < rows[j].c })
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-6s dynamic %14.1f pJ   leakage %14.1f pJ\n",
			r.c.String(), r.d, r.l)
	}
	fmt.Fprintf(&sb, "%-6s dynamic %14.1f pJ   leakage %14.1f pJ   total %14.1f pJ\n",
		"ALL", b.TotalDynamic(), b.TotalLeakage(), b.Total())
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
