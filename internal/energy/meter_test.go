package energy

import (
	"math"
	"testing"

	"malec/internal/rng"
)

// feedRandom drives the identical pseudo-random event stream into both
// meters.
func feedRandom(drv *rng.Source, ms []*Meter, events int) {
	for i := 0; i < events; i++ {
		op := drv.Intn(18)
		ways := 1 + drv.Intn(8)
		for _, m := range ms {
			switch op {
			case 0:
				m.L1ConventionalRead(ways)
			case 1:
				m.L1ReducedRead()
			case 2:
				m.L1Write(ways)
			case 3:
				m.L1ReducedWrite()
			case 4:
				m.L1MissCheck(ways)
			case 5:
				m.L1Fill()
			case 6:
				m.L1Eviction()
			case 7:
				m.UTLBLookup()
			case 8:
				m.TLBLookup()
			case 9:
				m.ReverseLookups(true, false)
			case 10:
				m.ReverseLookups(false, true)
			case 11:
				m.UWTRead()
			case 12:
				m.WTRead()
			case 13:
				m.UWTLineUpdate()
			case 14:
				m.WTLineUpdate()
			case 15:
				m.EntryTransfer()
			case 16:
				m.WDULookup()
			case 17:
				m.WDUUpdate()
			}
		}
	}
}

// TestDeferredMatchesEagerRandomized bounds the deferred event-count
// pricing against the per-event float accumulation reference at 1e-9
// relative error for arbitrary event mixes, including varying ways
// arguments (the deferred path prices the summed ways, which is exact up
// to association for any mix).
func TestDeferredMatchesEagerRandomized(t *testing.T) {
	for _, ports := range []Ports{
		{},
		{HasWayTables: true},
		{L1ExtraPorts: 1, TLBExtraPorts: 2},
		{WDUEntries: 16, WDUPorts: 4},
	} {
		deferred := NewMeter(DefaultParams(), ports)
		eager := NewMeter(DefaultParams(), ports)
		eager.SetEager(true)
		feedRandom(rng.New(31), []*Meter{deferred, eager}, 200000)
		bd := deferred.Finish(1_000_000)
		be := eager.Finish(1_000_000)
		for c := Component(0); c < numComponents; c++ {
			d, e := bd.Dynamic[c], be.Dynamic[c]
			if d == e {
				continue
			}
			rel := math.Abs(d-e) / math.Max(math.Abs(d), math.Abs(e))
			if rel > 1e-9 {
				t.Errorf("ports %+v component %v: deferred %v vs eager %v (rel err %g)",
					ports, c, d, e, rel)
			}
			if bd.Leakage[c] != be.Leakage[c] {
				t.Errorf("ports %+v component %v: leakage diverged (identical code path)", ports, c)
			}
		}
	}
}

// TestFinishIdempotent pins that Finish is a pure pricing of the counters:
// calling it twice yields identical breakdowns (the engine and the
// experiment drivers may both inspect a result).
func TestFinishIdempotent(t *testing.T) {
	m := NewMeter(DefaultParams(), Ports{HasWayTables: true})
	feedRandom(rng.New(5), []*Meter{m}, 10000)
	b1 := m.Finish(1000)
	b2 := m.Finish(1000)
	if b1 != b2 {
		t.Fatal("Finish is not idempotent")
	}
}

// BenchmarkMeter measures the meter's per-event hot path (the cost paid on
// every L1/TLB/way-table access of a simulation) for the deferred counter
// path and the eager float reference, plus the one-time Finish pricing.
func BenchmarkMeter(b *testing.B) {
	for _, mode := range []struct {
		name  string
		eager bool
	}{{"deferred", false}, {"eager", true}} {
		b.Run(mode.name, func(b *testing.B) {
			m := NewMeter(DefaultParams(), Ports{HasWayTables: true})
			m.SetEager(mode.eager)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.UTLBLookup()
				m.L1ConventionalRead(4)
				m.UWTRead()
				m.L1Fill()
			}
			_ = m.Finish(uint64(b.N))
		})
	}
	b.Run("finish", func(b *testing.B) {
		m := NewMeter(DefaultParams(), Ports{HasWayTables: true})
		feedRandom(rng.New(9), []*Meter{m}, 10000)
		b.ReportAllocs()
		b.ResetTimer()
		var total float64
		for i := 0; i < b.N; i++ {
			total += m.Finish(1000).Total()
		}
		_ = total
	})
}
