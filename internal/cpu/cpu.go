// Package cpu implements the trace-driven cycle-level out-of-order core
// model that drives the L1 interfaces: a 168-entry ROB, 6-wide
// fetch/dispatch and commit, 8-wide issue, dependency-scoreboarded
// execution, a bounded load queue, and store commit into the store buffer
// (paper Tab. II). It substitutes for the paper's gem5 setup: only the
// *relative* timing across L1 interface variants matters, which the model
// exposes through the same widths, latencies and structural limits.
package cpu

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"os"

	"malec/internal/buffers"
	"malec/internal/cache"
	"malec/internal/config"
	"malec/internal/core"
	"malec/internal/energy"
	"malec/internal/mem"
	"malec/internal/stats"
	"malec/internal/tlb"
	"malec/internal/trace"
)

// Source supplies trace records. Next reports ok=false at end of trace.
type Source interface {
	Next() (rec trace.Record, ok bool)
}

// SliceSource adapts a materialized trace.
type SliceSource struct {
	Records []trace.Record
	pos     int
}

// Next implements Source.
func (s *SliceSource) Next() (trace.Record, bool) {
	if s.pos >= len(s.Records) {
		return trace.Record{}, false
	}
	r := s.Records[s.pos]
	s.pos++
	return r, true
}

// Remaining reports how many records are left (sampling schedule sizing).
func (s *SliceSource) Remaining() int { return len(s.Records) - s.pos }

// CaptureState implements statefulSource.
func (s *SliceSource) CaptureState() SourceState { return SourceState{Pos: uint64(s.pos)} }

// RestoreState implements statefulSource.
func (s *SliceSource) RestoreState(st SourceState) bool {
	if st.Pos > uint64(len(s.Records)) {
		return false
	}
	s.pos = int(st.Pos)
	return true
}

// GenSource adapts a generator bounded to n records.
type GenSource struct {
	Gen  *trace.Generator
	N    int
	done int
}

// Next implements Source.
func (s *GenSource) Next() (trace.Record, bool) {
	if s.done >= s.N {
		return trace.Record{}, false
	}
	s.done++
	return s.Gen.Next(), true
}

// Remaining reports how many records are left (sampling schedule sizing).
func (s *GenSource) Remaining() int { return s.N - s.done }

// CaptureState implements statefulSource.
func (s *GenSource) CaptureState() SourceState {
	return SourceState{Gen: s.Gen.CaptureState(), Pos: uint64(s.done)}
}

// RestoreState implements statefulSource.
func (s *GenSource) RestoreState(st SourceState) bool {
	if st.Gen == nil || st.Pos > uint64(s.N) || !s.Gen.RestoreState(st.Gen) {
		return false
	}
	s.done = int(st.Pos)
	return true
}

// sizedSource is implemented by sources whose remaining length is known up
// front; the sampled path needs it to lay out the window schedule.
type sizedSource interface {
	Remaining() int
}

// Result summarizes one simulation run.
type Result struct {
	Config    string
	Benchmark string

	Cycles       uint64
	Instructions uint64
	Loads        uint64
	Stores       uint64

	Energy energy.Breakdown
	L1     cache.Stats
	L2     cache.L2Stats
	UTLB   tlb.Stats
	TLB    tlb.Stats

	CoverageKnown uint64
	CoverageTotal uint64

	Counters *stats.Counters

	// Telemetry carries host-simulator counters (cycle-skip activity:
	// stats.CtrSkippedCycles, stats.CtrSkipJumps; sampling/checkpoint
	// activity: stats.CtrSampledWindows, stats.CtrSampledWarmedRecords,
	// stats.CtrCheckpointRestores, stats.CtrCheckpointSaves). They describe
	// how the simulator executed, not what the simulated machine did, and
	// are excluded from the JSON encoding so semantic results — golden
	// files, cached campaign exports — are byte-identical whether cycle
	// skipping was on or off.
	Telemetry *stats.Counters `json:"-"`

	// Sampling describes how a sampled run's estimates were formed: the
	// schedule, the number of measurement windows and per-metric confidence
	// intervals. Nil on the exact path. Like Telemetry it is excluded from
	// the JSON encoding, so sampled and exact results share one semantic
	// shape and the exact path's golden grid is untouched.
	Sampling *SamplingEstimate `json:"-"`
}

// SamplingEstimate reports the quality of a sampled run's extrapolation.
type SamplingEstimate struct {
	// Windows is the number of detailed measurement windows taken.
	Windows int
	// Warmup, Detail, Interval echo the schedule used.
	Warmup   int
	Detail   int
	Interval int
	// CPIMean is the mean cycles-per-instruction across windows;
	// CPIRelHalfWidth is the 95% confidence half-width relative to the
	// mean (1.96 * stderr / mean).
	CPIMean         float64
	CPIRelHalfWidth float64
	// EnergyMean is the mean total dynamic energy per instruction (pJ)
	// across windows; EnergyRelHalfWidth is its relative 95% half-width.
	EnergyMean         float64
	EnergyRelHalfWidth float64
	// CheckpointHits/Misses count warm-state restores vs fresh warms at
	// window boundaries (always Misses == Windows when no store is wired).
	CheckpointHits   int
	CheckpointMisses int
	// WarmedRecords counts trace records driven through functional
	// warming (gap records skipped via checkpoint restore are excluded).
	WarmedRecords uint64
}

// RelHalfWidth95 returns the 95% confidence half-width of mean relative to
// the mean, given per-window samples. Zero when fewer than two windows.
func RelHalfWidth95(samples []float64) float64 {
	n := len(samples)
	if n < 2 {
		return 0
	}
	var sum float64
	for _, s := range samples {
		sum += s
	}
	mean := sum / float64(n)
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, s := range samples {
		d := s - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	return 1.96 * sd / math.Sqrt(float64(n)) / math.Abs(mean)
}

// SkipRate returns the fraction of simulated cycles that were fast-forwarded
// rather than executed (0 when telemetry is absent, e.g. on results decoded
// from a disk cache).
func (r Result) SkipRate() float64 {
	if r.Telemetry == nil || r.Cycles == 0 {
		return 0
	}
	return float64(r.Telemetry.Get(stats.CtrSkippedCycles)) / float64(r.Cycles)
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// Coverage returns the way-determination coverage ratio.
func (r Result) Coverage() float64 {
	if r.CoverageTotal == 0 {
		return 0
	}
	return float64(r.CoverageKnown) / float64(r.CoverageTotal)
}

// unknownDone marks instructions whose completion cycle is not yet known.
const unknownDone = math.MaxInt64 / 2

// doneWindow is the size of the completion-time ring; it must exceed
// ROB size + maximum dependency distance.
const doneWindow = 4096

// instr is one in-flight instruction.
type instr struct {
	rec    trace.Record
	seq    uint64
	issued bool
	done   int64
}

// machine is the transient simulation state. The ROB is a fixed ring
// (capacity rounded up to a power of two): dispatch writes at the tail,
// retire pops at the head, and completions index entries directly via
// their sequence numbers, which are contiguous within the window.
type machine struct {
	cfg     config.Config
	iface   core.Interface
	src     Source
	lq      *buffers.LoadQueue
	rob     []instr // ring storage, len is a power of two >= cfg.ROB
	robMask uint64
	robHead uint64 // ring index of the oldest instruction
	robLen  int
	// issueHint is the number of leading ROB entries known to be issued;
	// the escape-hatch issue scan starts there instead of at the head.
	// Entries never un-issue, so the prefix only shrinks when retire pops
	// the head.
	issueHint int
	doneAt    [doneWindow]int64
	seq       uint64
	cycle     int64
	// depLimit bounds dependency distances: a producer further back would
	// alias a younger instruction's doneAt slot while the consumer is
	// still in flight, silently corrupting completion times. Dispatch
	// panics past it.
	depLimit uint64

	// wake enables the producer->consumer wakeup scheduler (the default):
	// a completing producer marks its dependents ready directly, so issue
	// drains an age-ordered ready set instead of rescanning the ROB every
	// cycle. The scan path is kept behind Config.DisableWakeup /
	// MALEC_NO_WAKEUP=1 as the differential reference and debugging aid.
	wake bool
	// readyMask holds one bit per ROB slot, set while the slot holds an
	// unissued instruction with no pending producers; issue walks the set
	// bits in age order (slots are assigned in sequence order, so slot
	// order from the head is age order).
	readyMask []uint64
	// readyAt[slot] is the earliest cycle the slot's instruction may
	// issue; meaningful once pendingDeps[slot] is zero.
	readyAt []int64
	// pendingDeps[slot] counts producers whose completion time is still
	// unknown; the slot enters the ready mask when it reaches zero.
	pendingDeps []uint8
	// wakeHead[slot] and wakeNext form the per-producer wakeup lists:
	// wakeHead is the producer's first node (-1 when empty) and node j
	// (= consumer slot * 2 + dep index) links to wakeNext[j]. The slab is
	// fixed at Run: an instruction has at most two producers, so two
	// nodes per slot always suffice, and steady state allocates nothing.
	wakeHead []int32
	wakeNext []int32
	// storeSeqs is a ring of the sequence numbers of unissued stores in
	// program order; only its head may issue, which keeps stores ordered
	// among themselves without scanning for older unissued stores.
	storeSeqs  []uint64
	storeQHead uint64
	storeQTail uint64

	instructions uint64
	loads        uint64
	stores       uint64
	srcDone      bool

	// retired counts committed instructions; stopAt, when non-zero, makes
	// run return once retired reaches it (checked at the top of the loop,
	// so the crossing cycle always completes in full and a subsequent run
	// continues bit-identically to an uninterrupted one). The sampled path
	// uses the pair to split a measurement burst into warmup and detail.
	retired uint64
	stopAt  uint64

	// pending holds a record pulled from the source that could not be
	// dispatched (load queue full); it is retried before pulling more.
	pending    trace.Record
	hasPending bool

	// redirectSeq, when non-zero, is the sequence number of an in-flight
	// mispredicted branch: dispatch stalls until it resolves, then pays
	// the front-end refill penalty (redirectUntil).
	redirectSeq   uint64
	redirectUntil int64

	// skipDisabled forces the plain cycle-by-cycle loop (escape hatch for
	// differential testing and debugging); skippedCycles/skipJumps count
	// the fast-forward activity for Result.Telemetry.
	skipDisabled  bool
	skippedCycles uint64
	skipJumps     uint64

	// ctx, when non-nil, is polled every cancelCheckInterval cycles at the
	// top of the loop; a cancelled context sets cancelled and abandons the
	// run. A nil ctx (every exact-path legacy caller) keeps the loop
	// byte-identical and allocation-free. Polling never mutates model
	// state, so an uncancelled run is bit-identical with or without ctx.
	ctx           context.Context
	cancelCheckAt int64
	cancelled     bool
}

// cancelCheckInterval is how many simulated cycles pass between context
// polls: coarse enough to be invisible in profiles (one Err() call per
// ~260k cycles, well under a millisecond of wall time), fine enough that a
// disconnecting client stops a 100M-instruction burn within tens of
// milliseconds.
const cancelCheckInterval = 1 << 18

// frontendRefill is the pipeline refill penalty after a branch
// misprediction resolves, in cycles.
const frontendRefill = 20

// Run simulates src to completion on the machine described by cfg and
// returns the collected results. It panics if the ROB is too large for the
// completion-time window: completion times are kept in a doneWindow-entry
// ring indexed by sequence number, and the aliasing-freedom proof needs
// every dependency (at most trace.MaxDepWindow back) of every in-flight
// instruction to still be resident.
func Run(cfg config.Config, benchmark string, src Source) Result {
	return RunWithCheckpoints(cfg, benchmark, src, nil)
}

// RunContext is Run with cancellation: the cycle loop (or, on the sampled
// path, the window loop) polls ctx at coarse boundaries and abandons the
// run with ctx.Err() once it is cancelled. A nil ctx disables polling
// entirely; an uncancelled run returns results bit-identical to Run.
func RunContext(ctx context.Context, cfg config.Config, benchmark string, src Source) (Result, error) {
	return RunWithCheckpointsContext(ctx, cfg, benchmark, src, nil)
}

// RunWithCheckpoints is Run with an optional microarchitectural checkpoint
// store. When the configuration carries a sampling schedule (and
// MALEC_NO_SAMPLING is unset, and the source is long enough for at least
// one interval), the run goes through the sampled fast path and the store
// is consulted/populated at measurement-window boundaries; otherwise the
// store is ignored and the run is exact, byte-identical to Run with
// Sampling == nil.
func RunWithCheckpoints(cfg config.Config, benchmark string, src Source, ck Checkpoints) Result {
	res, err := RunWithCheckpointsContext(nil, cfg, benchmark, src, ck)
	if err != nil {
		// Unreachable: a nil context is never cancelled.
		panic(err)
	}
	return res
}

// RunWithCheckpointsContext is RunWithCheckpoints with cancellation (see
// RunContext). The shadow burst machines of the sampled path run without
// ctx — bursts are a few thousand instructions, shorter than one polling
// interval — so cancellation lands between windows.
func RunWithCheckpointsContext(ctx context.Context, cfg config.Config, benchmark string, src Source, ck Checkpoints) (Result, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	if s := cfg.Sampling; s != nil && os.Getenv("MALEC_NO_SAMPLING") == "" {
		if !s.Valid() {
			panic(fmt.Sprintf("cpu: invalid sampling schedule %+v (need Detail > 0, Warmup >= 0, Warmup+Detail <= Interval)", *s))
		}
		if sized, ok := src.(sizedSource); ok && sized.Remaining() >= s.Interval {
			return runSampled(ctx, cfg, benchmark, src, sized.Remaining(), ck)
		}
	}
	m := newMachine(cfg, core.New(cfg), src)
	m.ctx = ctx
	m.run()
	if m.cancelled {
		return Result{}, ctx.Err()
	}
	return m.result(benchmark), nil
}

// newMachine builds the transient core-model state over an interface and a
// source, validating the configuration's geometry.
func newMachine(cfg config.Config, iface core.Interface, src Source) *machine {
	if cfg.ROB <= 0 {
		panic("cpu: ROB size must be positive")
	}
	if cfg.ROB+trace.MaxDepWindow >= doneWindow {
		panic(fmt.Sprintf(
			"cpu: ROB=%d too large for the %d-entry completion window: ROB + trace.MaxDepWindow (%d) must stay below it or in-window producers' completion times would be silently overwritten",
			cfg.ROB, doneWindow, trace.MaxDepWindow))
	}
	robCap := 1
	for robCap < cfg.ROB {
		robCap <<= 1
	}
	m := &machine{cfg: cfg, iface: iface, src: src,
		lq:  buffers.NewLoadQueue(cfg.LQ),
		rob: make([]instr, robCap), robMask: uint64(robCap - 1),
		depLimit: uint64(doneWindow - cfg.ROB),
		skipDisabled: cfg.DisableCycleSkip ||
			os.Getenv("MALEC_NO_CYCLE_SKIP") != "",
		wake: !cfg.DisableWakeup && os.Getenv("MALEC_NO_WAKEUP") == ""}
	for i := range m.doneAt {
		m.doneAt[i] = 0 // pre-history: always ready
	}
	if m.wake {
		m.readyMask = make([]uint64, (robCap+63)/64)
		m.readyAt = make([]int64, robCap)
		m.pendingDeps = make([]uint8, robCap)
		m.wakeHead = make([]int32, robCap)
		for i := range m.wakeHead {
			m.wakeHead[i] = -1
		}
		m.wakeNext = make([]int32, 2*robCap)
		m.storeSeqs = make([]uint64, robCap)
	}
	return m
}

// robAt returns the i-th in-flight instruction, oldest first.
func (m *machine) robAt(i int) *instr {
	return &m.rob[(m.robHead+uint64(i))&m.robMask]
}

// run executes the cycle loop. A stall detector panics with a state dump if
// nothing makes progress for a long stretch (a model bug, never a valid
// simulation outcome).
func (m *machine) run() {
	lastProgress := int64(0)
	lastState := ""
	for {
		if m.stopAt > 0 && m.retired >= m.stopAt {
			return
		}
		if m.ctx != nil && m.cycle >= m.cancelCheckAt {
			if m.ctx.Err() != nil {
				m.cancelled = true
				return
			}
			m.cancelCheckAt = m.cycle + cancelCheckInterval
		}
		m.cycle++
		progressed := false
		for _, c := range m.iface.Tick() {
			m.complete(c.Seq)
			progressed = true
		}
		if m.retire() > 0 {
			progressed = true
		}
		if m.issue() > 0 {
			progressed = true
		}
		before := m.instructions
		m.dispatch()
		if m.instructions != before {
			progressed = true
		}
		if progressed {
			lastProgress = m.cycle
		} else if m.cycle-lastProgress > 100000 {
			state := m.stateDump()
			if state == lastState {
				panic("cpu: deadlock detected\n" + state)
			}
			lastState = state
			lastProgress = m.cycle
		}
		if m.srcDone && m.robLen == 0 {
			// Keep flushing: store-buffer entries committed on the last
			// retire cycles drain into the merge buffer afterwards.
			m.iface.Flush()
			if m.iface.Pending() == 0 && m.iface.Idle() {
				return
			}
		}
		if !progressed && !m.skipDisabled {
			m.trySkip()
		}
	}
}

// runTo continues the cycle loop until the machine has retired target
// instructions in total (absolute count, not relative to the current
// position). Because the stop check sits at the top of the loop, stopping
// and later resuming is bit-identical to an uninterrupted run.
func (m *machine) runTo(target uint64) {
	m.stopAt = target
	m.run()
	m.stopAt = 0
}

// trySkip fast-forwards a stalled stretch. After a cycle in which nothing
// drained, retired, issued or dispatched, the machine state is frozen: the
// only thing that can unfreeze it is the passage of cycles reaching a
// bound that is already known — the next scheduled load completion
// (interface calendar), the end of the mispredict refill, or a completion
// time recorded in the ROB gating a retire or a dependent's readiness.
// Jumping the cycle counters straight to the earliest such bound is
// therefore semantically invisible: every skipped cycle would have been a
// pure no-op, and the interface guarantees (NextWork) that its Ticks over
// the skipped range do nothing but advance the cycle. When the bound is
// conservative the landing cycle may stall again, costing only another
// jump; when no bound exists (NoWork) the machine is deadlocked and the
// stall detector in run is left to diagnose it.
func (m *machine) trySkip() {
	next := m.iface.NextWork(m.cycle)
	if t := m.nextCoreWork(); t < next {
		next = t
	}
	if next <= m.cycle+1 || next >= core.NoWork {
		return
	}
	m.skippedCycles += uint64(next - 1 - m.cycle)
	m.skipJumps++
	// Land one cycle short: the loop increments both counters into the
	// target cycle, so Tick drains the calendar slot exactly as the plain
	// loop would have.
	m.cycle = next - 1
	m.iface.System().SkipTo(m.cycle)
}

// nextCoreWork returns the earliest future cycle at which the core side can
// make progress on its own: the mispredict refill expiring, or a concrete
// completion time already recorded in the ROB (an issued op's done cycle
// gates both its in-order retirement and the readiness of its dependents).
// In-flight loads have unknown completion times and contribute no bound —
// they are gated on the interface calendar instead.
//
// Under the wakeup scheduler the ROB contributes nothing beyond the refill
// deadline, so no scan is needed at all. Every completion time the core
// records is at most one cycle ahead when recorded (ops and stores complete
// at issue+1, loads complete at the current cycle), and nextCoreWork only
// runs on a stalled cycle — a cycle in which nothing issued or completed —
// so by then every known done or ready time is <= cycle+1, and trySkip
// ignores bounds that near. The mispredict refill is the sole multi-cycle
// core-side deadline. The scan below remains as the escape-hatch reference
// the differential tests compare against.
func (m *machine) nextCoreWork() int64 {
	next := core.NoWork
	if m.redirectSeq != 0 {
		if m.redirectUntil != 0 {
			if m.redirectUntil > m.cycle && m.redirectUntil < next {
				next = m.redirectUntil
			}
		} else if done := m.doneAt[m.redirectSeq%doneWindow]; done < unknownDone {
			// Not resolved from dispatch's point of view yet; the refill
			// window is done+frontendRefill regardless of which cycle
			// first observes the resolution, so bound there directly.
			if t := done + frontendRefill; t > m.cycle && t < next {
				next = t
			}
		}
	}
	if m.wake {
		return next
	}
	for i := 0; i < m.robLen; i++ {
		in := m.robAt(i)
		if in.issued {
			if in.done > m.cycle && in.done < unknownDone && in.done < next {
				next = in.done
			}
			continue
		}
		// Unissued: becomes ready when its last producer completes.
		ready := int64(0)
		unknown := false
		if d := uint64(in.rec.Dep1); d != 0 && d <= in.seq {
			if v := m.doneAt[(in.seq-d)%doneWindow]; v >= unknownDone {
				unknown = true
			} else if v > ready {
				ready = v
			}
		}
		if d := uint64(in.rec.Dep2); d != 0 && d <= in.seq {
			if v := m.doneAt[(in.seq-d)%doneWindow]; v >= unknownDone {
				unknown = true
			} else if v > ready {
				ready = v
			}
		}
		if !unknown && ready > m.cycle && ready < next {
			next = ready
		}
	}
	return next
}

// stateDump renders the stalled machine state for deadlock diagnostics.
func (m *machine) stateDump() string {
	head := "empty"
	if m.robLen > 0 {
		in := m.robAt(0)
		head = fmt.Sprintf("seq=%d kind=%v issued=%v done=%d ready=%v",
			in.seq, in.rec.Kind, in.issued, in.done, m.ready(in))
	}
	return fmt.Sprintf(
		"rob=%d head={%s} lq=%d pendingLoads=%d srcDone=%v idle=%v instrs=%d",
		m.robLen, head, m.lq.Len(), m.iface.Pending(), m.srcDone,
		m.iface.Idle(), m.instructions)
}

// complete marks a load's result available. In-flight sequence numbers are
// contiguous (dispatch assigns them in order, retire pops in order), so the
// instruction is located by direct indexing instead of a ROB scan.
func (m *machine) complete(seq uint64) {
	m.doneAt[seq%doneWindow] = m.cycle
	if m.robLen > 0 {
		if headSeq := m.robAt(0).seq; seq >= headSeq && seq-headSeq < uint64(m.robLen) {
			in := m.robAt(int(seq - headSeq))
			if in.seq != seq {
				panic("cpu: ROB sequence numbers not contiguous")
			}
			in.done = m.cycle
			if m.wake {
				m.wakeSlot((seq-1)&m.robMask, m.cycle)
			}
		}
	}
	m.lq.Release()
}

// wakeSlot drains the producer slot's wakeup list, folding completion time
// t into each registered dependent's ready time; dependents whose last
// unknown producer this was enter the ready mask.
func (m *machine) wakeSlot(slot uint64, t int64) {
	for j := m.wakeHead[slot]; j >= 0; j = m.wakeNext[j] {
		c := uint64(j) >> 1
		if t > m.readyAt[c] {
			m.readyAt[c] = t
		}
		if m.pendingDeps[c]--; m.pendingDeps[c] == 0 {
			m.readyMask[c>>6] |= 1 << (c & 63)
		}
	}
	m.wakeHead[slot] = -1
}

// retire commits finished instructions in order, up to CommitWidth. It
// returns the number of instructions retired.
func (m *machine) retire() int {
	n := 0
	for m.robLen > 0 && n < m.cfg.CommitWidth {
		head := m.robAt(0)
		if !head.issued || head.done > m.cycle {
			return n
		}
		if head.rec.Kind == trace.Store {
			m.iface.CommitStore(head.seq)
		}
		m.robHead = (m.robHead + 1) & m.robMask
		m.robLen--
		m.retired++
		if m.issueHint > 0 {
			m.issueHint--
		}
		n++
	}
	return n
}

// ready reports whether an instruction's producers have completed. It is
// the hottest leaf of the escape-hatch issue scan, so the two dependency
// checks are unrolled.
func (m *machine) ready(in *instr) bool {
	if d := uint64(in.rec.Dep1); d != 0 && d <= in.seq &&
		m.doneAt[(in.seq-d)%doneWindow] > m.cycle {
		return false
	}
	if d := uint64(in.rec.Dep2); d != 0 && d <= in.seq &&
		m.doneAt[(in.seq-d)%doneWindow] > m.cycle {
		return false
	}
	return true
}

// issue selects up to IssueWidth ready instructions, oldest first. Memory
// operations additionally require the L1 interface to accept them (address
// computation unit and buffer availability). Stores issue in program order
// among themselves: store-buffer entries are allocated oldest-first, which
// (as in real store queues) makes SB-full stalls deadlock-free.
func (m *machine) issue() int {
	if m.wake {
		return m.issueWake()
	}
	return m.issueScan()
}

// issueWake is the wakeup-scheduler issue path: it walks the ready mask
// from the ROB head in age order, visiting only instructions whose
// producers have all completed, so a full-ROB stall costs a few word scans
// instead of touching every in-flight entry. Decisions — age order, issue
// width, TryIssue arbitration, store ordering — match issueScan exactly
// (differentially tested).
func (m *machine) issueWake() int {
	issued := 0
	head := int(m.robHead)
	if m.issueReadyRange(head, len(m.rob), &issued) {
		m.issueReadyRange(0, head, &issued)
	}
	return issued
}

// issueReadyRange issues ready instructions whose slots fall in [from, to),
// in slot order; it reports false once the issue width is exhausted.
func (m *machine) issueReadyRange(from, to int, issued *int) bool {
	for w := from >> 6; w <= (to-1)>>6; w++ {
		word := m.readyMask[w]
		if lo := from - w<<6; lo > 0 {
			word &= ^uint64(0) << lo
		}
		if hi := to - w<<6; hi < 64 {
			word &= 1<<uint(hi) - 1
		}
		for word != 0 {
			if *issued >= m.cfg.IssueWidth {
				return false
			}
			b := bits.TrailingZeros64(word)
			word &^= 1 << b
			slot := uint64(w<<6 + b)
			if m.readyAt[slot] > m.cycle {
				continue // ready next cycle, not this one
			}
			if m.tryIssueSlot(slot) {
				*issued++
			}
		}
	}
	return true
}

// tryIssueSlot attempts to issue the ready instruction at slot, reporting
// whether it consumed an issue slot.
func (m *machine) tryIssueSlot(slot uint64) bool {
	in := &m.rob[slot]
	switch in.rec.Kind {
	case trace.Op, trace.Branch:
		in.issued = true
		in.done = m.cycle + 1
		m.doneAt[in.seq%doneWindow] = in.done
		m.readyMask[slot>>6] &^= 1 << (slot & 63)
		m.wakeSlot(slot, in.done)
		return true
	case trace.Load:
		if !m.iface.TryIssue(core.Request{Seq: in.seq, Kind: mem.Load,
			VA: in.rec.Addr, Size: in.rec.Size}) {
			return false
		}
		in.issued = true
		in.done = unknownDone
		m.doneAt[in.seq%doneWindow] = unknownDone
		m.readyMask[slot>>6] &^= 1 << (slot & 63)
		return true // dependents wake when the load completes
	case trace.Store:
		if m.storeSeqs[m.storeQHead&m.robMask] != in.seq {
			return false // an older store has not issued yet
		}
		if !m.iface.TryIssue(core.Request{Seq: in.seq, Kind: mem.Store,
			VA: in.rec.Addr, Size: in.rec.Size}) {
			return false
		}
		m.storeQHead++
		in.issued = true
		in.done = m.cycle + 1
		m.doneAt[in.seq%doneWindow] = in.done
		m.readyMask[slot>>6] &^= 1 << (slot & 63)
		m.wakeSlot(slot, in.done)
		return true
	}
	return false
}

// issueScan is the escape-hatch issue path (Config.DisableWakeup /
// MALEC_NO_WAKEUP=1): a full scan over the unissued ROB suffix with
// per-entry readiness checks, kept as the differential reference for the
// wakeup scheduler.
func (m *machine) issueScan() int {
	issued := 0
	storeBlocked := false
	for m.issueHint < m.robLen && m.robAt(m.issueHint).issued {
		m.issueHint++
	}
	for i := m.issueHint; i < m.robLen; i++ {
		if issued >= m.cfg.IssueWidth {
			return issued
		}
		in := m.robAt(i)
		if in.issued || !m.ready(in) {
			if !in.issued && in.rec.Kind == trace.Store {
				storeBlocked = true
			}
			continue
		}
		switch in.rec.Kind {
		case trace.Op, trace.Branch:
			in.issued = true
			in.done = m.cycle + 1
			m.doneAt[in.seq%doneWindow] = in.done
			issued++
		case trace.Load:
			if !m.iface.TryIssue(core.Request{Seq: in.seq, Kind: mem.Load,
				VA: in.rec.Addr, Size: in.rec.Size}) {
				continue
			}
			in.issued = true
			in.done = unknownDone
			m.doneAt[in.seq%doneWindow] = unknownDone
			issued++
		case trace.Store:
			if storeBlocked {
				continue // an older store has not issued yet
			}
			if !m.iface.TryIssue(core.Request{Seq: in.seq, Kind: mem.Store,
				VA: in.rec.Addr, Size: in.rec.Size}) {
				storeBlocked = true
				continue
			}
			in.issued = true
			in.done = m.cycle + 1
			m.doneAt[in.seq%doneWindow] = in.done
			issued++
		}
	}
	return issued
}

// dispatch fills the ROB from the trace, up to FetchWidth per cycle. Loads
// require a load queue slot; a mispredicted branch blocks dispatch until it
// resolves plus the refill penalty.
func (m *machine) dispatch() {
	if m.srcDone {
		return
	}
	if m.redirectSeq != 0 {
		done := m.doneAt[m.redirectSeq%doneWindow]
		if done > m.cycle {
			return // branch not resolved yet
		}
		if m.redirectUntil == 0 {
			m.redirectUntil = done + frontendRefill
		}
		if m.cycle < m.redirectUntil {
			return // refilling the front end
		}
		m.redirectSeq, m.redirectUntil = 0, 0
	}
	for n := 0; n < m.cfg.FetchWidth && m.robLen < m.cfg.ROB; n++ {
		var rec trace.Record
		if m.hasPending {
			rec = m.pending
		} else {
			var ok bool
			rec, ok = m.src.Next()
			if !ok {
				m.srcDone = true
				return
			}
		}
		if rec.Kind == trace.Load && !m.lq.TryAlloc() {
			// LQ full: stall dispatch, retrying this record next cycle.
			m.pending = rec
			m.hasPending = true
			return
		}
		m.hasPending = false
		m.seq++
		// Dependencies reaching past the trace start (d > seq) are
		// ignored pre-history; in-range ones past depLimit would alias a
		// younger instruction's doneAt slot, so fail loudly instead of
		// corrupting completion times.
		if d := uint64(rec.Dep1); d <= m.seq && d > m.depLimit {
			panic(fmt.Sprintf("cpu: dependency distance %d exceeds the completion window (max %d for ROB=%d)", d, m.depLimit, m.cfg.ROB))
		}
		if d := uint64(rec.Dep2); d <= m.seq && d > m.depLimit {
			panic(fmt.Sprintf("cpu: dependency distance %d exceeds the completion window (max %d for ROB=%d)", d, m.depLimit, m.cfg.ROB))
		}
		*m.robAt(m.robLen) = instr{rec: rec, seq: m.seq, done: unknownDone}
		m.robLen++
		m.doneAt[m.seq%doneWindow] = unknownDone
		if m.wake {
			m.enqueueWake(rec)
		}
		m.instructions++
		switch rec.Kind {
		case trace.Load:
			m.loads++
		case trace.Store:
			m.stores++
		case trace.Branch:
			if rec.Mispredict {
				// Wrong-path work is not simulated; the stall spans
				// resolution plus refill.
				m.redirectSeq = m.seq
				m.redirectUntil = 0
				return
			}
		}
	}
}

// enqueueWake resolves the just-dispatched instruction's producers for the
// wakeup scheduler. Known completion times fold into its ready time;
// unknown ones (unissued producers or in-flight loads, which are
// necessarily still in the ROB) register it on their wakeup lists. Slots
// are assigned in sequence order, so the slot of sequence s is always
// (s-1) & robMask, for producers and consumers alike.
func (m *machine) enqueueWake(rec trace.Record) {
	seq := m.seq
	slot := (seq - 1) & m.robMask
	if m.wakeHead[slot] >= 0 {
		panic("cpu: reused ROB slot has a non-empty wakeup list")
	}
	pending := uint8(0)
	ready := int64(0)
	if d := uint64(rec.Dep1); d != 0 && d <= seq {
		p := seq - d
		if v := m.doneAt[p%doneWindow]; v >= unknownDone {
			pslot := (p - 1) & m.robMask
			node := int32(slot << 1)
			m.wakeNext[node] = m.wakeHead[pslot]
			m.wakeHead[pslot] = node
			pending++
		} else if v > ready {
			ready = v
		}
	}
	if d := uint64(rec.Dep2); d != 0 && d <= seq {
		p := seq - d
		if v := m.doneAt[p%doneWindow]; v >= unknownDone {
			pslot := (p - 1) & m.robMask
			node := int32(slot<<1 | 1)
			m.wakeNext[node] = m.wakeHead[pslot]
			m.wakeHead[pslot] = node
			pending++
		} else if v > ready {
			ready = v
		}
	}
	m.pendingDeps[slot] = pending
	m.readyAt[slot] = ready
	if pending == 0 {
		m.readyMask[slot>>6] |= 1 << (slot & 63)
	}
	if rec.Kind == trace.Store {
		m.storeSeqs[m.storeQTail&m.robMask] = seq
		m.storeQTail++
	}
}

// result gathers final statistics.
func (m *machine) result(benchmark string) Result {
	sys := m.iface.System()
	known, total := sys.Det.Coverage()
	tel := stats.NewCounters()
	tel.Add(stats.CtrSkippedCycles, m.skippedCycles)
	tel.Add(stats.CtrSkipJumps, m.skipJumps)
	return Result{
		Telemetry:     tel,
		Config:        m.cfg.Name,
		Benchmark:     benchmark,
		Cycles:        uint64(m.cycle),
		Instructions:  m.instructions,
		Loads:         m.loads,
		Stores:        m.stores,
		Energy:        m.iface.Meter().Finish(uint64(m.cycle)),
		L1:            sys.L1.Stats(),
		L2:            sys.Back.L2.Stats(),
		UTLB:          sys.Hier.U.Stats(),
		TLB:           sys.Hier.Main.Stats(),
		CoverageKnown: known,
		CoverageTotal: total,
		Counters:      m.iface.Counters(),
	}
}

// RunBenchmark generates a fresh trace for the named benchmark profile and
// simulates it on cfg. instructions bounds the trace length; seed
// determines the workload (the same seed yields the same trace for every
// configuration, which the cross-config comparisons rely on).
func RunBenchmark(cfg config.Config, benchmark string, instructions int, seed uint64) Result {
	prof, ok := trace.Profiles[benchmark]
	if !ok {
		panic(fmt.Sprintf("cpu: unknown benchmark %q", benchmark))
	}
	gen := trace.NewGenerator(prof, seed)
	return Run(cfg, benchmark, &GenSource{Gen: gen, N: instructions})
}
