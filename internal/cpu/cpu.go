// Package cpu implements the trace-driven cycle-level out-of-order core
// model that drives the L1 interfaces: a 168-entry ROB, 6-wide
// fetch/dispatch and commit, 8-wide issue, dependency-scoreboarded
// execution, a bounded load queue, and store commit into the store buffer
// (paper Tab. II). It substitutes for the paper's gem5 setup: only the
// *relative* timing across L1 interface variants matters, which the model
// exposes through the same widths, latencies and structural limits.
package cpu

import (
	"fmt"
	"math"
	"os"

	"malec/internal/buffers"
	"malec/internal/cache"
	"malec/internal/config"
	"malec/internal/core"
	"malec/internal/energy"
	"malec/internal/mem"
	"malec/internal/stats"
	"malec/internal/tlb"
	"malec/internal/trace"
)

// Source supplies trace records. Next reports ok=false at end of trace.
type Source interface {
	Next() (rec trace.Record, ok bool)
}

// SliceSource adapts a materialized trace.
type SliceSource struct {
	Records []trace.Record
	pos     int
}

// Next implements Source.
func (s *SliceSource) Next() (trace.Record, bool) {
	if s.pos >= len(s.Records) {
		return trace.Record{}, false
	}
	r := s.Records[s.pos]
	s.pos++
	return r, true
}

// GenSource adapts a generator bounded to n records.
type GenSource struct {
	Gen  *trace.Generator
	N    int
	done int
}

// Next implements Source.
func (s *GenSource) Next() (trace.Record, bool) {
	if s.done >= s.N {
		return trace.Record{}, false
	}
	s.done++
	return s.Gen.Next(), true
}

// Result summarizes one simulation run.
type Result struct {
	Config    string
	Benchmark string

	Cycles       uint64
	Instructions uint64
	Loads        uint64
	Stores       uint64

	Energy energy.Breakdown
	L1     cache.Stats
	L2     cache.L2Stats
	UTLB   tlb.Stats
	TLB    tlb.Stats

	CoverageKnown uint64
	CoverageTotal uint64

	Counters *stats.Counters

	// Telemetry carries host-simulator counters (cycle-skip activity:
	// stats.CtrSkippedCycles, stats.CtrSkipJumps). They describe how the
	// simulator executed, not what the simulated machine did, and are
	// excluded from the JSON encoding so semantic results — golden files,
	// cached campaign exports — are byte-identical whether cycle skipping
	// was on or off.
	Telemetry *stats.Counters `json:"-"`
}

// SkipRate returns the fraction of simulated cycles that were fast-forwarded
// rather than executed (0 when telemetry is absent, e.g. on results decoded
// from a disk cache).
func (r Result) SkipRate() float64 {
	if r.Telemetry == nil || r.Cycles == 0 {
		return 0
	}
	return float64(r.Telemetry.Get(stats.CtrSkippedCycles)) / float64(r.Cycles)
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// Coverage returns the way-determination coverage ratio.
func (r Result) Coverage() float64 {
	if r.CoverageTotal == 0 {
		return 0
	}
	return float64(r.CoverageKnown) / float64(r.CoverageTotal)
}

// unknownDone marks instructions whose completion cycle is not yet known.
const unknownDone = math.MaxInt64 / 2

// doneWindow is the size of the completion-time ring; it must exceed
// ROB size + maximum dependency distance.
const doneWindow = 4096

// instr is one in-flight instruction.
type instr struct {
	rec    trace.Record
	seq    uint64
	issued bool
	done   int64
}

// machine is the transient simulation state. The ROB is a fixed ring
// (capacity rounded up to a power of two): dispatch writes at the tail,
// retire pops at the head, and completions index entries directly via
// their sequence numbers, which are contiguous within the window.
type machine struct {
	cfg     config.Config
	iface   core.Interface
	src     Source
	lq      *buffers.LoadQueue
	rob     []instr // ring storage, len is a power of two >= cfg.ROB
	robMask uint64
	robHead uint64 // ring index of the oldest instruction
	robLen  int
	// issueHint is the number of leading ROB entries known to be issued;
	// the issue scan starts there instead of at the head. Entries never
	// un-issue, so the prefix only shrinks when retire pops the head.
	issueHint int
	doneAt    [doneWindow]int64
	seq       uint64
	cycle     int64

	instructions uint64
	loads        uint64
	stores       uint64
	srcDone      bool

	// pending holds a record pulled from the source that could not be
	// dispatched (load queue full); it is retried before pulling more.
	pending    trace.Record
	hasPending bool

	// redirectSeq, when non-zero, is the sequence number of an in-flight
	// mispredicted branch: dispatch stalls until it resolves, then pays
	// the front-end refill penalty (redirectUntil).
	redirectSeq   uint64
	redirectUntil int64

	// skipDisabled forces the plain cycle-by-cycle loop (escape hatch for
	// differential testing and debugging); skippedCycles/skipJumps count
	// the fast-forward activity for Result.Telemetry.
	skipDisabled  bool
	skippedCycles uint64
	skipJumps     uint64
}

// frontendRefill is the pipeline refill penalty after a branch
// misprediction resolves, in cycles.
const frontendRefill = 20

// Run simulates src to completion on the machine described by cfg and
// returns the collected results.
func Run(cfg config.Config, benchmark string, src Source) Result {
	robCap := 1
	for robCap < cfg.ROB {
		robCap <<= 1
	}
	m := &machine{cfg: cfg, iface: core.New(cfg), src: src,
		lq:  buffers.NewLoadQueue(cfg.LQ),
		rob: make([]instr, robCap), robMask: uint64(robCap - 1),
		skipDisabled: cfg.DisableCycleSkip ||
			os.Getenv("MALEC_NO_CYCLE_SKIP") != ""}
	for i := range m.doneAt {
		m.doneAt[i] = 0 // pre-history: always ready
	}
	m.run()
	return m.result(benchmark)
}

// robAt returns the i-th in-flight instruction, oldest first.
func (m *machine) robAt(i int) *instr {
	return &m.rob[(m.robHead+uint64(i))&m.robMask]
}

// run executes the cycle loop. A stall detector panics with a state dump if
// nothing makes progress for a long stretch (a model bug, never a valid
// simulation outcome).
func (m *machine) run() {
	lastProgress := int64(0)
	lastState := ""
	for {
		m.cycle++
		progressed := false
		for _, c := range m.iface.Tick() {
			m.complete(c.Seq)
			progressed = true
		}
		if m.retire() > 0 {
			progressed = true
		}
		if m.issue() > 0 {
			progressed = true
		}
		before := m.instructions
		m.dispatch()
		if m.instructions != before {
			progressed = true
		}
		if progressed {
			lastProgress = m.cycle
		} else if m.cycle-lastProgress > 100000 {
			state := m.stateDump()
			if state == lastState {
				panic("cpu: deadlock detected\n" + state)
			}
			lastState = state
			lastProgress = m.cycle
		}
		if m.srcDone && m.robLen == 0 {
			// Keep flushing: store-buffer entries committed on the last
			// retire cycles drain into the merge buffer afterwards.
			m.iface.Flush()
			if m.iface.Pending() == 0 && m.iface.Idle() {
				return
			}
		}
		if !progressed && !m.skipDisabled {
			m.trySkip()
		}
	}
}

// trySkip fast-forwards a stalled stretch. After a cycle in which nothing
// drained, retired, issued or dispatched, the machine state is frozen: the
// only thing that can unfreeze it is the passage of cycles reaching a
// bound that is already known — the next scheduled load completion
// (interface calendar), the end of the mispredict refill, or a completion
// time recorded in the ROB gating a retire or a dependent's readiness.
// Jumping the cycle counters straight to the earliest such bound is
// therefore semantically invisible: every skipped cycle would have been a
// pure no-op, and the interface guarantees (NextWork) that its Ticks over
// the skipped range do nothing but advance the cycle. When the bound is
// conservative the landing cycle may stall again, costing only another
// jump; when no bound exists (NoWork) the machine is deadlocked and the
// stall detector in run is left to diagnose it.
func (m *machine) trySkip() {
	next := m.iface.NextWork(m.cycle)
	if t := m.nextCoreWork(); t < next {
		next = t
	}
	if next <= m.cycle+1 || next >= core.NoWork {
		return
	}
	m.skippedCycles += uint64(next - 1 - m.cycle)
	m.skipJumps++
	// Land one cycle short: the loop increments both counters into the
	// target cycle, so Tick drains the calendar slot exactly as the plain
	// loop would have.
	m.cycle = next - 1
	m.iface.System().SkipTo(m.cycle)
}

// nextCoreWork returns the earliest future cycle at which the core side can
// make progress on its own: the mispredict refill expiring, or a concrete
// completion time already recorded in the ROB (an issued op's done cycle
// gates both its in-order retirement and the readiness of its dependents).
// In-flight loads have unknown completion times and contribute no bound —
// they are gated on the interface calendar instead.
func (m *machine) nextCoreWork() int64 {
	next := core.NoWork
	if m.redirectSeq != 0 {
		if m.redirectUntil != 0 {
			if m.redirectUntil > m.cycle && m.redirectUntil < next {
				next = m.redirectUntil
			}
		} else if done := m.doneAt[m.redirectSeq%doneWindow]; done < unknownDone {
			// Not resolved from dispatch's point of view yet; the refill
			// window is done+frontendRefill regardless of which cycle
			// first observes the resolution, so bound there directly.
			if t := done + frontendRefill; t > m.cycle && t < next {
				next = t
			}
		}
	}
	for i := 0; i < m.robLen; i++ {
		in := m.robAt(i)
		if in.issued {
			if in.done > m.cycle && in.done < unknownDone && in.done < next {
				next = in.done
			}
			continue
		}
		// Unissued: becomes ready when its last producer completes.
		ready := int64(0)
		unknown := false
		if d := uint64(in.rec.Dep1); d != 0 && d <= in.seq {
			if v := m.doneAt[(in.seq-d)%doneWindow]; v >= unknownDone {
				unknown = true
			} else if v > ready {
				ready = v
			}
		}
		if d := uint64(in.rec.Dep2); d != 0 && d <= in.seq {
			if v := m.doneAt[(in.seq-d)%doneWindow]; v >= unknownDone {
				unknown = true
			} else if v > ready {
				ready = v
			}
		}
		if !unknown && ready > m.cycle && ready < next {
			next = ready
		}
	}
	return next
}

// stateDump renders the stalled machine state for deadlock diagnostics.
func (m *machine) stateDump() string {
	head := "empty"
	if m.robLen > 0 {
		in := m.robAt(0)
		head = fmt.Sprintf("seq=%d kind=%v issued=%v done=%d ready=%v",
			in.seq, in.rec.Kind, in.issued, in.done, m.ready(in))
	}
	return fmt.Sprintf(
		"rob=%d head={%s} lq=%d pendingLoads=%d srcDone=%v idle=%v instrs=%d",
		m.robLen, head, m.lq.Len(), m.iface.Pending(), m.srcDone,
		m.iface.Idle(), m.instructions)
}

// complete marks a load's result available. In-flight sequence numbers are
// contiguous (dispatch assigns them in order, retire pops in order), so the
// instruction is located by direct indexing instead of a ROB scan.
func (m *machine) complete(seq uint64) {
	m.doneAt[seq%doneWindow] = m.cycle
	if m.robLen > 0 {
		if headSeq := m.robAt(0).seq; seq >= headSeq && seq-headSeq < uint64(m.robLen) {
			in := m.robAt(int(seq - headSeq))
			if in.seq != seq {
				panic("cpu: ROB sequence numbers not contiguous")
			}
			in.done = m.cycle
		}
	}
	m.lq.Release()
}

// retire commits finished instructions in order, up to CommitWidth. It
// returns the number of instructions retired.
func (m *machine) retire() int {
	n := 0
	for m.robLen > 0 && n < m.cfg.CommitWidth {
		head := m.robAt(0)
		if !head.issued || head.done > m.cycle {
			return n
		}
		if head.rec.Kind == trace.Store {
			m.iface.CommitStore(head.seq)
		}
		m.robHead = (m.robHead + 1) & m.robMask
		m.robLen--
		if m.issueHint > 0 {
			m.issueHint--
		}
		n++
	}
	return n
}

// ready reports whether an instruction's producers have completed. It is
// the hottest leaf of the issue scan, so the two dependency checks are
// unrolled.
func (m *machine) ready(in *instr) bool {
	if d := uint64(in.rec.Dep1); d != 0 && d <= in.seq &&
		m.doneAt[(in.seq-d)%doneWindow] > m.cycle {
		return false
	}
	if d := uint64(in.rec.Dep2); d != 0 && d <= in.seq &&
		m.doneAt[(in.seq-d)%doneWindow] > m.cycle {
		return false
	}
	return true
}

// issue selects up to IssueWidth ready instructions, oldest first. Memory
// operations additionally require the L1 interface to accept them (address
// computation unit and buffer availability). Stores issue in program order
// among themselves: store-buffer entries are allocated oldest-first, which
// (as in real store queues) makes SB-full stalls deadlock-free.
func (m *machine) issue() int {
	issued := 0
	storeBlocked := false
	for m.issueHint < m.robLen && m.robAt(m.issueHint).issued {
		m.issueHint++
	}
	for i := m.issueHint; i < m.robLen; i++ {
		if issued >= m.cfg.IssueWidth {
			return issued
		}
		in := m.robAt(i)
		if in.issued || !m.ready(in) {
			if !in.issued && in.rec.Kind == trace.Store {
				storeBlocked = true
			}
			continue
		}
		switch in.rec.Kind {
		case trace.Op, trace.Branch:
			in.issued = true
			in.done = m.cycle + 1
			m.doneAt[in.seq%doneWindow] = in.done
			issued++
		case trace.Load:
			if !m.iface.TryIssue(core.Request{Seq: in.seq, Kind: mem.Load,
				VA: in.rec.Addr, Size: in.rec.Size}) {
				continue
			}
			in.issued = true
			in.done = unknownDone
			m.doneAt[in.seq%doneWindow] = unknownDone
			issued++
		case trace.Store:
			if storeBlocked {
				continue // an older store has not issued yet
			}
			if !m.iface.TryIssue(core.Request{Seq: in.seq, Kind: mem.Store,
				VA: in.rec.Addr, Size: in.rec.Size}) {
				storeBlocked = true
				continue
			}
			in.issued = true
			in.done = m.cycle + 1
			m.doneAt[in.seq%doneWindow] = in.done
			issued++
		}
	}
	return issued
}

// dispatch fills the ROB from the trace, up to FetchWidth per cycle. Loads
// require a load queue slot; a mispredicted branch blocks dispatch until it
// resolves plus the refill penalty.
func (m *machine) dispatch() {
	if m.srcDone {
		return
	}
	if m.redirectSeq != 0 {
		done := m.doneAt[m.redirectSeq%doneWindow]
		if done > m.cycle {
			return // branch not resolved yet
		}
		if m.redirectUntil == 0 {
			m.redirectUntil = done + frontendRefill
		}
		if m.cycle < m.redirectUntil {
			return // refilling the front end
		}
		m.redirectSeq, m.redirectUntil = 0, 0
	}
	for n := 0; n < m.cfg.FetchWidth && m.robLen < m.cfg.ROB; n++ {
		var rec trace.Record
		if m.hasPending {
			rec = m.pending
		} else {
			var ok bool
			rec, ok = m.src.Next()
			if !ok {
				m.srcDone = true
				return
			}
		}
		if rec.Kind == trace.Load && !m.lq.TryAlloc() {
			// LQ full: stall dispatch, retrying this record next cycle.
			m.pending = rec
			m.hasPending = true
			return
		}
		m.hasPending = false
		m.seq++
		*m.robAt(m.robLen) = instr{rec: rec, seq: m.seq, done: unknownDone}
		m.robLen++
		m.doneAt[m.seq%doneWindow] = unknownDone
		m.instructions++
		switch rec.Kind {
		case trace.Load:
			m.loads++
		case trace.Store:
			m.stores++
		case trace.Branch:
			if rec.Mispredict {
				// Wrong-path work is not simulated; the stall spans
				// resolution plus refill.
				m.redirectSeq = m.seq
				m.redirectUntil = 0
				return
			}
		}
	}
}

// result gathers final statistics.
func (m *machine) result(benchmark string) Result {
	sys := m.iface.System()
	known, total := sys.Det.Coverage()
	tel := stats.NewCounters()
	tel.Add(stats.CtrSkippedCycles, m.skippedCycles)
	tel.Add(stats.CtrSkipJumps, m.skipJumps)
	return Result{
		Telemetry:     tel,
		Config:        m.cfg.Name,
		Benchmark:     benchmark,
		Cycles:        uint64(m.cycle),
		Instructions:  m.instructions,
		Loads:         m.loads,
		Stores:        m.stores,
		Energy:        m.iface.Meter().Finish(uint64(m.cycle)),
		L1:            sys.L1.Stats(),
		L2:            sys.Back.L2.Stats(),
		UTLB:          sys.Hier.U.Stats(),
		TLB:           sys.Hier.Main.Stats(),
		CoverageKnown: known,
		CoverageTotal: total,
		Counters:      m.iface.Counters(),
	}
}

// RunBenchmark generates a fresh trace for the named benchmark profile and
// simulates it on cfg. instructions bounds the trace length; seed
// determines the workload (the same seed yields the same trace for every
// configuration, which the cross-config comparisons rely on).
func RunBenchmark(cfg config.Config, benchmark string, instructions int, seed uint64) Result {
	prof, ok := trace.Profiles[benchmark]
	if !ok {
		panic(fmt.Sprintf("cpu: unknown benchmark %q", benchmark))
	}
	gen := trace.NewGenerator(prof, seed)
	return Run(cfg, benchmark, &GenSource{Gen: gen, N: instructions})
}
