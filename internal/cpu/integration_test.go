package cpu

import (
	"bytes"
	"testing"

	"malec/internal/config"
	"malec/internal/trace"
)

// allConfigs returns every preset for integration sweeps.
func allConfigs() []config.Config {
	return []config.Config{
		config.Base1ldst(),
		config.Base2ld1st(),
		config.Base2ld1st1cycleL1(),
		config.MALEC(),
		config.MALEC3cycleL1(),
		config.MALECWithWDU(16),
		config.MALECNoMerge(),
		config.MALECNoFeedback(),
		config.MALECNoWayDet(),
		config.MALECSegmentedWT(16, 0.5),
	}
}

func TestAllConfigsRunToCompletion(t *testing.T) {
	for _, cfg := range allConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			r := RunBenchmark(cfg, "gzip", 20000, 2)
			if r.Instructions != 20000 {
				t.Fatalf("retired %d instructions, want 20000", r.Instructions)
			}
			if r.Cycles == 0 || r.IPC() <= 0 {
				t.Fatalf("degenerate run: %+v", r)
			}
			if r.Energy.Total() <= 0 {
				t.Fatal("no energy accounted")
			}
		})
	}
}

func TestSameTraceSameMemoryBehaviour(t *testing.T) {
	// The L1 miss count is a property of the reference stream (plus small
	// way-constraint and merge effects), so it must be similar across
	// interface variants running the identical trace.
	base := RunBenchmark(config.Base1ldst(), "gzip", 50000, 3)
	mal := RunBenchmark(config.MALEC(), "gzip", 50000, 3)
	if base.Loads != mal.Loads || base.Stores != mal.Stores {
		t.Fatalf("trace diverged: %d/%d loads, %d/%d stores",
			base.Loads, mal.Loads, base.Stores, mal.Stores)
	}
	bm, mm := float64(base.L1.Misses), float64(mal.L1.Misses)
	if mm > 2*bm+100 || bm > 2*mm+100 {
		t.Fatalf("miss counts diverged: base %v vs malec %v", bm, mm)
	}
}

func TestLatencyMonotonicity(t *testing.T) {
	var prev uint64
	for i, lat := range []int{1, 2, 3, 4} {
		cfg := config.MALEC()
		cfg.L1Latency = lat
		r := RunBenchmark(cfg, "gap", 30000, 4)
		if i > 0 && r.Cycles+50 < prev {
			t.Fatalf("latency %d faster than %d: %d vs %d cycles",
				lat, lat-1, r.Cycles, prev)
		}
		prev = r.Cycles
	}
}

func TestMispredictStallsCostCycles(t *testing.T) {
	// Identical instruction mix, with and without mispredicted branches.
	mk := func(misp bool) []trace.Record {
		recs := make([]trace.Record, 0, 4000)
		for i := 0; i < 1000; i++ {
			recs = append(recs,
				trace.Record{Kind: trace.Op},
				trace.Record{Kind: trace.Op},
				trace.Record{Kind: trace.Op},
				trace.Record{Kind: trace.Branch, Mispredict: misp && i%10 == 0})
		}
		return recs
	}
	good := Run(config.Base1ldst(), "good", &SliceSource{Records: mk(false)})
	bad := Run(config.Base1ldst(), "bad", &SliceSource{Records: mk(true)})
	if bad.Cycles <= good.Cycles {
		t.Fatalf("mispredictions did not cost cycles: %d vs %d",
			bad.Cycles, good.Cycles)
	}
	// 100 mispredicts x (resolve + refill) should cost >1000 cycles.
	if bad.Cycles-good.Cycles < 1000 {
		t.Fatalf("mispredict penalty too small: %d cycles for 100 redirects",
			bad.Cycles-good.Cycles)
	}
}

func TestMalecFasterThanBase1OnParallelWorkload(t *testing.T) {
	b1 := RunBenchmark(config.Base1ldst(), "djpeg", 50000, 5)
	ml := RunBenchmark(config.MALEC(), "djpeg", 50000, 5)
	if ml.Cycles >= b1.Cycles {
		t.Fatalf("MALEC (%d cycles) not faster than Base1ldst (%d) on djpeg",
			ml.Cycles, b1.Cycles)
	}
}

func TestMalecSavesEnergy(t *testing.T) {
	b1 := RunBenchmark(config.Base1ldst(), "gzip", 50000, 6)
	b2 := RunBenchmark(config.Base2ld1st(), "gzip", 50000, 6)
	ml := RunBenchmark(config.MALEC(), "gzip", 50000, 6)
	if ml.Energy.Total() >= b1.Energy.Total() {
		t.Fatal("MALEC must undercut Base1ldst energy on a cache-friendly workload")
	}
	if b2.Energy.Total() <= b1.Energy.Total() {
		t.Fatal("Base2ld1st must exceed Base1ldst energy")
	}
	// The way tables must deliver reduced accesses.
	if ml.L1.ReducedReads == 0 || ml.Coverage() < 0.5 {
		t.Fatalf("way determination ineffective: %d reduced reads, %.2f coverage",
			ml.L1.ReducedReads, ml.Coverage())
	}
}

func TestSegmentedConfigCoverageBelowFull(t *testing.T) {
	full := RunBenchmark(config.MALEC(), "gzip", 50000, 7)
	segCfg := config.MALECSegmentedWT(16, 0.25)
	seg := RunBenchmark(segCfg, "gzip", 50000, 7)
	if seg.Coverage() > full.Coverage()+0.01 {
		t.Fatalf("quarter-pool segmented WT coverage %.3f above full %.3f",
			seg.Coverage(), full.Coverage())
	}
	if seg.Coverage() == 0 {
		t.Fatal("segmented WT produced no coverage at all")
	}
}

func TestReaderSourceIntegration(t *testing.T) {
	// A trace written through the codec must simulate identically to the
	// in-memory records.
	recs := Generate(t)
	direct := Run(config.MALEC(), "direct", &SliceSource{Records: recs})
	decoded := Run(config.MALEC(), "decoded", &SliceSource{Records: roundTrip(t, recs)})
	if direct.Cycles != decoded.Cycles {
		t.Fatalf("codec round trip changed timing: %d vs %d",
			direct.Cycles, decoded.Cycles)
	}
}

// Generate builds a small workload for codec integration.
func Generate(t *testing.T) []trace.Record {
	t.Helper()
	return trace.NewGenerator(trace.Profiles["gzip"], 8).Generate(20000)
}

// roundTrip encodes and decodes records through the binary codec.
func roundTrip(t *testing.T, recs []trace.Record) []trace.Record {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return out
}
