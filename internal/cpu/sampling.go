package cpu

// Sampled simulation (tentpole of the sampled+checkpointed-simulation PR):
// SMARTS-style interval sampling over the trace. The run is divided into
// fixed intervals; most of each interval is driven through functional
// warming (core.System.WarmLoad/WarmStore — full memory-side state
// machine, no cycle accounting), and a short detailed burst at the end of
// each interval is measured cycle-accurately on a throwaway machine. The
// per-window CPI and dynamic-energy-per-instruction samples extrapolate to
// whole-run cycles and energy, with 95% confidence intervals reported in
// Result.Sampling.
//
// Shadow-burst structure: the primary system is ONLY ever functionally
// warmed, so its trajectory is independent of both the core-side
// configuration and the sampling schedule. Each burst instead runs on a
// fresh core.New machine whose memory side is restored from the state
// captured at burst start and discarded afterwards (its store/merge
// buffers may be mid-flight when the burst stops, so it is never reused).
// The burst records are both warmed into the primary and replayed into the
// shadow, keeping the primary's trajectory identical to a run with no
// measurement at all — which is exactly the trajectory microarchitectural
// checkpoints capture and restore.

import (
	"context"
	"fmt"

	"malec/internal/config"
	"malec/internal/core"
	"malec/internal/energy"
	"malec/internal/stats"
	"malec/internal/trace"
)

// SourceState is an opaque snapshot of a Source's position, carried inside
// checkpoints so a restore can skip the fast-forwarded stretch of the
// trace instead of replaying it.
type SourceState struct {
	// Gen is the generator snapshot for GenSource-backed runs.
	Gen *trace.GeneratorState `json:",omitempty"`
	// Pos is the number of records consumed (both source kinds).
	Pos uint64
}

// statefulSource is implemented by sources whose position can be captured
// and restored; RestoreState reports false when the snapshot does not fit
// (e.g. a generator snapshot offered to a different source kind).
type statefulSource interface {
	CaptureState() SourceState
	RestoreState(SourceState) bool
}

// Checkpoint is one warmed snapshot: the memory-side state at a trace
// index, the stream counts up to it, and (when the source supports it) the
// source position — everything needed to resume the functional-warming
// trajectory at that index without touching the records before it.
type Checkpoint struct {
	Sys *core.SystemState
	// Instructions/Loads/Stores count the records before the checkpoint.
	Instructions uint64
	Loads        uint64
	Stores       uint64
	// Src, when present, lets a restore skip record generation entirely.
	Src *SourceState `json:",omitempty"`
}

// Checkpoints is an optional store of warmed snapshots, keyed by the
// absolute trace-record index at which the snapshot was taken. The caller
// (the engine) curries the rest of the identity — memory-side config
// digest, benchmark, seed — so two core-side config variants over the same
// trace share entries. Load returns a snapshot that must not be mutated;
// Save takes ownership of an immutable snapshot.
type Checkpoints interface {
	Load(n uint64) (*Checkpoint, bool)
	Save(n uint64, ck *Checkpoint)
}

// runSampled executes the sampled fast path. total is the number of
// records the source will yield (>= one interval, checked by the caller).
// ctx, when non-nil, is polled once per window and periodically through
// the tail warm; windows are bounded (one interval of warming plus a
// burst), so cancellation lands within a window's worth of work.
func runSampled(ctx context.Context, cfg config.Config, benchmark string, src Source, total int, ck Checkpoints) (Result, error) {
	sch := cfg.Sampling
	warmup, detail, interval := sch.Warmup, sch.Detail, sch.Interval
	burst := warmup + detail
	gap := interval - burst
	nWin := total / interval

	// Checkpoint indexes are absolute trace positions; a source that has
	// already been partially consumed would alias them, so checkpointing is
	// only engaged for sources starting at the beginning of the trace.
	if ck != nil {
		if sf, ok := src.(statefulSource); !ok || sf.CaptureState().Pos != 0 {
			ck = nil
		}
	}

	sys := core.NewSystem(cfg)
	sys.SetWarming(true)

	var (
		instructions, loads, stores uint64
		warmed                      uint64
		skippedCycles, skipJumps    uint64
		hits, saves                 int
		epiSum                      energy.Breakdown
		lastMeter                   *energy.Meter
	)
	cpiSamples := make([]float64, 0, nWin)
	epiSamples := make([]float64, 0, nWin)
	buf := make([]trace.Record, burst)

	next := func() trace.Record {
		rec, ok := src.Next()
		if !ok {
			panic(fmt.Sprintf("cpu: source ran dry mid-schedule after %d records (Remaining lied)", instructions))
		}
		instructions++
		switch rec.Kind {
		case trace.Load:
			loads++
		case trace.Store:
			stores++
		}
		return rec
	}
	warm := func(rec trace.Record) {
		warmed++
		switch rec.Kind {
		case trace.Load:
			sys.WarmLoad(rec.Addr)
		case trace.Store:
			sys.WarmStore(rec.Addr)
		}
	}

	for k := 0; k < nWin; k++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		// Burst start, as an absolute record index: the checkpoint key.
		burstStart := uint64(k)*uint64(interval) + uint64(gap)

		// Reach the burst start: restore a warmed snapshot if one exists —
		// jumping the source state over the gap when the snapshot carries
		// it, else streaming the gap records to keep the generator and the
		// instruction-mix counts exact — otherwise warm the gap and capture.
		var st *core.SystemState
		if ck != nil {
			if got, ok := ck.Load(burstStart); ok && got.Sys != nil {
				jumped := false
				if got.Src != nil {
					if sf, ok := src.(statefulSource); ok && sf.RestoreState(*got.Src) {
						instructions = got.Instructions
						loads = got.Loads
						stores = got.Stores
						jumped = true
					}
				}
				if !jumped {
					for i := 0; i < gap; i++ {
						next()
					}
				}
				sys.RestoreState(got.Sys)
				st = got.Sys
				hits++
			}
		}
		if st == nil {
			for i := 0; i < gap; i++ {
				warm(next())
			}
			st = sys.CaptureState()
			if ck != nil {
				save := &Checkpoint{Sys: st, Instructions: instructions, Loads: loads, Stores: stores}
				if sf, ok := src.(statefulSource); ok {
					ss := sf.CaptureState()
					save.Src = &ss
				}
				ck.Save(burstStart, save)
				saves++
			}
		}

		// The burst records feed both the primary (trajectory identical to
		// an unmeasured run) and the shadow's replay buffer.
		for i := 0; i < burst; i++ {
			rec := next()
			warm(rec)
			buf[i] = rec
		}

		// Detailed measurement: throwaway machine, memory side restored to
		// the burst-start state, warmup retires unmeasured, the detail
		// portion is measured in cycles and dynamic energy.
		shadow := core.New(cfg)
		shadow.System().RestoreState(st)
		m := newMachine(cfg, shadow, &SliceSource{Records: buf})
		if warmup > 0 {
			m.runTo(uint64(warmup))
		}
		c0 := m.cycle
		dyn0 := shadow.Meter().DynamicEnergy()
		m.runTo(uint64(burst))
		dyn1 := shadow.Meter().DynamicEnergy()

		cpiSamples = append(cpiSamples, float64(m.cycle-c0)/float64(detail))
		var epi float64
		for c := range dyn1 {
			d := (dyn1[c] - dyn0[c]) / float64(detail)
			epiSum.Dynamic[c] += d
			epi += d
		}
		epiSamples = append(epiSamples, epi)
		skippedCycles += m.skippedCycles
		skipJumps += m.skipJumps
		lastMeter = shadow.Meter()
	}

	// Tail past the last full interval: warmed so the final memory-side
	// statistics cover the whole trace.
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		if ctx != nil && instructions&(1<<20-1) == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		instructions++
		switch rec.Kind {
		case trace.Load:
			loads++
		case trace.Store:
			stores++
		}
		warm(rec)
	}

	// Extrapolate: mean CPI and mean per-component EPI over the windows,
	// scaled to the full instruction count. Leakage is priced off the
	// estimated cycle count (it depends only on time and port config, not
	// event counts), via the last shadow's meter.
	nw := float64(nWin)
	var cpiSum float64
	for _, c := range cpiSamples {
		cpiSum += c
	}
	cpiMean := cpiSum / nw
	estCycles := uint64(cpiMean*float64(instructions) + 0.5)

	var eb energy.Breakdown
	var epiMean float64
	for c := range epiSum.Dynamic {
		mean := epiSum.Dynamic[c] / nw
		eb.Dynamic[c] = mean * float64(instructions)
		epiMean += mean
	}
	eb.Leakage = lastMeter.Finish(estCycles).Leakage

	known, covTotal := sys.Det.Coverage()
	tel := stats.NewCounters()
	tel.Add(stats.CtrSkippedCycles, skippedCycles)
	tel.Add(stats.CtrSkipJumps, skipJumps)
	tel.Add(stats.CtrSampledWindows, uint64(nWin))
	tel.Add(stats.CtrSampledWarmedRecords, warmed)
	tel.Add(stats.CtrCheckpointRestores, uint64(hits))
	tel.Add(stats.CtrCheckpointSaves, uint64(saves))

	return Result{
		Telemetry:     tel,
		Config:        cfg.Name,
		Benchmark:     benchmark,
		Cycles:        estCycles,
		Instructions:  instructions,
		Loads:         loads,
		Stores:        stores,
		Energy:        eb,
		L1:            sys.L1.Stats(),
		L2:            sys.Back.L2.Stats(),
		UTLB:          sys.Hier.U.Stats(),
		TLB:           sys.Hier.Main.Stats(),
		CoverageKnown: known,
		CoverageTotal: covTotal,
		Counters:      sys.Ctr,
		Sampling: &SamplingEstimate{
			Windows:            nWin,
			Warmup:             warmup,
			Detail:             detail,
			Interval:           interval,
			CPIMean:            cpiMean,
			CPIRelHalfWidth:    RelHalfWidth95(cpiSamples),
			EnergyMean:         epiMean,
			EnergyRelHalfWidth: RelHalfWidth95(epiSamples),
			CheckpointHits:     hits,
			CheckpointMisses:   nWin - hits,
			WarmedRecords:      warmed,
		},
	}, nil
}
