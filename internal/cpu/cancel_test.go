package cpu

import (
	"context"
	"errors"
	"testing"
	"time"

	"malec/internal/config"
	"malec/internal/trace"
)

func cancelSource(benchmark string, seed uint64, n int) *GenSource {
	prof, ok := trace.Profiles[benchmark]
	if !ok {
		panic("unknown benchmark " + benchmark)
	}
	return &GenSource{Gen: trace.NewGenerator(prof, seed), N: n}
}

func TestRunContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, config.Base1ldst(), "gzip", cancelSource("gzip", 1, 100000))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, config.Base1ldst(), "mcf", cancelSource("mcf", 2, 20_000_000))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run did not return within 10s")
	}
}

func TestRunContextUncancelledMatchesRun(t *testing.T) {
	cfg := config.Base1ldst()
	want := Run(cfg, "gzip", cancelSource("gzip", 3, 50000))
	got, err := RunContext(context.Background(), cfg, "gzip", cancelSource("gzip", 3, 50000))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != want.Cycles || got.Instructions != want.Instructions ||
		got.Energy != want.Energy || got.L1 != want.L1 || got.L2 != want.L2 {
		t.Fatalf("ctx run diverged from plain run:\n got %+v\nwant %+v", got, want)
	}
}

func TestSampledRunContextCancelled(t *testing.T) {
	cfg := config.Base1ldst()
	cfg.Sampling = &config.Sampling{Interval: 10000, Warmup: 500, Detail: 500}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunWithCheckpointsContext(ctx, cfg, "gzip", cancelSource("gzip", 4, 100000), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
