package cpu

import (
	"testing"

	"malec/internal/config"
	"malec/internal/mem"
	"malec/internal/trace"
)

// chain builds n ops each depending on its predecessor.
func chain(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{Kind: trace.Op}
		if i > 0 {
			recs[i].Dep2 = 1
		}
	}
	return recs
}

func TestSerialChainThroughput(t *testing.T) {
	n := 1000
	res := Run(config.Base1ldst(), "chain", &SliceSource{Records: chain(n)})
	// A distance-1 dependency chain must execute at ~1 op/cycle.
	if res.Cycles < uint64(n) {
		t.Fatalf("serial chain of %d ops finished in %d cycles; dependencies not enforced", n, res.Cycles)
	}
	if res.Cycles > uint64(n)+100 {
		t.Fatalf("serial chain of %d ops took %d cycles; unexpected stalls", n, res.Cycles)
	}
}

func TestIndependentOpsThroughput(t *testing.T) {
	n := 6000
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{Kind: trace.Op}
	}
	res := Run(config.Base1ldst(), "par", &SliceSource{Records: recs})
	// Independent ops are dispatch-bound: ~FetchWidth per cycle.
	minCycles := uint64(n / config.Base1ldst().FetchWidth)
	if res.Cycles < minCycles {
		t.Fatalf("%d independent ops in %d cycles: exceeds fetch width", n, res.Cycles)
	}
	if res.Cycles > minCycles*2 {
		t.Fatalf("%d independent ops took %d cycles (expected near %d)", n, res.Cycles, minCycles)
	}
}

func TestLoadUseLatency(t *testing.T) {
	// load -> dependent op chain: each pair costs at least the L1 latency.
	n := 500
	recs := make([]trace.Record, 0, 2*n)
	for i := 0; i < n; i++ {
		recs = append(recs,
			trace.Record{Kind: trace.Load, Addr: mem.Addr(i*8) % (1 << 14), Size: 8, Dep1: 1},
			trace.Record{Kind: trace.Op, Dep2: 1},
		)
	}
	// Dep1:1 on each load serializes loads behind the previous op, which
	// depends on the previous load: a full load->use->load chain.
	cfg := config.Base1ldst()
	res := Run(cfg, "ldchain", &SliceSource{Records: recs})
	perPair := float64(res.Cycles) / float64(n)
	if perPair < float64(cfg.L1Latency) {
		t.Fatalf("load-use chain ran at %.2f cycles/pair; want >= %d (L1 latency)", perPair, cfg.L1Latency)
	}
}

func TestDeterminism(t *testing.T) {
	a := RunBenchmark(config.MALEC(), "gzip", 20000, 7)
	b := RunBenchmark(config.MALEC(), "gzip", 20000, 7)
	if a.Cycles != b.Cycles || a.Energy.Total() != b.Energy.Total() {
		t.Fatalf("simulation is not deterministic: %d/%d cycles, %f/%f pJ",
			a.Cycles, b.Cycles, a.Energy.Total(), b.Energy.Total())
	}
}
