package cpu

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"malec/internal/config"
	"malec/internal/mem"
	"malec/internal/trace"
)

// chain builds n ops each depending on its predecessor.
func chain(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{Kind: trace.Op}
		if i > 0 {
			recs[i].Dep2 = 1
		}
	}
	return recs
}

func TestSerialChainThroughput(t *testing.T) {
	n := 1000
	res := Run(config.Base1ldst(), "chain", &SliceSource{Records: chain(n)})
	// A distance-1 dependency chain must execute at ~1 op/cycle.
	if res.Cycles < uint64(n) {
		t.Fatalf("serial chain of %d ops finished in %d cycles; dependencies not enforced", n, res.Cycles)
	}
	if res.Cycles > uint64(n)+100 {
		t.Fatalf("serial chain of %d ops took %d cycles; unexpected stalls", n, res.Cycles)
	}
}

func TestIndependentOpsThroughput(t *testing.T) {
	n := 6000
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{Kind: trace.Op}
	}
	res := Run(config.Base1ldst(), "par", &SliceSource{Records: recs})
	// Independent ops are dispatch-bound: ~FetchWidth per cycle.
	minCycles := uint64(n / config.Base1ldst().FetchWidth)
	if res.Cycles < minCycles {
		t.Fatalf("%d independent ops in %d cycles: exceeds fetch width", n, res.Cycles)
	}
	if res.Cycles > minCycles*2 {
		t.Fatalf("%d independent ops took %d cycles (expected near %d)", n, res.Cycles, minCycles)
	}
}

func TestLoadUseLatency(t *testing.T) {
	// load -> dependent op chain: each pair costs at least the L1 latency.
	n := 500
	recs := make([]trace.Record, 0, 2*n)
	for i := 0; i < n; i++ {
		recs = append(recs,
			trace.Record{Kind: trace.Load, Addr: mem.Addr(i*8) % (1 << 14), Size: 8, Dep1: 1},
			trace.Record{Kind: trace.Op, Dep2: 1},
		)
	}
	// Dep1:1 on each load serializes loads behind the previous op, which
	// depends on the previous load: a full load->use->load chain.
	cfg := config.Base1ldst()
	res := Run(cfg, "ldchain", &SliceSource{Records: recs})
	perPair := float64(res.Cycles) / float64(n)
	if perPair < float64(cfg.L1Latency) {
		t.Fatalf("load-use chain ran at %.2f cycles/pair; want >= %d (L1 latency)", perPair, cfg.L1Latency)
	}
}

func TestDeterminism(t *testing.T) {
	a := RunBenchmark(config.MALEC(), "gzip", 20000, 7)
	b := RunBenchmark(config.MALEC(), "gzip", 20000, 7)
	if a.Cycles != b.Cycles || a.Energy.Total() != b.Energy.Total() {
		t.Fatalf("simulation is not deterministic: %d/%d cycles, %f/%f pJ",
			a.Cycles, b.Cycles, a.Energy.Total(), b.Energy.Total())
	}
}

// mustPanic runs f and returns the recovered panic message, failing the
// test if f returns normally.
func mustPanic(t *testing.T, f func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = fmt.Sprint(r)
			}
		}()
		f()
		t.Fatal("expected panic, got normal return")
	}()
	return msg
}

func TestOversizedROBRejected(t *testing.T) {
	// The completion-time ring holds doneWindow entries; a ROB so large
	// that an in-window dependency could alias a younger instruction's
	// slot must be rejected at construction, not corrupt silently.
	cfg := config.MALEC()
	cfg.ROB = doneWindow - trace.MaxDepWindow
	msg := mustPanic(t, func() {
		Run(cfg, "huge", &SliceSource{Records: chain(10)})
	})
	if !strings.Contains(msg, "completion window") {
		t.Fatalf("panic message %q does not explain the completion-window bound", msg)
	}
	cfg.ROB = 0
	mustPanic(t, func() { Run(cfg, "zero", &SliceSource{Records: chain(10)}) })

	// One below the bound must construct and run fine.
	cfg.ROB = doneWindow - trace.MaxDepWindow - 1
	if res := Run(cfg, "ok", &SliceSource{Records: chain(100)}); res.Instructions != 100 {
		t.Fatalf("near-limit ROB simulated %d instructions, want 100", res.Instructions)
	}
}

func TestOversizedDepDistanceRejected(t *testing.T) {
	// A custom trace whose dependency reaches beyond the aliasing-safe
	// window must panic at dispatch rather than read a corrupted
	// completion time.
	recs := make([]trace.Record, doneWindow+10)
	for i := range recs {
		recs[i] = trace.Record{Kind: trace.Op}
	}
	recs[len(recs)-1].Dep1 = doneWindow - 1
	msg := mustPanic(t, func() {
		Run(config.MALEC(), "fardep", &SliceSource{Records: recs})
	})
	if !strings.Contains(msg, "dependency distance") {
		t.Fatalf("panic message %q does not name the dependency distance", msg)
	}

	// A huge distance reaching past the trace start is pre-history, not
	// aliasing: it must still be accepted and ignored.
	early := chain(50)
	early[3].Dep1 = doneWindow - 1
	if res := Run(config.MALEC(), "prehist", &SliceSource{Records: early}); res.Instructions != 50 {
		t.Fatalf("pre-history dependency run simulated %d instructions, want 50", res.Instructions)
	}
}

// TestWakeupMatchesScanOnMicroTraces pins the wakeup scheduler against the
// scan path on handcrafted corner-case traces: dependency chains, loads,
// store ordering under a full store buffer, and dual deps on one producer.
func TestWakeupMatchesScanOnMicroTraces(t *testing.T) {
	mixed := make([]trace.Record, 0, 4000)
	for i := 0; i < 1000; i++ {
		mixed = append(mixed,
			trace.Record{Kind: trace.Load, Addr: mem.Addr(i*64) % (1 << 18), Size: 8},
			trace.Record{Kind: trace.Op, Dep1: 1, Dep2: 2},
			trace.Record{Kind: trace.Store, Addr: mem.Addr(i*8) % (1 << 12), Size: 8, Dep1: 1},
			// Both deps on one producer (the load 3 back): registers two
			// wakeup nodes on the same list and decrements pendingDeps
			// twice in one drain.
			trace.Record{Kind: trace.Op, Dep1: 3, Dep2: 3},
		)
	}
	traces := map[string][]trace.Record{
		"chain": chain(2000),
		"mixed": mixed,
	}
	for name, recs := range traces {
		on := config.MALEC()
		off := config.MALEC()
		off.DisableWakeup = true
		a := Run(on, name, &SliceSource{Records: recs})
		b := Run(off, name, &SliceSource{Records: recs})
		ja, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		jb, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ja, jb) {
			t.Errorf("%s: wakeup result differs from scan (cycles %d vs %d)", name, a.Cycles, b.Cycles)
		}
	}
}
