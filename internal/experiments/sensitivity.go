package experiments

import (
	"fmt"
	"strings"

	"malec/internal/config"
	"malec/internal/stats"
)

// Sensitivity experiments for Sec. VI-D, which discusses MALEC's
// dependence on L1 latency, the number of result buses, the arbitration
// unit's comparator budget, and the sub-blocked merge window.

// LatencyRow is one L1-latency point for one interface.
type LatencyRow struct {
	Config  string
	Latency int
	// Time is the execution time normalized to the 2-cycle MALEC config.
	Time float64
}

// LatencyResult is the L1 latency sweep dataset.
type LatencyResult struct {
	Rows []LatencyRow
}

// LatencySensitivity sweeps the L1 access latency from 1 to 4 cycles for
// Base2ld1st and MALEC, extending the paper's two spot variants
// (Base2ld1st_1cycleL1, MALEC_3cycleL1).
func LatencySensitivity(opt Options) LatencyResult {
	opt = opt.normalize()
	var cfgs []config.Config
	for lat := 1; lat <= 4; lat++ {
		b := config.Base2ld1st()
		b.Name = fmt.Sprintf("Base2ld1st_%dc", lat)
		b.L1Latency = lat
		m := config.MALEC()
		m.Name = fmt.Sprintf("MALEC_%dc", lat)
		m.L1Latency = lat
		cfgs = append(cfgs, b, m)
	}
	g := runGrid(cfgs, opt)
	ref := "MALEC_2c"
	var out LatencyResult
	for lat := 1; lat <= 4; lat++ {
		for _, base := range []string{"Base2ld1st", "MALEC"} {
			name := fmt.Sprintf("%s_%dc", base, lat)
			t := geoOver(g.Benchmarks, func(b string) float64 {
				return float64(g.Results[name][b].Cycles) /
					float64(g.Results[ref][b].Cycles)
			})
			out.Rows = append(out.Rows, LatencyRow{Config: base, Latency: lat, Time: t})
		}
	}
	return out
}

// Table renders the latency sweep.
func (r LatencyResult) Table() string {
	var b strings.Builder
	b.WriteString("### Sec. VI-D — L1 access latency sweep [exec. time, % of 2-cycle MALEC]\n\n")
	header := []string{"L1 latency", "Base2ld1st", "MALEC"}
	byLat := map[int]map[string]float64{}
	for _, row := range r.Rows {
		if byLat[row.Latency] == nil {
			byLat[row.Latency] = map[string]float64{}
		}
		byLat[row.Latency][row.Config] = row.Time
	}
	var rows [][]string
	for lat := 1; lat <= 4; lat++ {
		rows = append(rows, []string{fmt.Sprintf("%d cycles", lat),
			pct(byLat[lat]["Base2ld1st"]), pct(byLat[lat]["MALEC"])})
	}
	b.WriteString(markdownTable(header, rows))
	return b.String()
}

// BusRow is one result-bus count data point.
type BusRow struct {
	Buses int
	// Time is normalized to the 4-bus configuration.
	Time float64
	// MergedFrac is the fraction of loads serviced by merging.
	MergedFrac float64
}

// BusResult is the result-bus sweep dataset.
type BusResult struct {
	Rows []BusRow
}

// ResultBusSweep varies MALEC's result buses (the number of loads serviced
// per cycle) from 1 to 4. The paper: "MALEC's performance is primarily
// limited [by] the number of memory references issued per cycle and the
// number of available result busses."
func ResultBusSweep(opt Options) BusResult {
	opt = opt.normalize()
	var cfgs []config.Config
	for buses := 1; buses <= 4; buses++ {
		c := config.MALEC()
		c.Name = fmt.Sprintf("MALEC_%dbus", buses)
		c.MaxLoadsPerCycle = buses
		cfgs = append(cfgs, c)
	}
	g := runGrid(cfgs, opt)
	ref := "MALEC_4bus"
	var out BusResult
	for buses := 1; buses <= 4; buses++ {
		name := fmt.Sprintf("MALEC_%dbus", buses)
		t := geoOver(g.Benchmarks, func(b string) float64 {
			return float64(g.Results[name][b].Cycles) /
				float64(g.Results[ref][b].Cycles)
		})
		var merged, loads float64
		for _, b := range g.Benchmarks {
			res := g.Results[name][b]
			merged += float64(res.Counters.Get(stats.CtrMalecMergedLoads))
			loads += float64(res.Loads)
		}
		out.Rows = append(out.Rows, BusRow{Buses: buses, Time: t,
			MergedFrac: merged / loads})
	}
	return out
}

// Table renders the bus sweep.
func (r BusResult) Table() string {
	var b strings.Builder
	b.WriteString("### Sec. VI-D — result bus sweep [exec. time, % of 4-bus MALEC]\n\n")
	header := []string{"result buses", "time", "merged loads [%]"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{fmt.Sprintf("%d", row.Buses),
			pct(row.Time), pct(row.MergedFrac)})
	}
	b.WriteString(markdownTable(header, rows))
	return b.String()
}

// CompareLimitRow is one arbitration comparator budget data point.
type CompareLimitRow struct {
	Limit      int
	Time       float64 // normalized to unlimited comparators
	MergedFrac float64
}

// CompareLimitResult is the comparator budget dataset.
type CompareLimitResult struct {
	Rows []CompareLimitRow
}

// CompareLimitAblation varies how many consecutive input-buffer entries the
// arbitration unit compares for merging. The paper limits it to three and
// claims "the performance degradation due to this limitation is less than
// 0.5%".
func CompareLimitAblation(opt Options) CompareLimitResult {
	opt = opt.normalize()
	limits := []int{1, 3, 16}
	var cfgs []config.Config
	for _, l := range limits {
		c := config.MALEC()
		c.Name = fmt.Sprintf("MALEC_cmp%d", l)
		c.MergeCompareLimit = l
		cfgs = append(cfgs, c)
	}
	g := runGrid(cfgs, opt)
	ref := "MALEC_cmp16"
	var out CompareLimitResult
	for _, l := range limits {
		name := fmt.Sprintf("MALEC_cmp%d", l)
		t := geoOver(g.Benchmarks, func(b string) float64 {
			return float64(g.Results[name][b].Cycles) /
				float64(g.Results[ref][b].Cycles)
		})
		var merged, loads float64
		for _, b := range g.Benchmarks {
			res := g.Results[name][b]
			merged += float64(res.Counters.Get(stats.CtrMalecMergedLoads))
			loads += float64(res.Loads)
		}
		out.Rows = append(out.Rows, CompareLimitRow{Limit: l, Time: t,
			MergedFrac: merged / loads})
	}
	return out
}

// Table renders the comparator ablation.
func (r CompareLimitResult) Table() string {
	var b strings.Builder
	b.WriteString("### Sec. IV — arbitration comparator budget (paper: 3 comparators cost <0.5%)\n\n")
	header := []string{"compare limit", "time vs unlimited", "merged loads [%]"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{fmt.Sprintf("%d", row.Limit),
			pct(row.Time), pct(row.MergedFrac)})
	}
	b.WriteString(markdownTable(header, rows))
	return b.String()
}

// MergeWindowRow is one merge-granularity data point.
type MergeWindowRow struct {
	WindowBytes int
	MergedFrac  float64
	Time        float64 // normalized to the 32-byte window
}

// MergeWindowResult is the sub-block window dataset.
type MergeWindowResult struct {
	Rows []MergeWindowRow
}

// MergeWindowAblation compares merge granularities: a single 128-bit
// sub-block (16 B), the paper's two-adjacent-sub-blocks read (32 B, which
// "doubles the probability for loads to be merged"), and idealized
// whole-line sharing (64 B).
func MergeWindowAblation(opt Options) MergeWindowResult {
	opt = opt.normalize()
	windows := []int{16, 32, 64}
	var cfgs []config.Config
	for _, w := range windows {
		c := config.MALEC()
		c.Name = fmt.Sprintf("MALEC_w%d", w)
		c.MergeWindowBytes = w
		cfgs = append(cfgs, c)
	}
	g := runGrid(cfgs, opt)
	ref := "MALEC_w32"
	var out MergeWindowResult
	for _, w := range windows {
		name := fmt.Sprintf("MALEC_w%d", w)
		t := geoOver(g.Benchmarks, func(b string) float64 {
			return float64(g.Results[name][b].Cycles) /
				float64(g.Results[ref][b].Cycles)
		})
		var merged, loads float64
		for _, b := range g.Benchmarks {
			res := g.Results[name][b]
			merged += float64(res.Counters.Get(stats.CtrMalecMergedLoads))
			loads += float64(res.Loads)
		}
		out.Rows = append(out.Rows, MergeWindowRow{WindowBytes: w,
			MergedFrac: merged / loads, Time: t})
	}
	return out
}

// Table renders the merge-window ablation.
func (r MergeWindowResult) Table() string {
	var b strings.Builder
	b.WriteString("### Sec. IV — sub-block merge window (paper: 2 sub-blocks double merging)\n\n")
	header := []string{"window [bytes]", "merged loads [%]", "time vs 32B"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{fmt.Sprintf("%d", row.WindowBytes),
			pct(row.MergedFrac), pct(row.Time)})
	}
	b.WriteString(markdownTable(header, rows))
	return b.String()
}
