package experiments

import (
	"testing"

	"malec/internal/engine"
)

// TestFig4SecondRunFullyCached asserts the tentpole property: repeating a
// figure driver through the engine performs zero new simulations and
// reproduces the same numbers.
func TestFig4SecondRunFullyCached(t *testing.T) {
	eng := engine.New(engine.Options{})
	opt := Options{
		Instructions: 20000,
		Benchmarks:   []string{"gzip", "mcf"},
		Engine:       eng,
	}

	first := Fig4(opt)
	afterFirst := eng.Stats()
	if afterFirst.Simulations == 0 {
		t.Fatalf("first run performed no simulations: %+v", afterFirst)
	}

	second := Fig4(opt)
	afterSecond := eng.Stats()
	if got := afterSecond.Simulations - afterFirst.Simulations; got != 0 {
		t.Fatalf("second Fig4 run performed %d new simulations, want 0", got)
	}
	if afterSecond.Hits <= afterFirst.Hits {
		t.Fatalf("second run recorded no cache hits: %+v -> %+v", afterFirst, afterSecond)
	}
	for _, cfg := range first.Grid.Configs {
		for _, b := range first.Grid.Benchmarks {
			if first.Time[cfg][b] != second.Time[cfg][b] {
				t.Fatalf("cached %s/%s time differs from computed", cfg, b)
			}
			if first.Total[cfg][b] != second.Total[cfg][b] {
				t.Fatalf("cached %s/%s energy differs from computed", cfg, b)
			}
		}
	}
}

// TestDriversShareSimulationPoints asserts cross-driver reuse on one
// engine: CoverageAblation shares MALEC points already simulated by Fig4.
func TestDriversShareSimulationPoints(t *testing.T) {
	eng := engine.New(engine.Options{})
	opt := Options{
		Instructions: 20000,
		Benchmarks:   []string{"gzip"},
		Engine:       eng,
	}
	Fig4(opt)
	mid := eng.Stats()
	CoverageAblation(opt)
	after := eng.Stats()
	if after.Hits == mid.Hits {
		t.Fatalf("CoverageAblation reused no Fig4 points: %+v -> %+v", mid, after)
	}
}
