package experiments

import (
	"fmt"
	"strings"

	"malec/internal/config"
	"malec/internal/cpu"
)

// Fig4Result holds the normalized execution time (Fig. 4a) and energy
// (Fig. 4b) series for the five configurations, normalized to Base1ldst.
type Fig4Result struct {
	Grid *Grid
	// Time[config][bench] = execution time normalized to Base1ldst (1.0).
	Time map[string]map[string]float64
	// Dyn/Leak/Total[config][bench] = energy normalized to Base1ldst's
	// total energy.
	Dyn   map[string]map[string]float64
	Leak  map[string]map[string]float64
	Total map[string]map[string]float64
}

// baseline is the normalization reference for Fig. 4.
const baseline = "Base1ldst"

// Fig4 runs the five configurations of Fig. 4 over the benchmark set and
// normalizes both axes to Base1ldst.
func Fig4(opt Options) Fig4Result {
	return fig4From(runGrid(config.Fig4Configs(), opt))
}

// fig4From normalizes an already-computed grid.
func fig4From(g *Grid) Fig4Result {
	r := Fig4Result{
		Grid:  g,
		Time:  make(map[string]map[string]float64),
		Dyn:   make(map[string]map[string]float64),
		Leak:  make(map[string]map[string]float64),
		Total: make(map[string]map[string]float64),
	}
	for _, c := range g.Configs {
		r.Time[c] = make(map[string]float64)
		r.Dyn[c] = make(map[string]float64)
		r.Leak[c] = make(map[string]float64)
		r.Total[c] = make(map[string]float64)
		for _, b := range g.Benchmarks {
			base := g.Results[baseline][b]
			res := g.Results[c][b]
			r.Time[c][b] = float64(res.Cycles) / float64(base.Cycles)
			bt := base.Energy.Total()
			r.Dyn[c][b] = res.Energy.TotalDynamic() / bt
			r.Leak[c][b] = res.Energy.TotalLeakage() / bt
			r.Total[c][b] = res.Energy.Total() / bt
		}
	}
	return r
}

// GeoTime returns the geometric-mean normalized time of a config over a
// benchmark subset.
func (r Fig4Result) GeoTime(cfg string, benchmarks []string) float64 {
	return geoOver(benchmarks, func(b string) float64 { return r.Time[cfg][b] })
}

// GeoTotalEnergy returns the geometric-mean normalized total energy.
func (r Fig4Result) GeoTotalEnergy(cfg string, benchmarks []string) float64 {
	return geoOver(benchmarks, func(b string) float64 { return r.Total[cfg][b] })
}

// GeoDynamicEnergy returns the geometric-mean normalized dynamic energy.
func (r Fig4Result) GeoDynamicEnergy(cfg string, benchmarks []string) float64 {
	return geoOver(benchmarks, func(b string) float64 { return r.Dyn[cfg][b] })
}

// Result returns the underlying run for (config, benchmark).
func (r Fig4Result) Result(cfg, bench string) cpu.Result { return r.Grid.Results[cfg][bench] }

// TimeTable renders Fig. 4a as markdown (values in % of Base1ldst).
func (r Fig4Result) TimeTable() string {
	return r.metricTable("Fig. 4a — normalized execution time [% of Base1ldst]", r.Time)
}

// EnergyTable renders Fig. 4b as markdown: total energy with the
// dynamic/leakage split, in % of Base1ldst total energy.
func (r Fig4Result) EnergyTable() string {
	var b strings.Builder
	b.WriteString(r.metricTable("Fig. 4b — normalized total energy [% of Base1ldst]", r.Total))
	b.WriteString("\n")
	b.WriteString(r.metricTable("Fig. 4b — dynamic energy component [% of Base1ldst total]", r.Dyn))
	b.WriteString("\n")
	b.WriteString(r.metricTable("Fig. 4b — leakage energy component [% of Base1ldst total]", r.Leak))
	return b.String()
}

// metricTable renders one metric across configs and benchmarks with
// per-suite and overall geometric means.
func (r Fig4Result) metricTable(title string, metric map[string]map[string]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", title)
	header := append([]string{"benchmark"}, r.Grid.Configs...)
	var rows [][]string
	for _, bench := range r.Grid.Benchmarks {
		cells := []string{bench}
		for _, c := range r.Grid.Configs {
			cells = append(cells, pct(metric[c][bench]))
		}
		rows = append(rows, cells)
	}
	suites, groups := bySuite(r.Grid.Benchmarks)
	for _, s := range suites {
		cells := []string{"geo.mean " + s}
		for _, c := range r.Grid.Configs {
			cells = append(cells, pct(geoOver(groups[s], func(x string) float64 { return metric[c][x] })))
		}
		rows = append(rows, cells)
	}
	cells := []string{"geo.mean overall"}
	for _, c := range r.Grid.Configs {
		cells = append(cells, pct(geoOver(r.Grid.Benchmarks, func(x string) float64 { return metric[c][x] })))
	}
	rows = append(rows, cells)
	b.WriteString(markdownTable(header, rows))
	return b.String()
}
