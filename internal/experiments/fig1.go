package experiments

import (
	"fmt"
	"strings"

	"malec/internal/stats"
	"malec/internal/trace"
)

// Fig1Row holds the Fig. 1 histogram for one benchmark: for each tolerated
// gap (0,1,2,3,4,8 intermediate other-page accesses), the fraction of loads
// falling into run-length groups 1, 2, 3-4, 5-8, >8.
type Fig1Row struct {
	Name  string
	Suite string
	// Runs[g][b] = fraction of runs with gap tolerance g in bucket b.
	Runs [len6][5]float64
	// Grouped[g] = load-weighted fraction of loads in runs >= 2 (the
	// fraction amenable to page-based grouping).
	Grouped [len6]float64
	// FollowedSamePage is the Sec. III scalar (70% paper average).
	FollowedSamePage float64
	// FollowedSameLine is the Sec. III scalar (46% paper average).
	FollowedSameLine float64
}

const len6 = 6

// Fig1Result is the complete Fig. 1 dataset.
type Fig1Result struct {
	Gaps    []int
	Rows    []Fig1Row
	Suites  []string
	BySuite map[string]Fig1Row // aggregated per suite
	Overall Fig1Row
}

// Fig1 reproduces the paper's Fig. 1: consecutive read accesses to the same
// page, allowing n intermediate accesses to a different page.
func Fig1(opt Options) Fig1Result {
	opt = opt.normalize()
	res := Fig1Result{Gaps: stats.Fig1Gaps, BySuite: make(map[string]Fig1Row)}
	suites, groups := bySuite(opt.Benchmarks)
	res.Suites = suites

	for _, b := range opt.Benchmarks {
		res.Rows = append(res.Rows, fig1For(b, opt))
	}
	rowByName := make(map[string]Fig1Row, len(res.Rows))
	for _, r := range res.Rows {
		rowByName[r.Name] = r
	}
	agg := func(names []string, label, suite string) Fig1Row {
		out := Fig1Row{Name: label, Suite: suite}
		n := float64(len(names))
		if n == 0 {
			return out
		}
		for _, name := range names {
			r := rowByName[name]
			for g := 0; g < len6; g++ {
				for b := 0; b < 5; b++ {
					out.Runs[g][b] += r.Runs[g][b] / n
				}
				out.Grouped[g] += r.Grouped[g] / n
			}
			out.FollowedSamePage += r.FollowedSamePage / n
			out.FollowedSameLine += r.FollowedSameLine / n
		}
		return out
	}
	for _, s := range suites {
		res.BySuite[s] = agg(groups[s], "mean "+s, s)
	}
	res.Overall = agg(opt.Benchmarks, "overall", "all")
	return res
}

// fig1For analyzes one benchmark's load stream.
func fig1For(bench string, opt Options) Fig1Row {
	prof := trace.Profiles[bench]
	gen := trace.NewGenerator(prof, opt.Seed)
	pl := stats.NewPageLocality(stats.Fig1Gaps)
	for i := 0; i < opt.Instructions; i++ {
		rec := gen.Next()
		if rec.Kind == trace.Load {
			pl.ObserveLoad(rec.Addr)
		}
	}
	pl.Flush()
	row := Fig1Row{Name: bench, Suite: prof.Suite,
		FollowedSamePage: pl.FollowedSamePage(),
		FollowedSameLine: pl.FollowedSameLine()}
	for g := range stats.Fig1Gaps {
		h := pl.Hist(g)
		for b := 0; b < 5; b++ {
			row.Runs[g][b] = h.Fraction(b)
		}
		row.Grouped[g] = pl.GroupedFraction(g)
	}
	return row
}

// Table renders the Fig. 1 dataset as markdown: one row per benchmark,
// grouped-fraction columns per gap tolerance (the paper's headline reading
// of the figure: 70% / 85% / 90% / 92% for 0/1/2/3 gaps).
func (r Fig1Result) Table() string {
	var b strings.Builder
	b.WriteString("### Fig. 1 — consecutive loads to the same page (grouped-load fraction per tolerated gap)\n\n")
	header := []string{"benchmark", "suite"}
	for _, g := range r.Gaps {
		header = append(header, fmt.Sprintf("x<=%d", g))
	}
	header = append(header, "same-page next", "same-line next")
	var rows [][]string
	emit := func(row Fig1Row) {
		cells := []string{row.Name, row.Suite}
		for g := range r.Gaps {
			cells = append(cells, pct(row.Grouped[g]))
		}
		cells = append(cells, pct(row.FollowedSamePage), pct(row.FollowedSameLine))
		rows = append(rows, cells)
	}
	for _, row := range r.Rows {
		emit(row)
	}
	for _, s := range r.Suites {
		emit(r.BySuite[s])
	}
	emit(r.Overall)
	b.WriteString(markdownTable(header, rows))

	b.WriteString("\n### Fig. 1 — run-length distribution (gap 0): 1 / 2 / 3-4 / 5-8 / >8\n\n")
	header2 := []string{"benchmark", "1", "2", "3-4", "5-8", ">8"}
	var rows2 [][]string
	for _, row := range append(r.Rows, r.Overall) {
		cells := []string{row.Name}
		for i := 0; i < 5; i++ {
			cells = append(cells, pct(row.Runs[0][i]))
		}
		rows2 = append(rows2, cells)
	}
	b.WriteString(markdownTable(header2, rows2))
	return b.String()
}
