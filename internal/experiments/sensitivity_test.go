package experiments

import (
	"strings"
	"testing"
)

func sensOpt() Options {
	return Options{
		Instructions: 40000,
		Seed:         1,
		Benchmarks:   []string{"gzip", "gap", "djpeg"},
	}
}

func TestLatencySensitivityShape(t *testing.T) {
	r := LatencySensitivity(sensOpt())
	if len(r.Rows) != 8 {
		t.Fatalf("%d rows, want 8 (2 configs x 4 latencies)", len(r.Rows))
	}
	// Execution time must be non-decreasing in L1 latency per config.
	times := map[string][]float64{}
	for _, row := range r.Rows {
		times[row.Config] = append(times[row.Config], row.Time)
	}
	for cfg, ts := range times {
		for i := 1; i < len(ts); i++ {
			if ts[i]+1e-9 < ts[i-1] {
				t.Fatalf("%s: time decreased with higher latency: %v", cfg, ts)
			}
		}
	}
	if !strings.Contains(r.Table(), "L1 latency") {
		t.Fatal("table incomplete")
	}
}

func TestResultBusSweepShape(t *testing.T) {
	r := ResultBusSweep(sensOpt())
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// Fewer buses must never be faster than more buses.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Time > r.Rows[i-1].Time+1e-9 {
			t.Fatalf("bus sweep not monotone: %+v", r.Rows)
		}
	}
	// One bus must be measurably slower than four.
	if r.Rows[0].Time < 1.01 {
		t.Fatalf("1-bus MALEC only %.3f of 4-bus time; buses should matter", r.Rows[0].Time)
	}
	if !strings.Contains(r.Table(), "result bus") {
		t.Fatal("table incomplete")
	}
}

func TestCompareLimitShape(t *testing.T) {
	r := CompareLimitAblation(sensOpt())
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	limit3 := r.Rows[1]
	if limit3.Limit != 3 {
		t.Fatalf("row order wrong: %+v", r.Rows)
	}
	// Paper: restricting the comparators to 3 costs < 0.5% performance.
	if limit3.Time > 1.01 {
		t.Fatalf("3-comparator limit costs %.2f%%, paper says <0.5%%",
			100*(limit3.Time-1))
	}
	// 1 comparator merges less than 3.
	if r.Rows[0].MergedFrac > limit3.MergedFrac+1e-9 {
		t.Fatalf("merge fraction not monotone in comparators: %+v", r.Rows)
	}
}

func TestMergeWindowShape(t *testing.T) {
	r := MergeWindowAblation(sensOpt())
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// Merged fraction must grow with the window: 16B < 32B <= 64B.
	if !(r.Rows[0].MergedFrac < r.Rows[1].MergedFrac) {
		t.Fatalf("32B window should merge more than 16B: %+v", r.Rows)
	}
	if r.Rows[1].MergedFrac > r.Rows[2].MergedFrac+1e-9 {
		t.Fatalf("64B window should merge at least as much as 32B: %+v", r.Rows)
	}
	// Paper: the two-sub-block read roughly doubles merging vs one
	// sub-block. Accept a broad band around 2x.
	ratio := r.Rows[1].MergedFrac / r.Rows[0].MergedFrac
	if ratio < 1.2 || ratio > 4 {
		t.Fatalf("32B/16B merge ratio %.2f, expected roughly 2x", ratio)
	}
}

func TestBypassShape(t *testing.T) {
	opt := Options{Instructions: 60000, Seed: 1,
		Benchmarks: []string{"mcf", "gzip"}}
	r := Bypass(opt)
	rows := map[string]BypassRow{}
	for _, row := range r.Rows {
		rows[row.Benchmark] = row
	}
	// Streaming mcf must bypass fills; cache-friendly gzip must not.
	if rows["mcf"].BypassedFills == 0 {
		t.Fatal("mcf never bypassed despite streaming behaviour")
	}
	if rows["mcf"].FillsBypass >= rows["mcf"].FillsPlain {
		t.Fatal("bypassing did not reduce mcf fills")
	}
	if rows["gzip"].BypassedFills > rows["gzip"].FillsPlain/10 {
		t.Fatalf("gzip bypassed %d fills; detector not selective",
			rows["gzip"].BypassedFills)
	}
	if !strings.Contains(r.Table(), "bypass") {
		t.Fatal("table incomplete")
	}
}

func TestSegmentedWTShape(t *testing.T) {
	r := SegmentedWT(sensOpt())
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	full := r.Rows[0]
	// Full-capacity chunked table must be close to the full table.
	if r.Rows[1].Coverage < full.Coverage-0.1 {
		t.Fatalf("full-pool segmented coverage %v far below full table %v",
			r.Rows[1].Coverage, full.Coverage)
	}
	// Smaller pools cost coverage but save storage.
	if r.Rows[3].StorageBits >= full.StorageBits {
		t.Fatalf("quarter pool (%d bits) not smaller than full (%d bits)",
			r.Rows[3].StorageBits, full.StorageBits)
	}
	if r.Rows[3].Coverage > r.Rows[1].Coverage+1e-9 {
		t.Fatalf("coverage should shrink with the pool: %+v", r.Rows)
	}
	if !strings.Contains(r.Table(), "segmented") {
		t.Fatal("table incomplete")
	}
}
