package experiments

import (
	"fmt"
	"strings"

	"malec/internal/config"
	"malec/internal/waytable"
)

// SegmentedRow is one segmented-WT configuration data point.
type SegmentedRow struct {
	Name         string
	ChunkLines   int
	PoolFraction float64
	Coverage     float64
	// Time and Energy are normalized to the full-table MALEC config.
	Time   float64
	Energy float64
	// StorageBits is the WT+uWT storage cost (area/leakage proxy).
	StorageBits int
}

// SegmentedResult is the Sec. VI-D segmentation extension dataset.
type SegmentedResult struct {
	Rows []SegmentedRow
}

// SegmentedWT evaluates the paper's proposed way-table segmentation
// ("allocating and replacing WT chunks in a FIFO or LRU manner, their
// number could be smaller than required to represent full pages"): chunked
// storage at 100%, 50% and 25% of the full-table capacity.
func SegmentedWT(opt Options) SegmentedResult {
	opt = opt.normalize()
	full := config.MALEC()
	cfgs := []config.Config{full}
	type variant struct {
		chunk int
		frac  float64
	}
	variants := []variant{{16, 1.0}, {16, 0.5}, {16, 0.25}}
	for _, v := range variants {
		c := config.MALECSegmentedWT(v.chunk, v.frac)
		c.Name = fmt.Sprintf("MALEC_seg%dx%.0f%%", v.chunk, v.frac*100)
		cfgs = append(cfgs, c)
	}
	g := runGrid(cfgs, opt)
	var out SegmentedResult
	for i, c := range g.Configs {
		row := SegmentedRow{Name: c}
		if i > 0 {
			row.ChunkLines = variants[i-1].chunk
			row.PoolFraction = variants[i-1].frac
		}
		var known, total float64
		for _, b := range g.Benchmarks {
			res := g.Results[c][b]
			known += float64(res.CoverageKnown)
			total += float64(res.CoverageTotal)
		}
		if total > 0 {
			row.Coverage = known / total
		}
		row.Time = geoOver(g.Benchmarks, func(b string) float64 {
			return float64(g.Results[c][b].Cycles) / float64(g.Results[full.Name][b].Cycles)
		})
		row.Energy = geoOver(g.Benchmarks, func(b string) float64 {
			return g.Results[c][b].Energy.Total() / g.Results[full.Name][b].Energy.Total()
		})
		row.StorageBits = storageBits(cfgs[i])
		out.Rows = append(out.Rows, row)
	}
	return out
}

// storageBits computes the WT+uWT storage cost of a configuration.
func storageBits(c config.Config) int {
	if c.WTChunkLines <= 0 {
		return (c.TLBEntries + c.UTLBEntries) * waytable.BitsPerEntry
	}
	bits := 0
	for _, slots := range []int{c.TLBEntries, c.UTLBEntries} {
		chunksPerPage := 64 / c.WTChunkLines
		pool := int(float64(slots*chunksPerPage) * c.WTPoolFraction)
		if pool < 1 {
			pool = 1
		}
		t := waytable.NewSegmentedTable("x", slots, c.WTChunkLines, pool)
		bits += t.StorageBits()
	}
	return bits
}

// Table renders the segmentation evaluation.
func (r SegmentedResult) Table() string {
	var b strings.Builder
	b.WriteString("### Sec. VI-D extension — segmented way tables (FIFO chunk pool)\n\n")
	header := []string{"configuration", "storage [bits]", "coverage [%]",
		"time vs full WT [%]", "energy vs full WT [%]"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Name,
			fmt.Sprintf("%d", row.StorageBits),
			pct(row.Coverage), pct(row.Time), pct(row.Energy)})
	}
	b.WriteString(markdownTable(header, rows))
	return b.String()
}
