package experiments

import (
	"strings"

	"malec/internal/config"
	"malec/internal/stats"
)

// BypassRow compares MALEC with and without run-time cache bypassing on
// one benchmark.
type BypassRow struct {
	Benchmark string
	// Time/Energy of the bypassing configuration normalized to plain
	// MALEC.
	Time   float64
	Energy float64
	// BypassedFills is the number of L1 allocations avoided.
	BypassedFills uint64
	// FillsPlain / FillsBypass are the L1 fill counts of each variant.
	FillsPlain  uint64
	FillsBypass uint64
}

// BypassResult is the run-time bypassing dataset.
type BypassResult struct {
	Rows []BypassRow
}

// Bypass evaluates the Sec. VI-D suggestion of run-time cache bypassing
// for streaming workloads: pages with persistently high miss rates skip L1
// allocation and way-table maintenance. The paper expects this to recover
// the "negative energy benefits" way determination shows on mcf-like
// workloads and to reduce uTLB/TLB pressure from uWT/WT updates.
func Bypass(opt Options) BypassResult {
	opt = opt.normalize()
	cfgs := []config.Config{config.MALEC(), config.MALECBypass()}
	g := runGrid(cfgs, opt)
	var out BypassResult
	for _, b := range g.Benchmarks {
		plain := g.Results["MALEC"][b]
		byp := g.Results["MALEC_bypass"][b]
		out.Rows = append(out.Rows, BypassRow{
			Benchmark:     b,
			Time:          float64(byp.Cycles) / float64(plain.Cycles),
			Energy:        byp.Energy.Total() / plain.Energy.Total(),
			BypassedFills: byp.Counters.Get(stats.CtrL1BypassedFills),
			FillsPlain:    plain.L1.Fills,
			FillsBypass:   byp.L1.Fills,
		})
	}
	return out
}

// Table renders the bypass evaluation.
func (r BypassResult) Table() string {
	var b strings.Builder
	b.WriteString("### Sec. VI-D extension — run-time cache bypassing for streaming pages\n\n")
	header := []string{"benchmark", "time vs MALEC [%]", "energy vs MALEC [%]",
		"bypassed fills", "fills plain", "fills bypass"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Benchmark,
			pct(row.Time), pct(row.Energy),
			itoa(row.BypassedFills), itoa(row.FillsPlain), itoa(row.FillsBypass)})
	}
	b.WriteString(markdownTable(header, rows))
	return b.String()
}

// itoa formats a uint64 without strconv noise elsewhere.
func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
