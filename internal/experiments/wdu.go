package experiments

import (
	"fmt"
	"strings"

	"malec/internal/config"
)

// WDURow is one configuration of the Sec. VI-C comparison.
type WDURow struct {
	Name     string
	Coverage float64 // way-determination coverage (paper: WT 94%, WDU-8/16/32 68/76/78%)
	Energy   float64 // total energy normalized to the WT configuration
	Dynamic  float64 // dynamic energy normalized to the WT configuration
}

// WDUResult is the Sec. VI-C dataset.
type WDUResult struct {
	Rows []WDURow
}

// WDUComparison substitutes 8/16/32-entry WDUs for the way tables and
// compares coverage and energy (paper: +4%, +5%, +8% energy; the WDU needs
// four fully-associative lookup ports to sustain MALEC's parallelism, and
// its coverage is well below the WT's).
func WDUComparison(opt Options) WDUResult {
	opt = opt.normalize()
	cfgs := []config.Config{
		config.MALEC(),
		config.MALECWithWDU(8),
		config.MALECWithWDU(16),
		config.MALECWithWDU(32),
	}
	g := runGrid(cfgs, opt)
	ref := cfgs[0].Name
	var out WDUResult
	for _, c := range g.Configs {
		row := WDURow{Name: c}
		var knownSum, totalSum float64
		for _, b := range g.Benchmarks {
			r := g.Results[c][b]
			knownSum += float64(r.CoverageKnown)
			totalSum += float64(r.CoverageTotal)
		}
		if totalSum > 0 {
			row.Coverage = knownSum / totalSum
		}
		row.Energy = geoOver(g.Benchmarks, func(b string) float64 {
			return g.Results[c][b].Energy.Total() / g.Results[ref][b].Energy.Total()
		})
		row.Dynamic = geoOver(g.Benchmarks, func(b string) float64 {
			return g.Results[c][b].Energy.TotalDynamic() / g.Results[ref][b].Energy.TotalDynamic()
		})
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Table renders the comparison as markdown.
func (r WDUResult) Table() string {
	var b strings.Builder
	b.WriteString("### Sec. VI-C — Page-Based Way Determination (WT) vs Way Determination Unit (WDU)\n\n")
	header := []string{"scheme", "coverage [%]", "total energy vs WT [%]", "dynamic energy vs WT [%]"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Name, pct(row.Coverage),
			fmt.Sprintf("%+.1f", 100*(row.Energy-1)),
			fmt.Sprintf("%+.1f", 100*(row.Dynamic-1))})
	}
	b.WriteString(markdownTable(header, rows))
	return b.String()
}

// CoverageRow is one configuration of the Sec. V feedback ablation.
type CoverageRow struct {
	Name     string
	Coverage float64
}

// CoverageResult is the Sec. V feedback-update ablation dataset.
type CoverageResult struct {
	Rows []CoverageRow
}

// CoverageAblation measures way-table coverage with and without the
// last-entry register feedback update (paper: 94% vs 75%).
func CoverageAblation(opt Options) CoverageResult {
	opt = opt.normalize()
	cfgs := []config.Config{config.MALEC(), config.MALECNoFeedback()}
	g := runGrid(cfgs, opt)
	var out CoverageResult
	for _, c := range g.Configs {
		var knownSum, totalSum float64
		for _, b := range g.Benchmarks {
			r := g.Results[c][b]
			knownSum += float64(r.CoverageKnown)
			totalSum += float64(r.CoverageTotal)
		}
		cov := 0.0
		if totalSum > 0 {
			cov = knownSum / totalSum
		}
		out.Rows = append(out.Rows, CoverageRow{Name: c, Coverage: cov})
	}
	return out
}

// Table renders the ablation as markdown.
func (r CoverageResult) Table() string {
	var b strings.Builder
	b.WriteString("### Sec. V — uWT feedback (last-entry register) ablation\n\n")
	header := []string{"configuration", "coverage [%]"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Name, pct(row.Coverage)})
	}
	b.WriteString(markdownTable(header, rows))
	return b.String()
}
