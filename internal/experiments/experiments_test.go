package experiments

import (
	"strings"
	"testing"

	"malec/internal/trace"
)

// smallOpt keeps experiment tests fast while still exercising the full
// pipeline. Shape assertions use a representative benchmark subset.
func smallOpt() Options {
	return Options{
		Instructions: 60000,
		Seed:         1,
		Benchmarks:   []string{"gzip", "mcf", "gap", "swim", "djpeg", "h263enc"},
	}
}

func TestFig1Shape(t *testing.T) {
	r := Fig1(smallOpt())
	if len(r.Rows) != 6 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	ov := r.Overall
	// Grouped fraction must be monotone in the tolerated gap.
	for g := 1; g < len6; g++ {
		if ov.Grouped[g]+1e-9 < ov.Grouped[g-1] {
			t.Fatalf("grouped fraction not monotone: %v", ov.Grouped)
		}
	}
	// Sec. III: the majority of loads are directly followed by a
	// same-page load, and page locality exceeds line locality.
	if ov.FollowedSamePage < 0.5 {
		t.Fatalf("same-page locality %v too low", ov.FollowedSamePage)
	}
	if ov.FollowedSameLine >= ov.FollowedSamePage {
		t.Fatalf("line locality %v >= page locality %v",
			ov.FollowedSameLine, ov.FollowedSamePage)
	}
	// mcf must show far weaker page locality than djpeg.
	var mcf, djpeg Fig1Row
	for _, row := range r.Rows {
		switch row.Name {
		case "mcf":
			mcf = row
		case "djpeg":
			djpeg = row
		}
	}
	if mcf.FollowedSamePage >= djpeg.FollowedSamePage {
		t.Fatalf("mcf page locality %v >= djpeg %v",
			mcf.FollowedSamePage, djpeg.FollowedSamePage)
	}
	if !strings.Contains(r.Table(), "gzip") {
		t.Fatal("table missing benchmark rows")
	}
}

func TestMotivationScalars(t *testing.T) {
	opt := smallOpt()
	opt.Benchmarks = nil // all 38, smaller trace
	opt.Instructions = 20000
	r := Motivation(opt)
	if r.MemRatio < 0.35 || r.MemRatio > 0.46 {
		t.Fatalf("mem ratio %v outside the paper's 0.40 neighbourhood", r.MemRatio)
	}
	if r.LoadStoreRatio < 1.6 || r.LoadStoreRatio > 2.5 {
		t.Fatalf("ld/st ratio %v outside the paper's 2.0 neighbourhood", r.LoadStoreRatio)
	}
	if !strings.Contains(r.Table(), "load/store ratio") {
		t.Fatal("table incomplete")
	}
}

func TestFig4Shape(t *testing.T) {
	r := Fig4(smallOpt())
	bs := r.Grid.Benchmarks
	// Paper shape: both Base2ld1st and MALEC are faster than Base1ldst;
	// Base2 burns more energy, MALEC saves energy.
	base2Time := r.GeoTime("Base2ld1st", bs)
	malecTime := r.GeoTime("MALEC", bs)
	if base2Time >= 1 || malecTime >= 1 {
		t.Fatalf("speedups missing: base2=%v malec=%v", base2Time, malecTime)
	}
	if e := r.GeoTotalEnergy("Base2ld1st", bs); e <= 1 {
		t.Fatalf("Base2ld1st energy %v, must exceed Base1ldst", e)
	}
	if e := r.GeoTotalEnergy("MALEC", bs); e >= 1 {
		t.Fatalf("MALEC energy %v, must undercut Base1ldst", e)
	}
	// Latency ordering: 1-cycle Base2 faster than 2-cycle; 3-cycle MALEC
	// slower than 2-cycle.
	if r.GeoTime("Base2ld1st_1cycleL1", bs) >= base2Time {
		t.Fatal("1-cycle variant not faster")
	}
	if r.GeoTime("MALEC_3cycleL1", bs) <= malecTime {
		t.Fatal("3-cycle variant not slower")
	}
	// mcf: exceptionally low improvement (high miss rate).
	if tm := r.Time["MALEC"]["mcf"]; tm < 0.9 {
		t.Fatalf("mcf MALEC time %v, should show little improvement", tm)
	}
	// Dynamic energy savings of MALEC (paper: -33%).
	if d := r.GeoDynamicEnergy("MALEC", bs); d >= 0.9 {
		t.Fatalf("MALEC dynamic energy %v, expected substantial savings", d)
	}
	if !strings.Contains(r.TimeTable(), "geo.mean") ||
		!strings.Contains(r.EnergyTable(), "leakage") {
		t.Fatal("tables incomplete")
	}
}

func TestWDUShape(t *testing.T) {
	opt := smallOpt()
	opt.Benchmarks = []string{"gzip", "gap", "djpeg"}
	r := WDUComparison(opt)
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	wt := r.Rows[0]
	// The WT must out-cover every WDU size (paper: 94% vs 68-78%).
	for _, row := range r.Rows[1:] {
		if row.Coverage >= wt.Coverage {
			t.Fatalf("%s coverage %v >= WT %v", row.Name, row.Coverage, wt.Coverage)
		}
	}
	// WDU coverage grows with size.
	if r.Rows[1].Coverage > r.Rows[3].Coverage {
		t.Fatalf("WDU coverage not monotone: %v vs %v",
			r.Rows[1].Coverage, r.Rows[3].Coverage)
	}
	if !strings.Contains(r.Table(), "WDU") {
		t.Fatal("table incomplete")
	}
}

func TestCoverageAblationShape(t *testing.T) {
	opt := smallOpt()
	opt.Benchmarks = []string{"gzip", "gap", "djpeg"}
	r := CoverageAblation(opt)
	if len(r.Rows) != 2 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	with, without := r.Rows[0].Coverage, r.Rows[1].Coverage
	// Paper: the last-entry feedback lifts coverage from 75% to 94%.
	if with <= without {
		t.Fatalf("feedback did not raise coverage: %v vs %v", with, without)
	}
	if with < 0.85 {
		t.Fatalf("feedback coverage %v, expected >0.85 on low-miss benchmarks", with)
	}
}

func TestMergeContributionShape(t *testing.T) {
	opt := smallOpt()
	opt.Benchmarks = []string{"gap", "equake", "mgrid"}
	r := MergeContribution(opt)
	rows := map[string]MergeRow{}
	for _, row := range r.Rows {
		rows[row.Benchmark] = row
	}
	// Paper: gap and equake are merge-heavy, mgrid merges almost nothing.
	if rows["mgrid"].MergedLoadFrac >= rows["gap"].MergedLoadFrac {
		t.Fatalf("mgrid merges (%v) >= gap (%v)",
			rows["mgrid"].MergedLoadFrac, rows["gap"].MergedLoadFrac)
	}
	if rows["gap"].MergedLoadFrac < 0.1 {
		t.Fatalf("gap merged-load fraction %v too low", rows["gap"].MergedLoadFrac)
	}
	if !strings.Contains(r.Table(), "average") {
		t.Fatal("table incomplete")
	}
}

func TestWayConstraintShape(t *testing.T) {
	opt := smallOpt()
	opt.Benchmarks = []string{"gzip", "djpeg"}
	r := WayConstraint(opt)
	// The paper reports no measurable miss-rate increase. Our synthetic
	// workloads saturate sets uniformly (the constraint's worst case), so
	// a small absolute increase is expected and documented in
	// EXPERIMENTS.md; it must stay below ~1.5 percentage points.
	for _, row := range r.Rows {
		delta := row.MissConstrained - row.MissUnconstrained
		if delta > 0.015 {
			t.Fatalf("%s: way constraint costs %.2f pp of miss rate",
				row.Benchmark, 100*delta)
		}
	}
}

func TestTables(t *testing.T) {
	if !strings.Contains(Table1(), "Base2ld1st") {
		t.Fatal("Tab. I incomplete")
	}
	if !strings.Contains(Table2(), "168 ROB entries") {
		t.Fatal("Tab. II incomplete")
	}
}

func TestGridDeterminism(t *testing.T) {
	opt := Options{Instructions: 20000, Seed: 3, Benchmarks: []string{"gzip"}}
	a := Fig4(opt)
	b := Fig4(opt)
	for _, c := range a.Grid.Configs {
		if a.Time[c]["gzip"] != b.Time[c]["gzip"] {
			t.Fatalf("grid not deterministic for %s", c)
		}
	}
}

func TestSuiteHelpers(t *testing.T) {
	suites, groups := bySuite([]string{"gzip", "swim", "djpeg", "mcf"})
	if len(suites) != 3 {
		t.Fatalf("suites %v", suites)
	}
	if suites[0] != trace.SuiteSpecInt {
		t.Fatalf("suite order %v", suites)
	}
	if len(groups[trace.SuiteSpecInt]) != 2 {
		t.Fatalf("groups %v", groups)
	}
}
