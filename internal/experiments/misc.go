package experiments

import (
	"fmt"
	"strings"

	"malec/internal/config"
	"malec/internal/stats"
	"malec/internal/trace"
)

// MotivationResult holds the Sec. III scalars.
type MotivationResult struct {
	MemRatio       float64 // paper: 0.40 overall
	LoadStoreRatio float64 // paper: 2.0
	BySuiteMem     map[string]float64
	Fig1           Fig1Result
}

// Motivation reproduces the Sec. III trace statistics.
func Motivation(opt Options) MotivationResult {
	opt = opt.normalize()
	out := MotivationResult{BySuiteMem: make(map[string]float64)}
	suites, groups := bySuite(opt.Benchmarks)
	var totalMem, totalLS float64
	for _, s := range suites {
		var mr float64
		for _, bench := range groups[s] {
			gen := trace.NewGenerator(trace.Profiles[bench], opt.Seed)
			var st trace.Stats
			for i := 0; i < opt.Instructions; i++ {
				st.Observe(gen.Next())
			}
			mr += st.MemRatio() / float64(len(groups[s]))
			totalMem += st.MemRatio() / float64(len(opt.Benchmarks))
			totalLS += st.LoadStoreRatio() / float64(len(opt.Benchmarks))
		}
		out.BySuiteMem[s] = mr
	}
	out.MemRatio = totalMem
	out.LoadStoreRatio = totalLS
	out.Fig1 = Fig1(opt)
	return out
}

// Table renders the motivation scalars.
func (r MotivationResult) Table() string {
	var b strings.Builder
	b.WriteString("### Sec. III — motivation statistics (paper targets in parentheses)\n\n")
	header := []string{"metric", "measured", "paper"}
	rows := [][]string{
		{"memory refs / instructions [%]", pct(r.MemRatio), "40"},
		{"load/store ratio", fmt.Sprintf("%.2f", r.LoadStoreRatio), "2.0"},
		{"loads followed by same-page load [%]", pct(r.Fig1.Overall.FollowedSamePage), "70"},
		{"grouped loads, 1 gap tolerated [%]", pct(r.Fig1.Overall.Grouped[1]), "85"},
		{"grouped loads, 2 gaps tolerated [%]", pct(r.Fig1.Overall.Grouped[2]), "90"},
		{"grouped loads, 3 gaps tolerated [%]", pct(r.Fig1.Overall.Grouped[3]), "92"},
		{"loads followed by same-line load [%]", pct(r.Fig1.Overall.FollowedSameLine), "46"},
	}
	for _, s := range r.Fig1.Suites {
		rows = append(rows, []string{"mem ratio " + s, pct(r.BySuiteMem[s]), suiteTarget(s)})
	}
	b.WriteString(markdownTable(header, rows))
	return b.String()
}

// suiteTarget returns the paper's per-suite memory-ratio figure.
func suiteTarget(s string) string {
	switch s {
	case trace.SuiteSpecInt:
		return "45"
	case trace.SuiteSpecFP:
		return "40"
	case trace.SuiteMB2:
		return "37"
	default:
		return "-"
	}
}

// MergeRow is one benchmark of the Sec. VI-B merge-contribution analysis.
type MergeRow struct {
	Benchmark string
	// Contribution is the fraction of MALEC's speedup over Base1ldst
	// attributable to load merging: (T_noMerge - T_MALEC) / (T_Base1 -
	// T_MALEC). Paper: ~21% average, gap 56%, equake 66%, mgrid <2%.
	Contribution float64
	// MergedLoadFrac is the fraction of loads serviced by merging.
	MergedLoadFrac float64
	// EnergyDeltaNoMerge is the dynamic-energy change of disabling
	// merging, relative to Base1ldst (paper: mcf +5% without vs -51%
	// with merging).
	DynNoMergeVsBase float64
	DynMalecVsBase   float64
}

// MergeResult is the Sec. VI-B dataset.
type MergeResult struct {
	Rows    []MergeRow
	Average float64
}

// MergeContribution quantifies the share of MALEC's speedup provided by
// load merging by re-running MALEC with merging disabled.
func MergeContribution(opt Options) MergeResult {
	opt = opt.normalize()
	cfgs := []config.Config{config.Base1ldst(), config.MALEC(), config.MALECNoMerge()}
	g := runGrid(cfgs, opt)
	var out MergeResult
	var sum float64
	n := 0
	for _, b := range g.Benchmarks {
		base := g.Results["Base1ldst"][b]
		mal := g.Results["MALEC"][b]
		nom := g.Results["MALEC_noMerge"][b]
		row := MergeRow{Benchmark: b}
		gain := float64(base.Cycles) - float64(mal.Cycles)
		if gain > 0 {
			row.Contribution = (float64(nom.Cycles) - float64(mal.Cycles)) / gain
		}
		if mal.Loads > 0 {
			row.MergedLoadFrac = float64(mal.Counters.Get(stats.CtrMalecMergedLoads)) /
				float64(mal.Loads)
		}
		bd := base.Energy.TotalDynamic()
		row.DynMalecVsBase = mal.Energy.TotalDynamic()/bd - 1
		row.DynNoMergeVsBase = nom.Energy.TotalDynamic()/bd - 1
		out.Rows = append(out.Rows, row)
		sum += row.Contribution
		n++
	}
	if n > 0 {
		out.Average = sum / float64(n)
	}
	return out
}

// Table renders the merge analysis.
func (r MergeResult) Table() string {
	var b strings.Builder
	b.WriteString("### Sec. VI-B — contribution of load merging to MALEC's speedup\n\n")
	header := []string{"benchmark", "merge contribution [%]", "merged loads [%]",
		"dyn energy vs Base1, MALEC [%]", "dyn energy vs Base1, no merging [%]"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Benchmark, pct(row.Contribution),
			pct(row.MergedLoadFrac),
			fmt.Sprintf("%+.1f", 100*row.DynMalecVsBase),
			fmt.Sprintf("%+.1f", 100*row.DynNoMergeVsBase)})
	}
	rows = append(rows, []string{"average", pct(r.Average), "", "", ""})
	b.WriteString(markdownTable(header, rows))
	return b.String()
}

// WayConstraintRow compares L1 miss rates with and without the 3-of-4 way
// allocation constraint.
type WayConstraintRow struct {
	Benchmark          string
	MissConstrained    float64
	MissUnconstrained  float64
	RelativeMissChange float64
}

// WayConstraintResult is the Sec. V allocation-constraint dataset.
type WayConstraintResult struct {
	Rows    []WayConstraintRow
	Average float64
}

// WayConstraint verifies the paper's claim that limiting each line to 3 of
// 4 ways (for the 2-bit WT encoding) causes no measurable L1 miss-rate
// increase.
func WayConstraint(opt Options) WayConstraintResult {
	opt = opt.normalize()
	unconstrained := config.MALEC()
	unconstrained.Name = "MALEC_allWays"
	unconstrained.ConstrainWays = false
	cfgs := []config.Config{config.MALEC(), unconstrained}
	g := runGrid(cfgs, opt)
	var out WayConstraintResult
	var sum float64
	for _, b := range g.Benchmarks {
		con := g.Results["MALEC"][b].L1
		unc := g.Results["MALEC_allWays"][b].L1
		row := WayConstraintRow{
			Benchmark:         b,
			MissConstrained:   con.MissRate(),
			MissUnconstrained: unc.MissRate(),
		}
		if unc.Misses > 0 {
			row.RelativeMissChange = float64(con.Misses)/float64(unc.Misses) - 1
		}
		out.Rows = append(out.Rows, row)
		sum += row.RelativeMissChange
	}
	if len(out.Rows) > 0 {
		out.Average = sum / float64(len(out.Rows))
	}
	return out
}

// Table renders the way-constraint check.
func (r WayConstraintResult) Table() string {
	var b strings.Builder
	b.WriteString("### Sec. V — 3-of-4 way allocation constraint: L1 miss impact\n\n")
	header := []string{"benchmark", "miss rate constrained [%]",
		"miss rate unconstrained [%]", "miss count change [%]"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Benchmark, pct(row.MissConstrained),
			pct(row.MissUnconstrained),
			fmt.Sprintf("%+.2f", 100*row.RelativeMissChange)})
	}
	rows = append(rows, []string{"average", "", "",
		fmt.Sprintf("%+.2f", 100*r.Average)})
	b.WriteString(markdownTable(header, rows))
	return b.String()
}

// Table1 renders the paper's Tab. I (configuration inventory).
func Table1() string {
	var b strings.Builder
	b.WriteString("### Tab. I — basic configurations\n\n")
	header := []string{"configuration", "addr. comp. per cycle", "uTLB/TLB ports", "cache ports"}
	rows := [][]string{
		{"Base1ldst", "1 ld/st", "1 rd/wt", "1 rd/wt"},
		{"Base2ld1st", "2 ld + 1 st", "1 rd/wt + 2 rd", "1 rd/wt + 1 rd"},
		{"MALEC", "1 ld + 2 ld/st", "1 rd/wt", "1 rd/wt"},
	}
	b.WriteString(markdownTable(header, rows))
	return b.String()
}

// Table2 renders the paper's Tab. II (simulation parameters), as realized
// by config.MALEC / the shared tabII defaults.
func Table2() string {
	c := config.MALEC()
	var b strings.Builder
	b.WriteString("### Tab. II — relevant simulation parameters\n\n")
	header := []string{"component", "parameter"}
	rows := [][]string{
		{"Processor", fmt.Sprintf("single-core out-of-order, 1 GHz, %d ROB entries, %d-wide fetch/dispatch, %d-wide issue", c.ROB, c.FetchWidth, c.IssueWidth)},
		{"L1 interface", fmt.Sprintf("%d TLB entries, %d uTLB entries, %d LQ entries, %d SB entries, %d MB entries, 32 bit addr space, 4 KByte pages", c.TLBEntries, c.UTLBEntries, c.LQ, c.SB, c.MB)},
		{"L1 D-cache", fmt.Sprintf("32 KByte, %d cycle latency, 64 byte lines, 4-way set-assoc., 4 banks, PIPT, 128 bit sub-blocks", c.L1Latency)},
		{"L2 cache", "1 MByte, 12 cycle latency, 16-way set-assoc."},
		{"DRAM", "54 cycle latency (plus L2)"},
		{"Energy model", "analytical CACTI substitute, 32nm-like constants (internal/energy)"},
	}
	b.WriteString(markdownTable(header, rows))
	return b.String()
}
