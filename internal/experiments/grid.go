// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. III and VI): Fig. 1 (page locality), the Sec. III
// motivation scalars, Fig. 4a/4b (normalized execution time and energy for
// the five configurations), the Sec. VI-C WT-vs-WDU comparison, the Sec. V
// coverage ablation, the Sec. VI-B merge-contribution analysis, and the
// 3-of-4 way-allocation constraint check.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"malec/internal/config"
	"malec/internal/cpu"
	"malec/internal/engine"
	"malec/internal/stats"
	"malec/internal/trace"
)

// Options controls experiment scale. The zero value is usable: defaults are
// applied by normalize.
type Options struct {
	// Instructions per benchmark (default 300000; the paper simulates
	// 1B-instruction SimPoint phases, far beyond a test budget).
	Instructions int
	// Seed selects the workload instance (default 1).
	Seed uint64
	// Benchmarks restricts the run (default: all 38).
	Benchmarks []string
	// Workers bounds parallel simulations (default: GOMAXPROCS). When
	// Engine is set, the engine's own worker bound applies on top.
	Workers int
	// Engine, if set, runs the experiment's simulations through the
	// given campaign engine instead of the process-wide shared one.
	// Drivers sharing an engine share its result cache: configurations
	// and benchmarks common to several figures simulate once, and
	// re-running a driver costs only cache lookups.
	Engine *engine.Engine
}

// sharedEngine is the process-wide default engine backing all experiment
// drivers that don't bring their own.
var (
	sharedEngine     *engine.Engine
	sharedEngineOnce sync.Once
)

// defaultEngine returns the lazily created process-wide engine. Its own
// worker bound is set effectively unlimited so that Options.Workers alone
// governs parallelism, exactly as runGrid's private pool did before the
// engine existed (a zero-size-element channel costs no buffer memory).
// The cache is bounded so a long-lived process sweeping many distinct
// points doesn't grow without limit; 1<<14 entries covers ~30 full-suite
// figure drivers before anything is evicted.
func defaultEngine() *engine.Engine {
	sharedEngineOnce.Do(func() {
		sharedEngine = engine.New(engine.Options{Workers: 1 << 20, MaxCacheEntries: 1 << 14})
	})
	return sharedEngine
}

// normalize applies defaults.
func (o Options) normalize() Options {
	if o.Instructions <= 0 {
		o.Instructions = engine.DefaultInstructions
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = trace.AllBenchmarks()
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Grid holds simulation results for a set of configurations crossed with a
// set of benchmarks.
type Grid struct {
	Configs    []string
	Benchmarks []string
	// Results[config][benchmark]
	Results map[string]map[string]cpu.Result
}

// runGrid simulates every (config, benchmark) pair through the campaign
// engine: jobs run in parallel under the engine's scheduler, identical
// points across drivers are simulated once, and result collection is
// lock-free (each campaign job writes its own slot).
func runGrid(cfgs []config.Config, opt Options) *Grid {
	opt = opt.normalize()
	eng := opt.Engine
	if eng == nil {
		eng = defaultEngine()
	}
	camp, err := eng.RunCampaign(engine.CampaignSpec{
		Configs:      cfgs,
		Benchmarks:   opt.Benchmarks,
		Instructions: opt.Instructions,
		Seeds:        []uint64{opt.Seed},
		Workers:      opt.Workers,
	})
	if err != nil {
		// Experiment drivers, like cpu.RunBenchmark, treat invalid
		// inputs as programmer error.
		panic("experiments: " + err.Error())
	}

	g := &Grid{Results: make(map[string]map[string]cpu.Result)}
	for _, c := range cfgs {
		g.Configs = append(g.Configs, c.Name)
		g.Results[c.Name] = make(map[string]cpu.Result)
	}
	g.Benchmarks = append(g.Benchmarks, opt.Benchmarks...)
	for i := range camp.Results {
		r := &camp.Results[i]
		g.Results[r.ConfigName][r.Benchmark] = r.Result
	}
	return g
}

// suiteOf returns the suite of a benchmark.
func suiteOf(bench string) string {
	if p, ok := trace.Profiles[bench]; ok {
		return p.Suite
	}
	return "unknown"
}

// bySuite groups benchmark names by suite, preserving order, returning only
// suites that are present.
func bySuite(benchmarks []string) (suites []string, groups map[string][]string) {
	groups = make(map[string][]string)
	for _, b := range benchmarks {
		s := suiteOf(b)
		if _, ok := groups[s]; !ok {
			suites = append(suites, s)
		}
		groups[s] = append(groups[s], b)
	}
	// Keep the paper's suite order where possible.
	order := map[string]int{trace.SuiteSpecInt: 0, trace.SuiteSpecFP: 1, trace.SuiteMB2: 2}
	sort.SliceStable(suites, func(i, j int) bool { return order[suites[i]] < order[suites[j]] })
	return suites, groups
}

// geoOver computes the geometric mean of f over the given benchmarks.
func geoOver(benchmarks []string, f func(bench string) float64) float64 {
	xs := make([]float64, 0, len(benchmarks))
	for _, b := range benchmarks {
		xs = append(xs, f(b))
	}
	return stats.GeoMean(xs)
}

// markdownTable renders a simple markdown table.
func markdownTable(header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(header, " | ") + " |\n")
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, r := range rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return b.String()
}

// pct formats a ratio as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f", 100*x) }
