// Package core implements the L1 data memory interfaces the paper compares
// (Tab. I): the energy-oriented Base1ldst (one load or store per cycle, all
// structures single-ported), the performance-oriented Base2ld1st (two loads
// plus one store per cycle via physical multi-porting on top of banking),
// and MALEC itself (page-based memory access grouping through an input
// buffer and arbitration unit, single-ported everything, load merging and
// page-based way determination).
package core

import (
	"os"

	"malec/internal/buffers"
	"malec/internal/cache"
	"malec/internal/config"
	"malec/internal/energy"
	"malec/internal/mem"
	"malec/internal/rng"
	"malec/internal/stats"
	"malec/internal/tlb"
	"malec/internal/waytable"
)

// Request is a memory operation whose address computation just finished.
type Request struct {
	Seq  uint64
	Kind mem.AccessKind
	VA   mem.Addr
	Size uint8
}

// Completion reports a finished load.
type Completion struct {
	Seq uint64
}

// Interface is the contract between the out-of-order core model and an L1
// data memory interface.
type Interface interface {
	// Name returns the configuration name.
	Name() string
	// TryIssue offers a memory operation this cycle. A false return is a
	// structural stall: the core must retry in a later cycle.
	TryIssue(r Request) bool
	// CommitStore notifies that the store with the given sequence number
	// retired (store buffer -> merge buffer path).
	CommitStore(seq uint64)
	// Tick advances one cycle and returns the loads completing now.
	Tick() []Completion
	// Pending returns the number of loads in flight.
	Pending() int
	// Flush asks the interface to drain write-back state (merge buffer)
	// at the end of simulation.
	Flush()
	// Idle reports whether all internal buffers and queues are empty.
	Idle() bool
	// NextWork reports the earliest cycle strictly after now at which the
	// interface has work to do or state that changes with time: a
	// scheduled load completion, a buffered load awaiting service, a
	// committed store waiting to drain, or an evicted merge-buffer entry
	// awaiting its L1 write. It returns now+1 when work is immediately
	// pending and NoWork when the interface is fully drained. The
	// cycle-skipping core loop fast-forwards stalled stretches to the
	// reported cycle; Ticks over the skipped range are guaranteed no-ops.
	NextWork(now int64) int64

	// Meter exposes the energy meter for final accounting.
	Meter() *energy.Meter
	// Counters exposes event counters.
	Counters() *stats.Counters
	// System exposes the shared memory structures for statistics.
	System() *System
}

// System bundles the structures every interface variant shares.
type System struct {
	Cfg   config.Config
	Hier  *tlb.Hierarchy
	L1    *cache.L1
	Back  *cache.Backside
	SB    *buffers.StoreBuffer
	MB    *buffers.MergeBuffer
	Det   waytable.Determiner
	PageD *waytable.PageSystem // non-nil when Det is the WT scheme
	WDUD  *waytable.WDU        // non-nil when Det is a WDU

	MeterV *energy.Meter
	Ctr    *stats.Counters

	cycle   int64
	cal     *calendar
	pending int

	// mshr holds the retirement cycles of outstanding misses; when full,
	// a new miss waits for the earliest to retire.
	mshr []int64
	// detector classifies streaming pages for run-time bypassing
	// (nil when disabled).
	detector *cache.StreamDetector

	// warming gates the energy charges inside the L1 fill/evict hooks:
	// the functional-warming fast-forward drives fills and evictions
	// through the same hooks (way-table state must stay coherent) but
	// meters nothing — sampled energy comes from the detailed windows
	// only. Never set on the exact path.
	warming bool
}

// NewSystem builds the shared structures for a configuration.
func NewSystem(cfg config.Config) *System {
	src := rng.New(cfg.Seed ^ 0x51a1ec)
	ut := tlb.New("uTLB", cfg.UTLBEntries, tlb.NewPolicy("second-chance", cfg.UTLBEntries, src))
	mt := tlb.New("TLB", cfg.TLBEntries, tlb.NewPolicy("random", cfg.TLBEntries, src.Split()))
	hier := &tlb.Hierarchy{
		U: ut, Main: mt, PT: tlb.NewPageTable(),
		TLBRefillLatency: cfg.TLBRefillLatency,
		WalkLatency:      cfg.WalkLatency,
	}
	s := &System{
		Cfg:  cfg,
		Hier: hier,
		L1:   cache.NewL1(),
		Back: cache.NewBackside(),
		SB:   buffers.NewStoreBuffer(cfg.SB),
		MB:   buffers.NewMergeBuffer(cfg.MB),
		MeterV: energy.NewMeter(energy.DefaultParams(), energy.Ports{
			L1ExtraPorts:  cfg.L1ExtraPorts,
			TLBExtraPorts: cfg.TLBExtraPorts,
			HasWayTables:  cfg.WayDet == config.WayDetPageWT,
			WDUEntries:    cfg.WDUEntries,
			WDUPorts:      cfg.WDUPorts,
		}),
		Ctr: stats.NewCounters(),
		// The completion horizon is bounded by the TLB walk, the L1
		// latency and the worst MSHR-induced chain of backside misses;
		// the calendar grows on its own in the rare case a completion
		// lands beyond this estimate.
		cal: newCalendar(cfg.L1Latency + cfg.TLBRefillLatency +
			cfg.WalkLatency + (cfg.MSHRs+2)*64 + 64),
		mshr: make([]int64, 0, cfg.MSHRs+1),
	}
	// Escape hatches, both host-simulator-only (never simulated results):
	// scan-based memory-side lookups as the differential reference for the
	// TLB/way-table hash indexes, and eager per-event float accumulation as
	// the reference for the meter's deferred event-count pricing.
	indexed := !cfg.DisableMemIndex && os.Getenv("MALEC_NO_MEM_INDEX") == ""
	if !indexed {
		ut.SetIndexed(false)
		mt.SetIndexed(false)
		s.Back.L2.SetIndexed(false)
	}
	if os.Getenv("MALEC_EAGER_ENERGY") != "" {
		s.MeterV.SetEager(true)
	}
	if cfg.Bypass {
		s.detector = cache.NewStreamDetector(256)
	}
	switch cfg.WayDet {
	case config.WayDetPageWT:
		var ps *waytable.PageSystem
		if cfg.WTChunkLines > 0 {
			ps = waytable.NewPageSystemWith(hier,
				segTable("uWT", cfg.UTLBEntries, cfg),
				segTable("WT", cfg.TLBEntries, cfg))
		} else {
			ps = waytable.NewPageSystem(hier)
		}
		ps.FeedbackUpdate = cfg.FeedbackUpdate
		if !indexed {
			ps.SetIndexed(false)
		}
		s.PageD = ps
		s.Det = ps
		s.L1.ConstrainWays = cfg.ConstrainWays
		s.L1.OnFill = s.onFill
		s.L1.OnEvict = s.onEvict
	case config.WayDetWDU:
		w := waytable.NewWDU(cfg.WDUEntries, cfg.WDUPorts)
		s.WDUD = w
		s.Det = w
		s.L1.OnFill = s.onFillWDU
		s.L1.OnEvict = s.onEvictWDU
	default:
		s.Det = waytable.None{}
	}
	return s
}

// segTable builds a Sec. VI-D segmented way table for a configuration.
func segTable(name string, slots int, cfg config.Config) waytable.Store {
	chunksPerPage := 64 / cfg.WTChunkLines
	pool := int(float64(slots*chunksPerPage) * cfg.WTPoolFraction)
	if pool < 1 {
		pool = 1
	}
	return waytable.NewSegmentedTable(name, slots, cfg.WTChunkLines, pool)
}

// onFill charges and forwards an L1 fill to the page-based way tables.
// Way-table maintenance performs reverse lookups on the physical tag arrays
// of uTLB and TLB and a single-line code update.
func (s *System) onFill(pline mem.Addr, set, way int) {
	if !s.warming {
		s.MeterV.ReverseLookups(true, true)
		s.MeterV.UWTLineUpdate()
	}
	s.PageD.OnFill(pline, set, way)
}

// onEvict charges and forwards an L1 eviction to the way tables.
func (s *System) onEvict(pline mem.Addr, set, way int) {
	if !s.warming {
		s.MeterV.ReverseLookups(true, true)
		s.MeterV.UWTLineUpdate()
	}
	s.PageD.OnEvict(pline, set, way)
}

// onFillWDU forwards fills to the WDU.
func (s *System) onFillWDU(pline mem.Addr, set, way int) {
	if !s.warming {
		s.MeterV.WDUUpdate()
	}
	s.WDUD.OnFill(pline, set, way)
}

// onEvictWDU forwards evictions to the WDU.
func (s *System) onEvictWDU(pline mem.Addr, set, way int) {
	s.WDUD.OnEvict(pline, set, way)
}

// Cycle returns the current cycle number.
func (s *System) Cycle() int64 { return s.cycle }

// advance moves to the next cycle and returns completions due.
func (s *System) advance() []Completion {
	s.cycle++
	due := s.cal.take(s.cycle)
	s.pending -= len(due)
	return due
}

// schedule registers a load completion at the given future cycle.
func (s *System) schedule(seq uint64, at int64) {
	if at <= s.cycle {
		at = s.cycle + 1
	}
	s.cal.schedule(s.cycle, at, Completion{Seq: seq})
	s.pending++
}

// Pending returns in-flight load count.
func (s *System) Pending() int { return s.pending }

// nextWork folds the shared structures' deferred-work state into one
// next-event bound: committed stores awaiting their drain into the merge
// buffer (DrainCommitted acts — or counts a commit stall — every cycle
// while one is at the head), evicted MBEs awaiting an L1 write (serviced
// once per cycle), deferred backside work, and otherwise the calendar's
// next scheduled completion. Interface variants fold their own buffered
// requests on top.
func (s *System) nextWork(now int64) int64 {
	if s.SB.HasCommittedHead() || s.MB.HasDeferredWork() || s.Back.HasDeferredWork() {
		return now + 1
	}
	return s.cal.next(now)
}

// SkipTo advances the current cycle directly to cycle without ticking
// through the range in between. Callers (the cycle-skipping core loop)
// guarantee via NextWork that the skipped cycles hold no scheduled
// completions and no deferred buffer work, so the jump is invisible to the
// simulated machine; because jumps never pass the next scheduled
// completion, the calendar's lap invariant (every slot is drained before
// its cycle comes around again) is preserved.
func (s *System) SkipTo(cycle int64) {
	if cycle > s.cycle {
		s.cycle = cycle
	}
}

// translate resolves one virtual page through the TLB hierarchy, charging
// the appropriate lookup energies, and returns the physical page plus extra
// latency.
func (s *System) translate(vpage mem.PageID) (res tlb.Result) {
	res = s.Hier.Translate(vpage)
	s.MeterV.UTLBLookup()
	s.Ctr.Inc(stats.CtrUTLBLookups)
	switch res.Level {
	case tlb.LevelTLB:
		s.MeterV.TLBLookup()
		s.Ctr.Inc(stats.CtrTLBLookups)
	case tlb.LevelWalk:
		s.MeterV.TLBLookup()
		s.Ctr.Inc(stats.CtrTLBLookups)
		s.Ctr.Inc(stats.CtrTLBWalks)
	}
	return res
}

// loadAccess performs the L1 side of a load whose translation produced pa,
// charging energy and returning the total extra latency beyond the base L1
// latency (0 for a hit). wayKnown/way come from way determination.
func (s *System) loadAccess(pa mem.Addr, way int, wayKnown bool, uIdx int) (extraLat int) {
	if wayKnown {
		s.L1.ReadReduced(pa, way)
		s.MeterV.L1ReducedRead()
		s.Ctr.Inc(stats.CtrL1ReducedReads)
		if s.detector != nil {
			s.detector.Observe(pa.Page(), false)
		}
		return 0
	}
	hitWay, hit := s.L1.ReadConventional(pa)
	bypassed := false
	if s.detector != nil && !hit {
		bypassed = s.detector.ShouldBypass(pa.Page())
	}
	if s.detector != nil && !bypassed {
		s.detector.Observe(pa.Page(), !hit)
	}
	s.MeterV.L1ConventionalRead(s.L1.Ways())
	s.Ctr.Inc(stats.CtrL1ConventionalReads)
	if hit {
		// Last-entry feedback: learn the observed way.
		s.Det.Feedback(pa, uIdx, hitWay)
		if s.PageD != nil && s.Cfg.FeedbackUpdate {
			s.MeterV.UWTLineUpdate()
		} else if s.WDUD != nil {
			s.MeterV.WDUUpdate()
		}
		return 0
	}
	// Miss: fetch from the backside and fill (unless the page's region is
	// classified as streaming and bypassing is enabled).
	s.Ctr.Inc(stats.CtrL1LoadMisses)
	if bypassed {
		s.Ctr.Inc(stats.CtrL1BypassedFills)
		return s.missLatency(pa)
	}
	lat := s.missLatency(pa)
	s.fill(pa)
	return lat
}

// missLatency services an L1 miss through the backside, modelling a
// bounded set of miss status holding registers: when all MSHRs are in
// flight the new miss additionally waits for the earliest one to retire.
func (s *System) missLatency(pa mem.Addr) int {
	lat := s.Back.Miss(pa)
	now := s.cycle
	live := s.mshr[:0]
	for _, c := range s.mshr {
		if c > now {
			live = append(live, c)
		}
	}
	s.mshr = live
	wait := 0
	if len(s.mshr) >= s.Cfg.MSHRs && s.Cfg.MSHRs > 0 {
		earliestIdx := 0
		for i, c := range s.mshr {
			if c < s.mshr[earliestIdx] {
				earliestIdx = i
			}
		}
		if w := int(s.mshr[earliestIdx] - now); w > 0 {
			wait = w
			s.Ctr.Inc(stats.CtrL1MSHRStalls)
		}
		s.mshr = append(s.mshr[:earliestIdx], s.mshr[earliestIdx+1:]...)
	}
	total := wait + lat
	s.mshr = append(s.mshr, now+int64(total))
	return total
}

// fill allocates pa's line in the L1, charging fill/eviction energy and
// forwarding any dirty victim.
func (s *System) fill(pa mem.Addr) {
	_, victim, wb := s.L1.Fill(pa)
	s.MeterV.L1Fill()
	s.Ctr.Inc(stats.CtrL1Fills)
	if wb {
		s.MeterV.L1Eviction()
		s.Back.Writeback(victim)
		s.Ctr.Inc(stats.CtrL1Writebacks)
	}
}

// mbeWrite performs the L1 write of an evicted merge buffer entry with a
// translated physical line address. Way determination may allow a reduced
// (tag-bypassing) store.
func (s *System) mbeWrite(pline mem.Addr, uIdx int) {
	way, known := s.Det.Lookup(pline, uIdx)
	if known {
		s.L1.WriteReduced(pline, way)
		s.MeterV.L1ReducedWrite()
		s.Ctr.Inc(stats.CtrL1ReducedWrites)
		return
	}
	hitWay, hit := s.L1.Write(pline)
	s.MeterV.L1Write(s.L1.Ways())
	s.Ctr.Inc(stats.CtrL1ConventionalWrites)
	if hit {
		s.Det.Feedback(pline, uIdx, hitWay)
		return
	}
	// Write-allocate: fill then mark dirty.
	s.Ctr.Inc(stats.CtrL1StoreMisses)
	s.missLatency(pline)
	s.fill(pline)
	s.L1.MarkDirty(pline)
}

// forwardCheck consults SB and MB for load forwarding. SB/MB lookup energy
// is excluded by the paper's methodology ("very similar for all analyzed
// configurations").
func (s *System) forwardCheck(va mem.Addr, size uint8) bool {
	if full, _ := s.SB.Forward(va, size); full {
		s.Ctr.Inc(stats.CtrSBForwards)
		return true
	}
	if s.MB.Forward(va, size) {
		s.Ctr.Inc(stats.CtrMBForwards)
		return true
	}
	return false
}

// drainStores moves committed SB entries into the MB.
func (s *System) drainStores() { s.SB.DrainCommitted(s.MB) }

// Idle reports whether nothing is in flight anywhere.
func (s *System) Idle() bool {
	return s.pending == 0 && s.SB.Len() == 0 && s.MB.Len() == 0 &&
		s.MB.PendingMBEs() == 0
}

// Flush force-evicts merge buffer contents for end-of-run draining.
func (s *System) Flush() { s.MB.Drain() }
