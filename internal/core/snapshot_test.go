package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"malec/internal/config"
	"malec/internal/trace"
)

// warmRecords drives a warmed system over one slice of a trace.
func warmRecords(s *System, recs []trace.Record) {
	for _, rec := range recs {
		switch rec.Kind {
		case trace.Load:
			s.WarmLoad(rec.Addr)
		case trace.Store:
			s.WarmStore(rec.Addr)
		}
	}
}

// stateJSON captures a system's memory-side state as canonical JSON bytes.
func stateJSON(t *testing.T, s *System) []byte {
	t.Helper()
	data, err := json.Marshal(s.CaptureState())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCheckpointRoundTrip is the randomized checkpoint property test:
// capture a warmed system at a random record index N, restore the snapshot
// into a fresh system (through a JSON round trip, i.e. the disk format),
// continue warming both to a random index M, and require the final states
// to be byte-identical. Covers every snapshot variant: way tables
// (plain and segmented), the WDU, the bypass stream detector, and the
// baseline with no way determination.
func TestCheckpointRoundTrip(t *testing.T) {
	configs := []config.Config{
		config.Base1ldst(),
		config.MALEC(),
		config.MALECSegmentedWT(8, 0.5),
		config.MALECWithWDU(16),
		config.MALECBypass(),
	}
	benches := []string{"gzip", "ptrchase", "tlbthrash"}
	rnd := rand.New(rand.NewSource(20130318)) // deterministic trials

	for _, cfg := range configs {
		for _, bench := range benches {
			for trial := 0; trial < 3; trial++ {
				n := 1000 + rnd.Intn(20000)
				m := n + 1000 + rnd.Intn(20000)
				seed := uint64(1 + rnd.Intn(8))
				name := fmt.Sprintf("%s/%s/n=%d/m=%d/seed=%d", cfg.Name, bench, n, m, seed)

				recs := trace.NewGenerator(trace.Profiles[bench], seed).Generate(m)

				ref := NewSystem(cfg)
				ref.SetWarming(true)
				warmRecords(ref, recs[:n])

				ckJSON := stateJSON(t, ref)
				var ck SystemState
				if err := json.Unmarshal(ckJSON, &ck); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				restored := NewSystem(cfg)
				restored.SetWarming(true)
				restored.RestoreState(&ck)

				// A restore must reproduce the captured state exactly before
				// any further access.
				if got := stateJSON(t, restored); !bytes.Equal(got, ckJSON) {
					t.Fatalf("%s: restored state differs from snapshot at n", name)
				}

				// Uninterrupted vs restore-then-continue must stay
				// bit-identical through arbitrary further warming.
				warmRecords(ref, recs[n:])
				warmRecords(restored, recs[n:])
				if !bytes.Equal(stateJSON(t, ref), stateJSON(t, restored)) {
					t.Errorf("%s: state diverged after continuing to m", name)
				}
			}
		}
	}
}

// TestGeneratorStateRoundTrip is the source-side half of the checkpoint
// property: capturing a generator at a random index and restoring the
// snapshot into a fresh generator of the same (profile, seed) must
// reproduce the identical remaining record sequence.
func TestGeneratorStateRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for _, bench := range []string{"gzip", "mcf", "ptrchase", "tlbthrash"} {
		for trial := 0; trial < 3; trial++ {
			n := 1 + rnd.Intn(30000)
			m := 1 + rnd.Intn(10000)
			seed := uint64(1 + rnd.Intn(8))
			prof := trace.Profiles[bench]

			g := trace.NewGenerator(prof, seed)
			g.Generate(n)
			st := g.CaptureState()
			data, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			var back trace.GeneratorState
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatal(err)
			}

			fresh := trace.NewGenerator(prof, seed)
			if !fresh.RestoreState(&back) {
				t.Fatalf("%s/n=%d/seed=%d: restore rejected a matching snapshot", bench, n, seed)
			}
			want := g.Generate(m)
			got := fresh.Generate(m)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s/n=%d/seed=%d: record %d diverged: %+v vs %+v",
						bench, n, seed, i, got[i], want[i])
				}
			}
		}
	}
}
