package core

// calendar is a ring-buffer calendar queue mapping future cycles to the
// loads completing then. It replaces the map[int64][]Completion the
// scheduler used to allocate into on every load: slots are addressed by
// cycle modulo a power-of-two capacity, and each slot's backing array is
// reused across laps, so steady-state scheduling performs no allocation.
//
// Invariant: events are only scheduled for cycles strictly after the
// current one and within capacity cycles of it (schedule grows the ring on
// the rare occasion a completion lands beyond the horizon), so a slot is
// always drained by take before a later cycle can map onto it.
type calendar struct {
	slots [][]Completion
	mask  int64
}

// slotCap is the pre-allocated per-slot capacity. Four matches the result
// bus count, the common bound on loads completing in one cycle; slots that
// ever exceed it fall back to ordinary append growth.
const slotCap = 4

// makeSlots carves n empty slots with capacity slotCap out of one slab, so
// building (or growing) a ring costs two allocations, not n.
func makeSlots(n int) [][]Completion {
	slab := make([]Completion, n*slotCap)
	slots := make([][]Completion, n)
	for i := range slots {
		slots[i] = slab[i*slotCap : i*slotCap : (i+1)*slotCap]
	}
	return slots
}

// newCalendar returns a calendar able to hold events up to minHorizon
// cycles ahead without growing.
func newCalendar(minHorizon int) *calendar {
	n := 64
	for n <= minHorizon {
		n <<= 1
	}
	return &calendar{slots: makeSlots(n), mask: int64(n - 1)}
}

// schedule files c for cycle at, where now is the current cycle and
// now < at.
func (q *calendar) schedule(now, at int64, c Completion) {
	if at-now >= int64(len(q.slots)) {
		q.grow(now, at)
	}
	i := at & q.mask
	q.slots[i] = append(q.slots[i], c)
}

// grow enlarges the ring so that at fits within the horizon, rehoming the
// live slots to their new positions. Only the strictly-future cycles
// (now, now+len) are carried over: the slot drained at cycle now may still
// be aliased by the slice take returned this cycle, so it must not be
// reused for a future cycle.
func (q *calendar) grow(now, at int64) {
	old := q.slots
	oldMask := q.mask
	n := len(old)
	for at-now >= int64(n) {
		n <<= 1
	}
	q.slots = makeSlots(n)
	q.mask = int64(n - 1)
	for c := now + 1; c < now+int64(len(old)); c++ {
		q.slots[c&q.mask] = old[c&oldMask]
	}
}

// take removes and returns the completions due at cycle. The returned
// slice is only valid until the slot's cycle comes around again (at least
// one full lap of the ring later); callers consume it within the same
// simulated cycle.
func (q *calendar) take(cycle int64) []Completion {
	i := cycle & q.mask
	due := q.slots[i]
	if len(due) > 0 {
		q.slots[i] = due[:0]
	}
	return due
}
