package core

import "math"

// NoWork is the sentinel returned by calendar.next and Interface.NextWork
// when nothing is scheduled. It is far enough below the int64 range that
// callers can add latencies to it without wrapping.
const NoWork int64 = math.MaxInt64 / 4

// calendar is a ring-buffer calendar queue mapping future cycles to the
// loads completing then. It replaces the map[int64][]Completion the
// scheduler used to allocate into on every load: slots are addressed by
// cycle modulo a power-of-two capacity, and each slot's backing array is
// reused across laps, so steady-state scheduling performs no allocation.
//
// Invariant: events are only scheduled for cycles strictly after the
// current one and within capacity cycles of it (schedule grows the ring on
// the rare occasion a completion lands beyond the horizon), so a slot is
// always drained by take before a later cycle can map onto it.
//
// Occupancy is tracked alongside: each slot's population is the length of
// its slice, and events counts the scheduled completions across all slots,
// letting next answer "when is the earliest future completion?" without
// scanning an empty ring.
type calendar struct {
	slots  [][]Completion
	mask   int64
	events int // scheduled completions not yet taken
}

// slotCap is the pre-allocated per-slot capacity. Four matches the result
// bus count, the common bound on loads completing in one cycle; slots that
// ever exceed it fall back to ordinary append growth.
const slotCap = 4

// makeSlots carves n empty slots with capacity slotCap out of one slab, so
// building (or growing) a ring costs two allocations, not n.
func makeSlots(n int) [][]Completion {
	slab := make([]Completion, n*slotCap)
	slots := make([][]Completion, n)
	for i := range slots {
		slots[i] = slab[i*slotCap : i*slotCap : (i+1)*slotCap]
	}
	return slots
}

// newCalendar returns a calendar able to hold events up to minHorizon
// cycles ahead without growing.
func newCalendar(minHorizon int) *calendar {
	n := 64
	for n <= minHorizon {
		n <<= 1
	}
	return &calendar{slots: makeSlots(n), mask: int64(n - 1)}
}

// schedule files c for cycle at, where now is the current cycle and
// now < at.
func (q *calendar) schedule(now, at int64, c Completion) {
	if at-now >= int64(len(q.slots)) {
		q.grow(now, at)
	}
	i := at & q.mask
	q.slots[i] = append(q.slots[i], c)
	q.events++
}

// grow enlarges the ring so that at fits within the horizon, rehoming the
// live slots to their new positions. Only the strictly-future cycles
// (now, now+len) are carried over: the slot drained at cycle now may still
// be aliased by the slice take returned this cycle, so it must not be
// reused for a future cycle.
func (q *calendar) grow(now, at int64) {
	old := q.slots
	oldMask := q.mask
	n := len(old)
	for at-now >= int64(n) {
		n <<= 1
	}
	q.slots = makeSlots(n)
	q.mask = int64(n - 1)
	for c := now + 1; c < now+int64(len(old)); c++ {
		q.slots[c&q.mask] = old[c&oldMask]
	}
}

// take removes and returns the completions due at cycle. The returned
// slice is only valid until the slot's cycle comes around again (at least
// one full lap of the ring later); callers consume it within the same
// simulated cycle.
func (q *calendar) take(cycle int64) []Completion {
	i := cycle & q.mask
	due := q.slots[i]
	if len(due) > 0 {
		q.slots[i] = due[:0]
		q.events -= len(due)
	}
	return due
}

// population returns the number of completions scheduled for the given
// cycle (the slot's current population).
func (q *calendar) population(cycle int64) int {
	return len(q.slots[cycle&q.mask])
}

// next returns the cycle of the earliest completion scheduled strictly
// after now, or NoWork when the calendar is empty. By the scheduling
// invariant every live event lies within (now, now+len), so the scan walks
// forward from now+1 and stops at the first populated slot — its cost is
// the distance to the next event, not the ring size.
func (q *calendar) next(now int64) int64 {
	if q.events == 0 {
		return NoWork
	}
	for k := int64(1); k < int64(len(q.slots)); k++ {
		if len(q.slots[(now+k)&q.mask]) > 0 {
			return now + k
		}
	}
	return NoWork
}
