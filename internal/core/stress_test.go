package core

import (
	"testing"

	"malec/internal/config"
	"malec/internal/mem"
	"malec/internal/rng"
	"malec/internal/stats"
)

// TestRandomizedConservation drives each interface with a randomized
// request stream and verifies the fundamental conservation property: every
// accepted load completes exactly once, every accepted store can be
// committed and eventually reaches the L1 via the merge buffer, and the
// interface drains to idle. This exercises input-buffer carrying, bank
// conflicts, merging, MBE fairness and forwarding under pressure.
func TestRandomizedConservation(t *testing.T) {
	cfgs := []config.Config{
		config.Base1ldst(),
		config.Base2ld1st(),
		config.MALEC(),
		config.MALECNoMerge(),
		config.MALECWithWDU(8),
		config.MALECBypass(),
	}
	for _, cfg := range cfgs {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			src := rng.New(0xfeed ^ uint64(len(cfg.Name)))
			iface := New(cfg)

			completed := map[uint64]int{}
			acceptedLoads := map[uint64]bool{}
			var pendingStores []uint64
			seq := uint64(0)

			for cycle := 0; cycle < 3000; cycle++ {
				for _, c := range iface.Tick() {
					completed[c.Seq]++
				}
				// Commit a random prefix of outstanding stores (in
				// order, as the ROB would).
				for len(pendingStores) > 0 && src.Bool(0.5) {
					iface.CommitStore(pendingStores[0])
					pendingStores = pendingStores[1:]
				}
				// Offer a random burst of requests.
				burst := src.Intn(5)
				for i := 0; i < burst; i++ {
					seq++
					kind := mem.Load
					if src.Bool(0.3) {
						kind = mem.Store
					}
					// Addresses: small hot pool + occasional far pages to
					// trigger misses, conflicts and page-group breaks.
					page := mem.PageID(src.Intn(6))
					if src.Bool(0.1) {
						page = mem.PageID(100 + src.Intn(1000))
					}
					va := mem.MakeAddr(page, uint32(src.Intn(mem.PageSize))&^7)
					ok := iface.TryIssue(Request{Seq: seq, Kind: kind, VA: va, Size: 8})
					if !ok {
						seq-- // rejected: reuse the number next time
						continue
					}
					if kind == mem.Load {
						acceptedLoads[seq] = true
					} else {
						pendingStores = append(pendingStores, seq)
					}
				}
			}
			// Commit stragglers and drain.
			for _, s := range pendingStores {
				iface.CommitStore(s)
			}
			for i := 0; i < 5000; i++ {
				iface.Flush()
				for _, c := range iface.Tick() {
					completed[c.Seq]++
				}
				if iface.Idle() && iface.Pending() == 0 {
					break
				}
			}
			if !iface.Idle() || iface.Pending() != 0 {
				t.Fatalf("interface did not drain: pending=%d", iface.Pending())
			}
			for s := range acceptedLoads {
				if completed[s] != 1 {
					t.Fatalf("load %d completed %d times, want exactly 1", s, completed[s])
				}
			}
			for s, n := range completed {
				if !acceptedLoads[s] {
					t.Fatalf("completion for never-accepted or non-load seq %d (%d times)", s, n)
				}
			}
			// Every committed store must have reached the L1.
			sys := iface.System()
			mbe := iface.Counters().Get(stats.CtrMBMBEWrites)
			if sys.L1.Stats().Stores == 0 || mbe == 0 {
				t.Fatal("no stores reached the L1")
			}
		})
	}
}

// TestRandomizedDeterminism re-runs an identical randomized schedule and
// requires identical energy and statistics.
func TestRandomizedDeterminism(t *testing.T) {
	run := func() (uint64, float64) {
		src := rng.New(77)
		iface := New(config.MALEC())
		seq := uint64(0)
		done := 0
		for cycle := 0; cycle < 2000; cycle++ {
			done += len(iface.Tick())
			if src.Bool(0.7) {
				seq++
				va := mem.MakeAddr(mem.PageID(src.Intn(8)), uint32(src.Intn(4096))&^7)
				if !iface.TryIssue(Request{Seq: seq, Kind: mem.Load, VA: va, Size: 8}) {
					seq--
				}
			}
		}
		return uint64(done), iface.Meter().Finish(2000).Total()
	}
	d1, e1 := run()
	d2, e2 := run()
	if d1 != d2 || e1 != e2 {
		t.Fatalf("randomized schedule not reproducible: %d/%d completions, %v/%v pJ",
			d1, d2, e1, e2)
	}
}
