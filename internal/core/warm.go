package core

// Functional warming: the fast-forward mode of the sampled simulator. A
// warmed access drives the full memory-side state machine — TLB hierarchy
// (with refills, evictions and way-table synchronization hooks), way
// determination, L1 placement/replacement with the fill/evict hooks, the
// stream detector and the L2/DRAM residency models — but touches nothing
// cycle-accurate: no energy metering, no event counters, no calendar, no
// MSHRs, and no store/merge buffering (stores write through at line
// granularity, matching the state a drained detailed machine converges
// to). The warm trajectory therefore depends only on memory-side
// configuration and the record stream, which is what makes warmed
// checkpoints shareable across core-side config sweeps.
//
// Everything here is allocation-free (gated by the CI allocs/op ceiling on
// the sampled benchmark).

import "malec/internal/mem"

// SetWarming marks the system as functionally warming, disabling the
// energy charges inside the L1 fill/evict hooks.
func (s *System) SetWarming(on bool) { s.warming = on }

// WarmLoad functionally performs one load: translate, way-determine,
// access the L1 in the mode the detailed path would pick, learn feedback,
// and service misses through the backside. Mirrors System.loadAccess minus
// metering, counters and latency.
func (s *System) WarmLoad(va mem.Addr) {
	res := s.Hier.Translate(va.Page())
	pa := mem.MakeAddr(res.PPage, va.PageOffset())
	way, known := s.Det.Lookup(pa, res.UIdx)
	if known {
		s.L1.ReadReduced(pa, way)
		if s.detector != nil {
			s.detector.Observe(pa.Page(), false)
		}
		return
	}
	hitWay, hit := s.L1.ReadConventional(pa)
	bypassed := false
	if s.detector != nil && !hit {
		bypassed = s.detector.ShouldBypass(pa.Page())
	}
	if s.detector != nil && !bypassed {
		s.detector.Observe(pa.Page(), !hit)
	}
	if hit {
		s.Det.Feedback(pa, res.UIdx, hitWay)
		return
	}
	s.Back.Miss(pa)
	if bypassed {
		return
	}
	_, victim, wb := s.L1.Fill(pa)
	if wb {
		s.Back.Writeback(victim)
	}
}

// WarmStore functionally performs one store at line granularity: the state
// a detailed run converges to once the store has drained through the store
// and merge buffers and its MBE has written the line. Mirrors
// System.mbeWrite minus metering, counters and latency.
func (s *System) WarmStore(va mem.Addr) {
	res := s.Hier.Translate(va.Page())
	pline := mem.MakeAddr(res.PPage, va.PageOffset()).LineAddr()
	way, known := s.Det.Lookup(pline, res.UIdx)
	if known {
		s.L1.WriteReduced(pline, way)
		return
	}
	hitWay, hit := s.L1.Write(pline)
	if hit {
		s.Det.Feedback(pline, res.UIdx, hitWay)
		return
	}
	s.Back.Miss(pline)
	_, victim, wb := s.L1.Fill(pline)
	if wb {
		s.Back.Writeback(victim)
	}
	s.L1.MarkDirty(pline)
}
