package core

import (
	"malec/internal/config"
	"malec/internal/energy"
	"malec/internal/mem"
	"malec/internal/stats"
)

// Base1 is the energy-oriented baseline Base1ldst: a single address
// computation unit and a single rd/wt port on uTLB/TLB and cache, i.e. one
// load or one store per cycle (Tab. I).
type Base1 struct {
	sys *System

	aguUsed bool
	// pending is the single load awaiting service next Tick; the one
	// address computation unit (aguUsed) admits at most one per cycle.
	pending    Request
	hasPending bool
}

// NewBase1 builds a Base1ldst interface for cfg.
func NewBase1(cfg config.Config) *Base1 {
	return &Base1{sys: NewSystem(cfg)}
}

// Name implements Interface.
func (b *Base1) Name() string { return b.sys.Cfg.Name }

// TryIssue implements Interface: one memory operation per cycle.
func (b *Base1) TryIssue(r Request) bool {
	if b.aguUsed {
		return false
	}
	if r.Kind == mem.Store {
		// Stores translate at issue (for the SB) and wait for commit.
		if b.sys.SB.Full() {
			return false
		}
		b.sys.translate(r.VA.Page())
		b.sys.SB.Insert(r.Seq, r.VA, r.Size)
		b.sys.Ctr.Inc(stats.CtrIssueStores)
		b.aguUsed = true
		return true
	}
	b.pending = r
	b.hasPending = true
	b.sys.Ctr.Inc(stats.CtrIssueLoads)
	b.aguUsed = true
	return true
}

// CommitStore implements Interface.
func (b *Base1) CommitStore(seq uint64) { b.sys.SB.Commit(seq) }

// Tick implements Interface.
func (b *Base1) Tick() []Completion {
	due := b.sys.advance()
	b.sys.drainStores()

	l1PortUsed := false
	if b.hasPending {
		r := b.pending
		b.hasPending = false
		res := b.sys.translate(r.VA.Page())
		pa := mem.MakeAddr(res.PPage, r.VA.PageOffset())
		lat := b.sys.Cfg.L1Latency + res.Latency
		if b.sys.forwardCheck(r.VA, r.Size) {
			b.sys.schedule(r.Seq, b.sys.Cycle()+int64(lat))
		} else {
			extra := b.sys.loadAccess(pa, -1, false, -1)
			b.sys.schedule(r.Seq, b.sys.Cycle()+int64(lat+extra))
		}
		l1PortUsed = true
	}
	// The single rd/wt cache port serves a pending MBE write when no load
	// claimed it.
	if !l1PortUsed {
		if mbe, ok := b.sys.MB.NextMBE(); ok {
			pline := b.sys.Hier.PT.TranslateAddr(mbe.LineVA) // PA captured at store issue
			b.sys.mbeWrite(pline, -1)
			b.sys.MB.PopMBE()
			b.sys.Ctr.Inc(stats.CtrMBMBEWrites)
		}
	}
	b.aguUsed = false
	return due
}

// Pending implements Interface.
func (b *Base1) Pending() int {
	n := b.sys.Pending()
	if b.hasPending {
		n++
	}
	return n
}

// Flush implements Interface.
func (b *Base1) Flush() { b.sys.Flush() }

// Idle implements Interface.
func (b *Base1) Idle() bool { return b.sys.Idle() && !b.hasPending }

// NextWork implements Interface.
func (b *Base1) NextWork(now int64) int64 {
	if b.hasPending {
		return now + 1
	}
	return b.sys.nextWork(now)
}

// Meter implements Interface.
func (b *Base1) Meter() *energy.Meter { return b.sys.MeterV }

// Counters implements Interface.
func (b *Base1) Counters() *stats.Counters { return b.sys.Ctr }

// System implements Interface.
func (b *Base1) System() *System { return b.sys }
