package core

import (
	"testing"

	"malec/internal/config"
	"malec/internal/mem"
	"malec/internal/stats"
)

// tick advances an interface n cycles, collecting completions.
func tick(iface Interface, n int) []Completion {
	var out []Completion
	for i := 0; i < n; i++ {
		out = append(out, iface.Tick()...)
	}
	return out
}

// drain runs the interface until idle (bounded).
func drain(t *testing.T, iface Interface) []Completion {
	t.Helper()
	var out []Completion
	for i := 0; i < 10000; i++ {
		iface.Flush()
		out = append(out, iface.Tick()...)
		if iface.Idle() && iface.Pending() == 0 {
			return out
		}
	}
	t.Fatal("interface did not drain")
	return nil
}

func load(seq uint64, va mem.Addr) Request {
	return Request{Seq: seq, Kind: mem.Load, VA: va, Size: 8}
}

func store(seq uint64, va mem.Addr) Request {
	return Request{Seq: seq, Kind: mem.Store, VA: va, Size: 8}
}

func TestBase1OneOpPerCycle(t *testing.T) {
	b := NewBase1(config.Base1ldst())
	if !b.TryIssue(load(1, 0x1000)) {
		t.Fatal("first issue rejected")
	}
	if b.TryIssue(load(2, 0x2000)) {
		t.Fatal("second issue in same cycle accepted")
	}
	b.Tick()
	if !b.TryIssue(store(2, 0x3000)) {
		t.Fatal("issue after Tick rejected")
	}
	if b.TryIssue(load(3, 0x4000)) {
		t.Fatal("load accepted in a store's cycle")
	}
}

func TestBase1LoadCompletes(t *testing.T) {
	cfg := config.Base1ldst()
	b := NewBase1(cfg)
	b.TryIssue(load(1, 0x1000))
	comps := drain(t, b)
	if len(comps) != 1 || comps[0].Seq != 1 {
		t.Fatalf("completions %v", comps)
	}
	// A load involves a translation and an L1 access.
	if b.System().Hier.U.Stats().Lookups == 0 {
		t.Fatal("no translation performed")
	}
	if b.System().L1.Stats().Loads == 0 {
		t.Fatal("no L1 access performed")
	}
}

func TestBase1MissLatency(t *testing.T) {
	cfg := config.Base1ldst()
	run := func(second mem.Addr) int {
		b := NewBase1(cfg)
		// Warm the line at 0x1000.
		b.TryIssue(load(1, 0x1000))
		drain(t, b)
		b.TryIssue(load(2, second))
		cycles := 0
		for i := 0; i < 1000; i++ {
			cycles++
			if len(b.Tick()) > 0 {
				return cycles
			}
		}
		t.Fatal("load never completed")
		return 0
	}
	hit := run(0x1008)   // same line: hit
	miss := run(0x40000) // cold line: L2 or DRAM
	if miss <= hit {
		t.Fatalf("miss latency %d <= hit latency %d", miss, hit)
	}
	if miss-hit < 10 {
		t.Fatalf("miss penalty %d too small for an L2 access", miss-hit)
	}
}

func TestBase2AcceptsTwoLoadsOneStore(t *testing.T) {
	b := NewBase2(config.Base2ld1st())
	if !b.TryIssue(load(1, 0x1000)) || !b.TryIssue(load(2, 0x2000)) {
		t.Fatal("two loads rejected")
	}
	if b.TryIssue(load(3, 0x3000)) {
		t.Fatal("third load accepted")
	}
	if !b.TryIssue(store(4, 0x4000)) {
		t.Fatal("store rejected")
	}
	if b.TryIssue(store(5, 0x5000)) {
		t.Fatal("second store accepted")
	}
	b.CommitStore(4)
	comps := drain(t, b)
	if len(comps) != 2 {
		t.Fatalf("%d completions, want 2 loads", len(comps))
	}
}

func TestStoreForwarding(t *testing.T) {
	for _, mk := range []func() Interface{
		func() Interface { return NewBase1(config.Base1ldst()) },
		func() Interface { return NewBase2(config.Base2ld1st()) },
		func() Interface { return NewMalec(config.MALEC()) },
	} {
		iface := mk()
		iface.TryIssue(store(1, 0x1230))
		iface.Tick()
		iface.TryIssue(load(2, 0x1230))
		found := false
		for i := 0; i < 100 && !found; i++ {
			for _, c := range iface.Tick() {
				if c.Seq == 2 {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("%s: forwarded load never completed", iface.Name())
		}
		if iface.Counters().Get(stats.CtrSBForwards) == 0 {
			t.Fatalf("%s: store-to-load forward not counted", iface.Name())
		}
		// The forwarded load must not touch the L1.
		if iface.System().L1.Stats().Loads != 0 {
			t.Fatalf("%s: forwarded load accessed the L1", iface.Name())
		}
	}
}

func TestCommitPathWritesMBE(t *testing.T) {
	b := NewBase1(config.Base1ldst())
	b.TryIssue(store(1, 0x1000))
	b.Tick()
	b.CommitStore(1)
	drain(t, b)
	if b.System().L1.Stats().Stores == 0 {
		t.Fatal("committed store never reached the L1")
	}
	if b.Counters().Get(stats.CtrMBMBEWrites) != 1 {
		t.Fatal("MBE write not counted")
	}
}

func TestMalecAGULimits(t *testing.T) {
	m := NewMalec(config.MALEC())
	// 1 ld + 2 ld/st: up to 3 loads, at most 2 stores.
	if !m.TryIssue(load(1, 0x1000)) || !m.TryIssue(load(2, 0x2000)) || !m.TryIssue(load(3, 0x3000)) {
		t.Fatal("three loads rejected")
	}
	if m.TryIssue(load(4, 0x4000)) {
		t.Fatal("fourth load accepted")
	}
	m.Tick()
	if !m.TryIssue(store(5, 0x5000)) || !m.TryIssue(store(6, 0x6000)) {
		t.Fatal("two stores rejected")
	}
	if m.TryIssue(store(7, 0x7000)) {
		t.Fatal("third store accepted")
	}
	if !m.TryIssue(load(8, 0x8000)) {
		t.Fatal("load rejected alongside two stores")
	}
}

func TestMalecSamePageGroupServicedTogether(t *testing.T) {
	m := NewMalec(config.MALEC())
	// Four loads to the same page, different banks: one translation, all
	// serviced in the same cycle.
	page := mem.PageID(5)
	for i := 0; i < 3; i++ {
		if !m.TryIssue(load(uint64(i+1), mem.MakeAddr(page, uint32(i)*mem.LineSize))) {
			t.Fatalf("load %d rejected", i+1)
		}
	}
	m.Tick() // services the group
	utlbLookups := m.System().Hier.U.Stats().Lookups
	if utlbLookups != 1 {
		t.Fatalf("%d uTLB lookups for a same-page group, want 1 (shared translation)", utlbLookups)
	}
	comps := tick(m, 200) // covers walk + L2 + DRAM latency of cold lines
	if len(comps) != 3 {
		t.Fatalf("%d completions, want 3", len(comps))
	}
}

func TestMalecDifferentPagesSerialized(t *testing.T) {
	m := NewMalec(config.MALEC())
	m.TryIssue(load(1, mem.MakeAddr(1, 0)))
	m.TryIssue(load(2, mem.MakeAddr(2, 0)))
	m.Tick() // only page 1's group serviced
	if got := m.Counters().Get(stats.CtrMalecGroups); got != 1 {
		t.Fatalf("groups after one tick = %d", got)
	}
	m.Tick() // page 2 next cycle
	if got := m.Counters().Get(stats.CtrMalecGroups); got != 2 {
		t.Fatalf("groups after two ticks = %d", got)
	}
	// One page per cycle means one translation per cycle.
	if got := m.System().Hier.U.Stats().Lookups; got != 2 {
		t.Fatalf("uTLB lookups = %d, want 2", got)
	}
}

func TestMalecBankConflictCarriesLoad(t *testing.T) {
	m := NewMalec(config.MALEC())
	page := mem.PageID(3)
	// Two loads to the same bank (lines 0 and 4), different lines, far
	// apart: no merge possible, bank conflict.
	m.TryIssue(load(1, mem.MakeAddr(page, 0)))
	m.TryIssue(load(2, mem.MakeAddr(page, 4*mem.LineSize)))
	m.Tick()
	if got := m.Counters().Get(stats.CtrMalecBankConflicts); got != 1 {
		t.Fatalf("bank conflicts = %d, want 1", got)
	}
	comps := tick(m, 200)
	if len(comps) != 2 {
		t.Fatalf("%d completions, want both loads eventually", len(comps))
	}
}

func TestMalecMergeSameWindow(t *testing.T) {
	m := NewMalec(config.MALEC())
	page := mem.PageID(4)
	// Two loads within one 32 byte window: merged, one L1 access.
	m.TryIssue(load(1, mem.MakeAddr(page, 0)))
	m.TryIssue(load(2, mem.MakeAddr(page, 8)))
	m.Tick()
	if got := m.Counters().Get(stats.CtrMalecMergedLoads); got != 1 {
		t.Fatalf("merged loads = %d, want 1", got)
	}
	if got := m.System().L1.Stats().Loads; got != 1 {
		t.Fatalf("L1 accesses = %d, want 1 (shared)", got)
	}
	comps := tick(m, 200)
	if len(comps) != 2 {
		t.Fatalf("%d completions, want 2", len(comps))
	}
}

func TestMalecNoMergeAcrossWindows(t *testing.T) {
	m := NewMalec(config.MALEC())
	page := mem.PageID(4)
	// Same line but different 32 byte windows: merge only happens for
	// the two adjacent sub-blocks the bank reads.
	m.TryIssue(load(1, mem.MakeAddr(page, 0)))
	m.TryIssue(load(2, mem.MakeAddr(page, 32)))
	m.Tick()
	if got := m.Counters().Get(stats.CtrMalecMergedLoads); got != 0 {
		t.Fatalf("merged loads = %d, want 0", got)
	}
}

func TestMalecNoMergeConfig(t *testing.T) {
	m := NewMalec(config.MALECNoMerge())
	page := mem.PageID(4)
	m.TryIssue(load(1, mem.MakeAddr(page, 0)))
	m.TryIssue(load(2, mem.MakeAddr(page, 8)))
	m.Tick()
	if got := m.Counters().Get(stats.CtrMalecMergedLoads); got != 0 {
		t.Fatal("merging disabled but loads merged")
	}
}

func TestMalecInputBufferCapacityStalls(t *testing.T) {
	m := NewMalec(config.MALEC())
	// Saturate: 3 accepted in cycle 1; conflictful same-bank different
	// window addresses force carrying.
	page := mem.PageID(6)
	seq := uint64(1)
	accepted := 0
	for c := 0; c < 4; c++ {
		for i := 0; i < 3; i++ {
			if m.TryIssue(load(seq, mem.MakeAddr(page, uint32(seq%16)*4*mem.LineSize%4096))) {
				accepted++
			}
			seq++
		}
		m.Tick()
	}
	if m.Counters().Get(stats.CtrIBStalls) == 0 {
		t.Skip("no stall provoked; address pattern too friendly")
	}
}

func TestMalecReducedAccessAfterWarmup(t *testing.T) {
	m := NewMalec(config.MALEC())
	page := mem.PageID(9)
	va := mem.MakeAddr(page, 2*mem.LineSize)
	// First access misses and fills (conventional).
	m.TryIssue(load(1, va))
	drain(t, m)
	// Second access must be reduced: way known via the fill update.
	m.TryIssue(load(2, va))
	drain(t, m)
	if got := m.System().L1.Stats().ReducedReads; got != 1 {
		t.Fatalf("reduced reads = %d, want 1", got)
	}
	known, total := m.System().Det.Coverage()
	if known == 0 || total < 2 {
		t.Fatalf("coverage %d/%d", known, total)
	}
}

func TestMalecMBEWriteHappens(t *testing.T) {
	m := NewMalec(config.MALEC())
	m.TryIssue(store(1, 0x2040))
	m.Tick()
	m.CommitStore(1)
	drain(t, m)
	if m.Counters().Get(stats.CtrMBMBEWrites) != 1 {
		t.Fatal("MBE never written")
	}
	if m.System().L1.Stats().Stores == 0 {
		t.Fatal("store never reached L1")
	}
}

func TestMalecMBEFairness(t *testing.T) {
	// A stream of loads to a different page must not starve the MBE
	// beyond the fairness limit.
	m := NewMalec(config.MALEC())
	m.TryIssue(store(1, mem.MakeAddr(50, 0)))
	m.Tick()
	m.CommitStore(1)
	m.Tick()  // drain SB -> MB
	m.Flush() // force the MB entry out as a pending MBE
	seq := uint64(2)
	for c := 0; c < 100 && m.Counters().Get(stats.CtrMBMBEWrites) == 0; c++ {
		m.TryIssue(load(seq, mem.MakeAddr(1, uint32(c%64)*mem.LineSize)))
		seq++
		m.Tick()
	}
	if m.Counters().Get(stats.CtrMBMBEWrites) == 0 {
		t.Fatal("MBE starved past the fairness limit")
	}
}

func TestNewDispatch(t *testing.T) {
	if _, ok := New(config.Base1ldst()).(*Base1); !ok {
		t.Fatal("New(Base1ldst) wrong type")
	}
	if _, ok := New(config.Base2ld1st()).(*Base2); !ok {
		t.Fatal("New(Base2ld1st) wrong type")
	}
	if _, ok := New(config.MALEC()).(*Malec); !ok {
		t.Fatal("New(MALEC) wrong type")
	}
}

func TestWDUVariantRuns(t *testing.T) {
	m := NewMalec(config.MALECWithWDU(8))
	va := mem.MakeAddr(2, 0x80)
	m.TryIssue(load(1, va))
	drain(t, m)
	m.TryIssue(load(2, va))
	drain(t, m)
	if m.System().L1.Stats().ReducedReads != 1 {
		t.Fatal("WDU variant never produced a reduced access")
	}
	if m.System().WDUD.Stats().PortLookups == 0 {
		t.Fatal("WDU lookups not counted")
	}
}
