package core

import (
	"malec/internal/config"
	"malec/internal/energy"
	"malec/internal/mem"
	"malec/internal/stats"
)

// Base2 is the performance-oriented baseline Base2ld1st: two loads plus one
// store per cycle, realized with physically multi-ported uTLB/TLB
// (1 rd/wt + 2 rd) and cache (1 rd/wt + 1 rd) on top of banking (Tab. I).
// Each load performs its own translation and its own full-width SB/MB
// lookup; the energy premium of the extra ports is captured by the meter's
// port multipliers.
type Base2 struct {
	sys *System

	loadsIssued  int
	storesIssued int
	pending      []Request
}

// NewBase2 builds a Base2ld1st interface for cfg.
func NewBase2(cfg config.Config) *Base2 {
	return &Base2{sys: NewSystem(cfg)}
}

// Name implements Interface.
func (b *Base2) Name() string { return b.sys.Cfg.Name }

// TryIssue implements Interface: up to AGULoads loads and AGUStores stores.
func (b *Base2) TryIssue(r Request) bool {
	if r.Kind == mem.Store {
		if b.storesIssued >= b.sys.Cfg.AGUStores || b.sys.SB.Full() {
			return false
		}
		b.sys.translate(r.VA.Page())
		b.sys.SB.Insert(r.Seq, r.VA, r.Size)
		b.sys.Ctr.Inc(stats.CtrIssueStores)
		b.storesIssued++
		return true
	}
	if b.loadsIssued >= b.sys.Cfg.AGULoads {
		return false
	}
	b.pending = append(b.pending, r)
	b.sys.Ctr.Inc(stats.CtrIssueLoads)
	b.loadsIssued++
	return true
}

// CommitStore implements Interface.
func (b *Base2) CommitStore(seq uint64) { b.sys.SB.Commit(seq) }

// Tick implements Interface. Cache ports allow two reads, or one read and
// one write, per cycle (1 rd/wt + 1 rd); banks are dual-ported so no bank
// conflicts arise at this issue width.
func (b *Base2) Tick() []Completion {
	due := b.sys.advance()
	b.sys.drainStores()

	accesses := 0
	writes := 0
	for _, r := range b.pending {
		res := b.sys.translate(r.VA.Page())
		pa := mem.MakeAddr(res.PPage, r.VA.PageOffset())
		lat := b.sys.Cfg.L1Latency + res.Latency
		if b.sys.forwardCheck(r.VA, r.Size) {
			b.sys.schedule(r.Seq, b.sys.Cycle()+int64(lat))
			continue
		}
		extra := b.sys.loadAccess(pa, -1, false, -1)
		b.sys.schedule(r.Seq, b.sys.Cycle()+int64(lat+extra))
		accesses++
	}
	b.pending = b.pending[:0]
	// The rd/wt port serves an MBE write if still free.
	if accesses < 2 && writes < b.sys.Cfg.MaxWritesPerCycle {
		if mbe, ok := b.sys.MB.NextMBE(); ok {
			pline := b.sys.Hier.PT.TranslateAddr(mbe.LineVA)
			b.sys.mbeWrite(pline, -1)
			b.sys.MB.PopMBE()
			b.sys.Ctr.Inc(stats.CtrMBMBEWrites)
			writes++
		}
	}
	b.loadsIssued = 0
	b.storesIssued = 0
	return due
}

// Pending implements Interface.
func (b *Base2) Pending() int { return b.sys.Pending() + len(b.pending) }

// Flush implements Interface.
func (b *Base2) Flush() { b.sys.Flush() }

// Idle implements Interface.
func (b *Base2) Idle() bool { return b.sys.Idle() && len(b.pending) == 0 }

// NextWork implements Interface.
func (b *Base2) NextWork(now int64) int64 {
	if len(b.pending) > 0 {
		return now + 1
	}
	return b.sys.nextWork(now)
}

// Meter implements Interface.
func (b *Base2) Meter() *energy.Meter { return b.sys.MeterV }

// Counters implements Interface.
func (b *Base2) Counters() *stats.Counters { return b.sys.Ctr }

// System implements Interface.
func (b *Base2) System() *System { return b.sys }
