package core

import (
	"testing"

	"malec/internal/config"
	"malec/internal/trace"
)

// TestWarmingAllocationFree locks in the allocation-free functional-warming
// fast path: once the footprint-tracking maps (page table, stream detector,
// segmented-WT pool) have absorbed the workload's pages, warming additional
// records must not allocate. This is the CI ceiling guarding the sampled
// simulator's fast-forward throughput.
func TestWarmingAllocationFree(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	recs := trace.NewGenerator(trace.Profiles["gzip"], 1).Generate(60000)
	configs := []config.Config{
		config.Base1ldst(),
		config.MALEC(),
		config.MALECSegmentedWT(8, 0.5),
		config.MALECWithWDU(16),
		config.MALECBypass(),
	}
	for _, cfg := range configs {
		sys := NewSystem(cfg)
		sys.SetWarming(true)
		warmRecords(sys, recs[:20000]) // absorb footprint growth
		allocs := testing.AllocsPerRun(5, func() {
			warmRecords(sys, recs[20000:])
		})
		if allocs > 8 {
			t.Errorf("%s: %.0f allocs per 40k warmed records, want <= 8", cfg.Name, allocs)
		}
	}
}

// BenchmarkWarming measures functional-warming throughput (records/s via
// the instr/s metric): the speed floor of the sampled simulator's
// fast-forward between measurement windows.
func BenchmarkWarming(b *testing.B) {
	const n = 30000
	recs := trace.NewGenerator(trace.Profiles["gzip"], 1).Generate(n)
	sys := NewSystem(config.MALEC())
	sys.SetWarming(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warmRecords(sys, recs)
	}
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
	}
}
