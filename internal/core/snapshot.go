package core

// SystemState is the microarchitectural checkpoint: a complete, exported,
// JSON-able snapshot of every memory-side structure whose contents depend
// on the access history — L1, L2/DRAM, both TLBs (entries, statistics and
// replacement-policy state), the page table, way-determination state and
// the stream detector. Its JSON encoding doubles as the checkpoint disk
// format.
//
// A snapshot is only meaningful on a system that has been functionally
// warmed (WarmLoad/WarmStore): warming never touches the store/merge
// buffers, the completion calendar or the MSHRs, so those are empty by
// construction and are not part of the state. Restoring transplants the
// snapshot into a freshly constructed same-memory-side-config System; no
// maintenance hooks fire, and derived lookup indexes are rebuilt from the
// restored contents inside each package.

import (
	"malec/internal/cache"
	"malec/internal/tlb"
	"malec/internal/waytable"
)

// SystemState aggregates the per-package snapshots.
type SystemState struct {
	L1   cache.L1State
	Back cache.BacksideState
	UTLB tlb.TLBState
	TLB  tlb.TLBState
	PT   tlb.PageTableState

	PageD *waytable.PageSystemState `json:",omitempty"`
	WDU   *waytable.WDUState        `json:",omitempty"`
	Det   *cache.DetectorState      `json:",omitempty"`
}

// CaptureState snapshots the system's memory-side state. The system is
// unmodified.
func (s *System) CaptureState() *SystemState {
	st := &SystemState{
		L1:   s.L1.CaptureState(),
		Back: s.Back.CaptureState(),
		UTLB: s.Hier.U.CaptureState(),
		TLB:  s.Hier.Main.CaptureState(),
		PT:   s.Hier.PT.CaptureState(),
	}
	if s.PageD != nil {
		ps := s.PageD.CaptureState()
		st.PageD = &ps
	}
	if s.WDUD != nil {
		ws := s.WDUD.CaptureState()
		st.WDU = &ws
	}
	if s.detector != nil {
		ds := s.detector.CaptureState()
		st.Det = &ds
	}
	return st
}

// RestoreState transplants a snapshot captured from a system with the same
// memory-side configuration (cache/TLB/way-table geometry, seed, bypass).
func (s *System) RestoreState(st *SystemState) {
	s.L1.RestoreState(st.L1)
	s.Back.RestoreState(st.Back)
	s.Hier.U.RestoreState(st.UTLB)
	s.Hier.Main.RestoreState(st.TLB)
	s.Hier.PT.RestoreState(st.PT)
	if s.PageD != nil && st.PageD != nil {
		s.PageD.RestoreState(*st.PageD)
	}
	if s.WDUD != nil && st.WDU != nil {
		s.WDUD.RestoreState(*st.WDU)
	}
	if s.detector != nil && st.Det != nil {
		s.detector.RestoreState(*st.Det)
	}
}
