package core
