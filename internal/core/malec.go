package core

import (
	"malec/internal/config"
	"malec/internal/energy"
	"malec/internal/mem"
	"malec/internal/stats"
)

// Malec implements the proposed interface (Fig. 2): loads finishing address
// computation enter the input buffer; each cycle the virtual page ID of the
// highest-priority entry is translated (a single uTLB/TLB lookup shared by
// the whole group) and simultaneously compared against the remaining
// entries; the arbitration unit distributes the matching group over the
// four single-ported cache banks, merges loads to the same 32 byte
// two-sub-block window, limits service to four result buses, and attaches
// way information from the uWT entry returned by the translation.
//
// Stores bypass the input buffer: they sit in the SB until commit, merge in
// the MB, and re-enter the access path as evicted merge buffer entries
// (MBEs) with the lowest priority.
type Malec struct {
	sys *System

	ib        []ibEntry // carried + newly arrived loads, priority order
	newLoads  int       // loads accepted this cycle
	newStores int
	aguUsed   int
	mbeWait   int64 // cycles the oldest pending MBE has waited

	// group and serviced are per-cycle scratch buffers reused across
	// serviceGroup calls so the steady-state arbitration loop allocates
	// nothing.
	group    []int
	serviced []bool
}

// ibEntry is an input buffer slot.
type ibEntry struct {
	req     Request
	arrived int64
}

// mbeFairnessLimit promotes a starving MBE to group head after this many
// waiting cycles, guaranteeing forward progress for committed stores.
const mbeFairnessLimit = 16

// NewMalec builds a MALEC interface for cfg.
func NewMalec(cfg config.Config) *Malec {
	return &Malec{sys: NewSystem(cfg)}
}

// Name implements Interface.
func (m *Malec) Name() string { return m.sys.Cfg.Name }

// capacity returns the input buffer's total load storage: carried slots
// plus the per-cycle address computation latches.
func (m *Malec) capacity() int { return m.sys.Cfg.CarriedLoads + m.sys.Cfg.AGUTotal }

// TryIssue implements Interface. Loads are rejected when the input buffer's
// storage elements are insufficient ("one or more address computation units
// are stalled", Sec. IV).
func (m *Malec) TryIssue(r Request) bool {
	if m.aguUsed >= m.sys.Cfg.AGUTotal {
		return false
	}
	if r.Kind == mem.Store {
		if m.newStores >= m.sys.Cfg.AGUStores || m.sys.SB.Full() {
			return false
		}
		// No translation at issue: the MBE translates (shared) when it
		// re-enters via the input buffer.
		m.sys.SB.Insert(r.Seq, r.VA, r.Size)
		m.sys.Ctr.Inc(stats.CtrIssueStores)
		m.newStores++
		m.aguUsed++
		return true
	}
	if m.newLoads >= m.sys.Cfg.AGULoads || len(m.ib) >= m.capacity() {
		m.sys.Ctr.Inc(stats.CtrIBStalls)
		return false
	}
	m.ib = append(m.ib, ibEntry{req: r, arrived: m.sys.Cycle()})
	m.sys.Ctr.Inc(stats.CtrIssueLoads)
	m.newLoads++
	m.aguUsed++
	return true
}

// CommitStore implements Interface.
func (m *Malec) CommitStore(seq uint64) { m.sys.SB.Commit(seq) }

// Tick implements Interface: one full input-buffer selection, translation
// and arbitration round.
func (m *Malec) Tick() []Completion {
	due := m.sys.advance()
	m.sys.drainStores()
	m.serviceGroup()
	m.newLoads, m.newStores, m.aguUsed = 0, 0, 0
	return due
}

// bankClaim records which access owns a cache bank this cycle.
type bankClaim struct {
	claimed  bool
	isMBE    bool
	mergeKey mem.Addr // line address or 32 byte window of the claiming load
	groupIdx int      // group position of the claiming load
	way      int
	wayKnown bool
	extraLat int
}

// serviceGroup performs one cycle of MALEC operation.
func (m *Malec) serviceGroup() {
	mbe, haveMBE := m.sys.MB.NextMBE()
	if len(m.ib) == 0 && !haveMBE {
		return
	}
	if haveMBE {
		m.mbeWait++
	}

	// Priority selection: the highest-priority entry determines the page
	// serviced this cycle. MBEs are lowest priority ("not time critical,
	// as corresponding stores already committed") unless starving.
	var vpage mem.PageID
	mbeIsHead := false
	switch {
	case len(m.ib) == 0 || m.mbeWait > mbeFairnessLimit && haveMBE:
		vpage = mbe.LineVA.Page()
		mbeIsHead = true
	default:
		vpage = m.ib[0].req.VA.Page()
	}

	// One shared address translation per cycle; the page ID is compared
	// against every other valid entry in parallel (the input buffer's
	// narrow comparators).
	res := m.sys.translate(vpage)
	m.sys.Ctr.Inc(stats.CtrMalecGroups)

	// Gather the group: input buffer entries matching the page, in
	// priority order, plus the MBE when it matches.
	group := m.group[:0]
	for i := range m.ib {
		if m.ib[i].req.VA.Page() == vpage {
			group = append(group, i)
		}
	}
	m.group = group
	mbeInGroup := haveMBE && (mbeIsHead || mbe.LineVA.Page() == vpage)
	m.sys.Ctr.Add(stats.CtrMalecGroupLoads, uint64(len(group)))

	// One uWT entry read services the whole group (Sec. V: the energy to
	// evaluate WT entries is independent of the number of references).
	if m.sys.PageD != nil && (len(group) > 0 || mbeInGroup) {
		m.sys.MeterV.UWTRead()
	}

	var banks [mem.NumBanks]bankClaim
	buses := m.sys.Cfg.MaxLoadsPerCycle
	if cap(m.serviced) < len(m.ib) {
		m.serviced = make([]bool, len(m.ib))
	}
	serviced := m.serviced[:len(m.ib)]
	for i := range serviced {
		serviced[i] = false
	}
	nServiced := 0
	baseLat := m.sys.Cfg.L1Latency + res.Latency

	for gi, idx := range group {
		if buses == 0 {
			break
		}
		e := &m.ib[idx]
		r := e.req
		// SB/MB forwarding consumes a result bus but no cache bank.
		if m.sys.forwardCheck(r.VA, r.Size) {
			m.sys.schedule(r.Seq, m.sys.Cycle()+int64(baseLat))
			serviced[idx] = true
			nServiced++
			buses--
			continue
		}
		pa := mem.MakeAddr(res.PPage, r.VA.PageOffset())
		bank := pa.Bank()
		key := mergeKey(pa, m.sys.Cfg.MergeWindowBytes)
		c := &banks[bank]
		switch {
		case !c.claimed:
			// Highest-priority access to this bank claims it and
			// performs the actual L1 access.
			way, known := m.detLookup(pa, res.UIdx)
			extra := m.sys.loadAccess(pa, way, known, res.UIdx)
			*c = bankClaim{claimed: true, mergeKey: key, groupIdx: gi,
				way: way, wayKnown: known, extraLat: extra}
			m.sys.schedule(r.Seq, m.sys.Cycle()+int64(baseLat+extra))
			serviced[idx] = true
			nServiced++
			buses--
		case !c.isMBE && c.mergeKey == key &&
			gi-c.groupIdx <= m.sys.Cfg.MergeCompareLimit &&
			m.sys.Cfg.MergeCompareLimit > 0:
			// Merge: share the claiming load's data (no extra cache
			// access, no extra energy), consuming only a result bus.
			m.sys.schedule(r.Seq, m.sys.Cycle()+int64(baseLat+c.extraLat))
			serviced[idx] = true
			nServiced++
			buses--
			m.sys.Ctr.Inc(stats.CtrMalecMergedLoads)
		default:
			// Bank conflict: the entry stays in the input buffer.
			m.sys.Ctr.Inc(stats.CtrMalecBankConflicts)
		}
	}

	// The MBE writes its bank if still free (one write per cycle).
	if mbeInGroup {
		pline := mem.MakeAddr(res.PPage, mbe.LineVA.PageOffset())
		bank := pline.Bank()
		if !banks[bank].claimed {
			m.sys.mbeWrite(pline, res.UIdx)
			m.sys.MB.PopMBE()
			m.sys.Ctr.Inc(stats.CtrMBMBEWrites)
			m.mbeWait = 0
		}
	}

	// Compact the input buffer, keeping unserviced entries in order.
	if nServiced > 0 {
		kept := m.ib[:0]
		for i := range m.ib {
			if !serviced[i] {
				kept = append(kept, m.ib[i])
			}
		}
		m.ib = kept
	}
	if carried := len(m.ib); carried > 0 {
		m.sys.Ctr.Add(stats.CtrIBCarried, uint64(carried))
	}
}

// mergeKey truncates an address to the configured merge granularity.
// Merging never crosses a cache line regardless of the window size.
func mergeKey(pa mem.Addr, window int) mem.Addr {
	switch {
	case window <= 0:
		return pa.Canon() // exact address: effectively unmergeable
	case window >= mem.LineSize:
		return pa.LineAddr()
	default:
		return pa.Canon() &^ mem.Addr(window-1)
	}
}

// detLookup consults the way determiner, charging WDU port energy when a
// WDU is configured (the WT read is charged once per group instead).
func (m *Malec) detLookup(pa mem.Addr, uIdx int) (way int, known bool) {
	way, known = m.sys.Det.Lookup(pa, uIdx)
	if m.sys.WDUD != nil {
		m.sys.MeterV.WDULookup()
	}
	return way, known
}

// Pending implements Interface.
func (m *Malec) Pending() int { return m.sys.Pending() + len(m.ib) }

// Flush implements Interface.
func (m *Malec) Flush() { m.sys.Flush() }

// Idle implements Interface.
func (m *Malec) Idle() bool { return m.sys.Idle() && len(m.ib) == 0 }

// NextWork implements Interface. A non-empty input buffer means the next
// serviceGroup performs a translation and arbitration round (and a pending
// MBE additionally ages mbeWait), so any carried load pins work to the very
// next cycle; otherwise the shared-structure bound applies.
func (m *Malec) NextWork(now int64) int64 {
	if len(m.ib) > 0 {
		return now + 1
	}
	return m.sys.nextWork(now)
}

// Meter implements Interface.
func (m *Malec) Meter() *energy.Meter { return m.sys.MeterV }

// Counters implements Interface.
func (m *Malec) Counters() *stats.Counters { return m.sys.Ctr }

// System implements Interface.
func (m *Malec) System() *System { return m.sys }

// New constructs the Interface matching cfg.Kind.
func New(cfg config.Config) Interface {
	switch cfg.Kind {
	case config.KindBase1:
		return NewBase1(cfg)
	case config.KindBase2:
		return NewBase2(cfg)
	case config.KindMALEC:
		return NewMalec(cfg)
	default:
		panic("core: unknown interface kind")
	}
}
