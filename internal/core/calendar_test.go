package core

import "testing"

// TestCalendarGrow exercises the ring growth path: events scheduled beyond
// the initial horizon must survive the rehoming.
func TestCalendarGrow(t *testing.T) {
	q := newCalendar(1) // 64 slots
	var now int64
	// Fill several near slots and one far beyond the horizon.
	q.schedule(now, 5, Completion{Seq: 5})
	q.schedule(now, 63, Completion{Seq: 63})
	q.schedule(now, 200, Completion{Seq: 200}) // forces grow to 256
	q.schedule(now, 1000, Completion{Seq: 1000})
	got := map[int64]uint64{}
	for now < 1001 {
		now++
		for _, c := range q.take(now) {
			got[now] = c.Seq
		}
	}
	for _, at := range []int64{5, 63, 200, 1000} {
		if got[at] != uint64(at) {
			t.Fatalf("event at cycle %d lost (got %v)", at, got)
		}
	}
}

// TestCalendarSlotReuse checks that a drained slot's backing array is
// reused without corrupting the previously returned slice within a cycle.
func TestCalendarSlotReuse(t *testing.T) {
	q := newCalendar(1)
	var now int64
	for i := 0; i < 10_000; i++ {
		now++
		due := q.take(now)
		for _, c := range due {
			if c.Seq != uint64(now) {
				t.Fatalf("cycle %d: got seq %d", now, c.Seq)
			}
		}
		// Schedule a handful of future events each cycle.
		for d := int64(1); d <= 4; d++ {
			q.schedule(now, now+d*7, Completion{Seq: uint64(now + d*7)})
		}
		// Consume duplicates: each cycle may receive several events.
		_ = due
	}
}
