package core

import (
	"testing"

	"malec/internal/config"
)

// TestCalendarGrow exercises the ring growth path: events scheduled beyond
// the initial horizon must survive the rehoming.
func TestCalendarGrow(t *testing.T) {
	q := newCalendar(1) // 64 slots
	var now int64
	// Fill several near slots and one far beyond the horizon.
	q.schedule(now, 5, Completion{Seq: 5})
	q.schedule(now, 63, Completion{Seq: 63})
	q.schedule(now, 200, Completion{Seq: 200}) // forces grow to 256
	q.schedule(now, 1000, Completion{Seq: 1000})
	got := map[int64]uint64{}
	for now < 1001 {
		now++
		for _, c := range q.take(now) {
			got[now] = c.Seq
		}
	}
	for _, at := range []int64{5, 63, 200, 1000} {
		if got[at] != uint64(at) {
			t.Fatalf("event at cycle %d lost (got %v)", at, got)
		}
	}
}

// TestCalendarSlotReuse checks that a drained slot's backing array is
// reused without corrupting the previously returned slice within a cycle.
func TestCalendarSlotReuse(t *testing.T) {
	q := newCalendar(1)
	var now int64
	for i := 0; i < 10_000; i++ {
		now++
		due := q.take(now)
		for _, c := range due {
			if c.Seq != uint64(now) {
				t.Fatalf("cycle %d: got seq %d", now, c.Seq)
			}
		}
		// Schedule a handful of future events each cycle.
		for d := int64(1); d <= 4; d++ {
			q.schedule(now, now+d*7, Completion{Seq: uint64(now + d*7)})
		}
		// Consume duplicates: each cycle may receive several events.
		_ = due
	}
}

// TestCalendarNext checks the occupancy tracking behind the cycle-skipping
// fast-forward: next must report the earliest populated slot strictly after
// now, stay correct across take and grow, and return NoWork on an empty
// calendar.
func TestCalendarNext(t *testing.T) {
	q := newCalendar(1) // 64 slots
	var now int64
	if got := q.next(now); got != NoWork {
		t.Fatalf("empty calendar: next = %d, want NoWork", got)
	}
	q.schedule(now, 40, Completion{Seq: 40})
	q.schedule(now, 12, Completion{Seq: 12})
	q.schedule(now, 12, Completion{Seq: 13})
	if got := q.next(now); got != 12 {
		t.Fatalf("next = %d, want 12", got)
	}
	if got := q.population(12); got != 2 {
		t.Fatalf("population(12) = %d, want 2", got)
	}
	// Draining the nearer slot must move the bound to the farther one.
	for now < 12 {
		now++
		q.take(now)
	}
	if got := q.next(now); got != 40 {
		t.Fatalf("after draining cycle 12: next = %d, want 40", got)
	}
	// Growth must carry occupancy: schedule beyond the horizon and verify
	// the rehomed events are still found.
	q.schedule(now, 500, Completion{Seq: 500}) // forces grow
	if got := q.next(now); got != 40 {
		t.Fatalf("after grow: next = %d, want 40", got)
	}
	for now < 40 {
		now++
		q.take(now)
	}
	if got := q.next(now); got != 500 {
		t.Fatalf("after draining cycle 40: next = %d, want 500", got)
	}
	now = 500
	q.take(now)
	if got := q.next(now); got != NoWork {
		t.Fatalf("drained calendar: next = %d, want NoWork", got)
	}
}

// TestSystemNextWorkAndSkipTo checks the System-level fold: the calendar
// bound surfaces through nextWork, SkipTo never moves backwards, and a
// skipped-over range leaves scheduled completions intact.
func TestSystemNextWorkAndSkipTo(t *testing.T) {
	s := NewSystem(config.MALEC())
	if got := s.nextWork(s.Cycle()); got != NoWork {
		t.Fatalf("idle system: nextWork = %d, want NoWork", got)
	}
	s.schedule(1, s.Cycle()+30)
	if got := s.nextWork(s.Cycle()); got != s.Cycle()+30 {
		t.Fatalf("nextWork = %d, want %d", got, s.Cycle()+30)
	}
	target := s.Cycle() + 29
	s.SkipTo(target)
	if s.Cycle() != target {
		t.Fatalf("SkipTo landed at %d, want %d", s.Cycle(), target)
	}
	s.SkipTo(target - 10) // must not rewind
	if s.Cycle() != target {
		t.Fatalf("SkipTo rewound to %d", s.Cycle())
	}
	due := s.advance()
	if len(due) != 1 || due[0].Seq != 1 {
		t.Fatalf("completion lost across skip: %v", due)
	}
	if got := s.nextWork(s.Cycle()); got != NoWork {
		t.Fatalf("drained system: nextWork = %d, want NoWork", got)
	}
}
