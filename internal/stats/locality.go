package stats

import "malec/internal/mem"

// PageLocality reproduces the Fig. 1 analysis: for each load, count how many
// consecutive later loads access the same page, allowing up to maxGap
// intermediate accesses to a different page. Observations are grouped into
// the paper's run-length buckets (1, 2, 3-4, 5-8, >8).
//
// It also measures the headline scalars of Sec. III: the fraction of loads
// directly followed by one or more loads to the same page (70% in the
// paper), and the same-line fraction (46%).
type PageLocality struct {
	// MaxGaps lists the numbers of tolerated intermediate other-page
	// accesses, one histogram per entry (the paper uses 0,1,2,3,4,8).
	MaxGaps []int

	hists   []*Histogram
	prev    mem.Addr // most recent load address
	window  int
	samples uint64

	followedSamePage uint64 // loads directly followed by a same-page load
	followedSameLine uint64 // loads directly followed by a same-line load
	prevValid        bool

	runs []runState // one open run per gap tolerance, allocated lazily
}

// Fig1Gaps are the tolerated intermediate-access counts used by Fig. 1.
var Fig1Gaps = []int{0, 1, 2, 3, 4, 8}

// Fig1RunBounds are the run-length bucket upper bounds of Fig. 1
// (1, 2, 3-4, 5-8, >8 consecutive accesses).
var Fig1RunBounds = []int{1, 2, 4, 8}

// NewPageLocality returns an analyzer for the given gap tolerances.
func NewPageLocality(maxGaps []int) *PageLocality {
	window := 0
	for _, g := range maxGaps {
		if g > window {
			window = g
		}
	}
	p := &PageLocality{MaxGaps: maxGaps, window: window}
	for range maxGaps {
		p.hists = append(p.hists, NewHistogram(Fig1RunBounds...))
	}
	return p
}

// ObserveLoad feeds the next dynamic load address to the analyzer.
//
// The implementation scans forward conceptually by scanning backwards: each
// arriving load extends the runs of earlier loads. To keep it streaming and
// O(window) per access it maintains, per gap tolerance, the state of the
// currently open run.
func (p *PageLocality) ObserveLoad(va mem.Addr) {
	if p.prevValid {
		if mem.SamePage(p.prev, va) {
			p.followedSamePage++
		}
		if mem.SameLine(p.prev, va) {
			p.followedSameLine++
		}
		p.samples++
	}
	p.prev = va
	p.prevValid = true
	for i, gap := range p.MaxGaps {
		p.extendRuns(i, gap, va)
	}
}

// runState tracks the open run for one gap tolerance.
type runState struct {
	page    mem.PageID
	length  int
	misses  int // consecutive other-page accesses seen since last same-page
	open    bool
	started bool
}

// extendRuns updates the open-run state for gap tolerance index i.
func (p *PageLocality) extendRuns(i, gap int, va mem.Addr) {
	if p.runs == nil {
		p.runs = make([]runState, len(p.MaxGaps))
	}
	r := &p.runs[i]
	page := va.Page()
	if !r.started {
		r.page, r.length, r.misses, r.open, r.started = page, 1, 0, true, true
		return
	}
	if page == r.page {
		r.length++
		r.misses = 0
		return
	}
	r.misses++
	if r.misses > gap {
		// Run closed: record its length and open a new one at this access.
		p.hists[i].Observe(r.length)
		r.page, r.length, r.misses = page, 1, 0
	}
}

// Flush closes any open runs. Call once after the trace ends.
func (p *PageLocality) Flush() {
	for i := range p.runs {
		if p.runs[i].open && p.runs[i].started {
			p.hists[i].Observe(p.runs[i].length)
			p.runs[i].started = false
		}
	}
}

// Hist returns the run-length histogram for gap tolerance index i.
func (p *PageLocality) Hist(i int) *Histogram { return p.hists[i] }

// FollowedSamePage returns the fraction of loads directly followed by a load
// to the same page (paper: 70% on average).
func (p *PageLocality) FollowedSamePage() float64 {
	if p.samples == 0 {
		return 0
	}
	return float64(p.followedSamePage) / float64(p.samples)
}

// FollowedSameLine returns the fraction of loads directly followed by a load
// to the same line (paper: 46% on average).
func (p *PageLocality) FollowedSameLine() float64 {
	if p.samples == 0 {
		return 0
	}
	return float64(p.followedSameLine) / float64(p.samples)
}

// GroupedFraction returns, for gap tolerance index i, the fraction of loads
// that belong to runs of length >= 2, i.e. the loads amenable to page-based
// grouping. Run-length weighting converts run counts to load counts.
func (p *PageLocality) GroupedFraction(i int) float64 {
	h := p.hists[i]
	buckets := h.Buckets()
	// Approximate load-weighted fraction using bucket midpoints.
	mid := []float64{1, 2, 3.5, 6.5, 12}
	var grouped, total float64
	for j, c := range buckets {
		w := mid[j] * float64(c)
		total += w
		if j > 0 {
			grouped += w
		}
	}
	if total == 0 {
		return 0
	}
	return grouped / total
}
