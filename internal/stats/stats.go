// Package stats provides the statistics primitives used by the simulator:
// named counters, histograms, locality analyzers and simple aggregate math
// (geometric means) matching how the paper reports its results.
package stats

import (
	"fmt"
	"math"
)

// Histogram is an integer-valued histogram with explicit bucket upper
// bounds. A sample x falls into the first bucket whose bound is >= x; values
// above the last bound fall into the overflow bucket.
type Histogram struct {
	bounds   []int
	counts   []uint64
	overflow uint64
	total    uint64
	sum      float64
}

// NewHistogram returns a histogram with the given ascending bucket bounds.
func NewHistogram(bounds ...int) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds))}
}

// Observe records one sample.
func (h *Histogram) Observe(x int) {
	h.total++
	h.sum += float64(x)
	for i, b := range h.bounds {
		if x <= b {
			h.counts[i]++
			return
		}
	}
	h.overflow++
}

// Total returns the number of observed samples.
func (h *Histogram) Total() uint64 { return h.total }

// Mean returns the mean of observed samples (0 if none).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Fraction returns the fraction of samples in bucket i (the overflow bucket
// is index len(bounds)).
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	if i == len(h.bounds) {
		return float64(h.overflow) / float64(h.total)
	}
	return float64(h.counts[i]) / float64(h.total)
}

// Buckets returns a copy of the per-bucket counts, with the overflow bucket
// appended.
func (h *Histogram) Buckets() []uint64 {
	out := make([]uint64, len(h.counts)+1)
	copy(out, h.counts)
	out[len(h.counts)] = h.overflow
	return out
}

// GeoMean returns the geometric mean of xs, ignoring non-positive entries.
// The paper reports per-suite and overall geometric means.
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		logSum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Ratio returns a/b, or 0 if b is zero. It keeps normalized-metric code free
// of divide-by-zero checks.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Percent renders x (a ratio) as a percentage string with one decimal.
func Percent(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
