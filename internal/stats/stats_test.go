package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"malec/internal/mem"
)

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc(CtrL1Fills)
	c.Add(CtrL1Fills, 4)
	c.Inc(CtrTLBWalks)
	if c.Get(CtrL1Fills) != 5 || c.Get(CtrTLBWalks) != 1 || c.Get(CtrSBForwards) != 0 {
		t.Fatalf("counter values wrong: fills=%d walks=%d", c.Get(CtrL1Fills), c.Get(CtrTLBWalks))
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "l1.fills" || names[1] != "tlb.walks" {
		t.Fatalf("Names() = %v", names)
	}
	other := NewCounters()
	other.Add(CtrL1Fills, 10)
	other.AddName("custom.counter", 2)
	c.Merge(other)
	if c.Get(CtrL1Fills) != 15 || c.GetName("custom.counter") != 2 {
		t.Fatal("merge failed")
	}
	if !strings.Contains(c.String(), "l1.fills") {
		t.Fatal("String() missing counter")
	}
}

func TestCountersNameAPI(t *testing.T) {
	c := NewCounters()
	// Canonical names route to the dense slot.
	c.IncName("l1.fills")
	c.AddName("l1.fills", 2)
	if c.Get(CtrL1Fills) != 3 || c.GetName("l1.fills") != 3 {
		t.Fatalf("name-keyed access out of sync: id=%d name=%d",
			c.Get(CtrL1Fills), c.GetName("l1.fills"))
	}
	// Non-canonical names land in the overflow map.
	c.IncName("weird.counter")
	if c.GetName("weird.counter") != 1 {
		t.Fatal("overflow counter lost")
	}
	if id, ok := CounterByName("l1.fills"); !ok || id != CtrL1Fills {
		t.Fatalf("CounterByName = %v, %v", id, ok)
	}
	if _, ok := CounterByName("weird.counter"); ok {
		t.Fatal("CounterByName accepted a non-canonical name")
	}
	if CtrL1Fills.Name() != "l1.fills" {
		t.Fatalf("Name() = %q", CtrL1Fills.Name())
	}
	if got := len(CounterNames()); got != int(NumCounters) {
		t.Fatalf("CounterNames() has %d entries, want %d", got, NumCounters)
	}
}

// TestCountersZeroValue is the regression test for the nil-map panic: the
// zero value (and a set decoded from JSON null) must be fully usable.
func TestCountersZeroValue(t *testing.T) {
	var c Counters
	c.Inc(CtrL1Fills)
	c.Add(CtrTLBWalks, 3)
	c.IncName("extra.one")
	c.Merge(NewCounters())
	c.Merge(nil)
	if c.Get(CtrL1Fills) != 1 || c.Get(CtrTLBWalks) != 3 || c.GetName("extra.one") != 1 {
		t.Fatal("zero-value counters lost updates")
	}

	var null Counters
	if err := json.Unmarshal([]byte("null"), &null); err != nil {
		t.Fatalf("unmarshal null: %v", err)
	}
	null.Inc(CtrSBForwards) // must not panic
	null.AddName("after.null", 2)
	if null.Get(CtrSBForwards) != 1 || null.GetName("after.null") != 2 {
		t.Fatal("counters decoded from null unusable")
	}
}

// TestCountersJSONStable pins the JSON encoding to the historical
// map-of-names form: touched counters only (even when zero), keys sorted.
func TestCountersJSONStable(t *testing.T) {
	c := NewCounters()
	c.Add(CtrMalecGroupLoads, 0) // touched at zero must still be emitted
	c.Inc(CtrL1Fills)
	c.AddName("zz.custom", 7)
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"l1.fills":1,"malec.group_loads":0,"zz.custom":7}`
	if string(data) != want {
		t.Fatalf("MarshalJSON = %s, want %s", data, want)
	}

	var back Counters
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	round, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(round) != want {
		t.Fatalf("round-trip = %s, want %s", round, want)
	}
	if back.Get(CtrL1Fills) != 1 || back.GetName("zz.custom") != 7 {
		t.Fatal("round-trip lost values")
	}

	empty := NewCounters()
	data, err = json.Marshal(empty)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{}" {
		t.Fatalf("empty MarshalJSON = %s, want {}", data)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	for _, x := range []int{1, 1, 2, 3, 4, 5, 8, 9, 100} {
		h.Observe(x)
	}
	buckets := h.Buckets()
	want := []uint64{2, 1, 2, 2, 2} // 1s, 2, {3,4}, {5,8}, overflow
	for i := range want {
		if buckets[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, buckets[i], want[i], buckets)
		}
	}
	if h.Total() != 9 {
		t.Fatalf("Total = %d", h.Total())
	}
	if got := h.Fraction(0); math.Abs(got-2.0/9) > 1e-12 {
		t.Fatalf("Fraction(0) = %v", got)
	}
	if h.Mean() == 0 {
		t.Fatal("Mean should be nonzero")
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-ascending bounds")
		}
	}()
	NewHistogram(2, 1)
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean(1,4) = %v", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean(2,2,2) = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("GeoMean(nil) = %v", got)
	}
	// Non-positive entries ignored.
	if got := GeoMean([]float64{-1, 0, 8, 2}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean with junk = %v", got)
	}
}

func TestRatioAndPercent(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio by zero should be 0")
	}
	if Ratio(3, 2) != 1.5 {
		t.Fatal("Ratio wrong")
	}
	if Percent(0.5) != "50.0%" {
		t.Fatalf("Percent = %q", Percent(0.5))
	}
}

func TestPageLocalityPerfectRun(t *testing.T) {
	pl := NewPageLocality(Fig1Gaps)
	// 100 loads to the same page: one long run.
	for i := 0; i < 100; i++ {
		pl.ObserveLoad(mem.MakeAddr(1, uint32(i*8)))
	}
	pl.Flush()
	if got := pl.FollowedSamePage(); got != 1.0 {
		t.Fatalf("FollowedSamePage = %v, want 1", got)
	}
	h := pl.Hist(0)
	if h.Buckets()[4] != 1 { // one run of length >8
		t.Fatalf("expected single >8 run, got %v", h.Buckets())
	}
	if got := pl.GroupedFraction(0); got != 1.0 {
		t.Fatalf("GroupedFraction = %v, want 1", got)
	}
}

func TestPageLocalityAlternating(t *testing.T) {
	pl := NewPageLocality(Fig1Gaps)
	// Strictly alternating pages: zero direct same-page locality, but
	// tolerating 1 gap recovers all of it.
	for i := 0; i < 200; i++ {
		pl.ObserveLoad(mem.MakeAddr(mem.PageID(i%2), uint32(i*4)%4096))
	}
	pl.Flush()
	if got := pl.FollowedSamePage(); got != 0 {
		t.Fatalf("FollowedSamePage = %v, want 0", got)
	}
	// Gap tolerance 0: all runs length 1.
	if got := pl.GroupedFraction(0); got != 0 {
		t.Fatalf("GroupedFraction(gap0) = %v, want 0", got)
	}
	// Gap tolerance 1: both pages form two long runs.
	if got := pl.GroupedFraction(1); got < 0.95 {
		t.Fatalf("GroupedFraction(gap1) = %v, want ~1", got)
	}
}

func TestPageLocalitySameLine(t *testing.T) {
	pl := NewPageLocality([]int{0})
	a := mem.MakeAddr(3, 256)
	pl.ObserveLoad(a)
	pl.ObserveLoad(a + 8) // same line
	pl.ObserveLoad(a + 8 + mem.LineSize)
	pl.Flush()
	if got := pl.FollowedSameLine(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("FollowedSameLine = %v, want 0.5", got)
	}
}

func TestPageLocalityGapClosesRuns(t *testing.T) {
	pl := NewPageLocality([]int{0, 8})
	// Page A x3, page B x1, page A x3: with gap 0 two runs of 3;
	// with gap 8 one run of 6 (B's access interleaved).
	seq := []mem.PageID{1, 1, 1, 2, 1, 1, 1}
	for i, p := range seq {
		pl.ObserveLoad(mem.MakeAddr(p, uint32(i*64)%4096))
	}
	pl.Flush()
	h0 := pl.Hist(0).Buckets()
	// runs with gap 0: [3 (A)], [1 (B)], [3 (A)] -> bucket "3-4" twice, "1" once
	if h0[0] != 1 || h0[2] != 2 {
		t.Fatalf("gap-0 buckets = %v", h0)
	}
	h8 := pl.Hist(1).Buckets()
	// with gap 8 the A-run never closes until flush: one run of 6 and B run of 1
	if h8[3] != 1 { // 5-8 bucket
		t.Fatalf("gap-8 buckets = %v", h8)
	}
}
