package stats

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Counter is a typed identifier for one of the simulator's event counters.
// The hot simulation paths increment counters through these IDs — a single
// indexed add into a dense array — instead of hashing a string per event.
// Every ID has a canonical dotted name (see Name) used for JSON encoding,
// text rendering and the name-keyed compatibility API, so the external
// representation is unchanged from the map-of-names era.
type Counter uint8

// The counter IDs, grouped by subsystem. The canonical names they encode to
// are the exact strings the simulator has always emitted.
const (
	// Issue and input buffer.
	CtrIssueLoads Counter = iota
	CtrIssueStores
	CtrIBStalls
	CtrIBCarried

	// TLB hierarchy.
	CtrUTLBLookups
	CtrTLBLookups
	CtrTLBWalks

	// L1 data cache.
	CtrL1ReducedReads
	CtrL1ConventionalReads
	CtrL1LoadMisses
	CtrL1StoreMisses
	CtrL1Fills
	CtrL1BypassedFills
	CtrL1Writebacks
	CtrL1ReducedWrites
	CtrL1ConventionalWrites
	CtrL1MSHRStalls

	// Store/merge buffer.
	CtrSBForwards
	CtrMBForwards
	CtrMBMBEWrites

	// MALEC grouping and arbitration.
	CtrMalecGroups
	CtrMalecGroupLoads
	CtrMalecMergedLoads
	CtrMalecBankConflicts

	// Host-simulator telemetry: cycle-skipping fast-forward activity.
	// These describe the simulator, not the simulated machine, and are
	// reported through Result.Telemetry rather than the per-run event
	// counters (cycle skipping never changes simulated behaviour, so the
	// semantic Result stays byte-identical whether it is on or off).
	CtrSkippedCycles
	CtrSkipJumps

	// Host-simulator telemetry: interval sampling and checkpointing
	// activity. Like the cycle-skip counters these describe the simulator
	// run, not the simulated machine, and report through Result.Telemetry.
	CtrSampledWindows
	CtrSampledWarmedRecords
	CtrCheckpointRestores
	CtrCheckpointSaves

	// NumCounters is the number of defined counter IDs (array length for
	// dense per-counter storage).
	NumCounters
)

// counterNames maps IDs to canonical names. Entries must be unique and
// non-empty for every ID below NumCounters (checked by init).
var counterNames = [NumCounters]string{
	CtrIssueLoads:  "issue.loads",
	CtrIssueStores: "issue.stores",
	CtrIBStalls:    "ib.stalls",
	CtrIBCarried:   "ib.carried",

	CtrUTLBLookups: "tlb.utlb_lookups",
	CtrTLBLookups:  "tlb.tlb_lookups",
	CtrTLBWalks:    "tlb.walks",

	CtrL1ReducedReads:       "l1.reduced_reads",
	CtrL1ConventionalReads:  "l1.conventional_reads",
	CtrL1LoadMisses:         "l1.load_misses",
	CtrL1StoreMisses:        "l1.store_misses",
	CtrL1Fills:              "l1.fills",
	CtrL1BypassedFills:      "l1.bypassed_fills",
	CtrL1Writebacks:         "l1.writebacks",
	CtrL1ReducedWrites:      "l1.reduced_writes",
	CtrL1ConventionalWrites: "l1.conventional_writes",
	CtrL1MSHRStalls:         "l1.mshr_stalls",

	CtrSBForwards:  "sb.forwards",
	CtrMBForwards:  "mb.forwards",
	CtrMBMBEWrites: "mb.mbe_writes",

	CtrMalecGroups:        "malec.groups",
	CtrMalecGroupLoads:    "malec.group_loads",
	CtrMalecMergedLoads:   "malec.merged_loads",
	CtrMalecBankConflicts: "malec.bank_conflicts",

	CtrSkippedCycles: "sim.skipped_cycles",
	CtrSkipJumps:     "sim.skip_jumps",

	CtrSampledWindows:       "sim.sampled_windows",
	CtrSampledWarmedRecords: "sim.sampled_warmed_records",
	CtrCheckpointRestores:   "sim.checkpoint_restores",
	CtrCheckpointSaves:      "sim.checkpoint_saves",
}

// counterIDs is the inverse of counterNames, for the name-keyed API and
// JSON decoding.
var counterIDs = func() map[string]Counter {
	m := make(map[string]Counter, NumCounters)
	for id := Counter(0); id < NumCounters; id++ {
		name := counterNames[id]
		if name == "" {
			panic(fmt.Sprintf("stats: counter %d has no canonical name", id))
		}
		if _, dup := m[name]; dup {
			panic("stats: duplicate counter name " + name)
		}
		m[name] = id
	}
	return m
}()

// Name returns the counter's canonical dotted name.
func (c Counter) Name() string {
	if c < NumCounters {
		return counterNames[c]
	}
	return fmt.Sprintf("stats.Counter(%d)", uint8(c))
}

// String implements fmt.Stringer.
func (c Counter) String() string { return c.Name() }

// CounterByName resolves a canonical name to its typed ID.
func CounterByName(name string) (Counter, bool) {
	id, ok := counterIDs[name]
	return id, ok
}

// CounterNames returns the canonical names of all defined counters in ID
// order.
func CounterNames() []string {
	out := make([]string, NumCounters)
	copy(out, counterNames[:])
	return out
}

// Counters is a set of monotonically increasing event counters. Counters
// identified by a typed ID live in a dense array (the simulator hot path);
// counters addressed by a non-canonical name (decoded from foreign JSON, or
// ad-hoc instrumentation) live in an overflow map.
//
// The zero value is ready to use. Distinguishing "touched" from "never
// touched" counters is preserved from the map era: only counters that were
// incremented (even by zero) appear in Names, String and the JSON encoding.
type Counters struct {
	v       [NumCounters]uint64
	touched [NumCounters]bool
	extra   map[string]uint64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{} }

// Inc increments counter id by one.
func (c *Counters) Inc(id Counter) {
	c.v[id]++
	c.touched[id] = true
}

// Add increments counter id by n.
func (c *Counters) Add(id Counter, n uint64) {
	c.v[id] += n
	c.touched[id] = true
}

// Get returns the value of counter id (zero if never touched).
func (c *Counters) Get(id Counter) uint64 { return c.v[id] }

// IncName increments the counter with the given name by one. Canonical
// names are routed to their dense slot; others to the overflow map.
func (c *Counters) IncName(name string) { c.AddName(name, 1) }

// AddName increments the counter with the given name by n.
func (c *Counters) AddName(name string, n uint64) {
	if id, ok := counterIDs[name]; ok {
		c.v[id] += n
		c.touched[id] = true
		return
	}
	if c.extra == nil {
		c.extra = make(map[string]uint64)
	}
	c.extra[name] += n
}

// GetName returns the value of the counter with the given name (zero if
// never touched).
func (c *Counters) GetName(name string) uint64 {
	if id, ok := counterIDs[name]; ok {
		return c.v[id]
	}
	return c.extra[name]
}

// Names returns the sorted names of all touched counters.
func (c *Counters) Names() []string {
	names := make([]string, 0, int(NumCounters)+len(c.extra))
	for id := Counter(0); id < NumCounters; id++ {
		if c.touched[id] {
			names = append(names, counterNames[id])
		}
	}
	for k := range c.extra {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Merge adds all touched counters from other into c. A nil other is a
// no-op.
func (c *Counters) Merge(other *Counters) {
	if other == nil {
		return
	}
	for id := Counter(0); id < NumCounters; id++ {
		if other.touched[id] {
			c.v[id] += other.v[id]
			c.touched[id] = true
		}
	}
	for k, v := range other.extra {
		if c.extra == nil {
			c.extra = make(map[string]uint64)
		}
		c.extra[k] += v
	}
}

// asMap materializes the touched counters as a name->value map.
func (c *Counters) asMap() map[string]uint64 {
	m := make(map[string]uint64, int(NumCounters)+len(c.extra))
	for id := Counter(0); id < NumCounters; id++ {
		if c.touched[id] {
			m[counterNames[id]] = c.v[id]
		}
	}
	for k, v := range c.extra {
		m[k] = v
	}
	return m
}

// MarshalJSON encodes the touched counters as a plain name->value object.
// Keys are emitted in sorted order so identical counter sets serialize to
// identical bytes, which result caching and determinism tests rely on.
func (c *Counters) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.asMap())
}

// UnmarshalJSON decodes a name->value object produced by MarshalJSON.
// Canonical names land in their dense slots; unknown names are kept in the
// overflow map so foreign counter sets round-trip. JSON null decodes to an
// empty, usable counter set.
func (c *Counters) UnmarshalJSON(data []byte) error {
	var m map[string]uint64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*c = Counters{}
	for k, v := range m {
		c.AddName(k, v)
	}
	return nil
}

// String renders the counters one per line, sorted by name.
func (c *Counters) String() string {
	var b strings.Builder
	for _, name := range c.Names() {
		fmt.Fprintf(&b, "%-40s %12d\n", name, c.GetName(name))
	}
	return b.String()
}
