package buffers

import (
	"testing"
	"testing/quick"

	"malec/internal/mem"
)

func TestSBInsertFull(t *testing.T) {
	sb := NewStoreBuffer(2)
	if !sb.Insert(1, 0x100, 8) || !sb.Insert(2, 0x200, 8) {
		t.Fatal("inserts into empty buffer failed")
	}
	if sb.Insert(3, 0x300, 8) {
		t.Fatal("insert into full buffer succeeded")
	}
	if !sb.Full() || sb.Len() != 2 {
		t.Fatalf("Full=%v Len=%d", sb.Full(), sb.Len())
	}
}

func TestSBForwardFullCover(t *testing.T) {
	sb := NewStoreBuffer(8)
	sb.Insert(1, 0x100, 8)
	full, partial := sb.Forward(0x100, 4) // inside the store
	if !full || partial {
		t.Fatalf("full=%v partial=%v, want forward", full, partial)
	}
	full, partial = sb.Forward(0x104, 8) // overlaps end
	if full || !partial {
		t.Fatalf("full=%v partial=%v, want partial", full, partial)
	}
	full, partial = sb.Forward(0x200, 8) // disjoint
	if full || partial {
		t.Fatalf("full=%v partial=%v, want miss", full, partial)
	}
	st := sb.Stats()
	if st.ForwardHits != 1 || st.PartialHits != 1 || st.Lookups != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSBCommitDrainOrder(t *testing.T) {
	sb := NewStoreBuffer(8)
	mb := NewMergeBuffer(4)
	sb.Insert(1, 0x100, 8)
	sb.Insert(2, 0x200, 8)
	// Committing the younger store first must not drain it past the
	// older one.
	sb.Commit(2)
	sb.DrainCommitted(mb)
	if sb.Len() != 2 || mb.Len() != 0 {
		t.Fatal("younger store drained before older")
	}
	sb.Commit(1)
	sb.DrainCommitted(mb)
	if sb.Len() != 0 || mb.Len() != 2 {
		t.Fatalf("drain incomplete: sb=%d mb=%d", sb.Len(), mb.Len())
	}
}

func TestSBCommitStallOnFullMB(t *testing.T) {
	sb := NewStoreBuffer(32)
	mb := NewMergeBuffer(2)
	// Fill the MB's pending backlog: capacity 2, backlog bound 2*cap.
	for i := 0; i < 8; i++ {
		seq := uint64(i + 1)
		sb.Insert(seq, mem.Addr(i*0x1000), 8)
		sb.Commit(seq)
	}
	sb.DrainCommitted(mb)
	if sb.Len() == 0 {
		t.Fatal("drain should have stalled on MB backlog")
	}
	if sb.Stats().CommitStalls == 0 {
		t.Fatal("commit stall not counted")
	}
	// Draining MBEs unblocks commits.
	for {
		if _, ok := mb.NextMBE(); !ok {
			break
		}
		mb.PopMBE()
	}
	sb.DrainCommitted(mb)
	if sb.Len() != 0 {
		t.Fatalf("drain still stalled: %d left", sb.Len())
	}
}

func TestMBMergeSameLine(t *testing.T) {
	mb := NewMergeBuffer(4)
	mb.Insert(0x100, 8)
	mb.Insert(0x108, 8) // same line
	if mb.Len() != 1 {
		t.Fatalf("same-line stores not merged: %d entries", mb.Len())
	}
	if mb.Stats().Merges != 1 {
		t.Fatal("merge not counted")
	}
	mb.Insert(0x1100, 8)
	if mb.Len() != 2 {
		t.Fatal("different line should allocate")
	}
}

func TestMBEvictionFIFO(t *testing.T) {
	mb := NewMergeBuffer(2)
	mb.Insert(0x1000, 8)
	mb.Insert(0x2000, 8)
	mb.Insert(0x3000, 8) // evicts oldest
	mbe, ok := mb.NextMBE()
	if !ok || mbe.LineVA != mem.Addr(0x1000).LineAddr() {
		t.Fatalf("MBE %v, want eviction of 0x1000's line", mbe.LineVA)
	}
	mb.PopMBE()
	if _, ok := mb.NextMBE(); ok {
		t.Fatal("extra MBE")
	}
}

func TestMBForwardNeedsFullCover(t *testing.T) {
	mb := NewMergeBuffer(4)
	mb.Insert(0x100, 8)
	if !mb.Forward(0x102, 4) {
		t.Fatal("covered load not forwarded")
	}
	if mb.Forward(0x106, 8) {
		t.Fatal("partially covered load forwarded")
	}
	mb.Insert(0x108, 8) // extend the mask
	if !mb.Forward(0x106, 8) {
		t.Fatal("load covered by two merged stores not forwarded")
	}
}

func TestMBMaskProperty(t *testing.T) {
	// A load is forwarded iff every byte it reads was stored.
	f := func(storeOff, loadOff uint8, storeSize, loadSize uint8) bool {
		so := uint32(storeOff) % 56
		lo := uint32(loadOff) % 56
		ss := storeSize%8 + 1
		ls := loadSize%8 + 1
		mb := NewMergeBuffer(4)
		base := mem.Addr(0x4000)
		mb.Insert(base+mem.Addr(so), ss)
		covered := lo >= so && lo+uint32(ls) <= so+uint32(ss)
		return mb.Forward(base+mem.Addr(lo), ls) == covered
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMBDrain(t *testing.T) {
	mb := NewMergeBuffer(4)
	mb.Insert(0x1000, 8)
	mb.Insert(0x2000, 8)
	mb.Drain()
	if mb.Len() != 0 || mb.PendingMBEs() != 2 {
		t.Fatalf("drain: live=%d pending=%d", mb.Len(), mb.PendingMBEs())
	}
}

func TestMBPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMergeBuffer(2).PopMBE()
}

func TestMBLineCrossingStoreTruncated(t *testing.T) {
	mb := NewMergeBuffer(4)
	// Store crossing a line boundary: only the in-line bytes merge.
	mb.Insert(0x103C, 16)
	if !mb.Forward(0x103C, 4) {
		t.Fatal("in-line bytes should forward")
	}
	if mb.Forward(0x1040, 4) {
		t.Fatal("bytes past the line must not forward")
	}
}

func TestLoadQueue(t *testing.T) {
	q := NewLoadQueue(2)
	if !q.TryAlloc() || !q.TryAlloc() {
		t.Fatal("alloc failed")
	}
	if q.TryAlloc() {
		t.Fatal("alloc beyond capacity")
	}
	q.Release()
	if !q.TryAlloc() {
		t.Fatal("alloc after release failed")
	}
	if q.Peak() != 2 || q.Len() != 2 {
		t.Fatalf("peak=%d len=%d", q.Peak(), q.Len())
	}
}

func TestLoadQueueUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLoadQueue(1).Release()
}
