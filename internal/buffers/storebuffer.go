// Package buffers implements the load/store-side queues of the L1
// interface: the load queue (LQ), the store buffer (SB) holding speculative
// stores until commit, and the merge buffer (MB) coalescing committed
// stores per cache line before they are written to the L1 (paper Tab. II:
// 40 LQ entries, 24 SB entries, 4 MB entries).
//
// Data values are not simulated; forwarding decisions are made from address
// ranges, which is sufficient for timing and energy accounting.
package buffers

import (
	"malec/internal/mem"
)

// SBEntry is one speculative store awaiting commit.
type SBEntry struct {
	Seq  uint64
	VA   mem.Addr
	Size uint8
	// Committed marks entries whose instruction retired and which are
	// waiting for merge-buffer space.
	Committed bool
}

// SBStats counts store-buffer activity.
type SBStats struct {
	Inserts      uint64
	Lookups      uint64 // load forwarding searches
	ForwardHits  uint64 // loads fully covered by a store
	PartialHits  uint64 // overlapping but not covering (conservatively no forward)
	CommitStalls uint64 // commits delayed by a full merge buffer
}

// StoreBuffer holds speculative stores in program order. Storage is a
// fixed ring sized to the configured capacity, so steady-state operation
// (insert at tail, drain at head) performs no allocation.
type StoreBuffer struct {
	entries []SBEntry // ring storage, len == capacity
	head    int       // index of the oldest entry
	n       int       // live entries
	stats   SBStats
}

// NewStoreBuffer returns a store buffer with the given capacity.
func NewStoreBuffer(capacity int) *StoreBuffer {
	return &StoreBuffer{entries: make([]SBEntry, capacity)}
}

// at returns the i-th live entry, oldest first.
func (b *StoreBuffer) at(i int) *SBEntry {
	return &b.entries[(b.head+i)%len(b.entries)]
}

// Len returns the current occupancy.
func (b *StoreBuffer) Len() int { return b.n }

// Full reports whether the buffer can accept no more stores.
func (b *StoreBuffer) Full() bool { return b.n >= len(b.entries) }

// HasCommittedHead reports whether the oldest store has committed and is
// waiting to drain into the merge buffer — deferred work: DrainCommitted
// will act on it (or count a commit stall) every cycle until it moves.
func (b *StoreBuffer) HasCommittedHead() bool {
	return b.n > 0 && b.entries[b.head].Committed
}

// Stats returns a copy of the activity counters.
func (b *StoreBuffer) Stats() SBStats { return b.stats }

// Insert appends a store finishing address computation. It returns false
// (structural stall) when full.
func (b *StoreBuffer) Insert(seq uint64, va mem.Addr, size uint8) bool {
	if b.Full() {
		return false
	}
	*b.at(b.n) = SBEntry{Seq: seq, VA: va, Size: size}
	b.n++
	b.stats.Inserts++
	return true
}

// Commit marks the store with sequence number seq as committed (its
// instruction retired). Committed entries drain to the merge buffer in
// order via DrainCommitted.
func (b *StoreBuffer) Commit(seq uint64) {
	for i := 0; i < b.n; i++ {
		if e := b.at(i); e.Seq == seq {
			e.Committed = true
			return
		}
	}
}

// DrainCommitted moves committed entries (in order, from the head) into the
// merge buffer while mb accepts them. Entries blocked by a full MB remain.
func (b *StoreBuffer) DrainCommitted(mb *MergeBuffer) {
	for b.n > 0 && b.entries[b.head].Committed {
		e := b.entries[b.head]
		if !mb.CanAccept(e.VA) {
			b.stats.CommitStalls++
			return
		}
		mb.Insert(e.VA, e.Size)
		b.head = (b.head + 1) % len(b.entries)
		b.n--
	}
}

// overlaps reports whether [aStart,aEnd) and [bStart,bEnd) intersect.
func overlaps(aStart, aEnd, bStart, bEnd uint64) bool {
	return aStart < bEnd && bStart < aEnd
}

// Forward checks whether a load at va/size can be serviced by a buffered
// store. It returns full=true when some single store covers the load
// completely (forwarding), and partial=true when stores overlap the load
// without covering it (the conservative model falls back to the cache).
func (b *StoreBuffer) Forward(va mem.Addr, size uint8) (full, partial bool) {
	b.stats.Lookups++
	ls, le := uint64(va.Canon()), uint64(va.Canon())+uint64(size)
	for i := b.n - 1; i >= 0; i-- {
		e := b.at(i)
		ss, se := uint64(e.VA.Canon()), uint64(e.VA.Canon())+uint64(e.Size)
		if ss <= ls && le <= se {
			b.stats.ForwardHits++
			return true, false
		}
		if overlaps(ls, le, ss, se) {
			partial = true
		}
	}
	if partial {
		b.stats.PartialHits++
	}
	return false, partial
}

// LoadQueue bounds the number of in-flight loads (allocation at dispatch,
// release at completion).
type LoadQueue struct {
	cap  int
	used int
	peak int
}

// NewLoadQueue returns a load queue with the given capacity.
func NewLoadQueue(capacity int) *LoadQueue { return &LoadQueue{cap: capacity} }

// TryAlloc claims a slot, reporting false when the queue is full.
func (q *LoadQueue) TryAlloc() bool {
	if q.used >= q.cap {
		return false
	}
	q.used++
	if q.used > q.peak {
		q.peak = q.used
	}
	return true
}

// Release frees a slot.
func (q *LoadQueue) Release() {
	if q.used == 0 {
		panic("buffers: LoadQueue release underflow")
	}
	q.used--
}

// Len returns current occupancy; Peak the high-water mark.
func (q *LoadQueue) Len() int { return q.used }

// Peak returns the maximum occupancy observed.
func (q *LoadQueue) Peak() int { return q.peak }
