package buffers

import "malec/internal/mem"

// MBE is an evicted merge-buffer entry on its way to the L1: a line-aligned
// virtual address plus the byte mask to be written.
type MBE struct {
	LineVA mem.Addr
	Mask   uint64 // one bit per byte of the 64 byte line
}

// MBStats counts merge-buffer activity.
type MBStats struct {
	Inserts   uint64 // stores entering the MB
	Merges    uint64 // stores coalesced into an existing entry
	Evictions uint64 // MBEs produced (eventual L1 writes)
	Lookups   uint64 // load forwarding searches
	Forwards  uint64
}

// MergeBuffer coalesces committed stores per cache line. When a store to a
// new line arrives while the buffer is full, the oldest entry is evicted as
// an MBE (FIFO), which the L1 interface writes back when it wins access.
type MergeBuffer struct {
	cap     int
	entries []mbEntry // FIFO order: index 0 is oldest
	pending []MBE     // evicted entries awaiting L1 write
	stats   MBStats
}

type mbEntry struct {
	lineVA mem.Addr
	mask   uint64
}

// NewMergeBuffer returns a merge buffer with the given capacity (4 in the
// paper).
func NewMergeBuffer(capacity int) *MergeBuffer { return &MergeBuffer{cap: capacity} }

// Len returns the number of live entries.
func (b *MergeBuffer) Len() int { return len(b.entries) }

// PendingMBEs returns the number of evicted entries awaiting L1 writes.
func (b *MergeBuffer) PendingMBEs() int { return len(b.pending) }

// Stats returns a copy of the activity counters.
func (b *MergeBuffer) Stats() MBStats { return b.stats }

// CanAccept reports whether a store to va can enter without overflowing the
// pending-MBE backlog. A store merging into an existing line always fits;
// a new line fits if there is a free entry or an eviction slot (bounded
// backlog keeps the model finite).
func (b *MergeBuffer) CanAccept(va mem.Addr) bool {
	line := va.LineAddr()
	for i := range b.entries {
		if b.entries[i].lineVA == line {
			return true
		}
	}
	return len(b.pending) < 2*b.cap
}

// mask returns the byte mask of an access within its line.
func maskFor(va mem.Addr, size uint8) uint64 {
	off := va.LineOffset()
	n := uint32(size)
	if off+n > mem.LineSize {
		n = mem.LineSize - off // truncate line-crossing stores (rare)
	}
	var m uint64
	for i := uint32(0); i < n; i++ {
		m |= 1 << (off + i)
	}
	return m
}

// Insert coalesces a committed store. Callers must check CanAccept first.
func (b *MergeBuffer) Insert(va mem.Addr, size uint8) {
	b.stats.Inserts++
	line := va.LineAddr()
	m := maskFor(va, size)
	for i := range b.entries {
		if b.entries[i].lineVA == line {
			b.entries[i].mask |= m
			b.stats.Merges++
			return
		}
	}
	if len(b.entries) >= b.cap {
		b.evictOldest()
	}
	b.entries = append(b.entries, mbEntry{lineVA: line, mask: m})
}

// evictOldest turns the oldest entry into a pending MBE.
func (b *MergeBuffer) evictOldest() {
	e := b.entries[0]
	b.entries = b.entries[1:]
	b.pending = append(b.pending, MBE{LineVA: e.lineVA, Mask: e.mask})
	b.stats.Evictions++
}

// NextMBE returns the oldest pending MBE without removing it.
func (b *MergeBuffer) NextMBE() (MBE, bool) {
	if len(b.pending) == 0 {
		return MBE{}, false
	}
	return b.pending[0], true
}

// PopMBE removes the oldest pending MBE after the L1 write completed.
func (b *MergeBuffer) PopMBE() {
	if len(b.pending) == 0 {
		panic("buffers: PopMBE on empty backlog")
	}
	b.pending = b.pending[1:]
}

// Forward checks whether a load at va/size is fully covered by merged store
// bytes (MB forwarding).
func (b *MergeBuffer) Forward(va mem.Addr, size uint8) bool {
	b.stats.Lookups++
	line := va.LineAddr()
	need := maskFor(va, size)
	for i := range b.entries {
		if b.entries[i].lineVA == line && b.entries[i].mask&need == need {
			b.stats.Forwards++
			return true
		}
	}
	return false
}

// Drain evicts all live entries into the pending backlog (used at end of
// simulation).
func (b *MergeBuffer) Drain() {
	for len(b.entries) > 0 {
		b.evictOldest()
	}
}
