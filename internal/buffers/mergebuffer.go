package buffers

import "malec/internal/mem"

// MBE is an evicted merge-buffer entry on its way to the L1: a line-aligned
// virtual address plus the byte mask to be written.
type MBE struct {
	LineVA mem.Addr
	Mask   uint64 // one bit per byte of the 64 byte line
}

// MBStats counts merge-buffer activity.
type MBStats struct {
	Inserts   uint64 // stores entering the MB
	Merges    uint64 // stores coalesced into an existing entry
	Evictions uint64 // MBEs produced (eventual L1 writes)
	Lookups   uint64 // load forwarding searches
	Forwards  uint64
}

// MergeBuffer coalesces committed stores per cache line. When a store to a
// new line arrives while the buffer is full, the oldest entry is evicted as
// an MBE (FIFO), which the L1 interface writes back when it wins access.
//
// Both the live entries and the pending-MBE backlog are fixed rings: the
// backlog is bounded by CanAccept at 2x capacity during simulation, plus up
// to capacity more from the end-of-run Drain, so neither ever allocates
// after construction.
type MergeBuffer struct {
	cap     int
	entries []mbEntry // ring of live entries; eHead is the oldest
	eHead   int
	eN      int
	pending []MBE // ring of evicted entries awaiting L1 write
	pHead   int
	pN      int
	stats   MBStats
}

type mbEntry struct {
	lineVA mem.Addr
	mask   uint64
}

// NewMergeBuffer returns a merge buffer with the given capacity (4 in the
// paper).
func NewMergeBuffer(capacity int) *MergeBuffer {
	return &MergeBuffer{
		cap:     capacity,
		entries: make([]mbEntry, capacity),
		pending: make([]MBE, 3*capacity),
	}
}

// entryAt returns the i-th live entry, oldest first.
func (b *MergeBuffer) entryAt(i int) *mbEntry {
	return &b.entries[(b.eHead+i)%len(b.entries)]
}

// Len returns the number of live entries.
func (b *MergeBuffer) Len() int { return b.eN }

// PendingMBEs returns the number of evicted entries awaiting L1 writes.
func (b *MergeBuffer) PendingMBEs() int { return b.pN }

// HasDeferredWork reports whether evicted MBEs are awaiting their L1
// writes. Live (still mergeable) entries are not deferred work: they leave
// the buffer only in response to new stores or an explicit Drain, never by
// the passage of cycles.
func (b *MergeBuffer) HasDeferredWork() bool { return b.pN > 0 }

// Stats returns a copy of the activity counters.
func (b *MergeBuffer) Stats() MBStats { return b.stats }

// CanAccept reports whether a store to va can enter without overflowing the
// pending-MBE backlog. A store merging into an existing line always fits;
// a new line fits if there is a free entry or an eviction slot (bounded
// backlog keeps the model finite).
func (b *MergeBuffer) CanAccept(va mem.Addr) bool {
	line := va.LineAddr()
	for i := 0; i < b.eN; i++ {
		if b.entryAt(i).lineVA == line {
			return true
		}
	}
	return b.pN < 2*b.cap
}

// mask returns the byte mask of an access within its line.
func maskFor(va mem.Addr, size uint8) uint64 {
	off := va.LineOffset()
	n := uint32(size)
	if off+n > mem.LineSize {
		n = mem.LineSize - off // truncate line-crossing stores (rare)
	}
	return ((uint64(1) << n) - 1) << off
}

// Insert coalesces a committed store. Callers must check CanAccept first.
func (b *MergeBuffer) Insert(va mem.Addr, size uint8) {
	b.stats.Inserts++
	line := va.LineAddr()
	m := maskFor(va, size)
	for i := 0; i < b.eN; i++ {
		if e := b.entryAt(i); e.lineVA == line {
			e.mask |= m
			b.stats.Merges++
			return
		}
	}
	if b.eN >= b.cap {
		b.evictOldest()
	}
	*b.entryAt(b.eN) = mbEntry{lineVA: line, mask: m}
	b.eN++
}

// evictOldest turns the oldest entry into a pending MBE.
func (b *MergeBuffer) evictOldest() {
	if b.pN >= len(b.pending) {
		panic("buffers: MBE backlog overflow (CanAccept not honored)")
	}
	e := b.entries[b.eHead]
	b.eHead = (b.eHead + 1) % len(b.entries)
	b.eN--
	b.pending[(b.pHead+b.pN)%len(b.pending)] = MBE{LineVA: e.lineVA, Mask: e.mask}
	b.pN++
	b.stats.Evictions++
}

// NextMBE returns the oldest pending MBE without removing it.
func (b *MergeBuffer) NextMBE() (MBE, bool) {
	if b.pN == 0 {
		return MBE{}, false
	}
	return b.pending[b.pHead], true
}

// PopMBE removes the oldest pending MBE after the L1 write completed.
func (b *MergeBuffer) PopMBE() {
	if b.pN == 0 {
		panic("buffers: PopMBE on empty backlog")
	}
	b.pHead = (b.pHead + 1) % len(b.pending)
	b.pN--
}

// Forward checks whether a load at va/size is fully covered by merged store
// bytes (MB forwarding).
func (b *MergeBuffer) Forward(va mem.Addr, size uint8) bool {
	b.stats.Lookups++
	line := va.LineAddr()
	need := maskFor(va, size)
	for i := 0; i < b.eN; i++ {
		if e := b.entryAt(i); e.lineVA == line && e.mask&need == need {
			b.stats.Forwards++
			return true
		}
	}
	return false
}

// Drain evicts all live entries into the pending backlog (used at end of
// simulation).
func (b *MergeBuffer) Drain() {
	for b.eN > 0 {
		b.evictOldest()
	}
}
