package waytable

import (
	"math/bits"

	"malec/internal/mem"
)

// Store is the way-information storage interface shared by the full Table
// and the SegmentedTable, letting the PageSystem run on either. The paper
// suggests segmentation as an extension for wide pages (Sec. VI-D): "the WT
// itself might be segmented. By allocating and replacing WT chunks in a
// FIFO or LRU manner, their number could be smaller than required to
// represent full pages."
type Store interface {
	Size() int
	Reset(idx int, page mem.PageID)
	InvalidateSlot(idx int)
	SlotFor(p mem.PageID) int
	PageAt(idx int) (mem.PageID, bool)
	Read(idx int, lineInPage uint32) (way int, known bool)
	Peek(idx int, lineInPage uint32) (way int, known bool)
	SetLine(idx int, lineInPage uint32, way int)
	InvalidateLine(idx int, lineInPage uint32)
	// CopyFrom transfers the full way information for dstIdx from slot
	// srcIdx of src (uWT<->WT synchronization).
	CopyFrom(dstIdx int, src Store, srcIdx int)
	// StorageBits returns the table's total storage cost in bits (for
	// the area/leakage comparison against full tables).
	StorageBits() int
}

// Table implements Store; CopyFrom generalizes CopySlot to any Store.
func (t *Table) CopyFrom(dstIdx int, src Store, srcIdx int) {
	if st, ok := src.(*Table); ok {
		t.CopySlot(dstIdx, st, srcIdx)
		return
	}
	page, valid := src.PageAt(srcIdx)
	if !valid {
		t.InvalidateSlot(dstIdx)
		return
	}
	t.Reset(dstIdx, page)
	for l := uint32(0); l < mem.LinesPerPage; l++ {
		if way, known := src.Peek(srcIdx, l); known {
			t.entries[dstIdx].Set(l, way)
		}
	}
	t.stats.EntryTransfers++
}

// StorageBits implements Store for the full table.
func (t *Table) StorageBits() int { return len(t.entries) * BitsPerEntry }

// segChunk is one shared pool chunk covering chunkLines lines of one page;
// its line codes live packed in the table-wide codes slab.
type segChunk struct {
	owner int32  // slot index owning the chunk, -1 when free
	part  uint32 // which chunk of the page (lineInPage / chunkLines)
}

// SegmentedTable is a way table whose line codes live in a shared pool of
// fixed-size chunks, allocated on demand and replaced FIFO. With fewer pool
// chunks than slots*chunksPerPage it trades coverage for area — the
// trade-off the paper proposes for wide pages.
//
// The host-side representation is scan-free: line codes are packed into one
// flat slab (chunk i owns codes[i*chunkLines : (i+1)*chunkLines]), the
// (slot, part) -> chunk association is a direct-mapped table consulted by
// Read/Peek/SetLine instead of a pool scan, free chunks come from a bitmap
// whose lowest set bit reproduces the scan's first-free choice, and SlotFor
// goes through a page->slot hash index (scan kept behind SetIndexed(false)
// as the differential reference). Allocation and replacement decisions are
// identical to the scanning implementation.
type SegmentedTable struct {
	name         string
	chunkLines   int
	partsPerPage int
	slots        []segSlot
	pool         []segChunk
	codes        []uint8  // packed line codes, chunkLines per pool chunk
	chunkOf      []int32  // slot*partsPerPage+part -> pool chunk, -1 absent
	freeMask     []uint64 // bit set = pool chunk free
	freeCount    int
	fifo         int
	stats        TableStats

	useIndex bool
	idx      *mem.SlotIndex // page bucket chains over valid slots
}

type segSlot struct {
	page  mem.PageID
	valid bool
}

// NewSegmentedTable returns a segmented table with size slots, chunks of
// chunkLines lines, and poolChunks shared chunks.
func NewSegmentedTable(name string, size, chunkLines, poolChunks int) *SegmentedTable {
	if mem.LinesPerPage%chunkLines != 0 {
		panic("waytable: chunkLines must divide lines per page")
	}
	t := &SegmentedTable{
		name:         name,
		chunkLines:   chunkLines,
		partsPerPage: mem.LinesPerPage / chunkLines,
		slots:        make([]segSlot, size),
		pool:         make([]segChunk, poolChunks),
		codes:        make([]uint8, poolChunks*chunkLines),
		freeMask:     make([]uint64, (poolChunks+63)/64),
		freeCount:    poolChunks,
		useIndex:     true,
		idx:          mem.NewSlotIndex(size),
	}
	t.chunkOf = make([]int32, size*t.partsPerPage)
	for i := range t.chunkOf {
		t.chunkOf[i] = -1
	}
	for i := range t.pool {
		t.pool[i] = segChunk{owner: -1}
		t.freeMask[i>>6] |= 1 << uint(i&63)
	}
	return t
}

// SetIndexed selects between the indexed (default) and scan SlotFor paths.
func (t *SegmentedTable) SetIndexed(on bool) { t.useIndex = on }

// Size implements Store.
func (t *SegmentedTable) Size() int { return len(t.slots) }

// Stats returns the activity counters.
func (t *SegmentedTable) Stats() TableStats { return t.stats }

// StorageBits implements Store: pool codes plus per-chunk owner/part tags.
func (t *SegmentedTable) StorageBits() int {
	tagBits := 8 + 3 // owner id + part id, generous
	return len(t.pool) * (2*t.chunkLines + tagBits)
}

// Reset implements Store: claims the slot and frees its old chunks.
func (t *SegmentedTable) Reset(idx int, page mem.PageID) {
	t.freeChunks(idx)
	t.setSlot(idx, page, true)
	t.stats.Resets++
}

// InvalidateSlot implements Store.
func (t *SegmentedTable) InvalidateSlot(idx int) {
	t.freeChunks(idx)
	t.setSlot(idx, t.slots[idx].page, false)
}

// setSlot updates slot idx's page/valid state, keeping the chain index in
// sync; duplicate pages coexist in a chain and SlotFor resolves to the
// lowest slot, matching the scan.
func (t *SegmentedTable) setSlot(idx int, page mem.PageID, valid bool) {
	if t.slots[idx].valid {
		t.idx.Remove(uint32(t.slots[idx].page), int32(idx))
	}
	t.slots[idx] = segSlot{page: page, valid: valid}
	if valid {
		t.idx.Add(uint32(page), int32(idx))
	}
}

// freeChunks releases every pool chunk owned by slot idx, found through
// the slot's direct-mapped chunk table rather than a pool scan.
func (t *SegmentedTable) freeChunks(idx int) {
	base := idx * t.partsPerPage
	for part := 0; part < t.partsPerPage; part++ {
		if c := t.chunkOf[base+part]; c >= 0 {
			t.release(int(c))
			t.chunkOf[base+part] = -1
		}
	}
}

// release returns pool chunk c to the free set.
func (t *SegmentedTable) release(c int) {
	t.pool[c].owner = -1
	t.freeMask[c>>6] |= 1 << uint(c&63)
	t.freeCount++
}

// SlotFor implements Store.
func (t *SegmentedTable) SlotFor(p mem.PageID) int {
	if t.useIndex {
		best := int32(-1)
		for i := t.idx.First(uint32(p)); i >= 0; i = t.idx.Next(i) {
			if t.slots[i].page == p && (best < 0 || i < best) {
				best = i
			}
		}
		return int(best)
	}
	for i := range t.slots {
		if t.slots[i].valid && t.slots[i].page == p {
			return i
		}
	}
	return -1
}

// PageAt implements Store.
func (t *SegmentedTable) PageAt(idx int) (mem.PageID, bool) {
	return t.slots[idx].page, t.slots[idx].valid
}

// chunkFor finds the pool chunk for (slot, part), or -1, through the
// direct-mapped association table.
func (t *SegmentedTable) chunkFor(idx int, part uint32) int {
	return int(t.chunkOf[idx*t.partsPerPage+int(part)])
}

// allocChunk claims a pool chunk for (slot, part): the lowest-numbered free
// chunk if any (the choice the free scan used to make), FIFO-replacing
// otherwise.
func (t *SegmentedTable) allocChunk(idx int, part uint32) int {
	if t.freeCount > 0 {
		for w, word := range t.freeMask {
			if word != 0 {
				c := w<<6 + bits.TrailingZeros64(word)
				t.claim(c, idx, part)
				return c
			}
		}
	}
	victim := t.fifo
	t.fifo = (t.fifo + 1) % len(t.pool)
	t.claim(victim, idx, part)
	return victim
}

// claim resets chunk i for a new owner, detaching any previous owner's
// association and clearing the chunk's packed codes.
func (t *SegmentedTable) claim(i, idx int, part uint32) {
	if old := t.pool[i].owner; old >= 0 {
		t.chunkOf[int(old)*t.partsPerPage+int(t.pool[i].part)] = -1
	} else {
		t.freeMask[i>>6] &^= 1 << uint(i&63)
		t.freeCount--
	}
	t.pool[i].owner = int32(idx)
	t.pool[i].part = part
	t.chunkOf[idx*t.partsPerPage+int(part)] = int32(i)
	codes := t.codes[i*t.chunkLines : (i+1)*t.chunkLines]
	for j := range codes {
		codes[j] = codeUnknown
	}
}

// Read implements Store.
func (t *SegmentedTable) Read(idx int, lineInPage uint32) (way int, known bool) {
	t.stats.Reads++
	return t.Peek(idx, lineInPage)
}

// Peek implements Store.
func (t *SegmentedTable) Peek(idx int, lineInPage uint32) (way int, known bool) {
	if !t.slots[idx].valid {
		return -1, false
	}
	part := lineInPage / uint32(t.chunkLines)
	c := t.chunkFor(idx, part)
	if c < 0 {
		return -1, false
	}
	return decode(lineInPage, t.codes[c*t.chunkLines+int(lineInPage)%t.chunkLines])
}

// SetLine implements Store, allocating the chunk on demand.
func (t *SegmentedTable) SetLine(idx int, lineInPage uint32, way int) {
	if !t.slots[idx].valid {
		return
	}
	part := lineInPage / uint32(t.chunkLines)
	c := t.chunkFor(idx, part)
	if c < 0 {
		c = t.allocChunk(idx, part)
	}
	t.codes[c*t.chunkLines+int(lineInPage)%t.chunkLines] = encode(lineInPage, way)
	t.stats.LineUpdates++
}

// InvalidateLine implements Store. Absent chunks stay absent (unknown).
func (t *SegmentedTable) InvalidateLine(idx int, lineInPage uint32) {
	if !t.slots[idx].valid {
		return
	}
	part := lineInPage / uint32(t.chunkLines)
	if c := t.chunkFor(idx, part); c >= 0 {
		t.codes[c*t.chunkLines+int(lineInPage)%t.chunkLines] = codeUnknown
		t.stats.LineUpdates++
	}
}

// CopyFrom implements Store: reconstructs the source slot's known lines,
// allocating chunks as needed.
func (t *SegmentedTable) CopyFrom(dstIdx int, src Store, srcIdx int) {
	page, valid := src.PageAt(srcIdx)
	if !valid {
		t.InvalidateSlot(dstIdx)
		return
	}
	t.Reset(dstIdx, page)
	for l := uint32(0); l < mem.LinesPerPage; l++ {
		if way, known := src.Peek(srcIdx, l); known {
			t.SetLine(dstIdx, l, way)
		}
	}
	t.stats.EntryTransfers++
}
