package waytable

import "malec/internal/mem"

// Store is the way-information storage interface shared by the full Table
// and the SegmentedTable, letting the PageSystem run on either. The paper
// suggests segmentation as an extension for wide pages (Sec. VI-D): "the WT
// itself might be segmented. By allocating and replacing WT chunks in a
// FIFO or LRU manner, their number could be smaller than required to
// represent full pages."
type Store interface {
	Size() int
	Reset(idx int, page mem.PageID)
	InvalidateSlot(idx int)
	SlotFor(p mem.PageID) int
	PageAt(idx int) (mem.PageID, bool)
	Read(idx int, lineInPage uint32) (way int, known bool)
	Peek(idx int, lineInPage uint32) (way int, known bool)
	SetLine(idx int, lineInPage uint32, way int)
	InvalidateLine(idx int, lineInPage uint32)
	// CopyFrom transfers the full way information for dstIdx from slot
	// srcIdx of src (uWT<->WT synchronization).
	CopyFrom(dstIdx int, src Store, srcIdx int)
	// StorageBits returns the table's total storage cost in bits (for
	// the area/leakage comparison against full tables).
	StorageBits() int
}

// Table implements Store; CopyFrom generalizes CopySlot to any Store.
func (t *Table) CopyFrom(dstIdx int, src Store, srcIdx int) {
	if st, ok := src.(*Table); ok {
		t.CopySlot(dstIdx, st, srcIdx)
		return
	}
	page, valid := src.PageAt(srcIdx)
	if !valid {
		t.InvalidateSlot(dstIdx)
		return
	}
	t.Reset(dstIdx, page)
	for l := uint32(0); l < mem.LinesPerPage; l++ {
		if way, known := src.Peek(srcIdx, l); known {
			t.entries[dstIdx].Set(l, way)
		}
	}
	t.stats.EntryTransfers++
}

// StorageBits implements Store for the full table.
func (t *Table) StorageBits() int { return len(t.entries) * BitsPerEntry }

// segChunk is one shared pool chunk covering chunkLines lines of one page.
type segChunk struct {
	owner int    // slot index owning the chunk, -1 when free
	part  uint32 // which chunk of the page (lineInPage / chunkLines)
	codes []uint8
}

// SegmentedTable is a way table whose line codes live in a shared pool of
// fixed-size chunks, allocated on demand and replaced FIFO. With fewer pool
// chunks than slots*chunksPerPage it trades coverage for area — the
// trade-off the paper proposes for wide pages.
type SegmentedTable struct {
	name       string
	chunkLines int
	slots      []segSlot
	pool       []segChunk
	fifo       int
	stats      TableStats
}

type segSlot struct {
	page  mem.PageID
	valid bool
}

// NewSegmentedTable returns a segmented table with size slots, chunks of
// chunkLines lines, and poolChunks shared chunks.
func NewSegmentedTable(name string, size, chunkLines, poolChunks int) *SegmentedTable {
	if mem.LinesPerPage%chunkLines != 0 {
		panic("waytable: chunkLines must divide lines per page")
	}
	t := &SegmentedTable{name: name, chunkLines: chunkLines,
		slots: make([]segSlot, size), pool: make([]segChunk, poolChunks)}
	for i := range t.pool {
		t.pool[i] = segChunk{owner: -1, codes: make([]uint8, chunkLines)}
	}
	return t
}

// Size implements Store.
func (t *SegmentedTable) Size() int { return len(t.slots) }

// Stats returns the activity counters.
func (t *SegmentedTable) Stats() TableStats { return t.stats }

// StorageBits implements Store: pool codes plus per-chunk owner/part tags.
func (t *SegmentedTable) StorageBits() int {
	tagBits := 8 + 3 // owner id + part id, generous
	return len(t.pool) * (2*t.chunkLines + tagBits)
}

// Reset implements Store: claims the slot and frees its old chunks.
func (t *SegmentedTable) Reset(idx int, page mem.PageID) {
	t.freeChunks(idx)
	t.slots[idx] = segSlot{page: page, valid: true}
	t.stats.Resets++
}

// InvalidateSlot implements Store.
func (t *SegmentedTable) InvalidateSlot(idx int) {
	t.freeChunks(idx)
	t.slots[idx].valid = false
}

// freeChunks releases every pool chunk owned by slot idx.
func (t *SegmentedTable) freeChunks(idx int) {
	for i := range t.pool {
		if t.pool[i].owner == idx {
			t.pool[i].owner = -1
		}
	}
}

// SlotFor implements Store.
func (t *SegmentedTable) SlotFor(p mem.PageID) int {
	for i := range t.slots {
		if t.slots[i].valid && t.slots[i].page == p {
			return i
		}
	}
	return -1
}

// PageAt implements Store.
func (t *SegmentedTable) PageAt(idx int) (mem.PageID, bool) {
	return t.slots[idx].page, t.slots[idx].valid
}

// chunkFor finds the pool chunk for (slot, part), or -1.
func (t *SegmentedTable) chunkFor(idx int, part uint32) int {
	for i := range t.pool {
		if t.pool[i].owner == idx && t.pool[i].part == part {
			return i
		}
	}
	return -1
}

// allocChunk claims a pool chunk for (slot, part), FIFO-replacing.
func (t *SegmentedTable) allocChunk(idx int, part uint32) int {
	for i := range t.pool {
		if t.pool[i].owner == -1 {
			t.claim(i, idx, part)
			return i
		}
	}
	victim := t.fifo
	t.fifo = (t.fifo + 1) % len(t.pool)
	t.claim(victim, idx, part)
	return victim
}

// claim resets a chunk for a new owner.
func (t *SegmentedTable) claim(i, idx int, part uint32) {
	t.pool[i].owner = idx
	t.pool[i].part = part
	for j := range t.pool[i].codes {
		t.pool[i].codes[j] = codeUnknown
	}
}

// Read implements Store.
func (t *SegmentedTable) Read(idx int, lineInPage uint32) (way int, known bool) {
	t.stats.Reads++
	return t.Peek(idx, lineInPage)
}

// Peek implements Store.
func (t *SegmentedTable) Peek(idx int, lineInPage uint32) (way int, known bool) {
	if !t.slots[idx].valid {
		return -1, false
	}
	part := lineInPage / uint32(t.chunkLines)
	c := t.chunkFor(idx, part)
	if c < 0 {
		return -1, false
	}
	return decode(lineInPage, t.pool[c].codes[lineInPage%uint32(t.chunkLines)])
}

// SetLine implements Store, allocating the chunk on demand.
func (t *SegmentedTable) SetLine(idx int, lineInPage uint32, way int) {
	if !t.slots[idx].valid {
		return
	}
	part := lineInPage / uint32(t.chunkLines)
	c := t.chunkFor(idx, part)
	if c < 0 {
		c = t.allocChunk(idx, part)
	}
	t.pool[c].codes[lineInPage%uint32(t.chunkLines)] = encode(lineInPage, way)
	t.stats.LineUpdates++
}

// InvalidateLine implements Store. Absent chunks stay absent (unknown).
func (t *SegmentedTable) InvalidateLine(idx int, lineInPage uint32) {
	if !t.slots[idx].valid {
		return
	}
	part := lineInPage / uint32(t.chunkLines)
	if c := t.chunkFor(idx, part); c >= 0 {
		t.pool[c].codes[lineInPage%uint32(t.chunkLines)] = codeUnknown
		t.stats.LineUpdates++
	}
}

// CopyFrom implements Store: reconstructs the source slot's known lines,
// allocating chunks as needed.
func (t *SegmentedTable) CopyFrom(dstIdx int, src Store, srcIdx int) {
	page, valid := src.PageAt(srcIdx)
	if !valid {
		t.InvalidateSlot(dstIdx)
		return
	}
	t.Reset(dstIdx, page)
	for l := uint32(0); l < mem.LinesPerPage; l++ {
		if way, known := src.Peek(srcIdx, l); known {
			t.SetLine(dstIdx, l, way)
		}
	}
	t.stats.EntryTransfers++
}
