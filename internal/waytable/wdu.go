package waytable

import "malec/internal/mem"

// WDUStats counts WDU activity for the energy model. Unlike the lookup-free
// WT (indexed by the TLB hit), each WDU port performs a fully-associative
// tag-sized search.
type WDUStats struct {
	PortLookups uint64 // associative lookups across all ports
	Hits        uint64
	Updates     uint64
	Evictions   uint64
}

// WDU adapts Nicolaescu et al.'s Way Determination Unit for the comparison
// of Sec. VI-C: a small fully-associative buffer mapping recently accessed
// line addresses to their way, extended with validity bits so hits may use
// reduced (tag-bypassing) cache accesses like the WT scheme. Supporting the
// four-parallel-load MALEC configuration requires Ports associative lookup
// ports, which is what makes it energy-hungrier than the WT despite its
// small size.
type WDU struct {
	// Ports is the number of lookup ports (4 for the MALEC config).
	Ports int

	entries []wduEntry
	clock   uint64
	stats   WDUStats

	known uint64
	total uint64
}

type wduEntry struct {
	line  mem.Addr
	way   int8
	valid bool
	stamp uint64
}

// NewWDU returns a WDU with size entries (8, 16 or 32 in the paper) and
// ports lookup ports.
func NewWDU(size, ports int) *WDU {
	return &WDU{Ports: ports, entries: make([]wduEntry, size)}
}

// Size returns the number of entries.
func (w *WDU) Size() int { return len(w.entries) }

// Stats returns a copy of the activity counters.
func (w *WDU) Stats() WDUStats { return w.stats }

// Lookup implements Determiner. Each lookup consumes one associative port
// search.
func (w *WDU) Lookup(pline mem.Addr, _ int) (way int, known bool) {
	w.total++
	w.stats.PortLookups++
	target := pline.LineAddr()
	for i := range w.entries {
		if w.entries[i].valid && w.entries[i].line == target {
			w.clock++
			w.entries[i].stamp = w.clock
			w.stats.Hits++
			w.known++
			return int(w.entries[i].way), true
		}
	}
	return -1, false
}

// Feedback implements Determiner: observed ways of conventional hits are
// inserted (the WDU's learning path).
func (w *WDU) Feedback(pline mem.Addr, _ int, way int) {
	w.insert(pline.LineAddr(), way)
}

// OnFill mirrors the L1 fill hook so freshly filled lines are known.
func (w *WDU) OnFill(pline mem.Addr, _, way int) { w.insert(pline.LineAddr(), way) }

// OnEvict invalidates the entry for an evicted line (validity-bit
// extension enabling reduced accesses).
func (w *WDU) OnEvict(pline mem.Addr, _, _ int) {
	target := pline.LineAddr()
	for i := range w.entries {
		if w.entries[i].valid && w.entries[i].line == target {
			w.entries[i].valid = false
			return
		}
	}
}

// insert places or refreshes a line->way mapping, evicting LRU.
func (w *WDU) insert(line mem.Addr, way int) {
	w.stats.Updates++
	w.clock++
	victim := 0
	for i := range w.entries {
		if w.entries[i].valid && w.entries[i].line == line {
			w.entries[i].way = int8(way)
			w.entries[i].stamp = w.clock
			return
		}
		if !w.entries[i].valid {
			victim = i
		} else if w.entries[victim].valid && w.entries[i].stamp < w.entries[victim].stamp {
			victim = i
		}
	}
	if w.entries[victim].valid {
		w.stats.Evictions++
	}
	w.entries[victim] = wduEntry{line: line, way: int8(way), valid: true, stamp: w.clock}
}

// Coverage implements Determiner.
func (w *WDU) Coverage() (known, total uint64) { return w.known, w.total }
