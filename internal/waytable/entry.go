// Package waytable implements Page-Based Way Determination (Sec. V): way
// tables (WT) coupled to the TLB and micro way tables (uWT) coupled to the
// uTLB, holding per-line validity+way codes for every line of a page; the
// last-entry feedback update mechanism; and, for the Sec. VI-C comparison,
// an adaptation of Nicolaescu et al.'s Way Determination Unit (WDU)
// extended with validity bits.
package waytable

import "malec/internal/mem"

// codeUnknown is the 2 bit code meaning "way unknown / invalid".
const codeUnknown = 0

// Entry is one way-table entry: a 2 bit validity+way code for each of the
// 64 lines of a page. The paper packs this into 128 bits (vs 192 for naive
// separate valid+way fields) by excluding one way per line from the
// encoding: way (l/4) mod 4 is deemed "way unknown" for line l, so codes
// 1..3 name the three remaining ways.
type Entry struct {
	codes [mem.LinesPerPage]uint8
}

// BitsPerEntry is the storage cost of one entry in bits (for the energy
// and area model).
const BitsPerEntry = 2 * mem.LinesPerPage // 128

// encode maps a way to the 2 bit code for a line, or codeUnknown if the way
// is the line's excluded way (not representable).
func encode(lineInPage uint32, way int) uint8 {
	excluded := mem.ExcludedWayForLine(lineInPage)
	if way == excluded {
		return codeUnknown
	}
	code := uint8(1)
	for w := 0; w < mem.L1Ways; w++ {
		if w == excluded {
			continue
		}
		if w == way {
			return code
		}
		code++
	}
	return codeUnknown // way out of range
}

// decode maps a 2 bit code back to a way; known is false for codeUnknown.
func decode(lineInPage uint32, code uint8) (way int, known bool) {
	if code == codeUnknown {
		return -1, false
	}
	excluded := mem.ExcludedWayForLine(lineInPage)
	c := uint8(1)
	for w := 0; w < mem.L1Ways; w++ {
		if w == excluded {
			continue
		}
		if c == code {
			return w, true
		}
		c++
	}
	return -1, false
}

// Set records that the line resides in way; it returns false when the way
// is the line's excluded way (the code stays/becomes unknown).
func (e *Entry) Set(lineInPage uint32, way int) bool {
	code := encode(lineInPage, way)
	e.codes[lineInPage] = code
	return code != codeUnknown
}

// Get returns the recorded way for the line, if known and valid.
func (e *Entry) Get(lineInPage uint32) (way int, known bool) {
	return decode(lineInPage, e.codes[lineInPage])
}

// Invalidate marks the line's way unknown (line eviction).
func (e *Entry) Invalidate(lineInPage uint32) {
	e.codes[lineInPage] = codeUnknown
}

// Reset invalidates every line (new page allocation).
func (e *Entry) Reset() { e.codes = [mem.LinesPerPage]uint8{} }

// KnownLines returns how many lines currently have a known way.
func (e *Entry) KnownLines() int {
	n := 0
	for _, c := range e.codes {
		if c != codeUnknown {
			n++
		}
	}
	return n
}
