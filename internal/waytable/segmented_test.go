package waytable

import (
	"testing"

	"malec/internal/mem"
)

func TestSegmentedBasicRoundTrip(t *testing.T) {
	s := NewSegmentedTable("seg", 4, 16, 16) // full capacity
	s.Reset(1, 42)
	s.SetLine(1, 5, 2)
	s.SetLine(1, 20, 3) // different chunk
	if w, known := s.Peek(1, 5); !known || w != 2 {
		t.Fatalf("line 5: %d %v", w, known)
	}
	if w, known := s.Peek(1, 20); !known || w != 3 {
		t.Fatalf("line 20: %d %v", w, known)
	}
	if _, known := s.Peek(1, 6); known {
		t.Fatal("unset line known")
	}
	s.InvalidateLine(1, 5)
	if _, known := s.Peek(1, 5); known {
		t.Fatal("line survived invalidation")
	}
}

func TestSegmentedSlotLifecycle(t *testing.T) {
	s := NewSegmentedTable("seg", 4, 16, 16)
	s.Reset(0, 10)
	s.SetLine(0, 0, 1)
	if s.SlotFor(10) != 0 {
		t.Fatal("SlotFor failed")
	}
	s.InvalidateSlot(0)
	if s.SlotFor(10) != -1 {
		t.Fatal("slot survived invalidation")
	}
	// Chunks freed: a fresh slot must not see stale codes.
	s.Reset(0, 10)
	if _, known := s.Peek(0, 0); known {
		t.Fatal("stale chunk visible after slot reuse")
	}
}

func TestSegmentedPoolPressure(t *testing.T) {
	// Pool smaller than demand: FIFO replacement loses old chunks but the
	// store must never return wrong ways, only "unknown".
	s := NewSegmentedTable("seg", 4, 16, 2)
	s.Reset(0, 10)
	s.Reset(1, 11)
	s.SetLine(0, 0, 1)  // chunk A
	s.SetLine(0, 16, 2) // chunk B
	s.SetLine(1, 32, 3) // chunk C: evicts A (FIFO)
	if _, known := s.Peek(0, 0); known {
		t.Fatal("evicted chunk still known")
	}
	if w, known := s.Peek(1, 32); !known || w != 3 {
		t.Fatalf("fresh chunk lost: %d %v", w, known)
	}
}

func TestSegmentedCopyFromFull(t *testing.T) {
	full := NewTable("WT", 4)
	full.Reset(2, 7)
	full.SetLine(2, 3, 2)
	full.SetLine(2, 40, 1)
	seg := NewSegmentedTable("uWT", 4, 16, 16)
	seg.CopyFrom(0, full, 2)
	if w, known := seg.Peek(0, 3); !known || w != 2 {
		t.Fatalf("line 3 lost in copy: %d %v", w, known)
	}
	if w, known := seg.Peek(0, 40); !known || w != 1 {
		t.Fatalf("line 40 lost in copy: %d %v", w, known)
	}
	// And back: full table copying from segmented.
	full2 := NewTable("WT", 4)
	full2.CopyFrom(1, seg, 0)
	if w, known := full2.Peek(1, 3); !known || w != 2 {
		t.Fatalf("round trip lost line 3: %d %v", w, known)
	}
}

func TestSegmentedStorageBits(t *testing.T) {
	full := NewTable("WT", 64)
	half := NewSegmentedTable("WT", 64, 16, 64*4/2)
	if half.StorageBits() >= full.StorageBits() {
		t.Fatalf("half pool (%d bits) not smaller than full table (%d bits)",
			half.StorageBits(), full.StorageBits())
	}
}

func TestSegmentedBadChunkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSegmentedTable("seg", 4, 7, 4) // 7 does not divide 64
}

func TestSegmentedExcludedWayStaysUnknown(t *testing.T) {
	s := NewSegmentedTable("seg", 2, 16, 8)
	s.Reset(0, 5)
	line := uint32(0)
	s.SetLine(0, line, mem.ExcludedWayForLine(line))
	if _, known := s.Peek(0, line); known {
		t.Fatal("excluded way must be unrepresentable in segmented tables too")
	}
}
