package waytable

import (
	"malec/internal/mem"
	"malec/internal/tlb"
)

// Determiner is the way-determination interface consumed by the MALEC
// arbitration unit. Implementations: PageSystem (WT/uWT, Sec. V), WDU
// (Sec. II / VI-C) and None.
type Determiner interface {
	// Lookup returns the determined way for a physical line, given the
	// uTLB slot the translation hit (only PageSystem uses uIdx; the WDU
	// performs its own tag-sized lookup). known implies the line is
	// guaranteed resident in that way (validity bit semantics).
	Lookup(pline mem.Addr, uIdx int) (way int, known bool)
	// Feedback reports the way observed by a conventional access that
	// hit after Lookup returned unknown, letting the determiner learn.
	Feedback(pline mem.Addr, uIdx int, way int)
	// Coverage returns how many lookups were known vs total.
	Coverage() (known, total uint64)
}

// None is a Determiner that never knows the way (baseline caches).
type None struct{}

// Lookup always returns unknown.
func (None) Lookup(mem.Addr, int) (int, bool) { return -1, false }

// Feedback is a no-op.
func (None) Feedback(mem.Addr, int, int) {}

// Coverage is always zero.
func (None) Coverage() (uint64, uint64) { return 0, 0 }

// PageSystem wires a WT (TLB-sized) and uWT (uTLB-sized) into the
// translation hierarchy and the L1's fill/evict path, implementing
// Page-Based Way Determination:
//
//   - TLB insert of a new page resets its WT entry;
//   - uTLB refill copies the WT entry into the uWT; uTLB eviction writes
//     the (authoritative) uWT entry back to the WT;
//   - line fills/evictions reverse-look-up the page and update the uWT if
//     the page is micro-resident, otherwise the WT;
//   - the last-entry register feeds ways observed by conventional hits
//     back into the uWT when FeedbackUpdate is enabled (this lifts
//     coverage from ~75% to ~94% in the paper).
type PageSystem struct {
	UWT Store
	WT  Store

	// FeedbackUpdate enables the last-entry register update path.
	FeedbackUpdate bool

	hier *tlb.Hierarchy

	known uint64
	total uint64
	fed   uint64 // feedback updates performed
}

// NewPageSystem builds the WT/uWT pair sized to the hierarchy's TLBs and
// installs the synchronization hooks on them.
func NewPageSystem(hier *tlb.Hierarchy) *PageSystem {
	return NewPageSystemWith(hier,
		NewTable("uWT", hier.U.Size()),
		NewTable("WT", hier.Main.Size()))
}

// NewPageSystemWith builds a page system over explicit way stores (full
// tables, or SegmentedTable for the paper's Sec. VI-D extension).
func NewPageSystemWith(hier *tlb.Hierarchy, uwt, wt Store) *PageSystem {
	s := &PageSystem{
		UWT:            uwt,
		WT:             wt,
		FeedbackUpdate: true,
		hier:           hier,
	}
	hier.Main.OnInsert = s.onTLBInsert
	hier.Main.OnEvict = s.onTLBEvict
	hier.U.OnInsert = s.onUTLBInsert
	hier.U.OnEvict = s.onUTLBEvict
	return s
}

// SetIndexed toggles the indexed SlotFor path on both way stores (the
// config.DisableMemIndex / MALEC_NO_MEM_INDEX escape hatch; the TLBs carry
// their own toggle). Host-simulator work only, never simulated results.
func (s *PageSystem) SetIndexed(on bool) {
	type indexed interface{ SetIndexed(bool) }
	if t, ok := s.UWT.(indexed); ok {
		t.SetIndexed(on)
	}
	if t, ok := s.WT.(indexed); ok {
		t.SetIndexed(on)
	}
}

// onTLBInsert allocates a fresh (all-unknown) WT entry for the new page.
func (s *PageSystem) onTLBInsert(idx int, e tlb.Entry) {
	s.WT.Reset(idx, e.PPage)
}

// onTLBEvict maintains uTLB inclusion: a page leaving the TLB must also
// leave the uTLB (writing its uWT entry back first via onUTLBEvict).
func (s *PageSystem) onTLBEvict(idx int, old tlb.Entry) {
	s.hier.U.Invalidate(old.VPage)
	s.WT.InvalidateSlot(idx)
}

// onUTLBInsert refills the uWT entry from the WT ("the WT includes all uWT
// entries").
func (s *PageSystem) onUTLBInsert(idx int, e tlb.Entry) {
	if t := s.WT.SlotFor(e.PPage); t >= 0 {
		s.UWT.CopyFrom(idx, s.WT, t)
	} else {
		s.UWT.Reset(idx, e.PPage)
	}
}

// onUTLBEvict writes the authoritative uWT entry back to the WT
// ("synchronization of uWT and WT is based on full entries").
func (s *PageSystem) onUTLBEvict(idx int, old tlb.Entry) {
	if page, ok := s.UWT.PageAt(idx); ok {
		if t := s.WT.SlotFor(page); t >= 0 {
			s.WT.CopyFrom(t, s.UWT, idx)
		}
	}
	s.UWT.InvalidateSlot(idx)
}

// Lookup implements Determiner. The uWT entry was fetched together with the
// uTLB translation, so no separate search is needed; one entry read is
// charged.
func (s *PageSystem) Lookup(pline mem.Addr, uIdx int) (way int, known bool) {
	s.total++
	if uIdx < 0 {
		return -1, false
	}
	if page, ok := s.UWT.PageAt(uIdx); !ok || page != pline.Page() {
		return -1, false
	}
	way, known = s.UWT.Read(uIdx, pline.LineInPage())
	if known {
		s.known++
	}
	return way, known
}

// Feedback implements Determiner: the last-entry register path ("the uWT is
// updated if it returns way unknown but a subsequent conventional cache
// access hits").
func (s *PageSystem) Feedback(pline mem.Addr, uIdx int, way int) {
	if !s.FeedbackUpdate || uIdx < 0 {
		return
	}
	if page, ok := s.UWT.PageAt(uIdx); ok && page == pline.Page() {
		s.UWT.SetLine(uIdx, pline.LineInPage(), way)
		s.fed++
	}
}

// OnFill is the L1 fill hook: set the line's validity+way in the uWT if the
// page is micro-resident, else in the WT ("the WT ... is only updated if no
// corresponding uWT entry was found").
func (s *PageSystem) OnFill(pline mem.Addr, _, way int) {
	uIdx, tIdx := s.hier.ReverseLookup(pline.Page())
	if uIdx >= 0 {
		if page, ok := s.UWT.PageAt(uIdx); ok && page == pline.Page() {
			s.UWT.SetLine(uIdx, pline.LineInPage(), way)
			return
		}
	}
	if tIdx >= 0 {
		s.WT.SetLine(tIdx, pline.LineInPage(), way)
	}
}

// OnEvict is the L1 eviction hook: reset the line's validity bit.
func (s *PageSystem) OnEvict(pline mem.Addr, _, _ int) {
	uIdx, tIdx := s.hier.ReverseLookup(pline.Page())
	if uIdx >= 0 {
		if page, ok := s.UWT.PageAt(uIdx); ok && page == pline.Page() {
			s.UWT.InvalidateLine(uIdx, pline.LineInPage())
			return
		}
	}
	if tIdx >= 0 {
		s.WT.InvalidateLine(tIdx, pline.LineInPage())
	}
}

// Coverage implements Determiner.
func (s *PageSystem) Coverage() (known, total uint64) { return s.known, s.total }

// FeedbackUpdates returns how many last-entry register updates occurred.
func (s *PageSystem) FeedbackUpdates() uint64 { return s.fed }
