package waytable

import (
	"testing"
	"testing/quick"

	"malec/internal/mem"
	"malec/internal/rng"
	"malec/internal/tlb"
)

func TestEncodingRoundTrip(t *testing.T) {
	// Every (line, way) pair except the excluded way must round-trip.
	for l := uint32(0); l < mem.LinesPerPage; l++ {
		excluded := mem.ExcludedWayForLine(l)
		for w := 0; w < mem.L1Ways; w++ {
			var e Entry
			ok := e.Set(l, w)
			got, known := e.Get(l)
			if w == excluded {
				if ok || known {
					t.Fatalf("line %d way %d: excluded way must be unrepresentable", l, w)
				}
				continue
			}
			if !ok || !known || got != w {
				t.Fatalf("line %d way %d: got %d known=%v ok=%v", l, w, got, known, ok)
			}
		}
	}
}

func TestEncodingProperty(t *testing.T) {
	f := func(rawLine uint32, rawWay uint8) bool {
		l := rawLine % mem.LinesPerPage
		w := int(rawWay) % mem.L1Ways
		var e Entry
		e.Set(l, w)
		got, known := e.Get(l)
		if w == mem.ExcludedWayForLine(l) {
			return !known
		}
		return known && got == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEntryInvalidateAndReset(t *testing.T) {
	var e Entry
	e.Set(5, 2)
	e.Set(9, 3)
	if e.KnownLines() != 2 {
		t.Fatalf("KnownLines = %d", e.KnownLines())
	}
	e.Invalidate(5)
	if _, known := e.Get(5); known {
		t.Fatal("line survived invalidation")
	}
	e.Reset()
	if e.KnownLines() != 0 {
		t.Fatal("reset left known lines")
	}
}

func TestEntryBits(t *testing.T) {
	if BitsPerEntry != 128 {
		t.Fatalf("BitsPerEntry = %d, want 128 (paper Sec. V)", BitsPerEntry)
	}
}

func TestTableSlots(t *testing.T) {
	tab := NewTable("WT", 4)
	tab.Reset(2, 77)
	if got := tab.SlotFor(77); got != 2 {
		t.Fatalf("SlotFor = %d", got)
	}
	tab.SetLine(2, 10, 1)
	if w, known := tab.Read(2, 10); !known || w != 1 {
		t.Fatalf("Read = %d,%v", w, known)
	}
	tab.InvalidateLine(2, 10)
	if _, known := tab.Peek(2, 10); known {
		t.Fatal("line survived invalidation")
	}
	tab.InvalidateSlot(2)
	if tab.SlotFor(77) != -1 {
		t.Fatal("slot survived invalidation")
	}
	st := tab.Stats()
	if st.Reads != 1 || st.LineUpdates != 2 || st.Resets != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCopySlot(t *testing.T) {
	src := NewTable("WT", 2)
	dst := NewTable("uWT", 2)
	src.Reset(0, 5)
	src.SetLine(0, 3, 2)
	dst.CopySlot(1, src, 0)
	if w, known := dst.Peek(1, 3); !known || w != 2 {
		t.Fatalf("copied entry wrong: %d %v", w, known)
	}
	if p, ok := dst.PageAt(1); !ok || p != 5 {
		t.Fatalf("copied page wrong: %d %v", p, ok)
	}
	if src.Stats().EntryTransfers != 1 || dst.Stats().EntryTransfers != 1 {
		t.Fatal("transfer not counted on both sides")
	}
}

// testSystem builds a hierarchy + page system wired like core.NewSystem.
func testSystem() (*tlb.Hierarchy, *PageSystem) {
	u := tlb.New("uTLB", 4, tlb.NewPolicy("second-chance", 4, rng.New(1)))
	m := tlb.New("TLB", 16, tlb.NewPolicy("random", 16, rng.New(2)))
	h := &tlb.Hierarchy{U: u, Main: m, PT: tlb.NewPageTable()}
	return h, NewPageSystem(h)
}

func TestPageSystemFillThenLookup(t *testing.T) {
	h, ps := testSystem()
	res := h.Translate(9)
	pa := mem.MakeAddr(res.PPage, 3*mem.LineSize)
	// Before the fill: unknown.
	if _, known := ps.Lookup(pa, res.UIdx); known {
		t.Fatal("unknown line reported as known")
	}
	ps.OnFill(pa.LineAddr(), 0, 2)
	way, known := ps.Lookup(pa, res.UIdx)
	if !known || way != 2 {
		t.Fatalf("after fill: way=%d known=%v", way, known)
	}
	// Eviction invalidates.
	ps.OnEvict(pa.LineAddr(), 0, 2)
	if _, known := ps.Lookup(pa, res.UIdx); known {
		t.Fatal("line known after eviction")
	}
}

func TestPageSystemExcludedWayFill(t *testing.T) {
	h, ps := testSystem()
	res := h.Translate(4)
	line := uint32(0) // excluded way 0
	pa := mem.MakeAddr(res.PPage, line*mem.LineSize)
	ps.OnFill(pa.LineAddr(), 0, 0) // fill into the excluded way
	if _, known := ps.Lookup(pa, res.UIdx); known {
		t.Fatal("excluded-way fill must stay unknown")
	}
}

func TestPageSystemFeedback(t *testing.T) {
	h, ps := testSystem()
	res := h.Translate(11)
	pa := mem.MakeAddr(res.PPage, 5*mem.LineSize)
	ps.Feedback(pa, res.UIdx, 2) // way 1 is line 5's excluded way
	if way, known := ps.Lookup(pa, res.UIdx); !known || way != 2 {
		t.Fatalf("feedback not learned: way=%d known=%v", way, known)
	}
	if ps.FeedbackUpdates() != 1 {
		t.Fatalf("FeedbackUpdates = %d", ps.FeedbackUpdates())
	}
	// Disabled feedback must not learn.
	h2, ps2 := testSystem()
	ps2.FeedbackUpdate = false
	res2 := h2.Translate(11)
	ps2.Feedback(mem.MakeAddr(res2.PPage, 64), res2.UIdx, 1)
	if _, known := ps2.Lookup(mem.MakeAddr(res2.PPage, 64), res2.UIdx); known {
		t.Fatal("disabled feedback still learned")
	}
}

func TestPageSystemUWTWritebackOnEviction(t *testing.T) {
	h, ps := testSystem()
	res := h.Translate(1)
	pa := mem.MakeAddr(res.PPage, 7*mem.LineSize)
	ps.OnFill(pa.LineAddr(), 0, 3) // lands in the uWT (page micro-resident)
	// Push page 1 out of the 4-entry uTLB.
	for v := mem.PageID(100); v < 104; v++ {
		h.Translate(v)
	}
	// Page 1 is gone from the uTLB but still in the TLB; its way info
	// must have been written back to the WT and must survive a refill.
	res2 := h.Translate(1)
	if res2.Level != tlb.LevelTLB {
		t.Fatalf("expected TLB-level hit, got %v", res2.Level)
	}
	if way, known := ps.Lookup(pa, res2.UIdx); !known || way != 3 {
		t.Fatalf("way info lost across uWT eviction: way=%d known=%v", way, known)
	}
}

func TestPageSystemTLBEvictionInvalidates(t *testing.T) {
	h, ps := testSystem()
	res := h.Translate(1)
	pa := mem.MakeAddr(res.PPage, 2*mem.LineSize)
	ps.OnFill(pa.LineAddr(), 0, 3)
	// Force page 1 out of the 16-entry TLB entirely.
	for v := mem.PageID(200); v < 264; v++ {
		h.Translate(v)
	}
	// Re-translating allocates a fresh (all-invalid) WT entry.
	res2 := h.Translate(1)
	if _, known := ps.Lookup(pa, res2.UIdx); known {
		t.Fatal("way info must be lost after TLB eviction (paper Sec. V)")
	}
}

func TestPageSystemCoverageCounting(t *testing.T) {
	h, ps := testSystem()
	res := h.Translate(3)
	pa := mem.MakeAddr(res.PPage, 0x40)
	ps.Lookup(pa, res.UIdx)
	ps.OnFill(pa.LineAddr(), 0, 1)
	ps.Lookup(pa, res.UIdx)
	known, total := ps.Coverage()
	if total != 2 || known != 1 {
		t.Fatalf("coverage %d/%d, want 1/2", known, total)
	}
}

func TestNoneDeterminer(t *testing.T) {
	var n None
	if _, known := n.Lookup(0x40, 0); known {
		t.Fatal("None must never know")
	}
	n.Feedback(0x40, 0, 1)
	if k, tot := n.Coverage(); k != 0 || tot != 0 {
		t.Fatal("None coverage must be zero")
	}
}

func TestWDULearnsAndEvicts(t *testing.T) {
	w := NewWDU(2, 4)
	a := mem.Addr(0x1040)
	b := mem.Addr(0x2040)
	c := mem.Addr(0x3040)
	if _, known := w.Lookup(a, -1); known {
		t.Fatal("cold WDU hit")
	}
	w.Feedback(a, -1, 1)
	w.Feedback(b, -1, 2)
	if way, known := w.Lookup(a, -1); !known || way != 1 {
		t.Fatalf("a: way=%d known=%v", way, known)
	}
	w.Feedback(c, -1, 3) // evicts LRU (b)
	if _, known := w.Lookup(b, -1); known {
		t.Fatal("LRU entry survived")
	}
	if w.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", w.Stats().Evictions)
	}
}

func TestWDUValidityOnEvict(t *testing.T) {
	w := NewWDU(4, 4)
	a := mem.Addr(0x40)
	w.OnFill(a, 0, 2)
	if way, known := w.Lookup(a, -1); !known || way != 2 {
		t.Fatalf("fill not learned: %d %v", way, known)
	}
	w.OnEvict(a, 0, 2)
	if _, known := w.Lookup(a, -1); known {
		t.Fatal("validity bit not cleared on line eviction")
	}
}

func TestWDUCoverageMonotonicInSize(t *testing.T) {
	// Bigger WDUs must cover at least as much of a cyclic working set.
	run := func(size int) float64 {
		w := NewWDU(size, 4)
		lines := make([]mem.Addr, 12)
		for i := range lines {
			lines[i] = mem.Addr(i * mem.LineSize)
		}
		for pass := 0; pass < 50; pass++ {
			for _, l := range lines {
				if _, known := w.Lookup(l, -1); !known {
					w.Feedback(l, -1, 1)
				}
			}
		}
		k, tot := w.Coverage()
		return float64(k) / float64(tot)
	}
	c8, c16 := run(8), run(16)
	if c16 < c8 {
		t.Fatalf("coverage not monotonic: 8->%v 16->%v", c8, c16)
	}
	if c16 < 0.9 {
		t.Fatalf("16-entry WDU should cover a 12-line loop: %v", c16)
	}
}
