package waytable

import (
	"testing"

	"malec/internal/mem"
	"malec/internal/rng"
	"malec/internal/tlb"
)

// driveStores runs the identical randomized slot/line workload against an
// indexed store and a scan-configured reference, comparing every return
// value. The page space is small enough that slots are recycled and (via
// direct Reset calls) duplicate pages occur, and for segmented tables the
// pool is undersized so FIFO chunk replacement engages.
func driveStores(t *testing.T, indexed, scan Store, slots int) {
	t.Helper()
	const pageSpace = 16
	const ops = 30000
	drv := rng.New(42)
	for op := 0; op < ops; op++ {
		idx := drv.Intn(slots)
		page := mem.PageID(drv.Intn(pageSpace))
		line := uint32(drv.Intn(mem.LinesPerPage))
		way := drv.Intn(mem.L1Ways)
		switch drv.Intn(8) {
		case 0:
			indexed.Reset(idx, page)
			scan.Reset(idx, page)
		case 1:
			indexed.InvalidateSlot(idx)
			scan.InvalidateSlot(idx)
		case 2:
			indexed.SetLine(idx, line, way)
			scan.SetLine(idx, line, way)
		case 3:
			indexed.InvalidateLine(idx, line)
			scan.InvalidateLine(idx, line)
		case 4:
			if s1, s2 := indexed.SlotFor(page), scan.SlotFor(page); s1 != s2 {
				t.Fatalf("op %d: SlotFor(%d) diverged: %d vs %d", op, page, s1, s2)
			}
		case 5:
			w1, k1 := indexed.Read(idx, line)
			w2, k2 := scan.Read(idx, line)
			if w1 != w2 || k1 != k2 {
				t.Fatalf("op %d: Read(%d,%d) diverged: (%d,%v) vs (%d,%v)",
					op, idx, line, w1, k1, w2, k2)
			}
		case 6:
			p1, v1 := indexed.PageAt(idx)
			p2, v2 := scan.PageAt(idx)
			if p1 != p2 || v1 != v2 {
				t.Fatalf("op %d: PageAt(%d) diverged", op, idx)
			}
		case 7:
			dst := drv.Intn(slots)
			indexed.CopyFrom(dst, indexed, idx)
			scan.CopyFrom(dst, scan, idx)
		}
	}
	// Final sweep: every page's SlotFor and every slot's full line state.
	for page := mem.PageID(0); page < pageSpace; page++ {
		if s1, s2 := indexed.SlotFor(page), scan.SlotFor(page); s1 != s2 {
			t.Fatalf("final SlotFor(%d): %d vs %d", page, s1, s2)
		}
	}
	for idx := 0; idx < slots; idx++ {
		for line := uint32(0); line < mem.LinesPerPage; line++ {
			w1, k1 := indexed.Peek(idx, line)
			w2, k2 := scan.Peek(idx, line)
			if w1 != w2 || k1 != k2 {
				t.Fatalf("final Peek(%d,%d): (%d,%v) vs (%d,%v)", idx, line, w1, k1, w2, k2)
			}
		}
	}
}

// TestTableIndexedMatchesScanRandomized cross-checks the full Table's
// indexed SlotFor against the scan reference over a randomized workload.
func TestTableIndexedMatchesScanRandomized(t *testing.T) {
	const slots = 8
	indexed := NewTable("idx", slots)
	scan := NewTable("scan", slots)
	scan.SetIndexed(false)
	driveStores(t, indexed, scan, slots)
	if indexed.Stats() != scan.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", indexed.Stats(), scan.Stats())
	}
}

// TestSegmentedIndexedMatchesScanRandomized cross-checks the segmented
// table (indexed SlotFor, direct-mapped chunk association, packed codes,
// bitmap free list) against a scan-configured instance under pool pressure
// (pool half the full-table chunk demand, so FIFO replacement runs).
func TestSegmentedIndexedMatchesScanRandomized(t *testing.T) {
	const slots, chunkLines = 8, 16
	pool := slots * (mem.LinesPerPage / chunkLines) / 2
	indexed := NewSegmentedTable("idx", slots, chunkLines, pool)
	scan := NewSegmentedTable("scan", slots, chunkLines, pool)
	scan.SetIndexed(false)
	driveStores(t, indexed, scan, slots)
	if indexed.Stats() != scan.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", indexed.Stats(), scan.Stats())
	}
}

// chainTLBHooks wraps a TLB's already-installed OnEvict/OnInsert hooks
// (the PageSystem's synchronization callbacks) with recorders, preserving
// the original behaviour.
func chainTLBHooks(name string, t *tlb.TLB, log *[]hookRec) {
	evict, insert := t.OnEvict, t.OnInsert
	t.OnEvict = func(idx int, old tlb.Entry) {
		*log = append(*log, hookRec{name, "evict", idx, old})
		if evict != nil {
			evict(idx, old)
		}
	}
	t.OnInsert = func(idx int, e tlb.Entry) {
		*log = append(*log, hookRec{name, "insert", idx, e})
		if insert != nil {
			insert(idx, e)
		}
	}
}

type hookRec struct {
	tlb  string
	kind string
	idx  int
	e    tlb.Entry
}

// TestPageSystemHookOrderIndexedVsScan builds two complete
// hierarchy+page-system stacks — one indexed, one scan — and drives
// identical translate/fill/evict/feedback traffic, recording the order of
// every TLB OnEvict/OnInsert hook (through which all WT/uWT
// synchronization flows). The sequences must be identical, and so must
// every way-determination lookup.
func TestPageSystemHookOrderIndexedVsScan(t *testing.T) {
	type stack struct {
		sys   *PageSystem
		hier  *tlb.Hierarchy
		hooks *[]hookRec
	}
	build := func(indexed bool) stack {
		u := tlb.New("uTLB", 4, tlb.NewPolicy("second-chance", 4, rng.New(1)))
		m := tlb.New("TLB", 16, tlb.NewPolicy("random", 16, rng.New(2)))
		h := &tlb.Hierarchy{U: u, Main: m, PT: tlb.NewPageTable()}
		sys := NewPageSystem(h)
		if !indexed {
			u.SetIndexed(false)
			m.SetIndexed(false)
			sys.SetIndexed(false)
		}
		log := &[]hookRec{}
		chainTLBHooks("u", u, log)
		chainTLBHooks("m", m, log)
		return stack{sys: sys, hier: h, hooks: log}
	}
	a := build(true)
	b := build(false)
	drv := rng.New(17)
	for op := 0; op < 20000; op++ {
		page := mem.PageID(drv.Intn(64))
		off := uint32(drv.Intn(mem.PageSize)) &^ 7
		va := mem.MakeAddr(page, off)
		switch drv.Intn(4) {
		case 0, 1:
			ra := a.hier.Translate(va.Page())
			rb := b.hier.Translate(va.Page())
			if ra != rb {
				t.Fatalf("op %d: Translate diverged: %+v vs %+v", op, ra, rb)
			}
			pa := mem.MakeAddr(ra.PPage, off)
			wa, ka := a.sys.Lookup(pa, ra.UIdx)
			wb, kb := b.sys.Lookup(pa, rb.UIdx)
			if wa != wb || ka != kb {
				t.Fatalf("op %d: way lookup diverged: (%d,%v) vs (%d,%v)", op, wa, ka, wb, kb)
			}
			if !ka {
				way := drv.Intn(mem.L1Ways)
				a.sys.Feedback(pa, ra.UIdx, way)
				b.sys.Feedback(pa, rb.UIdx, way)
			}
		case 2:
			pa := mem.MakeAddr(mem.PageID(drv.Intn(1<<14)), off)
			way := drv.Intn(mem.L1Ways)
			a.sys.OnFill(pa.LineAddr(), 0, way)
			b.sys.OnFill(pa.LineAddr(), 0, way)
		case 3:
			pa := mem.MakeAddr(mem.PageID(drv.Intn(1<<14)), off)
			a.sys.OnEvict(pa.LineAddr(), 0, 0)
			b.sys.OnEvict(pa.LineAddr(), 0, 0)
		}
	}
	if len(*a.hooks) != len(*b.hooks) {
		t.Fatalf("hook counts diverged: %d vs %d", len(*a.hooks), len(*b.hooks))
	}
	for i := range *a.hooks {
		if (*a.hooks)[i] != (*b.hooks)[i] {
			t.Fatalf("hook %d diverged: %+v vs %+v", i, (*a.hooks)[i], (*b.hooks)[i])
		}
	}
	ka, ta := a.sys.Coverage()
	kb, tb := b.sys.Coverage()
	if ka != kb || ta != tb {
		t.Fatalf("coverage diverged: %d/%d vs %d/%d", ka, ta, kb, tb)
	}
}

// BenchmarkWayTableRead measures the way-table hot path — SlotFor (the
// reverse-lookup-driven maintenance entry point) followed by an entry
// read — for the full and segmented tables, indexed vs scan.
func BenchmarkWayTableRead(b *testing.B) {
	const slots = 64
	mk := func(seg bool) Store {
		if seg {
			return NewSegmentedTable("seg", slots, 16, slots*4)
		}
		return NewTable("full", slots)
	}
	for _, bench := range []struct {
		name    string
		seg     bool
		indexed bool
	}{
		{"table/indexed", false, true},
		{"table/scan", false, false},
		{"segmented/indexed", true, true},
		{"segmented/scan", true, false},
	} {
		b.Run(bench.name, func(b *testing.B) {
			st := mk(bench.seg)
			if x, ok := st.(interface{ SetIndexed(bool) }); ok {
				x.SetIndexed(bench.indexed)
			}
			for i := 0; i < slots; i++ {
				st.Reset(i, mem.PageID(100+i))
				for l := uint32(0); l < mem.LinesPerPage; l += 2 {
					st.SetLine(i, l, int(l/4)%mem.L1Ways)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				page := mem.PageID(100 + i%slots)
				s := st.SlotFor(page)
				if s < 0 {
					b.Fatal("resident page has no slot")
				}
				st.Read(s, uint32(i)%mem.LinesPerPage)
			}
		})
	}
}
