package waytable

import "malec/internal/mem"

// TableStats counts way-table activity for the energy model.
type TableStats struct {
	Reads          uint64 // entry reads piggybacked on TLB lookups
	LineUpdates    uint64 // single-line code writes (fills/evicts/feedback)
	EntryTransfers uint64 // full 128 bit entry moves (uWT<->WT sync)
	Resets         uint64 // full entry invalidations (new page)
}

// Table is a WT or uWT: way-table entries indexed in lockstep with the
// entries of its companion (u)TLB, plus a record of which physical page
// each slot currently describes.
//
// SlotFor is O(1) by default through a compact page chain index maintained
// on every slot mutation; the linear scan remains behind SetIndexed(false)
// as the differential reference (config.DisableMemIndex /
// MALEC_NO_MEM_INDEX=1). When several valid slots describe the same page
// (possible through the public API, never through the PageSystem) the
// lookup returns the lowest slot, matching the scan.
type Table struct {
	Name    string
	entries []Entry
	pages   []mem.PageID // physical page per slot
	valid   []bool
	stats   TableStats

	useIndex bool
	idx      *mem.SlotIndex // page bucket chains over valid slots
}

// NewTable returns a table with size entries (matching its TLB). The
// indexed SlotFor path is enabled; SetIndexed(false) reverts to the scan.
func NewTable(name string, size int) *Table {
	return &Table{
		Name:     name,
		entries:  make([]Entry, size),
		pages:    make([]mem.PageID, size),
		valid:    make([]bool, size),
		useIndex: true,
		idx:      mem.NewSlotIndex(size),
	}
}

// SetIndexed selects between the indexed (default) and scan SlotFor paths.
// The index is maintained either way, so the toggle may flip at any time;
// it is host-simulator work only (differentially tested).
func (t *Table) SetIndexed(on bool) { t.useIndex = on }

// setPage updates slot idx's page/valid state, keeping the chain index in
// sync. Duplicate pages (possible through the public API, never through
// the PageSystem) coexist in a chain; SlotFor resolves to the lowest.
func (t *Table) setPage(idx int, page mem.PageID, valid bool) {
	if t.valid[idx] {
		t.idx.Remove(uint32(t.pages[idx]), int32(idx))
	}
	t.pages[idx] = page
	t.valid[idx] = valid
	if valid {
		t.idx.Add(uint32(page), int32(idx))
	}
}

// findSlot returns the lowest valid slot describing page, or -1, via the
// chain index (indexed slots are always valid).
func (t *Table) findSlot(page mem.PageID) int {
	best := int32(-1)
	for i := t.idx.First(uint32(page)); i >= 0; i = t.idx.Next(i) {
		if t.pages[i] == page && (best < 0 || i < best) {
			best = i
		}
	}
	return int(best)
}

// Size returns the number of entries.
func (t *Table) Size() int { return len(t.entries) }

// Stats returns a copy of the activity counters.
func (t *Table) Stats() TableStats { return t.stats }

// Reset clears slot idx for a new physical page, invalidating all lines.
func (t *Table) Reset(idx int, page mem.PageID) {
	t.entries[idx].Reset()
	t.setPage(idx, page, true)
	t.stats.Resets++
}

// InvalidateSlot clears slot idx entirely.
func (t *Table) InvalidateSlot(idx int) {
	t.entries[idx].Reset()
	t.setPage(idx, t.pages[idx], false)
}

// SlotFor returns the slot currently describing physical page p, or -1.
func (t *Table) SlotFor(p mem.PageID) int {
	if t.useIndex {
		return t.findSlot(p)
	}
	for i := range t.pages {
		if t.valid[i] && t.pages[i] == p {
			return i
		}
	}
	return -1
}

// PageAt returns the physical page described by slot idx and whether the
// slot is valid.
func (t *Table) PageAt(idx int) (mem.PageID, bool) {
	return t.pages[idx], t.valid[idx]
}

// Read returns the way code for a line of the page at slot idx, counting
// one entry read. It returns known=false for invalid slots.
func (t *Table) Read(idx int, lineInPage uint32) (way int, known bool) {
	t.stats.Reads++
	if !t.valid[idx] {
		return -1, false
	}
	return t.entries[idx].Get(lineInPage)
}

// Peek is Read without statistics.
func (t *Table) Peek(idx int, lineInPage uint32) (way int, known bool) {
	if !t.valid[idx] {
		return -1, false
	}
	return t.entries[idx].Get(lineInPage)
}

// SetLine records a line's way in slot idx (fill or feedback update).
func (t *Table) SetLine(idx int, lineInPage uint32, way int) {
	if !t.valid[idx] {
		return
	}
	t.entries[idx].Set(lineInPage, way)
	t.stats.LineUpdates++
}

// InvalidateLine marks a line unknown in slot idx (line eviction).
func (t *Table) InvalidateLine(idx int, lineInPage uint32) {
	if !t.valid[idx] {
		return
	}
	t.entries[idx].Invalidate(lineInPage)
	t.stats.LineUpdates++
}

// CopySlot transfers the full entry from slot srcIdx of src into slot
// dstIdx of t (uWT refill from WT, or uWT writeback to WT), counting one
// entry transfer on each side.
func (t *Table) CopySlot(dstIdx int, src *Table, srcIdx int) {
	t.entries[dstIdx] = src.entries[srcIdx]
	t.setPage(dstIdx, src.pages[srcIdx], src.valid[srcIdx])
	t.stats.EntryTransfers++
	src.stats.EntryTransfers++
}
