package waytable

// This file is the way-determination side of the microarchitectural
// checkpoint layer: exported, JSON-able snapshots of the full Table, the
// SegmentedTable, the WDU and the PageSystem's coverage counters. The two
// table kinds snapshot into a small tagged union (StoreState) so a
// checkpoint is self-describing; restores rebuild the page chain indexes
// and free bitmaps from the restored contents without replaying history.

import "malec/internal/mem"

// TableState is a complete snapshot of a full way table. Line codes are
// flattened mem.LinesPerPage per slot.
type TableState struct {
	Codes []uint8
	Pages []mem.PageID
	Valid []bool
	Stats TableStats
}

// CaptureState snapshots the table. The receiver is unmodified.
func (t *Table) CaptureState() TableState {
	st := TableState{
		Codes: make([]uint8, len(t.entries)*mem.LinesPerPage),
		Pages: make([]mem.PageID, len(t.pages)),
		Valid: make([]bool, len(t.valid)),
		Stats: t.stats,
	}
	for i := range t.entries {
		copy(st.Codes[i*mem.LinesPerPage:], t.entries[i].codes[:])
	}
	copy(st.Pages, t.pages)
	copy(st.Valid, t.valid)
	return st
}

// RestoreState replaces the table's state with a same-size snapshot,
// rebuilding the page chain index from the restored slots.
func (t *Table) RestoreState(st TableState) {
	for i := range t.entries {
		copy(t.entries[i].codes[:], st.Codes[i*mem.LinesPerPage:(i+1)*mem.LinesPerPage])
	}
	copy(t.pages, st.Pages)
	copy(t.valid, st.Valid)
	t.stats = st.Stats
	t.idx.Reset()
	for i := range t.valid {
		if t.valid[i] {
			t.idx.Add(uint32(t.pages[i]), int32(i))
		}
	}
}

// SegSlotState is the exported form of one segmented-table slot.
type SegSlotState struct {
	Page  mem.PageID
	Valid bool
}

// SegmentedState is a complete snapshot of a segmented way table.
type SegmentedState struct {
	Slots     []SegSlotState
	PoolOwner []int32 // owning slot per pool chunk, -1 when free
	PoolPart  []uint32
	Codes     []uint8
	ChunkOf   []int32
	Fifo      int
	Stats     TableStats
}

// CaptureState snapshots the segmented table.
func (t *SegmentedTable) CaptureState() SegmentedState {
	st := SegmentedState{
		Slots:     make([]SegSlotState, len(t.slots)),
		PoolOwner: make([]int32, len(t.pool)),
		PoolPart:  make([]uint32, len(t.pool)),
		Codes:     make([]uint8, len(t.codes)),
		ChunkOf:   make([]int32, len(t.chunkOf)),
		Fifo:      t.fifo,
		Stats:     t.stats,
	}
	for i, s := range t.slots {
		st.Slots[i] = SegSlotState{Page: s.page, Valid: s.valid}
	}
	for i, c := range t.pool {
		st.PoolOwner[i] = c.owner
		st.PoolPart[i] = c.part
	}
	copy(st.Codes, t.codes)
	copy(st.ChunkOf, t.chunkOf)
	return st
}

// RestoreState replaces the segmented table's state with a same-geometry
// snapshot, rebuilding the free bitmap and page chain index.
func (t *SegmentedTable) RestoreState(st SegmentedState) {
	for i, s := range st.Slots {
		t.slots[i] = segSlot{page: s.Page, valid: s.Valid}
	}
	t.freeCount = 0
	for i := range t.freeMask {
		t.freeMask[i] = 0
	}
	for i := range t.pool {
		t.pool[i] = segChunk{owner: st.PoolOwner[i], part: st.PoolPart[i]}
		if st.PoolOwner[i] < 0 {
			t.freeMask[i>>6] |= 1 << uint(i&63)
			t.freeCount++
		}
	}
	copy(t.codes, st.Codes)
	copy(t.chunkOf, st.ChunkOf)
	t.fifo = st.Fifo
	t.stats = st.Stats
	t.idx.Reset()
	for i := range t.slots {
		if t.slots[i].valid {
			t.idx.Add(uint32(t.slots[i].page), int32(i))
		}
	}
}

// StoreState is the tagged union over the two way-store snapshot kinds,
// making checkpoints self-describing.
type StoreState struct {
	Table     *TableState     `json:",omitempty"`
	Segmented *SegmentedState `json:",omitempty"`
}

// CaptureStore snapshots any Store implementation.
func CaptureStore(s Store) StoreState {
	switch t := s.(type) {
	case *Table:
		st := t.CaptureState()
		return StoreState{Table: &st}
	case *SegmentedTable:
		st := t.CaptureState()
		return StoreState{Segmented: &st}
	default:
		panic("waytable: unknown Store kind in CaptureStore")
	}
}

// RestoreStore restores any Store implementation from its snapshot. The
// snapshot kind must match the store kind (same configuration).
func RestoreStore(s Store, st StoreState) {
	switch t := s.(type) {
	case *Table:
		t.RestoreState(*st.Table)
	case *SegmentedTable:
		t.RestoreState(*st.Segmented)
	default:
		panic("waytable: unknown Store kind in RestoreStore")
	}
}

// WDUState is a complete snapshot of a WDU.
type WDUState struct {
	Lines  []mem.Addr
	Ways   []int8
	Valid  []bool
	Stamps []uint64
	Clock  uint64
	Stats  WDUStats
	Known  uint64
	Total  uint64
}

// CaptureState snapshots the WDU.
func (w *WDU) CaptureState() WDUState {
	st := WDUState{
		Lines:  make([]mem.Addr, len(w.entries)),
		Ways:   make([]int8, len(w.entries)),
		Valid:  make([]bool, len(w.entries)),
		Stamps: make([]uint64, len(w.entries)),
		Clock:  w.clock,
		Stats:  w.stats,
		Known:  w.known,
		Total:  w.total,
	}
	for i, e := range w.entries {
		st.Lines[i] = e.line
		st.Ways[i] = e.way
		st.Valid[i] = e.valid
		st.Stamps[i] = e.stamp
	}
	return st
}

// RestoreState replaces the WDU's state with a same-size snapshot.
func (w *WDU) RestoreState(st WDUState) {
	for i := range w.entries {
		w.entries[i] = wduEntry{
			line:  st.Lines[i],
			way:   st.Ways[i],
			valid: st.Valid[i],
			stamp: st.Stamps[i],
		}
	}
	w.clock = st.Clock
	w.stats = st.Stats
	w.known = st.Known
	w.total = st.Total
}

// PageSystemState is a complete snapshot of a PageSystem: both way stores
// plus the coverage and feedback counters.
type PageSystemState struct {
	UWT   StoreState
	WT    StoreState
	Known uint64
	Total uint64
	Fed   uint64
}

// CaptureState snapshots the page system.
func (s *PageSystem) CaptureState() PageSystemState {
	return PageSystemState{
		UWT:   CaptureStore(s.UWT),
		WT:    CaptureStore(s.WT),
		Known: s.known,
		Total: s.total,
		Fed:   s.fed,
	}
}

// RestoreState restores the page system from a same-configuration snapshot.
func (s *PageSystem) RestoreState(st PageSystemState) {
	RestoreStore(s.UWT, st.UWT)
	RestoreStore(s.WT, st.WT)
	s.known = st.Known
	s.total = st.Total
	s.fed = st.Fed
}
