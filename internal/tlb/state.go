package tlb

// This file is the translation side of the microarchitectural checkpoint
// layer: exported, JSON-able snapshots of a TLB array (entries, statistics
// and replacement-policy metadata) and of the page table. Restores rebuild
// the derived lookup structures (chain indexes, free mask, live count,
// used-frame set) from the restored contents and never fire the
// OnInsert/OnEvict hooks — a restore transplants state, it does not replay
// the insertion history, and chain-order differences are invisible because
// lookups resolve duplicates to the lowest index.

import (
	"sort"

	"malec/internal/mem"
)

// TLBState is a complete snapshot of one TLB's mutable state.
type TLBState struct {
	Entries []Entry
	Stats   Stats
	// Policy is the replacement policy's serialized metadata (Policy.State).
	Policy []uint64
}

// CaptureState snapshots the TLB. The receiver is unmodified.
func (t *TLB) CaptureState() TLBState {
	st := TLBState{
		Entries: make([]Entry, len(t.entries)),
		Stats:   t.stats,
		Policy:  t.pol.State(),
	}
	copy(st.Entries, t.entries)
	return st
}

// RestoreState replaces the TLB's state with a snapshot from a same-size
// TLB, rebuilding the chain indexes, free mask and live count from the
// restored entries. No OnInsert/OnEvict hooks fire.
func (t *TLB) RestoreState(st TLBState) {
	copy(t.entries, st.Entries)
	t.stats = st.Stats
	t.pol.SetState(st.Policy)
	t.vIdx.Reset()
	t.pIdx.Reset()
	for i := range t.freeMask {
		t.freeMask[i] = 0
	}
	t.live = 0
	for i := range t.entries {
		if t.entries[i].Valid {
			t.vIdx.Add(uint32(t.entries[i].VPage), int32(i))
			t.pIdx.Add(uint32(t.entries[i].PPage), int32(i))
			t.live++
		} else {
			t.freeMask[i>>6] |= 1 << uint(i&63)
		}
	}
}

// PageTableMapping is one established virtual->physical page mapping.
type PageTableMapping struct {
	V mem.PageID
	P mem.PageID
}

// PageTableState is a complete snapshot of a page table: every mapping in
// virtual-page order (deterministic bytes regardless of the hash table's
// internal layout) plus the next-frame counter.
type PageTableState struct {
	Mappings []PageTableMapping
	Next     uint32
}

// CaptureState snapshots the page table.
func (pt *PageTable) CaptureState() PageTableState {
	st := PageTableState{
		Mappings: make([]PageTableMapping, 0, pt.fwd.n),
		Next:     pt.next,
	}
	for i := range pt.fwd.slots {
		if e := &pt.fwd.slots[i]; e.used {
			st.Mappings = append(st.Mappings, PageTableMapping{V: e.key, P: e.val})
		}
	}
	sort.Slice(st.Mappings, func(i, j int) bool {
		return st.Mappings[i].V < st.Mappings[j].V
	})
	return st
}

// RestoreState rebuilds the page table from a snapshot. Replaying the
// mappings through the storage layer reproduces a semantically identical
// table (Translate answers and future first-touch allocations are
// bit-identical) independent of the original hash layout.
func (pt *PageTable) RestoreState(st PageTableState) {
	pt.fwd.init(ptInitialSlots)
	pt.used = mem.NewPageSet(ptInitialSlots)
	for _, m := range st.Mappings {
		pt.fwd.put(m.V, m.P)
		pt.used.Add(m.P)
	}
	pt.next = st.Next
}
