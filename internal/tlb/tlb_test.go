package tlb

import (
	"testing"

	"malec/internal/mem"
	"malec/internal/rng"
)

func newTLB(size int, policy string) *TLB {
	return New("t", size, NewPolicy(policy, size, rng.New(1)))
}

func TestLookupMissThenHit(t *testing.T) {
	tl := newTLB(4, "lru")
	if _, _, hit := tl.Lookup(10); hit {
		t.Fatal("unexpected hit")
	}
	idx := tl.Insert(10, 99)
	i, e, hit := tl.Lookup(10)
	if !hit || i != idx || e.PPage != 99 {
		t.Fatalf("lookup after insert: hit=%v i=%d e=%+v", hit, i, e)
	}
	st := tl.Stats()
	if st.Lookups != 2 || st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestReverseLookup(t *testing.T) {
	tl := newTLB(4, "lru")
	tl.Insert(10, 99)
	tl.Insert(11, 77)
	if _, e, hit := tl.ReverseLookup(77); !hit || e.VPage != 11 {
		t.Fatalf("reverse lookup failed: hit=%v e=%+v", hit, e)
	}
	if _, _, hit := tl.ReverseLookup(1); hit {
		t.Fatal("reverse lookup false positive")
	}
}

func TestLRUEviction(t *testing.T) {
	tl := newTLB(2, "lru")
	tl.Insert(1, 1)
	tl.Insert(2, 2)
	tl.Lookup(1) // make 2 the LRU
	var evicted []Entry
	tl.OnEvict = func(_ int, old Entry) { evicted = append(evicted, old) }
	tl.Insert(3, 3)
	if len(evicted) != 1 || evicted[0].VPage != 2 {
		t.Fatalf("evicted %+v, want vpage 2", evicted)
	}
	if _, _, hit := tl.Probe(1); !hit {
		t.Fatal("recently used entry evicted")
	}
}

func TestSecondChance(t *testing.T) {
	p := newSecondChance(3)
	p.Touch(0)
	p.Touch(1)
	// Entry 2 unreferenced: first victim.
	if v := p.Victim(); v != 2 {
		t.Fatalf("victim %d, want 2", v)
	}
	// All reference bits now cleared by the sweep or unset; the clock
	// hand continues from 0.
	if v := p.Victim(); v != 0 {
		t.Fatalf("victim %d, want 0", v)
	}
}

func TestFIFO(t *testing.T) {
	p := &fifoPolicy{size: 3}
	order := []int{p.Victim(), p.Victim(), p.Victim(), p.Victim()}
	want := []int{0, 1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fifo order %v", order)
		}
	}
}

func TestRandomPolicyInRange(t *testing.T) {
	p := NewPolicy("random", 8, rng.New(3))
	for i := 0; i < 100; i++ {
		if v := p.Victim(); v < 0 || v >= 8 {
			t.Fatalf("victim %d out of range", v)
		}
	}
}

func TestUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPolicy("bogus", 4, rng.New(1))
}

func TestInvalidate(t *testing.T) {
	tl := newTLB(4, "lru")
	tl.Insert(5, 50)
	tl.Invalidate(5)
	if _, _, hit := tl.Probe(5); hit {
		t.Fatal("entry survived invalidation")
	}
	tl.Invalidate(5) // no-op on absent entries
}

func TestPageTableDeterministicInjective(t *testing.T) {
	pt := NewPageTable()
	seen := map[mem.PageID]mem.PageID{}
	for v := mem.PageID(0); v < 2000; v++ {
		p := pt.Translate(v)
		if p2 := pt.Translate(v); p2 != p {
			t.Fatalf("translation unstable for %d: %d vs %d", v, p, p2)
		}
		for ov, op := range seen {
			if op == p {
				t.Fatalf("pages %d and %d share frame %d", ov, v, p)
			}
		}
		seen[v] = p
	}
	if pt.Pages() != 2000 {
		t.Fatalf("Pages() = %d", pt.Pages())
	}
}

func TestPageTableColoring(t *testing.T) {
	// Cache colouring: the frame's low bit must match the virtual page's
	// low bit so virtually adjacent pages land in different cache halves.
	pt := NewPageTable()
	for v := mem.PageID(0); v < 512; v++ {
		p := pt.Translate(v)
		if uint32(p)&1 != uint32(v)&1 {
			t.Fatalf("page %d: frame %d breaks colouring", v, p)
		}
	}
}

func TestPageTableAddr(t *testing.T) {
	pt := NewPageTable()
	va := mem.MakeAddr(7, 1234)
	pa := pt.TranslateAddr(va)
	if pa.PageOffset() != 1234 {
		t.Fatalf("offset not preserved: %v", pa.PageOffset())
	}
	if pa.Page() != pt.Translate(7) {
		t.Fatal("page translation mismatch")
	}
}

func newHierarchy() *Hierarchy {
	u := New("uTLB", 4, NewPolicy("second-chance", 4, rng.New(1)))
	m := New("TLB", 16, NewPolicy("random", 16, rng.New(2)))
	return &Hierarchy{U: u, Main: m, PT: NewPageTable(),
		TLBRefillLatency: 2, WalkLatency: 20}
}

func TestHierarchyLevels(t *testing.T) {
	h := newHierarchy()
	r1 := h.Translate(42)
	if r1.Level != LevelWalk || r1.Latency != 20 {
		t.Fatalf("first access %+v, want walk", r1)
	}
	r2 := h.Translate(42)
	if r2.Level != LevelUTLB || r2.Latency != 0 {
		t.Fatalf("second access %+v, want uTLB hit", r2)
	}
	if r2.PPage != r1.PPage {
		t.Fatal("translation changed")
	}
	// Evict 42 from the uTLB by filling it with other pages.
	for v := mem.PageID(100); v < 104; v++ {
		h.Translate(v)
	}
	r3 := h.Translate(42)
	if r3.Level != LevelTLB || r3.Latency != 2 {
		t.Fatalf("after uTLB eviction %+v, want TLB hit", r3)
	}
}

func TestHierarchyReverseLookup(t *testing.T) {
	h := newHierarchy()
	r := h.Translate(7)
	u, m := h.ReverseLookup(r.PPage)
	if u < 0 || m < 0 {
		t.Fatalf("reverse lookup failed: u=%d m=%d", u, m)
	}
	if u2, m2 := h.ReverseLookup(0xABCDE); u2 >= 0 || m2 >= 0 {
		t.Fatal("reverse lookup false positive")
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{LevelUTLB: "uTLB", LevelTLB: "TLB", LevelWalk: "walk"} {
		if l.String() != want {
			t.Fatalf("Level %d String = %q", l, l.String())
		}
	}
}

func TestStatsMissRate(t *testing.T) {
	s := Stats{Lookups: 10, Misses: 3}
	if s.MissRate() != 0.3 {
		t.Fatalf("MissRate = %v", s.MissRate())
	}
	if (Stats{}).MissRate() != 0 {
		t.Fatal("zero stats MissRate should be 0")
	}
}
