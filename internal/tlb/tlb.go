package tlb

import (
	"math/bits"

	"malec/internal/mem"
)

// Entry is one fully-associative TLB entry.
type Entry struct {
	VPage mem.PageID
	PPage mem.PageID
	Valid bool
}

// Stats counts TLB activity for performance and energy accounting.
type Stats struct {
	Lookups        uint64 // forward (virtual) lookups
	Hits           uint64
	Misses         uint64
	Inserts        uint64
	Evictions      uint64 // valid entries displaced
	ReverseLookups uint64 // physical-tag lookups (WT maintenance)
	ReverseHits    uint64
}

// MissRate returns misses / lookups.
func (s Stats) MissRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Lookups)
}

// TLB is a fully-associative translation buffer. Following the paper's
// energy methodology it supports reverse lookups by physical page ID so
// cache line fills and evictions can locate the way-table entry of their
// page ("uTLB and TLB need to be modified to allow lookups based on
// physical, in addition to virtual, PageIDs").
//
// Lookups are O(1) by default: two compact chain indexes (VPage and PPage
// bucket chains over the entry array, fixed flat arrays, zero steady-state
// allocations) are maintained through insert/evict/invalidate, replacing
// the linear scans over the entry array on the simulation hot path. The
// scans are kept verbatim behind SetIndexed(false) — the differential
// reference used by config.DisableMemIndex / MALEC_NO_MEM_INDEX=1 — and
// both paths make identical replacement-policy calls and count identical
// Stats. When several valid entries share a page (possible through the
// public API, never through an injective page table) they coexist in one
// chain and lookups return the lowest entry index, matching the scans.
type TLB struct {
	Name    string
	entries []Entry
	pol     Policy
	stats   Stats

	useIndex bool
	vIdx     *mem.SlotIndex // VPage bucket chains over valid entries
	pIdx     *mem.SlotIndex // PPage bucket chains over valid entries
	freeMask []uint64       // bit set = entry invalid; lowest set bit is the scan's fill choice
	live     int            // number of valid entries

	// OnEvict, if non-nil, is invoked with the index and previous
	// contents of a valid entry about to be displaced (way-table
	// synchronization hook).
	OnEvict func(idx int, old Entry)
	// OnInsert, if non-nil, is invoked after a new translation lands in
	// an entry.
	OnInsert func(idx int, e Entry)
}

// New returns a TLB with size entries and the given replacement policy.
// The indexed lookup path is enabled; SetIndexed(false) reverts to scans.
func New(name string, size int, pol Policy) *TLB {
	t := &TLB{
		Name:     name,
		entries:  make([]Entry, size),
		pol:      pol,
		useIndex: true,
		vIdx:     mem.NewSlotIndex(size),
		pIdx:     mem.NewSlotIndex(size),
		freeMask: make([]uint64, (size+63)/64),
	}
	for i := 0; i < size; i++ {
		t.freeMask[i>>6] |= 1 << uint(i&63)
	}
	return t
}

// SetIndexed selects between the indexed (default) and scan lookup paths.
// The indexes are maintained either way, so the toggle may flip at any
// time; it changes host-simulator work only, never simulated results
// (differentially tested).
func (t *TLB) SetIndexed(on bool) { t.useIndex = on }

// setEntry installs e in slot idx, keeping the chain indexes and the free
// mask in sync with the entry array. Every valid entry is linked into both
// indexes, so duplicate pages (legal through the public API, impossible
// through an injective page table) simply coexist in a chain and lookups
// resolve them by taking the lowest index, exactly as the scans do.
func (t *TLB) setEntry(idx int, e Entry) {
	old := t.entries[idx]
	t.entries[idx] = e
	if old.Valid {
		t.vIdx.Remove(uint32(old.VPage), int32(idx))
		t.pIdx.Remove(uint32(old.PPage), int32(idx))
		if !e.Valid {
			t.freeMask[idx>>6] |= 1 << uint(idx&63)
			t.live--
		}
	} else if e.Valid {
		t.freeMask[idx>>6] &^= 1 << uint(idx&63)
		t.live++
	}
	if e.Valid {
		t.vIdx.Add(uint32(e.VPage), int32(idx))
		t.pIdx.Add(uint32(e.PPage), int32(idx))
	}
}

// findV returns the lowest valid entry index holding virtual page v, or
// -1, via the VPage chain index (indexed entries are always valid).
func (t *TLB) findV(v mem.PageID) int {
	best := int32(-1)
	for i := t.vIdx.First(uint32(v)); i >= 0; i = t.vIdx.Next(i) {
		if t.entries[i].VPage == v && (best < 0 || i < best) {
			best = i
		}
	}
	return int(best)
}

// findP is findV for physical pages.
func (t *TLB) findP(p mem.PageID) int {
	best := int32(-1)
	for i := t.pIdx.First(uint32(p)); i >= 0; i = t.pIdx.Next(i) {
		if t.entries[i].PPage == p && (best < 0 || i < best) {
			best = i
		}
	}
	return int(best)
}

// firstFree returns the lowest invalid entry index, or -1 when full — the
// same choice the scan fill path makes, read from the free mask.
func (t *TLB) firstFree() int {
	if t.live == len(t.entries) {
		return -1
	}
	for w, word := range t.freeMask {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
	}
	return -1
}

// Size returns the number of entries.
func (t *TLB) Size() int { return len(t.entries) }

// Stats returns a copy of the activity counters.
func (t *TLB) Stats() Stats { return t.stats }

// Entry returns a copy of entry i.
func (t *TLB) Entry(i int) Entry { return t.entries[i] }

// Lookup searches for virtual page v. On a hit it touches the replacement
// state and returns the entry index.
func (t *TLB) Lookup(v mem.PageID) (idx int, e Entry, hit bool) {
	t.stats.Lookups++
	if t.useIndex {
		if i := t.findV(v); i >= 0 {
			t.stats.Hits++
			t.pol.Touch(i)
			return i, t.entries[i], true
		}
		t.stats.Misses++
		return -1, Entry{}, false
	}
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].VPage == v {
			t.stats.Hits++
			t.pol.Touch(i)
			return i, t.entries[i], true
		}
	}
	t.stats.Misses++
	return -1, Entry{}, false
}

// Probe is Lookup without statistics or replacement-state side effects.
func (t *TLB) Probe(v mem.PageID) (idx int, e Entry, hit bool) {
	if t.useIndex {
		if i := t.findV(v); i >= 0 {
			return i, t.entries[i], true
		}
		return -1, Entry{}, false
	}
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].VPage == v {
			return i, t.entries[i], true
		}
	}
	return -1, Entry{}, false
}

// ReverseLookup searches for physical page p (used after PIPT cache line
// fills/evictions to find the page's way-table entry).
func (t *TLB) ReverseLookup(p mem.PageID) (idx int, e Entry, hit bool) {
	t.stats.ReverseLookups++
	if t.useIndex {
		if i := t.findP(p); i >= 0 {
			t.stats.ReverseHits++
			return i, t.entries[i], true
		}
		return -1, Entry{}, false
	}
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].PPage == p {
			t.stats.ReverseHits++
			return i, t.entries[i], true
		}
	}
	return -1, Entry{}, false
}

// Insert places translation v->p, evicting a victim if needed, and returns
// the index used. Invalid entries are preferred over evictions.
func (t *TLB) Insert(v, p mem.PageID) int {
	t.stats.Inserts++
	idx := -1
	if t.useIndex {
		idx = t.firstFree()
	} else {
		for i := range t.entries {
			if !t.entries[i].Valid {
				idx = i
				break
			}
		}
	}
	if idx < 0 {
		idx = t.pol.Victim()
		if t.entries[idx].Valid {
			t.stats.Evictions++
			if t.OnEvict != nil {
				t.OnEvict(idx, t.entries[idx])
			}
		}
	}
	t.setEntry(idx, Entry{VPage: v, PPage: p, Valid: true})
	t.pol.Touch(idx)
	if t.OnInsert != nil {
		t.OnInsert(idx, t.entries[idx])
	}
	return idx
}

// Invalidate removes the entry for virtual page v, if present.
func (t *TLB) Invalidate(v mem.PageID) {
	if i, _, hit := t.Probe(v); hit {
		if t.OnEvict != nil {
			t.OnEvict(i, t.entries[i])
		}
		t.setEntry(i, Entry{})
	}
}

// Level identifies where a translation was satisfied.
type Level int

// Translation levels.
const (
	LevelUTLB Level = iota // micro-TLB hit
	LevelTLB               // main TLB hit (uTLB refilled)
	LevelWalk              // page walk (both missed)
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelUTLB:
		return "uTLB"
	case LevelTLB:
		return "TLB"
	case LevelWalk:
		return "walk"
	default:
		return "unknown"
	}
}

// Result describes one translation through the hierarchy.
type Result struct {
	PPage   mem.PageID
	Level   Level
	UIdx    int // uTLB entry index (-1 when bypassed)
	TIdx    int // TLB entry index (-1 on walk-only paths)
	Latency int // additional cycles beyond a uTLB hit
}

// Hierarchy is the two-level translation path: a small uTLB backed by the
// main TLB, backed by a (modelled) page walk of fixed latency.
type Hierarchy struct {
	U    *TLB
	Main *TLB
	PT   *PageTable

	// TLBRefillLatency is the extra latency of a uTLB miss/TLB hit.
	TLBRefillLatency int
	// WalkLatency is the extra latency of a full page walk.
	WalkLatency int
}

// Translate resolves virtual page v through the hierarchy, performing any
// refills, and reports where it hit.
func (h *Hierarchy) Translate(v mem.PageID) Result {
	if ui, e, hit := h.U.Lookup(v); hit {
		ti, _, _ := h.Main.Probe(v)
		return Result{PPage: e.PPage, Level: LevelUTLB, UIdx: ui, TIdx: ti}
	}
	if ti, e, hit := h.Main.Lookup(v); hit {
		ui := h.U.Insert(v, e.PPage)
		return Result{PPage: e.PPage, Level: LevelTLB, UIdx: ui, TIdx: ti,
			Latency: h.TLBRefillLatency}
	}
	p := h.PT.Translate(v)
	ti := h.Main.Insert(v, p)
	ui := h.U.Insert(v, p)
	return Result{PPage: p, Level: LevelWalk, UIdx: ui, TIdx: ti,
		Latency: h.WalkLatency}
}

// ReverseLookup finds the uTLB and TLB indices holding physical page p.
// Either index is -1 when the page is not resident at that level.
func (h *Hierarchy) ReverseLookup(p mem.PageID) (uIdx, tIdx int) {
	uIdx, tIdx = -1, -1
	if i, _, hit := h.U.ReverseLookup(p); hit {
		uIdx = i
	}
	if i, _, hit := h.Main.ReverseLookup(p); hit {
		tIdx = i
	}
	return uIdx, tIdx
}
