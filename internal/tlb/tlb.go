package tlb

import "malec/internal/mem"

// Entry is one fully-associative TLB entry.
type Entry struct {
	VPage mem.PageID
	PPage mem.PageID
	Valid bool
}

// Stats counts TLB activity for performance and energy accounting.
type Stats struct {
	Lookups        uint64 // forward (virtual) lookups
	Hits           uint64
	Misses         uint64
	Inserts        uint64
	Evictions      uint64 // valid entries displaced
	ReverseLookups uint64 // physical-tag lookups (WT maintenance)
	ReverseHits    uint64
}

// MissRate returns misses / lookups.
func (s Stats) MissRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Lookups)
}

// TLB is a fully-associative translation buffer. Following the paper's
// energy methodology it supports reverse lookups by physical page ID so
// cache line fills and evictions can locate the way-table entry of their
// page ("uTLB and TLB need to be modified to allow lookups based on
// physical, in addition to virtual, PageIDs").
type TLB struct {
	Name    string
	entries []Entry
	pol     Policy
	stats   Stats

	// OnEvict, if non-nil, is invoked with the index and previous
	// contents of a valid entry about to be displaced (way-table
	// synchronization hook).
	OnEvict func(idx int, old Entry)
	// OnInsert, if non-nil, is invoked after a new translation lands in
	// an entry.
	OnInsert func(idx int, e Entry)
}

// New returns a TLB with size entries and the given replacement policy.
func New(name string, size int, pol Policy) *TLB {
	return &TLB{Name: name, entries: make([]Entry, size), pol: pol}
}

// Size returns the number of entries.
func (t *TLB) Size() int { return len(t.entries) }

// Stats returns a copy of the activity counters.
func (t *TLB) Stats() Stats { return t.stats }

// Entry returns a copy of entry i.
func (t *TLB) Entry(i int) Entry { return t.entries[i] }

// Lookup searches for virtual page v. On a hit it touches the replacement
// state and returns the entry index.
func (t *TLB) Lookup(v mem.PageID) (idx int, e Entry, hit bool) {
	t.stats.Lookups++
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].VPage == v {
			t.stats.Hits++
			t.pol.Touch(i)
			return i, t.entries[i], true
		}
	}
	t.stats.Misses++
	return -1, Entry{}, false
}

// Probe is Lookup without statistics or replacement-state side effects.
func (t *TLB) Probe(v mem.PageID) (idx int, e Entry, hit bool) {
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].VPage == v {
			return i, t.entries[i], true
		}
	}
	return -1, Entry{}, false
}

// ReverseLookup searches for physical page p (used after PIPT cache line
// fills/evictions to find the page's way-table entry).
func (t *TLB) ReverseLookup(p mem.PageID) (idx int, e Entry, hit bool) {
	t.stats.ReverseLookups++
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].PPage == p {
			t.stats.ReverseHits++
			return i, t.entries[i], true
		}
	}
	return -1, Entry{}, false
}

// Insert places translation v->p, evicting a victim if needed, and returns
// the index used. Invalid entries are preferred over evictions.
func (t *TLB) Insert(v, p mem.PageID) int {
	t.stats.Inserts++
	idx := -1
	for i := range t.entries {
		if !t.entries[i].Valid {
			idx = i
			break
		}
	}
	if idx < 0 {
		idx = t.pol.Victim()
		if t.entries[idx].Valid {
			t.stats.Evictions++
			if t.OnEvict != nil {
				t.OnEvict(idx, t.entries[idx])
			}
		}
	}
	t.entries[idx] = Entry{VPage: v, PPage: p, Valid: true}
	t.pol.Touch(idx)
	if t.OnInsert != nil {
		t.OnInsert(idx, t.entries[idx])
	}
	return idx
}

// Invalidate removes the entry for virtual page v, if present.
func (t *TLB) Invalidate(v mem.PageID) {
	if i, _, hit := t.Probe(v); hit {
		if t.OnEvict != nil {
			t.OnEvict(i, t.entries[i])
		}
		t.entries[i] = Entry{}
	}
}

// Level identifies where a translation was satisfied.
type Level int

// Translation levels.
const (
	LevelUTLB Level = iota // micro-TLB hit
	LevelTLB               // main TLB hit (uTLB refilled)
	LevelWalk              // page walk (both missed)
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelUTLB:
		return "uTLB"
	case LevelTLB:
		return "TLB"
	case LevelWalk:
		return "walk"
	default:
		return "unknown"
	}
}

// Result describes one translation through the hierarchy.
type Result struct {
	PPage   mem.PageID
	Level   Level
	UIdx    int // uTLB entry index (-1 when bypassed)
	TIdx    int // TLB entry index (-1 on walk-only paths)
	Latency int // additional cycles beyond a uTLB hit
}

// Hierarchy is the two-level translation path: a small uTLB backed by the
// main TLB, backed by a (modelled) page walk of fixed latency.
type Hierarchy struct {
	U    *TLB
	Main *TLB
	PT   *PageTable

	// TLBRefillLatency is the extra latency of a uTLB miss/TLB hit.
	TLBRefillLatency int
	// WalkLatency is the extra latency of a full page walk.
	WalkLatency int
}

// Translate resolves virtual page v through the hierarchy, performing any
// refills, and reports where it hit.
func (h *Hierarchy) Translate(v mem.PageID) Result {
	if ui, e, hit := h.U.Lookup(v); hit {
		ti, _, _ := h.Main.Probe(v)
		return Result{PPage: e.PPage, Level: LevelUTLB, UIdx: ui, TIdx: ti}
	}
	if ti, e, hit := h.Main.Lookup(v); hit {
		ui := h.U.Insert(v, e.PPage)
		return Result{PPage: e.PPage, Level: LevelTLB, UIdx: ui, TIdx: ti,
			Latency: h.TLBRefillLatency}
	}
	p := h.PT.Translate(v)
	ti := h.Main.Insert(v, p)
	ui := h.U.Insert(v, p)
	return Result{PPage: p, Level: LevelWalk, UIdx: ui, TIdx: ti,
		Latency: h.WalkLatency}
}

// ReverseLookup finds the uTLB and TLB indices holding physical page p.
// Either index is -1 when the page is not resident at that level.
func (h *Hierarchy) ReverseLookup(p mem.PageID) (uIdx, tIdx int) {
	uIdx, tIdx = -1, -1
	if i, _, hit := h.U.ReverseLookup(p); hit {
		uIdx = i
	}
	if i, _, hit := h.Main.ReverseLookup(p); hit {
		tIdx = i
	}
	return uIdx, tIdx
}
