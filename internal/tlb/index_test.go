package tlb

import (
	"testing"

	"malec/internal/mem"
	"malec/internal/rng"
)

// hookEvent records one OnEvict/OnInsert callback for order comparison.
type hookEvent struct {
	kind string
	idx  int
	e    Entry
}

// recordHooks attaches recording hooks to a TLB and returns the log.
func recordHooks(t *TLB) *[]hookEvent {
	log := &[]hookEvent{}
	t.OnEvict = func(idx int, old Entry) {
		*log = append(*log, hookEvent{"evict", idx, old})
	}
	t.OnInsert = func(idx int, e Entry) {
		*log = append(*log, hookEvent{"insert", idx, e})
	}
	return log
}

// TestIndexedMatchesScanRandomized drives an indexed TLB and a scan TLB
// through the identical randomized insert/lookup/reverse-lookup/invalidate
// workload and demands bit-identical behaviour: every return value, the
// full Stats, the final entry array, and the exact order and payload of
// every OnEvict/OnInsert hook. The page space is kept small so evictions,
// reinserts and duplicate physical pages (legal through the public API)
// all occur.
func TestIndexedMatchesScanRandomized(t *testing.T) {
	for _, policy := range []string{"lru", "fifo", "second-chance", "random"} {
		t.Run(policy, func(t *testing.T) {
			const size = 8
			const pageSpace = 24
			const ops = 20000
			idxTLB := New("idx", size, NewPolicy(policy, size, rng.New(7)))
			scanTLB := New("scan", size, NewPolicy(policy, size, rng.New(7)))
			scanTLB.SetIndexed(false)
			idxLog := recordHooks(idxTLB)
			scanLog := recordHooks(scanTLB)
			drv := rng.New(99)
			for op := 0; op < ops; op++ {
				v := mem.PageID(drv.Intn(pageSpace))
				p := mem.PageID(drv.Intn(pageSpace)) // duplicates PPages on purpose
				switch drv.Intn(6) {
				case 0, 1:
					i1, e1, h1 := idxTLB.Lookup(v)
					i2, e2, h2 := scanTLB.Lookup(v)
					if i1 != i2 || e1 != e2 || h1 != h2 {
						t.Fatalf("op %d: Lookup(%d) diverged: (%d,%+v,%v) vs (%d,%+v,%v)",
							op, v, i1, e1, h1, i2, e2, h2)
					}
				case 2:
					if idxTLB.Insert(v, p) != scanTLB.Insert(v, p) {
						t.Fatalf("op %d: Insert(%d,%d) chose different slots", op, v, p)
					}
				case 3:
					i1, e1, h1 := idxTLB.ReverseLookup(p)
					i2, e2, h2 := scanTLB.ReverseLookup(p)
					if i1 != i2 || e1 != e2 || h1 != h2 {
						t.Fatalf("op %d: ReverseLookup(%d) diverged: (%d,%+v,%v) vs (%d,%+v,%v)",
							op, p, i1, e1, h1, i2, e2, h2)
					}
				case 4:
					i1, e1, h1 := idxTLB.Probe(v)
					i2, e2, h2 := scanTLB.Probe(v)
					if i1 != i2 || e1 != e2 || h1 != h2 {
						t.Fatalf("op %d: Probe(%d) diverged", op, v)
					}
				case 5:
					idxTLB.Invalidate(v)
					scanTLB.Invalidate(v)
				}
			}
			if idxTLB.Stats() != scanTLB.Stats() {
				t.Fatalf("stats diverged: %+v vs %+v", idxTLB.Stats(), scanTLB.Stats())
			}
			for i := 0; i < size; i++ {
				if idxTLB.Entry(i) != scanTLB.Entry(i) {
					t.Fatalf("entry %d diverged: %+v vs %+v", i, idxTLB.Entry(i), scanTLB.Entry(i))
				}
			}
			if len(*idxLog) != len(*scanLog) {
				t.Fatalf("hook counts diverged: %d vs %d", len(*idxLog), len(*scanLog))
			}
			for i := range *idxLog {
				if (*idxLog)[i] != (*scanLog)[i] {
					t.Fatalf("hook %d diverged: %+v vs %+v", i, (*idxLog)[i], (*scanLog)[i])
				}
			}
		})
	}
}

// TestIndexToggleMidstream flips a TLB between indexed and scan modes
// mid-workload: the indexes are maintained unconditionally, so toggling
// must never desynchronize lookups from the entry array.
func TestIndexToggleMidstream(t *testing.T) {
	const size = 8
	tl := New("t", size, NewPolicy("lru", size, rng.New(3)))
	ref := New("r", size, NewPolicy("lru", size, rng.New(3)))
	ref.SetIndexed(false)
	drv := rng.New(5)
	for op := 0; op < 5000; op++ {
		if op%97 == 0 {
			tl.SetIndexed(op%194 == 0)
		}
		v := mem.PageID(drv.Intn(20))
		p := mem.PageID(drv.Intn(20))
		switch drv.Intn(3) {
		case 0:
			i1, _, h1 := tl.Lookup(v)
			i2, _, h2 := ref.Lookup(v)
			if i1 != i2 || h1 != h2 {
				t.Fatalf("op %d: lookup diverged after toggles", op)
			}
		case 1:
			tl.Insert(v, p)
			ref.Insert(v, p)
		case 2:
			tl.Invalidate(v)
			ref.Invalidate(v)
		}
	}
}

// TestPageTableFlatStorageMatchesReference cross-checks the open-addressed
// page-table storage against a plain Go map reference for a large, gappy
// virtual page set: identical frames, stability, injectivity.
func TestPageTableFlatStorageMatchesReference(t *testing.T) {
	pt := NewPageTable()
	ref := map[mem.PageID]mem.PageID{}
	frames := map[mem.PageID]mem.PageID{}
	drv := rng.New(11)
	for i := 0; i < 20000; i++ {
		v := mem.PageID(drv.Intn(1 << 16))
		p := pt.Translate(v)
		if prev, ok := ref[v]; ok {
			if prev != p {
				t.Fatalf("translation for %d unstable: %d then %d", v, prev, p)
			}
			continue
		}
		if owner, taken := frames[p]; taken {
			t.Fatalf("frame %d assigned to both %d and %d", p, owner, v)
		}
		ref[v] = p
		frames[p] = v
	}
	if pt.Pages() != len(ref) {
		t.Fatalf("Pages() = %d, want %d", pt.Pages(), len(ref))
	}
}

// BenchmarkTLBLookup measures forward lookups at a paper-sized 64-entry
// TLB, indexed vs scan (the config.DisableMemIndex reference), on a
// resident working set (hits, the hot-path common case).
func BenchmarkTLBLookup(b *testing.B) {
	for _, mode := range []struct {
		name    string
		indexed bool
	}{{"indexed", true}, {"scan", false}} {
		b.Run(mode.name, func(b *testing.B) {
			const size = 64
			tl := New("t", size, NewPolicy("random", size, rng.New(1)))
			tl.SetIndexed(mode.indexed)
			for v := mem.PageID(0); v < size; v++ {
				tl.Insert(v, 1000+v)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, hit := tl.Lookup(mem.PageID(i % size)); !hit {
					b.Fatal("resident page missed")
				}
			}
		})
	}
}

// BenchmarkTLBReverseLookup measures the physical-tag lookups the
// way-table maintenance path performs on every L1 fill/eviction.
func BenchmarkTLBReverseLookup(b *testing.B) {
	for _, mode := range []struct {
		name    string
		indexed bool
	}{{"indexed", true}, {"scan", false}} {
		b.Run(mode.name, func(b *testing.B) {
			const size = 64
			tl := New("t", size, NewPolicy("random", size, rng.New(1)))
			tl.SetIndexed(mode.indexed)
			for v := mem.PageID(0); v < size; v++ {
				tl.Insert(v, 1000+v)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, hit := tl.ReverseLookup(mem.PageID(1000 + i%size)); !hit {
					b.Fatal("resident page missed")
				}
			}
		})
	}
}
