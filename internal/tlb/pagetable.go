package tlb

import "malec/internal/mem"

// PageTable maps virtual pages to physical pages. Physical frames are
// assigned on first touch in a deterministic scrambled order, modelling an
// OS allocator without preserving virtual contiguity (which matters for the
// PIPT cache's set-index bit above the page offset).
type PageTable struct {
	m    map[mem.PageID]mem.PageID
	used map[mem.PageID]struct{}
	next uint32
}

// NewPageTable returns an empty page table.
func NewPageTable() *PageTable {
	return &PageTable{m: make(map[mem.PageID]mem.PageID)}
}

// Translate returns the physical page for v, allocating one on first use.
//
// Frames are handed out with page colouring on the bit that reaches the
// PIPT L1's set index (PA bit 12, i.e. frame bit 0): consecutive
// allocations alternate colours, spreading pages evenly over the cache
// halves the way colouring-aware OS allocators do. The remaining frame bits
// are scrambled so physically-indexed structures see no artificial
// contiguity.
func (pt *PageTable) Translate(v mem.PageID) mem.PageID {
	if p, ok := pt.m[v]; ok {
		return p
	}
	frame := pt.next
	pt.next++
	// Cache colouring: preserve the virtual page's colour bit (the one
	// that reaches the L1 set index) so virtually-contiguous data stays
	// spread across cache halves, as colouring-aware OS allocators do.
	color := uint32(v) & 1
	upper := frame * 2654435761
	p := mem.PageID((upper<<1 | color) & (1<<mem.PageBits - 1))
	// Linear-probe in colour-preserving steps to keep the map injective.
	for pt.taken(p) {
		p = (p + 2) & (1<<mem.PageBits - 1)
	}
	pt.m[v] = p
	pt.used[p] = struct{}{}
	return p
}

// taken reports whether physical page p is already assigned.
func (pt *PageTable) taken(p mem.PageID) bool {
	if pt.used == nil {
		pt.used = make(map[mem.PageID]struct{})
	}
	_, ok := pt.used[p]
	return ok
}

// Pages returns the number of mapped pages.
func (pt *PageTable) Pages() int { return len(pt.m) }

// TranslateAddr translates a full virtual address.
func (pt *PageTable) TranslateAddr(va mem.Addr) mem.Addr {
	return mem.MakeAddr(pt.Translate(va.Page()), va.PageOffset())
}
