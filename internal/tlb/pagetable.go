package tlb

import "malec/internal/mem"

// PageTable maps virtual pages to physical pages. Physical frames are
// assigned on first touch in a deterministic scrambled order, modelling an
// OS allocator without preserving virtual contiguity (which matters for the
// PIPT cache's set-index bit above the page offset).
//
// Storage is a pair of open-addressed flat tables (v->p mapping and
// used-frame set) instead of Go maps: translations are on the simulation
// hot path of every TLB walk, and large-footprint workloads (tlbthrash,
// ptrchase) used to pay hundreds of map-growth allocations per run. The
// assignment function itself is unchanged — only where it is stored.
type PageTable struct {
	fwd  ptMap
	used *mem.PageSet
	next uint32
}

// NewPageTable returns an empty page table.
func NewPageTable() *PageTable {
	pt := &PageTable{used: mem.NewPageSet(ptInitialSlots)}
	pt.fwd.init(ptInitialSlots)
	return pt
}

// Translate returns the physical page for v, allocating one on first use.
//
// Frames are handed out with page colouring on the bit that reaches the
// PIPT L1's set index (PA bit 12, i.e. frame bit 0): consecutive
// allocations alternate colours, spreading pages evenly over the cache
// halves the way colouring-aware OS allocators do. The remaining frame bits
// are scrambled so physically-indexed structures see no artificial
// contiguity.
func (pt *PageTable) Translate(v mem.PageID) mem.PageID {
	if p, ok := pt.fwd.get(v); ok {
		return p
	}
	frame := pt.next
	pt.next++
	// Cache colouring: preserve the virtual page's colour bit (the one
	// that reaches the L1 set index) so virtually-contiguous data stays
	// spread across cache halves, as colouring-aware OS allocators do.
	color := uint32(v) & 1
	upper := frame * 2654435761
	p := mem.PageID((upper<<1 | color) & (1<<mem.PageBits - 1))
	// Linear-probe in colour-preserving steps to keep the map injective.
	for pt.used.Has(p) {
		p = (p + 2) & (1<<mem.PageBits - 1)
	}
	pt.fwd.put(v, p)
	pt.used.Add(p)
	return p
}

// Pages returns the number of mapped pages.
func (pt *PageTable) Pages() int { return pt.fwd.n }

// TranslateAddr translates a full virtual address.
func (pt *PageTable) TranslateAddr(va mem.Addr) mem.Addr {
	return mem.MakeAddr(pt.Translate(va.Page()), va.PageOffset())
}

// ptInitialSlots is the initial open-addressed table size. Tables grow
// 4x at half occupancy: large-footprint workloads (tlbthrash, ptrchase)
// map tens of thousands of pages per run, and fewer growth steps mean
// fewer full rehashes on the walk path.
const ptInitialSlots = 4096

// ptHash spreads page IDs over a power-of-two table.
func ptHash(k mem.PageID, mask uint32) uint32 {
	return (uint32(k) * 2654435761) & mask
}

// ptEntry is one fused map slot: key, value and presence share a cache
// line, so a probe costs one memory access instead of three.
type ptEntry struct {
	key  mem.PageID
	val  mem.PageID
	used bool
}

// ptMap is a growable open-addressed PageID -> PageID map. The zero page
// is a valid key and value; presence is the used flag.
type ptMap struct {
	slots []ptEntry
	n     int
}

func (m *ptMap) init(slots int) {
	m.slots = make([]ptEntry, slots)
	m.n = 0
}

func (m *ptMap) get(k mem.PageID) (mem.PageID, bool) {
	mask := uint32(len(m.slots) - 1)
	for i := ptHash(k, mask); ; i = (i + 1) & mask {
		e := &m.slots[i]
		if !e.used {
			return 0, false
		}
		if e.key == k {
			return e.val, true
		}
	}
}

func (m *ptMap) put(k, v mem.PageID) {
	if 2*(m.n+1) > len(m.slots) {
		old := m.slots
		m.init(4 * len(old))
		for i := range old {
			if old[i].used {
				m.put(old[i].key, old[i].val)
			}
		}
	}
	mask := uint32(len(m.slots) - 1)
	for i := ptHash(k, mask); ; i = (i + 1) & mask {
		e := &m.slots[i]
		if !e.used {
			*e = ptEntry{key: k, val: v, used: true}
			m.n++
			return
		}
		if e.key == k {
			e.val = v
			return
		}
	}
}
