// Package tlb implements the address translation substrate: a deterministic
// page table, fully-associative TLB arrays with pluggable replacement
// policies, reverse (physical) lookups required by way-table maintenance,
// and the two-level uTLB/TLB hierarchy of the paper (16-entry uTLB with
// second-chance replacement, 64-entry TLB with random replacement).
package tlb

import "malec/internal/rng"

// Policy selects replacement victims for a fully-associative array.
type Policy interface {
	// Touch marks entry i as referenced.
	Touch(i int)
	// Victim returns the entry index to evict next.
	Victim() int
	// State serializes the policy's replacement metadata (reference bits,
	// LRU stamps, rotation hands, rng state) for checkpointing.
	State() []uint64
	// SetState restores metadata previously obtained from State, so the
	// victim stream continues bit-identically.
	SetState(st []uint64)
}

// NewPolicy constructs a policy by name: "random", "second-chance", "lru"
// or "fifo". Unknown names panic; policies are configuration-time objects.
func NewPolicy(name string, size int, src *rng.Source) Policy {
	switch name {
	case "random":
		return &randomPolicy{size: size, rnd: src}
	case "second-chance":
		return newSecondChance(size)
	case "lru":
		return newLRU(size)
	case "fifo":
		return &fifoPolicy{size: size}
	default:
		panic("tlb: unknown replacement policy " + name)
	}
}

// randomPolicy evicts a uniformly random entry (the paper's TLB policy).
type randomPolicy struct {
	size int
	rnd  *rng.Source
}

func (p *randomPolicy) Touch(int) {}

func (p *randomPolicy) Victim() int { return p.rnd.Intn(p.size) }

func (p *randomPolicy) State() []uint64 { return []uint64{p.rnd.State()} }

func (p *randomPolicy) SetState(st []uint64) { p.rnd.SetState(st[0]) }

// secondChance is the classic clock algorithm (the paper's uTLB policy,
// chosen to reduce uWT->WT synchronization transfers).
type secondChance struct {
	ref  []bool
	hand int
}

func newSecondChance(size int) *secondChance {
	return &secondChance{ref: make([]bool, size)}
}

func (p *secondChance) Touch(i int) { p.ref[i] = true }

func (p *secondChance) Victim() int {
	for {
		if !p.ref[p.hand] {
			v := p.hand
			p.hand = (p.hand + 1) % len(p.ref)
			return v
		}
		p.ref[p.hand] = false
		p.hand = (p.hand + 1) % len(p.ref)
	}
}

func (p *secondChance) State() []uint64 {
	st := make([]uint64, 1+len(p.ref))
	st[0] = uint64(p.hand)
	for i, r := range p.ref {
		if r {
			st[1+i] = 1
		}
	}
	return st
}

func (p *secondChance) SetState(st []uint64) {
	p.hand = int(st[0])
	for i := range p.ref {
		p.ref[i] = st[1+i] != 0
	}
}

// lruPolicy evicts the least recently touched entry.
type lruPolicy struct {
	stamp []uint64
	clock uint64
}

func newLRU(size int) *lruPolicy { return &lruPolicy{stamp: make([]uint64, size)} }

func (p *lruPolicy) Touch(i int) {
	p.clock++
	p.stamp[i] = p.clock
}

func (p *lruPolicy) Victim() int {
	best, bestStamp := 0, p.stamp[0]
	for i, s := range p.stamp {
		if s < bestStamp {
			best, bestStamp = i, s
		}
	}
	return best
}

func (p *lruPolicy) State() []uint64 {
	st := make([]uint64, 1+len(p.stamp))
	st[0] = p.clock
	copy(st[1:], p.stamp)
	return st
}

func (p *lruPolicy) SetState(st []uint64) {
	p.clock = st[0]
	copy(p.stamp, st[1:])
}

// fifoPolicy evicts entries in insertion rotation order.
type fifoPolicy struct {
	size int
	next int
}

func (p *fifoPolicy) Touch(int) {}

func (p *fifoPolicy) Victim() int {
	v := p.next
	p.next = (p.next + 1) % p.size
	return v
}

func (p *fifoPolicy) State() []uint64 { return []uint64{uint64(p.next)} }

func (p *fifoPolicy) SetState(st []uint64) { p.next = int(st[0]) }
